// Pins the exact threshold of the Makefile's serve-path allocation gate
// (ALLOC_GATE_AWK, applied by `make bench-smoke` and `make alloc-gate`).
// `go test -benchmem` prints allocs/op as a rounded integer, so the gate
// must fail any BenchmarkServeRequest line at or above 0.5 allocs/op —
// anything that rounds to a nonzero integer — and pass everything below.
package idicn_test

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

// runAllocGate pipes benchmark-transcript lines through `make alloc-gate`
// and reports whether the gate passed along with its combined output.
func runAllocGate(t *testing.T, input string) (pass bool, output string) {
	t.Helper()
	cmd := exec.Command("make", "--no-print-directory", "alloc-gate")
	cmd.Stdin = strings.NewReader(input)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	if err == nil {
		return true, buf.String()
	}
	if _, ok := err.(*exec.ExitError); ok {
		return false, buf.String()
	}
	t.Fatalf("make alloc-gate: %v\n%s", err, buf.String())
	return false, ""
}

func TestAllocGateThreshold(t *testing.T) {
	if _, err := exec.LookPath("make"); err != nil {
		t.Skip("make not on PATH")
	}
	line := func(allocs string) string {
		return "BenchmarkServeRequest/EDGE-8\t1000\t250.0 ns/op\t0 B/op\t" + allocs + " allocs/op\n"
	}
	cases := []struct {
		name  string
		input string
		pass  bool
	}{
		{"zero allocs passes", line("0"), true},
		{"fractional below threshold passes", line("0.4900"), true},
		{"exactly 0.5 fails", line("0.5000"), false},
		{"one alloc fails", line("1"), false},
		{"many allocs fail", line("17"), false},
		{"other benchmarks exempt",
			"BenchmarkFig6Baseline-8\t10\t1e8 ns/op\t5e6 B/op\t90000 allocs/op\n", true},
		{"observed variant exempt",
			"BenchmarkServeRequestObserved/EDGE-8\t1000\t400.0 ns/op\t8 B/op\t2 allocs/op\n", true},
		{"empty transcript passes", "", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pass, out := runAllocGate(t, tc.input)
			if pass != tc.pass {
				t.Fatalf("gate pass = %v, want %v\ninput: %q\noutput: %s", pass, tc.pass, tc.input, out)
			}
			if !tc.pass && !strings.Contains(out, "alloc-gate: FAIL") {
				t.Fatalf("failing gate did not print diagnostic; output: %s", out)
			}
		})
	}
}
