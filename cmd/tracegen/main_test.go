package main

import (
	"bytes"
	"strings"
	"testing"

	"idicn/internal/trace"
)

func TestPickModel(t *testing.T) {
	for vantage, wantName := range map[string]string{
		"us": "US", "Europe": "Europe", "ASIA": "Asia",
	} {
		m, err := pickModel(vantage, 0.01, 0, 0, 0, 0)
		if err != nil || m.Name != wantName {
			t.Errorf("pickModel(%q) = %v, %v", vantage, m.Name, err)
		}
	}
	custom, err := pickModel("", 0, 5000, 100, 1.2, 7)
	if err != nil || custom.Name != "custom" || custom.Requests != 5000 || custom.Alpha != 1.2 {
		t.Errorf("custom model = %+v, %v", custom, err)
	}
	if _, err := pickModel("mars", 1, 0, 0, 0, 0); err == nil {
		t.Error("unknown vantage accepted")
	}
}

func TestGenerate(t *testing.T) {
	m, err := pickModel("", 0, 2000, 100, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := generate(m, &buf)
	if err != nil || n != 2000 {
		t.Fatalf("generate = %d, %v", n, err)
	}
	records, err := trace.ReadLog(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2000 {
		t.Fatalf("round trip read %d records", len(records))
	}
}
