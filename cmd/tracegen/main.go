// Command tracegen synthesizes CDN request logs in the format of the
// paper's dataset (anonymized client, anonymized URL, object size,
// served-locally flag).
//
// Usage:
//
//	tracegen -vantage asia [-scale 0.1] [-o asia.log]
//	tracegen -requests 500000 -objects 20000 -alpha 1.1 -o custom.log
//
// Generated logs can be fitted with zipffit or fed to the simulator.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"idicn/internal/trace"
)

func main() {
	var (
		vantage  = flag.String("vantage", "", "preset vantage point: us, europe, asia")
		scale    = flag.Float64("scale", 0.05, "scale for preset vantage points")
		requests = flag.Int("requests", 100000, "request count (custom model)")
		objects  = flag.Int("objects", 5000, "object-universe size (custom model)")
		alpha    = flag.Float64("alpha", 1.0, "Zipf exponent (custom model)")
		seed     = flag.Int64("seed", 1, "random seed (custom model)")
		output   = flag.String("o", "-", "output file (default stdout)")
	)
	flag.Parse()

	model, err := pickModel(*vantage, *scale, *requests, *objects, *alpha, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(2)
	}

	out := os.Stdout
	if *output != "-" {
		f, err := os.Create(*output)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	n, err := generate(model, out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d records (model %s, alpha %.2f, %d objects)\n",
		n, model.Name, model.Alpha, model.Objects)
}

// pickModel resolves a preset vantage point or assembles a custom model.
func pickModel(vantage string, scale float64, requests, objects int, alpha float64, seed int64) (trace.CDNModel, error) {
	switch strings.ToLower(vantage) {
	case "us":
		return trace.US(scale), nil
	case "europe":
		return trace.Europe(scale), nil
	case "asia":
		return trace.Asia(scale), nil
	case "":
		return trace.CDNModel{
			Name:          "custom",
			Requests:      requests,
			Objects:       objects,
			Alpha:         alpha,
			Clients:       requests/50 + 1,
			Mix:           trace.DefaultContentMix(),
			Seed:          seed,
			LocalHitRatio: 0.7,
		}, nil
	default:
		return trace.CDNModel{}, fmt.Errorf("unknown vantage %q (want us, europe, or asia)", vantage)
	}
}

// generate writes the model's log and returns the record count.
func generate(model trace.CDNModel, out io.Writer) (int, error) {
	records := model.Generate()
	if err := trace.WriteLog(out, records); err != nil {
		return 0, fmt.Errorf("writing log: %w", err)
	}
	return len(records), nil
}
