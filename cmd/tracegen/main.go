// Command tracegen synthesizes CDN request logs in the format of the
// paper's dataset (anonymized client, anonymized URL, object size,
// served-locally flag), or compact binary simulator traces.
//
// Usage:
//
//	tracegen -vantage asia [-scale 0.1] [-o asia.log]
//	tracegen -requests 500000 -objects 20000 -alpha 1.1 -o custom.log
//	tracegen -format binary -topology ATT -requests 100000000 -users 2000000 \
//	         -objects 1000000 -locality 0.7 -o big.itrace
//
// Text logs can be fitted with zipffit or fed to the simulator
// (icnsim -exp trace-designs -trace FILE). Binary traces (-format binary)
// use the compact varint-delta record format streamed by the sharded
// simulator: records carry (PoP, leaf, object) against a fixed topology, so
// the topology flags must match the simulation's. Binary generation is
// streaming — a 10⁹-request trace needs constant memory.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"idicn/internal/topo"
	"idicn/internal/trace"
)

func main() {
	var (
		format   = flag.String("format", "log", "output format: log (text CDN log) or binary (compact simulator trace)")
		vantage  = flag.String("vantage", "", "preset vantage point: us, europe, asia (log format only)")
		scale    = flag.Float64("scale", 0.05, "scale for preset vantage points")
		requests = flag.Int("requests", 100000, "request count (custom model)")
		objects  = flag.Int("objects", 5000, "object-universe size (custom model)")
		alpha    = flag.Float64("alpha", 1.0, "Zipf exponent (custom model)")
		seed     = flag.Int64("seed", 1, "random seed (custom model)")
		output   = flag.String("o", "-", "output file (default stdout)")

		topoName = flag.String("topology", "ATT", "backbone topology for binary traces (must match the simulation)")
		arity    = flag.Int("arity", 2, "access-tree arity (binary format)")
		depth    = flag.Int("depth", 5, "access-tree depth (binary format)")
		locality = flag.Float64("locality", 0, "temporal locality in [0, 1) (binary format)")
		skew     = flag.Float64("skew", 0, "spatial popularity skew in [0, 1] (binary format)")
		users    = flag.Int("users", 0, "fixed user population; each user has a stable home leaf (binary format)")
	)
	flag.Parse()

	out := os.Stdout
	if *output != "-" {
		f, err := os.Create(*output)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	switch *format {
	case "log":
		model, err := pickModel(*vantage, *scale, *requests, *objects, *alpha, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(2)
		}
		n, err := generate(model, out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d records (model %s, alpha %.2f, %d objects)\n",
			n, model.Name, model.Alpha, model.Objects)
	case "binary":
		tp := topo.ByName(*topoName)
		if tp == nil {
			fmt.Fprintf(os.Stderr, "tracegen: unknown topology %q\n", *topoName)
			os.Exit(2)
		}
		net := topo.NewNetwork(tp, *arity, *depth)
		cfg := trace.StreamConfig{
			Requests:         *requests,
			Objects:          *objects,
			Alpha:            *alpha,
			SpatialSkew:      *skew,
			PoPWeights:       tp.PopulationWeights(),
			Leaves:           net.LeavesPerTree(),
			Seed:             *seed,
			TemporalLocality: *locality,
			Users:            *users,
		}
		meta := trace.BinaryMeta{
			PoPs:     net.PoPs(),
			Leaves:   net.LeavesPerTree(),
			Objects:  *objects,
			Requests: int64(*requests),
		}
		bw := bufio.NewWriterSize(out, 1<<20)
		if err := trace.WriteBinaryTrace(bw, meta, trace.Synthetic(cfg)); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		if err := bw.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d binary records (%s %d PoPs x %d leaves, %d objects, %d users)\n",
			*requests, tp.Name, net.PoPs(), net.LeavesPerTree(), *objects, *users)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown format %q (want log or binary)\n", *format)
		os.Exit(2)
	}
}

// pickModel resolves a preset vantage point or assembles a custom model.
func pickModel(vantage string, scale float64, requests, objects int, alpha float64, seed int64) (trace.CDNModel, error) {
	switch strings.ToLower(vantage) {
	case "us":
		return trace.US(scale), nil
	case "europe":
		return trace.Europe(scale), nil
	case "asia":
		return trace.Asia(scale), nil
	case "":
		return trace.CDNModel{
			Name:          "custom",
			Requests:      requests,
			Objects:       objects,
			Alpha:         alpha,
			Clients:       requests/50 + 1,
			Mix:           trace.DefaultContentMix(),
			Seed:          seed,
			LocalHitRatio: 0.7,
		}, nil
	default:
		return trace.CDNModel{}, fmt.Errorf("unknown vantage %q (want us, europe, or asia)", vantage)
	}
}

// generate writes the model's log and returns the record count.
func generate(model trace.CDNModel, out io.Writer) (int, error) {
	records := model.Generate()
	if err := trace.WriteLog(out, records); err != nil {
		return 0, fmt.Errorf("writing log: %w", err)
	}
	return len(records), nil
}
