// Command idicnd runs a complete idICN deployment on loopback: a name
// resolver, an origin server with its signing reverse proxy, and an edge
// proxy with WPAD/PAC auto-configuration — the full Figure 11 pipeline.
//
// Usage:
//
//	idicnd                  # start the stack, publish demo content, serve until interrupted
//	idicnd -demo            # additionally fetch the demo content through the proxy and exit
//	idicnd -log-requests    # log one structured line per HTTP request to stderr
//
// With the stack running, a browser configured with the printed PAC URL (or
// curl with an explicit Host header) fetches content by self-certifying
// name; the proxy authenticates every object before serving it. A debug
// server exposes live counters and latency histograms for every component
// at /debug/metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"idicn/internal/faults"
	"idicn/internal/httpx"
	"idicn/internal/idicn/dnsbridge"
	"idicn/internal/idicn/names"
	"idicn/internal/idicn/origin"
	"idicn/internal/idicn/proxy"
	"idicn/internal/idicn/resolver"
	"idicn/internal/obs"
	"idicn/internal/overload"
)

func main() {
	demo := flag.Bool("demo", false, "run a one-shot fetch through the proxy and exit")
	contentDir := flag.String("content", "", "publish every file in this directory at startup")
	logRequests := flag.Bool("log-requests", false, "log one structured line per HTTP request to stderr")
	faultSpec := flag.String("faults", "", "fault-injection plan, e.g. 'resolver:blackout,from=300,to=600;origin:latency,d=20ms,p=0.5' (see internal/faults)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault plan's RNG; same seed, same faults")
	maxConcurrency := flag.Int("max-concurrency", 0, "cap on each component's adaptive concurrency limit (0 = 64)")
	queueDeadline := flag.Duration("queue-deadline", 0, "per-request admission queue wait budget; predicted-to-exceed requests are shed immediately (0 = 1s serving, 100ms benchmarking)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a SIGTERM drain waits for in-flight requests before giving up")
	benchDaemon := flag.String("bench-daemon", "", "run the open-loop overload benchmark and append a JSON line to this file, then exit")
	flag.Parse()
	var logW io.Writer
	if *logRequests {
		logW = os.Stderr
	}
	var plan *faults.Plan
	if *faultSpec != "" {
		var err error
		if plan, err = faults.ParsePlan(*faultSpec, *faultSeed); err != nil {
			fmt.Fprintf(os.Stderr, "idicnd: %v\n", err)
			os.Exit(1)
		}
	}
	ocfg := overload.Config{
		MaxConcurrency: *maxConcurrency,
		QueueDeadline:  *queueDeadline,
	}
	if *benchDaemon != "" {
		if err := runBench(*benchDaemon, ocfg, *faultSpec, *faultSeed); err != nil {
			fmt.Fprintf(os.Stderr, "idicnd: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*demo, *contentDir, logW, plan, ocfg, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "idicnd: %v\n", err)
		os.Exit(1)
	}
}

// stack is the assembled idICN deployment: every component plus the
// metrics registry observing them. Tests build one against httptest
// listeners; main serves it on loopback ports.
type stack struct {
	registry *resolver.Registry
	origin   *origin.Server
	proxy    *proxy.Proxy
	metrics  *obs.Registry
	drainer  *overload.Drainer
	ctls     map[string]*overload.Controller // per-component admission controllers

	resolverURL string
	originURL   string
	proxyURL    string
	debugURL    string
}

// newStack wires the resolver, origin, and edge proxy together, wrapping
// each HTTP surface with request instrumentation and overload admission
// control. listen must start serving the handler and return its base URL.
// logW, when non-nil, receives one structured log line per request (the
// -log-requests flag). plan, when non-nil, injects the configured faults
// into each component's server side (the -faults flag), with per-kind
// counters in the metrics registry. ocfg shapes each component's admission
// controller; drainer, when non-nil, is consulted before admission and
// served on /healthz + /readyz (nil gets a stack-private drainer, so those
// endpoints always exist). The returned stack's debugURL serves
// /debug/metrics with live counters from every component.
func newStack(listen func(http.Handler) (string, error), logW io.Writer, plan *faults.Plan, ocfg overload.Config, drainer *overload.Drainer) (*stack, error) {
	metrics := obs.NewRegistry()
	if drainer == nil {
		drainer = &overload.Drainer{}
	}
	var logger obs.RequestHook
	if logW != nil {
		logger = obs.NewRequestLogger(logW, nil)
	}
	ctls := make(map[string]*overload.Controller)
	// Admission order, outside in: instrumentation sees every request
	// (sheds included, as 503s), the overload controller decides whether
	// the component does the work at all, and only admitted requests reach
	// the fault injector and the handler — so injected latency counts as
	// service time and feeds the adaptive limit.
	wrap := func(component string, h http.Handler) http.Handler {
		if plan != nil {
			inj := plan.Injector(component)
			inj.RegisterMetrics(metrics)
			h = inj.Middleware(h)
		}
		ctl := overload.NewController(ocfg)
		ctl.SetDraining(drainer.Draining)
		ctl.RegisterMetrics(metrics, component)
		ctls[component] = ctl
		h = ctl.Middleware(h)
		return obs.Instrument(component,
			obs.MultiHook(obs.NewHTTPMetrics(metrics, component), logger), h)
	}

	// Outgoing calls propagate the remaining request budget via the
	// X-ICN-Deadline header, so a downstream component never works on a
	// request its upstream has already written off.
	outbound := func() *http.Client {
		return &http.Client{Timeout: 10 * time.Second, Transport: overload.Transport(nil)}
	}

	// Name resolution system.
	registry := resolver.NewRegistry()
	resolverSrv := resolver.NewServer(registry)
	resolverSrv.RegisterMetrics(metrics)
	resolverURL, err := listen(wrap("resolver", resolverSrv))
	if err != nil {
		return nil, err
	}
	resolverClient := resolver.NewClient(resolverURL, outbound())

	// Content provider: origin + signing reverse proxy under a fresh
	// principal. The origin needs its own URL before construction, so the
	// listener serves through a late-bound closure.
	principal, err := names.NewPrincipal(nil)
	if err != nil {
		return nil, err
	}
	var org *origin.Server
	originURL, err := listen(wrap("origin", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		org.ServeHTTP(w, r)
	})))
	if err != nil {
		return nil, err
	}
	org = origin.New(principal, resolverClient, originURL)
	org.RegisterMetrics(metrics)

	// Edge proxy with PAC auto-configuration. Its brownout hook follows its
	// own admission controller: proxy pressure degrades proxy behavior.
	px := proxy.New(resolverClient, proxy.WithHTTPClient(outbound()))
	px.RegisterMetrics(metrics)
	proxyURL, err := listen(wrap("proxy", px))
	if err != nil {
		return nil, err
	}
	px.Brownout = ctls["proxy"].Tier

	// Debug server: live counters and histograms for every component, plus
	// the liveness/readiness pair the drain path flips.
	debugMux := http.NewServeMux()
	debugMux.Handle("/debug/metrics", metrics.Handler())
	debugMux.Handle("/healthz", drainer.Healthz())
	debugMux.Handle("/readyz", drainer.Readyz())
	debugURL, err := listen(debugMux)
	if err != nil {
		return nil, err
	}

	return &stack{
		registry:    registry,
		origin:      org,
		proxy:       px,
		metrics:     metrics,
		drainer:     drainer,
		ctls:        ctls,
		resolverURL: resolverURL,
		originURL:   originURL,
		proxyURL:    proxyURL,
		debugURL:    debugURL,
	}, nil
}

func run(demo bool, contentDir string, logW io.Writer, plan *faults.Plan, ocfg overload.Config, drainTimeout time.Duration) error {
	ctx := context.Background()

	// Every loopback server is registered with the drainer, so one SIGTERM
	// stops all accept loops and waits for in-flight requests together.
	drainer := &overload.Drainer{}
	listen := func(h http.Handler) (string, error) {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		srv := httpx.Start(lis, h)
		drainer.Manage(srv)
		return srv.URL(), nil
	}

	st, err := newStack(listen, logW, plan, ocfg, drainer)
	if err != nil {
		return err
	}
	fmt.Printf("resolver    %s\n", st.resolverURL)
	fmt.Printf("origin      %s (publisher %s)\n", st.originURL, st.origin.Principal().KeyHash())
	fmt.Printf("edge proxy  %s (PAC at %s/wpad.dat)\n", st.proxyURL, st.proxyURL)
	fmt.Printf("debug       %s/debug/metrics\n", st.debugURL)

	// DNS bridge: answers A queries for *.idicn.org with the proxy's
	// address so unmodified stub resolvers land at the edge proxy.
	proxyHost, _, _ := strings.Cut(strings.TrimPrefix(st.proxyURL, "http://"), ":")
	dns, err := dnsbridge.NewServer("127.0.0.1:0", names.Domain, []string{proxyHost}, 60)
	if err != nil {
		return err
	}
	defer dns.Close()
	fmt.Printf("dns bridge  %s (authoritative for %s)\n", dns.Addr(), names.Domain)

	// Publish demo content (steps P1, P2).
	pages := map[string]string{
		"welcome":  "Welcome to idICN: incrementally deployable information-centric networking.",
		"headline": "Less pain, most of the gain.",
	}
	for label, text := range pages {
		n, err := st.origin.Publish(ctx, label, "text/plain", []byte(text))
		if err != nil {
			return err
		}
		fmt.Printf("published   http://%s/  (label %q)\n", n.DNS(), label)
	}
	if contentDir != "" {
		published, err := st.origin.PublishDir(ctx, contentDir)
		if err != nil {
			return err
		}
		for label, n := range published {
			fmt.Printf("published   http://%s/  (file label %q)\n", n.DNS(), label)
		}
	}

	if demo {
		return runDemo(ctx, st.origin, st.proxyURL)
	}

	fmt.Println("\nserving; ctrl-c or SIGTERM to drain and exit")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig

	// Graceful drain: flip readiness, stop accepting, finish in-flight
	// requests within the bound, exit 0. A drain that cannot finish in time
	// returns the context error and exits non-zero — an honest failure
	// beats a silent connection reset.
	fmt.Printf("received %v; draining (up to %v)\n", s, drainTimeout)
	dctx, cancel := context.WithTimeout(ctx, drainTimeout)
	defer cancel()
	if err := drainer.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("drained cleanly")
	return nil
}

// runDemo fetches a published name through the edge proxy twice, showing
// the miss-then-hit behavior and signature verification.
func runDemo(ctx context.Context, org *origin.Server, proxyURL string) error {
	n, err := org.Principal().Name("welcome")
	if err != nil {
		return err
	}
	for i := 1; i <= 2; i++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, proxyURL+"/", nil)
		if err != nil {
			return err
		}
		req.Host = n.DNS()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close() // body fully read; nothing left to lose
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fetch %d: status %s: %s", i, resp.Status, body)
		}
		fmt.Printf("\nfetch %d: X-Cache=%s\n  name   %s\n  body   %q\n  digest %s\n",
			i, resp.Header.Get("X-Cache"), n, body, resp.Header.Get("Digest"))
	}
	fmt.Printf("\norigin hits: %d (the second fetch was served by the edge cache)\n", org.OriginHits())
	return nil
}
