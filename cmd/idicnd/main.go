// Command idicnd runs a complete idICN deployment on loopback: a name
// resolver, an origin server with its signing reverse proxy, and an edge
// proxy with WPAD/PAC auto-configuration — the full Figure 11 pipeline.
//
// Usage:
//
//	idicnd                  # start the stack, publish demo content, serve until interrupted
//	idicnd -demo            # additionally fetch the demo content through the proxy and exit
//	idicnd -log-requests    # log one structured line per HTTP request to stderr
//
// With the stack running, a browser configured with the printed PAC URL (or
// curl with an explicit Host header) fetches content by self-certifying
// name; the proxy authenticates every object before serving it. A debug
// server exposes live counters and latency histograms for every component
// at /debug/metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"idicn/internal/faults"
	"idicn/internal/httpx"
	"idicn/internal/idicn/dnsbridge"
	"idicn/internal/idicn/names"
	"idicn/internal/idicn/origin"
	"idicn/internal/idicn/proxy"
	"idicn/internal/idicn/resolver"
	"idicn/internal/obs"
)

func main() {
	demo := flag.Bool("demo", false, "run a one-shot fetch through the proxy and exit")
	contentDir := flag.String("content", "", "publish every file in this directory at startup")
	logRequests := flag.Bool("log-requests", false, "log one structured line per HTTP request to stderr")
	faultSpec := flag.String("faults", "", "fault-injection plan, e.g. 'resolver:blackout,from=300,to=600;origin:latency,d=20ms,p=0.5' (see internal/faults)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault plan's RNG; same seed, same faults")
	flag.Parse()
	var logW io.Writer
	if *logRequests {
		logW = os.Stderr
	}
	var plan *faults.Plan
	if *faultSpec != "" {
		var err error
		if plan, err = faults.ParsePlan(*faultSpec, *faultSeed); err != nil {
			fmt.Fprintf(os.Stderr, "idicnd: %v\n", err)
			os.Exit(1)
		}
	}
	if err := run(*demo, *contentDir, logW, plan); err != nil {
		fmt.Fprintf(os.Stderr, "idicnd: %v\n", err)
		os.Exit(1)
	}
}

// stack is the assembled idICN deployment: every component plus the
// metrics registry observing them. Tests build one against httptest
// listeners; main serves it on loopback ports.
type stack struct {
	registry *resolver.Registry
	origin   *origin.Server
	proxy    *proxy.Proxy
	metrics  *obs.Registry

	resolverURL string
	originURL   string
	proxyURL    string
	debugURL    string
}

// newStack wires the resolver, origin, and edge proxy together, wrapping
// each HTTP surface with request instrumentation. listen must start serving
// the handler and return its base URL. logW, when non-nil, receives one
// structured log line per request (the -log-requests flag). plan, when
// non-nil, injects the configured faults into each component's server side
// (the -faults flag), with per-kind counters in the metrics registry. The
// returned stack's debugURL serves /debug/metrics with live counters from
// every component.
func newStack(listen func(http.Handler) (string, error), logW io.Writer, plan *faults.Plan) (*stack, error) {
	metrics := obs.NewRegistry()
	var logger obs.RequestHook
	if logW != nil {
		logger = obs.NewRequestLogger(logW, nil)
	}
	wrap := func(component string, h http.Handler) http.Handler {
		if plan != nil {
			inj := plan.Injector(component)
			inj.RegisterMetrics(metrics)
			h = inj.Middleware(h)
		}
		return obs.Instrument(component,
			obs.MultiHook(obs.NewHTTPMetrics(metrics, component), logger), h)
	}

	// Name resolution system.
	registry := resolver.NewRegistry()
	resolverSrv := resolver.NewServer(registry)
	resolverSrv.RegisterMetrics(metrics)
	resolverURL, err := listen(wrap("resolver", resolverSrv))
	if err != nil {
		return nil, err
	}
	resolverClient := resolver.NewClient(resolverURL, nil)

	// Content provider: origin + signing reverse proxy under a fresh
	// principal. The origin needs its own URL before construction, so the
	// listener serves through a late-bound closure.
	principal, err := names.NewPrincipal(nil)
	if err != nil {
		return nil, err
	}
	var org *origin.Server
	originURL, err := listen(wrap("origin", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		org.ServeHTTP(w, r)
	})))
	if err != nil {
		return nil, err
	}
	org = origin.New(principal, resolverClient, originURL)
	org.RegisterMetrics(metrics)

	// Edge proxy with PAC auto-configuration.
	px := proxy.New(resolverClient)
	px.RegisterMetrics(metrics)
	proxyURL, err := listen(wrap("proxy", px))
	if err != nil {
		return nil, err
	}

	// Debug server: live counters and histograms for every component.
	debugMux := http.NewServeMux()
	debugMux.Handle("/debug/metrics", metrics.Handler())
	debugURL, err := listen(debugMux)
	if err != nil {
		return nil, err
	}

	return &stack{
		registry:    registry,
		origin:      org,
		proxy:       px,
		metrics:     metrics,
		resolverURL: resolverURL,
		originURL:   originURL,
		proxyURL:    proxyURL,
		debugURL:    debugURL,
	}, nil
}

func run(demo bool, contentDir string, logW io.Writer, plan *faults.Plan) error {
	ctx := context.Background()

	st, err := newStack(serve, logW, plan)
	if err != nil {
		return err
	}
	fmt.Printf("resolver    %s\n", st.resolverURL)
	fmt.Printf("origin      %s (publisher %s)\n", st.originURL, st.origin.Principal().KeyHash())
	fmt.Printf("edge proxy  %s (PAC at %s/wpad.dat)\n", st.proxyURL, st.proxyURL)
	fmt.Printf("debug       %s/debug/metrics\n", st.debugURL)

	// DNS bridge: answers A queries for *.idicn.org with the proxy's
	// address so unmodified stub resolvers land at the edge proxy.
	proxyHost, _, _ := strings.Cut(strings.TrimPrefix(st.proxyURL, "http://"), ":")
	dns, err := dnsbridge.NewServer("127.0.0.1:0", names.Domain, []string{proxyHost}, 60)
	if err != nil {
		return err
	}
	defer dns.Close()
	fmt.Printf("dns bridge  %s (authoritative for %s)\n", dns.Addr(), names.Domain)

	// Publish demo content (steps P1, P2).
	pages := map[string]string{
		"welcome":  "Welcome to idICN: incrementally deployable information-centric networking.",
		"headline": "Less pain, most of the gain.",
	}
	for label, text := range pages {
		n, err := st.origin.Publish(ctx, label, "text/plain", []byte(text))
		if err != nil {
			return err
		}
		fmt.Printf("published   http://%s/  (label %q)\n", n.DNS(), label)
	}
	if contentDir != "" {
		published, err := st.origin.PublishDir(ctx, contentDir)
		if err != nil {
			return err
		}
		for label, n := range published {
			fmt.Printf("published   http://%s/  (file label %q)\n", n.DNS(), label)
		}
	}

	if demo {
		return runDemo(ctx, st.origin, st.proxyURL)
	}

	fmt.Println("\nserving; ctrl-c to exit")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	return nil
}

// runDemo fetches a published name through the edge proxy twice, showing
// the miss-then-hit behavior and signature verification.
func runDemo(ctx context.Context, org *origin.Server, proxyURL string) error {
	n, err := org.Principal().Name("welcome")
	if err != nil {
		return err
	}
	for i := 1; i <= 2; i++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, proxyURL+"/", nil)
		if err != nil {
			return err
		}
		req.Host = n.DNS()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close() // body fully read; nothing left to lose
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fetch %d: status %s: %s", i, resp.Status, body)
		}
		fmt.Printf("\nfetch %d: X-Cache=%s\n  name   %s\n  body   %q\n  digest %s\n",
			i, resp.Header.Get("X-Cache"), n, body, resp.Header.Get("Digest"))
	}
	fmt.Printf("\norigin hits: %d (the second fetch was served by the edge cache)\n", org.OriginHits())
	return nil
}

// serve starts an HTTP server on a fresh loopback port and returns its URL.
func serve(h http.Handler) (string, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go httpx.Serve(lis, h)
	return "http://" + lis.Addr().String(), nil
}
