// Command idicnd runs a complete idICN deployment on loopback: a name
// resolver, an origin server with its signing reverse proxy, and an edge
// proxy with WPAD/PAC auto-configuration — the full Figure 11 pipeline.
//
// Usage:
//
//	idicnd             # start the stack, publish demo content, serve until interrupted
//	idicnd -demo       # additionally fetch the demo content through the proxy and exit
//
// With the stack running, a browser configured with the printed PAC URL (or
// curl with an explicit Host header) fetches content by self-certifying
// name; the proxy authenticates every object before serving it.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"idicn/internal/idicn/dnsbridge"
	"idicn/internal/idicn/names"
	"idicn/internal/idicn/origin"
	"idicn/internal/idicn/proxy"
	"idicn/internal/idicn/resolver"
)

func main() {
	demo := flag.Bool("demo", false, "run a one-shot fetch through the proxy and exit")
	contentDir := flag.String("content", "", "publish every file in this directory at startup")
	flag.Parse()
	if err := run(*demo, *contentDir); err != nil {
		fmt.Fprintf(os.Stderr, "idicnd: %v\n", err)
		os.Exit(1)
	}
}

func run(demo bool, contentDir string) error {
	ctx := context.Background()

	// Name resolution system.
	registry := resolver.NewRegistry()
	resolverURL, err := serve(resolver.NewServer(registry))
	if err != nil {
		return err
	}
	fmt.Printf("resolver    %s\n", resolverURL)
	resolverClient := resolver.NewClient(resolverURL, nil)

	// Content provider: origin + reverse proxy under a fresh principal.
	principal, err := names.NewPrincipal(nil)
	if err != nil {
		return err
	}
	var org *origin.Server
	originURL, err := serve(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		org.ServeHTTP(w, r)
	}))
	if err != nil {
		return err
	}
	org = origin.New(principal, resolverClient, originURL)
	fmt.Printf("origin      %s (publisher %s)\n", originURL, principal.KeyHash())

	// Edge proxy with PAC auto-configuration.
	px := proxy.New(resolverClient)
	proxyURL, err := serve(px)
	if err != nil {
		return err
	}
	fmt.Printf("edge proxy  %s (PAC at %s/wpad.dat)\n", proxyURL, proxyURL)

	// DNS bridge: answers A queries for *.idicn.org with the proxy's
	// address so unmodified stub resolvers land at the edge proxy.
	proxyHost, _, _ := strings.Cut(strings.TrimPrefix(proxyURL, "http://"), ":")
	dns, err := dnsbridge.NewServer("127.0.0.1:0", names.Domain, []string{proxyHost}, 60)
	if err != nil {
		return err
	}
	defer dns.Close()
	fmt.Printf("dns bridge  %s (authoritative for %s)\n", dns.Addr(), names.Domain)

	// Publish demo content (steps P1, P2).
	pages := map[string]string{
		"welcome":  "Welcome to idICN: incrementally deployable information-centric networking.",
		"headline": "Less pain, most of the gain.",
	}
	for label, text := range pages {
		n, err := org.Publish(ctx, label, "text/plain", []byte(text))
		if err != nil {
			return err
		}
		fmt.Printf("published   http://%s/  (label %q)\n", n.DNS(), label)
	}
	if contentDir != "" {
		published, err := org.PublishDir(ctx, contentDir)
		if err != nil {
			return err
		}
		for label, n := range published {
			fmt.Printf("published   http://%s/  (file label %q)\n", n.DNS(), label)
		}
	}

	if demo {
		return runDemo(ctx, org, proxyURL)
	}

	fmt.Println("\nserving; ctrl-c to exit")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	return nil
}

// runDemo fetches a published name through the edge proxy twice, showing
// the miss-then-hit behavior and signature verification.
func runDemo(ctx context.Context, org *origin.Server, proxyURL string) error {
	n, err := org.Principal().Name("welcome")
	if err != nil {
		return err
	}
	for i := 1; i <= 2; i++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, proxyURL+"/", nil)
		if err != nil {
			return err
		}
		req.Host = n.DNS()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fetch %d: status %s: %s", i, resp.Status, body)
		}
		fmt.Printf("\nfetch %d: X-Cache=%s\n  name   %s\n  body   %q\n  digest %s\n",
			i, resp.Header.Get("X-Cache"), n, body, resp.Header.Get("Digest"))
	}
	fmt.Printf("\norigin hits: %d (the second fetch was served by the edge cache)\n", org.OriginHits())
	return nil
}

// serve starts an HTTP server on a fresh loopback port and returns its URL.
func serve(h http.Handler) (string, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go http.Serve(lis, h)
	return "http://" + lis.Addr().String(), nil
}
