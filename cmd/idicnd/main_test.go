package main

import (
	"os"
	"testing"
)

func TestRunDemo(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/extra.txt", []byte("from a file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(true, dir); err != nil {
		t.Fatalf("demo run failed: %v", err)
	}
}

func TestRunRejectsBadContentDir(t *testing.T) {
	if err := run(true, "/nonexistent/surely"); err == nil {
		t.Fatal("bad content dir accepted")
	}
}
