package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"idicn/internal/overload"
)

func TestRunDemo(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/extra.txt", []byte("from a file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(true, dir, io.Discard, nil, overload.Config{}, time.Second); err != nil {
		t.Fatalf("demo run failed: %v", err)
	}
}

func TestRunRejectsBadContentDir(t *testing.T) {
	if err := run(true, "/nonexistent/surely", nil, nil, overload.Config{}, time.Second); err == nil {
		t.Fatal("bad content dir accepted")
	}
}

// TestStackDebugMetrics drives the full stack over httptest listeners and
// checks that /debug/metrics reflects the traffic: a publish, a cache miss,
// a cache hit, and per-component request counters.
func TestStackDebugMetrics(t *testing.T) {
	var servers []*httptest.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	listen := func(h http.Handler) (string, error) {
		s := httptest.NewServer(h)
		servers = append(servers, s)
		return s.URL, nil
	}
	var logBuf bytes.Buffer
	st, err := newStack(listen, &logBuf, nil, overload.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	n, err := st.origin.Publish(ctx, "welcome", "text/plain", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}

	fetch := func(wantCache string) {
		t.Helper()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, st.proxyURL+"/", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Host = n.DNS()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("proxy fetch: status %s: %s", resp.Status, body)
		}
		if got := resp.Header.Get("X-Cache"); got != wantCache {
			t.Fatalf("X-Cache = %q, want %q", got, wantCache)
		}
	}
	fetch("MISS")
	fetch("HIT")

	resp, err := http.Get(st.debugURL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/metrics: status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		"proxy_requests_total 2",
		"proxy_cache_misses_total 1",
		"proxy_cache_hits_total 1",
		"proxy_content_hits 1",
		"proxy_content_misses 1",
		"proxy_cached_objects 1",
		"origin_published_objects 1",
		"origin_store_hits 1",
		"resolver_registered_names",
		"resolver_requests_total",
		"origin_requests_total",
		"proxy_request_seconds_count 2",
		"proxy_overload_admitted_total 2",
		"proxy_overload_shed_total 0",
		"proxy_overload_queue_wait_seconds_count 2",
		"proxy_overload_brownout_tier 0",
		"origin_overload_admitted_total",
		"resolver_overload_admitted_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/debug/metrics missing %q; body:\n%s", want, metrics)
		}
	}

	for path, want := range map[string]int{"/healthz": http.StatusOK, "/readyz": http.StatusOK} {
		resp, err := http.Get(st.debugURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	log := logBuf.String()
	for _, want := range []string{"component=proxy", "component=origin", "component=resolver", "cache=HIT", "cache=MISS", "status=200"} {
		if !strings.Contains(log, want) {
			t.Errorf("request log missing %q; log:\n%s", want, log)
		}
	}
}
