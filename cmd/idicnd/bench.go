package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"idicn/internal/faults"
	"idicn/internal/httpx"
	"idicn/internal/idicn/names"
	"idicn/internal/overload"
)

// DaemonBenchRecord is one load point in the BENCH_daemon.json overload
// series: open-loop traffic at a multiple of measured capacity, with the
// daemon's admission decisions and queue-wait tail. The interesting claim
// is the trend: admitted/sec should hold near capacity as offered load
// grows past it (excess is shed at the queue for ~free), and the p99 queue
// wait should stay bounded by the queue deadline instead of growing with
// offered load.
type DaemonBenchRecord struct {
	Name           string  `json:"name"`
	LoadFactor     float64 `json:"load_factor"` // offered load as a multiple of capacity
	OfferedPerSec  float64 `json:"offered_per_sec"`
	AdmittedPerSec float64 `json:"admitted_per_sec"`
	ShedPerSec     float64 `json:"shed_per_sec"`
	ErrorsPerSec   float64 `json:"errors_per_sec"`
	P99QueueWaitMs float64 `json:"p99_queue_wait_ms"`
	Limit          int     `json:"limit"`
	// FaultPlan is the chaos spec active during this point ("" for the plain
	// overload series); MaxBrownoutTier is the highest degradation tier the
	// proxy reached while the point ran.
	FaultPlan           string `json:"fault_plan,omitempty"`
	MaxBrownoutTier     string `json:"max_brownout_tier,omitempty"`
	BrownoutTransitions int64  `json:"brownout_transitions,omitempty"`
	Time                string `json:"time,omitempty"`
}

// benchChaos is an extra fault plan layered on top of the bench's baseline
// injected service latency: the load-under-chaos drill.
type benchChaos struct {
	spec string
	seed int64
}

// benchStack is one disposable daemon instance for a single load point:
// fresh controllers (so histograms measure only this point) and servers we
// can tear down.
type benchStack struct {
	st      *stack
	servers []*httpx.Server
	name    names.Name
	client  *http.Client
}

func (b *benchStack) close() {
	for _, s := range b.servers {
		_ = s.Close()
	}
}

// newBenchStack builds a stack with a fixed concurrency limit and a
// deterministic injected service latency on the proxy, then publishes and
// warms one object so the measured path is the admission pipeline plus a
// cache hit — the overload behavior under test, not resolver variance. A
// non-empty chaos spec is merged into the same plan, so its faults stack on
// top of the baseline service latency.
func newBenchStack(ocfg overload.Config, svcLatency time.Duration, chaos benchChaos) (*benchStack, error) {
	spec := fmt.Sprintf("proxy:latency,d=%s,p=1", svcLatency)
	seed := int64(1)
	if chaos.spec != "" {
		spec += ";" + chaos.spec
		seed = chaos.seed
	}
	plan, err := faults.ParsePlan(spec, seed)
	if err != nil {
		return nil, err
	}
	// A deep idle-connection pool: the open-loop points run hundreds of
	// concurrent requests against one host, and connection churn through the
	// default two-connection pool would dominate what we mean to measure.
	b := &benchStack{client: &http.Client{Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
	}}}
	listen := func(h http.Handler) (string, error) {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		srv := httpx.Start(lis, h)
		b.servers = append(b.servers, srv)
		return srv.URL(), nil
	}
	st, err := newStack(listen, nil, plan, ocfg, nil)
	if err != nil {
		b.close()
		return nil, err
	}
	b.st = st
	n, err := st.origin.Publish(context.Background(), "bench", "text/plain", []byte("overload bench object"))
	if err != nil {
		b.close()
		return nil, err
	}
	b.name = n
	if status, err := b.fetch(context.Background()); err != nil || status != http.StatusOK {
		b.close()
		return nil, fmt.Errorf("warm-up fetch: status %d err %v", status, err)
	}
	return b, nil
}

// fetch requests the published object through the edge proxy.
func (b *benchStack) fetch(ctx context.Context) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.st.proxyURL+"/", nil)
	if err != nil {
		return 0, err
	}
	req.Host = b.name.DNS()
	resp, err := b.client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

// measureCapacity runs a closed loop at exactly the concurrency limit for
// the calibration window and returns the sustained requests/sec — the 1x
// reference the open-loop points are multiples of.
func measureCapacity(ocfg overload.Config, svcLatency, window time.Duration) (float64, error) {
	b, err := newBenchStack(ocfg, svcLatency, benchChaos{})
	if err != nil {
		return 0, err
	}
	defer b.close()
	workers := b.st.ctls["proxy"].Queue().Limit()
	var done atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if status, err := b.fetch(context.Background()); err == nil && status == http.StatusOK {
					done.Add(1)
				}
			}
		}()
	}
	start := time.Now()
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if done.Load() == 0 {
		return 0, fmt.Errorf("bench: calibration made no progress")
	}
	return float64(done.Load()) / elapsed, nil
}

// runLoadPoint offers open-loop traffic at ratePerSec for the window —
// requests launch on schedule whether or not earlier ones finished, which
// is what makes overload possible — and reports the admission outcome.
func runLoadPoint(ocfg overload.Config, svcLatency, window time.Duration, factor, ratePerSec float64, stamp, name string, chaos benchChaos) (DaemonBenchRecord, error) {
	b, err := newBenchStack(ocfg, svcLatency, chaos)
	if err != nil {
		return DaemonBenchRecord{}, err
	}
	defer b.close()

	// Sample the proxy's brownout tier while the point runs: the record wants
	// the highest tier reached, and by the time the load stops the ladder may
	// already have stepped back down.
	maxTier := b.st.ctls["proxy"].Tier()
	tierStop := make(chan struct{})
	var tierWG sync.WaitGroup
	tierWG.Add(1)
	go func() {
		defer tierWG.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tierStop:
				return
			case <-tick.C:
				if t := b.st.ctls["proxy"].Tier(); t > maxTier {
					maxTier = t
				}
			}
		}
	}()

	var offered, admitted, shed, failed atomic.Int64
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / ratePerSec)
	start := time.Now()
	for next := start; time.Since(start) < window; next = next.Add(interval) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		offered.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			status, err := b.fetch(ctx)
			switch {
			case err != nil:
				failed.Add(1)
			case status == http.StatusOK:
				admitted.Add(1)
			case status == http.StatusServiceUnavailable:
				shed.Add(1)
			default:
				failed.Add(1)
			}
		}()
	}
	// Rates are over the launch window only: waiting for the in-flight tail
	// and then dividing by the longer elapsed time would deflate every rate
	// by however long the slowest straggler took.
	elapsed := time.Since(start).Seconds()
	wg.Wait()
	close(tierStop)
	tierWG.Wait()

	ctl := b.st.ctls["proxy"]
	return DaemonBenchRecord{
		Name:                name,
		LoadFactor:          factor,
		OfferedPerSec:       float64(offered.Load()) / elapsed,
		AdmittedPerSec:      float64(admitted.Load()) / elapsed,
		ShedPerSec:          float64(shed.Load()) / elapsed,
		ErrorsPerSec:        float64(failed.Load()) / elapsed,
		P99QueueWaitMs:      ctl.QueueWait().Quantile(0.99) * 1000,
		Limit:               ctl.Queue().Limit(),
		FaultPlan:           chaos.spec,
		MaxBrownoutTier:     maxTier.String(),
		BrownoutTransitions: ctl.Brownout().Transitions(),
		Time:                stamp,
	}, nil
}

// runBench measures the daemon's overload behavior — admitted/sec and p99
// queue wait at 1x, 2x, and 4x measured capacity — and appends the records
// to path. A non-empty chaosSpec (the -faults flag) adds a load-under-chaos
// point: 2x offered load with the extra faults active, asserting that the
// brownout ladder engaged and that goodput held above a quarter of the
// measured fault-free capacity. Invoked by `idicnd -bench-daemon <file>`
// (and `make bench`).
func runBench(path string, ocfg overload.Config, chaosSpec string, chaosSeed int64) error {
	// Fix the concurrency limit and inject a deterministic service latency:
	// the bench measures the admission pipeline's behavior at known
	// multiples of a known capacity, not the adaptive limiter's hunt. The
	// limit/latency pair is chosen for a deliberately small capacity
	// (~50 req/s) so that even on a single-core box the sleep-paced
	// generator can offer an honest 4x and the scheduler isn't the thing
	// being measured.
	if ocfg.MaxConcurrency <= 0 {
		ocfg.MaxConcurrency = 2
	}
	ocfg.MinConcurrency = ocfg.MaxConcurrency
	ocfg.InitialConcurrency = ocfg.MaxConcurrency
	if ocfg.QueueDeadline <= 0 {
		ocfg.QueueDeadline = 100 * time.Millisecond
	}
	const svcLatency = 40 * time.Millisecond
	const window = 2 * time.Second

	capacity, err := measureCapacity(ocfg, svcLatency, time.Second)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "idicnd: bench capacity %.0f req/s at limit %d\n", capacity, ocfg.MaxConcurrency)

	stamp := time.Now().UTC().Format(time.RFC3339)
	var fresh []DaemonBenchRecord
	for _, factor := range []float64{1, 2, 4} {
		rec, err := runLoadPoint(ocfg, svcLatency, window, factor, capacity*factor, stamp, "DaemonOverload/proxy", benchChaos{})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "idicnd: bench %gx: offered %.0f/s admitted %.0f/s shed %.0f/s p99 wait %.1fms\n",
			factor, rec.OfferedPerSec, rec.AdmittedPerSec, rec.ShedPerSec, rec.P99QueueWaitMs)
		fresh = append(fresh, rec)
	}

	if chaosSpec != "" {
		chaos := benchChaos{spec: chaosSpec, seed: chaosSeed}
		rec, err := runLoadPoint(ocfg, svcLatency, window, 2, capacity*2, stamp, "DaemonOverload/proxy-chaos", chaos)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "idicnd: bench 2x+chaos [%s]: admitted %.0f/s shed %.0f/s errors %.0f/s max tier %s (%d transitions)\n",
			chaosSpec, rec.AdmittedPerSec, rec.ShedPerSec, rec.ErrorsPerSec, rec.MaxBrownoutTier, rec.BrownoutTransitions)
		// The drill's two claims: degradation engaged (the tiers are doing
		// their job, not sitting idle while the queue melts) and the daemon
		// kept serving a usable fraction of its fault-free capacity.
		if rec.MaxBrownoutTier == overload.TierNormal.String() {
			return fmt.Errorf("idicnd: chaos bench: brownout never engaged under %q at 2x load", chaosSpec)
		}
		if floor := 0.25 * capacity; rec.AdmittedPerSec < floor {
			return fmt.Errorf("idicnd: chaos bench: goodput %.0f/s below the %.0f/s floor (25%% of %.0f/s fault-free capacity)",
				rec.AdmittedPerSec, floor, capacity)
		}
		fresh = append(fresh, rec)
	}

	var records []DaemonBenchRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	records = append(records, fresh...)
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "idicnd: appended %d overload records to %s\n", len(fresh), path)
	return nil
}
