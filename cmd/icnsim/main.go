// Command icnsim regenerates the paper's tables and figures from the
// request-level cache simulator.
//
// Usage:
//
//	icnsim -exp table2|fig1|fig2|fig6|fig7|table3|fig8a|fig8b|fig8c|table4|fig9|fig10 \
//	       [-scale 0.1] [-seed N] [-arity 2] [-depth 5] [-budget 0.05] \
//	       [-alpha 1.04] [-objects N] [-sweep-topology ATT] [-workers N]
//	icnsim -exp sens-latency|sens-capacity|sens-objsize|sens-policy|ablation-universe
//	icnsim -exp all     # everything, in paper order
//	icnsim -policy arc -exp fig6    # run any experiment under a different cache policy
//	icnsim -policy-sweep            # cache-policy zoo x placement/routing designs
//	icnsim -failures 0,0.1,0.3,0.5   # degradation curve under cache/resolver outages
//	icnsim -bench-json BENCH_sim.json   # hot-path perf log (ns/op, allocs/op)
//	icnsim -exp fig6 -metrics-json metrics.json   # observer histograms for the run
//
// Scale 1 is paper scale (the 1.8M-request Asia workload); the default 0.05
// finishes in minutes on a laptop core. Output is aligned text, one table
// per experiment, matching the rows/series of the paper's evaluation.
//
// Independent simulation runs fan out across a worker pool (-workers,
// default GOMAXPROCS). Every run is deterministic given its configuration,
// so output is byte-identical at any worker count. -cpuprofile/-memprofile
// write runtime/pprof profiles for perf work.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"idicn/internal/experiments"
	"idicn/internal/sim"
	"idicn/internal/topo"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id (see package comment)")
		scale       = flag.Float64("scale", 0.05, "workload scale; 1 = paper scale")
		seed        = flag.Int64("seed", 0, "override base seed (0 keeps the default)")
		arity       = flag.Int("arity", 0, "override access-tree arity")
		depth       = flag.Int("depth", 0, "override access-tree depth")
		budget      = flag.Float64("budget", 0, "override per-router budget fraction F")
		alpha       = flag.Float64("alpha", 0, "override Zipf alpha")
		objects     = flag.Int("objects", 0, "override object-universe size")
		sweepTopo   = flag.String("sweep-topology", "", "topology for the sensitivity sweeps (default ATT)")
		policy      = flag.String("policy", "", "cache policy for every provisioned cache: lru, lfu, arc, car, tinylfu, tinylfu+arc, tinylfu+car (default lru)")
		policySweep = flag.Bool("policy-sweep", false, "run the cache-policy x design sweep; shorthand for -exp policy-sweep")
		locality    = flag.Float64("locality", 0, "temporal locality of the request stream (0=IID, ~0.7=trace-like)")
		topoFile    = flag.String("topology-file", "", "load a custom sweep topology from a file (see internal/topo/parse.go for the format)")
		traceFile   = flag.String("trace", "", "request log (tracegen format) for the trace-designs experiment")
		failures    = flag.String("failures", "", "comma-separated cache-failure fractions for the degradation experiment (e.g. 0,0.1,0.3,0.5); implies -exp degradation")
		seeds       = flag.Int("seeds", 5, "independent seeds for the variance experiment")
		workers     = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS); results are identical at any count")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchJSON   = flag.String("bench-json", "", "run the hot-path benchmarks and write ns/op + allocs/op JSON to this file, then exit")
		benchAppend = flag.String("bench-append", "", "run the sharded-throughput benchmarks and append timestamped requests_per_sec records to this JSON file, then exit")
		stream      = flag.Int64("stream", 0, "run one sharded streaming simulation over this many synthetic requests (or a -trace binary file) and print throughput + peak RSS, then exit")
		users       = flag.Int("users", 0, "fixed user population for -stream synthetic workloads (0 = per-request sampling)")
		epochLen    = flag.Int("epoch", 0, "epoch length in requests for sharded streaming runs (0 = default)")
		ckptDir     = flag.String("checkpoint", "", "directory for periodic crash-safe checkpoints of the -stream run; resume with -resume")
		ckptEvery   = flag.Int64("checkpoint-every", 25_000_000, "minimum requests between checkpoints (rounded up to epoch boundaries)")
		ckptFsync   = flag.Bool("checkpoint-fsync", false, "fsync each checkpoint before publishing it (survives power loss, not just process crashes; slow on some filesystems)")
		resume      = flag.Bool("resume", false, "resume the -stream run from the latest good checkpoint in -checkpoint (fresh start if none)")
		streamDes   = flag.String("stream-design", "EDGE", "design for the -stream run (ICN-SP, ICN-NR, EDGE, EDGE-Coop, EDGE-Norm)")
		metricsJSON = flag.String("metrics-json", "", "attach a metrics observer to every run and write its histograms (serve levels, latency, lookup hops, evictions) as JSON to this file; \"-\" writes to stdout")
	)
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("icnsim: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("icnsim: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatalf("icnsim: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("icnsim: %v", err)
			}
		}()
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON); err != nil {
			fatalf("icnsim: bench-json: %v", err)
		}
		return
	}
	if *benchAppend != "" {
		if err := appendBenchJSON(*benchAppend); err != nil {
			fatalf("icnsim: bench-append: %v", err)
		}
		return
	}

	p := experiments.DefaultParams(*scale)
	p.Workers = *workers
	var metrics *sim.MetricsObserver
	if *metricsJSON != "" {
		metrics = sim.NewMetricsObserver(0)
		p.Observer = metrics
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *arity != 0 {
		p.Arity = *arity
	}
	if *depth != 0 {
		p.Depth = *depth
	}
	if *budget != 0 {
		p.BudgetFraction = *budget
	}
	if *alpha != 0 {
		p.Alpha = *alpha
	}
	if *objects != 0 {
		p.Objects = *objects
	}
	if *sweepTopo != "" {
		p.SweepTopology = *sweepTopo
	}
	if *policy != "" {
		pol, err := sim.ParseCachePolicy(*policy)
		if err != nil {
			fatalf("icnsim: -policy: %v", err)
		}
		p.Policy = pol
	}
	if *locality != 0 {
		p.TemporalLocality = *locality
	}
	p.TraceFile = *traceFile
	p.VarianceSeeds = *seeds
	if *topoFile != "" {
		tp, err := topo.LoadTopology(*topoFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icnsim: %v\n", err)
			os.Exit(1)
		}
		p.CustomTopology = tp
	}

	if *workers > 0 {
		fmt.Fprintf(os.Stderr, "icnsim: using %d workers\n", *workers)
	}
	if *resume && *ckptDir == "" {
		fatalf("icnsim: -resume requires -checkpoint <dir>")
	}
	if *stream > 0 || (*traceFile != "" && *exp == "all" && experiments.IsBinaryTrace(*traceFile)) {
		// A sharded streaming run: synthetic (-stream N) or from a recorded
		// binary trace (-trace FILE, alone or with -stream).
		ck := streamCheckpointing{dir: *ckptDir, every: *ckptEvery, resume: *resume, fsync: *ckptFsync}
		if err := runStreamScale(p, *stream, *users, *streamDes, *traceFile, *epochLen, ck); err != nil {
			fatalf("icnsim: stream: %v", err)
		}
		return
	}
	var failFractions []float64
	if *failures != "" {
		var err error
		if failFractions, err = parseFractions(*failures); err != nil {
			fatalf("icnsim: -failures: %v", err)
		}
	}
	ids := strings.Split(*exp, ",")
	if *failures != "" && *exp == "all" {
		// -failures alone runs just the degradation curve.
		ids = []string{"degradation"}
	} else if *policySweep && *exp == "all" {
		// -policy-sweep alone runs just the policy x design sweep.
		ids = []string{"policy-sweep"}
	} else if *exp == "all" {
		ids = []string{
			"table2", "fig2", "fig6", "fig7", "table3",
			"fig8a", "fig8b", "fig8c", "table4", "table4-norm", "fig9", "fig10",
			"sens-latency", "sens-capacity", "sens-objsize", "sens-policy",
			"policy-sweep",
			"flood", "depth-profile", "degradation", "ablation-universe", "ablation-lookup", "ablation-deployment", "ablation-locality", "ablation-policy", "ablation-warmup", "ablation-coop",
		}
	}
	for _, id := range ids {
		if err := run(strings.TrimSpace(id), p, failFractions); err != nil {
			fmt.Fprintf(os.Stderr, "icnsim: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
	if metrics != nil {
		if err := writeMetricsJSON(*metricsJSON, metrics); err != nil {
			fatalf("icnsim: metrics-json: %v", err)
		}
	}
}

// writeMetricsJSON dumps the observer's aggregated run-level histograms.
func writeMetricsJSON(path string, m *sim.MetricsObserver) error {
	out, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "icnsim: wrote observer metrics to %s\n", path)
	return nil
}

// fatalf reports err and exits. Deferred profile writers do not run on this
// path; profiles are only written on successful exits.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// parseFractions parses a comma-separated list of failure fractions.
func parseFractions(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad fraction %q", part)
		}
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("fraction %g outside [0,1]", f)
		}
		out = append(out, f)
	}
	return out, nil
}

func run(id string, p experiments.Params, failFractions []float64) error {
	start := time.Now()
	var out string
	var title string
	switch id {
	case "table2":
		title = "Table 2: Zipf fits of the three CDN vantage points"
		rows, err := experiments.Table2(p.Scale)
		if err != nil {
			return err
		}
		out = experiments.FormatTable2(rows)
	case "fig1":
		title = "Figure 1: request popularity rank/frequency series"
		series, err := experiments.Figure1Series(p.Scale, 0)
		if err != nil {
			return err
		}
		out = experiments.FormatFigure1(series, 20)
	case "fig2":
		title = "Figure 2: fraction of requests served per tree level (optimal placement)"
		out = experiments.FormatFigure2(experiments.Figure2())
	case "fig6":
		title = "Figure 6: improvements over no caching (population-proportional budgets)"
		rows, err := experiments.Figure6(p)
		if err != nil {
			return err
		}
		out = experiments.FormatFigure(rows)
	case "fig7":
		title = "Figure 7: improvements over no caching (uniform budgets)"
		rows, err := experiments.Figure7(p)
		if err != nil {
			return err
		}
		out = experiments.FormatFigure(rows)
	case "table3":
		title = "Table 3: ICN-NR vs EDGE latency gap, trace vs best-fit synthetic"
		rows, err := experiments.Table3(p)
		if err != nil {
			return err
		}
		out = experiments.FormatTable3(rows)
	case "fig8a":
		title = "Figure 8(a): NR-over-EDGE gap vs Zipf alpha"
		pts, err := experiments.Figure8a(p, nil)
		if err != nil {
			return err
		}
		out = experiments.FormatSweep("alpha", pts)
	case "fig8b":
		title = "Figure 8(b): NR-over-EDGE gap vs per-router cache budget (%)"
		pts, err := experiments.Figure8b(p, nil)
		if err != nil {
			return err
		}
		out = experiments.FormatSweep("budget%", pts)
	case "fig8c":
		title = "Figure 8(c): NR-over-EDGE gap vs spatial skew"
		pts, err := experiments.Figure8c(p, nil)
		if err != nil {
			return err
		}
		out = experiments.FormatSweep("skew", pts)
	case "table4":
		title = "Table 4: NR-over-EDGE gains vs access-tree arity (64 leaves/tree)"
		rows, err := experiments.Table4(p)
		if err != nil {
			return err
		}
		out = experiments.FormatTable4(rows)
	case "table4-norm":
		title = "Table 4 variant: arity sweep against EDGE-Norm (equal budgets)"
		rows, err := experiments.Table4Normalized(p)
		if err != nil {
			return err
		}
		out = experiments.FormatTable4(rows)
	case "fig9":
		title = "Figure 9: progressive best case for ICN-NR"
		steps, err := experiments.Figure9(p)
		if err != nil {
			return err
		}
		out = experiments.FormatFigure9(steps)
	case "fig10":
		title = "Figure 10: bridging the best-case gap with EDGE extensions"
		rows, err := experiments.Figure10(p)
		if err != nil {
			return err
		}
		out = experiments.FormatFigure10(rows)
	case "sens-latency":
		title = "Sensitivity: latency models (§5.1)"
		rows, err := experiments.SensitivityLatencyModels(p)
		if err != nil {
			return err
		}
		out = experiments.FormatNamedGaps("model", rows)
	case "sens-capacity":
		title = "Sensitivity: per-node serving capacity (§5.1)"
		rows, err := experiments.SensitivityCapacity(p, nil)
		if err != nil {
			return err
		}
		out = experiments.FormatNamedGaps("capacity", rows)
	case "sens-objsize":
		title = "Sensitivity: heterogeneous object sizes (§5.1)"
		rows, err := experiments.SensitivityObjectSizes(p)
		if err != nil {
			return err
		}
		out = experiments.FormatNamedGaps("sizes", rows)
	case "policy-sweep":
		title = "Policy sweep: cache-policy zoo x placement/routing designs"
		rows, err := experiments.PolicySweep(p)
		if err != nil {
			return err
		}
		out = experiments.FormatPolicySweep(rows)
	case "sens-policy":
		title = "Sensitivity: LRU vs LFU cache management (§3)"
		rows, err := experiments.SensitivityPolicy(p)
		if err != nil {
			return err
		}
		out = experiments.FormatNamedGaps("policy", rows)
	case "flood":
		title = "Flood protection (§7): origin-load absorption under a flash crowd"
		rows, err := experiments.FloodProtection(p, 0.3)
		if err != nil {
			return err
		}
		out = experiments.FormatFlood(rows)
	case "ablation-lookup":
		title = "Ablation: charging nearest-replica lookup a latency cost (hops)"
		pts, err := experiments.AblationLookupCost(p, nil)
		if err != nil {
			return err
		}
		out = experiments.FormatSweep("penalty", pts)
	case "ablation-deployment":
		title = "Ablation: incremental deployment (EDGE caches at a growing fraction of PoPs)"
		rows, err := experiments.AblationIncrementalDeployment(p, nil)
		if err != nil {
			return err
		}
		out = experiments.FormatDeployment(rows)
	case "ablation-locality":
		title = "Ablation: temporal locality in the request stream vs NR-over-EDGE gap"
		pts, err := experiments.AblationTemporalLocality(p, nil)
		if err != nil {
			return err
		}
		out = experiments.FormatSweep("locality", pts)
	case "depth-profile":
		title = "Serve-depth profile: where requests are served (simulated vs Figure 2 model)"
		profiles, analytic, err := experiments.ServeDepthProfile(p)
		if err != nil {
			return err
		}
		out = experiments.FormatDepthProfile(profiles, analytic)
	case "trace-designs":
		title = "Trace-driven designs: five architectures on a request log file"
		if p.TraceFile == "" {
			return fmt.Errorf("trace-designs requires -trace <file>")
		}
		var rows []experiments.FigureRow
		var err error
		if experiments.IsBinaryTrace(p.TraceFile) {
			rows, err = experiments.StreamDesigns(p, p.TraceFile)
		} else {
			rows, err = experiments.TraceDrivenDesigns(p, p.TraceFile)
		}
		if err != nil {
			return err
		}
		out = experiments.FormatFigure(rows)
	case "variance":
		title = "Seed variance of the NR-over-EDGE gap"
		rows, err := experiments.SeedVariance(p, p.VarianceSeeds)
		if err != nil {
			return err
		}
		out = experiments.FormatVariance(rows)
	case "ablation-policy":
		title = "Ablation: LRU/LFU vs Belady's offline optimum at the leaf caches"
		rows, err := experiments.AblationPolicyOptimality(p)
		if err != nil {
			return err
		}
		out = experiments.FormatPolicyOptimality(rows)
	case "ablation-coop":
		title = "Ablation: cooperative search scope of EDGE vs the ICN-NR gap"
		pts, err := experiments.AblationCoopScope(p, nil)
		if err != nil {
			return err
		}
		out = experiments.FormatSweep("scope", pts)
	case "ablation-warmup":
		title = "Ablation: warmup fraction excluded from metrics vs NR-over-EDGE gap"
		pts, err := experiments.AblationWarmup(p, nil)
		if err != nil {
			return err
		}
		out = experiments.FormatSweep("warmup", pts)
	case "degradation":
		title = "Degradation curve: improvements under cache blackouts and resolver outage"
		rows, err := experiments.DegradationCurve(p, failFractions)
		if err != nil {
			return err
		}
		out = experiments.FormatDegradation(rows)
	case "ablation-universe":
		title = "Ablation: object-universe size (workload warmth) vs design improvements"
		rows, err := experiments.AblationObjectUniverse(p, nil)
		if err != nil {
			return err
		}
		out = experiments.FormatAblation(rows)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	fmt.Printf("== %s ==\n%s(%s, scale=%g)\n\n", title, out, time.Since(start).Round(time.Millisecond), p.Scale)
	return nil
}
