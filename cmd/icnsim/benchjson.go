package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"idicn/internal/experiments"
	"idicn/internal/sim"
	"idicn/internal/topo"
	"idicn/internal/trace"
)

// BenchRecord is one hot-path measurement in the BENCH_sim.json perf log.
// NsPerOp and AllocsPerOp are per unit of work (a simulated request for the
// serve benchmarks, a whole artifact regeneration for the figure
// benchmarks), so numbers stay comparable across PRs even if batch sizes
// change.
type BenchRecord struct {
	Name        string  `json:"name"`
	Unit        string  `json:"unit"` // "request" or "artifact"
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Workers     int     `json:"workers,omitempty"`
}

// writeBenchJSON runs the simulator's hot-path benchmarks via
// testing.Benchmark and writes the results as JSON, so the perf trajectory
// of the engine is tracked across PRs without a manual `go test -bench`
// transcript. Invoked by `icnsim -bench-json <file>`.
func writeBenchJSON(path string) error {
	var records []BenchRecord

	// Raw serve throughput: one full Engine.Run over a 200k-request stream,
	// normalized per request. Covers all three routing/placement extremes,
	// including the cooperative-lookup path.
	net := topo.NewNetwork(topo.Abilene(), 2, 5)
	const objects = 5000
	const requests = 200000
	weights := net.Topo.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, true, 3)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests: requests, Objects: objects, Alpha: 1.04,
		PoPWeights: weights, Leaves: net.LeavesPerTree(), Seed: 7,
	})
	base := sim.Config{
		Network: net, Objects: objects, Origins: origins,
		BudgetFraction: 0.05, BudgetPolicy: sim.BudgetProportional,
	}
	for _, d := range []sim.Design{sim.EDGE, sim.EDGECoop, sim.ICNSP, sim.ICNNR} {
		cfg := d.Apply(base)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e, err := sim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				e.Run(reqs)
			}
		})
		records = append(records, BenchRecord{
			Name:        "ServeRequest/" + d.Name,
			Unit:        "request",
			NsPerOp:     float64(res.NsPerOp()) / requests,
			AllocsPerOp: float64(res.AllocsPerOp()) / requests,
			BytesPerOp:  float64(res.AllocedBytesPerOp()) / requests,
		})
	}

	// Figure 6 regeneration at bench scale, at one worker and at the
	// default pool, tracking the parallel-sweep speedup.
	p := experiments.DefaultParams(0.02)
	for _, workers := range []int{1, sim.DefaultWorkers()} {
		pw := p
		pw.Workers = workers
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Figure6(pw); err != nil {
					b.Fatal(err)
				}
			}
		})
		records = append(records, BenchRecord{
			Name:        "Figure6",
			Unit:        "artifact",
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
			Workers:     workers,
		})
		if workers == sim.DefaultWorkers() {
			break // avoid a duplicate row when GOMAXPROCS is 1
		}
	}

	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "icnsim: wrote %d benchmark records to %s\n", len(records), path)
	return nil
}
