package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"idicn/internal/experiments"
	"idicn/internal/sim"
	"idicn/internal/topo"
	"idicn/internal/trace"
)

// BenchRecord is one hot-path measurement in the BENCH_sim.json perf log.
// NsPerOp and AllocsPerOp are per unit of work (a simulated request for the
// serve benchmarks, a whole artifact regeneration for the figure
// benchmarks), so numbers stay comparable across PRs even if batch sizes
// change.
type BenchRecord struct {
	Name        string  `json:"name"`
	Unit        string  `json:"unit"` // "request" or "artifact"
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Workers     int     `json:"workers,omitempty"`

	// RequestsPerSec and Time are set by the sharded streaming series
	// (`make bench` / icnsim -bench-append): end-to-end throughput of one
	// RunStream at the record's worker count, stamped when measured so the
	// series accumulates a history across PRs.
	RequestsPerSec float64 `json:"requests_per_sec,omitempty"`
	Time           string  `json:"time,omitempty"`
}

// writeBenchJSON runs the simulator's hot-path benchmarks via
// testing.Benchmark and writes the results as JSON, so the perf trajectory
// of the engine is tracked across PRs without a manual `go test -bench`
// transcript. Invoked by `icnsim -bench-json <file>`.
func writeBenchJSON(path string) error {
	var records []BenchRecord

	// Raw serve throughput: one full Engine.Run over a 200k-request stream,
	// normalized per request. Covers all three routing/placement extremes,
	// including the cooperative-lookup path.
	net := topo.NewNetwork(topo.Abilene(), 2, 5)
	const objects = 5000
	const requests = 200000
	weights := net.Topo.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, true, 3)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests: requests, Objects: objects, Alpha: 1.04,
		PoPWeights: weights, Leaves: net.LeavesPerTree(), Seed: 7,
	})
	base := sim.Config{
		Network: net, Objects: objects, Origins: origins,
		BudgetFraction: 0.05, BudgetPolicy: sim.BudgetProportional,
	}
	for _, d := range []sim.Design{sim.EDGE, sim.EDGECoop, sim.ICNSP, sim.ICNNR} {
		cfg := d.Apply(base)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e, err := sim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				e.Run(reqs)
			}
		})
		records = append(records, BenchRecord{
			Name:        "ServeRequest/" + d.Name,
			Unit:        "request",
			NsPerOp:     float64(res.NsPerOp()) / requests,
			AllocsPerOp: float64(res.AllocsPerOp()) / requests,
			BytesPerOp:  float64(res.AllocedBytesPerOp()) / requests,
		})
	}

	// Figure 6 regeneration at bench scale, at one worker and at the
	// default pool, tracking the parallel-sweep speedup.
	p := experiments.DefaultParams(0.02)
	for _, workers := range []int{1, sim.DefaultWorkers()} {
		pw := p
		pw.Workers = workers
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Figure6(pw); err != nil {
					b.Fatal(err)
				}
			}
		})
		records = append(records, BenchRecord{
			Name:        "Figure6",
			Unit:        "artifact",
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
			Workers:     workers,
		})
		if workers == sim.DefaultWorkers() {
			break // avoid a duplicate row when GOMAXPROCS is 1
		}
	}

	records = append(records, policySmokeRecords()...)
	records = append(records, shardedStreamRecords()...)

	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "icnsim: wrote %d benchmark records to %s\n", len(records), path)
	return nil
}

// streamWorkerCounts is the bench series' worker ladder: one core, half the
// cores, all cores — deduplicated, so a single-core machine contributes one
// honest row instead of three identical ones.
func streamWorkerCounts() []int {
	all := sim.DefaultWorkers()
	half := all / 2
	if half < 1 {
		half = 1
	}
	counts := []int{1}
	if half > 1 {
		counts = append(counts, half)
	}
	if all > half {
		counts = append(counts, all)
	}
	return counts
}

// shardedStreamRecords measures end-to-end sharded streaming throughput
// (sim.RunStream) at 1, half, and all cores on a fixed 2M-request EDGE
// workload, verifying along the way that every worker count produces the
// identical Result. Invoked by both -bench-json and -bench-append.
func shardedStreamRecords() []BenchRecord {
	stamp := time.Now().UTC().Format(time.RFC3339)
	tp := topo.ATT()
	net := topo.NewNetwork(tp, 2, 4)
	const objects = 20000
	const requests = 2_000_000
	weights := tp.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, true, 3)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests: requests, Objects: objects, Alpha: 1.04,
		PoPWeights: weights, Leaves: net.LeavesPerTree(), Seed: 7,
		TemporalLocality: 0.7,
	})
	cfg := sim.EDGE.Apply(sim.Config{
		Network: net, Objects: objects, Origins: origins,
		BudgetFraction: 0.05, BudgetPolicy: sim.BudgetProportional,
	})

	var records []BenchRecord
	var want sim.Result
	for i, workers := range streamWorkerCounts() {
		opt := sim.StreamOptions{Workers: workers}
		got, err := sim.RunStream(cfg, trace.Requests(reqs), opt)
		if err != nil {
			panic(fmt.Sprintf("icnsim: sharded bench: %v", err))
		}
		if i == 0 {
			want = got
		} else if !reflect.DeepEqual(got, want) {
			panic(fmt.Sprintf("icnsim: sharded bench: Workers=%d result differs from Workers=1", workers))
		}
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunStream(cfg, trace.Requests(reqs), opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		perReq := float64(res.NsPerOp()) / requests
		records = append(records, BenchRecord{
			Name:           "ShardedStream/EDGE",
			Unit:           "request",
			NsPerOp:        perReq,
			Workers:        workers,
			RequestsPerSec: 1e9 / perReq,
			Time:           stamp,
		})
	}
	return records
}

// policySmokeRecords measures per-request serve cost for every cache policy
// in the zoo on a fixed EDGE workload — one full Engine.Run per policy,
// normalized per request — so BENCH_sim.json carries a ns/request series per
// policy across PRs. Timestamped like the sharded series because `make
// bench` appends it to a growing history.
func policySmokeRecords() []BenchRecord {
	stamp := time.Now().UTC().Format(time.RFC3339)
	net := topo.NewNetwork(topo.Abilene(), 2, 5)
	const objects = 5000
	const requests = 200000
	weights := net.Topo.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, true, 3)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests: requests, Objects: objects, Alpha: 1.04,
		PoPWeights: weights, Leaves: net.LeavesPerTree(), Seed: 7,
	})
	base := sim.EDGE.Apply(sim.Config{
		Network: net, Objects: objects, Origins: origins,
		BudgetFraction: 0.05, BudgetPolicy: sim.BudgetProportional,
	})

	var records []BenchRecord
	for _, pol := range sim.CachePolicies() {
		cfg := base
		cfg.Policy = pol
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e, err := sim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				e.Run(reqs)
			}
		})
		records = append(records, BenchRecord{
			Name:        "ServeRequest/Policy-" + pol.String(),
			Unit:        "request",
			NsPerOp:     float64(res.NsPerOp()) / requests,
			AllocsPerOp: float64(res.AllocsPerOp()) / requests,
			BytesPerOp:  float64(res.AllocedBytesPerOp()) / requests,
			Time:        stamp,
		})
	}
	return records
}

// appendBenchJSON appends freshly measured policy-smoke and
// sharded-throughput series to the perf log, preserving existing records —
// `make bench` uses it to grow a timestamped history.
func appendBenchJSON(path string) error {
	var records []BenchRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	fresh := policySmokeRecords()
	fresh = append(fresh, shardedStreamRecords()...)
	records = append(records, fresh...)
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "icnsim: appended %d benchmark records to %s\n", len(fresh), path)
	return nil
}
