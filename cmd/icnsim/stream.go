package main

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"idicn/internal/checkpoint"
	"idicn/internal/experiments"
	"idicn/internal/sim"
	"idicn/internal/topo"
	"idicn/internal/trace"
)

// streamCheckpointing carries the -checkpoint/-checkpoint-every/-resume
// flags into the streaming run.
type streamCheckpointing struct {
	dir    string
	every  int64
	resume bool
	fsync  bool
}

// runStreamScale executes one sharded streaming run at production scale:
// the workload is either a recorded binary trace (-trace) or a synthetic
// stream generated on the fly, so request count is unbounded by RAM. It
// prints the merged result summary plus throughput and peak-RSS figures —
// the numbers behind EXPERIMENTS.md's "Scale" section. With ck.dir set the
// run writes periodic crash-safe checkpoints, and with ck.resume it first
// continues from the latest good one, yielding a final Result bit-identical
// to an uninterrupted run.
func runStreamScale(p experiments.Params, requests int64, users int, designName, traceFile string, epochLen int, ck streamCheckpointing) error {
	design, ok := designByName(designName)
	if !ok {
		return fmt.Errorf("unknown design %q (want one of %s)", designName, designNames())
	}

	tp := p.CustomTopology
	if tp == nil {
		tp = topo.ByName(p.SweepTopology)
	}
	if tp == nil {
		tp = topo.ATT()
	}
	net := topo.NewNetwork(tp, p.Arity, p.Depth)
	objects := p.Objects
	if objects <= 0 {
		// Mirror the experiments' sizing rule: requests/ObjectDivisor, floored.
		div := p.ObjectDivisor
		if div <= 0 {
			div = 360
		}
		objects = int(requests / int64(div))
		if objects < 200 {
			objects = 200
		}
	}
	weights := tp.PopulationWeights()

	var src trace.Stream
	var f *os.File
	if traceFile != "" {
		var err error
		f, err = os.Open(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		br, err := trace.NewBinaryReader(f)
		if err != nil {
			return err
		}
		meta := br.Meta()
		if meta.PoPs != net.PoPs() || meta.Leaves != net.LeavesPerTree() {
			return fmt.Errorf("trace %s was recorded for %d PoPs x %d leaves, topology has %d x %d",
				traceFile, meta.PoPs, meta.Leaves, net.PoPs(), net.LeavesPerTree())
		}
		objects = meta.Objects
		requests = meta.Requests
		src = br
	} else {
		if requests > int64(int(^uint(0)>>1)) {
			return fmt.Errorf("request count %d overflows int", requests)
		}
		src = trace.Synthetic(trace.StreamConfig{
			Requests:         int(requests),
			Objects:          objects,
			Alpha:            p.Alpha,
			SpatialSkew:      p.SpatialSkew,
			PoPWeights:       weights,
			Leaves:           net.LeavesPerTree(),
			Seed:             p.Seed + 2,
			TemporalLocality: p.TemporalLocality,
			Users:            users,
		})
	}

	origins := trace.OriginAssignment(objects, weights, p.OriginProportional, p.Seed+1)
	cfg := design.Apply(sim.Config{
		Network:        net,
		Objects:        objects,
		Origins:        origins,
		BudgetFraction: p.BudgetFraction,
		BudgetPolicy:   p.BudgetPolicy,
		Policy:         p.Policy,
	})
	opt := sim.StreamOptions{Workers: p.Workers, EpochLen: epochLen, Observer: p.Observer}

	if ck.dir != "" {
		// Everything that shapes the stream of requests or the simulated
		// network is part of the checkpoint's identity: resuming under any
		// other configuration must be refused, not silently blended.
		effEpoch := epochLen
		if effEpoch <= 0 {
			effEpoch = sim.DefaultEpochLen
		}
		fp := checkpoint.Fingerprint(
			tp.Name, fmt.Sprint(p.Arity), fmt.Sprint(p.Depth), design.Name,
			fmt.Sprint(objects), fmt.Sprint(requests), fmt.Sprint(users),
			fmt.Sprint(p.Seed), fmt.Sprint(p.Alpha), fmt.Sprint(p.SpatialSkew),
			fmt.Sprint(p.TemporalLocality), fmt.Sprint(p.BudgetFraction),
			fmt.Sprint(int(p.BudgetPolicy)), p.Policy.String(), traceFile,
			fmt.Sprint(effEpoch),
		)
		store, err := checkpoint.NewStore(ck.dir, fp, 2)
		if err != nil {
			return err
		}
		store.SetFsync(ck.fsync)
		// Persist asynchronously: the frozen state is a deep copy, so the
		// encode+fsync overlaps the next epochs instead of stalling the
		// barrier. Wait drains the final in-flight save after the run.
		saver := checkpoint.NewAsyncSaver(store)
		defer func() {
			if werr := saver.Wait(); werr != nil {
				fmt.Fprintf(os.Stderr, "icnsim: final checkpoint: %v\n", werr)
			}
		}()
		opt.Checkpoint = saver.Save
		opt.CheckpointEvery = ck.every
		if ck.resume {
			st, path, err := store.Latest()
			switch {
			case errors.Is(err, checkpoint.ErrNoCheckpoint):
				fmt.Fprintf(os.Stderr, "icnsim: no checkpoint in %s, starting fresh\n", ck.dir)
			case err != nil:
				return err
			default:
				fmt.Fprintf(os.Stderr, "icnsim: resuming from %s (request %d)\n", path, st.Requests)
				opt.Resume = st
			}
		}
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = sim.DefaultWorkers()
	}
	fmt.Printf("== Sharded streaming run ==\n")
	fmt.Printf("topology %s (%d PoPs, %d leaves/tree), design %s, %d requests, %d users, %d objects, %d workers\n",
		tp.Name, net.PoPs(), net.LeavesPerTree(), design.Name, requests, users, objects, workers)
	start := time.Now()
	res, err := sim.RunStream(cfg, src, opt)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	reqPerSec := float64(res.Requests) / elapsed.Seconds()
	fmt.Printf("requests:     %d\n", res.Requests)
	fmt.Printf("wall time:    %s\n", elapsed.Round(time.Millisecond))
	fmt.Printf("throughput:   %.0f req/s\n", reqPerSec)
	if rss, ok := peakRSSBytes(); ok {
		fmt.Printf("peak RSS:     %.1f MiB\n", float64(rss)/(1<<20))
	}
	fmt.Printf("mean latency: %.4f\n", res.MeanLatency)
	fmt.Printf("max link:     %d\n", res.MaxLinkLoad)
	fmt.Printf("origin total: %d (max per PoP %d)\n", res.TotalOrigin, res.MaxOriginLoad)
	fmt.Printf("served:       leaf=%d sibling=%d tree=%d core=%d origin=%d\n\n",
		res.Stats.Leaf, res.Stats.Sibling, res.Stats.Tree, res.Stats.Core, res.Stats.Origin)
	return nil
}

func designByName(name string) (sim.Design, bool) {
	for _, d := range sim.BaselineDesigns() {
		if strings.EqualFold(d.Name, name) {
			return d, true
		}
	}
	return sim.Design{}, false
}

func designNames() string {
	names := make([]string, 0, 5)
	for _, d := range sim.BaselineDesigns() {
		names = append(names, d.Name)
	}
	return strings.Join(names, ", ")
}

// peakRSSBytes reads the process's high-water resident set size (VmHWM)
// from /proc; ok is false on platforms without it.
func peakRSSBytes() (int64, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}
