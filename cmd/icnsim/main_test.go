package main

import (
	"testing"

	"idicn/internal/experiments"
)

// Exercise the experiment dispatcher for a cheap subset, plus the unknown-id
// error path.
func TestRunDispatch(t *testing.T) {
	p := experiments.DefaultParams(0.001)
	p.Depth = 2
	p.SweepTopology = "Abilene"
	for _, id := range []string{"fig2", "table2", "fig1", "sens-policy"} {
		if err := run(id, p, nil); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
	if err := run("nonsense", p, nil); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run("trace-designs", p, nil); err == nil {
		t.Error("trace-designs without -trace accepted")
	}
}
