package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic: a pass name, a position, and a message.
type Finding struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Pass, f.Message)
}

// Pass is one project-invariant check, run independently over every unit.
type Pass struct {
	Name string
	Doc  string
	Run  func(u *Unit) []Finding
}

// passes returns the per-unit suite in reporting order.
func passes() []Pass {
	return []Pass{
		{Name: "noalloc", Doc: "functions marked //icn:noalloc must not contain allocating constructs", Run: runNoalloc},
		{Name: "ctxfirst", Doc: "context.Context must be the first parameter and never a struct field", Run: runCtxfirst},
		{Name: "rawserver", Doc: "http.Server construction and ListenAndServe only inside internal/httpx", Run: runRawserver},
		{Name: "determinism", Doc: "no wall clock, global rand, or map-order iteration in sim/experiments/faults", Run: runDeterminism},
		{Name: "errcheck-lite", Doc: "error returns from io/os/net/encoding calls must be checked", Run: runErrcheckLite},
		{Name: "metricname", Doc: "obs metric names are snake_case with _total/_seconds suffixes", Run: runMetricname},
		{Name: "boundedqueue", Doc: "channels on handler-reachable paths need explicit capacity and non-blocking sends", Run: runBoundedqueue},
		{Name: "guardedby", Doc: "fields marked //icn:guardedby <mu> are only touched with the named lock held", Run: runGuardedby},
		{Name: "atomichygiene", Doc: "fields accessed via sync/atomic are never mixed with plain loads/stores", Run: runAtomichygiene},
	}
}

// ModulePass is a check that needs the whole module at once (cross-package
// reachability); unit-at-a-time passes stay in passes().
type ModulePass struct {
	Name string
	Doc  string
	Run  func(m *Module) []Finding
}

// modulePasses returns the module-wide suite.
func modulePasses() []ModulePass {
	return []ModulePass{
		{Name: "golifetime", Doc: "goroutines reachable from handlers, RunStream, or main must have a bounded lifetime", Run: runGolifetime},
	}
}

// stalePass is the synthesized pass name for suppressions that suppress
// nothing; it has no Run of its own — runUnits derives its findings from
// ignore-directive usage.
const stalePass = "stalesuppress"

// passNames returns every reportable pass name, for validating ignore
// directives.
func passNames() map[string]bool {
	out := map[string]bool{stalePass: true}
	for _, p := range passes() {
		out[p.Name] = true
	}
	for _, p := range modulePasses() {
		out[p.Name] = true
	}
	return out
}

// finding builds a Finding at pos.
func (u *Unit) finding(pass string, pos token.Pos, format string, args ...any) Finding {
	p := u.Fset.Position(pos)
	return Finding{Pass: pass, File: p.Filename, Line: p.Line, Col: p.Column, Message: fmt.Sprintf(format, args...)}
}

// runUnits is the whole suite: every per-unit pass over every unit, the
// module passes over all of them together, //icnvet:ignore filtering, and —
// because an escape hatch that excuses nothing is itself rot — a stale-
// suppression sweep turning unused directives into findings.
func runUnits(units []*Unit) []Finding {
	m := newModule(units)
	idx, directives := collectIgnores(units)
	var out []Finding
	keep := func(f Finding) {
		if d, ok := idx[ignoreKey{file: f.File, line: f.Line, pass: f.Pass}]; ok {
			d.used = true
			return
		}
		out = append(out, f)
	}
	for _, u := range units {
		for _, p := range passes() {
			for _, f := range p.Run(u) {
				keep(f)
			}
		}
	}
	for _, p := range modulePasses() {
		for _, f := range p.Run(m) {
			keep(f)
		}
	}
	known := passNames()
	for _, d := range directives {
		switch {
		case !known[d.pass]:
			out = append(out, Finding{Pass: stalePass, File: d.posn.Filename, Line: d.posn.Line, Col: d.posn.Column,
				Message: fmt.Sprintf("//icnvet:ignore names unknown pass %q", d.pass)})
		case !d.used:
			out = append(out, Finding{Pass: stalePass, File: d.posn.Filename, Line: d.posn.Line, Col: d.posn.Column,
				Message: fmt.Sprintf("//icnvet:ignore %s suppresses no finding; the code it excused is gone — remove it", d.pass)})
		}
	}
	sortFindings(out)
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Pass < b.Pass
	})
}

type ignoreKey struct {
	file string
	line int
	pass string
}

// ignoreDirective is one //icnvet:ignore entry (a single pass name; a
// comma-separated comment yields several). used is set by runUnits when the
// directive actually silences a finding — an unused directive is reported
// under stalePass so escapes cannot outlive the code they excused.
type ignoreDirective struct {
	pass string
	posn token.Position
	used bool
}

// collectIgnores gathers //icnvet:ignore <pass>[,<pass>] comments across
// units. A directive silences matching findings on its own line and on the
// line directly below it (covering both trailing comments and standalone
// comment lines above the flagged statement). The returned index maps both
// lines to the directive; the slice preserves every directive for the
// stale-suppression sweep.
func collectIgnores(units []*Unit) (map[ignoreKey]*ignoreDirective, []*ignoreDirective) {
	known := passNames()
	idx := make(map[ignoreKey]*ignoreDirective)
	var all []*ignoreDirective
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//icnvet:ignore")
					if !ok {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					// The first token is always a pass name (a typo there is
					// reported as an unknown pass); later tokens are passes only
					// while they keep naming known ones — the first word that
					// doesn't starts the human rationale.
					for i, pass := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
						if i > 0 && !known[pass] {
							break
						}
						d := &ignoreDirective{pass: pass, posn: pos}
						all = append(all, d)
						idx[ignoreKey{file: pos.Filename, line: pos.Line, pass: pass}] = d
						idx[ignoreKey{file: pos.Filename, line: pos.Line + 1, pass: pass}] = d
					}
				}
			}
		}
	}
	return idx, all
}

// hasDirective reports whether a doc comment group contains the given
// directive as a line of its own (e.g. //icn:noalloc).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//"+directive {
			return true
		}
	}
	return false
}

// typeOf returns the static type of e, or nil.
func (u *Unit) typeOf(e ast.Expr) types.Type {
	if tv, ok := u.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// calleeFunc resolves the *types.Func a call statically dispatches to
// (package-level function or method), or nil for builtins, conversions,
// and calls of func-typed values.
func (u *Unit) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := u.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := u.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := u.Info.Uses[id].(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// funcPkgPath returns the import path of fn's defining package, or "" for
// builtins and universe-scope objects.
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (not a method).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Name() == name && funcPkgPath(fn) == pkgPath &&
		fn.Signature().Recv() == nil
}

// pathWithin reports whether the import path is pkg or a subpackage of it.
func pathWithin(path, pkg string) bool {
	return path == pkg || strings.HasPrefix(path, pkg+"/")
}
