package main

import (
	"go/ast"
	"go/types"
)

// determinismScopes are the packages whose results must be exactly
// reproducible from a seed: the simulator, the cache-policy zoo it
// provisions, the checkpoint codec and store (a resumed run must be
// bit-identical to an uninterrupted one), the experiment sweeps, the
// fault-injection harness, and the trace generators/codecs feeding them.
// Randomness there must flow from an injected seeded *rand.Rand, never the
// wall clock or the global generator.
var determinismScopes = []string{
	"idicn/internal/sim",
	"idicn/internal/cache",
	"idicn/internal/checkpoint",
	"idicn/internal/experiments",
	"idicn/internal/faults",
	"idicn/internal/trace",
}

// clockFuncs are time-package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRandFuncs are the math/rand (and v2) package-level draws backed by
// the shared, unseeded global source. Constructors (New, NewSource,
// NewZipf, NewPCG, NewChaCha8) are fine: they are how seeded generators
// are built.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// runDeterminism flags wall-clock reads, global-rand draws, and
// map-iteration in the seeded packages. Ranging over a map is flagged even
// when the body looks order-insensitive: if it genuinely is, say so with
// an //icnvet:ignore determinism directive where the next reader can see
// the claim.
func runDeterminism(u *Unit) []Finding {
	inScope := false
	for _, s := range determinismScopes {
		if pathWithin(u.Path, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	var out []Finding
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := u.calleeFunc(n)
				if fn == nil || fn.Signature().Recv() != nil {
					return true
				}
				switch funcPkgPath(fn) {
				case "time":
					if clockFuncs[fn.Name()] {
						out = append(out, u.finding("determinism", n.Pos(),
							"time.%s reads the wall clock; inject a clock or derive times from the seed", fn.Name()))
					}
				case "math/rand", "math/rand/v2":
					if globalRandFuncs[fn.Name()] {
						out = append(out, u.finding("determinism", n.Pos(),
							"rand.%s draws from the global generator; use an injected seeded *rand.Rand", fn.Name()))
					}
				}
			case *ast.RangeStmt:
				if t := u.typeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						out = append(out, u.finding("determinism", n.Pos(),
							"map iteration order is random; sort keys first or justify with //icnvet:ignore determinism"))
					}
				}
			}
			return true
		})
	}
	return out
}
