package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runAtomichygiene keeps the two memory models apart: once a word is managed
// with sync/atomic it must always be, because a single plain load or store
// next to atomic ones is a data race the race detector only catches if the
// schedule cooperates. Three rules:
//
//   - a field of a typed atomic (atomic.Int64, atomic.Bool, atomic.Pointer[T],
//     atomic.Value, ...) is touched only through its methods — copying the
//     struct-typed value (x := s.n, s.n = other.n) smuggles a plain load past
//     the type's own protection;
//   - a field whose address is passed to a sync/atomic function
//     (atomic.AddInt64(&s.n, 1)) is atomic forever: every other access to
//     that field must go through sync/atomic too, never a plain read, write,
//     or mutex-guarded assignment;
//   - an atomic.Value stays monomorphic: Store of a second concrete type (or
//     of a value whose dynamic type is unknowable statically) panics at
//     runtime or degrades every Load to a type switch.
//
// Exceptions carry //icnvet:ignore atomichygiene with a rationale.
func runAtomichygiene(u *Unit) []Finding {
	var out []Finding

	// Phase 1: every var whose address feeds a sync/atomic function is
	// atomic-managed; those argument positions themselves are sanctioned.
	atomicVars := make(map[*types.Var]bool)
	sanctioned := make(map[token.Pos]bool)
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := u.calleeFunc(call)
			if funcPkgPath(fn) != "sync/atomic" || fn.Signature().Recv() != nil {
				return true
			}
			for _, a := range call.Args {
				un, ok := ast.Unparen(a).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if v := u.varOf(un.X); v != nil {
					atomicVars[v] = true
					sanctioned[refPos(un.X)] = true
				}
			}
			return true
		})
	}

	// Phase 2: a single parent-aware walk. Method calls/values on typed
	// atomics are the sanctioned path (the receiver mention is skipped, its
	// base still walked); everything else that names an atomic-managed word
	// is a finding.
	valueStores := make(map[*types.Var]types.Type) // atomic.Value var -> first stored type
	check := func(id *ast.Ident) {
		v, _ := u.Info.Uses[id].(*types.Var)
		if v == nil || sanctioned[id.Pos()] {
			return
		}
		if atomicVars[v] {
			out = append(out, u.finding("atomichygiene", id.Pos(),
				"%s is accessed via sync/atomic elsewhere; this plain access mixes memory models — use atomic ops everywhere or drop them", v.Name()))
			return
		}
		if name := atomicTypeName(v.Type()); name != "" && v.IsField() {
			out = append(out, u.finding("atomichygiene", id.Pos(),
				"%s has type atomic.%s; access it only through its methods, never as a plain value", v.Name(), name))
		}
	}
	var walk func(n ast.Node) bool
	// walkBase skips the sanctioned receiver mention but keeps scanning the
	// chain beneath it (s in s.n.Load() may itself hold guarded words).
	walkBase := func(recv ast.Expr) {
		if rsel, ok := ast.Unparen(recv).(*ast.SelectorExpr); ok {
			ast.Inspect(rsel.X, walk)
		}
	}
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Store" {
				if recv := u.varOf(sel.X); recv != nil && isAtomicValue(recv.Type()) {
					out = append(out, u.checkValueStore(sel, recv, n, valueStores)...)
				}
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if v := u.varOf(n.X); v != nil && atomicTypeName(v.Type()) != "" {
					// &s.counter to pass the atomic by pointer: no data copied,
					// methods still mediate every access.
					walkBase(n.X)
					return false
				}
			}
			return true
		case *ast.SelectorExpr:
			if _, isMethod := u.Info.Uses[n.Sel].(*types.Func); isMethod {
				if recv := u.varOf(n.X); recv != nil && atomicTypeName(recv.Type()) != "" {
					walkBase(n.X)
					return false
				}
				ast.Inspect(n.X, walk)
				return false
			}
			check(n.Sel)
			ast.Inspect(n.X, walk)
			return false
		case *ast.KeyValueExpr:
			// A composite-literal key names the field without touching it.
			if _, ok := n.Key.(*ast.Ident); ok {
				ast.Inspect(n.Value, walk)
				return false
			}
			return true
		case *ast.Ident:
			check(n)
		}
		return true
	}
	for _, f := range u.Files {
		ast.Inspect(f, walk)
	}
	sortFindings(out)
	return out
}

// refPos is the stable position key for a field reference: the selector's
// field identifier, or the identifier itself.
func refPos(e ast.Expr) token.Pos {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		return sel.Sel.Pos()
	}
	return ast.Unparen(e).Pos()
}

// varOf resolves an expression to the *types.Var it names (field selector or
// plain identifier), or nil.
func (u *Unit) varOf(e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := u.Info.Uses[e].(*types.Var)
		if v == nil {
			v, _ = u.Info.Defs[e].(*types.Var)
		}
		return v
	case *ast.SelectorExpr:
		v, _ := u.Info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

// checkValueStore enforces monomorphic atomic.Value use: the first Store
// fixes the concrete type; later Stores must match it and must be statically
// concrete.
func (u *Unit) checkValueStore(sel *ast.SelectorExpr, v *types.Var, call *ast.CallExpr, stores map[*types.Var]types.Type) []Finding {
	if len(call.Args) != 1 {
		return nil
	}
	t := u.typeOf(call.Args[0])
	if t == nil {
		return nil
	}
	t = types.Default(t)
	if types.IsInterface(t) {
		return []Finding{u.finding("atomichygiene", sel.Sel.Pos(),
			"atomic.Value %s stores an interface-typed value; its dynamic type cannot be proven monomorphic", v.Name())}
	}
	if prev, ok := stores[v]; ok {
		if !types.Identical(prev, t) {
			return []Finding{u.finding("atomichygiene", sel.Sel.Pos(),
				"atomic.Value %s stores %s after storing %s; Value is monomorphic — mixed types panic at runtime", v.Name(), t, prev)}
		}
		return nil
	}
	stores[v] = t
	return nil
}

// atomicTypeName returns the sync/atomic named type behind t ("Int64",
// "Pointer", "Value", ...) or "".
func atomicTypeName(t types.Type) string {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	return obj.Name()
}

// isAtomicValue reports whether t is sync/atomic.Value.
func isAtomicValue(t types.Type) bool {
	return atomicTypeName(t) == "Value"
}
