package main

import (
	"go/ast"
	"go/types"
)

// httpxPath is the one package allowed to construct http.Server values: it
// centralises the hardened read/idle timeouts every listener must carry.
const httpxPath = "idicn/internal/httpx"

// runRawserver flags raw http.Server composite literals and the
// http.ListenAndServe shortcuts outside internal/httpx. A server built any
// other way ships without timeouts and is slow-loris bait.
func runRawserver(u *Unit) []Finding {
	if u.Path == httpxPath {
		return nil
	}
	var out []Finding
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if isHTTPServerType(u.typeOf(n)) {
					out = append(out, u.finding("rawserver", n.Pos(),
						"raw http.Server literal; construct servers via internal/httpx for hardened timeouts"))
				}
			case *ast.CallExpr:
				fn := u.calleeFunc(n)
				if isPkgFunc(fn, "net/http", "ListenAndServe") || isPkgFunc(fn, "net/http", "ListenAndServeTLS") ||
					isPkgFunc(fn, "net/http", "Serve") || isPkgFunc(fn, "net/http", "ServeTLS") {
					out = append(out, u.finding("rawserver",
						n.Pos(), "http.%s starts a server without timeouts; use internal/httpx", fn.Name()))
				}
			}
			return true
		})
	}
	return out
}

// isHTTPServerType reports whether t is net/http.Server.
func isHTTPServerType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Server" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}
