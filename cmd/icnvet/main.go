// Command icnvet is the repository's project-invariant static analyzer: a
// stdlib-only (go/ast, go/parser, go/types) suite of passes that mechanically
// enforce what PRs 1–3 established by convention — the zero-alloc serve
// path, context-first APIs, hardened http.Server construction, seeded
// determinism in the simulator, checked io errors, and obs metric naming.
//
// Usage:
//
//	go run ./cmd/icnvet ./...        # human-readable findings, exit 1 if any
//	go run ./cmd/icnvet -json ./...  # one JSON object per finding per line
//
// It always analyzes every non-test package of the enclosing module; the
// ./... argument is accepted for familiarity. Intentional violations are
// silenced one line at a time with `//icnvet:ignore <pass>` (see README,
// "Static analysis").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as one JSON object per line")
	flag.Parse()

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	l, err := newLoader(root)
	if err != nil {
		fatal(err)
	}
	units, err := l.LoadAll()
	if err != nil {
		fatal(err)
	}

	findings := runUnits(units)

	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if *jsonOut {
			if err := enc.Encode(f); err != nil {
				fatal(err)
			}
		} else {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "icnvet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icnvet:", err)
	os.Exit(2)
}
