package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runBoundedqueue enforces the overload-control invariant on channels the
// HTTP serving path touches: a handler goroutine must never park on an
// unbounded or escape-less channel operation, because under overload that
// turns shed-able requests into goroutine pile-ups the admission queue
// can't see. Within each package it finds the handler roots — declared
// functions and function literals with a *http.Request parameter — walks
// the package-local call graph beneath them, and flags
//
//   - make(chan T) with no capacity argument: a request-path channel needs
//     explicit capacity so its bound is a stated decision, and
//   - a plain `ch <- v` send outside a select with an escape (another case
//     or a default): the send must be able to drop or time out instead of
//     blocking the request.
//
// Deliberate exceptions (a close-only completion signal, a send provably
// bounded elsewhere) are silenced with //icnvet:ignore boundedqueue, which
// leaves the justification in the reader's view.
func runBoundedqueue(u *Unit) []Finding {
	decls := u.Decls()

	// Roots: every declared function whose signature carries *http.Request.
	reach := make(map[*types.Func]bool)
	var queue []*types.Func
	for fn := range decls {
		if hasRequestParam(fn.Signature()) {
			reach[fn] = true
			queue = append(queue, fn)
		}
	}
	// Handler literals (http.HandlerFunc closures) are roots too; their
	// bodies are scanned directly unless an enclosing declared handler
	// already covers them.
	var litBodies []*ast.BlockStmt
	for _, f := range u.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			enclosing, _ := u.Info.Defs[fd.Name].(*types.Func)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				sig, _ := u.typeOf(lit).(*types.Signature)
				if sig == nil || !hasRequestParam(sig) {
					return true
				}
				if enclosing == nil || !reach[enclosing] {
					litBodies = append(litBodies, lit.Body)
				}
				queue = append(queue, calleesIn(u, lit.Body, decls)...)
				return true
			})
		}
	}

	// Package-local BFS: anything a root (transitively) calls within this
	// unit runs on the serving path.
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd := decls[fn]
		if fd == nil {
			continue
		}
		if !reach[fn] {
			reach[fn] = true
		}
		for _, callee := range calleesIn(u, fd.Body, decls) {
			if !reach[callee] {
				reach[callee] = true
				queue = append(queue, callee)
			}
		}
	}

	var out []Finding
	seen := make(map[token.Pos]bool)
	scan := func(body *ast.BlockStmt) {
		// Sends appearing as the comm of a select clause with an escape
		// (another case or a default) are the sanctioned pattern.
		protected := make(map[*ast.SendStmt]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok || len(sel.Body.List) < 2 {
				return true
			}
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					if send, ok := cc.Comm.(*ast.SendStmt); ok {
						protected[send] = true
					}
				}
			}
			return true
		})
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isUnbufferedChanMake(u, n) && !seen[n.Pos()] {
					seen[n.Pos()] = true
					out = append(out, u.finding("boundedqueue", n.Pos(),
						"unbuffered channel on the request path; give it explicit capacity or justify with //icnvet:ignore boundedqueue"))
				}
			case *ast.SendStmt:
				if !protected[n] && !seen[n.Pos()] {
					seen[n.Pos()] = true
					out = append(out, u.finding("boundedqueue", n.Pos(),
						"blocking channel send on the request path; use a select with a default or deadline case, or justify with //icnvet:ignore boundedqueue"))
				}
			}
			return true
		})
	}
	for fn := range reach {
		if fd := decls[fn]; fd != nil {
			scan(fd.Body)
		}
	}
	for _, body := range litBodies {
		scan(body)
	}
	sortFindings(out)
	return out
}

// calleesIn returns the package-local declared functions called anywhere in
// body (including inside nested literals and spawned goroutines — a
// goroutine leaked per request is still per-request work).
func calleesIn(u *Unit, body *ast.BlockStmt, decls map[*types.Func]*ast.FuncDecl) []*types.Func {
	var out []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := u.calleeFunc(call); fn != nil {
			if _, local := decls[fn]; local {
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}

// isUnbufferedChanMake reports whether call is make(chan T) with no
// capacity argument.
func isUnbufferedChanMake(u *Unit, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) != 1 {
		return false
	}
	if _, builtin := u.Info.Uses[id].(*types.Builtin); !builtin {
		return false
	}
	t := u.typeOf(call)
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// hasRequestParam reports whether any parameter of sig is *net/http.Request.
func hasRequestParam(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		ptr, ok := types.Unalias(sig.Params().At(i).Type()).(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := types.Unalias(ptr.Elem()).(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj != nil && obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
			return true
		}
	}
	return false
}
