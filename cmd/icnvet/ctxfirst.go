package main

import (
	"go/ast"
	"go/types"
)

// runCtxfirst enforces the context discipline of the resolver/client APIs:
// an exported function or method that takes a context.Context must take it
// as the first parameter, and no struct may store a context.Context —
// contexts are call-scoped, so a stored one silently outlives its request.
func runCtxfirst(u *Unit) []Finding {
	var out []Finding
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if !n.Name.IsExported() || n.Type.Params == nil {
					return true
				}
				idx := 0
				for _, field := range n.Type.Params.List {
					names := len(field.Names)
					if names == 0 {
						names = 1 // unnamed parameter
					}
					if isContextType(u.typeOf(field.Type)) && idx != 0 {
						out = append(out, u.finding("ctxfirst", field.Pos(),
							"%s takes context.Context as parameter %d; contexts go first", n.Name.Name, idx+1))
					}
					idx += names
				}
			case *ast.StructType:
				if n.Fields == nil {
					return true
				}
				for _, field := range n.Fields.List {
					if isContextType(u.typeOf(field.Type)) {
						name := "embedded field"
						if len(field.Names) > 0 {
							name = "field " + field.Names[0].Name
						}
						out = append(out, u.finding("ctxfirst", field.Pos(),
							"%s stores a context.Context in a struct; pass it per call instead", name))
					}
				}
			}
			return true
		})
	}
	return out
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
