package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// errcheckPkgs are the exact stdlib packages whose dropped errors the pass
// hunts; errcheckPrefixes widen the net to their subtree (encoding/json,
// net/http, ...). The list deliberately excludes fmt: dropped Fprintf
// errors are wall-to-wall in formatting helpers and almost never load-
// bearing, while a dropped Close/Write/Flush silently loses data.
var errcheckPkgs = map[string]bool{
	"io":             true,
	"os":             true,
	"net":            true,
	"bufio":          true,
	"text/tabwriter": true,
}

var errcheckPrefixes = []string{"net/", "os/", "encoding/", "compress/", "archive/", "io/"}

// runErrcheckLite flags expression statements that drop an error returned
// by an io/os/net/encoding-family call. Deferred calls are exempt (there
// is no good place for the error to go without restructuring), as is an
// explicit assignment to blank — `_ = f.Close()` states the decision where
// review can see it.
func runErrcheckLite(u *Unit) []Finding {
	var out []Finding
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := u.calleeFunc(call)
			if fn == nil || !errcheckScoped(funcPkgPath(fn)) || !returnsError(fn) {
				return true
			}
			out = append(out, u.finding("errcheck-lite", call.Pos(),
				"unchecked error from %s", calleeLabel(fn)))
			return true
		})
	}
	return out
}

func errcheckScoped(path string) bool {
	if errcheckPkgs[path] {
		return true
	}
	for _, p := range errcheckPrefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// returnsError reports whether any of fn's results is the error type.
func returnsError(fn *types.Func) bool {
	res := fn.Signature().Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}

// calleeLabel renders fn as pkg.Func or (pkg.Type).Method for diagnostics.
func calleeLabel(fn *types.Func) string {
	sig := fn.Signature()
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		return "(" + types.TypeString(t, types.RelativeTo(fn.Pkg())) + ")." + fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}
