package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked, non-test package of the module, ready for the
// analysis passes.
type Unit struct {
	Path  string // import path (module path + directory)
	Dir   string // absolute directory
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File
	Fset  *token.FileSet

	decls map[*types.Func]*ast.FuncDecl // lazy index, see Decls
}

// loader parses and type-checks module packages on demand, resolving
// module-internal imports from source and everything else through the
// toolchain's export data (falling back to type-checking the standard
// library from source when export data is unavailable).
type loader struct {
	root    string // module root directory (holds go.mod)
	module  string // module path from go.mod
	fset    *token.FileSet
	std     types.Importer
	srcStd  types.Importer
	units   map[string]*Unit // by import path
	loading map[string]bool  // import-cycle guard
}

func newLoader(root string) (*loader, error) {
	mod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(mod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("icnvet: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		module:  module,
		fset:    fset,
		std:     importer.Default(),
		srcStd:  importer.ForCompiler(fset, "source", nil),
		units:   make(map[string]*Unit),
		loading: make(map[string]bool),
	}, nil
}

// findModuleRoot walks upward from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("icnvet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer over the chain: module packages from
// source, the standard library from export data (source fallback).
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		u, err := l.load(path, filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module))))
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		pkg, err = l.srcStd.Import(path)
	}
	return pkg, err
}

// load parses and type-checks the package in dir under the given import
// path, memoizing the result.
func (l *loader) load(path, dir string) (*Unit, error) {
	if u, ok := l.units[path]; ok {
		return u, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("icnvet: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("icnvet: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	cfg := &types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("icnvet: type-checking %s: %w", path, err)
	}
	u := &Unit{Path: path, Dir: dir, Pkg: pkg, Info: info, Files: files, Fset: l.fset}
	l.units[path] = u
	return u, nil
}

// LoadAll loads every non-test package in the module, in deterministic
// (path-sorted) order. Directories named testdata, hidden directories, and
// underscore-prefixed directories are skipped, matching the go tool.
func (l *loader) LoadAll() ([]*Unit, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var units []*Unit
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		path := l.module
		if rel != "." {
			path = l.module + "/" + filepath.ToSlash(rel)
		}
		u, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}
