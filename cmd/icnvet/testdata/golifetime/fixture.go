// Package fixture exercises the golifetime pass: goroutines reachable from
// handler or RunStream entry points must have a visible lifetime bound — a
// WaitGroup Done, a receive from a struct{} quit channel, a range over a
// channel, or a context handed onward — or carry //icn:oneshot with a
// rationale. Flagged lines carry trailing want-markers checked by
// vet_test.go.
package fixture

import (
	"context"
	"net/http"
	"sync"
)

func work() {}

func handler(w http.ResponseWriter, r *http.Request) {
	go work() // want "no visible lifetime bound"

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // tracked: Done inside, Wait below
		defer wg.Done()
		work()
	}()
	wg.Wait()

	quit := make(chan struct{}, 1)
	go func() { // bounded: selects on the quit channel
		for {
			select {
			case <-quit:
				return
			default:
				work()
			}
		}
	}()
	close(quit)

	jobs := make(chan int, 4)
	go func() { // bounded: ends when jobs is closed
		for range jobs {
			work()
		}
	}()
	close(jobs)

	go spin(r.Context()) // bounded: inherits cancellation from the context

	go work() //icn:oneshot fixture: deliberate fire-and-forget, reason recorded here

	//icn:oneshot
	go work() // want "needs a rationale"
}

func spin(ctx context.Context) {
	<-ctx.Done()
}

type runner struct{}

// RunStream is a scope root by name, matching the simulator's streaming
// entry point.
func (runner) RunStream() {
	go leak() // want "no visible lifetime bound"
}

// leak is resolved through the module call graph: its body (an unbounded
// busy loop) is what makes the go statement above a finding.
func leak() {
	for {
		work()
	}
}
