// Package fixture exercises the rawserver pass: http.Server literals and
// the ListenAndServe shortcuts are flagged everywhere but internal/httpx.
package fixture

import (
	"net"
	"net/http"
)

func bare(mux *http.ServeMux) error {
	srv := &http.Server{Addr: ":8080", Handler: mux} // want "raw http.Server literal"
	return srv.ListenAndServe()
}

func value() http.Server {
	return http.Server{Addr: ":8081"} // want "raw http.Server literal"
}

func shortcut(mux *http.ServeMux) error {
	return http.ListenAndServe(":8080", mux) // want "http.ListenAndServe starts a server without timeouts"
}

func shortcutTLS(mux *http.ServeMux) error {
	return http.ListenAndServeTLS(":8443", "crt", "key", mux) // want "http.ListenAndServeTLS starts a server without timeouts"
}

func onListener(ln net.Listener, mux *http.ServeMux) error {
	return http.Serve(ln, mux) // want "http.Serve starts a server without timeouts"
}

// Clients are fine; only servers are gated.
func fetch(c *http.Client, url string) (*http.Response, error) {
	return c.Get(url)
}
