// Package fixture exercises the atomichygiene pass: a word managed with
// sync/atomic must never also be touched with a plain load or store, typed
// atomics are method-access-only, and an atomic.Value stays monomorphic.
// The sanctioned idioms — method calls, &field into sync/atomic functions,
// passing a typed atomic by pointer — must stay silent, as must the
// //icnvet:ignore escape. Flagged lines carry trailing want-markers checked
// by vet_test.go.
package fixture

import "sync/atomic"

type counters struct {
	hits   atomic.Int64
	misses int64 // managed via atomic.AddInt64 below
	mode   atomic.Value
}

func (c *counters) good() {
	c.hits.Add(1)
	atomic.AddInt64(&c.misses, 1)
	c.mode.Store("steady")
}

func (c *counters) goodLoads() (int64, int64) {
	return c.hits.Load(), atomic.LoadInt64(&c.misses)
}

// goodPointer passes the typed atomic by reference: no data is copied and
// every access still goes through its methods.
func goodPointer(n *atomic.Int64) int64 { return n.Load() }

func (c *counters) share() int64 { return goodPointer(&c.hits) }

func (c *counters) badPlainRead() int64 {
	return c.misses // want "plain access mixes memory models"
}

func (c *counters) badPlainWrite() {
	c.misses = 0 // want "plain access mixes memory models"
}

func (c *counters) badCopy() atomic.Int64 {
	return c.hits // want "access it only through its methods"
}

func (c *counters) badOverwrite(other *counters) {
	c.hits = other.hits // want "access it only through its methods" // want "access it only through its methods"
}

func (c *counters) badMixedStore() {
	c.mode.Store(42) // want "Value is monomorphic"
}

func (c *counters) badIfaceStore(err error) {
	c.mode.Store(err) // want "interface-typed value"
}

func (c *counters) excused() int64 {
	//icnvet:ignore atomichygiene — read during single-threaded shutdown, after all writers joined
	return c.misses
}
