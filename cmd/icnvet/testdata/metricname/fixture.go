// Package fixture exercises the metricname pass over real obs.Registry
// registration calls: snake_case names with _total counters and
// _seconds/_bytes histograms.
package fixture

import "idicn/internal/obs"

func register(r *obs.Registry, component string) {
	r.Counter("requests_total")
	r.Counter("BadName_total")  // want "not lower snake_case"
	r.Counter("requests_count") // want "must end in _total"
	r.Histogram("serve_seconds", []float64{0.001, 0.01})
	r.Histogram("object_bytes", []float64{1024})
	r.Histogram("serve_latency", nil) // want "must end in _seconds or _bytes"
	r.Func("queue_depth", func() int64 { return 0 })

	// Concatenations: literal fragments are checked, runtime parts skipped.
	r.Counter(component + "_served_total")
	r.Counter("cache_" + component) // dynamic suffix: not statically checkable
}
