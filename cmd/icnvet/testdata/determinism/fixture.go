// Package fixture exercises the determinism pass. vet_test.go declares this
// package under idicn/internal/sim so it falls inside the seeded scopes.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

func draw() int {
	return rand.Intn(6) // want "rand.Intn draws from the global generator"
}

// seeded draws from an injected generator — clean.
func seeded(r *rand.Rand) int {
	return r.Intn(6)
}

func sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want "map iteration order is random"
		total += v
	}
	return total
}

// keys sorts before emitting, so the range is genuinely order-insensitive
// and carries the documented justification directive — clean.
func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//icnvet:ignore determinism
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
