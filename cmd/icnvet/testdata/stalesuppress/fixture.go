// Package fixture exercises the stale-suppression sweep: an escape hatch
// that excuses nothing is itself rot. An //icnvet:ignore that suppresses no
// finding, an //icnvet:ignore naming a pass that does not exist, an
// //icn:oneshot on a goroutine the lifetime rules already bound, and an
// //icn:oneshot attached to no go statement at all are each reported. A
// directive that genuinely suppresses a finding (the unbuffered channel
// below) stays silent. Flagged lines carry trailing want-markers checked by
// vet_test.go.
package fixture

import (
	"net/http"
	"sync"
)

func work() {}

//icnvet:ignore noalloc — the function this excused was rewritten long ago // want "suppresses no finding"
func clean() {}

//icnvet:ignore nosuchpass — typo for a pass that never existed // want "unknown pass"
func typo() {}

//icn:oneshot fixture: the goroutine this excused is gone // want "attached to no go statement"
func orphan() {}

func handler(w http.ResponseWriter, r *http.Request) {
	// A used directive: the unbuffered make below is a real boundedqueue
	// finding, so this ignore suppresses something and is not reported.
	//icnvet:ignore boundedqueue — fixture: consumed synchronously in this function
	ch := make(chan int)
	_ = ch

	var wg sync.WaitGroup
	wg.Add(1)
	//icn:oneshot fixture: annotation is redundant, the goroutine is tracked // want "already bounded"
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}
