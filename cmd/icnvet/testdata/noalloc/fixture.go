// Package fixture exercises the noalloc pass: every construct the pass must
// flag inside an //icn:noalloc function, plus the idioms it must allow (the
// scratch-slice self-append, constants into interfaces, the ignore escape
// hatch). Flagged lines carry trailing want-markers checked by vet_test.go.
package fixture

import "strconv"

var scratch []int

func sink(v interface{}) { _ = v }

//icn:noalloc
func allocates(n int) int {
	s := make([]int, n) // want "make in //icn:noalloc function allocates"
	p := new(int)       // want "new in //icn:noalloc function allocates"
	_ = p
	fresh := []int{}           // want "slice literal allocates"
	fresh = append(scratch, n) // want "append grows a fresh slice"
	m := map[int]int{n: n}     // want "map literal allocates"
	_ = m
	return len(s) + len(fresh)
}

type point struct{ x, y int }

//icn:noalloc
func escapes() *point {
	return &point{x: 1} // want "escaping composite literal"
}

//icn:noalloc
func captures(n int) func() int {
	return func() int { return n } // want "closure captures n"
}

//icn:noalloc
func concat(a, b string) string {
	return a + b // want "string concatenation"
}

//icn:noalloc
func boxes(n int) {
	sink(n) // want "interface boxing of non-pointer value"
}

//icn:noalloc
func spawns() {
	go noop() // want "goroutine start"
}

func noop() {}

//icn:noalloc
func formats(n int) string {
	return strconv.Itoa(n) // want "call to allocating stdlib function strconv.Itoa"
}

//icn:noalloc
func usesBuiltins(s string) int {
	if len(s) > 3 { // builtins are fine
		return stringsIndex(s)
	}
	return 0
}

//icn:noalloc
func reuses(n int) {
	scratch = scratch[:0]
	scratch = append(scratch, n)        // self-append reuse: allowed
	scratch = append(scratch[:0], n, n) // reslice-reuse: allowed
	sink(&scratch)                      // pointer into interface: no boxing
	sink(nil)                           // nil into interface: no boxing
	sink(4)                             // constant into interface: interned
}

//icn:noalloc
func silenced(n int) []int {
	return make([]int, n) //icnvet:ignore noalloc
}

func stringsIndex(s string) int { return len(s) }

// The cache-policy zoo's hot-path idioms, all of which must stay clean:
// slot-directory surgery on a pre-sized map, free-list self-append, packed
// 4-bit counter updates, and dynamic dispatch through a small interface
// (how the engine reaches every policy and TinyLFU reaches its inner one).

type slotDirectory struct {
	index map[int32]int32
	free  []int32
	table []uint64
}

//icn:noalloc
func (d *slotDirectory) recycle(obj int32, slot int32) {
	delete(d.index, obj)          // map delete: allowed
	d.index[obj] = slot           // assignment into pre-sized map: allowed
	d.free = append(d.free, slot) // free-list self-append reuse: allowed
	d.table[0] = (d.table[0] >> 1) & 0x7777777777777777
	if (d.table[0]>>4)&0xf < 15 { // packed-counter probe: allowed
		d.table[0] += 1 << 4
	}
}

type prober interface {
	Contains(obj int32) bool
}

//icn:noalloc
func (d *slotDirectory) admits(inner prober, obj int32) bool {
	return inner.Contains(obj) // interface dispatch: allowed
}

//icn:noalloc
func (d *slotDirectory) leaks(obj int32) prober {
	return &slotDirectory{ // want "escaping composite literal"
		index: d.index,
	}
}

func (d *slotDirectory) Contains(obj int32) bool {
	_, ok := d.index[obj]
	return ok
}
