// Package fixture exercises the noalloc pass: every construct the pass must
// flag inside an //icn:noalloc function, plus the idioms it must allow (the
// scratch-slice self-append, constants into interfaces, the ignore escape
// hatch). Flagged lines carry trailing want-markers checked by vet_test.go.
package fixture

import "strconv"

var scratch []int

func sink(v interface{}) { _ = v }

//icn:noalloc
func allocates(n int) int {
	s := make([]int, n) // want "make in //icn:noalloc function allocates"
	p := new(int)       // want "new in //icn:noalloc function allocates"
	_ = p
	fresh := []int{}           // want "slice literal allocates"
	fresh = append(scratch, n) // want "append grows a fresh slice"
	m := map[int]int{n: n}     // want "map literal allocates"
	_ = m
	return len(s) + len(fresh)
}

type point struct{ x, y int }

//icn:noalloc
func escapes() *point {
	return &point{x: 1} // want "escaping composite literal"
}

//icn:noalloc
func captures(n int) func() int {
	return func() int { return n } // want "closure captures n"
}

//icn:noalloc
func concat(a, b string) string {
	return a + b // want "string concatenation"
}

//icn:noalloc
func boxes(n int) {
	sink(n) // want "interface boxing of non-pointer value"
}

//icn:noalloc
func spawns() {
	go noop() // want "goroutine start"
}

func noop() {}

//icn:noalloc
func formats(n int) string {
	return strconv.Itoa(n) // want "call to allocating stdlib function strconv.Itoa"
}

//icn:noalloc
func usesBuiltins(s string) int {
	if len(s) > 3 { // builtins are fine
		return stringsIndex(s)
	}
	return 0
}

//icn:noalloc
func reuses(n int) {
	scratch = scratch[:0]
	scratch = append(scratch, n)        // self-append reuse: allowed
	scratch = append(scratch[:0], n, n) // reslice-reuse: allowed
	sink(&scratch)                      // pointer into interface: no boxing
	sink(nil)                           // nil into interface: no boxing
	sink(4)                             // constant into interface: interned
}

//icn:noalloc
func silenced(n int) []int {
	return make([]int, n) //icnvet:ignore noalloc
}

func stringsIndex(s string) int { return len(s) }
