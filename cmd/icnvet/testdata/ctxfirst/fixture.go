// Package fixture exercises the ctxfirst pass: exported functions and
// methods must take context.Context first, and no struct may store one.
package fixture

import "context"

// Fetch takes its context second — flagged.
func Fetch(name string, ctx context.Context) error { // want "takes context.Context as parameter 2"
	_ = ctx
	_ = name
	return nil
}

// Resolve takes its context first — clean.
func Resolve(ctx context.Context, name string) error {
	_ = ctx
	_ = name
	return nil
}

// unexported functions are outside the API contract — clean even ctx-last.
func helper(name string, ctx context.Context) {
	_ = ctx
	_ = name
}

type session struct {
	name string
	ctx  context.Context // want "stores a context.Context in a struct"
}

// Run is a method: the receiver does not count as a parameter, so a leading
// context is still first — clean.
func (s *session) Run(ctx context.Context, tries int) {
	_ = ctx
	_ = tries
	_ = s.name
}
