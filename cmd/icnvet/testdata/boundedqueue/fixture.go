// Package fixture exercises the boundedqueue pass: channels touched on
// handler-reachable paths must have explicit capacity, and sends there must
// carry a select escape so a request can be dropped instead of parked.
package fixture

import (
	"context"
	"net/http"
	"time"
)

type job struct{ id string }

// handler is a root: it has a *http.Request parameter.
func handler(w http.ResponseWriter, r *http.Request) {
	updates := make(chan job)  // want "unbuffered channel on the request path"
	updates <- job{id: r.Host} // want "blocking channel send on the request path"
	enqueue(r.Host)
	w.WriteHeader(http.StatusAccepted)
}

var workQueue = make(chan job, 64)

// enqueue is not a handler itself, but the package-local BFS reaches it
// from one — its bare send blocks the calling request when the queue fills.
func enqueue(id string) {
	workQueue <- job{id: id} // want "blocking channel send on the request path"
}

// goodHandler shows the sanctioned patterns: explicit capacity, and sends
// wrapped in selects that can give up.
func goodHandler(w http.ResponseWriter, r *http.Request) {
	updates := make(chan job, 8)
	select {
	case updates <- job{id: r.Host}:
	default: // shed: the request must not park on a full queue
	}
	select {
	case workQueue <- job{id: r.Host}:
	case <-r.Context().Done():
	}
	w.WriteHeader(http.StatusAccepted)
}

// handlerLit wires a handler closure: function literals with a
// *http.Request parameter are roots too.
func handlerLit(mux *http.ServeMux, events chan job) {
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		events <- job{id: r.URL.Path} // want "blocking channel send on the request path"
	})
}

// signalUser demonstrates the escape hatch: a close-only completion signal
// is never sent on, so its lack of capacity is harmless — but the claim has
// to be written down.
func signalUser(w http.ResponseWriter, r *http.Request) {
	//icnvet:ignore boundedqueue — close-only completion signal, never sent on
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(time.Millisecond)
	}()
	<-done
	w.WriteHeader(http.StatusNoContent)
}

// offline is not reachable from any handler: channel discipline elsewhere
// in the program is out of this pass's scope.
func offline(ctx context.Context) {
	results := make(chan int)
	go func() { results <- 1 }()
	select {
	case <-results:
	case <-ctx.Done():
	}
}
