// Package fixture exercises the errcheck-lite pass: expression statements
// dropping an error from io/os/net/encoding-family calls are flagged;
// deferred calls and explicit blank assignments are not.
package fixture

import (
	"encoding/json"
	"io"
	"os"
)

func drops(f *os.File, w io.Writer, r io.Reader) {
	f.Close()                     // want "unchecked error from (File).Close"
	io.Copy(w, r)                 // want "unchecked error from io.Copy"
	json.NewEncoder(w).Encode(42) // want "unchecked error from (Encoder).Encode"
}

func deferred(f *os.File) error {
	defer f.Close() // deferred: exempt
	return nil
}

func decided(f *os.File) {
	_ = f.Close() // explicit blank assignment: the drop is visible in review
}

func checked(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// fmt-family and local calls are out of scope.
func local() {
	noop()
}

func noop() error { return nil }
