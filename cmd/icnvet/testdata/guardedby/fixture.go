// Package fixture exercises the guardedby pass: fields annotated
// //icn:guardedby <mu> may only be touched with the named lock held, with
// RLock sufficing for reads under an RWMutex and full Lock required for
// writes. It also exercises every escape: the Locked-suffix convention,
// constructor-before-publish freshness, the `writes` qualifier for
// atomic-published fields, and //icnvet:ignore guardedby. Flagged lines
// carry trailing want-markers checked by vet_test.go.
package fixture

import (
	"sync"
	"sync/atomic"
)

type counterSet struct {
	mu sync.Mutex
	//icn:guardedby mu
	total int
	//icn:guardedby mu
	names []string
}

func (c *counterSet) good() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	c.names = append(c.names, "x")
}

func (c *counterSet) badRead() int {
	return c.total // want "read of total without holding mu"
}

func (c *counterSet) badWrite() {
	c.total = 0 // want "write to total without holding mu"
}

func (c *counterSet) earlyUnlock() {
	c.mu.Lock()
	c.total++
	c.mu.Unlock()
	c.total++ // want "write to total without holding mu"
}

func (c *counterSet) lockOnlyInBranch(b bool) {
	if b {
		c.mu.Lock()
		c.total++ // locked inside the branch: fine
		c.mu.Unlock()
	}
	c.total++ // want "write to total without holding mu"
}

func (c *counterSet) badAsync() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		// The spawned goroutine does not inherit the caller's lock.
		c.total++ // want "write to total without holding mu"
	}()
}

// bumpLocked runs with c.mu held — the Locked suffix is the contract the
// pass enforces at call sites by name.
func (c *counterSet) bumpLocked() {
	c.total++
	c.names = c.names[:0]
}

// newCounterSet may touch guarded fields freely: the value it is building
// has not been published to any other goroutine yet.
func newCounterSet() *counterSet {
	c := &counterSet{}
	c.total = 1
	return c
}

func (c *counterSet) excused() int {
	//icnvet:ignore guardedby — monitoring probe; a torn read is acceptable here
	return c.total
}

type table struct {
	mu sync.RWMutex
	//icn:guardedby mu
	rows map[string]int
}

func (t *table) lookup(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[k] // RLock suffices for reads
}

func (t *table) badStore(k string) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.rows[k] = 1 // want "write to rows without holding mu"
}

type published struct {
	mu sync.Mutex
	//icn:guardedby mu writes
	snap atomic.Pointer[int]
}

// read is lock-free by design: the `writes` qualifier says only mutations
// need the lock (the pointer itself is atomically published).
func (p *published) read() *int { return p.snap.Load() }

func (p *published) publish(v *int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.snap.Store(v)
}

func (p *published) badPublish(v *int) {
	p.snap.Store(v) // want "write to snap without holding mu"
}

type misannotated struct {
	mu  sync.Mutex
	cfg int
	//icn:guardedby cfg
	v int // want "not a sync.Mutex/RWMutex field"
	//icn:guardedby
	w int // want "needs a guard field name"
}
