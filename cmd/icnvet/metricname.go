package main

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// obsPath is the observability package whose registration calls carry the
// metric-name literals this pass vets.
const obsPath = "idicn/internal/obs"

// registration methods on obs.Registry and the suffix rule each imposes.
// Counters are monotonic (_total); histograms are unit-suffixed (_seconds
// for latencies, _bytes for sizes); Func gauges carry no mandated suffix.
var metricSuffixes = map[string][]string{
	"Counter":   {"_total"},
	"Histogram": {"_seconds", "_bytes"},
	"Func":      nil,
}

// runMetricname checks every string literal passed as a metric name to
// obs.Registry registration calls: lowercase snake_case throughout, with
// the per-kind suffix convention. Names built at runtime (fmt.Sprintf) are
// skipped — only literals are mechanically checkable.
func runMetricname(u *Unit) []Finding {
	var out []Finding
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := u.calleeFunc(call)
			if fn == nil || funcPkgPath(fn) != obsPath {
				return true
			}
			suffixes, ok := metricSuffixes[fn.Name()]
			if !ok || fn.Signature().Recv() == nil {
				return true
			}
			parts, complete, lastLit := stringLitParts(call.Args[0])
			if len(parts) == 0 {
				return true // dynamically built name; nothing to check
			}
			for _, p := range parts {
				if !snakeCasePart(p.text) {
					out = append(out, u.finding("metricname", p.pos,
						"metric name part %q is not lower snake_case", p.text))
				}
			}
			if complete {
				name := ""
				for _, p := range parts {
					name += p.text
				}
				if !snakeCaseName(name) {
					out = append(out, u.finding("metricname", call.Args[0].Pos(),
						"metric name %q is not lower snake_case", name))
				}
			}
			if suffixes != nil && lastLit != nil {
				okSuffix := false
				for _, s := range suffixes {
					if strings.HasSuffix(lastLit.text, s) {
						okSuffix = true
						break
					}
				}
				if !okSuffix {
					out = append(out, u.finding("metricname", lastLit.pos,
						"%s metric name %q must end in %s", fn.Name(), lastLit.text, strings.Join(suffixes, " or ")))
				}
			}
			return true
		})
	}
	return out
}

type litPart struct {
	text string
	pos  token.Pos
}

// stringLitParts collects the string-literal fragments of expr, which may
// be a single literal or a tree of + concatenations mixing literals with
// runtime values. complete reports whether every fragment was a literal;
// lastLit is the final fragment if (and only if) it is a literal, i.e. the
// suffix of the resulting name is statically known.
func stringLitParts(expr ast.Expr) (parts []litPart, complete bool, lastLit *litPart) {
	complete = true
	var endsWithLit bool
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.BasicLit:
			if e.Kind == token.STRING {
				if s, err := strconv.Unquote(e.Value); err == nil {
					parts = append(parts, litPart{text: s, pos: e.Pos()})
					endsWithLit = true
					return
				}
			}
			complete = false
			endsWithLit = false
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				walk(e.X)
				walk(e.Y)
				return
			}
			complete = false
			endsWithLit = false
		default:
			complete = false
			endsWithLit = false
		}
	}
	walk(expr)
	if endsWithLit && len(parts) > 0 {
		lastLit = &parts[len(parts)-1]
	}
	return parts, complete, lastLit
}

// snakeCasePart accepts a fragment of a snake_case name: lowercase
// letters, digits, underscores.
func snakeCasePart(s string) bool {
	for _, r := range s {
		if !(r == '_' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')) {
			return false
		}
	}
	return true
}

// snakeCaseName accepts a complete metric name: snake_case fragments
// joined by single underscores, starting with a letter.
func snakeCaseName(s string) bool {
	if s == "" || !(s[0] >= 'a' && s[0] <= 'z') {
		return false
	}
	if strings.Contains(s, "__") || strings.HasSuffix(s, "_") {
		return false
	}
	return snakeCasePart(s)
}
