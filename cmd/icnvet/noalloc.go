package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// allocPkgs are stdlib packages whose exported functions allocate as a
// matter of course; calling them from an //icn:noalloc function is flagged
// without looking inside.
var allocPkgs = map[string]bool{
	"fmt":     true,
	"strings": true,
	"strconv": true,
	"sort":    true,
	"errors":  true,
	"bytes":   true,
	"regexp":  true,
}

// runNoalloc checks every function whose doc comment carries //icn:noalloc:
// the engine serve path and its helpers. The body must contain no
// allocating construct: make/new, escaping or reference-typed composite
// literals, append that grows a fresh slice instead of reusing its
// argument, closures that capture variables, non-constant string
// concatenation, boxing a non-pointer value into an interface, or calls
// into allocating stdlib packages.
func runNoalloc(u *Unit) []Finding {
	var out []Finding
	for _, f := range u.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "icn:noalloc") {
				continue
			}
			out = append(out, checkNoallocBody(u, fd)...)
		}
	}
	return out
}

func checkNoallocBody(u *Unit, fd *ast.FuncDecl) []Finding {
	var out []Finding
	flag := func(pos token.Pos, format string, args ...any) {
		out = append(out, u.finding("noalloc", pos, format, args...))
	}

	// Appends of the form x = append(x, ...) or x = append(x[:0], ...)
	// reuse their argument's backing array once it reaches steady-state
	// capacity — the scratch-slice idiom the serve path is built on. Every
	// other append grows a fresh slice per call.
	allowedAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !u.isBuiltin(call, "append") || len(call.Args) == 0 {
				continue
			}
			base := ast.Unparen(call.Args[0])
			if s, ok := base.(*ast.SliceExpr); ok {
				base = ast.Unparen(s.X)
			}
			if types.ExprString(base) == types.ExprString(as.Lhs[i]) {
				allowedAppend[call] = true
			}
		}
		return true
	})

	// handledLit marks composite literals reported (or cleared) by their
	// parent &T{...} so the literal itself is not re-reported.
	handledLit := map[*ast.CompositeLit]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case u.isBuiltin(n, "make"):
				flag(n.Pos(), "make in //icn:noalloc function %s", fd.Name.Name)
			case u.isBuiltin(n, "new"):
				flag(n.Pos(), "new in //icn:noalloc function %s", fd.Name.Name)
			case u.isBuiltin(n, "append") && !allowedAppend[n]:
				flag(n.Pos(), "append grows a fresh slice in //icn:noalloc function %s (use x = append(x, ...) scratch reuse)", fd.Name.Name)
			}
			if fn := u.calleeFunc(n); fn != nil && allocPkgs[funcPkgPath(fn)] {
				flag(n.Pos(), "call to allocating stdlib function %s.%s in //icn:noalloc function %s", fn.Pkg().Name(), fn.Name(), fd.Name.Name)
			}
			out = append(out, u.checkCallBoxing(fd, n)...)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					handledLit[lit] = true
					flag(n.Pos(), "escaping composite literal &%s{...} in //icn:noalloc function %s", types.ExprString(lit.Type), fd.Name.Name)
				}
			}
		case *ast.CompositeLit:
			if handledLit[n] {
				return true
			}
			t := u.typeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				flag(n.Pos(), "%s literal allocates in //icn:noalloc function %s", typeKindName(t), fd.Name.Name)
			}
		case *ast.FuncLit:
			if captured := u.capturedVars(fd, n); len(captured) > 0 {
				flag(n.Pos(), "closure captures %s in //icn:noalloc function %s", captured[0], fd.Name.Name)
			}
			return false // the literal's body is not part of the hot path proper
		case *ast.BinaryExpr:
			if n.Op == token.ADD && u.isNonConstString(n) {
				flag(n.Pos(), "string concatenation in //icn:noalloc function %s", fd.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(u.typeOf(n.Lhs[0])) {
				flag(n.Pos(), "string concatenation (+=) in //icn:noalloc function %s", fd.Name.Name)
			}
		case *ast.GoStmt:
			flag(n.Pos(), "goroutine start in //icn:noalloc function %s", fd.Name.Name)
		}
		return true
	})
	return out
}

// isBuiltin reports whether call invokes the named builtin.
func (u *Unit) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = u.Info.Uses[id].(*types.Builtin)
	return ok
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (u *Unit) isNonConstString(e ast.Expr) bool {
	tv, ok := u.Info.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type) && tv.Value == nil
}

func typeKindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// checkCallBoxing flags arguments whose concrete, non-pointer-shaped value
// is implicitly converted to an interface parameter — each such call boxes
// the value on the heap. Conversions written as I(x) are caught the same
// way via the conversion's "signature".
func (u *Unit) checkCallBoxing(fd *ast.FuncDecl, call *ast.CallExpr) []Finding {
	var out []Finding
	if tv, ok := u.Info.Types[call.Fun]; ok && tv.IsType() {
		// Explicit conversion T(x).
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && u.boxes(call.Args[0]) {
			out = append(out, u.finding("noalloc", call.Pos(), "interface boxing of non-pointer value in //icn:noalloc function %s", fd.Name.Name))
		}
		return out
	}
	sigType := u.typeOf(call.Fun)
	if sigType == nil {
		return out
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return out
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last
			} else if s, ok := last.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if u.boxes(arg) {
			out = append(out, u.finding("noalloc", arg.Pos(), "interface boxing of non-pointer value in //icn:noalloc function %s", fd.Name.Name))
		}
	}
	return out
}

// boxes reports whether passing e to an interface-typed slot heap-allocates:
// its static type is concrete and not pointer-shaped, and the value is not
// a constant (small constants are interned by the runtime) or nil.
func (u *Unit) boxes(e ast.Expr) bool {
	tv, ok := u.Info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return false
	}
	t := tv.Type
	if types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: fits an interface word without boxing
	}
	return true
}

// capturedVars returns the names of variables a func literal captures from
// its enclosing //icn:noalloc function — captures force the closure (and
// the captured variables) onto the heap.
func (u *Unit) capturedVars(fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	declared := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := u.Info.Defs[id]; obj != nil {
				declared[obj] = true
			}
		}
		return true
	})
	var names []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := u.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || declared[obj] || seen[obj] {
			return true
		}
		// Captured iff declared inside the enclosing function but outside
		// the literal. Package-level variables are shared, not captured.
		if obj.Pos() >= fd.Pos() && obj.Pos() < fd.End() &&
			!(obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			seen[obj] = true
			names = append(names, obj.Name())
		}
		return true
	})
	return names
}
