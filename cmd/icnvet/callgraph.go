package main

import (
	"go/ast"
	"go/types"
)

// declSite pairs a function declaration with the unit that holds it.
type declSite struct {
	Unit *Unit
	Decl *ast.FuncDecl
}

// callGraph is a static over-approximation of the module's call relation:
// direct calls resolve to their callee, and calls through an interface
// method fan out to that method on every module type implementing the
// interface. Function literals are attributed to their enclosing
// declaration, so a helper invoked inside a closure still counts as called.
type callGraph struct {
	Decls map[*types.Func]declSite
	edges map[*types.Func][]*types.Func
}

// buildCallGraph indexes every function declaration in units and records
// the call edges out of each body.
func buildCallGraph(units []*Unit) *callGraph {
	g := &callGraph{
		Decls: make(map[*types.Func]declSite),
		edges: make(map[*types.Func][]*types.Func),
	}

	// All named (non-alias) types declared in the module, for interface
	// dispatch: a call to iface.Method may land on any of these.
	var named []*types.Named
	for _, u := range units {
		for _, obj := range u.Info.Defs {
			tn, ok := obj.(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if n, ok := tn.Type().(*types.Named); ok {
				named = append(named, n)
			}
		}
		for fn, fd := range u.Decls() {
			g.Decls[fn] = declSite{Unit: u, Decl: fd}
		}
	}

	for fn, site := range g.Decls {
		u, fd := site.Unit, site.Decl
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := u.calleeFunc(call)
			if callee == nil {
				return true
			}
			g.edges[fn] = append(g.edges[fn], callee)
			if recv := callee.Signature().Recv(); recv != nil {
				if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
					g.edges[fn] = append(g.edges[fn], implementors(named, iface, callee.Name())...)
				}
			}
			return true
		})
	}
	return g
}

// implementors returns the named method on every module type (or its
// pointer) that satisfies iface.
func implementors(named []*types.Named, iface *types.Interface, method string) []*types.Func {
	var out []*types.Func
	for _, n := range named {
		if types.IsInterface(n) {
			continue
		}
		var recv types.Type
		switch {
		case types.Implements(n, iface):
			recv = n
		case types.Implements(types.NewPointer(n), iface):
			recv = types.NewPointer(n)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, n.Obj().Pkg(), method)
		if m, ok := obj.(*types.Func); ok {
			out = append(out, m)
		}
	}
	return out
}

// ReachableFrom returns every declared function reachable from roots over
// the recorded edges (roots included).
func (g *callGraph) ReachableFrom(roots []*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	queue := append([]*types.Func(nil), roots...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		queue = append(queue, g.edges[fn]...)
	}
	return seen
}
