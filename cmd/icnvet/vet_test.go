package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoad memoizes one loader (and its type-checked module) across the
// tests in this package: type-checking the module once is the expensive
// part, and the loader is read-only after loading.
var sharedLoad = sync.OnceValues(func() (*loader, error) {
	root, err := findModuleRoot(".")
	if err != nil {
		return nil, err
	}
	return newLoader(root)
})

func sharedLoader(t *testing.T) *loader {
	t.Helper()
	l, err := sharedLoad()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	return l
}

// fixturePath returns the import path a fixture is declared under. The
// determinism fixture must sit inside the pass's scoped packages to be
// checked at all; everything else lives under a neutral path.
func fixturePath(pass string) string {
	if pass == "determinism" {
		return "idicn/internal/sim/icnvetfixture"
	}
	return "idicn/icnvetfixture/" + pass
}

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

// wantComments scans a fixture directory for `// want "substring"` markers,
// keyed by file base name and line.
func wantComments(t *testing.T, dir string) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", e.Name(), i+1)
				out[key] = append(out[key], m[1])
			}
		}
	}
	return out
}

// TestFixtures runs the whole suite over each pass's golden fixture package
// and checks the findings for that pass against the fixture's `// want`
// comments: every want must be matched by a finding on its line, every
// finding must be expected, and every pass must actually fire at least
// once. Module passes and the synthesized stale-suppression pass get
// fixtures too: each fixture unit is analyzed as a one-unit module.
func TestFixtures(t *testing.T) {
	l := sharedLoader(t)
	var names []string
	for _, p := range passes() {
		names = append(names, p.Name)
	}
	for _, p := range modulePasses() {
		names = append(names, p.Name)
	}
	names = append(names, stalePass)
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", name))
			if err != nil {
				t.Fatal(err)
			}
			u, err := l.load(fixturePath(name), dir)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			var findings []Finding
			for _, f := range runUnits([]*Unit{u}) {
				if f.Pass == name {
					findings = append(findings, f)
				}
			}
			if len(findings) == 0 {
				t.Fatalf("pass %s produced no findings on its fixture", name)
			}

			want := wantComments(t, dir)
			matched := make(map[string]map[int]bool) // key -> want index -> hit
			for _, f := range findings {
				key := fmt.Sprintf("%s:%d", filepath.Base(f.File), f.Line)
				ok := false
				for i, sub := range want[key] {
					if strings.Contains(f.Message, sub) {
						if matched[key] == nil {
							matched[key] = make(map[int]bool)
						}
						matched[key][i] = true
						ok = true
					}
				}
				if !ok {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for key, subs := range want {
				for i, sub := range subs {
					if !matched[key][i] {
						t.Errorf("%s: expected finding containing %q, got none", key, sub)
					}
				}
			}
		})
	}
}

// TestRepoClean is the self-check wired into the tier-1 gate from the test
// side: the repository's own packages must be clean under every pass.
func TestRepoClean(t *testing.T) {
	l := sharedLoader(t)
	units, err := l.LoadAll()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, f := range runUnits(units) {
		t.Errorf("repo not clean: %s", f)
	}
}

// TestNoallocReachableFromBench guards the link between the //icn:noalloc
// annotations and the bench-smoke allocation gate: every annotated function
// must be statically reachable from BenchmarkServeRequest, otherwise the
// 0 allocs/op measurement no longer covers it and the annotation is
// unverified. Test files are not type-checked by the loader, so the bench
// itself is bridged by name: its AST (and the test helpers it calls) yield
// the set of sim functions the benchmark enters, which seed the typed call
// graph.
func TestNoallocReachableFromBench(t *testing.T) {
	l := sharedLoader(t)
	units, err := l.LoadAll()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	g := newModule(units).CallGraph()

	const simPath = "idicn/internal/sim"
	simDir := filepath.Join(l.root, "internal", "sim")
	fset := token.NewFileSet()
	testDecls := make(map[string]*ast.FuncDecl)
	entries, err := os.ReadDir(simDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(simDir, e.Name()), nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", e.Name(), err)
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				testDecls[fd.Name.Name] = fd
			}
		}
	}
	if _, ok := testDecls["BenchmarkServeRequest"]; !ok {
		t.Fatal("BenchmarkServeRequest not found in internal/sim test files; the noalloc annotations are unverified")
	}

	// Name-level BFS through the test helpers reachable from the benchmark.
	called := make(map[string]bool)
	visited := make(map[string]bool)
	queue := []string{"BenchmarkServeRequest"}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		fd := testDecls[name]
		if fd == nil || visited[name] {
			continue
		}
		visited[name] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				called[fun.Name] = true
				queue = append(queue, fun.Name)
			case *ast.SelectorExpr:
				called[fun.Sel.Name] = true
				queue = append(queue, fun.Sel.Name)
			}
			return true
		})
	}

	var roots []*types.Func
	for fn, site := range g.Decls {
		if site.Unit.Path == simPath && called[fn.Name()] {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		t.Fatal("no typed sim functions reachable from BenchmarkServeRequest")
	}
	reach := g.ReachableFrom(roots)

	annotated := 0
	for fn, site := range g.Decls {
		if !hasDirective(site.Decl.Doc, "icn:noalloc") {
			continue
		}
		annotated++
		if !reach[fn] {
			pos := site.Unit.Fset.Position(site.Decl.Pos())
			t.Errorf("//icn:noalloc function %s (%s) is not reachable from BenchmarkServeRequest; the alloc gate no longer covers it", fn.FullName(), pos)
		}
	}
	if annotated == 0 {
		t.Error("no //icn:noalloc functions found in the module; the serve path has lost its annotations")
	}
}
