package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runGuardedby enforces declared lock discipline: a struct field annotated
//
//	//icn:guardedby mu          // reads and writes hold mu
//	//icn:guardedby mu writes   // writes hold mu; reads are lock-free
//	                            // (atomic-published, single-writer)
//
// may only be touched while the named sync.Mutex/RWMutex field of the same
// struct is held on the same instance. The check is a per-function lock-set
// walk over the AST: Lock/RLock add to the set, Unlock/RUnlock remove,
// defer'd Unlocks pin the lock to function exit, and nested branches get a
// copy of the set so a conditional early-unlock doesn't leak. For an
// RWMutex, RLock suffices for reads; writes need the full Lock.
//
// Escapes, in preference order:
//
//   - constructor-before-publish: accesses through a local the function
//     itself created (x := &T{...}, new(T), var x T) are exempt — nobody
//     else can see the value yet;
//   - functions whose name ends in "Locked" assume every mutex field of
//     their receiver is already held — the repo's caller-holds-the-lock
//     naming convention, now enforced at the callee;
//   - //icnvet:ignore guardedby with an inline rationale, for the rare
//     access that is safe for a reason the walk cannot see.
func runGuardedby(u *Unit) []Finding {
	g := &guardChecker{u: u, guards: make(map[*types.Var]guardInfo)}
	var out []Finding
	out = append(out, g.collect()...)
	if len(g.guards) == 0 {
		return out
	}
	for _, fd := range u.Decls() {
		out = append(out, g.checkFunc(fd)...)
	}
	sortFindings(out)
	return out
}

// guardInfo is one parsed //icn:guardedby annotation.
type guardInfo struct {
	guard      string // guard field name on the same struct
	rw         bool   // guard is an RWMutex (RLock suffices for reads)
	writesOnly bool   // "writes" qualifier: reads are lock-free
}

type guardChecker struct {
	u      *Unit
	guards map[*types.Var]guardInfo
}

// guardDirective parses a comment group for //icn:guardedby <mu> [writes],
// returning the guard name, the qualifier, and whether a directive exists.
func guardDirective(doc *ast.CommentGroup) (name string, writes bool, ok bool, malformed bool) {
	if doc == nil {
		return "", false, false, false
	}
	for _, c := range doc.List {
		rest, found := strings.CutPrefix(strings.TrimSpace(c.Text), "//icn:guardedby")
		if !found {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return "", false, false, true
		}
		writes = len(fields) > 1 && fields[1] == "writes"
		return fields[0], writes, true, false
	}
	return "", false, false, false
}

// collect finds every annotated field, validates its guard, and indexes it.
func (g *guardChecker) collect() []Finding {
	var out []Finding
	for _, file := range g.u.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, f := range st.Fields.List {
				name, writes, ok, malformed := guardDirective(f.Doc)
				if !ok && !malformed {
					name, writes, ok, malformed = guardDirective(f.Comment)
				}
				// Validation findings anchor to the field, not the comment, so
				// the flagged line is the one carrying the annotated code.
				if malformed {
					out = append(out, g.u.finding("guardedby", f.Pos(), "//icn:guardedby needs a guard field name"))
					continue
				}
				if !ok {
					continue
				}
				rw, found := mutexField(g.u, st, name)
				if !found {
					out = append(out, g.u.finding("guardedby", f.Pos(),
						"//icn:guardedby names %q, which is not a sync.Mutex/RWMutex field of the same struct", name))
					continue
				}
				for _, id := range f.Names {
					if v, ok := g.u.Info.Defs[id].(*types.Var); ok {
						g.guards[v] = guardInfo{guard: name, rw: rw, writesOnly: writes}
					}
				}
			}
			return true
		})
	}
	return out
}

// mutexField reports whether st has a field called name whose type is
// sync.Mutex or sync.RWMutex (possibly behind a pointer), and whether it is
// the RW flavor.
func mutexField(u *Unit, st *ast.StructType, name string) (rw, found bool) {
	for _, f := range st.Fields.List {
		for _, id := range f.Names {
			if id.Name != name {
				continue
			}
			t := u.typeOf(f.Type)
			if t == nil {
				return false, false
			}
			return isMutex(t)
		}
	}
	return false, false
}

// isMutex reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) (rw, ok bool) {
	if p, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// Lock-set membership: the strongest hold on a lock path.
const (
	heldNone = iota
	heldRead
	heldWrite
)

// lockState is the per-walk mutable state: which lock paths are held (and
// how), which are pinned to function exit by a defer'd Unlock, and which
// locals are fresh (created here, unpublished).
type lockState struct {
	held   map[string]int
	pinned map[string]bool
	fresh  map[types.Object]bool
}

func newLockState() *lockState {
	return &lockState{held: map[string]int{}, pinned: map[string]bool{}, fresh: map[types.Object]bool{}}
}

// clone copies the state for a branch: lock changes inside the branch must
// not leak past it, but fresh locals may (a value created in an if-branch
// is still fresh after it — over-approximate, and shared maps would be
// wrong for held).
func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.pinned {
		c.pinned[k] = true
	}
	c.fresh = s.fresh // shared on purpose: freshness is function-scoped
	return c
}

// exprPath normalizes an lvalue-ish expression to a stable string path and
// its root object: q.mu -> ("<obj q>.mu", q), engines[p].sh -> path with the
// index rendered textually. Returns ok=false for expressions the walk cannot
// name (call results, composite literals) — those accesses are skipped
// rather than guessed at.
func (g *guardChecker) exprPath(e ast.Expr) (string, types.Object, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := g.u.Info.Uses[e]
		if obj == nil {
			obj = g.u.Info.Defs[e]
		}
		if obj == nil {
			return "", nil, false
		}
		return obj.Id() + "@" + g.u.Fset.Position(obj.Pos()).String(), obj, true
	case *ast.SelectorExpr:
		p, root, ok := g.exprPath(e.X)
		if !ok {
			return "", nil, false
		}
		return p + "." + e.Sel.Name, root, true
	case *ast.IndexExpr:
		p, root, ok := g.exprPath(e.X)
		if !ok {
			return "", nil, false
		}
		return p + "[" + types.ExprString(e.Index) + "]", root, true
	case *ast.StarExpr:
		return g.exprPath(e.X)
	}
	return "", nil, false
}

// checkFunc walks one declared function.
func (g *guardChecker) checkFunc(fd *ast.FuncDecl) []Finding {
	st := newLockState()
	// Caller-holds-the-lock convention: xxxLocked methods run with every
	// mutex field of their receiver held.
	if fd.Recv != nil && len(fd.Recv.List) == 1 && strings.HasSuffix(fd.Name.Name, "Locked") {
		if len(fd.Recv.List[0].Names) == 1 {
			recv := g.u.Info.Defs[fd.Recv.List[0].Names[0]]
			if recv != nil {
				rt := recv.Type()
				if p, ok := types.Unalias(rt).(*types.Pointer); ok {
					rt = p.Elem()
				}
				if s, ok := rt.Underlying().(*types.Struct); ok {
					base, _, _ := g.exprPath(fd.Recv.List[0].Names[0])
					for i := 0; i < s.NumFields(); i++ {
						if _, isMu := isMutex(s.Field(i).Type()); isMu {
							st.held[base+"."+s.Field(i).Name()] = heldWrite
						}
					}
				}
			}
		}
	}
	w := &guardWalker{g: g}
	w.stmts(fd.Body.List, st)
	return w.out
}

type guardWalker struct {
	g   *guardChecker
	out []Finding
}

func (w *guardWalker) stmts(list []ast.Stmt, st *lockState) {
	for _, s := range list {
		w.stmt(s, st)
	}
}

// stmt processes one statement: scan its expressions against the current
// lock set, apply its lock effects, and recurse into nested blocks with a
// cloned set so branch-local changes stay branch-local.
func (w *guardWalker) stmt(s ast.Stmt, st *lockState) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.stmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scan(s.Cond, st, false)
		w.stmt(s.Body, st.clone())
		if s.Else != nil {
			w.stmt(s.Else, st.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scan(s.Cond, st, false)
		}
		body := st.clone()
		w.stmt(s.Body, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.scan(s.X, st, false)
		body := st.clone()
		if s.Key != nil {
			w.scan(s.Key, body, true)
		}
		if s.Value != nil {
			w.scan(s.Value, body, true)
		}
		w.stmt(s.Body, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scan(s.Tag, st, false)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				branch := st.clone()
				for _, e := range cc.List {
					w.scan(e, branch, false)
				}
				w.stmts(cc.Body, branch)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.stmt(s.Assign, st)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := st.clone()
				if cc.Comm != nil {
					w.stmt(cc.Comm, branch)
				}
				w.stmts(cc.Body, branch)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	case *ast.DeferStmt:
		// A defer'd Unlock pins the lock to function exit; a defer'd closure
		// runs at exit under an unknown lock set, so its body is walked
		// fresh. Other defer'd calls have their arguments scanned now.
		if path, op, ok := w.g.lockOp(s.Call); ok {
			if op == opUnlock || op == opRUnlock {
				st.pinned[path] = true
			}
			return
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			inner := newLockState()
			inner.fresh = st.fresh
			w.stmt(lit.Body, inner)
			for _, a := range s.Call.Args {
				w.scan(a, st, false)
			}
			return
		}
		w.scan(s.Call, st, false)
	case *ast.GoStmt:
		// The goroutine runs under its own (empty) lock set.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.stmt(lit.Body, newLockState())
			for _, a := range s.Call.Args {
				w.scan(a, st, false)
			}
			return
		}
		w.scan(s.Call, st, false)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scan(e, st, false)
		}
		for _, e := range s.Lhs {
			w.scan(e, st, true)
		}
		if s.Tok == token.DEFINE {
			w.markFresh(s, st)
		}
	case *ast.IncDecStmt:
		w.scan(s.X, st, true)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.scan(v, st, false)
				}
				if len(vs.Values) == 0 && vs.Type != nil {
					// var x T: zero value, created here, unpublished.
					for _, id := range vs.Names {
						if obj := w.g.u.Info.Defs[id]; obj != nil {
							st.fresh[obj] = true
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		if path, op, ok := w.g.lockOp(callOf(s.X)); ok {
			switch op {
			case opLock:
				st.held[path] = heldWrite
			case opRLock:
				if st.held[path] == heldNone {
					st.held[path] = heldRead
				}
			case opUnlock, opRUnlock:
				if !st.pinned[path] {
					delete(st.held, path)
				}
			}
			return
		}
		w.scan(s.X, st, false)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scan(e, st, false)
		}
	case *ast.SendStmt:
		w.scan(s.Chan, st, false)
		w.scan(s.Value, st, false)
	default:
		// BranchStmt, EmptyStmt: nothing to scan.
	}
}

// markFresh records locals defined from a composite literal, &literal, or
// new(T): values this function created and has not yet published.
func (w *guardWalker) markFresh(s *ast.AssignStmt, st *lockState) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.g.u.Info.Defs[id]
		if obj == nil {
			continue
		}
		switch rhs := ast.Unparen(s.Rhs[i]).(type) {
		case *ast.CompositeLit:
			st.fresh[obj] = true
		case *ast.UnaryExpr:
			if rhs.Op == token.AND {
				if _, isLit := ast.Unparen(rhs.X).(*ast.CompositeLit); isLit {
					st.fresh[obj] = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && id.Name == "new" {
				if _, builtin := w.g.u.Info.Uses[id].(*types.Builtin); builtin {
					st.fresh[obj] = true
				}
			}
		}
	}
}

// Lock operations.
const (
	opLock = iota
	opRLock
	opUnlock
	opRUnlock
)

func callOf(e ast.Expr) *ast.CallExpr {
	c, _ := ast.Unparen(e).(*ast.CallExpr)
	return c
}

// lockOp recognizes <path>.Lock()/Unlock()/RLock()/RUnlock() on a
// sync.Mutex/RWMutex and returns the normalized lock path.
func (g *guardChecker) lockOp(call *ast.CallExpr) (path string, op int, ok bool) {
	if call == nil {
		return "", 0, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return "", 0, false
	}
	t := g.u.typeOf(sel.X)
	if t == nil {
		return "", 0, false
	}
	if _, isMu := isMutex(t); !isMu {
		return "", 0, false
	}
	p, _, okPath := g.exprPath(sel.X)
	if !okPath {
		return "", 0, false
	}
	return p, op, true
}

// storeMethods are methods on a field that count as writes when classifying
// guarded accesses (the atomic-pointer publish idiom under a writes guard).
var storeMethods = map[string]bool{"Store": true, "Swap": true, "CompareAndSwap": true, "Add": true}

// scan records guarded-field accesses in an expression tree. write marks the
// whole expression as a write target (assignment LHS, IncDec operand).
func (w *guardWalker) scan(e ast.Expr, st *lockState, write bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure may run later under a different lock set: walk it
			// with an empty one.
			inner := newLockState()
			inner.fresh = st.fresh
			w.stmt(n.Body, inner)
			return false
		case *ast.CallExpr:
			// Nested lock calls inside expressions (rare) are not applied as
			// effects — only statement-level calls are — but their receivers
			// still get scanned below.
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// Taking the address may hand out a mutable reference: treat
				// as a write.
				w.access(n.X, st, true)
				return false
			}
			return true
		case *ast.SelectorExpr:
			isWrite := write && n == outerSelector(e)
			// A method call on the field itself: Store-like methods mutate.
			w.access(n, st, isWrite)
			// Keep scanning the base expression for deeper guarded fields
			// (done inside access), but stop default traversal duplicating it.
			return false
		}
		return true
	})
}

// outerSelector unwraps parens to the top-level selector of e, if any.
func outerSelector(e ast.Expr) ast.Expr {
	u := ast.Unparen(e)
	if sel, ok := u.(*ast.SelectorExpr); ok {
		return sel
	}
	if idx, ok := u.(*ast.IndexExpr); ok {
		return outerSelector(idx.X)
	}
	return nil
}

// access checks one selector chain. The outermost selector carries the
// write flag; inner selectors along the chain are reads.
func (w *guardWalker) access(e ast.Expr, st *lockState, write bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		w.scan(e, st, false)
		return
	}
	// Method selection: m.pop.Store — the method ident itself is not a field
	// access, but its receiver chain is; Store-like methods write it.
	if fn, isMethod := w.g.u.Info.Uses[sel.Sel].(*types.Func); isMethod {
		w.access(sel.X, st, storeMethods[fn.Name()])
		return
	}
	if v, isVar := w.g.u.Info.Uses[sel.Sel].(*types.Var); isVar {
		if info, guarded := w.g.guards[v]; guarded {
			w.checkAccess(sel, v, info, st, write)
		}
	}
	// The base of the chain is read.
	w.access(sel.X, st, false)
}

// checkAccess applies the lock-discipline rule to one guarded access.
func (w *guardWalker) checkAccess(sel *ast.SelectorExpr, v *types.Var, info guardInfo, st *lockState, write bool) {
	base, root, ok := w.g.exprPath(sel.X)
	if !ok {
		return // unnameable base (call result, literal): out of the walk's reach
	}
	if root != nil && st.fresh[root] {
		return // constructor-before-publish
	}
	hold := st.held[base+"."+info.guard]
	if write {
		if hold != heldWrite {
			w.out = append(w.out, w.g.u.finding("guardedby", sel.Sel.Pos(),
				"write to %s without holding %s (//icn:guardedby)", v.Name(), info.guard))
		}
		return
	}
	if info.writesOnly {
		return
	}
	if hold == heldNone {
		msg := "read of %s without holding %s (//icn:guardedby)"
		if info.rw {
			msg = "read of %s without holding %s (//icn:guardedby; RLock suffices)"
		}
		w.out = append(w.out, w.g.u.finding("guardedby", sel.Sel.Pos(), msg, v.Name(), info.guard))
	}
}
