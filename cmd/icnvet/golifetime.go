package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runGolifetime checks that every goroutine launched on the serving or
// streaming path has a visible bound on its lifetime. Roots are the
// module's entry surfaces — HTTP handlers (declared functions and literals
// with a *http.Request parameter), the simulator's RunStream, and the main
// functions of the command binaries — and scope is everything reachable
// from them over the module call graph. A `go` statement in scope is
// bounded if the analysis can see one of:
//
//   - the goroutine body calls Done on a sync.WaitGroup (tracked: someone
//     Waits for it);
//   - the body receives from a struct{}-element channel — the ctx.Done()/
//     quit-channel idiom — or ranges over a channel (ends when the producer
//     closes it);
//   - the body, or the go call itself, passes a context.Context on (the
//     callee inherits cancellation);
//   - the statement carries `//icn:oneshot <rationale>` on its line or the
//     line above: a deliberate fire-and-forget, with the reason in the
//     reader's view.
//
// An //icn:oneshot that excuses nothing — no rationale, no go statement, or
// a goroutine the rules already bound — is itself reported, so annotations
// cannot outlive the code they excused.
func runGolifetime(m *Module) []Finding {
	cg := m.CallGraph()
	var out []Finding

	// Oneshot directives and, for the stale sweep, every go statement's
	// position module-wide (in scope or not).
	oneshots, directives := collectOneshots(m)
	allGoLines := make(map[posKey]bool)
	for _, u := range m.Units {
		for _, fd := range u.Decls() {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p := u.Fset.Position(g.Pos())
					allGoLines[posKey{p.Filename, p.Line}] = true
				}
				return true
			})
		}
	}

	// Roots: handler decls, RunStream, command mains; handler literals add
	// their direct callees (the call graph attributes a literal's calls to
	// its enclosing declaration, which may itself be out of scope).
	var roots []*types.Func
	type litBody struct {
		u    *Unit
		body *ast.BlockStmt
		enc  *types.Func
	}
	var lits []litBody
	for _, u := range m.Units {
		for fn, fd := range u.Decls() {
			if hasRequestParam(fn.Signature()) ||
				fn.Name() == "RunStream" ||
				(u.Pkg.Name() == "main" && fn.Name() == "main" && fn.Signature().Recv() == nil) {
				roots = append(roots, fn)
			}
			enc := fn
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				sig, _ := u.typeOf(lit).(*types.Signature)
				if sig == nil || !hasRequestParam(sig) {
					return true
				}
				lits = append(lits, litBody{u, lit.Body, enc})
				ast.Inspect(lit.Body, func(n2 ast.Node) bool {
					if call, ok := n2.(*ast.CallExpr); ok {
						if callee := u.calleeFunc(call); callee != nil {
							if _, local := cg.Decls[callee]; local {
								roots = append(roots, callee)
							}
						}
					}
					return true
				})
				return true
			})
		}
	}
	reach := cg.ReachableFrom(roots)

	// Scan every in-scope body for go statements, deduplicating: a handler
	// literal may sit inside an already-reachable declaration.
	seen := make(map[token.Pos]bool)
	scan := func(u *Unit, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok || seen[g.Pos()] {
				return true
			}
			seen[g.Pos()] = true
			p := u.Fset.Position(g.Pos())
			d := oneshots[posKey{p.Filename, p.Line}]
			bounded := boundedGo(u, g, cg)
			switch {
			case d != nil && d.rationale == "":
				// The annotation exists but says nothing; anchor the finding
				// to the goroutine it fails to excuse.
				d.used = true
				out = append(out, u.finding("golifetime", g.Pos(),
					"//icn:oneshot needs a rationale: say why this goroutine may outlive its caller"))
			case bounded && d != nil:
				d.used = true // reported as redundant in the sweep below
			case bounded:
			case d != nil:
				d.used = true
				d.excused = true
			default:
				out = append(out, u.finding("golifetime", g.Pos(),
					"goroutine has no visible lifetime bound; select on ctx.Done()/a quit channel, track it with a WaitGroup, or annotate //icn:oneshot <why>"))
			}
			return true
		})
	}
	for fn := range reach {
		if site, ok := cg.Decls[fn]; ok {
			scan(site.Unit, site.Decl.Body)
		}
	}
	for _, lb := range lits {
		scan(lb.u, lb.body)
	}

	// Stale sweep over the annotations themselves.
	for _, d := range directives {
		switch {
		case d.used:
			if !d.excused && d.rationale != "" {
				out = append(out, Finding{Pass: stalePass, File: d.posn.Filename, Line: d.posn.Line, Col: d.posn.Column,
					Message: "//icn:oneshot excuses a goroutine that is already bounded — remove it"})
			}
		case d.rationale == "":
			out = append(out, Finding{Pass: "golifetime", File: d.posn.Filename, Line: d.posn.Line, Col: d.posn.Column,
				Message: "//icn:oneshot needs a rationale: say why this goroutine may outlive its caller"})
		case !allGoLines[posKey{d.posn.Filename, d.posn.Line}] && !allGoLines[posKey{d.posn.Filename, d.posn.Line + 1}]:
			out = append(out, Finding{Pass: stalePass, File: d.posn.Filename, Line: d.posn.Line, Col: d.posn.Column,
				Message: "//icn:oneshot is attached to no go statement — remove it"})
		}
	}
	sortFindings(out)
	return out
}

type posKey struct {
	file string
	line int
}

// oneshotDirective is one //icn:oneshot annotation. used marks that an
// in-scope go statement sits on its line; excused that the statement
// actually needed it.
type oneshotDirective struct {
	posn      token.Position
	rationale string
	used      bool
	excused   bool
}

// collectOneshots parses //icn:oneshot comments across the module, indexed
// by the line they apply to (their own line for trailing comments, the line
// below for standalone ones — both are registered).
func collectOneshots(m *Module) (map[posKey]*oneshotDirective, []*oneshotDirective) {
	idx := make(map[posKey]*oneshotDirective)
	var all []*oneshotDirective
	for _, u := range m.Units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//icn:oneshot")
					if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					d := &oneshotDirective{posn: pos, rationale: strings.TrimSpace(rest)}
					all = append(all, d)
					idx[posKey{pos.Filename, pos.Line}] = d
					if _, taken := idx[posKey{pos.Filename, pos.Line + 1}]; !taken {
						idx[posKey{pos.Filename, pos.Line + 1}] = d
					}
				}
			}
		}
	}
	return idx, all
}

// boundedGo reports whether the goroutine launched by g has a statically
// visible lifetime bound.
func boundedGo(u *Unit, g *ast.GoStmt, cg *callGraph) bool {
	// A context handed to the spawned call bounds it at the spawn site.
	for _, a := range g.Call.Args {
		if t := u.typeOf(a); t != nil && isContextType(t) {
			return true
		}
	}
	var body *ast.BlockStmt
	bu := u
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := u.calleeFunc(g.Call); fn != nil {
		if site, ok := cg.Decls[fn]; ok {
			body, bu = site.Decl.Body, site.Unit
		}
	}
	if body == nil {
		return false // external or dynamic callee: nothing to inspect
	}
	return bodyBounded(bu, body)
}

// bodyBounded scans a goroutine body for any of the accepted bounds.
func bodyBounded(u *Unit, body *ast.BlockStmt) bool {
	bounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if isWaitGroup(u.typeOf(sel.X)) {
					bounded = true
					return false
				}
			}
			for _, a := range n.Args {
				if t := u.typeOf(a); t != nil && isContextType(t) {
					bounded = true
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isSignalChan(u.typeOf(n.X)) {
				bounded = true
				return false
			}
		case *ast.RangeStmt:
			if t := u.typeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					bounded = true
					return false
				}
			}
		}
		return true
	})
	return bounded
}

// isWaitGroup reports whether t (or *t) is sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isSignalChan reports whether t is a channel of struct{} — the done/quit
// idiom (ctx.Done() included).
func isSignalChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
