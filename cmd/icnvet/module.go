package main

import (
	"go/ast"
	"go/types"
)

// Module is the shared analysis context: every loaded unit, plus the
// expensive derived structures — per-unit function-declaration indexes and
// the module-wide call graph — built exactly once and shared by all passes
// (and by the tests). Before it existed, each pass that needed a decl index
// or reachability re-derived it per unit per run.
type Module struct {
	Units []*Unit

	cg *callGraph // lazily built; see CallGraph
}

// newModule wraps units for analysis.
func newModule(units []*Unit) *Module {
	return &Module{Units: units}
}

// CallGraph returns the module-wide static call graph, building it on first
// use and memoizing it across passes.
func (m *Module) CallGraph() *callGraph {
	if m.cg == nil {
		m.cg = buildCallGraph(m.Units)
	}
	return m.cg
}

// Decls returns the unit's declared functions (with bodies) indexed by their
// types.Func, built once and shared by every pass that walks function
// bodies.
func (u *Unit) Decls() map[*types.Func]*ast.FuncDecl {
	if u.decls == nil {
		u.decls = make(map[*types.Func]*ast.FuncDecl)
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
					u.decls[fn] = fd
				}
			}
		}
	}
	return u.decls
}
