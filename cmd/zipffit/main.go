// Command zipffit fits a Zipf popularity exponent to a CDN request log (as
// written by tracegen), the analysis behind the paper's Table 2.
//
// Usage:
//
//	zipffit asia.log
//	tracegen -vantage asia | zipffit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"idicn/internal/trace"
	"idicn/internal/zipfian"
)

func main() {
	flag.Parse()
	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "zipffit: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	if err := fit(in, name, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "zipffit: %v\n", err)
		os.Exit(1)
	}
}

// fit reads a log, fits both estimators, and writes the report.
func fit(in io.Reader, name string, out io.Writer) error {
	records, err := trace.ReadLog(in)
	if err != nil {
		return err
	}
	counts := trace.ObjectCounts(records)
	alphaFit, r2, err := zipfian.FitRankFrequency(counts)
	if err != nil {
		return err
	}
	alphaMLE, err := zipfian.FitMLE(counts)
	if err != nil {
		return err
	}
	distinct := 0
	for _, c := range counts {
		if c > 0 {
			distinct++
		}
	}
	fmt.Fprintf(out, "%s: %d requests, %d distinct objects\n", name, len(records), distinct)
	fmt.Fprintf(out, "  Zipf alpha (log-log regression) = %.3f  (r^2 = %.4f)\n", alphaFit, r2)
	fmt.Fprintf(out, "  Zipf alpha (MLE)                = %.3f\n", alphaMLE)
	return nil
}
