package main

import (
	"bytes"
	"strings"
	"testing"

	"idicn/internal/trace"
)

func TestFit(t *testing.T) {
	var log bytes.Buffer
	if err := trace.WriteLog(&log, trace.Asia(0.003).Generate()); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := fit(&log, "test", &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "Zipf alpha (MLE)") || !strings.Contains(report, "test:") {
		t.Fatalf("report:\n%s", report)
	}
	// Errors propagate.
	if err := fit(strings.NewReader("garbage line\n"), "x", &out); err == nil {
		t.Error("garbage log accepted")
	}
	if err := fit(strings.NewReader(""), "x", &out); err == nil {
		t.Error("empty log accepted (nothing to fit)")
	}
}
