# Development entry points. `make check` is the tier-1 gate: everything in
# it must pass before a commit (see ROADMAP.md).

GO ?= go

.PHONY: check vet build test race bench-smoke bench bench-json clean

check: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the perf-critical benchmarks: proves they still compile
# and run, without the minutes-long full benchmark pass.
bench-smoke:
	$(GO) test ./internal/sim -run '^$$' -bench 'BenchmarkServeRequest' -benchtime 1000x -benchmem
	$(GO) test . -run '^$$' -bench 'BenchmarkFigure6Parallel' -benchtime 1x

# Full benchmark pass over every artifact regeneration.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Regenerate the machine-readable perf log committed at the repo root.
bench-json:
	$(GO) run ./cmd/icnsim -bench-json BENCH_sim.json

clean:
	$(GO) clean ./...
