# Development entry points. `make check` is the tier-1 gate: everything in
# it must pass before a commit (see ROADMAP.md).

GO ?= go

.PHONY: check fmtcheck lint vet build test race bench-smoke chaos-smoke overload-smoke crash-smoke alloc-gate bench bench-all bench-json clean

check: fmtcheck lint vet build test race chaos-smoke overload-smoke crash-smoke bench-smoke

# The serve-path allocation gate, shared by bench-smoke and the Makefile
# test in alloc_gate_test.go. `go test -benchmem` reports allocs/op as a
# rounded integer, but BENCH_sim.json records fractional values (e.g.
# 0.0166 for EDGE), so the threshold is explicit: a BenchmarkServeRequest
# line with allocs/op >= 0.5 — anything that would round to a nonzero
# integer — fails.
ALLOC_GATE_AWK = /^BenchmarkServeRequest\// && $$NF == "allocs/op" && $$(NF-1)+0 >= 0.5 { bad = 1; print "alloc-gate: FAIL: serve path allocates: " $$0 } END { exit bad }

# Project-invariant static analysis (see README "Static analysis"): the
# icnvet suite must report zero findings on the repository. LINT_JSON=1
# switches to one JSON object per finding per line, for tooling that
# consumes the gate's output (CI annotations, dashboards).
LINT_FLAGS = $(if $(LINT_JSON),-json)
lint:
	$(GO) run ./cmd/icnvet $(LINT_FLAGS) ./...

fmtcheck:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "fmtcheck: gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order to flush out
# order-dependent tests; -count=1 defeats caching so the shuffle actually
# runs every time.
test:
	$(GO) test -shuffle=on -count=1 ./...

race:
	$(GO) test -race ./...

# One iteration of the perf-critical benchmarks: proves they still compile
# and run, without the minutes-long full benchmark pass. The first run also
# gates the zero-alloc contract: BenchmarkServeRequest (observer disabled)
# must stay under the ALLOC_GATE_AWK threshold; the Observed variant is
# tracked but not gated.
bench-smoke:
	@out="$$($(GO) test ./internal/sim -run '^$$' -bench '^BenchmarkServeRequest$$' -benchtime 1000x -benchmem)" || { echo "$$out"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | awk '$(ALLOC_GATE_AWK)'
	$(GO) test ./internal/sim -run '^$$' -bench '^BenchmarkServeRequestObserved$$' -benchtime 1000x -benchmem
	$(GO) test . -run '^$$' -bench 'BenchmarkFigure6Parallel' -benchtime 1x

# Apply the allocation gate to benchmark output piped on stdin. Exists so
# the gate's exact threshold is testable (see alloc_gate_test.go) and
# reusable from CI pipelines that already hold a benchmark transcript.
alloc-gate:
	@awk '$(ALLOC_GATE_AWK)'

# The stack-level chaos drill under the race detector: a seeded resolver
# blackout over 30% of a run must leave >= 99% of requests completing via
# graceful degradation, with reproducible injected-fault counts.
chaos-smoke:
	$(GO) test -race -count=1 -run '^TestChaosResolverBlackout$$' ./internal/idicn/integration

# The overload drill under the race detector: open-loop traffic past a
# fixed concurrency limit must be shed with bounded queue waits (no
# park-to-timeout), leave zero stuck goroutines, and drain cleanly.
overload-smoke:
	$(GO) test -race -count=1 -run '^TestOverloadSurge$$' ./internal/idicn/integration

# The crash-safety drill under the race detector: kill the streaming sim
# after every on-disk checkpoint in turn (including torn-file cases) and
# require the resumed Result to be bit-identical to an uninterrupted run.
crash-smoke:
	$(GO) test -race -count=1 -run '^TestCrashResumeDrill' ./internal/checkpoint

# Measure sharded streaming throughput at 1, half, and all cores and append
# the timestamped requests_per_sec series to the committed perf log, then
# the daemon overload series (admitted/sec and p99 queue wait at 1x/2x/4x
# offered load, plus a load-under-chaos point that must engage the brownout
# ladder while holding goodput above a quarter of fault-free capacity) to
# BENCH_daemon.json.
bench:
	$(GO) run ./cmd/icnsim -bench-append BENCH_sim.json
	$(GO) run ./cmd/idicnd -bench-daemon BENCH_daemon.json -faults 'proxy:latency,d=120ms,p=0.5'

# Full benchmark pass over every artifact regeneration.
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Regenerate the machine-readable perf log committed at the repo root.
bench-json:
	$(GO) run ./cmd/icnsim -bench-json BENCH_sim.json

clean:
	$(GO) clean ./...
