package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"idicn/internal/zipfian"
)

func TestLogRoundTrip(t *testing.T) {
	in := []Record{
		{Time: 0, Client: 1, Object: 0, Size: 100, ServedLocally: true},
		{Time: 3, Client: 2, Object: 0x7fffffff, Size: 1 << 40, ServedLocally: false},
		{Time: 9, Client: 0, Object: 42, Size: 64, ServedLocally: true},
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("record %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestReadLogRejectsMalformed(t *testing.T) {
	for name, input := range map[string]string{
		"fields": "1\t2\t/obj/00000001\t3\n",
		"time":   "x\t2\t/obj/00000001\t3\t0\n",
		"client": "1\tx\t/obj/00000001\t3\t0\n",
		"url":    "1\t2\t/nope/1\t3\t0\n",
		"urlhex": "1\t2\t/obj/zz\t3\t0\n",
		"size":   "1\t2\t/obj/00000001\tx\t0\n",
		"local":  "1\t2\t/obj/00000001\t3\t2\n",
	} {
		if _, err := ReadLog(strings.NewReader(input)); err == nil {
			t.Errorf("%s: malformed line accepted", name)
		}
	}
}

func TestReadLogSkipsBlankLines(t *testing.T) {
	out, err := ReadLog(strings.NewReader("\n1\t2\t/obj/00000005\t7\t1\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Object != 5 {
		t.Fatalf("got %+v", out)
	}
}

func TestObjectCountsAndRankFrequency(t *testing.T) {
	recs := []Record{{Object: 2}, {Object: 0}, {Object: 2}, {Object: 2}, {Object: 5}}
	counts := ObjectCounts(recs)
	if len(counts) != 6 || counts[2] != 3 || counts[0] != 1 || counts[5] != 1 || counts[1] != 0 {
		t.Fatalf("counts = %v", counts)
	}
	rf := RankFrequency(recs)
	want := []int64{3, 1, 1}
	if len(rf) != 3 {
		t.Fatalf("RankFrequency = %v, want %v", rf, want)
	}
	for i := range want {
		if rf[i] != want[i] {
			t.Fatalf("RankFrequency = %v, want %v", rf, want)
		}
	}
}

func TestVantagePointModels(t *testing.T) {
	for _, tc := range []struct {
		m         CDNModel
		wantName  string
		wantAlpha float64
		wantReqs  int
	}{
		{US(1), "US", 0.99, 1_100_000},
		{Europe(1), "Europe", 0.92, 3_100_000},
		{Asia(1), "Asia", 1.04, 1_800_000},
	} {
		if tc.m.Name != tc.wantName || tc.m.Alpha != tc.wantAlpha || tc.m.Requests != tc.wantReqs {
			t.Errorf("model %+v, want name=%s alpha=%v reqs=%d", tc.m, tc.wantName, tc.wantAlpha, tc.wantReqs)
		}
	}
	small := Asia(0.01)
	if small.Requests != 18000 {
		t.Errorf("Asia(0.01).Requests = %d, want 18000", small.Requests)
	}
	if small.Objects != 1200 {
		t.Errorf("Asia(0.01).Objects = %d, want 1200", small.Objects)
	}
}

func TestScalePanics(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %v accepted", s)
				}
			}()
			US(s)
		}()
	}
}

func TestGenerateIsDeterministicAndZipfLike(t *testing.T) {
	m := Asia(0.02)
	a := m.Generate()
	b := m.Generate()
	if len(a) != m.Requests {
		t.Fatalf("generated %d records, want %d", len(a), m.Requests)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Generate not deterministic")
		}
	}
	// The generated log must fit back to approximately the model's alpha.
	alpha, r2, err := zipfian.FitRankFrequency(ObjectCounts(a))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-m.Alpha) > 0.2 {
		t.Errorf("fitted alpha %v, want about %v", alpha, m.Alpha)
	}
	if r2 < 0.85 {
		t.Errorf("fit r2 = %v, too weak", r2)
	}
}

func TestGenerateSizes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	sizes := GenerateSizes(5000, DefaultContentMix(), r)
	var min, max int64 = math.MaxInt64, 0
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if min < 64 {
		t.Errorf("size below floor: %d", min)
	}
	if max < 1<<20 {
		t.Errorf("no large objects generated (max %d); mix should be heavy-tailed", max)
	}
	uniform := GenerateSizes(10, nil, r)
	for _, s := range uniform {
		if s != 1 {
			t.Errorf("empty mix size = %d, want 1", s)
		}
	}
}

func TestNewSyntheticRequestsBasics(t *testing.T) {
	cfg := StreamConfig{
		Requests:   20000,
		Objects:    500,
		Alpha:      0.9,
		PoPWeights: []float64{1, 3},
		Leaves:     4,
		Seed:       5,
	}
	reqs := NewSyntheticRequests(cfg)
	if len(reqs) != cfg.Requests {
		t.Fatalf("len = %d", len(reqs))
	}
	var pop1 int
	leafSeen := map[int32]bool{}
	for _, q := range reqs {
		if q.PoP < 0 || q.PoP > 1 || q.Leaf < 0 || q.Leaf >= 4 || q.Object < 0 || q.Object >= 500 {
			t.Fatalf("request out of range: %+v", q)
		}
		if q.PoP == 1 {
			pop1++
		}
		leafSeen[q.Leaf] = true
	}
	frac := float64(pop1) / float64(len(reqs))
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("PoP 1 got %.3f of requests, want ~0.75", frac)
	}
	if len(leafSeen) != 4 {
		t.Errorf("only %d distinct leaves used", len(leafSeen))
	}
}

func TestNewSyntheticRequestsNoSkewUsesGlobalRanking(t *testing.T) {
	cfg := StreamConfig{Requests: 30000, Objects: 100, Alpha: 1.2, PoPWeights: []float64{1, 1}, Leaves: 2, Seed: 9}
	reqs := NewSyntheticRequests(cfg)
	counts := make([]int64, cfg.Objects)
	for _, q := range reqs {
		counts[q.Object]++
	}
	// Object 0 must be the most requested overall.
	for o := 1; o < cfg.Objects; o++ {
		if counts[o] > counts[0] {
			t.Fatalf("object %d (%d reqs) beats object 0 (%d reqs) without skew", o, counts[o], counts[0])
		}
	}
}

func TestSkewPermutations(t *testing.T) {
	if SkewPermutations(3, 100, 0, 1) != nil {
		t.Fatal("skew 0 should return nil (identity)")
	}
	perms := SkewPermutations(3, 200, 1, 1)
	if len(perms) != 3 {
		t.Fatalf("got %d perms", len(perms))
	}
	for p, perm := range perms {
		seen := make([]bool, 200)
		for _, o := range perm {
			if seen[o] {
				t.Fatalf("PoP %d: duplicate object %d in permutation", p, o)
			}
			seen[o] = true
		}
	}
	// Full skew: different PoPs should disagree about the top object
	// (overwhelmingly likely with 200 objects).
	if perms[0][0] == perms[1][0] && perms[1][0] == perms[2][0] {
		t.Error("skew=1 produced identical top objects across PoPs")
	}
}

func TestSkewMetricMonotone(t *testing.T) {
	const pops, objects = 8, 400
	prev := -1.0
	for _, s := range []float64{0, 0.25, 0.5, 0.75, 1} {
		perms := SkewPermutations(pops, objects, s, 3)
		m := SpatialSkewMetric(perms, objects)
		if m < prev-0.005 {
			t.Errorf("skew metric not monotone: dial %v -> %v (prev %v)", s, m, prev)
		}
		prev = m
	}
	if prev < 0.2 {
		t.Errorf("full-skew metric = %v, want near 0.29 (uniform ranks)", prev)
	}
}

// Property: permutations are valid for any dial value.
func TestSkewPermutationValidQuick(t *testing.T) {
	f := func(dialRaw uint8, seed int64) bool {
		dial := float64(dialRaw%101) / 100
		perms := SkewPermutations(2, 64, dial, seed)
		if dial == 0 {
			return perms == nil
		}
		for _, perm := range perms {
			if len(perm) != 64 {
				return false
			}
			var mask uint64
			for _, o := range perm {
				if o < 0 || o >= 64 || mask&(1<<uint(o)) != 0 {
					return false
				}
				mask |= 1 << uint(o)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFromRecords(t *testing.T) {
	recs := []Record{{Object: 1}, {Object: 2}, {Object: 1}}
	reqs := FromRecords(recs, []float64{1, 1, 1}, 8, 2)
	if len(reqs) != 3 {
		t.Fatalf("len = %d", len(reqs))
	}
	for i, q := range reqs {
		if q.Object != recs[i].Object {
			t.Errorf("request %d object %d, want %d", i, q.Object, recs[i].Object)
		}
		if q.PoP < 0 || q.PoP > 2 || q.Leaf < 0 || q.Leaf >= 8 {
			t.Errorf("request %d out of range: %+v", i, q)
		}
	}
}

func TestOriginAssignment(t *testing.T) {
	weights := []float64{1, 9}
	origins := OriginAssignment(50000, weights, true, 7)
	var pop1 int
	for _, o := range origins {
		if o < 0 || o > 1 {
			t.Fatalf("origin out of range: %d", o)
		}
		if o == 1 {
			pop1++
		}
	}
	frac := float64(pop1) / 50000
	if math.Abs(frac-0.9) > 0.02 {
		t.Errorf("proportional origin assignment: PoP1 fraction %v, want ~0.9", frac)
	}
	uniform := OriginAssignment(50000, weights, false, 7)
	pop1 = 0
	for _, o := range uniform {
		if o == 1 {
			pop1++
		}
	}
	frac = float64(pop1) / 50000
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("uniform origin assignment: PoP1 fraction %v, want ~0.5", frac)
	}
}

func TestWeightedPickerPanics(t *testing.T) {
	for name, w := range map[string][]float64{
		"negative": {1, -1},
		"zero-sum": {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s weights accepted", name)
				}
			}()
			newWeightedPicker(w)
		}()
	}
}

func BenchmarkGenerateAsia(b *testing.B) {
	m := Asia(0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Generate()
	}
}

func BenchmarkNewSyntheticRequests(b *testing.B) {
	cfg := StreamConfig{Requests: 100000, Objects: 10000, Alpha: 1.0, PoPWeights: []float64{1, 2, 3, 4}, Leaves: 32, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSyntheticRequests(cfg)
	}
}

func TestTemporalLocalityPanicsOnBadValue(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.0, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TemporalLocality %v accepted", bad)
				}
			}()
			NewSyntheticRequests(StreamConfig{
				Requests: 10, Objects: 10, Alpha: 1, PoPWeights: []float64{1},
				Leaves: 1, TemporalLocality: bad,
			})
		}()
	}
}

func TestTemporalLocalityIncreasesPerLeafReuse(t *testing.T) {
	// With heavy locality, each leaf sees far fewer distinct objects than
	// under an IID stream of the same length.
	distinctPerLeaf := func(locality float64) float64 {
		reqs := NewSyntheticRequests(StreamConfig{
			Requests: 20000, Objects: 5000, Alpha: 0.8,
			PoPWeights: []float64{1, 1}, Leaves: 4, Seed: 31,
			TemporalLocality: locality,
		})
		type lk struct{ pop, leaf int32 }
		seen := map[lk]map[int32]bool{}
		for _, q := range reqs {
			k := lk{q.PoP, q.Leaf}
			if seen[k] == nil {
				seen[k] = map[int32]bool{}
			}
			seen[k][q.Object] = true
		}
		total := 0.0
		for _, s := range seen {
			total += float64(len(s))
		}
		return total / float64(len(seen))
	}
	iid := distinctPerLeaf(0)
	local := distinctPerLeaf(0.8)
	if local > iid*0.5 {
		t.Errorf("locality 0.8 left %v distinct/leaf vs IID %v; expected strong reuse", local, iid)
	}
}

func TestTemporalLocalityPreservesMarginals(t *testing.T) {
	// Repeats draw from the same distribution's recent samples, so the most
	// popular object overall should still be object 0.
	reqs := NewSyntheticRequests(StreamConfig{
		Requests: 40000, Objects: 200, Alpha: 1.2,
		PoPWeights: []float64{1}, Leaves: 2, Seed: 32,
		TemporalLocality: 0.6,
	})
	counts := make([]int64, 200)
	for _, q := range reqs {
		counts[q.Object]++
	}
	for o := 1; o < 200; o++ {
		if counts[o] > counts[0] {
			t.Fatalf("object %d (%d) beats object 0 (%d) under locality", o, counts[o], counts[0])
		}
	}
}
