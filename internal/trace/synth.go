package trace

import (
	"math"
	"math/rand"

	"idicn/internal/zipfian"
)

// ContentClass describes one content type in a CDN workload mix. Object
// sizes within a class are lognormal around MedianSize, giving the
// heavy-tailed size distribution real CDN logs exhibit.
type ContentClass struct {
	Name       string
	Weight     float64 // fraction of objects in this class
	MedianSize int64   // bytes
	SigmaLog   float64 // lognormal shape parameter
}

// DefaultContentMix is a CDN-like mix of the content types the paper's
// dataset spans: "regular text, images, multimedia, software binaries, and
// other miscellaneous content".
func DefaultContentMix() []ContentClass {
	return []ContentClass{
		{Name: "text", Weight: 0.35, MedianSize: 12 << 10, SigmaLog: 1.0},
		{Name: "image", Weight: 0.35, MedianSize: 80 << 10, SigmaLog: 1.2},
		{Name: "multimedia", Weight: 0.12, MedianSize: 4 << 20, SigmaLog: 1.5},
		{Name: "binary", Weight: 0.08, MedianSize: 2 << 20, SigmaLog: 1.8},
		{Name: "misc", Weight: 0.10, MedianSize: 30 << 10, SigmaLog: 1.4},
	}
}

// CDNModel describes a synthetic CDN vantage point: a request log with the
// given request and object counts and a Zipf(alpha) popularity distribution.
type CDNModel struct {
	Name     string
	Requests int
	Objects  int
	Alpha    float64
	Clients  int // number of distinct anonymized clients
	Mix      []ContentClass
	Seed     int64
	// LocalHitRatio is the probability a request is marked served-locally,
	// emulating the CDN's own front-end cache effectiveness.
	LocalHitRatio float64
}

// US returns the model for the paper's US vantage point: 1.1M requests with
// best-fit Zipf alpha 0.99 (Table 2). scale in (0, 1] shrinks the request
// and object counts proportionally for cheaper runs; 1 is paper scale.
func US(scale float64) CDNModel {
	return vantage("US", 1_100_000, 0.99, 101, scale)
}

// Europe returns the model for the Europe vantage point: 3.1M requests,
// alpha 0.92 (Table 2).
func Europe(scale float64) CDNModel {
	return vantage("Europe", 3_100_000, 0.92, 102, scale)
}

// Asia returns the model for the Asia vantage point: 1.8M requests, alpha
// 1.04 (Table 2). The paper's baseline simulations (§4.2) use this trace.
func Asia(scale float64) CDNModel {
	return vantage("Asia", 1_800_000, 1.04, 103, scale)
}

func vantage(name string, requests int, alpha float64, seed int64, scale float64) CDNModel {
	if scale <= 0 || scale > 1 {
		panic("trace: scale must be in (0, 1]")
	}
	reqs := int(float64(requests) * scale)
	if reqs < 1000 {
		reqs = 1000
	}
	// Real CDN logs see roughly one distinct object per ~15 requests.
	objs := reqs / 15
	if objs < 200 {
		objs = 200
	}
	return CDNModel{
		Name:          name,
		Requests:      reqs,
		Objects:       objs,
		Alpha:         alpha,
		Clients:       reqs/50 + 1,
		Mix:           DefaultContentMix(),
		Seed:          seed,
		LocalHitRatio: 0.7,
	}
}

// Generate produces the synthetic request log. The same model always yields
// the same log.
func (m CDNModel) Generate() []Record {
	r := rand.New(rand.NewSource(m.Seed))
	dist := zipfian.New(m.Alpha, m.Objects)
	sizes := GenerateSizes(m.Objects, m.Mix, r)
	records := make([]Record, m.Requests)
	clients := m.Clients
	if clients < 1 {
		clients = 1
	}
	for i := range records {
		obj := int32(dist.Sample(r))
		records[i] = Record{
			Time:          int64(i / 25), // ~25 req/s arrival
			Client:        uint32(r.Intn(clients)),
			Object:        obj,
			Size:          sizes[obj],
			ServedLocally: r.Float64() < m.LocalHitRatio,
		}
	}
	return records
}

// GenerateSizes draws one size per object from the content mix: each object
// is assigned a class by weight, then a lognormal size within the class.
// With an empty mix every object gets size 1 (the homogeneous-size setting
// used by the paper's baseline).
func GenerateSizes(objects int, mix []ContentClass, r *rand.Rand) []int64 {
	sizes := make([]int64, objects)
	if len(mix) == 0 {
		for i := range sizes {
			sizes[i] = 1
		}
		return sizes
	}
	totalW := 0.0
	for _, c := range mix {
		totalW += c.Weight
	}
	for i := range sizes {
		pick := r.Float64() * totalW
		cls := mix[len(mix)-1]
		for _, c := range mix {
			pick -= c.Weight
			if pick < 0 {
				cls = c
				break
			}
		}
		s := float64(cls.MedianSize) * math.Exp(r.NormFloat64()*cls.SigmaLog)
		if s < 64 {
			s = 64
		}
		sizes[i] = int64(s)
	}
	return sizes
}
