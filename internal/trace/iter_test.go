package trace

import (
	"reflect"
	"testing"
)

func testStreamConfig() StreamConfig {
	return StreamConfig{
		Requests:         5000,
		Objects:          400,
		Alpha:            0.9,
		SpatialSkew:      0.3,
		PoPWeights:       []float64{3, 1, 2, 5},
		Leaves:           8,
		Seed:             42,
		TemporalLocality: 0.4,
	}
}

func TestSyntheticMatchesMaterialized(t *testing.T) {
	for _, users := range []int{0, 1000} {
		cfg := testStreamConfig()
		cfg.Users = users
		want := NewSyntheticRequests(cfg)
		got, err := Collect(Synthetic(cfg))
		if err != nil {
			t.Fatalf("Users=%d: Collect: %v", users, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Users=%d: streamed requests differ from materialized", users)
		}
	}
}

func TestSyntheticUserHomesAreStable(t *testing.T) {
	cfg := testStreamConfig()
	cfg.Users = 50 // few users, many requests: homes must repeat
	cfg.TemporalLocality = 0
	reqs := NewSyntheticRequests(cfg)
	homes := map[[2]int32]bool{}
	for _, q := range reqs {
		homes[[2]int32{q.PoP, q.Leaf}] = true
		if q.PoP < 0 || int(q.PoP) >= len(cfg.PoPWeights) {
			t.Fatalf("PoP %d out of range", q.PoP)
		}
		if q.Leaf < 0 || int(q.Leaf) >= cfg.Leaves {
			t.Fatalf("leaf %d out of range", q.Leaf)
		}
	}
	if len(homes) > cfg.Users {
		t.Fatalf("%d distinct (PoP, leaf) homes from %d users", len(homes), cfg.Users)
	}
	if len(homes) < 2 {
		t.Fatalf("degenerate home assignment: %d distinct homes", len(homes))
	}
}

func TestSyntheticUsersFollowPoPWeights(t *testing.T) {
	cfg := StreamConfig{
		Requests:   40000,
		Objects:    100,
		Alpha:      0.8,
		PoPWeights: []float64{9, 1},
		Leaves:     4,
		Seed:       7,
		Users:      20000,
	}
	var counts [2]int
	var q Request
	s := Synthetic(cfg)
	for s.Next(&q) {
		counts[q.PoP]++
	}
	frac := float64(counts[0]) / float64(cfg.Requests)
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("PoP 0 got %.3f of requests, want ~0.9", frac)
	}
}

func TestRequestsStreamAndCollect(t *testing.T) {
	reqs := []Request{{0, 1, 2}, {1, 0, 3}, {0, 0, 0}}
	got, err := Collect(Requests(reqs))
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatalf("got %v, want %v", got, reqs)
	}
	// The adapter must not alias its output into the input slice's backing
	// array beyond reading.
	s := Requests(reqs)
	var q Request
	if !s.Next(&q) || q != reqs[0] {
		t.Fatalf("first Next got %v", q)
	}
}

func TestSyntheticPanicsOnInvalidConfig(t *testing.T) {
	for name, mutate := range map[string]func(*StreamConfig){
		"objects":  func(c *StreamConfig) { c.Objects = 0 },
		"leaves":   func(c *StreamConfig) { c.Leaves = 0 },
		"weights":  func(c *StreamConfig) { c.PoPWeights = nil },
		"locality": func(c *StreamConfig) { c.TemporalLocality = 1 },
		"users":    func(c *StreamConfig) { c.Users = -1 },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for invalid %s", name)
				}
			}()
			cfg := testStreamConfig()
			mutate(&cfg)
			Synthetic(cfg)
		})
	}
}
