package trace

import (
	"math/rand"

	"idicn/internal/zipfian"
)

// Stream is a pull iterator over simulator requests. It is the contract
// between workload producers (the streaming synthetic generator, the binary
// trace reader, in-memory slices) and consumers that must not materialize
// the whole workload: a 10⁹-request trace flows through a Stream in
// constant memory.
//
// Streams are single-pass and not safe for concurrent use; reopen or
// rebuild one per run.
type Stream interface {
	// Next stores the next request into q and reports whether one was
	// produced. After Next returns false, Err distinguishes a clean end of
	// stream (nil) from a decode or I/O failure.
	Next(q *Request) bool
	Err() error
}

// Requests adapts an in-memory request slice to a Stream. The slice is only
// read.
func Requests(reqs []Request) Stream { return &sliceStream{reqs: reqs} }

type sliceStream struct {
	reqs []Request
	i    int
}

func (s *sliceStream) Next(q *Request) bool {
	if s.i >= len(s.reqs) {
		return false
	}
	*q = s.reqs[s.i]
	s.i++
	return true
}

func (s *sliceStream) Err() error { return nil }

// Collect drains s into a slice: the materializing bridge for consumers
// that still want the whole workload in memory.
func Collect(s Stream) ([]Request, error) {
	var out []Request
	var q Request
	for s.Next(&q) {
		out = append(out, q)
	}
	return out, s.Err()
}

// Synthetic returns a Stream producing cfg.Requests synthetic requests one
// at a time, in the exact sequence NewSyntheticRequests materializes (the
// materializing generator is this stream drained into a slice). Per-request
// state is a few rand draws plus the bounded per-leaf recency windows, so
// arbitrarily long streams run in memory independent of cfg.Requests.
//
// Synthetic panics on an invalid config, like NewSyntheticRequests.
func Synthetic(cfg StreamConfig) Stream { return newSynthStream(cfg) }

type synthStream struct {
	cfg     StreamConfig
	r       *rand.Rand
	dist    *zipfian.Dist
	popPick *weightedPicker
	perms   [][]int32
	window  int
	recent  [][]int32 // per-(PoP, leaf) ring of recent objects
	next    []int
	emitted int
}

func newSynthStream(cfg StreamConfig) *synthStream {
	if cfg.Requests < 0 || cfg.Objects <= 0 || cfg.Leaves <= 0 || len(cfg.PoPWeights) == 0 {
		panic("trace: invalid StreamConfig")
	}
	if cfg.TemporalLocality < 0 || cfg.TemporalLocality >= 1 {
		panic("trace: TemporalLocality must be in [0, 1)")
	}
	if cfg.Users < 0 {
		panic("trace: negative Users")
	}
	s := &synthStream{
		cfg:     cfg,
		r:       rand.New(rand.NewSource(cfg.Seed)),
		dist:    zipfian.New(cfg.Alpha, cfg.Objects),
		popPick: newWeightedPicker(cfg.PoPWeights),
		perms:   SkewPermutations(len(cfg.PoPWeights), cfg.Objects, cfg.SpatialSkew, cfg.Seed+1),
	}
	s.window = cfg.LocalityWindow
	if s.window <= 0 {
		s.window = 64
	}
	if cfg.TemporalLocality > 0 {
		s.recent = make([][]int32, len(cfg.PoPWeights)*cfg.Leaves)
		s.next = make([]int, len(s.recent))
	}
	return s
}

func (s *synthStream) Next(q *Request) bool {
	if s.emitted >= s.cfg.Requests {
		return false
	}
	s.emitted++
	var pop, leaf int
	if s.cfg.Users > 0 {
		pop, leaf = s.userHome(s.r.Intn(s.cfg.Users))
	} else {
		pop = s.popPick.pick(s.r)
		leaf = s.r.Intn(s.cfg.Leaves)
	}
	slot := pop*s.cfg.Leaves + leaf
	var obj int32
	if s.recent != nil && len(s.recent[slot]) > 0 && s.r.Float64() < s.cfg.TemporalLocality {
		obj = s.recent[slot][s.r.Intn(len(s.recent[slot]))]
	} else {
		rank := s.dist.Sample(s.r)
		obj = int32(rank)
		if s.perms != nil {
			obj = s.perms[pop][rank]
		}
	}
	if s.recent != nil {
		if len(s.recent[slot]) < s.window {
			s.recent[slot] = append(s.recent[slot], obj)
		} else {
			s.recent[slot][s.next[slot]] = obj
			s.next[slot] = (s.next[slot] + 1) % s.window
		}
	}
	*q = Request{PoP: int32(pop), Leaf: int32(leaf), Object: obj}
	return true
}

func (s *synthStream) Err() error { return nil }

// userHome pins user u to a home (PoP, leaf): the PoP drawn by PoPWeights
// and the leaf uniformly, both from a seeded hash of the user id. A
// multi-million-user population therefore needs no per-user table — the
// same user always lands on the same access leaf, which is what makes the
// per-leaf temporal-locality windows meaningful at population scale.
func (s *synthStream) userHome(u int) (pop, leaf int) {
	h := splitmix64(uint64(s.cfg.Seed)<<1 ^ (uint64(u)+1)*0x9E3779B97F4A7C15)
	pop = s.popPick.pickValue(float64(h>>11) * (1.0 / (1 << 53)))
	leaf = int(splitmix64(h) % uint64(s.cfg.Leaves))
	return pop, leaf
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
