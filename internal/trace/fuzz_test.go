package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadLog ensures log parsing never panics and that accepted logs
// re-encode to something that parses to the same records.
func FuzzReadLog(f *testing.F) {
	var buf bytes.Buffer
	WriteLog(&buf, []Record{{Time: 1, Client: 2, Object: 3, Size: 4, ServedLocally: true}})
	f.Add(buf.String())
	f.Add("")
	f.Add("1\t2\t/obj/zz\t3\t0\n")
	f.Add("a\tb\tc\td\te\n")
	f.Fuzz(func(t *testing.T, s string) {
		records, err := ReadLog(strings.NewReader(s))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteLog(&out, records); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadLog(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(back) != len(records) {
			t.Fatalf("round trip changed record count: %d != %d", len(back), len(records))
		}
		for i := range back {
			if back[i] != records[i] {
				t.Fatalf("record %d changed: %+v != %+v", i, back[i], records[i])
			}
		}
	})
}
