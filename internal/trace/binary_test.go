package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	cfg := testStreamConfig()
	reqs := NewSyntheticRequests(cfg)
	meta := BinaryMeta{
		PoPs:     len(cfg.PoPWeights),
		Leaves:   cfg.Leaves,
		Objects:  cfg.Objects,
		Requests: int64(len(reqs)),
	}
	var buf bytes.Buffer
	if err := WriteBinaryTrace(&buf, meta, Requests(reqs)); err != nil {
		t.Fatalf("WriteBinaryTrace: %v", err)
	}
	perReq := float64(buf.Len()) / float64(len(reqs))
	if perReq > 10 {
		t.Errorf("encoding averages %.1f bytes/request, want <= 10", perReq)
	}
	gotMeta, got, err := ReadBinaryTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinaryTrace: %v", err)
	}
	if gotMeta != meta {
		t.Fatalf("meta round-trip: got %+v, want %+v", gotMeta, meta)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatalf("requests did not round-trip")
	}
}

func TestBinaryOpenEndedTrace(t *testing.T) {
	reqs := []Request{{0, 0, 5}, {1, 2, 0}, {0, 1, 5}}
	meta := BinaryMeta{PoPs: 2, Leaves: 3, Objects: 6} // Requests == 0: open-ended
	var buf bytes.Buffer
	if err := WriteBinaryTrace(&buf, meta, Requests(reqs)); err != nil {
		t.Fatalf("WriteBinaryTrace: %v", err)
	}
	_, got, err := ReadBinaryTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinaryTrace: %v", err)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatalf("open-ended trace did not round-trip")
	}
}

func TestBinaryWriterRejectsOutOfRange(t *testing.T) {
	meta := BinaryMeta{PoPs: 2, Leaves: 3, Objects: 6}
	for name, q := range map[string]Request{
		"pop":    {PoP: 2, Leaf: 0, Object: 0},
		"leaf":   {PoP: 0, Leaf: 3, Object: 0},
		"object": {PoP: 0, Leaf: 0, Object: 6},
		"negpop": {PoP: -1, Leaf: 0, Object: 0},
	} {
		var buf bytes.Buffer
		bw, err := NewBinaryWriter(&buf, meta)
		if err != nil {
			t.Fatalf("NewBinaryWriter: %v", err)
		}
		if err := bw.Write(q); err == nil {
			t.Errorf("%s: Write(%+v) accepted an out-of-range request", name, q)
		}
	}
}

func TestBinaryReaderRejectsBadInput(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		meta := BinaryMeta{PoPs: 2, Leaves: 3, Objects: 6, Requests: 2}
		if err := WriteBinaryTrace(&buf, meta, Requests([]Request{{0, 0, 5}, {1, 2, 0}})); err != nil {
			t.Fatalf("WriteBinaryTrace: %v", err)
		}
		return buf.Bytes()
	}()

	t.Run("bad magic", func(t *testing.T) {
		if _, err := NewBinaryReader(strings.NewReader("NOPE!\nxxxx")); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := NewBinaryReader(bytes.NewReader(good[:len(BinaryMagic)+1])); err == nil {
			t.Fatal("truncated header accepted")
		}
	})
	t.Run("truncated records", func(t *testing.T) {
		_, _, err := ReadBinaryTrace(bytes.NewReader(good[:len(good)-1]))
		if err == nil {
			t.Fatal("truncated trace accepted")
		}
	})
	t.Run("mid-record EOF surfaces as error even when open-ended", func(t *testing.T) {
		var buf bytes.Buffer
		meta := BinaryMeta{PoPs: 2, Leaves: 3, Objects: 6}
		if err := WriteBinaryTrace(&buf, meta, Requests([]Request{{1, 2, 5}})); err != nil {
			t.Fatalf("WriteBinaryTrace: %v", err)
		}
		b := buf.Bytes()
		_, _, err := ReadBinaryTrace(bytes.NewReader(b[:len(b)-1]))
		if err == nil {
			t.Fatal("mid-record truncation accepted")
		}
	})
}

func TestBinaryWriterFlushChecksCount(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf, BinaryMeta{PoPs: 1, Leaves: 1, Objects: 2, Requests: 3})
	if err != nil {
		t.Fatalf("NewBinaryWriter: %v", err)
	}
	if err := bw.Write(Request{0, 0, 1}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := bw.Flush(); err == nil {
		t.Fatal("Flush accepted a count mismatch")
	}
}

// FuzzBinaryTrace round-trips arbitrary request sequences through the codec
// and feeds arbitrary bytes to the reader, which must either decode
// in-range records or fail cleanly — never panic or emit out-of-range data.
func FuzzBinaryTrace(f *testing.F) {
	f.Add([]byte{}, uint16(3), uint16(4), uint32(100))
	f.Add([]byte{1, 2, 3, 0, 0, 9}, uint16(1), uint16(1), uint32(1))
	f.Add([]byte(BinaryMagic), uint16(7), uint16(2), uint32(50))
	f.Fuzz(func(t *testing.T, raw []byte, pops, leaves uint16, objects uint32) {
		if pops == 0 || leaves == 0 || objects == 0 {
			return
		}
		meta := BinaryMeta{PoPs: int(pops), Leaves: int(leaves), Objects: int(objects)}
		// Interpret raw as a request sequence; round-trip must be exact.
		var reqs []Request
		for i := 0; i+2 < len(raw); i += 3 {
			reqs = append(reqs, Request{
				PoP:    int32(raw[i]) % int32(pops),
				Leaf:   int32(raw[i+1]) % int32(leaves),
				Object: int32(raw[i+2]) % int32(objects),
			})
		}
		meta.Requests = int64(len(reqs))
		var buf bytes.Buffer
		if err := WriteBinaryTrace(&buf, meta, Requests(reqs)); err != nil {
			t.Fatalf("WriteBinaryTrace: %v", err)
		}
		gotMeta, got, err := ReadBinaryTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadBinaryTrace: %v", err)
		}
		if gotMeta != meta {
			t.Fatalf("meta: got %+v, want %+v", gotMeta, meta)
		}
		if len(got) != len(reqs) || (len(reqs) > 0 && !reflect.DeepEqual(got, reqs)) {
			t.Fatalf("requests did not round-trip")
		}

		// Arbitrary bytes after a valid magic: decode or fail, never panic,
		// and every decoded record stays in range.
		br, err := NewBinaryReader(io.MultiReader(strings.NewReader(BinaryMagic), bytes.NewReader(raw)))
		if err != nil {
			return
		}
		m := br.Meta()
		var q Request
		for br.Next(&q) {
			if int(q.PoP) >= m.PoPs || int(q.Leaf) >= m.Leaves || int(q.Object) >= m.Objects ||
				q.PoP < 0 || q.Leaf < 0 || q.Object < 0 {
				t.Fatalf("decoded out-of-range record %+v under meta %+v", q, m)
			}
		}
	})
}
