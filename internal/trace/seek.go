package trace

import (
	"errors"
	"fmt"
	"io"
)

// StreamPos identifies an exact position in a Stream, sufficient to rebuild
// the stream mid-flight: the request count covers deterministic generators,
// and the byte offset plus delta-decoder state cover binary trace files. It
// is the trace half of a simulation checkpoint (internal/checkpoint).
type StreamPos struct {
	Requests int64 // requests consumed so far
	Offset   int64 // byte offset into the underlying file (binary traces only)
	PrevObj  int64 // delta-decoding state at Offset (binary traces only)
}

// ResumableStream is a Stream whose position can be captured and later
// restored, so a consumer killed mid-stream can continue from where it
// stopped with the remaining requests identical to an uninterrupted pass.
//
// Pos is only meaningful between complete Next calls. SeekPos repositions
// the stream so the next Next call produces request Pos.Requests of the
// original sequence; it fails if the position cannot be reached (an
// unseekable underlying reader, or a position beyond the stream).
type ResumableStream interface {
	Stream
	Pos() StreamPos
	SeekPos(StreamPos) error
}

// Pos returns the current position of the slice stream.
func (s *sliceStream) Pos() StreamPos { return StreamPos{Requests: int64(s.i)} }

// SeekPos repositions the slice stream to an absolute request index.
func (s *sliceStream) SeekPos(p StreamPos) error {
	if p.Requests < 0 || p.Requests > int64(len(s.reqs)) {
		return fmt.Errorf("trace: seek to request %d outside [0, %d]", p.Requests, len(s.reqs))
	}
	s.i = int(p.Requests)
	return nil
}

// Pos returns the current position of the synthetic generator.
func (s *synthStream) Pos() StreamPos { return StreamPos{Requests: int64(s.emitted)} }

// SeekPos repositions the generator by rebuilding it from its config and
// replaying p.Requests draws. The generator is deterministic, so the replay
// reproduces the PRNG and per-leaf recency-window state exactly; the cost is
// linear in the target position (tens of nanoseconds per request), which a
// resume pays once.
func (s *synthStream) SeekPos(p StreamPos) error {
	if p.Requests < 0 || p.Requests > int64(s.cfg.Requests) {
		return fmt.Errorf("trace: seek to request %d outside [0, %d]", p.Requests, s.cfg.Requests)
	}
	ns := newSynthStream(s.cfg)
	var q Request
	for int64(ns.emitted) < p.Requests {
		if !ns.Next(&q) {
			return fmt.Errorf("trace: synthetic replay ended at request %d of %d", ns.emitted, p.Requests)
		}
	}
	*s = *ns
	return nil
}

// Pos returns the reader's position: records decoded, the byte offset of the
// next undecoded record (buffered-but-unconsumed bytes are not part of the
// position), and the delta-decoder state at that offset.
func (br *BinaryReader) Pos() StreamPos {
	return StreamPos{
		Requests: br.read,
		Offset:   br.cr.n - int64(br.r.Buffered()),
		PrevObj:  br.prevObj,
	}
}

// SeekPos repositions the reader to a position previously captured by Pos.
// The underlying reader must implement io.Seeker (an *os.File or
// *bytes.Reader does; a pipe does not). Any sticky decode error is cleared:
// the seek target is by construction a clean record boundary.
func (br *BinaryReader) SeekPos(p StreamPos) error {
	seeker, ok := br.src.(io.Seeker)
	if !ok {
		return errors.New("trace: underlying reader is not seekable")
	}
	if p.Requests < 0 || (br.meta.Requests > 0 && p.Requests > br.meta.Requests) {
		return fmt.Errorf("trace: seek to request %d outside [0, %d]", p.Requests, br.meta.Requests)
	}
	if p.Offset < int64(len(BinaryMagic)) {
		return fmt.Errorf("trace: seek offset %d inside the header", p.Offset)
	}
	// Seeking past EOF succeeds silently on every io.Seeker, so bound the
	// offset against the source size first.
	size, err := seeker.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("trace: sizing source: %w", err)
	}
	if p.Offset > size {
		return fmt.Errorf("trace: seek offset %d beyond source end %d", p.Offset, size)
	}
	if _, err := seeker.Seek(p.Offset, io.SeekStart); err != nil {
		return fmt.Errorf("trace: seeking to offset %d: %w", p.Offset, err)
	}
	br.cr.n = p.Offset
	br.r.Reset(br.cr)
	br.read = p.Requests
	br.prevObj = p.PrevObj
	br.err = nil
	br.done = false
	return nil
}
