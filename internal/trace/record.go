// Package trace models CDN request logs and simulator request workloads.
//
// It provides the log-record format the paper's dataset uses (anonymized
// client, anonymized URL, object size, served-locally flag; §2.2), synthetic
// CDN trace generators for the three vantage points (US, Europe, Asia), and
// the request streams the simulator consumes, including spatially skewed
// streams where per-PoP object popularity diverges from the global ranking
// (§5.1).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Record is one CDN request-log entry. It carries the four fields the paper
// describes ("an anonymized client IP, anonymized request URL, the size of
// the object, and whether the request was served locally or forwarded"),
// plus a relative timestamp. Object is the dense object id behind the
// anonymized URL.
type Record struct {
	Time          int64  // seconds since the start of the log
	Client        uint32 // anonymized client id
	Object        int32  // dense object id; the URL is derived from it
	Size          int64  // object size in bytes
	ServedLocally bool   // true if the CDN cluster served it without forwarding
}

// URL returns the anonymized request URL for the record's object.
func (r Record) URL() string { return fmt.Sprintf("/obj/%08x", uint32(r.Object)) }

// WriteLog writes records as tab-separated lines:
//
//	time \t client \t url \t size \t local
//
// matching the shape of the CDN logs described in the paper.
func WriteLog(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		local := byte('0')
		if r.ServedLocally {
			local = '1'
		}
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%s\t%d\t%c\n",
			r.Time, r.Client, r.URL(), r.Size, local); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLog parses a log produced by WriteLog. Malformed lines produce an
// error naming the line number.
func ReadLog(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want 5", lineNo, len(fields))
		}
		t, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %v", lineNo, err)
		}
		client, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad client: %v", lineNo, err)
		}
		obj, err := parseObjectURL(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		size, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size: %v", lineNo, err)
		}
		var local bool
		switch fields[4] {
		case "0":
		case "1":
			local = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad local flag %q", lineNo, fields[4])
		}
		out = append(out, Record{Time: t, Client: uint32(client), Object: obj, Size: size, ServedLocally: local})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return out, nil
}

func parseObjectURL(url string) (int32, error) {
	const prefix = "/obj/"
	if !strings.HasPrefix(url, prefix) {
		return 0, fmt.Errorf("bad url %q", url)
	}
	v, err := strconv.ParseUint(url[len(prefix):], 16, 32)
	if err != nil {
		return 0, fmt.Errorf("bad url %q: %v", url, err)
	}
	return int32(uint32(v)), nil
}

// ObjectCounts tallies per-object request counts. The returned slice is
// sized to the highest object id seen plus one.
func ObjectCounts(records []Record) []int64 {
	maxObj := int32(-1)
	for _, r := range records {
		if r.Object > maxObj {
			maxObj = r.Object
		}
	}
	counts := make([]int64, maxObj+1)
	for _, r := range records {
		counts[r.Object]++
	}
	return counts
}

// RankFrequency returns the per-object counts sorted descending with zero
// counts dropped: the rank/frequency series plotted in the paper's Figure 1.
func RankFrequency(records []Record) []int64 {
	counts := ObjectCounts(records)
	out := counts[:0:0]
	for _, c := range counts {
		if c > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}
