package trace

import (
	"math"
	"math/rand"
	"sort"
)

// Request is one simulator arrival: object Object requested at leaf Leaf
// (0-based leaf ordinal) of PoP's access tree.
type Request struct {
	PoP    int32
	Leaf   int32
	Object int32
}

// StreamConfig parameterizes a synthetic simulator workload (paper §4.1):
// requests arrive at uniformly random leaves of PoPs chosen proportionally
// to PoPWeights, with object popularity Zipf(Alpha) and optional spatial
// skew of per-PoP popularity rankings (§5.1).
type StreamConfig struct {
	Requests    int
	Objects     int
	Alpha       float64
	SpatialSkew float64   // 0: identical rankings everywhere; 1: independent per PoP
	PoPWeights  []float64 // relative request volume per PoP (need not sum to 1)
	Leaves      int       // leaves per access tree
	Seed        int64

	// TemporalLocality in [0, 1) injects short-term reuse: with this
	// probability a request repeats one of the recent objects requested at
	// the same leaf (clients sit behind a fixed access leaf, so their
	// revisits land there) instead of drawing fresh from the Zipf
	// distribution. Real CDN logs exhibit strong temporal locality (the
	// paper's dataset served ~70% of requests locally); IID Zipf streams
	// have none, which is the main reason synthetic workloads overstate
	// nearest-replica routing's advantage — see
	// experiments.AblationTemporalLocality.
	TemporalLocality float64
	// LocalityWindow is the per-leaf recency window size (default 64).
	LocalityWindow int

	// Users > 0 draws each request from a fixed population of that many
	// users instead of sampling (PoP, leaf) independently per request. Every
	// user has a stable home leaf — the PoP drawn by PoPWeights and the leaf
	// uniformly, both from a seeded hash of the user id — so no per-user
	// state is kept and multi-million-user populations cost nothing. 0 keeps
	// the original per-request sampling.
	Users int
}

// NewSyntheticRequests materializes a synthetic request stream. The result
// is deterministic in the config, and identical to draining
// Synthetic(cfg) — this is that stream collected into a slice.
func NewSyntheticRequests(cfg StreamConfig) []Request {
	s := newSynthStream(cfg)
	reqs := make([]Request, cfg.Requests)
	for i := range reqs {
		s.Next(&reqs[i])
	}
	return reqs
}

// FromRecords converts a CDN request log into a simulator stream, assigning
// each record to a PoP with probability proportional to popWeights and to a
// uniformly random leaf, exactly as §4.2 assigns the Asia trace.
func FromRecords(records []Record, popWeights []float64, leaves int, seed int64) []Request {
	if leaves <= 0 || len(popWeights) == 0 {
		panic("trace: invalid FromRecords arguments")
	}
	r := rand.New(rand.NewSource(seed))
	popPick := newWeightedPicker(popWeights)
	reqs := make([]Request, len(records))
	for i, rec := range records {
		reqs[i] = Request{
			PoP:    int32(popPick.pick(r)),
			Leaf:   int32(r.Intn(leaves)),
			Object: rec.Object,
		}
	}
	return reqs
}

// SkewPermutations builds one popularity permutation per PoP:
// perms[p][rank] is the object holding that popularity rank at PoP p.
// skew 0 returns nil (identity everywhere); skew 1 gives every PoP an
// independent uniform ranking; intermediate values interpolate by ranking
// objects on the blended score (1-skew)*globalRank + skew*noise, which
// realizes the paper's spatial-skew dial (§5.1 and footnote 5).
func SkewPermutations(pops, objects int, skew float64, seed int64) [][]int32 {
	if skew < 0 || skew > 1 {
		panic("trace: spatial skew must be in [0, 1]")
	}
	if skew == 0 {
		return nil
	}
	perms := make([][]int32, pops)
	type scored struct {
		obj   int32
		score float64
	}
	for p := 0; p < pops; p++ {
		r := rand.New(rand.NewSource(seed + int64(p)*7919))
		items := make([]scored, objects)
		for o := 0; o < objects; o++ {
			// Normalized global rank in [0,1) blended with uniform noise.
			items[o] = scored{
				obj:   int32(o),
				score: (1-skew)*float64(o)/float64(objects) + skew*r.Float64(),
			}
		}
		sort.Slice(items, func(i, j int) bool {
			if items[i].score != items[j].score {
				return items[i].score < items[j].score
			}
			return items[i].obj < items[j].obj
		})
		perm := make([]int32, objects)
		for rank, it := range items {
			perm[rank] = it.obj
		}
		perms[p] = perm
	}
	return perms
}

// SpatialSkewMetric computes the paper's skew measure (footnote 5):
// avg over objects of the standard deviation of the object's per-PoP rank,
// divided by the number of objects. nil perms (identity) yield 0.
func SpatialSkewMetric(perms [][]int32, objects int) float64 {
	if len(perms) == 0 {
		return 0
	}
	pops := len(perms)
	// rank[p][o]: invert each permutation.
	ranks := make([][]int32, pops)
	for p, perm := range perms {
		inv := make([]int32, objects)
		for rank, obj := range perm {
			inv[obj] = int32(rank)
		}
		ranks[p] = inv
	}
	var total float64
	for o := 0; o < objects; o++ {
		var sum, sumSq float64
		for p := 0; p < pops; p++ {
			v := float64(ranks[p][o])
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(pops)
		variance := sumSq/float64(pops) - mean*mean
		if variance < 0 {
			variance = 0
		}
		total += math.Sqrt(variance)
	}
	return total / float64(objects) / float64(objects)
}

// weightedPicker draws indices with probability proportional to weights.
type weightedPicker struct {
	cum []float64
}

func newWeightedPicker(weights []float64) *weightedPicker {
	cum := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("trace: negative weight")
		}
		sum += w
		cum[i] = sum
	}
	if sum <= 0 {
		panic("trace: weights sum to zero")
	}
	inv := 1 / sum
	for i := range cum {
		cum[i] *= inv
	}
	cum[len(cum)-1] = 1
	return &weightedPicker{cum: cum}
}

func (w *weightedPicker) pick(r *rand.Rand) int {
	return w.pickValue(r.Float64())
}

// pickValue maps a uniform variate in [0, 1) to an index, letting callers
// supply their own randomness source (e.g. a hash-derived variate).
func (w *weightedPicker) pickValue(u float64) int {
	i := sort.SearchFloat64s(w.cum, u)
	if i >= len(w.cum) {
		i = len(w.cum) - 1
	}
	return i
}

// OriginAssignment maps each object to the PoP that hosts it as origin
// server. With proportional true, objects are assigned with probability
// proportional to weights (the paper's default: "the number of objects it
// hosts is also proportional to the population"); otherwise uniformly.
func OriginAssignment(objects int, weights []float64, proportional bool, seed int64) []int32 {
	r := rand.New(rand.NewSource(seed))
	origins := make([]int32, objects)
	if proportional {
		pick := newWeightedPicker(weights)
		for o := range origins {
			origins[o] = int32(pick.pick(r))
		}
		return origins
	}
	for o := range origins {
		origins[o] = int32(r.Intn(len(weights)))
	}
	return origins
}
