package trace

import (
	"bytes"
	"testing"
)

// seekStreamConfig is a small synthetic workload with every generator
// feature on, so a replayed seek has real state to reconstruct.
func seekStreamConfig() StreamConfig {
	return StreamConfig{
		Requests: 5000, Objects: 300, Alpha: 0.9,
		SpatialSkew: 0.5, PoPWeights: []float64{0.5, 0.3, 0.2},
		Leaves: 4, Seed: 17, TemporalLocality: 0.4, Users: 50,
	}
}

// drain reads n requests, failing the test on a short stream.
func drain(t *testing.T, s Stream, n int) []Request {
	t.Helper()
	out := make([]Request, 0, n)
	var q Request
	for len(out) < n {
		if !s.Next(&q) {
			t.Fatalf("stream ended after %d of %d requests (err %v)", len(out), n, s.Err())
		}
		out = append(out, q)
	}
	return out
}

// checkSeekEquivalence reads the whole stream once recording the suffix
// after the cut, then seeks a fresh stream to the recorded position and
// verifies the suffix is reproduced exactly.
func checkSeekEquivalence(t *testing.T, s, fresh ResumableStream, cut, total int) {
	t.Helper()
	drain(t, s, cut)
	pos := s.Pos()
	if pos.Requests != int64(cut) {
		t.Fatalf("Pos().Requests = %d after %d reads", pos.Requests, cut)
	}
	want := drain(t, s, total-cut)
	if err := fresh.SeekPos(pos); err != nil {
		t.Fatalf("SeekPos(%+v): %v", pos, err)
	}
	got := drain(t, fresh, total-cut)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d after seek: got %+v, want %+v", cut+i, got[i], want[i])
		}
	}
	var q Request
	if fresh.Next(&q) || fresh.Err() != nil {
		t.Fatalf("seeked stream did not end with the original (err %v)", fresh.Err())
	}
}

func TestSyntheticSeekPos(t *testing.T) {
	cfg := seekStreamConfig()
	for _, cut := range []int{0, 1, 137, 2500, cfg.Requests - 1, cfg.Requests} {
		s := Synthetic(cfg).(ResumableStream)
		fresh := Synthetic(cfg).(ResumableStream)
		checkSeekEquivalence(t, s, fresh, cut, cfg.Requests)
	}
}

func TestSliceStreamSeekPos(t *testing.T) {
	reqs := NewSyntheticRequests(seekStreamConfig())
	for _, cut := range []int{0, 1, 1234, len(reqs)} {
		s := Requests(reqs).(ResumableStream)
		fresh := Requests(reqs).(ResumableStream)
		checkSeekEquivalence(t, s, fresh, cut, len(reqs))
	}
}

// binaryTraceBytes encodes the config's synthetic requests as a binary
// trace image.
func binaryTraceBytes(t *testing.T, cfg StreamConfig) ([]byte, []Request) {
	t.Helper()
	reqs := NewSyntheticRequests(cfg)
	var buf bytes.Buffer
	meta := BinaryMeta{
		PoPs: len(cfg.PoPWeights), Leaves: cfg.Leaves,
		Objects: cfg.Objects, Requests: int64(len(reqs)),
	}
	if err := WriteBinaryTrace(&buf, meta, Requests(reqs)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), reqs
}

func TestBinaryReaderSeekPos(t *testing.T) {
	cfg := seekStreamConfig()
	data, reqs := binaryTraceBytes(t, cfg)
	for _, cut := range []int{0, 1, 999, len(reqs)} {
		br, err := NewBinaryReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewBinaryReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		checkSeekEquivalence(t, br, fresh, cut, len(reqs))
	}
}

// TestBinaryReaderSeekPosRejectsBadPositions: offsets before the header or
// past the source, and mismatched request counts, must be refused before any
// state is disturbed.
func TestBinaryReaderSeekPosRejectsBadPositions(t *testing.T) {
	cfg := seekStreamConfig()
	data, _ := binaryTraceBytes(t, cfg)
	br, err := NewBinaryReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	good := br.Pos()
	for name, pos := range map[string]StreamPos{
		"negative-requests": {Requests: -1, Offset: good.Offset},
		"tiny-offset":       {Requests: 0, Offset: 1},
		"huge-offset":       {Requests: 0, Offset: int64(len(data)) + 100},
	} {
		if err := br.SeekPos(pos); err == nil {
			t.Errorf("%s: SeekPos(%+v) accepted", name, pos)
		}
	}
}

// TestBinaryReaderSeekPosRequiresSeeker: a reader over a non-seekable source
// reports a usable error instead of corrupting its position.
func TestBinaryReaderSeekPosRequiresSeeker(t *testing.T) {
	cfg := seekStreamConfig()
	data, _ := binaryTraceBytes(t, cfg)
	br, err := NewBinaryReader(bytes.NewBuffer(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := br.SeekPos(br.Pos()); err == nil {
		t.Fatal("SeekPos over a non-seekable source accepted")
	}
}
