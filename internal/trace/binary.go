package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// BinaryMagic identifies the compact binary trace format, version 1.
const BinaryMagic = "ICNT1\n"

// BinaryMeta is the header of a binary trace: the topology extents the
// requests were generated against (so a reader can validate each record and
// a simulator can size its arrays) and the request count.
type BinaryMeta struct {
	PoPs     int
	Leaves   int // leaves per access tree
	Objects  int
	Requests int64
}

func (m BinaryMeta) validate() error {
	if m.PoPs <= 0 || m.Leaves <= 0 || m.Objects <= 0 {
		return fmt.Errorf("trace: invalid binary meta (pops=%d leaves=%d objects=%d)", m.PoPs, m.Leaves, m.Objects)
	}
	if m.Requests < 0 {
		return fmt.Errorf("trace: negative request count %d", m.Requests)
	}
	return nil
}

// BinaryWriter encodes requests into the compact binary format: after the
// magic and a uvarint header (PoPs, Leaves, Objects, Requests), each record
// is uvarint PoP, uvarint Leaf, and the object id zigzag-varint
// delta-encoded against the previous record's. Zipf-skewed streams revisit
// popular (small) ids constantly, so deltas stay small and a record
// averages well under 10 bytes.
type BinaryWriter struct {
	w       *bufio.Writer
	meta    BinaryMeta
	prevObj int64
	count   int64
	buf     [3 * binary.MaxVarintLen64]byte
}

// NewBinaryWriter writes the header for meta to w and returns a writer for
// its records. meta.Requests > 0 declares the record count up front
// (validated at Flush); 0 leaves it open-ended, which readers handle by
// reading until EOF.
func NewBinaryWriter(w io.Writer, meta BinaryMeta) (*BinaryWriter, error) {
	if err := meta.validate(); err != nil {
		return nil, err
	}
	bw := &BinaryWriter{w: bufio.NewWriterSize(w, 64<<10), meta: meta}
	if _, err := bw.w.WriteString(BinaryMagic); err != nil {
		return nil, err
	}
	n := binary.PutUvarint(bw.buf[:], uint64(meta.PoPs))
	n += binary.PutUvarint(bw.buf[n:], uint64(meta.Leaves))
	if _, err := bw.w.Write(bw.buf[:n]); err != nil {
		return nil, err
	}
	n = binary.PutUvarint(bw.buf[:], uint64(meta.Objects))
	n += binary.PutUvarint(bw.buf[n:], uint64(meta.Requests))
	if _, err := bw.w.Write(bw.buf[:n]); err != nil {
		return nil, err
	}
	return bw, nil
}

// Write appends one request, validating it against the header extents.
func (bw *BinaryWriter) Write(q Request) error {
	if q.PoP < 0 || int(q.PoP) >= bw.meta.PoPs {
		return fmt.Errorf("trace: request PoP %d out of range [0, %d)", q.PoP, bw.meta.PoPs)
	}
	if q.Leaf < 0 || int(q.Leaf) >= bw.meta.Leaves {
		return fmt.Errorf("trace: request leaf %d out of range [0, %d)", q.Leaf, bw.meta.Leaves)
	}
	if q.Object < 0 || int(q.Object) >= bw.meta.Objects {
		return fmt.Errorf("trace: request object %d out of range [0, %d)", q.Object, bw.meta.Objects)
	}
	n := binary.PutUvarint(bw.buf[:], uint64(q.PoP))
	n += binary.PutUvarint(bw.buf[n:], uint64(q.Leaf))
	n += binary.PutVarint(bw.buf[n:], int64(q.Object)-bw.prevObj)
	bw.prevObj = int64(q.Object)
	bw.count++
	_, err := bw.w.Write(bw.buf[:n])
	return err
}

// Flush drains the buffer and verifies the record count matches the header
// (when the header declared one). It does not close the underlying writer.
func (bw *BinaryWriter) Flush() error {
	if bw.meta.Requests > 0 && bw.count != bw.meta.Requests {
		return fmt.Errorf("trace: header declares %d requests, wrote %d", bw.meta.Requests, bw.count)
	}
	return bw.w.Flush()
}

// BinaryReader decodes a binary trace as a Stream. It implements
// ResumableStream: Pos captures the exact byte offset and decoder state, and
// SeekPos restores them when the underlying reader is an io.Seeker.
type BinaryReader struct {
	src     io.Reader // the caller's reader, retained for SeekPos
	cr      *countingReader
	r       *bufio.Reader
	meta    BinaryMeta
	prevObj int64
	read    int64
	err     error
	done    bool
}

// countingReader tracks how many bytes the bufio layer has pulled from the
// source, so Pos can subtract the still-buffered remainder and report the
// offset of the next undecoded record.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// NewBinaryReader validates the magic, decodes the header, and returns a
// Stream over the records.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	cr := &countingReader{r: r}
	br := &BinaryReader{src: r, cr: cr, r: bufio.NewReaderSize(cr, 64<<10)}
	magic := make([]byte, len(BinaryMagic))
	if _, err := io.ReadFull(br.r, magic); err != nil {
		return nil, fmt.Errorf("trace: reading binary trace magic: %w", err)
	}
	if string(magic) != BinaryMagic {
		return nil, errors.New("trace: not a binary trace (bad magic)")
	}
	fields := [4]int64{}
	for i := range fields {
		v, err := binary.ReadUvarint(br.r)
		if err != nil {
			return nil, fmt.Errorf("trace: reading binary trace header: %w", err)
		}
		if v > 1<<62 {
			return nil, fmt.Errorf("trace: binary trace header field %d overflows", i)
		}
		fields[i] = int64(v)
	}
	if fields[0] > 1<<31 || fields[1] > 1<<31 || fields[2] > 1<<31 {
		return nil, errors.New("trace: binary trace extents exceed int32 range")
	}
	br.meta = BinaryMeta{
		PoPs:     int(fields[0]),
		Leaves:   int(fields[1]),
		Objects:  int(fields[2]),
		Requests: fields[3],
	}
	if err := br.meta.validate(); err != nil {
		return nil, err
	}
	return br, nil
}

// Meta returns the decoded header.
func (br *BinaryReader) Meta() BinaryMeta { return br.meta }

// Next decodes one record into q. It returns false at a clean end of
// stream (the declared record count, or EOF on a record boundary for
// open-ended traces) and on error; check Err to distinguish.
func (br *BinaryReader) Next(q *Request) bool {
	if br.done || br.err != nil {
		return false
	}
	if br.meta.Requests > 0 && br.read >= br.meta.Requests {
		br.done = true
		return false
	}
	pop, err := binary.ReadUvarint(br.r)
	if err != nil {
		br.done = true
		if err == io.EOF {
			if br.meta.Requests > 0 {
				br.err = fmt.Errorf("trace: truncated binary trace: %d of %d records", br.read, br.meta.Requests)
			}
			// Open-ended trace: EOF on a record boundary is the end.
			return false
		}
		br.err = fmt.Errorf("trace: record %d: %w", br.read, err)
		return false
	}
	leaf, err := binary.ReadUvarint(br.r)
	if err != nil {
		br.fail(err)
		return false
	}
	delta, err := binary.ReadVarint(br.r)
	if err != nil {
		br.fail(err)
		return false
	}
	obj := br.prevObj + delta
	if pop >= uint64(br.meta.PoPs) || leaf >= uint64(br.meta.Leaves) || obj < 0 || obj >= int64(br.meta.Objects) {
		br.done = true
		br.err = fmt.Errorf("trace: record %d out of range (pop=%d leaf=%d object=%d)", br.read, pop, leaf, obj)
		return false
	}
	br.prevObj = obj
	br.read++
	q.PoP = int32(pop)
	q.Leaf = int32(leaf)
	q.Object = int32(obj)
	return true
}

func (br *BinaryReader) fail(err error) {
	br.done = true
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	br.err = fmt.Errorf("trace: record %d: %w", br.read, err)
}

// Err reports the first decode error, or nil after a clean end of stream.
func (br *BinaryReader) Err() error { return br.err }

// WriteBinaryTrace encodes all of src to w in the binary format.
func WriteBinaryTrace(w io.Writer, meta BinaryMeta, src Stream) error {
	bw, err := NewBinaryWriter(w, meta)
	if err != nil {
		return err
	}
	var q Request
	for src.Next(&q) {
		if err := bw.Write(q); err != nil {
			return err
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinaryTrace decodes a full binary trace into memory: the materializing
// convenience for small traces and tests.
func ReadBinaryTrace(r io.Reader) (BinaryMeta, []Request, error) {
	br, err := NewBinaryReader(r)
	if err != nil {
		return BinaryMeta{}, nil, err
	}
	reqs, err := Collect(br)
	if err != nil {
		return br.Meta(), nil, err
	}
	return br.Meta(), reqs, nil
}
