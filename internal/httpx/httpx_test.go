package httpx

import (
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func TestNewServerSetsTimeouts(t *testing.T) {
	srv := NewServer(http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("timeouts not set: header=%v read=%v idle=%v",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.IdleTimeout)
	}
}

// TestServeClosesSlowLoris: a connection that never finishes its headers is
// cut off by the server rather than held open forever.
func TestServeClosesSlowLoris(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	srv := NewServer(http.NotFoundHandler())
	srv.ReadHeaderTimeout = 50 * time.Millisecond
	srv.ReadTimeout = 50 * time.Millisecond
	go srv.Serve(lis)
	defer srv.Close()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err) // headers deliberately unterminated
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatalf("waiting for server to drop the connection: %v", err)
	}
	// ReadAll returning nil means the server closed the half-open request.
}
