// Package httpx centralises hardened http.Server construction. Every server
// the repo starts must bound how long a client may dawdle: an unbounded
// ReadTimeout lets a slow-loris connection pin a goroutine (and eventually
// the whole accept loop's file descriptors) forever, which is exactly the
// kind of adverse condition the fault-injection harness exercises.
//
// Server couples the hardened http.Server with its listener and a shutdown
// handle, so the overload layer's graceful drain (stop accepting, finish
// in-flight requests within a bound, exit) has something to hold on to.
package httpx

import (
	"context"
	"net"
	"net/http"
	"time"
)

// Default timeouts. Generous enough for any legitimate request in this
// repo's workloads (loopback experiments and tests), tight enough that a
// stalled client cannot hold a connection open indefinitely.
const (
	ReadHeaderTimeout = 10 * time.Second
	ReadTimeout       = 30 * time.Second
	IdleTimeout       = 2 * time.Minute
)

// NewServer returns an http.Server for h with the hardened timeouts set.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: ReadHeaderTimeout,
		ReadTimeout:       ReadTimeout,
		IdleTimeout:       IdleTimeout,
	}
}

// Serve is http.Serve with the hardened timeouts applied.
func Serve(lis net.Listener, h http.Handler) error {
	return NewServer(h).Serve(lis)
}

// Server is a running hardened server plus its listener: the handle the
// graceful-drain path needs. Construct with Start.
type Server struct {
	srv *http.Server
	lis net.Listener
}

// Start serves h on lis in a background goroutine with the hardened
// timeouts applied and returns the handle for Shutdown/Close.
func Start(lis net.Listener, h http.Handler) *Server {
	s := &Server{srv: NewServer(h), lis: lis}
	//icn:oneshot accept loop; Serve returns when Shutdown or Close tears down the listener
	go func() {
		// ErrServerClosed (and a closed-listener error during shutdown) is
		// the normal end of serving; anything else surfaced here would race
		// process teardown anyway.
		_ = s.srv.Serve(lis)
	}()
	return s
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// URL returns the server's http base URL.
func (s *Server) URL() string { return "http://" + s.lis.Addr().String() }

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish, up to ctx's deadline (then returns ctx's error with
// remaining connections still open — callers decide whether to Close).
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

// Close abruptly closes the listener and all active connections.
func (s *Server) Close() error { return s.srv.Close() }
