// Package httpx centralises hardened http.Server construction. Every server
// the repo starts must bound how long a client may dawdle: an unbounded
// ReadTimeout lets a slow-loris connection pin a goroutine (and eventually
// the whole accept loop's file descriptors) forever, which is exactly the
// kind of adverse condition the fault-injection harness exercises.
package httpx

import (
	"net"
	"net/http"
	"time"
)

// Default timeouts. Generous enough for any legitimate request in this
// repo's workloads (loopback experiments and tests), tight enough that a
// stalled client cannot hold a connection open indefinitely.
const (
	ReadHeaderTimeout = 10 * time.Second
	ReadTimeout       = 30 * time.Second
	IdleTimeout       = 2 * time.Minute
)

// NewServer returns an http.Server for h with the hardened timeouts set.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: ReadHeaderTimeout,
		ReadTimeout:       ReadTimeout,
		IdleTimeout:       IdleTimeout,
	}
}

// Serve is http.Serve with the hardened timeouts applied.
func Serve(lis net.Listener, h http.Handler) error {
	return NewServer(h).Serve(lis)
}
