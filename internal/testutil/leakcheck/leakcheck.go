// Package leakcheck asserts that a test leaves no goroutines behind. It is
// the dynamic complement to icnvet's golifetime pass: the analyzer proves a
// bound is visible in the source, this package proves the bound actually
// fired. Call Check at the top of a test; it snapshots the live goroutines
// and registers a cleanup that re-snapshots after the test body (and its
// defers) finish. Goroutines born during the test get a grace period to
// wind down — Close and Shutdown are asynchronous — before any survivor
// fails the test with its full stack.
package leakcheck

import (
	"net/http"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// DefaultGrace is how long Check waits for test-born goroutines to exit
// before declaring them leaked. Teardown paths in this repo are bounded by
// listener closes and context deadlines well under a second; anything still
// alive after this is stuck, not slow.
const DefaultGrace = 2 * time.Second

// Check snapshots the current goroutines and registers a cleanup that fails
// t if goroutines created during the test are still running DefaultGrace
// after it ends. It must be called before the test spawns anything.
func Check(t testing.TB) {
	CheckTimeout(t, DefaultGrace)
}

// CheckTimeout is Check with an explicit grace period.
func CheckTimeout(t testing.TB, grace time.Duration) {
	t.Helper()
	base := make(map[string]bool)
	for id := range snapshot() {
		base[id] = true
	}
	t.Cleanup(func() {
		if t.Failed() {
			return // don't stack a leak report on top of the real failure
		}
		deadline := time.Now().Add(grace)
		var leaked []string
		for {
			// Keepalive connections from shared clients park a readLoop
			// goroutine per idle conn; retire them so only genuinely stuck
			// goroutines remain.
			http.DefaultClient.CloseIdleConnections()
			leaked = leaked[:0]
			for id, stack := range snapshot() {
				if !base[id] && !benign(stack) {
					leaked = append(leaked, stack)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		sort.Strings(leaked)
		t.Errorf("leakcheck: %d goroutine(s) leaked by this test:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// snapshot returns every live goroutine's stack, keyed by the goroutine id
// from its "goroutine N [state]:" header. Identity is the id, not the stack
// text: a pre-existing goroutine that moved (a pool worker picking up new
// work) is not a leak.
func snapshot() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		header, _, ok := strings.Cut(g, "\n")
		if !ok || !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		id, _, ok := strings.Cut(strings.TrimPrefix(header, "goroutine "), " ")
		if !ok {
			continue
		}
		out[id] = strings.TrimRight(g, "\n")
	}
	return out
}

// benign reports whether a stack belongs to infrastructure that legitimately
// outlives an individual test: the runtime and the testing framework, this
// package's own snapshot, and net/http transport internals whose lifetime is
// tied to shared keepalive pools rather than to the test.
func benign(stack string) bool {
	for _, marker := range []string{
		"testing.(*T).Run",
		"testing.(*M).",
		"testing.runTests",
		"testing.tRunner",
		"runtime.goexit0",
		"created by runtime",
		"leakcheck.snapshot",
		"net/http.(*persistConn).readLoop",
		"net/http.(*persistConn).writeLoop",
		"net/http.(*Transport).dialConn",
		"net/http.setRequestCancel",
		"os/signal.signal_recv",
		"runtime/trace.Start",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}

// Count returns the number of non-benign live goroutines; exported for
// tests of this package itself.
func Count() int {
	n := 0
	for _, stack := range snapshot() {
		if !benign(stack) {
			n++
		}
	}
	return n
}
