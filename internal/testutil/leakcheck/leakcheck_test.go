package leakcheck

import (
	"testing"
	"time"
)

// TestCleanRun: a test that joins everything it spawns passes the check.
func TestCleanRun(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// TestSlowTeardownWithinGrace: a goroutine that exits shortly after the
// test body — the Close/Shutdown window — is not a leak.
func TestSlowTeardownWithinGrace(t *testing.T) {
	Check(t)
	go func() {
		time.Sleep(100 * time.Millisecond)
	}() //icn:oneshot exits within leakcheck's grace window; that is the scenario under test
}

// TestDetectsLeak: a genuinely stuck goroutine is caught. The failure is
// observed through a sub-test runner so this test passes exactly when the
// checker fires.
func TestDetectsLeak(t *testing.T) {
	block := make(chan struct{})
	defer close(block)

	leaked := false
	t.Run("leaky", func(t *testing.T) {
		// A tiny grace keeps the failing path fast.
		probe := &probeTB{TB: t}
		CheckTimeout(probe, 50*time.Millisecond)
		go func() { <-block }() //icn:oneshot deliberate leak; the checker under test must report it
		probe.onError = func() { leaked = true }
	})
	if !leaked {
		t.Fatal("leakcheck did not report a deliberately leaked goroutine")
	}
}

// probeTB intercepts Errorf so a deliberate leak does not fail the real
// test, while Failed still reports false so the cleanup runs its check.
type probeTB struct {
	testing.TB
	onError func()
}

func (p *probeTB) Errorf(string, ...any) {
	if p.onError != nil {
		p.onError()
	}
}

func (p *probeTB) Failed() bool { return false }
