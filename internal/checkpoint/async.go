package checkpoint

import (
	"sync"

	"idicn/internal/sim"
)

// AsyncSaver overlaps checkpoint persistence with simulation. A frozen
// StreamState is a deep copy, so once the simulation hands it over, encoding
// and fsyncing it can proceed while the epochs keep flowing; Save only
// blocks on the *previous* save, bounding the in-flight window to one
// checkpoint. A crash during the overlapped write leaves a torn or missing
// newest file, which Store.Latest already falls back past — exactly the
// guarantee a synchronous save gives, minus the barrier stall.
//
// The done handoff is mutex-guarded, so a Wait racing the runner's final
// Save observes either the in-flight channel or none — never a torn
// pointer. Saves themselves are still expected from one goroutine at a
// time (the streaming runner's checkpoint hook).
type AsyncSaver struct {
	store *Store

	mu sync.Mutex
	//icn:guardedby mu
	done chan error // result of the in-flight save; nil when idle
}

// NewAsyncSaver wraps store. Callers must Wait before using the results of
// the final save (or treating the run as fully persisted).
func NewAsyncSaver(store *Store) *AsyncSaver { return &AsyncSaver{store: store} }

// Save persists st in the background, first surfacing any error from the
// previous save — so an error is reported at most one checkpoint late, and
// the runner still aborts instead of simulating for hours on a dead disk.
func (a *AsyncSaver) Save(st *sim.StreamState) error {
	if err := a.Wait(); err != nil {
		return err
	}
	done := make(chan error, 1)
	a.mu.Lock()
	a.done = done
	a.mu.Unlock()
	go func() {
		_, err := a.store.Save(st)
		done <- err
	}()
	return nil
}

// Wait blocks until the in-flight save, if any, completes, and returns its
// error. Idempotent; safe to call with nothing in flight. The channel is
// claimed under the lock before blocking, so concurrent Waits cannot both
// consume the same result.
func (a *AsyncSaver) Wait() error {
	a.mu.Lock()
	ch := a.done
	a.done = nil
	a.mu.Unlock()
	if ch == nil {
		return nil
	}
	return <-ch
}
