package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"idicn/internal/sim"
)

// fileExt is the checkpoint file suffix; files are named by zero-padded
// request index so lexical order is progress order.
const fileExt = ".icnck"

// ErrNoCheckpoint reports an empty store: nothing to resume from.
var ErrNoCheckpoint = errors.New("checkpoint: no usable checkpoint in store")

// Store is a directory of checkpoint files written atomically (temp file,
// checksum, rename) and pruned to the newest few. Keeping at least two means
// a crash while writing checkpoint N — even one that survives the rename
// with a torn tail via filesystem reordering — still leaves N-1 intact, and
// Latest falls back to it.
type Store struct {
	dir         string
	fingerprint uint64
	keep        int
	fsync       bool
}

// NewStore opens (creating if needed) a checkpoint directory. fingerprint is
// the run-identity hash (Fingerprint) stamped into every file and verified
// on load. keep is how many recent checkpoints to retain; values below 2 are
// raised to 2, the minimum that makes torn-write fallback possible.
func NewStore(dir string, fingerprint uint64, keep int) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating store: %w", err)
	}
	if keep < 2 {
		keep = 2
	}
	return &Store{dir: dir, fingerprint: fingerprint, keep: keep}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SetFsync controls whether Save fsyncs the data before the rename. Off by
// default: a process crash (the drill harness's threat model) never loses
// page-cache writes, and the trailing checksum plus keep>=2 pruning already
// recover from a newest file torn by anything harsher. Turn it on when the
// checkpoint must survive power loss or a kernel panic, and budget for it —
// on filesystems with expensive fsync (overlayfs, network mounts) a synced
// multi-megabyte save costs seconds of system time per checkpoint.
func (s *Store) SetFsync(on bool) { s.fsync = on }

func (s *Store) fileFor(requests int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%016d%s", requests, fileExt))
}

// Save atomically persists st and prunes old checkpoints, returning the
// file path written. The full image lands under a temp name before the
// rename makes it visible, so a crash at any instant leaves either the
// complete new file or no new file — never a short one under a valid name —
// and the trailing checksum catches a torn file even if the filesystem
// reorders the metadata (possible without SetFsync(true)); Latest then falls
// back to the previous checkpoint.
func (s *Store) Save(st *sim.StreamState) (string, error) {
	data := Encode(st, s.fingerprint)
	final := s.fileFor(st.Requests)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Write(data); err == nil && s.fsync {
		err = f.Sync()
	}
	if err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: writing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if err := s.prune(); err != nil {
		return "", err
	}
	return final, nil
}

// Latest loads the most recent usable checkpoint, scanning newest-first and
// skipping files that fail to read or decode — a torn newest file (crash
// mid-write) falls back to the previous good one. It returns ErrNoCheckpoint
// when the store holds no checkpoint files at all, and the last decode
// failure when files exist but none is usable (all corrupt, or written by a
// different configuration).
func (s *Store) Latest() (*sim.StreamState, string, error) {
	names, err := s.files()
	if err != nil {
		return nil, "", err
	}
	if len(names) == 0 {
		return nil, "", ErrNoCheckpoint
	}
	var lastErr error
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(s.dir, names[i])
		data, err := os.ReadFile(path)
		if err != nil {
			lastErr = err
			continue
		}
		st, err := Decode(data, s.fingerprint)
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", path, err)
			continue
		}
		return st, path, nil
	}
	return nil, "", fmt.Errorf("checkpoint: no usable checkpoint among %d files: %w", len(names), lastErr)
}

// files returns the store's checkpoint file names in ascending (oldest
// first) name order, ignoring temp files and foreign entries.
func (s *Store) files() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, fileExt) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// prune removes all but the newest keep checkpoints, plus any stale temp
// files left by a crashed writer.
func (s *Store) prune() error {
	names, err := s.files()
	if err != nil {
		return err
	}
	for _, name := range names[:max(0, len(names)-s.keep)] {
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("checkpoint: pruning: %w", err)
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	for _, e := range entries {
		if e.Type().IsRegular() && strings.HasSuffix(e.Name(), ".tmp") {
			if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("checkpoint: pruning: %w", err)
			}
		}
	}
	return nil
}
