package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"idicn/internal/sim"
	"idicn/internal/topo"
	"idicn/internal/trace"
)

// errKill simulates the process dying right after a checkpoint hits disk.
var errKill = errors.New("simulated crash")

// drillWorkload mirrors the sim package's shard workload: warmup, capacity
// windows, a failure plan, and nearest-replica routing, so every piece of
// checkpointed state is live.
func drillWorkload() (sim.Config, []trace.Request) {
	net := topo.NewNetwork(topo.Abilene(), 2, 3)
	const objects = 600
	weights := net.Topo.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, true, 11)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests: 12000, Objects: objects, Alpha: 1.04,
		PoPWeights: weights, Leaves: net.LeavesPerTree(), Seed: 13,
	})
	cfg := sim.ICNNR.Apply(sim.Config{
		Network: net, Objects: objects, Origins: origins,
		BudgetFraction: 0.05, BudgetPolicy: sim.BudgetProportional,
		WarmupRequests: 3000, Capacity: 200, CapacityWindow: 2500,
		FailurePlan: &sim.FailurePlan{
			Seed: 99,
			Epochs: []sim.FailureEpoch{
				{Start: 4100, FailFraction: 0.3},
				{Start: 7500, FailFraction: 0.1, ResolverDown: true},
				{Start: 9000},
			},
		},
	})
	return cfg, reqs
}

// crashAt runs the workload with checkpoints persisted through a real Store,
// killing the run right after the kill-th save, and returns the store.
func crashAt(t *testing.T, cfg sim.Config, reqs []trace.Request, dir string, kill int) *Store {
	t.Helper()
	store, err := NewStore(dir, testFP, 2)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	_, err = sim.RunStream(cfg, trace.Requests(reqs), sim.StreamOptions{
		Workers: 3, EpochLen: 1024, CheckpointEvery: 1,
		Checkpoint: func(st *sim.StreamState) error {
			if _, err := store.Save(st); err != nil {
				return err
			}
			calls++
			if calls == kill {
				return errKill
			}
			return nil
		},
	})
	if !errors.Is(err, errKill) {
		t.Fatalf("kill=%d: RunStream returned %v, want the injected crash", kill, err)
	}
	return store
}

// resumeAndFinish loads the latest checkpoint from the store and runs the
// stream to completion from it.
func resumeAndFinish(t *testing.T, cfg sim.Config, reqs []trace.Request, store *Store, workers int) sim.Result {
	t.Helper()
	st, _, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunStream(cfg, trace.Requests(reqs), sim.StreamOptions{
		Workers: workers, EpochLen: 1024, Resume: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCrashResumeDrill is the end-to-end crash-injection harness behind
// `make crash-smoke`: kill the run after every checkpoint in turn — state
// passing through the real on-disk store, not in-memory handoff — resume
// from Latest, and require a Result bit-identical to an uninterrupted run.
func TestCrashResumeDrill(t *testing.T) {
	cfg, reqs := drillWorkload()
	want, err := sim.RunStream(cfg, trace.Requests(reqs), sim.StreamOptions{Workers: 3, EpochLen: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Count the checkpoints one interrupted-free pass produces.
	total := 0
	if _, err := sim.RunStream(cfg, trace.Requests(reqs), sim.StreamOptions{
		Workers: 3, EpochLen: 1024, CheckpointEvery: 1,
		Checkpoint: func(*sim.StreamState) error { total++; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	if total < 10 {
		t.Fatalf("only %d checkpoints fired", total)
	}
	for kill := 1; kill <= total; kill++ {
		store := crashAt(t, cfg, reqs, t.TempDir(), kill)
		got := resumeAndFinish(t, cfg, reqs, store, 3)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("kill=%d: resumed result diverges:\n got %+v\nwant %+v", kill, got, want)
		}
	}
}

// TestCrashResumeDrillTornFile: crash mid-write — the newest checkpoint file
// is torn at an arbitrary byte — and the resume must fall back to the
// previous snapshot and still reproduce the uninterrupted result exactly.
func TestCrashResumeDrillTornFile(t *testing.T) {
	cfg, reqs := drillWorkload()
	want, err := sim.RunStream(cfg, trace.Requests(reqs), sim.StreamOptions{Workers: 3, EpochLen: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i, kill := range []int{3, 6, 9} {
		store := crashAt(t, cfg, reqs, t.TempDir(), kill)
		names, err := store.files()
		if err != nil {
			t.Fatal(err)
		}
		if len(names) < 2 {
			t.Fatalf("kill=%d: %d files on disk, want 2", kill, len(names))
		}
		newest := filepath.Join(store.Dir(), names[len(names)-1])
		data, err := os.ReadFile(newest)
		if err != nil {
			t.Fatal(err)
		}
		cut := (i + 1) * len(data) / 4
		if err := os.WriteFile(newest, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := resumeAndFinish(t, cfg, reqs, store, 3)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("kill=%d torn at %d/%d: resumed result diverges", kill, cut, len(data))
		}
	}
}

// TestCrashResumeDrillEmptyStoreStartsFresh: resuming with nothing on disk
// is a fresh start, the icnsim -resume convenience path.
func TestCrashResumeDrillEmptyStoreStartsFresh(t *testing.T) {
	store, err := NewStore(t.TempDir(), testFP, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest: %v, want ErrNoCheckpoint", err)
	}
}

// TestCrashResumeDrillProcessBoundary re-decodes the checkpoint bytes as a
// fresh process would (no shared memory with the killed run) and verifies
// the resumed result, guarding against accidental reliance on aliased state.
func TestCrashResumeDrillProcessBoundary(t *testing.T) {
	cfg, reqs := drillWorkload()
	want, err := sim.RunStream(cfg, trace.Requests(reqs), sim.StreamOptions{Workers: 2, EpochLen: 1024})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	crashAt(t, cfg, reqs, dir, 5)
	// A brand-new Store over the same directory, as a restarted process sees.
	store, err := NewStore(dir, testFP, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := resumeAndFinish(t, cfg, reqs, store, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("process-boundary resume diverges:\n got %+v\nwant %+v", got, want)
	}
}

// TestCheckpointFingerprintWiring sanity-checks the fingerprint helper the
// CLI builds its run identity from: order and content both matter.
func TestCheckpointFingerprintWiring(t *testing.T) {
	a := Fingerprint("att", "2", "3", "ICN-NR")
	b := Fingerprint("att", "2", "3", "ICN-SP")
	c := Fingerprint("att", "3", "2", "ICN-NR")
	if a == b || a == c || b == c {
		t.Fatalf("fingerprints collide: %x %x %x", a, b, c)
	}
	if a != Fingerprint("att", "2", "3", "ICN-NR") {
		t.Fatal("fingerprint is not deterministic")
	}
}
