// Package checkpoint persists sim.RunStream state for crash-safe
// long-horizon runs: a compact versioned binary codec for the frozen stream
// state, and an atomic on-disk store (temp file + checksum + rename) that
// falls back past torn or corrupt snapshots on resume. A 10¹⁰-request
// campaign killed at any point resumes from its latest good checkpoint with
// a final Result bit-identical to an uninterrupted run.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"hash/fnv"
	"math"

	"idicn/internal/sim"
	"idicn/internal/trace"
)

// Magic identifies the checkpoint format, version 1.
const Magic = "ICNCK1\n"

var (
	// ErrCorrupt reports a truncated, torn, or tampered checkpoint image.
	ErrCorrupt = errors.New("checkpoint: corrupt or truncated checkpoint")
	// ErrFingerprint reports a checkpoint written by a run with a different
	// configuration: structurally valid, but resuming from it would silently
	// produce results belonging to neither run.
	ErrFingerprint = errors.New("checkpoint: configuration fingerprint mismatch")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Fingerprint hashes the strings that define a run's identity (topology,
// design, workload, seeds, epoch length, …) into the value Encode embeds and
// Decode verifies, so a checkpoint can never be resumed under a different
// configuration. FNV-1a over the parts with length framing.
func Fingerprint(parts ...string) uint64 {
	h := fnv.New64a()
	var lenBuf [binary.MaxVarintLen64]byte
	for _, p := range parts {
		n := binary.PutUvarint(lenBuf[:], uint64(len(p)))
		_, _ = h.Write(lenBuf[:n]) // fnv's Write cannot fail
		_, _ = h.Write([]byte(p))
	}
	return h.Sum64()
}

// encodedSizeHint estimates the image size so Encode allocates once instead
// of append-doubling through tens of megabytes: cache blobs dominate at
// production scale (a 5×10⁷-request run snapshots ~22 MB, nearly all
// per-shard cache state), with per-object counters a distant second.
func encodedSizeHint(st *sim.StreamState) int {
	n := 256
	for i := range st.Shards {
		sh := &st.Shards[i]
		// Served counters are mostly small varints; the metrics arrays are
		// bounded by PoP/level counts and covered by the per-shard slack.
		n += len(sh.Caches) + 2*len(sh.Served) + 4096
	}
	for i := range st.Snaps {
		n += 16*len(st.Snaps[i].PoPLatency) + 4096
	}
	for _, row := range st.Replicas {
		n += 2*len(row) + 2
	}
	for _, row := range st.RootLive {
		n += 8*len(row) + 2
	}
	return n
}

// Encode serializes st: magic, fingerprint, payload, and a trailing CRC64
// (ECMA) over everything before it. Floats are encoded as raw IEEE-754 bits,
// so a decoded state continues from bit-identical accumulator values.
func Encode(st *sim.StreamState, fingerprint uint64) []byte {
	buf := make([]byte, 0, encodedSizeHint(st))
	buf = append(buf, Magic...)
	buf = binary.AppendUvarint(buf, fingerprint)
	buf = binary.AppendVarint(buf, st.Requests)
	buf = binary.AppendVarint(buf, st.EpochLen)
	buf = binary.AppendVarint(buf, st.TracePos.Requests)
	buf = binary.AppendVarint(buf, st.TracePos.Offset)
	buf = binary.AppendVarint(buf, st.TracePos.PrevObj)
	buf = appendBool(buf, st.WarmupDone)
	if st.WarmupDone {
		buf = binary.AppendUvarint(buf, uint64(len(st.Snaps)))
		for i := range st.Snaps {
			buf = appendMetrics(buf, &st.Snaps[i])
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.Shards)))
	for i := range st.Shards {
		sh := &st.Shards[i]
		buf = appendMetrics(buf, &sh.Metrics)
		buf = appendBool(buf, sh.Served != nil)
		if sh.Served != nil {
			buf = appendInt64s(buf, sh.Served)
		}
		buf = binary.AppendUvarint(buf, uint64(len(sh.Caches)))
		buf = append(buf, sh.Caches...)
	}
	buf = appendBool(buf, st.Replicas != nil)
	if st.Replicas != nil {
		buf = binary.AppendUvarint(buf, uint64(len(st.Replicas)))
		for _, row := range st.Replicas {
			buf = binary.AppendUvarint(buf, uint64(len(row)))
			for _, n := range row {
				buf = binary.AppendVarint(buf, int64(n))
			}
		}
	}
	buf = appendBool(buf, st.RootLive != nil)
	if st.RootLive != nil {
		buf = binary.AppendUvarint(buf, uint64(len(st.RootLive)))
		for _, row := range st.RootLive {
			buf = appendBool(buf, row != nil)
			if row == nil {
				continue
			}
			buf = binary.AppendUvarint(buf, uint64(len(row)))
			for _, w := range row {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
		}
	}
	return binary.LittleEndian.AppendUint64(buf, crc64.Checksum(buf, crcTable))
}

// Decode parses a checkpoint image, verifying the magic, the trailing
// checksum, and the configuration fingerprint (ErrFingerprint when it
// mismatches — a distinct error, because the cure differs: wrong run, not
// torn file). Every count is validated against the remaining input before
// sizing an allocation, so arbitrary corrupt input fails with ErrCorrupt
// rather than an OOM or panic.
func Decode(data []byte, fingerprint uint64) (*sim.StreamState, error) {
	if len(data) < len(Magic)+8 || string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	if crc64.Checksum(body, crcTable) != binary.LittleEndian.Uint64(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d := &decoder{data: body[len(Magic):]}
	if fp := d.uvarint(); d.err == nil && fp != fingerprint {
		return nil, fmt.Errorf("%w: checkpoint written by fingerprint %016x, this run is %016x", ErrFingerprint, fp, fingerprint)
	}
	st := &sim.StreamState{
		Requests: d.varint(),
		EpochLen: d.varint(),
		TracePos: trace.StreamPos{
			Requests: d.varint(),
			Offset:   d.varint(),
			PrevObj:  d.varint(),
		},
		WarmupDone: d.bool(),
	}
	if st.WarmupDone {
		st.Snaps = make([]sim.MetricState, d.count(1))
		for i := range st.Snaps {
			st.Snaps[i] = d.metrics()
		}
	}
	st.Shards = make([]sim.ShardState, d.count(1))
	for i := range st.Shards {
		sh := &st.Shards[i]
		sh.Metrics = d.metrics()
		if d.bool() {
			sh.Served = d.int64s()
		}
		sh.Caches = d.bytes(d.count(1))
	}
	if d.bool() {
		st.Replicas = make([][]int32, d.count(1))
		for i := range st.Replicas {
			n := d.count(1)
			if n == 0 {
				continue
			}
			row := make([]int32, n)
			for j := range row {
				v := d.varint()
				if v != int64(int32(v)) {
					d.fail("replica node id overflows int32")
				}
				row[j] = int32(v)
			}
			st.Replicas[i] = row
		}
	}
	if d.bool() {
		st.RootLive = make([][]uint64, d.count(1))
		for i := range st.RootLive {
			if !d.bool() {
				continue
			}
			row := make([]uint64, d.count(8))
			for j := range row {
				row[j] = d.fixed64()
			}
			st.RootLive[i] = row
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.data))
	}
	return st, nil
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendInt64s(buf []byte, vs []int64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vs)))
	for _, v := range vs {
		buf = binary.AppendVarint(buf, v)
	}
	return buf
}

func appendFloat64s(buf []byte, vs []float64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vs)))
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func appendMetrics(buf []byte, m *sim.MetricState) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.TotalLatency))
	buf = appendFloat64s(buf, m.PoPLatency)
	buf = appendInt64s(buf, m.PoPRequests)
	buf = binary.AppendVarint(buf, m.Transfers)
	buf = binary.AppendVarint(buf, m.Evictions)
	buf = binary.AppendVarint(buf, m.Stats.Leaf)
	buf = binary.AppendVarint(buf, m.Stats.Sibling)
	buf = binary.AppendVarint(buf, m.Stats.Tree)
	buf = binary.AppendVarint(buf, m.Stats.Core)
	buf = binary.AppendVarint(buf, m.Stats.Origin)
	buf = appendInt64s(buf, m.ServedDepth)
	buf = appendInt64s(buf, m.TreeLoad)
	buf = appendInt64s(buf, m.CoreLoad)
	return appendInt64s(buf, m.OriginServed)
}

// decoder consumes the payload with sticky-error semantics: after the first
// failure every read returns zero values, so parse code stays linear and the
// final error check covers the whole image.
type decoder struct {
	data []byte
	err  error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, msg)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *decoder) bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.data) == 0 || d.data[0] > 1 {
		d.fail("bad bool")
		return false
	}
	v := d.data[0] == 1
	d.data = d.data[1:]
	return v
}

// count reads an element count and rejects any that could not possibly fit
// in the remaining input at minBytes per element — the guard that keeps a
// corrupt length field from sizing a huge allocation.
func (d *decoder) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.data))/uint64(minBytes) {
		d.fail("count exceeds input")
		return 0
	}
	return int(v)
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n > len(d.data) {
		d.fail("byte run exceeds input")
		return nil
	}
	out := append([]byte(nil), d.data[:n]...)
	d.data = d.data[n:]
	return out
}

func (d *decoder) fixed64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 8 {
		d.fail("short fixed64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data)
	d.data = d.data[8:]
	return v
}

// int64s and float64s decode zero-length runs as nil, so a decoded state is
// canonical: nil and empty collapse to nil, and decode∘encode is idempotent.
func (d *decoder) int64s() []int64 {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.varint()
	}
	return out
}

func (d *decoder) float64s() []float64 {
	n := d.count(8)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(d.fixed64())
	}
	return out
}

func (d *decoder) metrics() sim.MetricState {
	return sim.MetricState{
		TotalLatency: math.Float64frombits(d.fixed64()),
		PoPLatency:   d.float64s(),
		PoPRequests:  d.int64s(),
		Transfers:    d.varint(),
		Evictions:    d.varint(),
		Stats: sim.ServeStats{
			Leaf:    d.varint(),
			Sibling: d.varint(),
			Tree:    d.varint(),
			Core:    d.varint(),
			Origin:  d.varint(),
		},
		ServedDepth:  d.int64s(),
		TreeLoad:     d.int64s(),
		CoreLoad:     d.int64s(),
		OriginServed: d.int64s(),
	}
}
