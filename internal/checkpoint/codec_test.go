package checkpoint

import (
	"encoding/binary"
	"errors"
	"hash/crc64"
	"reflect"
	"testing"

	"idicn/internal/sim"
	"idicn/internal/trace"
)

// appendChecksum stamps a valid trailer onto body, for tests that corrupt
// the payload but need the checksum to pass.
func appendChecksum(body []byte) []byte {
	return binary.LittleEndian.AppendUint64(body, crc64.Checksum(body, crcTable))
}

// sampleState builds a representative StreamState: populated metrics,
// nil and non-nil optional slices, multiple shards, and raw cache bytes.
func sampleState() *sim.StreamState {
	return &sim.StreamState{
		Requests: 123456,
		EpochLen: 1024,
		TracePos: trace.StreamPos{Requests: 123456, Offset: 98765, PrevObj: -42},

		WarmupDone: true,
		Snaps: []sim.MetricState{
			{
				TotalLatency: 3.25,
				PoPLatency:   []float64{1.5, 0, 2.25},
				PoPRequests:  []int64{10, 0, 20},
				Transfers:    7, Evictions: 3,
				Stats:        sim.ServeStats{Leaf: 1, Sibling: 2, Tree: 3, Core: 4, Origin: 5},
				ServedDepth:  []int64{9, 8},
				TreeLoad:     []int64{1, 2, 3},
				CoreLoad:     []int64{4},
				OriginServed: []int64{5, 6},
			},
			{},
		},
		Shards: []sim.ShardState{
			{
				Metrics: sim.MetricState{TotalLatency: 1e-9, PoPLatency: []float64{0.5}},
				Served:  []int64{100, -1, 0},
				Caches:  []byte{0xde, 0xad, 0xbe, 0xef},
			},
			{},
		},
		Replicas: [][]int32{{0, 5, 9}, nil, {2}},
		RootLive: [][]uint64{{0xffffffffffffffff, 0}, nil},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	const fp = 0xabcdef0123456789
	st := sampleState()
	data := Encode(st, fp)
	got, err := Decode(data, fp)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip diverges:\n got %+v\nwant %+v", got, st)
	}
}

func TestCodecRoundTripMinimal(t *testing.T) {
	st := &sim.StreamState{EpochLen: 1, Shards: []sim.ShardState{{}}}
	got, err := Decode(Encode(st, 1), 1)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip diverges:\n got %+v\nwant %+v", got, st)
	}
}

func TestDecodeFingerprintMismatch(t *testing.T) {
	data := Encode(sampleState(), 1)
	_, err := Decode(data, 2)
	if !errors.Is(err, ErrFingerprint) {
		t.Fatalf("Decode with the wrong fingerprint returned %v, want ErrFingerprint", err)
	}
}

// TestDecodeRejectsCorruption: every single-byte flip and every truncation
// of a valid image must fail with ErrCorrupt — the checksum catches torn
// files regardless of where the tear lands.
func TestDecodeRejectsCorruption(t *testing.T) {
	const fp = 7
	data := Encode(sampleState(), fp)
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if _, err := Decode(bad, fp); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: got %v, want ErrCorrupt", i, err)
		}
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(data[:cut], fp); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrCorrupt", cut, err)
		}
	}
}

// TestDecodeRejectsTrailingBytes: a valid payload followed by garbage (with
// a recomputed checksum, so only the length check can catch it) must fail.
func TestDecodeRejectsTrailingBytes(t *testing.T) {
	const fp = 7
	data := Encode(sampleState(), fp)
	body := data[:len(data)-8]
	bad := append(append([]byte(nil), body...), 0x00)
	bad = appendChecksum(bad)
	if _, err := Decode(bad, fp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
	}
}

func TestFingerprintDistinguishesFraming(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Fatal("length framing failed: boundary shift collides")
	}
	if Fingerprint("x") == Fingerprint("x", "") {
		t.Fatal("empty trailing part collides")
	}
}

// FuzzDecode: arbitrary input must never panic or over-allocate, and any
// input that decodes must re-encode to an image that decodes to the same
// state.
func FuzzDecode(f *testing.F) {
	const fp = 99
	f.Add(Encode(sampleState(), fp))
	f.Add(Encode(&sim.StreamState{Shards: []sim.ShardState{{}}}, fp))
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data, fp)
		if err != nil {
			return
		}
		st2, err := Decode(Encode(st, fp), fp)
		if err != nil {
			t.Fatalf("re-decode of a decoded state failed: %v", err)
		}
		if !reflect.DeepEqual(st2, st) {
			t.Fatalf("re-encode round trip diverges:\n got %+v\nwant %+v", st2, st)
		}
	})
}
