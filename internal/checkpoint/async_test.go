package checkpoint

import (
	"errors"
	"os"
	"reflect"
	"testing"

	"idicn/internal/sim"
	"idicn/internal/trace"
)

// TestAsyncSaverPersistsInOrder: every state handed to Save lands on disk,
// Latest returns the newest, and Wait drains the tail.
func TestAsyncSaverPersistsInOrder(t *testing.T) {
	store, err := NewStore(t.TempDir(), testFP, 10)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsyncSaver(store)
	for _, r := range []int64{1000, 2000, 3000} {
		st := sampleState()
		st.Requests = r
		if err := a.Save(st); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	st, _, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3000 {
		t.Fatalf("Latest.Requests = %d, want 3000", st.Requests)
	}
	names, err := store.files()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("%d files on disk, want 3: %v", len(names), names)
	}
}

// TestAsyncSaverSurfacesErrors: a failing save is reported on the next Save
// (or Wait), so the runner aborts instead of streaming into the void.
func TestAsyncSaverSurfacesErrors(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir, testFP, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsyncSaver(store)
	if err := a.Save(sampleState()); err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	// Remove the directory so the next save's temp file fails. (Chmod-based
	// denial would not work here: tests may run as root.)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	st := sampleState()
	st.Requests = 9999
	if err := a.Save(st); err != nil {
		t.Fatalf("Save itself should defer the failure, got %v", err)
	}
	if err := a.Wait(); err == nil {
		t.Fatal("Wait returned nil after a failed background save")
	}
}

// TestAsyncSaverThroughRunStream wires the saver as the checkpoint hook of
// a real streaming run and verifies a resume from the resulting store is
// bit-identical — the exact icnsim -checkpoint composition.
func TestAsyncSaverThroughRunStream(t *testing.T) {
	cfg, reqs := drillWorkload()
	want, err := sim.RunStream(cfg, trace.Requests(reqs), sim.StreamOptions{Workers: 2, EpochLen: 1024})
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(t.TempDir(), testFP, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsyncSaver(store)
	calls := 0
	_, err = sim.RunStream(cfg, trace.Requests(reqs), sim.StreamOptions{
		Workers: 2, EpochLen: 1024, CheckpointEvery: 1,
		Checkpoint: func(st *sim.StreamState) error {
			if err := a.Save(st); err != nil {
				return err
			}
			calls++
			if calls == 6 {
				return errKill
			}
			return nil
		},
	})
	if !errors.Is(err, errKill) {
		t.Fatalf("RunStream returned %v, want the injected crash", err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	got := resumeAndFinish(t, cfg, reqs, store, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("async-saved resume diverges:\n got %+v\nwant %+v", got, want)
	}
}
