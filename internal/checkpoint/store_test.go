package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testFP = 0x1234

func mustSave(t *testing.T, s *Store, requests int64) string {
	t.Helper()
	st := sampleState()
	st.Requests = requests
	path, err := s.Save(st)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStoreSaveLatestRoundTrip(t *testing.T) {
	s, err := NewStore(t.TempDir(), testFP, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := mustSave(t, s, 5000)
	st, got, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got != path {
		t.Fatalf("Latest path %s, want %s", got, path)
	}
	if st.Requests != 5000 {
		t.Fatalf("Latest.Requests = %d, want 5000", st.Requests)
	}
}

func TestStoreEmptyIsErrNoCheckpoint(t *testing.T) {
	s, err := NewStore(t.TempDir(), testFP, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Latest on an empty store: %v, want ErrNoCheckpoint", err)
	}
}

func TestStorePruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, testFP, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int64{1000, 2000, 3000, 4000} {
		mustSave(t, s, r)
	}
	names, err := s.files()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("store holds %d files after prune, want 2: %v", len(names), names)
	}
	if !strings.Contains(names[1], "4000") || !strings.Contains(names[0], "3000") {
		t.Fatalf("pruned to the wrong files: %v", names)
	}
}

// TestStoreTornNewestFallsBack is the crash-mid-write story: truncate the
// newest file as a torn write would, and Latest must fall back to the
// previous good checkpoint.
func TestStoreTornNewestFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, testFP, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 1000)
	newest := mustSave(t, s, 2000)
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(data) / 2, len(data) - 1} {
		if err := os.WriteFile(newest, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, path, err := s.Latest()
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if st.Requests != 1000 {
			t.Fatalf("cut=%d: fell back to Requests=%d via %s, want 1000", cut, st.Requests, path)
		}
	}
}

// TestStoreIgnoresForeignFiles: garbage with a checkpoint-like name is
// skipped; files without the naming scheme are not even considered.
func TestStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, testFP, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 1000)
	if err := os.WriteFile(filepath.Join(dir, "ckpt-9999999999999999.icnck"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, _, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1000 {
		t.Fatalf("Latest.Requests = %d, want 1000", st.Requests)
	}
}

// TestStoreFingerprintMismatchIsFatal: a store full of another run's
// checkpoints must refuse, not resume the wrong run.
func TestStoreFingerprintMismatchIsFatal(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, testFP, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 1000)
	other, err := NewStore(dir, testFP+1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := other.Latest(); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("Latest across fingerprints: %v, want ErrFingerprint", err)
	}
}

// TestStoreSaveCleansStrayTemp: a .tmp left by a crashed writer disappears
// on the next successful save.
func TestStoreSaveCleansStrayTemp(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, testFP, 2)
	if err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "ckpt-0000000000000500.icnck.tmp")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 1000)
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stray temp file survived a save: %v", err)
	}
}

func TestStoreFsyncedSaveRoundTrips(t *testing.T) {
	s, err := NewStore(t.TempDir(), testFP, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFsync(true)
	mustSave(t, s, 1000)
	st, _, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1000 {
		t.Fatalf("Latest.Requests = %d, want 1000", st.Requests)
	}
}
