package cache

// Policy is the unified replacement-policy interface every cache in the zoo
// implements (IntLRU, IntLFU, ARC, CAR, TinyLFU). The simulator provisions
// thousands of Policy instances — one per caching router — and drives them
// through exactly these four methods, so a policy is "drop-in" precisely when
// it satisfies this interface.
//
// Semantics:
//
//   - Lookup touches: a hit refreshes replacement state (recency, frequency,
//     reference bits) and updates hit/miss statistics.
//   - Contains peeks: it must be entirely side-effect-free, because
//     cooperative lookups and the nearest-replica fast path probe caches they
//     may not end up using.
//   - Insert admits an object after a miss, possibly evicting others, and
//     reports whether anything was evicted. Policies with admission control
//     (TinyLFU) may decline the insert outright; callers that need to know
//     whether the object was actually admitted check Contains afterwards
//     (sized caches already established this contract for oversize objects).
//     Inserting a present object only refreshes replacement state.
//   - Len reports the resident object count; it never exceeds the capacity
//     the policy was constructed with.
//
// Evictions are reported through the EvictFunc hook supplied at construction,
// exactly once per object leaving residency. Policies that keep ghost
// (metadata-only) entries, like ARC and CAR, fire the hook when the object
// leaves the cache proper, not when its ghost is recycled.
//
// Policies are not safe for concurrent use.
type Policy interface {
	Lookup(obj int32) bool
	Contains(obj int32) bool
	Insert(obj int32) bool
	Len() int
}

// EvictFunc observes evictions: it is invoked with each object displaced
// from residency by an insertion. A nil EvictFunc disables the hook.
type EvictFunc func(obj int32)

// Victimer is implemented by policies that can cheaply name their next
// eviction candidate without mutating any state. Admission filters (TinyLFU)
// use it to compare a newcomer's estimated frequency against the victim it
// would displace; the peek may be approximate (CAR reports its clock-hand
// entry without simulating the reference-bit sweep), but it must be
// deterministic.
type Victimer interface {
	Victim() (obj int32, ok bool)
}

// Compile-time interface conformance for the policy zoo.
var (
	_ Policy   = (*IntLRU)(nil)
	_ Policy   = (*IntLFU)(nil)
	_ Policy   = (*ARC)(nil)
	_ Policy   = (*CAR)(nil)
	_ Policy   = (*TinyLFU)(nil)
	_ Victimer = (*IntLRU)(nil)
	_ Victimer = (*ARC)(nil)
	_ Victimer = (*CAR)(nil)
)
