// Package cache provides the content-store implementations used throughout
// the repository: LRU and LFU caches with eviction hooks, in both a generic
// flavor (used by the idICN edge proxy) and compact integer-keyed flavors
// tuned for the request-level simulator's hot path, plus a size-aware LRU
// for workloads with heterogeneous object sizes.
//
// The paper uses LRU for all simulations ("the LRU policy performs
// near-optimally in practical scenarios") and reports qualitatively similar
// results with LFU; both are provided so the comparison can be reproduced.
package cache

// LRU is a fixed-capacity least-recently-used cache mapping keys to values.
// The zero value is not usable; construct with NewLRU. LRU is not safe for
// concurrent use; callers that share one across goroutines must serialize
// access.
type LRU[K comparable, V any] struct {
	capacity int
	entries  map[K]*lruEntry[K, V]
	head     *lruEntry[K, V] // most recently used
	tail     *lruEntry[K, V] // least recently used
	onEvict  func(K, V)

	hits   int64
	misses int64
}

type lruEntry[K comparable, V any] struct {
	key        K
	value      V
	prev, next *lruEntry[K, V]
}

// NewLRU returns an LRU cache that holds at most capacity entries. onEvict,
// if non-nil, is called with each entry displaced by an insertion (but not
// for entries overwritten by Put with an existing key, nor for Remove).
// NewLRU panics if capacity is negative; a zero-capacity cache is permitted
// and caches nothing, which the simulator uses for cache-less routers.
func NewLRU[K comparable, V any](capacity int, onEvict func(K, V)) *LRU[K, V] {
	if capacity < 0 {
		panic("cache: negative capacity")
	}
	return &LRU[K, V]{
		capacity: capacity,
		entries:  make(map[K]*lruEntry[K, V], capacity),
		onEvict:  onEvict,
	}
}

// Get returns the value for key and marks it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	if e, ok := c.entries[key]; ok {
		c.moveToFront(e)
		c.hits++
		return e.value, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Contains reports whether key is cached without updating recency or
// hit/miss statistics.
func (c *LRU[K, V]) Contains(key K) bool {
	_, ok := c.entries[key]
	return ok
}

// Peek returns the value for key without updating recency or statistics.
func (c *LRU[K, V]) Peek(key K) (V, bool) {
	if e, ok := c.entries[key]; ok {
		return e.value, true
	}
	var zero V
	return zero, false
}

// Put inserts or updates key and marks it most recently used. It returns
// true if an existing entry was displaced to make room.
func (c *LRU[K, V]) Put(key K, value V) (evicted bool) {
	if c.capacity == 0 {
		return false
	}
	if e, ok := c.entries[key]; ok {
		e.value = value
		c.moveToFront(e)
		return false
	}
	if len(c.entries) >= c.capacity {
		c.evictTail()
		evicted = true
	}
	e := &lruEntry[K, V]{key: key, value: value}
	c.entries[key] = e
	c.pushFront(e)
	return evicted
}

// Remove deletes key from the cache, reporting whether it was present.
// The eviction hook is not invoked.
func (c *LRU[K, V]) Remove(key K) bool {
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	c.unlink(e)
	delete(c.entries, key)
	return true
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int { return len(c.entries) }

// Cap returns the capacity.
func (c *LRU[K, V]) Cap() int { return c.capacity }

// Stats returns the cumulative hit and miss counts from Get calls.
func (c *LRU[K, V]) Stats() (hits, misses int64) { return c.hits, c.misses }

// Keys returns the cached keys from most to least recently used.
func (c *LRU[K, V]) Keys() []K {
	keys := make([]K, 0, len(c.entries))
	for e := c.head; e != nil; e = e.next {
		keys = append(keys, e.key)
	}
	return keys
}

func (c *LRU[K, V]) pushFront(e *lruEntry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *LRU[K, V]) unlink(e *lruEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *LRU[K, V]) moveToFront(e *lruEntry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *LRU[K, V]) evictTail() {
	e := c.tail
	if e == nil {
		return
	}
	c.unlink(e)
	delete(c.entries, e.key)
	if c.onEvict != nil {
		c.onEvict(e.key, e.value)
	}
}
