package cache

// TinyLFU is a TinyLFU-style admission filter (Einziger, Friedman & Manes)
// composed in front of any eviction Policy. It keeps an approximate
// frequency histogram of recent accesses in a 4-bit count-min sketch with
// periodic halving (the "aging" that makes the histogram track the recent
// sample rather than all of history), and on insertion into a full inner
// cache admits the newcomer only if its estimated frequency beats the inner
// policy's eviction candidate. One-hit wonders — the bulk of a router-level
// ICN request stream — are thereby kept from displacing proven content.
//
// Admission is orthogonal to replacement: TinyLFU decides *whether* an
// object enters, the wrapped Policy decides *which* resident leaves, so the
// filter composes with LRU, ARC, or CAR unchanged. The sketch is fixed flat
// arrays and pure integer hashing, so every operation is allocation-free and
// deterministic.
//
// TinyLFU is not safe for concurrent use.
type TinyLFU struct {
	inner    Policy
	vic      Victimer // inner's victim peek, nil when unsupported
	capacity int

	table  []uint64 // packed 4-bit counters, 16 per word
	mask   uint32   // counter-index mask (power of two minus one)
	sample int      // accesses between halvings (10x capacity)
	ops    int      // accesses recorded since the last halving
}

// NewTinyLFU wraps inner, which must have been constructed with the given
// capacity (the wrapper cannot read it through the Policy interface), in a
// TinyLFU admission filter. The sketch holds 8 counters per cache slot and
// halves every 10*capacity recorded accesses. If inner implements Victimer
// the admission test compares the newcomer against the actual eviction
// candidate; otherwise a newcomer must have an estimated frequency of at
// least 2 — some history in the current sample — to enter a full cache.
// NewTinyLFU panics if capacity is negative.
func NewTinyLFU(inner Policy, capacity int) *TinyLFU {
	if capacity < 0 {
		panic("cache: negative capacity")
	}
	counters := 64
	for counters < 8*capacity {
		counters *= 2
	}
	c := &TinyLFU{
		inner:    inner,
		capacity: capacity,
		table:    make([]uint64, counters/16),
		mask:     uint32(counters - 1),
		sample:   10 * capacity,
	}
	if v, ok := inner.(Victimer); ok {
		c.vic = v
	}
	return c
}

// NewTinyLFULRU returns a TinyLFU admission filter over an IntLRU of the
// given capacity: the zoo's default admission-filtered configuration.
func NewTinyLFULRU(capacity int, onEvict EvictFunc) *TinyLFU {
	return NewTinyLFU(NewIntLRU(capacity, onEvict), capacity)
}

// Lookup records the access in the frequency sketch and touches the inner
// policy.
//
//icn:noalloc
func (c *TinyLFU) Lookup(obj int32) bool {
	c.record(obj)
	return c.inner.Lookup(obj)
}

// Contains reports whether obj is resident without side effects (the sketch
// is not updated).
//
//icn:noalloc
func (c *TinyLFU) Contains(obj int32) bool { return c.inner.Contains(obj) }

// Insert records the access and admits obj into the inner policy if the
// cache has room, or if obj's estimated frequency beats the inner policy's
// eviction candidate. A denied admission leaves the cache unchanged (the
// simulator's Contains-after-Insert guard already handles policies that
// decline inserts). It reports whether a resident was evicted.
//
//icn:noalloc
func (c *TinyLFU) Insert(obj int32) bool {
	if c.capacity == 0 {
		return false
	}
	if c.inner.Contains(obj) {
		return c.inner.Insert(obj) // refresh replacement state only
	}
	c.record(obj)
	if c.inner.Len() < c.capacity {
		return c.inner.Insert(obj) // free room: admission is trivial
	}
	freq := c.Estimate(obj)
	if c.vic != nil {
		if victim, ok := c.vic.Victim(); ok && freq <= c.Estimate(victim) {
			return false // the resident has at least as much recent history
		}
	} else if freq < 2 {
		return false
	}
	return c.inner.Insert(obj)
}

// Len returns the number of resident objects in the inner policy.
func (c *TinyLFU) Len() int { return c.inner.Len() }

// Cap returns the capacity.
func (c *TinyLFU) Cap() int { return c.capacity }

// Estimate returns obj's approximate access frequency in the current sample:
// the minimum over the sketch's four 4-bit counters (0..15). Read-only, for
// the admission test and diagnostics.
//
//icn:noalloc
func (c *TinyLFU) Estimate(obj int32) uint64 {
	h1 := tlfuMix(uint64(uint32(obj)))
	h2 := tlfuMix(h1 ^ 0x6c62272e07bb0142)
	est := c.counter(uint32(h1))
	if v := c.counter(uint32(h1 >> 32)); v < est {
		est = v
	}
	if v := c.counter(uint32(h2)); v < est {
		est = v
	}
	if v := c.counter(uint32(h2 >> 32)); v < est {
		est = v
	}
	return est
}

// record increments obj's four sketch counters (saturating at 15) and runs
// the periodic halving once sample accesses have accumulated.
//
//icn:noalloc
func (c *TinyLFU) record(obj int32) {
	h1 := tlfuMix(uint64(uint32(obj)))
	h2 := tlfuMix(h1 ^ 0x6c62272e07bb0142)
	c.bump(uint32(h1))
	c.bump(uint32(h1 >> 32))
	c.bump(uint32(h2))
	c.bump(uint32(h2 >> 32))
	c.ops++
	if c.ops >= c.sample {
		c.halve()
	}
}

// counter returns the 4-bit counter at hash index h.
//
//icn:noalloc
func (c *TinyLFU) counter(h uint32) uint64 {
	i := h & c.mask
	return (c.table[i>>4] >> ((i & 15) * 4)) & 0xf
}

// bump increments the 4-bit counter at hash index h, saturating at 15.
//
//icn:noalloc
func (c *TinyLFU) bump(h uint32) {
	i := h & c.mask
	shift := (i & 15) * 4
	if (c.table[i>>4]>>shift)&0xf < 15 {
		c.table[i>>4] += 1 << shift
	}
}

// halve ages the sketch: every counter is divided by two (the high bit of
// each nibble is masked off after the shift), and the sample count is halved
// with it so the histogram keeps weighting recent accesses.
//
//icn:noalloc
func (c *TinyLFU) halve() {
	for i := range c.table {
		c.table[i] = (c.table[i] >> 1) & 0x7777777777777777
	}
	c.ops /= 2
}

// tlfuMix is the splitmix64 finalizer: a cheap, statistically strong integer
// mix used to derive the sketch's four hash indices from an object id.
//
//icn:noalloc
func tlfuMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
