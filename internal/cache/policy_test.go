package cache

import (
	"math/rand"
	"testing"
)

// policyZoo lists every Policy implementation behind one constructor shape,
// so the conformance suite below runs identically over the whole zoo.
var policyZoo = []struct {
	name string
	make func(capacity int, onEvict EvictFunc) Policy
}{
	{"LRU", func(c int, f EvictFunc) Policy { return NewIntLRU(c, f) }},
	{"LFU", func(c int, f EvictFunc) Policy { return NewIntLFU(c, f) }},
	{"ARC", func(c int, f EvictFunc) Policy { return NewARC(c, f) }},
	{"CAR", func(c int, f EvictFunc) Policy { return NewCAR(c, f) }},
	{"TinyLFU", func(c int, f EvictFunc) Policy { return NewTinyLFU(NewIntLRU(c, f), c) }},
}

// replay drives a policy with the simulator's serve pattern and returns the
// hit count: a Lookup hit scores, a miss is followed by an Insert.
func replay(p Policy, seq []int32) (hits int64) {
	for _, obj := range seq {
		if p.Lookup(obj) {
			hits++
		} else {
			p.Insert(obj)
		}
	}
	return hits
}

// opStream generates a deterministic Zipf-ish access stream over the given
// object universe.
func opStream(n, universe int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, uint64(universe-1))
	seq := make([]int32, n)
	for i := range seq {
		seq[i] = int32(z.Uint64())
	}
	return seq
}

// TestPolicyConformance checks the cache.Policy contract for every zoo
// member: Len never exceeds capacity, the eviction hook fires exactly once
// per object leaving residency (tracked against a resident mirror), Contains
// agrees with the mirror, and Insert's return value reports evictions.
func TestPolicyConformance(t *testing.T) {
	for _, pz := range policyZoo {
		for _, capacity := range []int{1, 3, 8, 32} {
			resident := make(map[int32]bool)
			evictions := 0
			p := pz.make(capacity, func(obj int32) {
				if !resident[obj] {
					t.Fatalf("%s/cap=%d: evicted non-resident object %d", pz.name, capacity, obj)
				}
				delete(resident, obj)
				evictions++
			})
			seq := opStream(4000, 4*capacity+8, int64(capacity))
			for i, obj := range seq {
				hooksBefore := evictions
				if p.Lookup(obj) != resident[obj] {
					t.Fatalf("%s/cap=%d: step %d: Lookup(%d) disagrees with mirror", pz.name, capacity, i, obj)
				}
				if evictions != hooksBefore {
					t.Fatalf("%s/cap=%d: step %d: Lookup fired the eviction hook", pz.name, capacity, i)
				}
				if !resident[obj] {
					evictedReported := p.Insert(obj)
					evictedSeen := evictions > hooksBefore
					if evictedReported != evictedSeen {
						t.Fatalf("%s/cap=%d: step %d: Insert(%d) reported evicted=%v, hook says %v",
							pz.name, capacity, i, obj, evictedReported, evictedSeen)
					}
					if p.Contains(obj) {
						resident[obj] = true
					}
				}
				if p.Len() > capacity {
					t.Fatalf("%s/cap=%d: step %d: Len %d exceeds capacity", pz.name, capacity, i, p.Len())
				}
				if p.Len() != len(resident) {
					t.Fatalf("%s/cap=%d: step %d: Len %d, mirror has %d", pz.name, capacity, i, p.Len(), len(resident))
				}
			}
			if evictions == 0 && capacity < 32 {
				t.Errorf("%s/cap=%d: stream never evicted; test is vacuous", pz.name, capacity)
			}
		}
	}
}

// TestPolicyContainsSideEffectFree replays the same stream twice — once
// plain, once with Contains probes interleaved everywhere — and requires
// bit-identical hit totals and eviction sequences. Any policy whose Contains
// touches replacement or admission state diverges.
func TestPolicyContainsSideEffectFree(t *testing.T) {
	for _, pz := range policyZoo {
		const capacity = 16
		seq := opStream(6000, 80, 99)

		run := func(probe bool) (int64, []int32) {
			var evicted []int32
			p := pz.make(capacity, func(obj int32) { evicted = append(evicted, obj) })
			var hits int64
			for _, obj := range seq {
				if probe {
					p.Contains(obj)
					p.Contains(obj + 1)
				}
				if p.Lookup(obj) {
					hits++
				} else {
					p.Insert(obj)
				}
				if probe {
					p.Contains(obj)
				}
			}
			return hits, evicted
		}

		plainHits, plainEvicted := run(false)
		probedHits, probedEvicted := run(true)
		if plainHits != probedHits {
			t.Errorf("%s: Contains probes changed hits: %d vs %d", pz.name, plainHits, probedHits)
		}
		if len(plainEvicted) != len(probedEvicted) {
			t.Fatalf("%s: Contains probes changed eviction count: %d vs %d",
				pz.name, len(plainEvicted), len(probedEvicted))
		}
		for i := range plainEvicted {
			if plainEvicted[i] != probedEvicted[i] {
				t.Errorf("%s: eviction %d differs: %d vs %d", pz.name, i, plainEvicted[i], probedEvicted[i])
				break
			}
		}
	}
}

// TestPolicyZeroCapacity requires that a capacity-zero policy caches nothing
// and never fires its hook.
func TestPolicyZeroCapacity(t *testing.T) {
	for _, pz := range policyZoo {
		p := pz.make(0, func(obj int32) { t.Errorf("%s: eviction from empty cache", pz.name) })
		for _, obj := range []int32{1, 2, 1} {
			if p.Lookup(obj) {
				t.Errorf("%s: hit in capacity-0 cache", pz.name)
			}
			p.Insert(obj)
		}
		if p.Len() != 0 || p.Contains(1) {
			t.Errorf("%s: capacity-0 cache holds objects", pz.name)
		}
	}
}

// TestPolicyNegativeCapacityPanics requires every constructor to reject a
// negative capacity loudly.
func TestPolicyNegativeCapacityPanics(t *testing.T) {
	for _, pz := range policyZoo {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: negative capacity accepted", pz.name)
				}
			}()
			pz.make(-1, nil)
		}()
	}
}

// scanPollutedStream interleaves a popular working set (touched twice per
// round, so policies can observe reuse) with one-shot sequential scans long
// enough to flush an LRU of the test capacity: the access pattern LRU
// famously handles worst and the adaptive/admission policies are built for.
func scanPollutedStream(rounds, working, scanLen int) []int32 {
	var seq []int32
	scan := int32(working)
	for r := 0; r < rounds; r++ {
		for pass := 0; pass < 2; pass++ {
			for w := 0; w < working; w++ {
				seq = append(seq, int32(w))
			}
		}
		for s := 0; s < scanLen; s++ {
			seq = append(seq, scan)
			scan++
		}
	}
	return seq
}

// TestPolicyBeladyRatio compares the zoo on a scan-polluted trace: the
// adaptive policies (ARC, CAR) and the admission filter (TinyLFU over LRU)
// must each beat plain LRU — the scan evicts LRU's working set every round —
// and nothing may beat Belady's offline MIN.
func TestPolicyBeladyRatio(t *testing.T) {
	const capacity = 32
	seq := scanPollutedStream(40, 24, 64)
	optimal := BeladyHits(seq, capacity)

	hits := make(map[string]int64, len(policyZoo))
	for _, pz := range policyZoo {
		h := replay(pz.make(capacity, nil), seq)
		if h > optimal {
			t.Errorf("%s: %d hits beats Belady MIN %d", pz.name, h, optimal)
		}
		hits[pz.name] = h
	}
	for _, name := range []string{"ARC", "CAR", "TinyLFU"} {
		if hits[name] < hits["LRU"] {
			t.Errorf("%s: %d hits on scan-polluted trace, LRU got %d — scan resistance lost",
				name, hits[name], hits["LRU"])
		}
	}
	if hits["ARC"] == hits["LRU"] && hits["CAR"] == hits["LRU"] && hits["TinyLFU"] == hits["LRU"] {
		t.Errorf("no zoo policy improved on LRU (all %d hits); trace is not discriminating", hits["LRU"])
	}
	t.Logf("hits on scan-polluted trace (cap=%d, optimal=%d): LRU=%d LFU=%d ARC=%d CAR=%d TinyLFU=%d",
		capacity, optimal, hits["LRU"], hits["LFU"], hits["ARC"], hits["CAR"], hits["TinyLFU"])
}

// TestARCAdaptation sanity-checks ARC's p movement: a B1 ghost hit grows the
// recency target. Ghosts only form once T2 holds pages (with an all-T1 cache
// ARC evicts outright, exactly like LRU), so the setup promotes half the
// cache to T2 first.
func TestARCAdaptation(t *testing.T) {
	c := NewARC(4, nil)
	for i := int32(0); i < 4; i++ {
		c.Insert(i)
	}
	c.Lookup(2) // promote to T2
	c.Lookup(3)
	c.Insert(4) // replace demotes T1's LRU (object 0) to ghost list B1
	if c.Contains(0) {
		t.Fatal("object 0 still resident after replacement")
	}
	if c.Target() != 0 {
		t.Fatalf("initial target = %d, want 0", c.Target())
	}
	c.Insert(0) // B1 ghost hit: p grows
	if c.Target() == 0 {
		t.Errorf("B1 ghost hit did not grow p")
	}
	if !c.Contains(0) {
		t.Errorf("ghost hit did not resurrect object 0")
	}
}

// TestCARHitSetsOnlyRefBit checks CAR's defining property: a hit performs no
// list surgery, so the victim choice is unchanged until the clock sweeps.
func TestCARHitSetsOnlyRefBit(t *testing.T) {
	c := NewCAR(4, nil)
	for i := int32(0); i < 4; i++ {
		c.Insert(i)
	}
	before, ok := c.Victim()
	if !ok {
		t.Fatal("full cache has no victim")
	}
	if !c.Lookup(before) {
		t.Fatalf("object %d not resident", before)
	}
	after, _ := c.Victim()
	if before != after {
		t.Errorf("hit moved the clock hand: victim %d -> %d", before, after)
	}
}

// TestTinyLFUDeniesOneHitWonders checks the admission filter directly: with
// a full inner cache of proven-popular residents, a never-seen object must
// be denied, while a repeatedly requested one must eventually displace a
// resident.
func TestTinyLFUDeniesOneHitWonders(t *testing.T) {
	c := NewTinyLFULRU(4, nil)
	for r := 0; r < 4; r++ {
		for i := int32(0); i < 4; i++ {
			if !c.Lookup(i) {
				c.Insert(i)
			}
		}
	}
	c.Insert(100) // first sighting: estimate can't beat any resident
	if c.Contains(100) {
		t.Error("one-hit wonder admitted over proven residents")
	}
	for r := 0; r < 20; r++ { // persistence: becomes more frequent than LRU victim
		c.Insert(100)
	}
	if !c.Contains(100) {
		t.Error("persistently requested object never admitted")
	}
}
