package cache

// CAR is a Compact CAR cache: CLOCK with Adaptive Replacement (Bansal &
// Modha, FAST'04) in the compact, flat-array representation proposed for ICN
// line-rate routers ("Compact CAR: low-overhead cache replacement for ICN
// routers"). Like ARC it balances a recency clock T1 against a frequency
// clock T2 with ghost lists B1/B2 steering the adaptation target p — but a
// hit only sets a reference bit, with no list surgery at all, so the hit path
// is a map probe plus one bit write: the cheapest possible touch for a
// router forwarding at line rate. List maintenance is deferred to misses,
// where the clock hand sweeps reference bits.
//
// The compact part: residents and ghosts share flat prev/next/keys slot
// arrays (2*capacity slots) and one id->slot map, so a ghost costs a few
// words instead of a full descriptor. Operations perform no allocation after
// construction.
//
// CAR is not safe for concurrent use.
type CAR struct {
	capacity int
	p        int // adaptation target for |T1|, in [0, capacity]

	index map[int32]int32 // object id -> slot (resident or ghost)
	keys  []int32         // slot -> object id
	where []uint8         // slot -> list (carT1..carB2)
	ref   []bool          // slot -> clock reference bit (residents only)
	prev  []int32         // slot -> toward head, -1 at head
	next  []int32         // slot -> toward tail, -1 at tail
	head  [4]int32        // clock hand (T1/T2) or LRU end (B1/B2), -1 if empty
	tail  [4]int32        // insertion end: behind the hand (T1/T2), MRU (B1/B2)
	lens  [4]int
	free  []int32 // unused slots

	onEvict EvictFunc

	hits   int64
	misses int64
}

// The four CAR lists. Residents have where <= carT2. T1/T2 are clocks
// traversed head->tail by the hand; B1/B2 are LRU lists discarded at the
// head.
const (
	carT1 = uint8(iota)
	carT2
	carB1
	carB2
)

// NewCAR returns a Compact CAR with the given capacity. onEvict, if non-nil,
// is invoked with each object displaced from residency (ghost recycling is
// silent). A zero capacity is permitted and caches nothing. NewCAR panics if
// capacity is negative.
func NewCAR(capacity int, onEvict EvictFunc) *CAR {
	if capacity < 0 {
		panic("cache: negative capacity")
	}
	slots := 2 * capacity
	c := &CAR{
		capacity: capacity,
		index:    make(map[int32]int32, slots),
		keys:     make([]int32, slots),
		where:    make([]uint8, slots),
		ref:      make([]bool, slots),
		prev:     make([]int32, slots),
		next:     make([]int32, slots),
		head:     [4]int32{-1, -1, -1, -1},
		tail:     [4]int32{-1, -1, -1, -1},
		free:     make([]int32, slots),
		onEvict:  onEvict,
	}
	for i := range c.free {
		c.free[i] = int32(slots - 1 - i) // pop from the end: slots in order
	}
	return c
}

// Lookup reports whether obj is resident. A hit only sets the slot's
// reference bit — no list movement — which is what makes CAR's touch path
// line-rate friendly.
//
//icn:noalloc
func (c *CAR) Lookup(obj int32) bool {
	if slot, ok := c.index[obj]; ok && c.where[slot] <= carT2 {
		c.hits++
		c.ref[slot] = true
		return true
	}
	c.misses++
	return false
}

// Contains reports whether obj is resident without side effects (the
// reference bit is not touched).
//
//icn:noalloc
func (c *CAR) Contains(obj int32) bool {
	slot, ok := c.index[obj]
	return ok && c.where[slot] <= carT2
}

// Insert admits obj after a miss, following the CAR algorithm: run the clock
// replacement if the cache is full, recycle ghost history, then place the
// object at the tail of T1 (new) or T2 (ghost hit, after adapting p) with a
// clear reference bit. Inserting a resident object just sets its reference
// bit. It reports whether a resident was evicted.
//
//icn:noalloc
func (c *CAR) Insert(obj int32) bool {
	if c.capacity == 0 {
		return false
	}
	slot, ok := c.index[obj]
	if ok && c.where[slot] <= carT2 {
		c.ref[slot] = true
		return false
	}
	evicted := false
	if c.lens[carT1]+c.lens[carT2] == c.capacity {
		c.replace()
		evicted = true
		if !ok { // no ghost history for obj: trim the ghost lists
			if c.lens[carT1]+c.lens[carB1] == c.capacity {
				c.dropGhost(carB1)
			} else if c.lens[carT1]+c.lens[carT2]+c.lens[carB1]+c.lens[carB2] == 2*c.capacity {
				c.dropGhost(carB2)
			}
		}
	}
	if !ok {
		s := c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		c.keys[s] = obj
		c.index[obj] = s
		c.ref[s] = false
		c.pushTail(carT1, s)
		return evicted
	}
	// Ghost hit: adapt p toward the list that would have kept obj resident.
	if c.where[slot] == carB1 {
		c.p = min(c.p+max(1, c.lens[carB2]/c.lens[carB1]), c.capacity)
	} else {
		c.p = max(c.p-max(1, c.lens[carB1]/c.lens[carB2]), 0)
	}
	c.unlink(slot)
	c.ref[slot] = false
	c.pushTail(carT2, slot)
	return evicted
}

// Len returns the number of resident objects.
func (c *CAR) Len() int { return c.lens[carT1] + c.lens[carT2] }

// Cap returns the capacity.
func (c *CAR) Cap() int { return c.capacity }

// Stats returns cumulative hit and miss counts from Lookup calls.
func (c *CAR) Stats() (hits, misses int64) { return c.hits, c.misses }

// Target returns the current adaptation target p for |T1|, for tests and
// diagnostics.
func (c *CAR) Target() int { return c.p }

// Victim returns the entry under the clock hand replace would examine first,
// without mutating reference bits. The peek is approximate — a set reference
// bit would actually earn the entry a second chance — but deterministic,
// which is all the TinyLFU admission comparison needs. ok is false while the
// cache is not yet full.
//
//icn:noalloc
func (c *CAR) Victim() (int32, bool) {
	if c.capacity == 0 || c.lens[carT1]+c.lens[carT2] < c.capacity {
		return 0, false
	}
	if c.lens[carT1] >= max(1, c.p) {
		return c.keys[c.head[carT1]], true
	}
	return c.keys[c.head[carT2]], true
}

// replace runs the clock hand until a resident with a clear reference bit is
// demoted to its ghost list: referenced T1 pages earn promotion to T2,
// referenced T2 pages recirculate, and the first unreferenced page found is
// evicted (hook fired) with its id retained as a ghost.
//
//icn:noalloc
func (c *CAR) replace() {
	for {
		if c.lens[carT1] >= max(1, c.p) {
			slot := c.head[carT1]
			if !c.ref[slot] {
				c.unlink(slot)
				c.pushTail(carB1, slot)
				if c.onEvict != nil {
					c.onEvict(c.keys[slot])
				}
				return
			}
			c.ref[slot] = false
			c.unlink(slot)
			c.pushTail(carT2, slot)
		} else {
			slot := c.head[carT2]
			if !c.ref[slot] {
				c.unlink(slot)
				c.pushTail(carB2, slot)
				if c.onEvict != nil {
					c.onEvict(c.keys[slot])
				}
				return
			}
			c.ref[slot] = false
			c.unlink(slot)
			c.pushTail(carT2, slot)
		}
	}
}

// dropGhost recycles the LRU ghost (head) of the given list.
//
//icn:noalloc
func (c *CAR) dropGhost(list uint8) {
	slot := c.head[list]
	if slot < 0 {
		return
	}
	c.unlink(slot)
	delete(c.index, c.keys[slot])
	c.free = append(c.free, slot)
}

// pushTail links slot at the tail of list: behind the clock hand for T1/T2,
// the MRU end for B1/B2.
//
//icn:noalloc
func (c *CAR) pushTail(list uint8, slot int32) {
	c.where[slot] = list
	c.next[slot] = -1
	c.prev[slot] = c.tail[list]
	if c.tail[list] >= 0 {
		c.next[c.tail[list]] = slot
	}
	c.tail[list] = slot
	if c.head[list] < 0 {
		c.head[list] = slot
	}
	c.lens[list]++
}

// unlink removes slot from whichever list holds it.
//
//icn:noalloc
func (c *CAR) unlink(slot int32) {
	list := c.where[slot]
	p, n := c.prev[slot], c.next[slot]
	if p >= 0 {
		c.next[p] = n
	} else {
		c.head[list] = n
	}
	if n >= 0 {
		c.prev[n] = p
	} else {
		c.tail[list] = p
	}
	c.lens[list]--
}
