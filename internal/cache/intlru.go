package cache

// IntLRU is a compact LRU cache over int32 object ids with no values,
// designed for the simulator, which instantiates thousands of caches (one
// per router). The recency list is stored in flat prev/next slices indexed
// by slot number, so an entry costs a few words instead of a heap-allocated
// list node, and operations perform no allocation after construction.
//
// IntLRU is not safe for concurrent use.
type IntLRU struct {
	capacity int
	index    map[int32]int32 // object id -> slot
	keys     []int32         // slot -> object id
	prev     []int32         // slot -> previous (more recent) slot, -1 for head
	next     []int32         // slot -> next (less recent) slot, -1 for tail
	head     int32           // most recently used slot, -1 if empty
	tail     int32           // least recently used slot, -1 if empty
	free     []int32         // unused slots
	onEvict  func(obj int32)

	hits   int64
	misses int64
}

// NewIntLRU returns an IntLRU with the given capacity. onEvict, if non-nil,
// is invoked with each object displaced by an insertion. A zero capacity is
// permitted and caches nothing. NewIntLRU panics if capacity is negative.
func NewIntLRU(capacity int, onEvict func(obj int32)) *IntLRU {
	if capacity < 0 {
		panic("cache: negative capacity")
	}
	c := &IntLRU{
		capacity: capacity,
		index:    make(map[int32]int32, capacity),
		keys:     make([]int32, capacity),
		prev:     make([]int32, capacity),
		next:     make([]int32, capacity),
		head:     -1,
		tail:     -1,
		free:     make([]int32, capacity),
		onEvict:  onEvict,
	}
	for i := range c.free {
		c.free[i] = int32(capacity - 1 - i) // pop from the end: slots in order
	}
	return c
}

// Lookup reports whether obj is cached, marking it most recently used and
// updating hit/miss statistics.
//
//icn:noalloc
func (c *IntLRU) Lookup(obj int32) bool {
	slot, ok := c.index[obj]
	if !ok {
		c.misses++
		return false
	}
	c.hits++
	c.moveToFront(slot)
	return true
}

// Contains reports whether obj is cached without side effects.
//
//icn:noalloc
func (c *IntLRU) Contains(obj int32) bool {
	_, ok := c.index[obj]
	return ok
}

// Insert adds obj, marking it most recently used. Inserting a present object
// only refreshes recency. It returns true if another object was evicted.
//
//icn:noalloc
func (c *IntLRU) Insert(obj int32) (evicted bool) {
	if c.capacity == 0 {
		return false
	}
	if slot, ok := c.index[obj]; ok {
		c.moveToFront(slot)
		return false
	}
	if len(c.free) == 0 {
		c.evictTail()
		evicted = true
	}
	slot := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.keys[slot] = obj
	c.index[obj] = slot
	c.pushFront(slot)
	return evicted
}

// Remove deletes obj, reporting whether it was present. The eviction hook is
// not invoked.
func (c *IntLRU) Remove(obj int32) bool {
	slot, ok := c.index[obj]
	if !ok {
		return false
	}
	c.unlink(slot)
	delete(c.index, obj)
	c.free = append(c.free, slot)
	return true
}

// Len returns the number of cached objects.
func (c *IntLRU) Len() int { return len(c.index) }

// Victim returns the object an insertion of an absent object would evict —
// the LRU tail — without mutating any state. ok is false while the cache has
// free slots (no insertion evicts) or is empty.
//
//icn:noalloc
func (c *IntLRU) Victim() (int32, bool) {
	if len(c.free) > 0 || c.tail < 0 {
		return 0, false
	}
	return c.keys[c.tail], true
}

// Cap returns the capacity.
func (c *IntLRU) Cap() int { return c.capacity }

// Stats returns cumulative hit and miss counts from Lookup calls.
func (c *IntLRU) Stats() (hits, misses int64) { return c.hits, c.misses }

// Keys returns cached objects from most to least recently used.
func (c *IntLRU) Keys() []int32 {
	out := make([]int32, 0, len(c.index))
	for s := c.head; s >= 0; s = c.next[s] {
		out = append(out, c.keys[s])
	}
	return out
}

//icn:noalloc
func (c *IntLRU) pushFront(slot int32) {
	c.prev[slot] = -1
	c.next[slot] = c.head
	if c.head >= 0 {
		c.prev[c.head] = slot
	}
	c.head = slot
	if c.tail < 0 {
		c.tail = slot
	}
}

//icn:noalloc
func (c *IntLRU) unlink(slot int32) {
	p, n := c.prev[slot], c.next[slot]
	if p >= 0 {
		c.next[p] = n
	} else {
		c.head = n
	}
	if n >= 0 {
		c.prev[n] = p
	} else {
		c.tail = p
	}
}

//icn:noalloc
func (c *IntLRU) moveToFront(slot int32) {
	if c.head == slot {
		return
	}
	c.unlink(slot)
	c.pushFront(slot)
}

//icn:noalloc
func (c *IntLRU) evictTail() {
	slot := c.tail
	if slot < 0 {
		return
	}
	obj := c.keys[slot]
	c.unlink(slot)
	delete(c.index, obj)
	c.free = append(c.free, slot)
	if c.onEvict != nil {
		c.onEvict(obj)
	}
}
