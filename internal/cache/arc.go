package cache

// ARC is an Adaptive Replacement Cache (Megiddo & Modha, FAST'03) over int32
// object ids. It balances recency against frequency online: residents live in
// T1 (seen once recently) or T2 (seen at least twice), and two ghost lists
// B1/B2 remember recently evicted ids so the adaptation target p — the
// desired size of T1 — learns from misses that a larger recency or frequency
// partition would have caught. Sequential scans pollute only T1, leaving the
// frequent working set in T2 intact, which is exactly the failure mode of
// plain LRU under ICN router workloads.
//
// Layout follows IntLRU: all four lists share flat prev/next/keys slot arrays
// (2*capacity slots — residents plus ghosts), a single id->slot map indexes
// both, and ghost entries cost the same few words as residents. Operations
// perform no allocation after construction.
//
// ARC is not safe for concurrent use.
type ARC struct {
	capacity int
	p        int // adaptation target for |T1|, in [0, capacity]

	index map[int32]int32 // object id -> slot (resident or ghost)
	keys  []int32         // slot -> object id
	where []uint8         // slot -> list (arcT1..arcB2)
	prev  []int32         // slot -> toward head (MRU), -1 at head
	next  []int32         // slot -> toward tail (LRU), -1 at tail
	head  [4]int32        // per-list MRU slot, -1 if empty
	tail  [4]int32        // per-list LRU slot, -1 if empty
	lens  [4]int
	free  []int32 // unused slots

	onEvict EvictFunc

	hits   int64
	misses int64
}

// The four ARC lists. Residents have where <= arcT2.
const (
	arcT1 = uint8(iota) // resident, seen once recently
	arcT2               // resident, seen at least twice
	arcB1               // ghost of a T1 eviction
	arcB2               // ghost of a T2 eviction
)

// NewARC returns an ARC with the given capacity. onEvict, if non-nil, is
// invoked with each object displaced from residency (ghost recycling is
// silent). A zero capacity is permitted and caches nothing. NewARC panics if
// capacity is negative.
func NewARC(capacity int, onEvict EvictFunc) *ARC {
	if capacity < 0 {
		panic("cache: negative capacity")
	}
	slots := 2 * capacity
	c := &ARC{
		capacity: capacity,
		index:    make(map[int32]int32, slots),
		keys:     make([]int32, slots),
		where:    make([]uint8, slots),
		prev:     make([]int32, slots),
		next:     make([]int32, slots),
		head:     [4]int32{-1, -1, -1, -1},
		tail:     [4]int32{-1, -1, -1, -1},
		free:     make([]int32, slots),
		onEvict:  onEvict,
	}
	for i := range c.free {
		c.free[i] = int32(slots - 1 - i) // pop from the end: slots in order
	}
	return c
}

// Lookup reports whether obj is resident, promoting a hit to the MRU end of
// T2 and updating hit/miss statistics. Ghost entries are misses; their
// adaptation happens on the subsequent Insert.
//
//icn:noalloc
func (c *ARC) Lookup(obj int32) bool {
	if slot, ok := c.index[obj]; ok && c.where[slot] <= arcT2 {
		c.hits++
		c.unlink(slot)
		c.push(arcT2, slot)
		return true
	}
	c.misses++
	return false
}

// Contains reports whether obj is resident without side effects.
//
//icn:noalloc
func (c *ARC) Contains(obj int32) bool {
	slot, ok := c.index[obj]
	return ok && c.where[slot] <= arcT2
}

// Insert admits obj after a miss, running the four ARC cases: a resident
// insert refreshes to T2, a ghost hit adapts p and resurrects the entry into
// T2, and a brand-new object lands at the MRU end of T1, evicting through
// replace as needed. It reports whether a resident was evicted.
//
//icn:noalloc
func (c *ARC) Insert(obj int32) bool {
	if c.capacity == 0 {
		return false
	}
	if slot, ok := c.index[obj]; ok {
		switch c.where[slot] {
		case arcT1, arcT2:
			c.unlink(slot)
			c.push(arcT2, slot)
			return false
		case arcB1:
			// A larger T1 would have kept this object: grow p.
			c.p = min(c.p+max(1, c.lens[arcB2]/c.lens[arcB1]), c.capacity)
			evicted := c.replace(false)
			c.unlink(slot)
			c.push(arcT2, slot)
			return evicted
		default: // arcB2
			// A larger T2 would have kept it: shrink p.
			c.p = max(c.p-max(1, c.lens[arcB1]/c.lens[arcB2]), 0)
			evicted := c.replace(true)
			c.unlink(slot)
			c.push(arcT2, slot)
			return evicted
		}
	}
	// Case IV: obj is entirely new.
	evicted := false
	if l1 := c.lens[arcT1] + c.lens[arcB1]; l1 == c.capacity {
		if c.lens[arcT1] < c.capacity {
			c.dropGhost(arcB1)
			evicted = c.replace(false)
		} else {
			// B1 is empty and T1 fills the cache: evict T1's LRU outright.
			slot := c.tail[arcT1]
			victim := c.keys[slot]
			c.unlink(slot)
			delete(c.index, victim)
			c.free = append(c.free, slot)
			evicted = true
			if c.onEvict != nil {
				c.onEvict(victim)
			}
		}
	} else {
		total := c.lens[arcT1] + c.lens[arcT2] + c.lens[arcB1] + c.lens[arcB2]
		if total >= c.capacity {
			if total == 2*c.capacity {
				c.dropGhost(arcB2)
			}
			evicted = c.replace(false)
		}
	}
	slot := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.keys[slot] = obj
	c.index[obj] = slot
	c.push(arcT1, slot)
	return evicted
}

// Len returns the number of resident objects.
func (c *ARC) Len() int { return c.lens[arcT1] + c.lens[arcT2] }

// Cap returns the capacity.
func (c *ARC) Cap() int { return c.capacity }

// Stats returns cumulative hit and miss counts from Lookup calls.
func (c *ARC) Stats() (hits, misses int64) { return c.hits, c.misses }

// Target returns the current adaptation target p for |T1|, for tests and
// diagnostics.
func (c *ARC) Target() int { return c.p }

// Victim returns the resident that replace would demote on the next
// brand-new insertion, without mutating any state. ok is false while the
// cache is not yet full.
//
//icn:noalloc
func (c *ARC) Victim() (int32, bool) {
	if c.capacity == 0 || c.lens[arcT1]+c.lens[arcT2] < c.capacity {
		return 0, false
	}
	if (c.lens[arcT1] >= 1 && c.lens[arcT1] > c.p) || c.lens[arcT2] == 0 {
		return c.keys[c.tail[arcT1]], true
	}
	return c.keys[c.tail[arcT2]], true
}

// replace demotes one resident to its ghost list per the ARC rule, firing the
// eviction hook, and reports whether it did (false only while the cache is
// not yet full, when no eviction is needed).
//
//icn:noalloc
func (c *ARC) replace(inB2 bool) bool {
	if c.lens[arcT1]+c.lens[arcT2] < c.capacity {
		return false
	}
	useT1 := c.lens[arcT1] >= 1 && (c.lens[arcT1] > c.p || (inB2 && c.lens[arcT1] == c.p))
	if !useT1 && c.lens[arcT2] == 0 {
		useT1 = true // defensive: never demote from an empty T2
	}
	var slot int32
	if useT1 {
		slot = c.tail[arcT1]
		c.unlink(slot)
		c.push(arcB1, slot)
	} else {
		slot = c.tail[arcT2]
		c.unlink(slot)
		c.push(arcB2, slot)
	}
	if c.onEvict != nil {
		c.onEvict(c.keys[slot])
	}
	return true
}

// dropGhost recycles the LRU ghost of the given list.
//
//icn:noalloc
func (c *ARC) dropGhost(list uint8) {
	slot := c.tail[list]
	if slot < 0 {
		return
	}
	c.unlink(slot)
	delete(c.index, c.keys[slot])
	c.free = append(c.free, slot)
}

// push links slot at the head (MRU end) of list.
//
//icn:noalloc
func (c *ARC) push(list uint8, slot int32) {
	c.where[slot] = list
	c.prev[slot] = -1
	c.next[slot] = c.head[list]
	if c.head[list] >= 0 {
		c.prev[c.head[list]] = slot
	}
	c.head[list] = slot
	if c.tail[list] < 0 {
		c.tail[list] = slot
	}
	c.lens[list]++
}

// unlink removes slot from whichever list holds it.
//
//icn:noalloc
func (c *ARC) unlink(slot int32) {
	list := c.where[slot]
	p, n := c.prev[slot], c.next[slot]
	if p >= 0 {
		c.next[p] = n
	} else {
		c.head[list] = n
	}
	if n >= 0 {
		c.prev[n] = p
	} else {
		c.tail[list] = p
	}
	c.lens[list]--
}
