package cache

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
)

// Snapshotter is the serialization half of the policy zoo, backing the
// simulator's crash-safe checkpoint/resume (internal/checkpoint). Every
// policy serializes its complete behavioral state — replacement order,
// adaptation targets, reference bits, ghost lists, frequency sketches, and
// hit/miss statistics — such that a restored policy is observationally
// indistinguishable from the original: any future sequence of
// Lookup/Contains/Insert calls produces identical results and identical
// eviction sequences. Physical slot numbers and map layout are NOT part of
// the contract; restore rebuilds them, which is valid precisely because no
// Policy method exposes them.
//
// AppendState appends the policy's state to buf and returns the extended
// slice. RestoreState consumes one state image from the front of data and
// returns the remainder; it must be called on a freshly constructed policy
// of identical capacity, and fails (leaving the policy unusable) on
// truncated, corrupt, or mismatched input. Restore never fires the eviction
// hook.
type Snapshotter interface {
	AppendState(buf []byte) []byte
	RestoreState(data []byte) (rest []byte, err error)
}

// ErrCorruptSnapshot reports a truncated, tampered, or mismatched policy
// state image.
var ErrCorruptSnapshot = errors.New("cache: corrupt policy snapshot")

// Per-policy snapshot tags: a one-byte header guarding against restoring a
// blob into the wrong policy type.
const (
	snapLRU = byte(iota + 1)
	snapLFU
	snapARC
	snapCAR
	snapTinyLFU
	snapSizedLRU
)

func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }
func appendVarint(buf []byte, v int64) []byte   { return binary.AppendVarint(buf, v) }

func readUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, ErrCorruptSnapshot
	}
	return v, data[n:], nil
}

func readVarint(data []byte) (int64, []byte, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, ErrCorruptSnapshot
	}
	return v, data[n:], nil
}

func readKey(data []byte) (int32, []byte, error) {
	v, rest, err := readVarint(data)
	if err != nil {
		return 0, nil, err
	}
	if v != int64(int32(v)) {
		return 0, nil, fmt.Errorf("%w: key %d overflows int32", ErrCorruptSnapshot, v)
	}
	return int32(v), rest, nil
}

func appendSnapHeader(buf []byte, tag byte, capacity int) []byte {
	buf = append(buf, tag)
	return appendUvarint(buf, uint64(capacity))
}

func readSnapHeader(data []byte, tag byte, capacity int) ([]byte, error) {
	if len(data) == 0 || data[0] != tag {
		return nil, fmt.Errorf("%w: wrong policy tag", ErrCorruptSnapshot)
	}
	c, rest, err := readUvarint(data[1:])
	if err != nil {
		return nil, err
	}
	if c != uint64(capacity) {
		return nil, fmt.Errorf("%w: capacity %d, snapshot has %d", ErrCorruptSnapshot, capacity, c)
	}
	return rest, nil
}

// readCount reads an element count that must fit in limit entries and, at
// minBytes bytes per element, in the remaining input — rejecting corrupt
// lengths before any allocation is sized by them.
func readCount(data []byte, limit int, minBytes int) (int, []byte, error) {
	n, rest, err := readUvarint(data)
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(limit) || int(n)*minBytes > len(rest) {
		return 0, nil, fmt.Errorf("%w: count %d exceeds capacity or input", ErrCorruptSnapshot, n)
	}
	return int(n), rest, nil
}

// Compile-time conformance: the whole zoo is snapshottable.
var (
	_ Snapshotter = (*IntLRU)(nil)
	_ Snapshotter = (*IntLFU)(nil)
	_ Snapshotter = (*ARC)(nil)
	_ Snapshotter = (*CAR)(nil)
	_ Snapshotter = (*TinyLFU)(nil)
	_ Snapshotter = (*SizedIntLRU)(nil)
)

// AppendState serializes the LRU: statistics, then resident keys in
// MRU-to-LRU order.
func (c *IntLRU) AppendState(buf []byte) []byte {
	buf = appendSnapHeader(buf, snapLRU, c.capacity)
	buf = appendVarint(buf, c.hits)
	buf = appendVarint(buf, c.misses)
	buf = appendUvarint(buf, uint64(len(c.index)))
	for s := c.head; s >= 0; s = c.next[s] {
		buf = appendVarint(buf, int64(c.keys[s]))
	}
	return buf
}

// RestoreState rebuilds the recency order by re-inserting the keys from the
// LRU end, so the freshly constructed cache ends in the serialized order.
func (c *IntLRU) RestoreState(data []byte) ([]byte, error) {
	rest, err := readSnapHeader(data, snapLRU, c.capacity)
	if err != nil {
		return nil, err
	}
	if c.Len() != 0 {
		return nil, errors.New("cache: IntLRU.RestoreState on a non-empty cache")
	}
	if c.hits, rest, err = readVarint(rest); err != nil {
		return nil, err
	}
	if c.misses, rest, err = readVarint(rest); err != nil {
		return nil, err
	}
	n, rest, err := readCount(rest, c.capacity, 1)
	if err != nil {
		return nil, err
	}
	keys := make([]int32, n)
	for i := range keys {
		if keys[i], rest, err = readKey(rest); err != nil {
			return nil, err
		}
	}
	for i := n - 1; i >= 0; i-- {
		c.Insert(keys[i])
		if c.Len() != n-i {
			return nil, fmt.Errorf("%w: duplicate key %d", ErrCorruptSnapshot, keys[i])
		}
	}
	return rest, nil
}

// AppendState serializes the LFU: statistics, then each frequency bucket in
// ascending-frequency order with its entries most-recently-touched first.
func (c *IntLFU) AppendState(buf []byte) []byte {
	l := c.c
	buf = appendSnapHeader(buf, snapLFU, l.capacity)
	buf = appendVarint(buf, l.hits)
	buf = appendVarint(buf, l.misses)
	buf = appendUvarint(buf, uint64(l.buckets.Len()))
	for be := l.buckets.Front(); be != nil; be = be.Next() {
		b := be.Value.(*lfuBucket[int32, struct{}])
		buf = appendVarint(buf, b.freq)
		buf = appendUvarint(buf, uint64(b.entries.Len()))
		for ee := b.entries.Front(); ee != nil; ee = ee.Next() {
			buf = appendVarint(buf, int64(ee.Value.(*lfuEntry[int32, struct{}]).key))
		}
	}
	return buf
}

// RestoreState rebuilds the bucket structure directly: buckets must arrive
// strictly ascending in frequency and non-empty, exactly as serialized.
func (c *IntLFU) RestoreState(data []byte) ([]byte, error) {
	l := c.c
	rest, err := readSnapHeader(data, snapLFU, l.capacity)
	if err != nil {
		return nil, err
	}
	if l.Len() != 0 {
		return nil, errors.New("cache: IntLFU.RestoreState on a non-empty cache")
	}
	if l.hits, rest, err = readVarint(rest); err != nil {
		return nil, err
	}
	if l.misses, rest, err = readVarint(rest); err != nil {
		return nil, err
	}
	nb, rest, err := readCount(rest, l.capacity, 2)
	if err != nil {
		return nil, err
	}
	total := 0
	prevFreq := int64(0)
	for i := 0; i < nb; i++ {
		var freq int64
		if freq, rest, err = readVarint(rest); err != nil {
			return nil, err
		}
		if freq <= prevFreq || freq < 1 {
			return nil, fmt.Errorf("%w: bucket frequencies not ascending", ErrCorruptSnapshot)
		}
		prevFreq = freq
		var ne int
		if ne, rest, err = readCount(rest, l.capacity-total, 1); err != nil {
			return nil, err
		}
		if ne == 0 {
			return nil, fmt.Errorf("%w: empty frequency bucket", ErrCorruptSnapshot)
		}
		total += ne
		b := &lfuBucket[int32, struct{}]{freq: freq, entries: list.New()}
		be := l.buckets.PushBack(b)
		for j := 0; j < ne; j++ {
			var key int32
			if key, rest, err = readKey(rest); err != nil {
				return nil, err
			}
			if _, dup := l.entries[key]; dup {
				return nil, fmt.Errorf("%w: duplicate key %d", ErrCorruptSnapshot, key)
			}
			e := &lfuEntry[int32, struct{}]{key: key, bucket: be}
			e.self = b.entries.PushBack(e)
			l.entries[key] = e
		}
	}
	return rest, nil
}

// AppendState serializes ARC: the adaptation target p, statistics, then all
// four lists (T1, T2, B1, B2) with keys in MRU-to-LRU order.
func (c *ARC) AppendState(buf []byte) []byte {
	buf = appendSnapHeader(buf, snapARC, c.capacity)
	buf = appendVarint(buf, int64(c.p))
	buf = appendVarint(buf, c.hits)
	buf = appendVarint(buf, c.misses)
	for li := arcT1; li <= arcB2; li++ {
		buf = appendUvarint(buf, uint64(c.lens[li]))
		for s := c.head[li]; s >= 0; s = c.next[s] {
			buf = appendVarint(buf, int64(c.keys[s]))
		}
	}
	return buf
}

// RestoreState rebuilds the four lists into fresh slots, enforcing ARC's
// structural invariants (|T1|+|T2| <= c, |T1|+|B1| <= c, total <= 2c).
func (c *ARC) RestoreState(data []byte) ([]byte, error) {
	rest, err := readSnapHeader(data, snapARC, c.capacity)
	if err != nil {
		return nil, err
	}
	if len(c.index) != 0 {
		return nil, errors.New("cache: ARC.RestoreState on a non-empty cache")
	}
	var p int64
	if p, rest, err = readVarint(rest); err != nil {
		return nil, err
	}
	if p < 0 || p > int64(c.capacity) {
		return nil, fmt.Errorf("%w: adaptation target %d outside [0, %d]", ErrCorruptSnapshot, p, c.capacity)
	}
	c.p = int(p)
	if c.hits, rest, err = readVarint(rest); err != nil {
		return nil, err
	}
	if c.misses, rest, err = readVarint(rest); err != nil {
		return nil, err
	}
	var counts [4]int
	var keys [4][]int32
	for li := arcT1; li <= arcB2; li++ {
		if counts[li], rest, err = readCount(rest, 2*c.capacity, 1); err != nil {
			return nil, err
		}
		keys[li] = make([]int32, counts[li])
		for i := range keys[li] {
			if keys[li][i], rest, err = readKey(rest); err != nil {
				return nil, err
			}
		}
	}
	if counts[arcT1]+counts[arcT2] > c.capacity ||
		counts[arcT1]+counts[arcB1] > c.capacity ||
		counts[arcT1]+counts[arcT2]+counts[arcB1]+counts[arcB2] > 2*c.capacity {
		return nil, fmt.Errorf("%w: ARC list sizes violate invariants", ErrCorruptSnapshot)
	}
	for li := arcT1; li <= arcB2; li++ {
		// push prepends at the head, so feeding keys LRU-first reproduces
		// the serialized MRU-to-LRU order.
		for i := len(keys[li]) - 1; i >= 0; i-- {
			k := keys[li][i]
			if _, dup := c.index[k]; dup {
				return nil, fmt.Errorf("%w: duplicate key %d", ErrCorruptSnapshot, k)
			}
			slot := c.free[len(c.free)-1]
			c.free = c.free[:len(c.free)-1]
			c.keys[slot] = k
			c.index[k] = slot
			c.push(li, slot)
		}
	}
	return rest, nil
}

// AppendState serializes CAR: the adaptation target p, statistics, then all
// four lists in clock order (head to tail), with reference bits for the
// resident clocks T1/T2.
func (c *CAR) AppendState(buf []byte) []byte {
	buf = appendSnapHeader(buf, snapCAR, c.capacity)
	buf = appendVarint(buf, int64(c.p))
	buf = appendVarint(buf, c.hits)
	buf = appendVarint(buf, c.misses)
	for li := carT1; li <= carB2; li++ {
		buf = appendUvarint(buf, uint64(c.lens[li]))
		for s := c.head[li]; s >= 0; s = c.next[s] {
			buf = appendVarint(buf, int64(c.keys[s]))
			if li <= carT2 {
				ref := byte(0)
				if c.ref[s] {
					ref = 1
				}
				buf = append(buf, ref)
			}
		}
	}
	return buf
}

// RestoreState rebuilds the clocks into fresh slots. pushTail appends, so
// feeding keys in serialized head-to-tail order reproduces each list.
func (c *CAR) RestoreState(data []byte) ([]byte, error) {
	rest, err := readSnapHeader(data, snapCAR, c.capacity)
	if err != nil {
		return nil, err
	}
	if len(c.index) != 0 {
		return nil, errors.New("cache: CAR.RestoreState on a non-empty cache")
	}
	var p int64
	if p, rest, err = readVarint(rest); err != nil {
		return nil, err
	}
	if p < 0 || p > int64(c.capacity) {
		return nil, fmt.Errorf("%w: adaptation target %d outside [0, %d]", ErrCorruptSnapshot, p, c.capacity)
	}
	c.p = int(p)
	if c.hits, rest, err = readVarint(rest); err != nil {
		return nil, err
	}
	if c.misses, rest, err = readVarint(rest); err != nil {
		return nil, err
	}
	var resident int
	for li := carT1; li <= carB2; li++ {
		var n int
		if n, rest, err = readCount(rest, 2*c.capacity, 1); err != nil {
			return nil, err
		}
		if li <= carT2 {
			resident += n
			if resident > c.capacity {
				return nil, fmt.Errorf("%w: CAR resident count exceeds capacity", ErrCorruptSnapshot)
			}
		} else if len(c.index)+n > 2*c.capacity {
			return nil, fmt.Errorf("%w: CAR total count exceeds 2x capacity", ErrCorruptSnapshot)
		}
		for i := 0; i < n; i++ {
			var k int32
			if k, rest, err = readKey(rest); err != nil {
				return nil, err
			}
			ref := false
			if li <= carT2 {
				if len(rest) == 0 || rest[0] > 1 {
					return nil, ErrCorruptSnapshot
				}
				ref = rest[0] == 1
				rest = rest[1:]
			}
			if _, dup := c.index[k]; dup {
				return nil, fmt.Errorf("%w: duplicate key %d", ErrCorruptSnapshot, k)
			}
			slot := c.free[len(c.free)-1]
			c.free = c.free[:len(c.free)-1]
			c.keys[slot] = k
			c.index[k] = slot
			c.ref[slot] = ref
			c.pushTail(li, slot)
		}
	}
	return rest, nil
}

// AppendState serializes the admission filter — sketch words and sample
// progress — followed by the inner policy's state. It panics if the inner
// policy does not implement Snapshotter; every zoo policy does.
func (c *TinyLFU) AppendState(buf []byte) []byte {
	inner, ok := c.inner.(Snapshotter)
	if !ok {
		panic(fmt.Sprintf("cache: TinyLFU inner policy %T does not implement Snapshotter", c.inner))
	}
	buf = appendSnapHeader(buf, snapTinyLFU, c.capacity)
	buf = appendVarint(buf, int64(c.ops))
	buf = appendUvarint(buf, uint64(len(c.table)))
	for _, w := range c.table {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return inner.AppendState(buf)
}

// RestoreState restores the sketch in place and delegates the remainder to
// the inner policy.
func (c *TinyLFU) RestoreState(data []byte) ([]byte, error) {
	inner, ok := c.inner.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("cache: TinyLFU inner policy %T does not implement Snapshotter", c.inner)
	}
	rest, err := readSnapHeader(data, snapTinyLFU, c.capacity)
	if err != nil {
		return nil, err
	}
	var ops int64
	if ops, rest, err = readVarint(rest); err != nil {
		return nil, err
	}
	if ops < 0 || ops > int64(c.sample) {
		return nil, fmt.Errorf("%w: sketch sample count %d outside [0, %d]", ErrCorruptSnapshot, ops, c.sample)
	}
	c.ops = int(ops)
	words, rest, err := readUvarint(rest)
	if err != nil {
		return nil, err
	}
	if words != uint64(len(c.table)) {
		return nil, fmt.Errorf("%w: sketch has %d words, want %d", ErrCorruptSnapshot, words, len(c.table))
	}
	if len(rest) < 8*len(c.table) {
		return nil, ErrCorruptSnapshot
	}
	for i := range c.table {
		c.table[i] = binary.LittleEndian.Uint64(rest[8*i:])
	}
	rest = rest[8*len(c.table):]
	return inner.RestoreState(rest)
}

// AppendState serializes the byte-budget LRU: statistics, then entries in
// MRU-to-LRU order with their sizes.
func (c *SizedIntLRU) AppendState(buf []byte) []byte {
	buf = append(buf, snapSizedLRU)
	buf = appendVarint(buf, c.budget)
	buf = appendVarint(buf, c.hits)
	buf = appendVarint(buf, c.misses)
	buf = appendUvarint(buf, uint64(len(c.entries)))
	for e := c.head; e != nil; e = e.next {
		buf = appendVarint(buf, int64(e.obj))
		buf = appendVarint(buf, e.size)
	}
	return buf
}

// RestoreState rebuilds the recency order by re-inserting from the LRU end.
func (c *SizedIntLRU) RestoreState(data []byte) ([]byte, error) {
	if len(data) == 0 || data[0] != snapSizedLRU {
		return nil, fmt.Errorf("%w: wrong policy tag", ErrCorruptSnapshot)
	}
	if c.Len() != 0 {
		return nil, errors.New("cache: SizedIntLRU.RestoreState on a non-empty cache")
	}
	budget, rest, err := readVarint(data[1:])
	if err != nil {
		return nil, err
	}
	if budget != c.budget {
		return nil, fmt.Errorf("%w: budget %d, snapshot has %d", ErrCorruptSnapshot, c.budget, budget)
	}
	if c.hits, rest, err = readVarint(rest); err != nil {
		return nil, err
	}
	if c.misses, rest, err = readVarint(rest); err != nil {
		return nil, err
	}
	n, rest, err := readCount(rest, len(rest), 2)
	if err != nil {
		return nil, err
	}
	objs := make([]int32, n)
	sizes := make([]int64, n)
	for i := 0; i < n; i++ {
		if objs[i], rest, err = readKey(rest); err != nil {
			return nil, err
		}
		if sizes[i], rest, err = readVarint(rest); err != nil {
			return nil, err
		}
	}
	for i := n - 1; i >= 0; i-- {
		if !c.Insert(objs[i], sizes[i]) || c.Len() != n-i {
			return nil, fmt.Errorf("%w: entries do not fit the budget", ErrCorruptSnapshot)
		}
	}
	return rest, nil
}
