package cache

// SizedIntLRU is an LRU cache over int32 object ids with a byte budget
// rather than an entry count, used for the paper's heterogeneous object-size
// sensitivity analysis (§5.1). Inserting an object evicts from the LRU tail
// until the object fits. Objects larger than the whole budget are rejected.
//
// SizedIntLRU is not safe for concurrent use.
type SizedIntLRU struct {
	budget  int64
	used    int64
	entries map[int32]*sizedEntry
	head    *sizedEntry
	tail    *sizedEntry
	onEvict func(obj int32)

	hits   int64
	misses int64
}

type sizedEntry struct {
	obj        int32
	size       int64
	prev, next *sizedEntry
}

// NewSizedIntLRU returns a SizedIntLRU with the given byte budget. onEvict,
// if non-nil, is invoked with each object displaced by an insertion.
// It panics if budget is negative; a zero budget caches nothing.
func NewSizedIntLRU(budget int64, onEvict func(obj int32)) *SizedIntLRU {
	if budget < 0 {
		panic("cache: negative budget")
	}
	return &SizedIntLRU{
		budget:  budget,
		entries: make(map[int32]*sizedEntry),
		onEvict: onEvict,
	}
}

// Lookup reports whether obj is cached, marking it most recently used.
func (c *SizedIntLRU) Lookup(obj int32) bool {
	e, ok := c.entries[obj]
	if !ok {
		c.misses++
		return false
	}
	c.hits++
	c.moveToFront(e)
	return true
}

// Contains reports whether obj is cached without side effects.
func (c *SizedIntLRU) Contains(obj int32) bool {
	_, ok := c.entries[obj]
	return ok
}

// Insert adds obj with the given size, evicting least-recently-used objects
// until it fits. It reports whether the object is cached on return (false
// only when size exceeds the whole budget, or size is negative). Inserting a
// present object refreshes recency and updates its size.
func (c *SizedIntLRU) Insert(obj int32, size int64) bool {
	if size < 0 || size > c.budget {
		return false
	}
	if e, ok := c.entries[obj]; ok {
		c.used += size - e.size
		e.size = size
		c.moveToFront(e)
		c.evictUntilFits()
		return true
	}
	c.used += size
	e := &sizedEntry{obj: obj, size: size}
	c.entries[obj] = e
	c.pushFront(e)
	c.evictUntilFits()
	return true
}

// Remove deletes obj, reporting whether it was present. The eviction hook is
// not invoked.
func (c *SizedIntLRU) Remove(obj int32) bool {
	e, ok := c.entries[obj]
	if !ok {
		return false
	}
	c.unlink(e)
	delete(c.entries, obj)
	c.used -= e.size
	return true
}

// Len returns the number of cached objects.
func (c *SizedIntLRU) Len() int { return len(c.entries) }

// Used returns the bytes currently cached.
func (c *SizedIntLRU) Used() int64 { return c.used }

// Budget returns the byte budget.
func (c *SizedIntLRU) Budget() int64 { return c.budget }

// Stats returns cumulative hit and miss counts from Lookup calls.
func (c *SizedIntLRU) Stats() (hits, misses int64) { return c.hits, c.misses }

func (c *SizedIntLRU) evictUntilFits() {
	for c.used > c.budget && c.tail != nil {
		victim := c.tail
		// Never evict the entry just made head: if head == tail there is a
		// single entry which must fit (Insert rejects oversize objects).
		c.unlink(victim)
		delete(c.entries, victim.obj)
		c.used -= victim.size
		if c.onEvict != nil {
			c.onEvict(victim.obj)
		}
	}
}

func (c *SizedIntLRU) pushFront(e *sizedEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *SizedIntLRU) unlink(e *sizedEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *SizedIntLRU) moveToFront(e *sizedEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
