package cache

// IntLFU adapts the generic frequency-bucket LFU to the Policy interface for
// int32 object ids. Unlike the rest of the zoo it allocates on its hot path
// (container/list nodes per bucket move), so it is deliberately not annotated
// //icn:noalloc and is excluded from the serve-path allocation gate; it is
// kept as the paper's §3 comparison policy, not a line-rate candidate.
//
// IntLFU is not safe for concurrent use.
type IntLFU struct {
	c *LFU[int32, struct{}]
}

// NewIntLFU returns an IntLFU with the given capacity. onEvict, if non-nil,
// is invoked with each object displaced by an insertion. It panics if
// capacity is negative; zero capacity caches nothing.
func NewIntLFU(capacity int, onEvict EvictFunc) *IntLFU {
	var hook func(int32, struct{})
	if onEvict != nil {
		hook = func(k int32, _ struct{}) { onEvict(k) }
	}
	return &IntLFU{c: NewLFU[int32, struct{}](capacity, hook)}
}

// Lookup reports whether obj is cached, incrementing its access frequency.
func (c *IntLFU) Lookup(obj int32) bool {
	_, ok := c.c.Get(obj)
	return ok
}

// Contains reports whether obj is cached without side effects.
func (c *IntLFU) Contains(obj int32) bool { return c.c.Contains(obj) }

// Insert adds obj at frequency 1 (or bumps a present object), reporting
// whether another object was evicted to make room.
func (c *IntLFU) Insert(obj int32) bool { return c.c.Put(obj, struct{}{}) }

// Len returns the number of cached objects.
func (c *IntLFU) Len() int { return c.c.Len() }

// Cap returns the capacity.
func (c *IntLFU) Cap() int { return c.c.Cap() }

// Stats returns cumulative hit and miss counts from Lookup calls.
func (c *IntLFU) Stats() (hits, misses int64) { return c.c.Stats() }
