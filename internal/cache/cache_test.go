package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLRUBasic(t *testing.T) {
	c := NewLRU[string, int](2, nil)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v,%v want 1,true", v, ok)
	}
	// "b" is now LRU; inserting "c" must evict it.
	if evicted := c.Put("c", 3); !evicted {
		t.Fatal("Put(c) did not report eviction")
	}
	if c.Contains("b") {
		t.Fatal("b survived eviction")
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Fatalf("cache contents wrong: keys=%v", c.Keys())
	}
}

func TestLRUUpdateDoesNotEvict(t *testing.T) {
	c := NewLRU[int, int](2, nil)
	c.Put(1, 10)
	c.Put(2, 20)
	if evicted := c.Put(1, 11); evicted {
		t.Fatal("updating an existing key reported eviction")
	}
	if v, _ := c.Get(1); v != 11 {
		t.Fatalf("value not updated: %d", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUEvictionHookAndOrder(t *testing.T) {
	var evictions []int
	c := NewLRU[int, string](3, func(k int, _ string) { evictions = append(evictions, k) })
	for i := 1; i <= 5; i++ {
		c.Put(i, "x")
	}
	// 1 then 2 evicted, in that order.
	if len(evictions) != 2 || evictions[0] != 1 || evictions[1] != 2 {
		t.Fatalf("evictions = %v, want [1 2]", evictions)
	}
	keys := c.Keys()
	want := []int{5, 4, 3}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", keys, want)
		}
	}
}

func TestLRURemoveSkipsHook(t *testing.T) {
	hookCalls := 0
	c := NewLRU[int, int](2, func(int, int) { hookCalls++ })
	c.Put(1, 1)
	if !c.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if c.Remove(1) {
		t.Fatal("second Remove(1) = true")
	}
	if hookCalls != 0 {
		t.Fatalf("Remove invoked eviction hook %d times", hookCalls)
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRU[int, int](0, nil)
	if c.Put(1, 1) {
		t.Fatal("zero-capacity Put reported eviction")
	}
	if c.Contains(1) || c.Len() != 0 {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

func TestLRUPeekAndStats(t *testing.T) {
	c := NewLRU[int, int](2, nil)
	c.Put(1, 1)
	c.Put(2, 2)
	if _, ok := c.Peek(1); !ok {
		t.Fatal("Peek(1) missed")
	}
	// Peek must not refresh recency: 1 stays LRU and gets evicted.
	c.Put(3, 3)
	if c.Contains(1) {
		t.Fatal("Peek refreshed recency")
	}
	c.Get(2)
	c.Get(99)
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("Stats = %d,%d want 1,1", h, m)
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"LRU":      func() { NewLRU[int, int](-1, nil) },
		"IntLRU":   func() { NewIntLRU(-1, nil) },
		"LFU":      func() { NewLFU[int, int](-1, nil) },
		"SizedLRU": func() { NewSizedIntLRU(-1, nil) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		})
	}
}

func TestIntLRUBasic(t *testing.T) {
	var evicted []int32
	c := NewIntLRU(3, func(o int32) { evicted = append(evicted, o) })
	for i := int32(0); i < 3; i++ {
		c.Insert(i)
	}
	if !c.Lookup(0) { // 0 becomes MRU
		t.Fatal("Lookup(0) missed")
	}
	c.Insert(3) // evicts 1
	c.Insert(4) // evicts 2
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("evicted = %v, want [1 2]", evicted)
	}
	keys := c.Keys()
	want := []int32{4, 3, 0}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
	h, m := c.Stats()
	if h != 1 || m != 0 {
		t.Fatalf("Stats = %d,%d", h, m)
	}
}

func TestIntLRUReinsertRefreshes(t *testing.T) {
	c := NewIntLRU(2, nil)
	c.Insert(1)
	c.Insert(2)
	if c.Insert(1) { // refresh, no eviction
		t.Fatal("re-insert reported eviction")
	}
	c.Insert(3) // 2 is LRU now
	if c.Contains(2) || !c.Contains(1) || !c.Contains(3) {
		t.Fatalf("contents wrong: %v", c.Keys())
	}
}

func TestIntLRURemoveReusesSlot(t *testing.T) {
	c := NewIntLRU(2, nil)
	c.Insert(1)
	c.Insert(2)
	if !c.Remove(1) {
		t.Fatal("Remove(1) failed")
	}
	if c.Remove(1) {
		t.Fatal("double Remove succeeded")
	}
	// Should be able to insert two more without eviction of 2... capacity 2,
	// len 1, so inserting one object must not evict.
	if c.Insert(5) {
		t.Fatal("Insert after Remove evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestIntLRUZeroCapacity(t *testing.T) {
	c := NewIntLRU(0, nil)
	c.Insert(1)
	if c.Contains(1) || c.Len() != 0 {
		t.Fatal("zero-capacity IntLRU stored an object")
	}
	if c.Lookup(1) {
		t.Fatal("zero-capacity Lookup hit")
	}
}

// Property: IntLRU behaves identically to the generic LRU under a random
// operation stream (differential test), and never exceeds capacity.
func TestIntLRUMatchesGenericLRUQuick(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		ref := NewLRU[int32, struct{}](capacity, nil)
		got := NewIntLRU(capacity, nil)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			obj := int32(r.Intn(32))
			switch r.Intn(3) {
			case 0:
				ref.Put(obj, struct{}{})
				got.Insert(obj)
			case 1:
				_, refOK := ref.Get(obj)
				if got.Lookup(obj) != refOK {
					return false
				}
			case 2:
				if ref.Remove(obj) != got.Remove(obj) {
					return false
				}
			}
			if got.Len() != ref.Len() || got.Len() > capacity {
				return false
			}
		}
		// Final recency order must match exactly.
		rk, gk := ref.Keys(), got.Keys()
		if len(rk) != len(gk) {
			return false
		}
		for i := range rk {
			if rk[i] != gk[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLFUBasic(t *testing.T) {
	c := NewLFU[string, int](2, nil)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")
	c.Get("a") // a: freq 3, b: freq 1
	c.Put("c", 3)
	if c.Contains("b") {
		t.Fatal("b (least frequent) survived eviction")
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Fatal("wrong contents after eviction")
	}
	if f := c.Freq("a"); f != 3 {
		t.Fatalf("Freq(a) = %d, want 3", f)
	}
	if f := c.Freq("zzz"); f != 0 {
		t.Fatalf("Freq(zzz) = %d, want 0", f)
	}
}

func TestLFUTieBreaksByRecency(t *testing.T) {
	c := NewLFU[int, int](3, nil)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3) // all freq 1; LRU within bucket is 1
	c.Put(4, 4)
	if c.Contains(1) {
		t.Fatal("tie-break evicted wrong entry (1 should go first)")
	}
}

func TestLFUEvictionHookAndRemove(t *testing.T) {
	var ev []int
	c := NewLFU[int, int](1, func(k, _ int) { ev = append(ev, k) })
	c.Put(1, 1)
	c.Put(2, 2)
	if len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evictions = %v, want [1]", ev)
	}
	if !c.Remove(2) || c.Remove(2) {
		t.Fatal("Remove behaved wrongly")
	}
	if len(ev) != 1 {
		t.Fatal("Remove invoked eviction hook")
	}
}

func TestLFUZeroCapacity(t *testing.T) {
	c := NewLFU[int, int](0, nil)
	if c.Put(1, 1) {
		t.Fatal("zero-capacity Put reported eviction")
	}
	if c.Len() != 0 {
		t.Fatal("zero-capacity LFU stored an entry")
	}
}

func TestLFUUpdateValue(t *testing.T) {
	c := NewLFU[int, int](2, nil)
	c.Put(1, 10)
	c.Put(1, 11)
	if v, ok := c.Get(1); !ok || v != 11 {
		t.Fatalf("Get(1) = %v,%v want 11,true", v, ok)
	}
	// Put+Put+Get = freq 3.
	if f := c.Freq(1); f != 3 {
		t.Fatalf("Freq = %d, want 3", f)
	}
}

// Property: LFU never exceeds capacity and its stats account every Get.
func TestLFUInvariantsQuick(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		c := NewLFU[int32, struct{}](capacity, nil)
		r := rand.New(rand.NewSource(seed))
		var gets int64
		for i := 0; i < 400; i++ {
			obj := int32(r.Intn(24))
			if r.Intn(2) == 0 {
				c.Put(obj, struct{}{})
			} else {
				c.Get(obj)
				gets++
			}
			if c.Len() > capacity {
				return false
			}
		}
		h, m := c.Stats()
		return h+m == gets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSizedLRUBasic(t *testing.T) {
	var ev []int32
	c := NewSizedIntLRU(100, func(o int32) { ev = append(ev, o) })
	if !c.Insert(1, 40) || !c.Insert(2, 40) {
		t.Fatal("inserts rejected")
	}
	if c.Used() != 80 {
		t.Fatalf("Used = %d, want 80", c.Used())
	}
	c.Lookup(1)     // 1 MRU
	c.Insert(3, 40) // must evict 2
	if len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evictions = %v, want [2]", ev)
	}
	if c.Used() != 80 || c.Len() != 2 {
		t.Fatalf("Used=%d Len=%d", c.Used(), c.Len())
	}
}

func TestSizedLRURejectsOversize(t *testing.T) {
	c := NewSizedIntLRU(10, nil)
	if c.Insert(1, 11) {
		t.Fatal("oversize object accepted")
	}
	if c.Insert(2, -1) {
		t.Fatal("negative size accepted")
	}
	if !c.Insert(3, 10) {
		t.Fatal("exact-fit object rejected")
	}
}

func TestSizedLRUResizeExisting(t *testing.T) {
	c := NewSizedIntLRU(100, nil)
	c.Insert(1, 30)
	c.Insert(2, 30)
	c.Insert(1, 80) // grow 1: 2 must be evicted to fit
	if c.Contains(2) {
		t.Fatal("resize did not evict to fit")
	}
	if c.Used() != 80 {
		t.Fatalf("Used = %d, want 80", c.Used())
	}
}

func TestSizedLRURemove(t *testing.T) {
	c := NewSizedIntLRU(100, nil)
	c.Insert(1, 60)
	if !c.Remove(1) || c.Remove(1) {
		t.Fatal("Remove misbehaved")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatalf("Used=%d Len=%d after Remove", c.Used(), c.Len())
	}
}

// Property: Used() always equals the sum of resident sizes and never exceeds
// the budget.
func TestSizedLRUAccountingQuick(t *testing.T) {
	f := func(seed int64) bool {
		const budget = 256
		sizes := map[int32]int64{}
		c := NewSizedIntLRU(budget, func(o int32) { delete(sizes, o) })
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 400; i++ {
			obj := int32(r.Intn(20))
			switch r.Intn(3) {
			case 0:
				sz := int64(r.Intn(80))
				if c.Insert(obj, sz) {
					sizes[obj] = sz
				}
			case 1:
				c.Lookup(obj)
			case 2:
				if c.Remove(obj) {
					delete(sizes, obj)
				}
			}
			var sum int64
			for _, s := range sizes {
				sum += s
			}
			if c.Used() != sum || c.Used() > budget || c.Len() != len(sizes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntLRUInsertLookup(b *testing.B) {
	c := NewIntLRU(4096, nil)
	r := rand.New(rand.NewSource(1))
	objs := make([]int32, 1<<16)
	for i := range objs {
		objs[i] = int32(r.Intn(20000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := objs[i&(1<<16-1)]
		if !c.Lookup(o) {
			c.Insert(o)
		}
	}
}

func BenchmarkGenericLRUInsertLookup(b *testing.B) {
	c := NewLRU[int32, struct{}](4096, nil)
	r := rand.New(rand.NewSource(1))
	objs := make([]int32, 1<<16)
	for i := range objs {
		objs[i] = int32(r.Intn(20000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := objs[i&(1<<16-1)]
		if _, ok := c.Get(o); !ok {
			c.Put(o, struct{}{})
		}
	}
}

func BenchmarkLFUInsertLookup(b *testing.B) {
	c := NewLFU[int32, struct{}](4096, nil)
	r := rand.New(rand.NewSource(1))
	objs := make([]int32, 1<<16)
	for i := range objs {
		objs[i] = int32(r.Intn(20000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := objs[i&(1<<16-1)]
		if _, ok := c.Get(o); !ok {
			c.Put(o, struct{}{})
		}
	}
}
