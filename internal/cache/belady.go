package cache

import "container/heap"

// BeladyHits computes the hit count of Belady's optimal offline replacement
// policy (MIN) for a single cache of the given capacity over a request
// sequence: on eviction, discard the resident object whose next use is
// farthest in the future. This is the upper bound no online policy can
// beat, used to check the paper's §3 premise that "the LRU policy performs
// near-optimally in practical scenarios".
//
// The implementation is the standard O(n log n) forward scan: precompute
// next-use indices, keep residents in a max-heap keyed by next use, and
// lazily discard stale heap entries.
func BeladyHits(seq []int32, capacity int) (hits int64) {
	if capacity <= 0 || len(seq) == 0 {
		return 0
	}
	const never = int(^uint(0) >> 1)

	// nextUse[i] = index of the next occurrence of seq[i] after i.
	nextUse := make([]int, len(seq))
	last := make(map[int32]int, capacity*2)
	for i := len(seq) - 1; i >= 0; i-- {
		if j, ok := last[seq[i]]; ok {
			nextUse[i] = j
		} else {
			nextUse[i] = never
		}
		last[seq[i]] = i
	}

	resident := make(map[int32]int, capacity) // object -> its current next use
	h := &farthestHeap{}
	for i, obj := range seq {
		if _, ok := resident[obj]; ok {
			hits++
			resident[obj] = nextUse[i]
			heap.Push(h, heapEntry{obj: obj, next: nextUse[i]})
			continue
		}
		if len(resident) >= capacity {
			// Evict the resident with the farthest (stale entries skipped)
			// next use.
			for {
				top := (*h)[0]
				cur, ok := resident[top.obj]
				if !ok || cur != top.next {
					heap.Pop(h) // stale
					continue
				}
				heap.Pop(h)
				delete(resident, top.obj)
				break
			}
		}
		resident[obj] = nextUse[i]
		heap.Push(h, heapEntry{obj: obj, next: nextUse[i]})
	}
	return hits
}

type heapEntry struct {
	obj  int32
	next int
}

// farthestHeap is a max-heap on next-use index.
type farthestHeap []heapEntry

func (h farthestHeap) Len() int           { return len(h) }
func (h farthestHeap) Less(i, j int) bool { return h[i].next > h[j].next }
func (h farthestHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *farthestHeap) Push(x any)        { *h = append(*h, x.(heapEntry)) }
func (h *farthestHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// LRUHits replays a request sequence against an IntLRU of the given
// capacity and returns the hit count, for policy comparisons against
// BeladyHits.
func LRUHits(seq []int32, capacity int) (hits int64) {
	c := NewIntLRU(capacity, nil)
	for _, obj := range seq {
		if c.Lookup(obj) {
			hits++
		} else {
			c.Insert(obj)
		}
	}
	return hits
}

// LFUHits is LRUHits for the LFU policy.
func LFUHits(seq []int32, capacity int) (hits int64) {
	c := NewLFU[int32, struct{}](capacity, nil)
	for _, obj := range seq {
		if _, ok := c.Get(obj); ok {
			hits++
		} else {
			c.Put(obj, struct{}{})
		}
	}
	return hits
}
