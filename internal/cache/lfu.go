package cache

import "container/list"

// LFU is a fixed-capacity least-frequently-used cache with O(1) operations,
// using the frequency-bucket structure of Shah et al. Ties within a
// frequency bucket break by recency (the least recently touched entry in the
// lowest-frequency bucket is evicted first). LFU is not safe for concurrent
// use.
type LFU[K comparable, V any] struct {
	capacity int
	entries  map[K]*lfuEntry[K, V]
	buckets  *list.List // of *lfuBucket, ascending frequency
	onEvict  func(K, V)

	hits   int64
	misses int64
}

type lfuBucket[K comparable, V any] struct {
	freq    int64
	entries *list.List // of *lfuEntry, front = most recently touched
}

type lfuEntry[K comparable, V any] struct {
	key    K
	value  V
	bucket *list.Element // -> lfuBucket
	self   *list.Element // position within bucket.entries
}

// NewLFU returns an LFU cache that holds at most capacity entries. onEvict,
// if non-nil, is called with each entry displaced by an insertion.
// NewLFU panics if capacity is negative; zero capacity caches nothing.
func NewLFU[K comparable, V any](capacity int, onEvict func(K, V)) *LFU[K, V] {
	if capacity < 0 {
		panic("cache: negative capacity")
	}
	return &LFU[K, V]{
		capacity: capacity,
		entries:  make(map[K]*lfuEntry[K, V], capacity),
		buckets:  list.New(),
		onEvict:  onEvict,
	}
}

// Get returns the value for key, incrementing its access frequency.
func (c *LFU[K, V]) Get(key K) (V, bool) {
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.bump(e)
		return e.value, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Contains reports whether key is cached without side effects.
func (c *LFU[K, V]) Contains(key K) bool {
	_, ok := c.entries[key]
	return ok
}

// Put inserts or updates key. A new entry starts at frequency 1; updating an
// existing entry increments its frequency. It returns true if an entry was
// displaced to make room.
func (c *LFU[K, V]) Put(key K, value V) (evicted bool) {
	if c.capacity == 0 {
		return false
	}
	if e, ok := c.entries[key]; ok {
		e.value = value
		c.bump(e)
		return false
	}
	if len(c.entries) >= c.capacity {
		c.evictMin()
		evicted = true
	}
	e := &lfuEntry[K, V]{key: key, value: value}
	c.entries[key] = e
	b := c.bucketWithFreq(1, nil)
	e.bucket = b
	e.self = b.Value.(*lfuBucket[K, V]).entries.PushFront(e)
	return evicted
}

// Remove deletes key, reporting whether it was present. The eviction hook is
// not invoked.
func (c *LFU[K, V]) Remove(key K) bool {
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	c.detach(e)
	delete(c.entries, key)
	return true
}

// Len returns the number of cached entries.
func (c *LFU[K, V]) Len() int { return len(c.entries) }

// Cap returns the capacity.
func (c *LFU[K, V]) Cap() int { return c.capacity }

// Stats returns cumulative hit and miss counts from Get calls.
func (c *LFU[K, V]) Stats() (hits, misses int64) { return c.hits, c.misses }

// Freq returns the current access frequency of key, or 0 if absent.
func (c *LFU[K, V]) Freq(key K) int64 {
	e, ok := c.entries[key]
	if !ok {
		return 0
	}
	return e.bucket.Value.(*lfuBucket[K, V]).freq
}

// bucketWithFreq returns the bucket element with exactly freq, inserting one
// after `after` (or at the front when after is nil) if missing. It assumes
// buckets are scanned in ascending order starting from `after`.
func (c *LFU[K, V]) bucketWithFreq(freq int64, after *list.Element) *list.Element {
	if after != nil {
		if b := after.Value.(*lfuBucket[K, V]); b.freq == freq {
			return after
		}
		if next := after.Next(); next != nil && next.Value.(*lfuBucket[K, V]).freq == freq {
			return next
		}
		nb := &lfuBucket[K, V]{freq: freq, entries: list.New()}
		return c.buckets.InsertAfter(nb, after)
	}
	if front := c.buckets.Front(); front != nil && front.Value.(*lfuBucket[K, V]).freq == freq {
		return front
	}
	nb := &lfuBucket[K, V]{freq: freq, entries: list.New()}
	return c.buckets.PushFront(nb)
}

func (c *LFU[K, V]) bump(e *lfuEntry[K, V]) {
	be := e.bucket
	b := be.Value.(*lfuBucket[K, V])
	target := c.bucketWithFreq(b.freq+1, be)
	b.entries.Remove(e.self)
	if b.entries.Len() == 0 {
		c.buckets.Remove(be)
	}
	e.bucket = target
	e.self = target.Value.(*lfuBucket[K, V]).entries.PushFront(e)
}

func (c *LFU[K, V]) detach(e *lfuEntry[K, V]) {
	b := e.bucket.Value.(*lfuBucket[K, V])
	b.entries.Remove(e.self)
	if b.entries.Len() == 0 {
		c.buckets.Remove(e.bucket)
	}
}

func (c *LFU[K, V]) evictMin() {
	front := c.buckets.Front()
	if front == nil {
		return
	}
	b := front.Value.(*lfuBucket[K, V])
	victim := b.entries.Back().Value.(*lfuEntry[K, V])
	c.detach(victim)
	delete(c.entries, victim.key)
	if c.onEvict != nil {
		c.onEvict(victim.key, victim.value)
	}
}
