package cache

import (
	"bytes"
	"math/rand"
	"testing"
)

// snapshotPolicy pairs a constructor with a name for the round-trip sweep.
// Constructors take the eviction hook so tests can compare hook sequences
// across an original and its restored twin.
var snapshotPolicies = []struct {
	name string
	make func(onEvict EvictFunc) Policy
}{
	{"IntLRU", func(f EvictFunc) Policy { return NewIntLRU(32, f) }},
	{"IntLFU", func(f EvictFunc) Policy { return NewIntLFU(32, f) }},
	{"ARC", func(f EvictFunc) Policy { return NewARC(32, f) }},
	{"CAR", func(f EvictFunc) Policy { return NewCAR(32, f) }},
	{"TinyLFU-LRU", func(f EvictFunc) Policy { return NewTinyLFULRU(32, f) }},
	{"TinyLFU-ARC", func(f EvictFunc) Policy { return NewTinyLFU(NewARC(32, f), 32) }},
	{"TinyLFU-CAR", func(f EvictFunc) Policy { return NewTinyLFU(NewCAR(32, f), 32) }},
}

// drive performs one Lookup-then-maybe-Insert step, the simulator's access
// pattern, and returns whether the step hit.
func drive(p Policy, obj int32) bool {
	if p.Lookup(obj) {
		return true
	}
	p.Insert(obj)
	return false
}

// TestSnapshotRoundTripBehavior is the core restore-by-rebuild contract:
// after restoring a snapshot into a fresh instance, the twin must be
// behaviorally indistinguishable from the original — same hits, same
// residency, same evictions, and same future snapshots — over an adversarial
// tail of traffic.
func TestSnapshotRoundTripBehavior(t *testing.T) {
	for _, tc := range snapshotPolicies {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			var evA, evB []int32
			a := tc.make(func(obj int32) { evA = append(evA, obj) })
			// A scan-heavy prefix over a larger-than-capacity key space
			// populates tiers, ghosts, and sketches.
			for i := 0; i < 4000; i++ {
				drive(a, int32(rng.Intn(96)))
			}

			blob := a.(Snapshotter).AppendState(nil)
			b := tc.make(func(obj int32) { evB = append(evB, obj) })
			rest, err := b.(Snapshotter).RestoreState(blob)
			if err != nil {
				t.Fatalf("RestoreState: %v", err)
			}
			if len(rest) != 0 {
				t.Fatalf("RestoreState left %d bytes unconsumed", len(rest))
			}
			if got := b.(Snapshotter).AppendState(nil); !bytes.Equal(got, blob) {
				t.Fatalf("restored snapshot differs from the original:\n got %x\nwant %x", got, blob)
			}
			if a.Len() != b.Len() {
				t.Fatalf("Len diverges after restore: %d vs %d", a.Len(), b.Len())
			}

			// RestoreState must not fire the eviction hook: nothing left
			// residency, it was never there.
			if len(evB) != 0 {
				t.Fatalf("restore fired %d eviction hooks", len(evB))
			}
			evA, evB = nil, nil

			for i := 0; i < 4000; i++ {
				obj := int32(rng.Intn(96))
				if ha, hb := drive(a, obj), drive(b, obj); ha != hb {
					t.Fatalf("step %d obj %d: original hit=%v, restored hit=%v", i, obj, ha, hb)
				}
			}
			if len(evA) != len(evB) {
				t.Fatalf("eviction counts diverge: %d vs %d", len(evA), len(evB))
			}
			for i := range evA {
				if evA[i] != evB[i] {
					t.Fatalf("eviction %d diverges: %d vs %d", i, evA[i], evB[i])
				}
			}
			ba := a.(Snapshotter).AppendState(nil)
			bb := b.(Snapshotter).AppendState(nil)
			if !bytes.Equal(ba, bb) {
				t.Fatalf("snapshots diverge after identical tails")
			}
		})
	}
}

// TestSnapshotRoundTripSized covers SizedIntLRU separately: its Insert takes
// a size, so it is not a cache.Policy.
func TestSnapshotRoundTripSized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	size := func(obj int32) int64 { return 1 + int64(obj%5) }
	var evA, evB []int32
	a := NewSizedIntLRU(64, func(obj int32) { evA = append(evA, obj) })
	for i := 0; i < 3000; i++ {
		obj := int32(rng.Intn(80))
		if !a.Lookup(obj) {
			a.Insert(obj, size(obj))
		}
	}
	blob := a.AppendState(nil)
	b := NewSizedIntLRU(64, func(obj int32) { evB = append(evB, obj) })
	rest, err := b.RestoreState(blob)
	if err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("RestoreState left %d bytes unconsumed", len(rest))
	}
	if len(evB) != 0 {
		t.Fatalf("restore fired %d eviction hooks", len(evB))
	}
	if got := b.AppendState(nil); !bytes.Equal(got, blob) {
		t.Fatalf("restored snapshot differs from the original")
	}
	evA, evB = nil, nil
	for i := 0; i < 3000; i++ {
		obj := int32(rng.Intn(80))
		ha, hb := a.Lookup(obj), b.Lookup(obj)
		if ha != hb {
			t.Fatalf("step %d obj %d: original hit=%v, restored hit=%v", i, obj, ha, hb)
		}
		if !ha {
			a.Insert(obj, size(obj))
			b.Insert(obj, size(obj))
		}
	}
	if a.Used() != b.Used() || a.Len() != b.Len() {
		t.Fatalf("restored twin diverges: used %d/%d len %d/%d", a.Used(), b.Used(), a.Len(), b.Len())
	}
	if len(evA) != len(evB) {
		t.Fatalf("eviction counts diverge: %d vs %d", len(evA), len(evB))
	}
}

// TestSnapshotRestoreRejectsCorruption: every truncation of a valid snapshot,
// and a tag flip, must fail cleanly — no panic, no partial acceptance.
func TestSnapshotRestoreRejectsCorruption(t *testing.T) {
	for _, tc := range snapshotPolicies {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			a := tc.make(nil)
			for i := 0; i < 2000; i++ {
				drive(a, int32(rng.Intn(96)))
			}
			blob := a.(Snapshotter).AppendState(nil)
			for cut := 0; cut < len(blob); cut++ {
				fresh := tc.make(nil)
				if _, err := fresh.(Snapshotter).RestoreState(blob[:cut]); err == nil {
					t.Fatalf("truncation to %d/%d bytes accepted", cut, len(blob))
				}
			}
			bad := append([]byte(nil), blob...)
			bad[0] ^= 0x7f // snapshot tag
			fresh := tc.make(nil)
			if _, err := fresh.(Snapshotter).RestoreState(bad); err == nil {
				t.Fatal("flipped tag byte accepted")
			}
		})
	}
}

// TestSnapshotRestoreRejectsCapacityMismatch: a snapshot taken at one
// capacity must not restore into an instance built with another — the slot
// arrays would not line up.
func TestSnapshotRestoreRejectsCapacityMismatch(t *testing.T) {
	a := NewIntLRU(8, nil)
	for i := int32(0); i < 8; i++ {
		a.Insert(i)
	}
	blob := a.AppendState(nil)
	b := NewIntLRU(16, nil)
	if _, err := b.RestoreState(blob); err == nil {
		t.Fatal("capacity-mismatched snapshot accepted")
	}
}
