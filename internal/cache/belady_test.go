package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"idicn/internal/zipfian"
)

func TestBeladyHandChecked(t *testing.T) {
	// Classic example: capacity 2, sequence a b c a b.
	// a(miss) b(miss) c(miss, evict b: next a=3 < next b=4... MIN evicts the
	// farthest: b's next is 4, a's next is 3, so evict b) a(hit) b(miss).
	seq := []int32{0, 1, 2, 0, 1}
	if got := BeladyHits(seq, 2); got != 1 {
		t.Errorf("BeladyHits = %d, want 1", got)
	}
	// With capacity 3 everything after the first occurrences hits.
	if got := BeladyHits(seq, 3); got != 2 {
		t.Errorf("BeladyHits(cap 3) = %d, want 2", got)
	}
}

func TestBeladyEdgeCases(t *testing.T) {
	if BeladyHits(nil, 4) != 0 {
		t.Error("empty sequence should have 0 hits")
	}
	if BeladyHits([]int32{1, 1, 1}, 0) != 0 {
		t.Error("zero capacity should have 0 hits")
	}
	if got := BeladyHits([]int32{7, 7, 7, 7}, 1); got != 3 {
		t.Errorf("single object repeats: %d hits, want 3", got)
	}
}

func TestBeladyAfterEvictionReentry(t *testing.T) {
	// An object evicted and re-requested later must be handled (stale heap
	// entries skipped).
	seq := []int32{0, 1, 2, 3, 0, 1, 2, 3}
	got := BeladyHits(seq, 2)
	// Optimal with capacity 2 over this cyclic scan: at most 2 hits
	// (keep 0 and 1 through the first pass... any policy gets <= 2).
	if got > 4 {
		t.Fatalf("BeladyHits = %d, impossible for capacity 2", got)
	}
	// And it must not be worse than LRU (which gets 0 on a cyclic scan).
	if lru := LRUHits(seq, 2); got < lru {
		t.Fatalf("Belady (%d) worse than LRU (%d)", got, lru)
	}
}

// bruteForceOptimal computes the optimal hit count by exhaustive search
// over eviction choices (exponential; tiny inputs only), under the same
// demand-fetch rules as BeladyHits and the simulator's caches: every miss
// admits the object (no bypass). With admission control a policy could do
// even better on some sequences, but that is a different model.
func bruteForceOptimal(seq []int32, capacity int) int64 {
	var rec func(i int, resident map[int32]bool) int64
	rec = func(i int, resident map[int32]bool) int64 {
		if i == len(seq) {
			return 0
		}
		obj := seq[i]
		if resident[obj] {
			return 1 + rec(i+1, resident)
		}
		if len(resident) < capacity {
			resident[obj] = true
			v := rec(i+1, resident)
			delete(resident, obj)
			return v
		}
		// Try evicting each resident.
		best := int64(0)
		keys := make([]int32, 0, len(resident))
		for k := range resident {
			keys = append(keys, k)
		}
		for _, victim := range keys {
			delete(resident, victim)
			resident[obj] = true
			if v := rec(i+1, resident); v > best {
				best = v
			}
			delete(resident, obj)
			resident[victim] = true
		}
		return best
	}
	return rec(0, map[int32]bool{})
}

// Property: BeladyHits matches exhaustive search on tiny inputs and always
// dominates LRU and LFU.
func TestBeladyOptimalQuick(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%3) + 1
		r := rand.New(rand.NewSource(seed))
		seq := make([]int32, 10)
		for i := range seq {
			seq[i] = int32(r.Intn(5))
		}
		got := BeladyHits(seq, capacity)
		want := bruteForceOptimal(seq, capacity)
		if got != want {
			t.Logf("seq=%v cap=%d: belady=%d brute=%d", seq, capacity, got, want)
			return false
		}
		return got >= LRUHits(seq, capacity) && got >= LFUHits(seq, capacity)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLRUNearOptimalOnZipf checks the paper's §3 premise: on a Zipf
// workload, LRU's hit ratio is close to Belady's offline optimum.
func TestLRUNearOptimalOnZipf(t *testing.T) {
	const n, objects, capacity = 50000, 2000, 100
	d := zipfian.New(1.0, objects)
	r := rand.New(rand.NewSource(9))
	seq := make([]int32, n)
	for i := range seq {
		seq[i] = int32(d.Sample(r))
	}
	opt := float64(BeladyHits(seq, capacity)) / n
	lru := float64(LRUHits(seq, capacity)) / n
	lfu := float64(LFUHits(seq, capacity)) / n
	// Measured on IID Zipf: LRU reaches ~73% of the offline optimum and LFU
	// ~95% (IID streams have no recency signal, only frequency). With the
	// temporal locality of real traces LRU closes most of the difference,
	// which is the regime behind the paper's "near-optimally" remark.
	if lru < opt*0.7 {
		t.Errorf("LRU hit ratio %.3f below 70%% of optimal %.3f", lru, opt)
	}
	if lfu < opt*0.85 {
		t.Errorf("LFU hit ratio %.3f below 85%% of optimal %.3f on an IID stream", lfu, opt)
	}
	if lru > opt || lfu > opt {
		t.Errorf("online policy beat the offline optimum (lru %.3f lfu %.3f opt %.3f): Belady is buggy", lru, lfu, opt)
	}
}

func BenchmarkBeladyHits(b *testing.B) {
	d := zipfian.New(1.0, 5000)
	r := rand.New(rand.NewSource(1))
	seq := make([]int32, 200000)
	for i := range seq {
		seq[i] = int32(d.Sample(r))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BeladyHits(seq, 250)
	}
}
