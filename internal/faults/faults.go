// Package faults is a deterministic, seeded fault-injection harness for the
// idICN stack: it perturbs HTTP traffic with injected latency, dropped
// connections, 5xx bursts, truncated and slowed response bodies, and full
// component blackouts with scheduled recovery.
//
// A Plan is a set of Rules, each scoped to one component ("resolver",
// "origin", "proxy", or "" for all) and either probabilistic (seeded RNG, so
// the same seed reproduces the same fault sequence) or windowed by the
// component's request index (blackout from request 300 to 600, then
// recovery). Plans compile into per-component Injectors exposed two ways:
//
//   - Injector.Middleware wraps an http.Handler, injecting faults on the
//     server side (the component itself misbehaves);
//   - Injector.RoundTripper wraps an http.RoundTripper, injecting faults on
//     the client side (the network between components misbehaves).
//
// Every injected fault increments a per-kind obs counter, so chaos runs are
// observable and — because injection is deterministic — two runs of the same
// seeded plan over the same request sequence report identical counts.
//
// The package is stdlib-only and safe for concurrent use.
package faults

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"idicn/internal/obs"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// KindLatency delays the request by Rule.Delay before it proceeds.
	KindLatency Kind = iota
	// KindDrop abruptly severs the connection (transport error on the
	// client side, aborted response on the server side).
	KindDrop
	// KindStatus short-circuits the request with Rule.Status (default 503),
	// modelling 5xx bursts from an overloaded component.
	KindStatus
	// KindTruncate cuts the response body off after Rule.Bytes bytes and
	// severs the connection, modelling a mid-transfer failure.
	KindTruncate
	// KindSlow inserts Rule.Delay before every body read/write, modelling a
	// pathologically slow peer.
	KindSlow
	// KindBlackout fails the request exactly like KindDrop but is
	// conventionally used with a From/To window: the component is entirely
	// dark for the window and recovers on schedule.
	KindBlackout

	numKinds
)

var kindNames = [numKinds]string{"latency", "drop", "status", "truncate", "slow", "blackout"}

// String returns the kind's plan-syntax name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString parses a plan-syntax kind name.
func KindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Rule scopes one fault to a component, a request-index window, and a
// probability.
type Rule struct {
	// Component names the injector this rule belongs to; "" applies to every
	// component.
	Component string
	Kind      Kind
	// P is the per-request injection probability. Zero means "always when
	// the window matches" — the deterministic form used for scheduled
	// blackouts.
	P float64
	// From and To bound the rule to the component's request indices
	// [From, To); To == 0 leaves the window open-ended. A rule with
	// From == To == 0 applies to every request.
	From, To int64
	// Delay is the injected latency (KindLatency) or per-chunk stall
	// (KindSlow).
	Delay time.Duration
	// Status is the injected response code for KindStatus (default 503).
	Status int
	// Bytes is how much of the body KindTruncate lets through.
	Bytes int64
}

// matches reports whether the rule's window contains request index n.
func (r Rule) matches(n int64) bool {
	if n < r.From {
		return false
	}
	return r.To == 0 || n < r.To
}

// Plan is a complete, seeded fault schedule for a deployment.
type Plan struct {
	Seed  int64
	Rules []Rule
}

// Injector compiles the plan's rules for one component. The injector's RNG
// is seeded from the plan seed and the component name, so per-component
// fault sequences are independent of each other and reproducible.
func (p *Plan) Injector(component string) *Injector {
	inj := &Injector{component: component, sleep: sleepCtx}
	if p == nil {
		return inj
	}
	for _, r := range p.Rules {
		if r.Component == "" || r.Component == component {
			inj.rules = append(inj.rules, r)
		}
	}
	h := fnv.New64a()
	_, _ = io.WriteString(h, component) // fnv's Write cannot fail
	inj.rng = rand.New(rand.NewSource(p.Seed ^ int64(h.Sum64())))
	return inj
}

// ErrInjected marks every error produced by fault injection, so resilience
// layers (and tests) can tell injected failures from real ones.
var ErrInjected = errors.New("faults: injected failure")

// Decision is the set of faults chosen for one request. Multiple rules may
// fire at once (latency plus a 5xx, say); Drop and Blackout dominate.
type Decision struct {
	Delay    time.Duration
	Drop     bool
	Status   int
	Truncate int64 // body bytes to allow; -1 = no truncation
	Slow     time.Duration
}

// faulty reports whether any fault fired.
func (d Decision) faulty() bool {
	return d.Delay > 0 || d.Drop || d.Status != 0 || d.Truncate >= 0 || d.Slow > 0
}

// Injector applies one component's rules to its request stream. The zero
// value (or an injector from a nil plan) injects nothing and is safe to wire
// unconditionally.
type Injector struct {
	component string
	rules     []Rule

	mu sync.Mutex
	//icn:guardedby mu
	n int64 // request index, drives rule windows
	//icn:guardedby mu
	rng *rand.Rand

	counts [numKinds]obs.Counter

	// sleep is the interruptible delay used for latency/slow faults;
	// injectable so tests need no wall-clock waits.
	sleep func(ctx context.Context, d time.Duration) error
}

// Component returns the component name this injector was compiled for.
func (i *Injector) Component() string { return i.component }

// Requests returns how many requests the injector has classified.
func (i *Injector) Requests() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.n
}

// Count returns how many faults of one kind have been injected.
func (i *Injector) Count(k Kind) int64 { return i.counts[k].Value() }

// Counts returns the injected-fault totals by kind name, omitting zeros.
func (i *Injector) Counts() map[string]int64 {
	out := make(map[string]int64)
	for k := Kind(0); k < numKinds; k++ {
		if v := i.counts[k].Value(); v > 0 {
			out[k.String()] = v
		}
	}
	return out
}

// Total returns the total number of injected faults across all kinds.
func (i *Injector) Total() int64 {
	var t int64
	for k := Kind(0); k < numKinds; k++ {
		t += i.counts[k].Value()
	}
	return t
}

// RegisterMetrics exposes the injector's per-kind fault counters in reg
// under faults_<component>_<kind>_total names.
func (i *Injector) RegisterMetrics(reg *obs.Registry) {
	for k := Kind(0); k < numKinds; k++ {
		c := &i.counts[k]
		reg.Func(fmt.Sprintf("faults_%s_%s_total", i.component, k), c.Value)
	}
}

// decide classifies the next request. The request index advances and the RNG
// draws under one lock, so a run of N requests always consumes the same RNG
// prefix and total fault counts are reproducible for a given seed even when
// requests race.
func (i *Injector) decide() Decision {
	d := Decision{Truncate: -1}
	if len(i.rules) == 0 {
		return d
	}
	i.mu.Lock()
	n := i.n
	i.n++
	for _, r := range i.rules {
		if !r.matches(n) {
			continue
		}
		if r.P > 0 && i.rng.Float64() >= r.P {
			continue
		}
		i.counts[r.Kind].Inc()
		switch r.Kind {
		case KindLatency:
			d.Delay += r.Delay
		case KindDrop, KindBlackout:
			d.Drop = true
		case KindStatus:
			d.Status = r.Status
			if d.Status == 0 {
				d.Status = http.StatusServiceUnavailable
			}
		case KindTruncate:
			d.Truncate = r.Bytes
		case KindSlow:
			d.Slow = r.Delay
		}
	}
	i.mu.Unlock()
	return d
}

// sleepCtx waits for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Middleware wraps next so the component injects this injector's faults on
// the serving side. Dropped/blacked-out requests abort the connection
// (clients observe an unexpected EOF, as with a crashed process); truncated
// bodies are cut mid-stream.
func (i *Injector) Middleware(next http.Handler) http.Handler {
	if i == nil || len(i.rules) == 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := i.decide()
		if !d.faulty() {
			next.ServeHTTP(w, r)
			return
		}
		if d.Delay > 0 {
			if err := i.sleep(r.Context(), d.Delay); err != nil {
				return
			}
		}
		if d.Drop {
			panic(http.ErrAbortHandler)
		}
		if d.Status != 0 {
			http.Error(w, fmt.Sprintf("%v: injected status %d", ErrInjected, d.Status), d.Status)
			return
		}
		ww := http.ResponseWriter(w)
		if d.Truncate >= 0 || d.Slow > 0 {
			ww = &faultyWriter{ResponseWriter: w, ctx: r.Context(), remaining: d.Truncate, slow: d.Slow, sleep: i.sleep}
		}
		next.ServeHTTP(ww, r)
	})
}

// faultyWriter truncates and/or slows a response body. Exceeding the
// truncation budget aborts the connection so the client sees a broken
// transfer rather than a clean short body.
type faultyWriter struct {
	http.ResponseWriter
	// Write cannot take a context, so the wrapper carries its request's;
	// the writer never outlives the ServeHTTP call that created it.
	//icnvet:ignore ctxfirst
	ctx       context.Context
	remaining int64 // -1 = unlimited
	slow      time.Duration
	sleep     func(ctx context.Context, d time.Duration) error
}

func (w *faultyWriter) Write(p []byte) (int, error) {
	if w.slow > 0 {
		if err := w.sleep(w.ctx, w.slow); err != nil {
			return 0, err
		}
	}
	if w.remaining < 0 {
		return w.ResponseWriter.Write(p)
	}
	if w.remaining == 0 {
		panic(http.ErrAbortHandler)
	}
	if int64(len(p)) <= w.remaining {
		n, err := w.ResponseWriter.Write(p)
		w.remaining -= int64(n)
		return n, err
	}
	n, _ := w.ResponseWriter.Write(p[:w.remaining])
	w.remaining -= int64(n)
	// Push the partial body onto the wire before severing the connection, so
	// clients observe a genuinely truncated transfer rather than no response.
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}

// Transport wraps next so requests through it suffer this injector's faults
// on the client side — the "network between components" view. A nil next
// uses http.DefaultTransport.
func (i *Injector) Transport(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	if i == nil || len(i.rules) == 0 {
		return next
	}
	return &transport{inj: i, next: next}
}

type transport struct {
	inj  *Injector
	next http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.inj.decide()
	if !d.faulty() {
		return t.next.RoundTrip(req)
	}
	if d.Delay > 0 {
		if err := t.inj.sleep(req.Context(), d.Delay); err != nil {
			return nil, err
		}
	}
	if d.Drop {
		return nil, fmt.Errorf("%w: connection to %s dropped", ErrInjected, req.URL.Host)
	}
	if d.Status != 0 {
		return &http.Response{
			Status:     fmt.Sprintf("%d %s", d.Status, http.StatusText(d.Status)),
			StatusCode: d.Status,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"X-Faults-Injected": []string{"status"}},
			Body:       http.NoBody,
			Request:    req,
		}, nil
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.Truncate >= 0 || d.Slow > 0 {
		resp.Body = &faultyBody{rc: resp.Body, ctx: req.Context(), remaining: d.Truncate, slow: d.Slow, sleep: t.inj.sleep}
	}
	return resp, nil
}

// faultyBody truncates and/or slows a response body on the client side.
// Hitting the truncation budget surfaces an unexpected-EOF error, matching
// what a severed TCP stream produces.
type faultyBody struct {
	rc io.ReadCloser
	// Read cannot take a context, so the wrapper carries its request's;
	// the body never outlives the round trip that produced it.
	//icnvet:ignore ctxfirst
	ctx       context.Context
	remaining int64 // -1 = unlimited
	slow      time.Duration
	sleep     func(ctx context.Context, d time.Duration) error
}

func (b *faultyBody) Read(p []byte) (int, error) {
	if b.slow > 0 {
		if err := b.sleep(b.ctx, b.slow); err != nil {
			return 0, err
		}
	}
	if b.remaining < 0 {
		return b.rc.Read(p)
	}
	if b.remaining == 0 {
		return 0, fmt.Errorf("%w: body truncated", ErrInjected)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		return n, err
	}
	return n, err
}

func (b *faultyBody) Close() error { return b.rc.Close() }
