package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParsePlan compiles the textual fault-plan syntax used by daemon flags and
// documented in README.md:
//
//	plan  := rule (';' rule)*
//	rule  := component ':' kind (',' key '=' value)*
//	kind  := latency | drop | status | truncate | slow | blackout
//	keys  := p (probability, 0..1)
//	         from, to (request-index window, [from, to); to=0 open-ended)
//	         d (duration, for latency/slow)
//	         status (HTTP code, for status)
//	         bytes (body budget, for truncate)
//
// component "any" (or "*") applies the rule to every component. Examples:
//
//	resolver:blackout,from=300,to=600
//	origin:latency,d=20ms,p=0.5;origin:status,status=503,p=0.1
//	proxy:truncate,bytes=64,p=0.05
func ParsePlan(spec string, seed int64) (*Plan, error) {
	p := &Plan{Seed: seed}
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		r, err := parseRule(raw)
		if err != nil {
			return nil, fmt.Errorf("faults: rule %q: %w", raw, err)
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("faults: empty plan %q", spec)
	}
	return p, nil
}

func parseRule(raw string) (Rule, error) {
	head, opts, _ := strings.Cut(raw, ",")
	comp, kindName, ok := strings.Cut(head, ":")
	if !ok {
		return Rule{}, fmt.Errorf("want component:kind")
	}
	comp = strings.TrimSpace(comp)
	if comp == "any" || comp == "*" {
		comp = ""
	}
	kind, ok := KindFromString(strings.TrimSpace(kindName))
	if !ok {
		return Rule{}, fmt.Errorf("unknown kind %q", kindName)
	}
	r := Rule{Component: comp, Kind: kind}
	if opts == "" {
		return r, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Rule{}, fmt.Errorf("option %q is not key=value", kv)
		}
		var err error
		switch key {
		case "p":
			r.P, err = strconv.ParseFloat(val, 64)
			if err == nil && (r.P < 0 || r.P > 1) {
				err = fmt.Errorf("probability %g outside [0,1]", r.P)
			}
		case "from":
			r.From, err = strconv.ParseInt(val, 10, 64)
		case "to":
			r.To, err = strconv.ParseInt(val, 10, 64)
		case "d":
			r.Delay, err = time.ParseDuration(val)
		case "status":
			r.Status, err = strconv.Atoi(val)
		case "bytes":
			r.Bytes, err = strconv.ParseInt(val, 10, 64)
		default:
			err = fmt.Errorf("unknown option %q", key)
		}
		if err != nil {
			return Rule{}, fmt.Errorf("option %q: %v", kv, err)
		}
	}
	if r.To != 0 && r.To <= r.From {
		return Rule{}, fmt.Errorf("window [%d,%d) is empty", r.From, r.To)
	}
	return r, nil
}

// String renders the plan back into the parseable syntax.
func (p *Plan) String() string {
	var b strings.Builder
	for i, r := range p.Rules {
		if i > 0 {
			b.WriteByte(';')
		}
		comp := r.Component
		if comp == "" {
			comp = "any"
		}
		fmt.Fprintf(&b, "%s:%s", comp, r.Kind)
		if r.P > 0 {
			fmt.Fprintf(&b, ",p=%g", r.P)
		}
		if r.From != 0 {
			fmt.Fprintf(&b, ",from=%d", r.From)
		}
		if r.To != 0 {
			fmt.Fprintf(&b, ",to=%d", r.To)
		}
		if r.Delay != 0 {
			fmt.Fprintf(&b, ",d=%s", r.Delay)
		}
		if r.Status != 0 {
			fmt.Fprintf(&b, ",status=%d", r.Status)
		}
		if r.Bytes != 0 {
			fmt.Fprintf(&b, ",bytes=%d", r.Bytes)
		}
	}
	return b.String()
}
