package faults

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"idicn/internal/obs"
)

func noSleep(inj *Injector) { inj.sleep = func(context.Context, time.Duration) error { return nil } }

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "hello fault injection")
	})
}

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "resolver:blackout,from=300,to=600;origin:latency,p=0.5,d=20ms;any:status,p=0.1,status=503;proxy:truncate,p=0.05,bytes=64"
	p, err := ParsePlan(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(p.Rules))
	}
	want := []Rule{
		{Component: "resolver", Kind: KindBlackout, From: 300, To: 600},
		{Component: "origin", Kind: KindLatency, P: 0.5, Delay: 20 * time.Millisecond},
		{Component: "", Kind: KindStatus, P: 0.1, Status: 503},
		{Component: "proxy", Kind: KindTruncate, P: 0.05, Bytes: 64},
	}
	for i, r := range p.Rules {
		if r != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}
	// String must re-parse to the same rules.
	p2, err := ParsePlan(p.String(), 7)
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	for i := range p.Rules {
		if p.Rules[i] != p2.Rules[i] {
			t.Errorf("round-trip rule %d = %+v, want %+v", i, p2.Rules[i], p.Rules[i])
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"noseparator",
		"resolver:explode",
		"resolver:drop,p=1.5",
		"resolver:drop,bogus=1",
		"resolver:blackout,from=10,to=5",
	} {
		if _, err := ParsePlan(spec, 1); err == nil {
			t.Errorf("ParsePlan(%q) accepted", spec)
		}
	}
}

// TestBlackoutWindow: requests inside [From, To) fail, requests outside
// succeed, and recovery is automatic.
func TestBlackoutWindow(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{{Component: "resolver", Kind: KindBlackout, From: 2, To: 4}}}
	inj := plan.Injector("resolver")
	srv := httptest.NewServer(inj.Middleware(okHandler()))
	defer srv.Close()
	// Fresh connections per request: Go's transport transparently retries
	// aborted requests on reused connections, which would consume extra
	// request indices and shift the window.
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer hc.CloseIdleConnections()

	var got []bool
	for i := 0; i < 6; i++ {
		resp, err := hc.Get(srv.URL)
		ok := err == nil && resp.StatusCode == http.StatusOK
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		got = append(got, ok)
	}
	want := []bool{true, true, false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("request %d ok=%v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if n := inj.Count(KindBlackout); n != 2 {
		t.Errorf("blackout count = %d, want 2", n)
	}
}

// TestTransportFaults drives every client-side fault kind through the
// RoundTripper wrapper.
func TestTransportFaults(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()

	t.Run("drop", func(t *testing.T) {
		inj := (&Plan{Rules: []Rule{{Kind: KindDrop}}}).Injector("c")
		hc := &http.Client{Transport: inj.Transport(nil)}
		_, err := hc.Get(srv.URL)
		if err == nil || !strings.Contains(err.Error(), "injected") {
			t.Fatalf("dropped request returned %v", err)
		}
	})
	t.Run("status", func(t *testing.T) {
		inj := (&Plan{Rules: []Rule{{Kind: KindStatus, Status: 502}}}).Injector("c")
		hc := &http.Client{Transport: inj.Transport(nil)}
		resp, err := hc.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 502 {
			t.Fatalf("status = %d, want 502", resp.StatusCode)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		inj := (&Plan{Rules: []Rule{{Kind: KindTruncate, Bytes: 5}}}).Injector("c")
		hc := &http.Client{Transport: inj.Transport(nil)}
		resp, err := hc.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("truncated read error = %v, want ErrInjected", err)
		}
		if string(body) != "hello" {
			t.Fatalf("truncated body = %q, want %q", body, "hello")
		}
	})
	t.Run("latency", func(t *testing.T) {
		inj := (&Plan{Rules: []Rule{{Kind: KindLatency, Delay: time.Hour}}}).Injector("c")
		slept := time.Duration(0)
		inj.sleep = func(_ context.Context, d time.Duration) error { slept += d; return nil }
		hc := &http.Client{Transport: inj.Transport(nil)}
		resp, err := hc.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if slept != time.Hour {
			t.Fatalf("injected delay = %v, want 1h", slept)
		}
	})
	t.Run("slow", func(t *testing.T) {
		inj := (&Plan{Rules: []Rule{{Kind: KindSlow, Delay: time.Minute}}}).Injector("c")
		var stalls int
		inj.sleep = func(context.Context, time.Duration) error { stalls++; return nil }
		hc := &http.Client{Transport: inj.Transport(nil)}
		resp, err := hc.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if stalls == 0 {
			t.Fatal("slow body never stalled a read")
		}
	})
}

// TestMiddlewareTruncate: the server-side truncation cuts the body and
// severs the connection.
func TestMiddlewareTruncate(t *testing.T) {
	inj := (&Plan{Rules: []Rule{{Kind: KindTruncate, Bytes: 5}}}).Injector("c")
	srv := httptest.NewServer(inj.Middleware(okHandler()))
	defer srv.Close()
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer hc.CloseIdleConnections()
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if readErr == nil {
		t.Fatalf("truncated transfer completed cleanly with body %q", body)
	}
	if string(body) != "hello" {
		t.Fatalf("truncated body = %q, want %q", body, "hello")
	}
}

// TestMiddlewareStatus: 5xx bursts surface as the configured status.
func TestMiddlewareStatus(t *testing.T) {
	inj := (&Plan{Rules: []Rule{{Kind: KindStatus}}}).Injector("c")
	srv := httptest.NewServer(inj.Middleware(okHandler()))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (default)", resp.StatusCode)
	}
}

// TestDeterministicCounts: the same seeded plan over the same number of
// requests injects exactly the same per-kind totals.
func TestDeterministicCounts(t *testing.T) {
	plan := &Plan{Seed: 42, Rules: []Rule{
		{Component: "c", Kind: KindDrop, P: 0.3},
		{Component: "c", Kind: KindStatus, P: 0.2, Status: 503},
	}}
	run := func() map[string]int64 {
		inj := plan.Injector("c")
		noSleep(inj)
		for i := 0; i < 500; i++ {
			inj.decide()
		}
		return inj.Counts()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults injected at p=0.3 over 500 requests")
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("count[%s] = %d then %d; injection is not deterministic", k, v, b[k])
		}
	}
	// A different seed must (overwhelmingly likely) differ somewhere in the
	// per-request decisions; totals may coincide, so compare a draw prefix.
	other := (&Plan{Seed: 43, Rules: plan.Rules}).Injector("c")
	same := (&Plan{Seed: 42, Rules: plan.Rules}).Injector("c")
	diff := false
	for i := 0; i < 500; i++ {
		if other.decide() != same.decide() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("seeds 42 and 43 produced identical decision streams")
	}
}

// TestInjectorMetrics: counters surface through an obs registry.
func TestInjectorMetrics(t *testing.T) {
	inj := (&Plan{Rules: []Rule{{Component: "resolver", Kind: KindDrop}}}).Injector("resolver")
	reg := obs.NewRegistry()
	inj.RegisterMetrics(reg)
	inj.decide()
	inj.decide()
	var sb strings.Builder
	reg.WriteText(&sb)
	if !strings.Contains(sb.String(), "faults_resolver_drop_total 2") {
		t.Fatalf("metrics page missing drop counter:\n%s", sb.String())
	}
}

// TestNilPlanInjectsNothing: wiring the harness with no plan is free and
// transparent.
type nopHandler struct{}

func (nopHandler) ServeHTTP(http.ResponseWriter, *http.Request) {}

func TestNilPlanInjectsNothing(t *testing.T) {
	var plan *Plan
	inj := plan.Injector("proxy")
	h := nopHandler{}
	if got := inj.Middleware(h); got != http.Handler(h) {
		t.Error("nil-plan middleware is not the identity")
	}
	rt := http.DefaultTransport
	if got := inj.Transport(rt); got != rt {
		t.Error("nil-plan transport is not the identity")
	}
	if inj.Total() != 0 {
		t.Error("nil plan injected faults")
	}
}
