package experiments

import (
	"idicn/internal/sim"
	"idicn/internal/trace"
)

// AblationTemporalLocality measures the ICN-NR over EDGE gap as short-term
// request reuse is injected into the synthetic workload. Real CDN logs have
// strong temporal locality (the paper's dataset served ~70% of requests at
// the local cluster); IID Zipf streams have none, which leaves edge caches
// artificially cold and overstates nearest-replica routing's advantage.
// This sweep tests that explanation directly: as locality rises toward
// trace-like levels, the gap should compress toward the paper's
// single-digit numbers.
func AblationTemporalLocality(p Params, localities []float64) ([]SweepPoint, error) {
	if localities == nil {
		localities = []float64{0, 0.2, 0.4, 0.6, 0.8}
	}
	tp := p.sweepTopology()
	net, requests, objects := p.buildNet(tp)
	weights := tp.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, p.OriginProportional, p.Seed+1)

	cfgs := make([]sim.Config, len(localities))
	reqss := make([][]sim.Request, len(localities))
	for i, q := range localities {
		reqss[i] = trace.NewSyntheticRequests(trace.StreamConfig{
			Requests:         requests,
			Objects:          objects,
			Alpha:            p.Alpha,
			SpatialSkew:      p.SpatialSkew,
			PoPWeights:       weights,
			Leaves:           net.LeavesPerTree(),
			Seed:             p.Seed + 2,
			TemporalLocality: q,
		})
		cfgs[i] = sim.Config{
			Network:        net,
			Objects:        objects,
			Origins:        origins,
			BudgetFraction: p.BudgetFraction,
			BudgetPolicy:   p.BudgetPolicy,
		}
	}
	gaps, err := gapBatch(nrEdgeCases(cfgs, reqss), p.simOptions())
	if err != nil {
		return nil, err
	}
	points := make([]SweepPoint, len(localities))
	for i, q := range localities {
		points[i] = SweepPoint{X: q, Gap: gaps[i]}
	}
	return points, nil
}
