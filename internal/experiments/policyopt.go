package experiments

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"idicn/internal/cache"
)

// PolicyOptimalityRow compares online replacement policies against Belady's
// offline optimum at the cache that matters most in the paper's story: the
// edge leaf.
type PolicyOptimalityRow struct {
	Policy        string
	HitRatio      float64
	FractionOfOpt float64 // hit ratio relative to Belady's
}

// AblationPolicyOptimality checks the paper's §3 premise that "the LRU
// policy performs near-optimally in practical scenarios": it replays every
// leaf's request sub-stream from the standard workload against LRU, LFU,
// and Belady's MIN with the same per-leaf capacity, and reports aggregate
// hit ratios.
func AblationPolicyOptimality(p Params) ([]PolicyOptimalityRow, error) {
	tp := p.sweepTopology()
	cfg, reqs := p.Workload(tp)
	capacity := int(math.Round(p.BudgetFraction * float64(cfg.Objects)))
	if capacity < 1 {
		capacity = 1
	}

	// Split the stream into per-leaf sub-sequences.
	leaves := cfg.Network.LeavesPerTree()
	streams := make(map[int][]int32)
	for _, q := range reqs {
		k := int(q.PoP)*leaves + int(q.Leaf)
		streams[k] = append(streams[k], q.Object)
	}

	var total, lruHits, lfuHits, optHits int64
	for _, seq := range streams {
		total += int64(len(seq))
		lruHits += cache.LRUHits(seq, capacity)
		lfuHits += cache.LFUHits(seq, capacity)
		optHits += cache.BeladyHits(seq, capacity)
	}
	if total == 0 || optHits == 0 {
		return nil, fmt.Errorf("experiments: empty workload for policy comparison")
	}
	opt := float64(optHits) / float64(total)
	rows := []PolicyOptimalityRow{
		{Policy: "Belady-MIN (offline optimal)", HitRatio: opt, FractionOfOpt: 1},
		{Policy: "LRU", HitRatio: float64(lruHits) / float64(total), FractionOfOpt: float64(lruHits) / float64(optHits)},
		{Policy: "LFU", HitRatio: float64(lfuHits) / float64(total), FractionOfOpt: float64(lfuHits) / float64(optHits)},
	}
	return rows, nil
}

// FormatPolicyOptimality renders the policy-vs-optimal comparison.
func FormatPolicyOptimality(rows []PolicyOptimalityRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Policy\tLeaf hit ratio\tFraction of optimal")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\n", r.Policy, r.HitRatio, r.FractionOfOpt)
	}
	w.Flush()
	return b.String()
}
