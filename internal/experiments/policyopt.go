package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"

	"idicn/internal/cache"
	"idicn/internal/sim"
)

// PolicyOptimalityRow compares online replacement policies against Belady's
// offline optimum at the cache that matters most in the paper's story: the
// edge leaf.
type PolicyOptimalityRow struct {
	Policy        string
	HitRatio      float64
	FractionOfOpt float64 // hit ratio relative to Belady's
}

// AblationPolicyOptimality checks the paper's §3 premise that "the LRU
// policy performs near-optimally in practical scenarios": it replays every
// leaf's request sub-stream from the standard workload against LRU, LFU,
// and Belady's MIN with the same per-leaf capacity, and reports aggregate
// hit ratios.
func AblationPolicyOptimality(p Params) ([]PolicyOptimalityRow, error) {
	tp := p.sweepTopology()
	cfg, reqs := p.Workload(tp)
	capacity := int(math.Round(p.BudgetFraction * float64(cfg.Objects)))
	if capacity < 1 {
		capacity = 1
	}

	// Split the stream into per-leaf sub-sequences, indexed densely by
	// (PoP, leaf) so the replay order below is deterministic.
	leaves := cfg.Network.LeavesPerTree()
	streams := make([][]int32, cfg.Network.PoPs()*leaves)
	for _, q := range reqs {
		k := int(q.PoP)*leaves + int(q.Leaf)
		streams[k] = append(streams[k], q.Object)
	}

	// Replay every leaf's sub-stream on the worker pool: the three policy
	// replays per leaf are independent, and the aggregate counters are
	// order-insensitive sums, so results are deterministic.
	seqs := make([][]int32, 0, len(streams))
	for _, seq := range streams {
		if len(seq) > 0 {
			seqs = append(seqs, seq)
		}
	}
	var total, lruHits, lfuHits, optHits atomic.Int64
	workers := p.Workers
	if workers <= 0 {
		workers = sim.DefaultWorkers()
	}
	if workers > len(seqs) {
		workers = len(seqs)
	}
	if workers <= 1 {
		for _, seq := range seqs {
			total.Add(int64(len(seq)))
			lruHits.Add(cache.LRUHits(seq, capacity))
			lfuHits.Add(cache.LFUHits(seq, capacity))
			optHits.Add(cache.BeladyHits(seq, capacity))
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(seqs) {
						return
					}
					seq := seqs[i]
					total.Add(int64(len(seq)))
					lruHits.Add(cache.LRUHits(seq, capacity))
					lfuHits.Add(cache.LFUHits(seq, capacity))
					optHits.Add(cache.BeladyHits(seq, capacity))
				}
			}()
		}
		wg.Wait()
	}
	n, lru, lfu, best := total.Load(), lruHits.Load(), lfuHits.Load(), optHits.Load()
	if n == 0 || best == 0 {
		return nil, fmt.Errorf("experiments: empty workload for policy comparison")
	}
	rows := []PolicyOptimalityRow{
		{Policy: "Belady-MIN (offline optimal)", HitRatio: float64(best) / float64(n), FractionOfOpt: 1},
		{Policy: "LRU", HitRatio: float64(lru) / float64(n), FractionOfOpt: float64(lru) / float64(best)},
		{Policy: "LFU", HitRatio: float64(lfu) / float64(n), FractionOfOpt: float64(lfu) / float64(best)},
	}
	return rows, nil
}

// FormatPolicyOptimality renders the policy-vs-optimal comparison.
func FormatPolicyOptimality(rows []PolicyOptimalityRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Policy\tLeaf hit ratio\tFraction of optimal")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\n", r.Policy, r.HitRatio, r.FractionOfOpt)
	}
	flushTab(w)
	return b.String()
}
