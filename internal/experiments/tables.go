package experiments

import (
	"fmt"

	"idicn/internal/sim"
	"idicn/internal/topo"
	"idicn/internal/trace"
	"idicn/internal/zipfian"
)

// Table2Row is one vantage point of the paper's Table 2: the request count
// and fitted Zipf parameter of a CDN log.
type Table2Row struct {
	Location   string
	Requests   int
	AlphaFit   float64 // log-log regression fit (the paper's method)
	AlphaMLE   float64 // discrete MLE cross-check
	R2         float64 // regression quality
	PaperAlpha float64 // value reported in the paper
}

// Table2 generates the three vantage-point logs and fits their Zipf
// parameters (paper Table 2: US 0.99, Europe 0.92, Asia 1.04).
func Table2(scale float64) ([]Table2Row, error) {
	models := []struct {
		m     trace.CDNModel
		paper float64
	}{
		{trace.US(scale), 0.99},
		{trace.Europe(scale), 0.92},
		{trace.Asia(scale), 1.04},
	}
	rows := make([]Table2Row, 0, len(models))
	for _, mm := range models {
		log := mm.m.Generate()
		counts := trace.ObjectCounts(log)
		alphaFit, r2, err := zipfian.FitRankFrequency(counts)
		if err != nil {
			return nil, fmt.Errorf("experiments: table2 %s: %w", mm.m.Name, err)
		}
		alphaMLE, err := zipfian.FitMLE(counts)
		if err != nil {
			return nil, fmt.Errorf("experiments: table2 %s: %w", mm.m.Name, err)
		}
		rows = append(rows, Table2Row{
			Location:   mm.m.Name,
			Requests:   len(log),
			AlphaFit:   alphaFit,
			AlphaMLE:   alphaMLE,
			R2:         r2,
			PaperAlpha: mm.paper,
		})
	}
	return rows, nil
}

// Figure1Series returns the rank/frequency series (descending request counts
// by popularity rank) for each vantage point — the data behind the paper's
// Figure 1 log-log plots. maxPoints caps the series length (0 = all).
func Figure1Series(scale float64, maxPoints int) (map[string][]int64, error) {
	out := make(map[string][]int64, 3)
	for _, m := range []trace.CDNModel{trace.US(scale), trace.Europe(scale), trace.Asia(scale)} {
		rf := trace.RankFrequency(m.Generate())
		if maxPoints > 0 && len(rf) > maxPoints {
			rf = rf[:maxPoints]
		}
		out[m.Name] = rf
	}
	return out, nil
}

// Table3Row is one topology of the paper's Table 3: the ICN-NR-over-EDGE
// latency gap under a "real" trace versus a best-fit synthetic log.
type Table3Row struct {
	Topology   string
	TraceGap   float64
	SynthGap   float64
	Difference float64
}

// Table3 validates the synthetic request model: for each topology, it
// compares the ICN-NR vs EDGE query-latency gap under (a) the Asia-model
// trace and (b) an independently generated log using the trace's best-fit
// Zipf parameter. The paper finds the two agree within ~1.7%.
func Table3(p Params) ([]Table3Row, error) {
	requests, objects := p.workloadSize()
	asia := trace.Asia(p.Scale)
	asia.Requests, asia.Objects = requests, objects
	log := asia.Generate()
	counts := trace.ObjectCounts(log)
	alphaFit, _, err := zipfian.FitRankFrequency(counts)
	if err != nil {
		return nil, fmt.Errorf("experiments: table3 fit: %w", err)
	}

	// Two gap cases per topology (trace-driven and synthetic), all fanned
	// out in a single parallel batch.
	tops := topo.AllTopologies()
	cases := make([]gapCase, 0, 2*len(tops))
	for _, tp := range tops {
		net := topo.NewNetwork(tp, p.Arity, p.Depth)
		weights := tp.PopulationWeights()
		origins := trace.OriginAssignment(objects, weights, p.OriginProportional, p.Seed+1)
		cfg := sim.Config{
			Network:        net,
			Objects:        objects,
			Origins:        origins,
			BudgetFraction: p.BudgetFraction,
			BudgetPolicy:   p.BudgetPolicy,
		}
		traceReqs := trace.FromRecords(log, weights, net.LeavesPerTree(), p.Seed+3)
		synthReqs := trace.NewSyntheticRequests(trace.StreamConfig{
			Requests:   requests,
			Objects:    objects,
			Alpha:      alphaFit,
			PoPWeights: weights,
			Leaves:     net.LeavesPerTree(),
			Seed:       p.Seed + 4,
		})
		cases = append(cases,
			gapCase{a: sim.ICNNR, b: sim.EDGE, cfg: cfg, reqs: traceReqs},
			gapCase{a: sim.ICNNR, b: sim.EDGE, cfg: cfg, reqs: synthReqs})
	}
	gaps, err := gapBatch(cases, p.simOptions())
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, 0, len(tops))
	for i, tp := range tops {
		traceGap, synthGap := gaps[2*i], gaps[2*i+1]
		rows = append(rows, Table3Row{
			Topology:   tp.Name,
			TraceGap:   traceGap.Latency,
			SynthGap:   synthGap.Latency,
			Difference: synthGap.Latency - traceGap.Latency,
		})
	}
	return rows, nil
}

// Table4Row is one arity of the paper's Table 4: the ICN-NR-over-EDGE gains
// when the access-tree arity changes with the leaf count held fixed.
type Table4Row struct {
	Arity          int
	Depth          int
	LatencyGain    float64
	CongestionGain float64
	OriginGain     float64
}

// Table4 sweeps the access-tree arity over {2, 4, 8, 64} with 64 leaves per
// tree (depths 6, 3, 2, 1), on the largest topology. The paper finds the
// gap shrinking with arity because EDGE's share of the total budget
// (k-1)/k approaches 1.
func Table4(p Params) ([]Table4Row, error) {
	return table4(p, sim.EDGE)
}

// Table4Normalized repeats the arity sweep against EDGE-Norm, removing the
// budget-ratio factor the paper credits for Table 4's trend: whatever gap
// remains at each arity is purely nearest-replica routing's structural
// advantage (sibling and cross-PoP fetches), isolating why the trend does
// or does not reproduce on a given substrate.
func Table4Normalized(p Params) ([]Table4Row, error) {
	return table4(p, sim.EDGENorm)
}

func table4(p Params, edge sim.Design) ([]Table4Row, error) {
	configs := []struct{ arity, depth int }{{2, 6}, {4, 3}, {8, 2}, {64, 1}}
	cases := make([]gapCase, len(configs))
	for i, c := range configs {
		pc := p
		pc.Arity, pc.Depth = c.arity, c.depth
		cfg, reqs := pc.Workload(pc.sweepTopology())
		cases[i] = gapCase{a: sim.ICNNR, b: edge, cfg: cfg, reqs: reqs}
	}
	gaps, err := gapBatch(cases, p.simOptions())
	if err != nil {
		return nil, err
	}
	rows := make([]Table4Row, 0, len(configs))
	for i, c := range configs {
		rows = append(rows, Table4Row{
			Arity:          c.arity,
			Depth:          c.depth,
			LatencyGain:    gaps[i].Latency,
			CongestionGain: gaps[i].Congestion,
			OriginGain:     gaps[i].OriginLoad,
		})
	}
	return rows, nil
}
