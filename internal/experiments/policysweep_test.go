package experiments

import (
	"strings"
	"testing"

	"idicn/internal/sim"
)

func TestPolicySweepShape(t *testing.T) {
	rows, err := PolicySweep(testParams())
	if err != nil {
		t.Fatal(err)
	}
	policies := sim.CachePolicies()
	designs := sim.BaselineDesigns()
	if len(rows) != len(policies)*len(designs) {
		t.Fatalf("got %d rows, want %d", len(rows), len(policies)*len(designs))
	}
	k := 0
	for _, pol := range policies {
		for _, d := range designs {
			r := rows[k]
			k++
			if r.Policy != pol.String() || r.Design != d.Name {
				t.Fatalf("row %d = (%s, %s), want (%s, %s)", k-1, r.Policy, r.Design, pol, d.Name)
			}
			if r.Imp.Latency <= 0 {
				t.Errorf("%s/%s: latency improvement %v <= 0 — caches did nothing", r.Policy, r.Design, r.Imp.Latency)
			}
		}
	}

	// Policy choice must move the numbers (the zoo is not five spellings of
	// LRU), but no policy should upend the paper's placement story by more
	// than a few points on this warm workload.
	byKey := map[string]sim.Improvement{}
	for _, r := range rows {
		byKey[r.Policy+"/"+r.Design] = r.Imp
	}
	distinct := false
	for _, pol := range policies[1:] {
		if byKey[pol.String()+"/EDGE"] != byKey["LRU/EDGE"] {
			distinct = true
		}
	}
	if !distinct {
		t.Error("every policy produced identical EDGE results; the Policy knob is not wired through")
	}
}

func TestPolicySweepDeterministic(t *testing.T) {
	a, err := PolicySweep(testParams())
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.Workers = 3
	b, err := PolicySweep(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across worker counts: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFormatPolicySweep(t *testing.T) {
	s := FormatPolicySweep([]PolicySweepRow{
		{Policy: "ARC", Design: "EDGE", Imp: sim.Improvement{Latency: 12.5, Congestion: 3.25, OriginLoad: 40}},
	})
	for _, want := range []string{"Policy", "ARC", "EDGE", "12.50", "3.25", "40.00"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted table missing %q:\n%s", want, s)
		}
	}
}
