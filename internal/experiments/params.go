// Package experiments contains one harness per table and figure in the
// paper's evaluation (§2.2, §4, §5): each produces the same rows or series
// the paper reports, on synthetic substrates scaled by a single knob.
//
// Every harness is deterministic given (Params.Scale, Params.Seed), so the
// tables in EXPERIMENTS.md regenerate exactly.
package experiments

import (
	"idicn/internal/sim"
	"idicn/internal/topo"
	"idicn/internal/trace"
)

// Params carries the simulation configuration shared by the §4/§5
// experiments. DefaultParams reproduces the paper's baseline setup.
type Params struct {
	// Scale shrinks the workload: 1 is paper scale (the 1.8M-request Asia
	// trace); tests use 0.01-0.02.
	Scale float64
	Seed  int64

	Arity int // access-tree arity (paper baseline: 2)
	Depth int // access-tree depth (paper baseline: 5)

	BudgetFraction     float64 // F, per-router cache fraction (paper: 5%)
	BudgetPolicy       sim.BudgetPolicy
	OriginProportional bool // origin assignment proportional to population

	Alpha       float64 // request popularity exponent (Asia best fit: 1.04)
	SpatialSkew float64

	// TemporalLocality injects per-leaf short-term reuse into the synthetic
	// stream (see trace.StreamConfig.TemporalLocality). Zero reproduces an
	// IID Zipf stream; ~0.7 approximates the locality level of the paper's
	// real CDN traces and recovers its reported gap magnitudes (see
	// EXPERIMENTS.md and AblationTemporalLocality).
	TemporalLocality float64

	// ObjectDivisor sets the simulated object universe to
	// requests/ObjectDivisor (min 200). The default (360) puts caches in
	// the full-and-churning regime at F=5%, which the paper's results imply
	// (EDGE-Norm helps, and Figure 8(b) shows budget sensitivity): with a
	// universe much larger than this, caches never fill, evictions never
	// happen, and nearest-replica routing enjoys an unrealistically large
	// advantage. See AblationObjectUniverse for the regime sweep.
	ObjectDivisor int

	// Objects, when positive, fixes the object-universe size directly and
	// overrides ObjectDivisor.
	Objects int

	// Policy selects the cache replacement/admission policy every
	// provisioned cache runs (default LRU, the paper's baseline). cmd/icnsim
	// resolves its -policy flag here; PolicySweep overrides it per row.
	Policy sim.CachePolicy

	// SweepTopology names the topology for the §5 sensitivity sweeps
	// (Figures 8-10, Table 4, the latency/capacity/size checks). The paper
	// uses the largest topology, ATT (the default); tests use a smaller,
	// warmer one.
	SweepTopology string

	// CustomTopology, when set, overrides SweepTopology with a
	// user-supplied map (see topo.LoadTopology and icnsim -topology-file).
	CustomTopology *topo.Topology

	// TraceFile names a request log for TraceDrivenDesigns; VarianceSeeds
	// sets the seed count for SeedVariance. Both are CLI conveniences.
	TraceFile     string
	VarianceSeeds int

	// Workers bounds the parallel runner's pool for every batch an
	// experiment launches; <= 0 means sim.DefaultWorkers(). cmd/icnsim
	// resolves its -workers flag here — there is no package-global worker
	// state anywhere.
	Workers int

	// Observer, when non-nil, is attached to every simulation run of the
	// experiment (baselines included), collecting hit levels, lookup hops,
	// evictions, and latency histograms across the whole sweep. Because
	// runs execute concurrently it must be safe for concurrent use;
	// sim.MetricsObserver is.
	Observer sim.Observer
}

// simOptions resolves the Params fields the parallel runner cares about.
func (p Params) simOptions() sim.Options {
	return sim.Options{Workers: p.Workers, Observer: p.Observer}
}

// DefaultParams returns the §4 baseline configuration: binary depth-5 access
// trees, F=5%, population-proportional budgets and origins, the Asia trace's
// best-fit Zipf exponent, and no spatial skew.
func DefaultParams(scale float64) Params {
	return Params{
		Scale:              scale,
		Seed:               20130812, // SIGCOMM'13 opening day
		Arity:              2,
		Depth:              5,
		BudgetFraction:     0.05,
		BudgetPolicy:       sim.BudgetProportional,
		OriginProportional: true,
		Alpha:              1.04,
		SpatialSkew:        0,
		ObjectDivisor:      360,
		SweepTopology:      "ATT",
	}
}

// sweepTopology resolves the topology used by the §5 sweeps.
func (p Params) sweepTopology() *topo.Topology {
	if p.CustomTopology != nil {
		return p.CustomTopology
	}
	tp := topo.ByName(p.SweepTopology)
	if tp == nil {
		tp = topo.ATT()
	}
	return tp
}

// workloadSize returns the request and object counts for the paper's Asia
// workload at the configured scale (1.8M requests at scale 1; see
// ObjectDivisor for the object-universe sizing).
func (p Params) workloadSize() (requests, objects int) {
	requests = int(1_800_000 * p.Scale)
	if requests < 1000 {
		requests = 1000
	}
	if p.Objects > 0 {
		return requests, p.Objects
	}
	div := p.ObjectDivisor
	if div <= 0 {
		div = 360
	}
	objects = requests / div
	if objects < 200 {
		objects = 200
	}
	return requests, objects
}

// buildNetAndSizes resolves the network and workload dimensions for a
// topology without materializing requests.
func (p Params) buildNet(tp *topo.Topology) (*topo.Network, int, int) {
	net := topo.NewNetwork(tp, p.Arity, p.Depth)
	requests, objects := p.workloadSize()
	return net, requests, objects
}

// Workload materializes the simulation inputs for one topology: the network,
// a base simulator config (placement/routing fields unset; stamp a Design
// onto it), and the request stream.
func (p Params) Workload(tp *topo.Topology) (sim.Config, []sim.Request) {
	net := topo.NewNetwork(tp, p.Arity, p.Depth)
	requests, objects := p.workloadSize()
	weights := tp.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, p.OriginProportional, p.Seed+1)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests:         requests,
		Objects:          objects,
		Alpha:            p.Alpha,
		SpatialSkew:      p.SpatialSkew,
		PoPWeights:       weights,
		Leaves:           net.LeavesPerTree(),
		Seed:             p.Seed + 2,
		TemporalLocality: p.TemporalLocality,
	})
	cfg := sim.Config{
		Network:        net,
		Objects:        objects,
		Origins:        origins,
		BudgetFraction: p.BudgetFraction,
		BudgetPolicy:   p.BudgetPolicy,
		Policy:         p.Policy,
		Observer:       p.Observer,
	}
	return cfg, reqs
}

// GapNRvsEdge runs ICN-NR and EDGE on the same workload and returns
// RelImprov(ICN-NR) - RelImprov(EDGE) per metric, the sensitivity-analysis
// measure of §5.
func GapNRvsEdge(cfg sim.Config, reqs []sim.Request) (sim.Improvement, error) {
	gaps, err := gapBatch([]gapCase{{a: sim.ICNNR, b: sim.EDGE, cfg: cfg, reqs: reqs}}, sim.Options{})
	if err != nil {
		return sim.Improvement{}, err
	}
	return gaps[0], nil
}

// gapCase is one point of a sensitivity sweep: the workload plus the two
// designs whose improvement difference is measured.
type gapCase struct {
	a, b sim.Design
	cfg  sim.Config
	reqs []sim.Request
}

// gapBatch evaluates RelImprov(a) - RelImprov(b) for every case, fanning
// all runs (baseline, a, b per case) across the parallel runner in one
// batch. Results are ordered and deterministic regardless of worker count.
func gapBatch(cases []gapCase, opt sim.Options) ([]sim.Improvement, error) {
	sets := make([]sim.DesignSet, len(cases))
	for i, c := range cases {
		sets[i] = sim.DesignSet{Base: c.cfg, Designs: []sim.Design{c.a, c.b}, Reqs: c.reqs}
	}
	results, err := sim.CompareSets(sets, opt)
	if err != nil {
		return nil, err
	}
	gaps := make([]sim.Improvement, len(cases))
	for i, r := range results {
		gaps[i] = sim.Gap(r[0].Improvement, r[1].Improvement)
	}
	return gaps, nil
}

// nrEdgeCases builds the standard ICN-NR vs EDGE case list from parallel
// slices of workloads.
func nrEdgeCases(cfgs []sim.Config, reqss [][]sim.Request) []gapCase {
	cases := make([]gapCase, len(cfgs))
	for i := range cfgs {
		cases[i] = gapCase{a: sim.ICNNR, b: sim.EDGE, cfg: cfgs[i], reqs: reqss[i]}
	}
	return cases
}
