package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"idicn/internal/sim"
)

// DeploymentRow reports one partial-deployment point: caches deployed at
// the given fraction of PoPs (largest populations first), with latency
// improvements measured separately for users behind deployed and
// undeployed PoPs.
type DeploymentRow struct {
	Fraction     float64 // fraction of PoPs with caches
	DeployedPoPs int
	// DeployedImprovement is the mean-latency improvement (over the
	// no-cache baseline) for requests arriving at deployed PoPs.
	DeployedImprovement float64
	// UndeployedImprovement is the same for PoPs without caches.
	UndeployedImprovement float64
	// OverallImprovement covers all requests.
	OverallImprovement float64
}

// AblationIncrementalDeployment examines the paper's deployment argument
// (§4.3): "there is an immediate benefit to a group of users who have a
// cache server deployed near their access gateways [and] this benefit is
// independent of deployments (or the lack thereof) in the rest of the
// network." Edge caches are deployed at a growing fraction of PoPs
// (largest first) under the EDGE design, and the latency improvement is
// measured separately for deployed and undeployed populations.
func AblationIncrementalDeployment(p Params, fractions []float64) ([]DeploymentRow, error) {
	if fractions == nil {
		fractions = []float64{0.1, 0.25, 0.5, 0.75, 1}
	}
	tp := p.sweepTopology()
	cfg, reqs := p.Workload(tp)

	// PoPs ordered by population, most populous first.
	order := make([]int, tp.Graph.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return tp.Population[order[a]] > tp.Population[order[b]]
	})

	// One parallel batch: job 0 is the shared no-cache baseline, followed
	// by one EDGE run per deployment fraction.
	jobs := []sim.Job{{Config: sim.BaselineConfig(cfg), Reqs: reqs}}
	counts := make([]int, len(fractions))
	deployments := make([][]bool, len(fractions))
	for i, f := range fractions {
		count := int(float64(len(order))*f + 0.5)
		if count < 1 {
			count = 1
		}
		if count > len(order) {
			count = len(order)
		}
		deployed := make([]bool, len(order))
		for _, pop := range order[:count] {
			deployed[pop] = true
		}
		run := sim.EDGE.Apply(cfg)
		run.Deployed = deployed
		counts[i], deployments[i] = count, deployed
		jobs = append(jobs, sim.Job{Config: run, Reqs: reqs})
	}
	results, err := sim.Run(jobs, p.simOptions())
	if err != nil {
		return nil, err
	}
	baseline := results[0]

	rows := make([]DeploymentRow, 0, len(fractions))
	for i, f := range fractions {
		res := results[i+1]
		rows = append(rows, DeploymentRow{
			Fraction:              f,
			DeployedPoPs:          counts[i],
			DeployedImprovement:   groupImprovement(baseline, res, deployments[i], true),
			UndeployedImprovement: groupImprovement(baseline, res, deployments[i], false),
			OverallImprovement:    sim.Improvements(baseline, res).Latency,
		})
	}
	return rows, nil
}

// groupImprovement computes the mean-latency improvement over the baseline
// restricted to requests whose arrival PoP's deployment status matches
// want.
func groupImprovement(base, run sim.Result, deployed []bool, want bool) float64 {
	var baseSum, runSum float64
	var n int64
	for pop := range deployed {
		if deployed[pop] != want {
			continue
		}
		baseSum += base.PoPLatency[pop]
		runSum += run.PoPLatency[pop]
		n += base.PoPRequests[pop]
	}
	if n == 0 || baseSum == 0 {
		return 0
	}
	return (baseSum - runSum) / baseSum * 100
}

// FormatDeployment renders the incremental-deployment ablation.
func FormatDeployment(rows []DeploymentRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Deployed fraction\tPoPs\tDeployed users%\tUndeployed users%\tOverall%")
	for _, r := range rows {
		fmt.Fprintf(w, "%.2f\t%d\t%.2f\t%.2f\t%.2f\n",
			r.Fraction, r.DeployedPoPs, r.DeployedImprovement, r.UndeployedImprovement, r.OverallImprovement)
	}
	flushTab(w)
	return b.String()
}
