package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
)

// FormatTable2 renders Table 2 rows as an aligned text table.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	w := newTab(&b)
	fmt.Fprintln(w, "Location\tRequests\tZipf alpha (fit)\talpha (MLE)\tR^2\tpaper")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.3f\t%.2f\n",
			r.Location, r.Requests, r.AlphaFit, r.AlphaMLE, r.R2, r.PaperAlpha)
	}
	flushTab(w)
	return b.String()
}

// FormatFigure2 renders the Figure 2 level fractions.
func FormatFigure2(rows []Figure2Row) string {
	var b strings.Builder
	w := newTab(&b)
	fmt.Fprint(w, "alpha")
	if len(rows) > 0 {
		for l := 1; l <= len(rows[0].Fractions); l++ {
			fmt.Fprintf(w, "\tL%d", l)
		}
	}
	fmt.Fprintln(w, "\t(last level = origin)")
	for _, r := range rows {
		fmt.Fprintf(w, "%.1f", r.Alpha)
		for _, f := range r.Fractions {
			fmt.Fprintf(w, "\t%.3f", f)
		}
		fmt.Fprintln(w, "\t")
	}
	flushTab(w)
	return b.String()
}

// FormatFigure renders Figure 6/7 rows grouped by topology, one line per
// design with the three improvement percentages.
func FormatFigure(rows []FigureRow) string {
	var b strings.Builder
	w := newTab(&b)
	fmt.Fprintln(w, "Topology\tDesign\tLatency%\tCongestion%\tOriginLoad%")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\t%.2f\n",
			r.Topology, r.Design, r.Imp.Latency, r.Imp.Congestion, r.Imp.OriginLoad)
	}
	flushTab(w)
	return b.String()
}

// FormatSweep renders a Figure 8 sweep with a caller-supplied x-axis label.
func FormatSweep(xLabel string, points []SweepPoint) string {
	var b strings.Builder
	w := newTab(&b)
	fmt.Fprintf(w, "%s\tDelayGap%%\tCongestionGap%%\tOriginGap%%\n", xLabel)
	for _, pt := range points {
		fmt.Fprintf(w, "%g\t%.2f\t%.2f\t%.2f\n", pt.X, pt.Gap.Latency, pt.Gap.Congestion, pt.Gap.OriginLoad)
	}
	flushTab(w)
	return b.String()
}

// FormatFigure9 renders the best-case progression.
func FormatFigure9(steps []Figure9Step) string {
	var b strings.Builder
	w := newTab(&b)
	fmt.Fprintln(w, "Step\tLatencyGap%\tCongestionGap%\tOriginGap%")
	for _, s := range steps {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\n", s.Name, s.Gap.Latency, s.Gap.Congestion, s.Gap.OriginLoad)
	}
	flushTab(w)
	return b.String()
}

// FormatFigure10 renders the gap-bridging variants.
func FormatFigure10(rows []Figure10Row) string {
	var b strings.Builder
	w := newTab(&b)
	fmt.Fprintln(w, "EDGE variant\tLatencyGap%\tCongestionGap%\tOriginGap%")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\n", r.Variant, r.Gap.Latency, r.Gap.Congestion, r.Gap.OriginLoad)
	}
	flushTab(w)
	return b.String()
}

// FormatTable3 renders the trace-versus-synthetic validation.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	w := newTab(&b)
	fmt.Fprintln(w, "Topology\tTrace\tSynthetic\tDifference")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\n", r.Topology, r.TraceGap, r.SynthGap, r.Difference)
	}
	flushTab(w)
	return b.String()
}

// FormatTable4 renders the arity sweep.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	w := newTab(&b)
	fmt.Fprintln(w, "Arity\tDepth\tLatency gain%\tCongestion gain%\tOrigin load%")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%.2f\t%.2f\n", r.Arity, r.Depth, r.LatencyGain, r.CongestionGain, r.OriginGain)
	}
	flushTab(w)
	return b.String()
}

// FormatNamedGaps renders a sensitivity variant list.
func FormatNamedGaps(title string, rows []NamedGap) string {
	var b strings.Builder
	w := newTab(&b)
	fmt.Fprintf(w, "%s\tLatencyGap%%\tCongestionGap%%\tOriginGap%%\n", title)
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\n", r.Name, r.Gap.Latency, r.Gap.Congestion, r.Gap.OriginLoad)
	}
	flushTab(w)
	return b.String()
}

// FormatFigure1 renders a downsampled rank/frequency listing per location.
func FormatFigure1(series map[string][]int64, points int) string {
	var b strings.Builder
	names := make([]string, 0, len(series))
	// Order-insensitive: the keys are collected and sorted before any output.
	//icnvet:ignore determinism
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rf := series[name]
		fmt.Fprintf(&b, "%s: %d distinct objects; rank->count samples:", name, len(rf))
		step := len(rf) / points
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(rf); i += step {
			fmt.Fprintf(&b, " %d:%d", i+1, rf[i])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func newTab(b *strings.Builder) *tabwriter.Writer {
	return tabwriter.NewWriter(b, 2, 4, 2, ' ', 0)
}

// flushTab completes a table built with newTab. Every table in this package
// renders into a strings.Builder, which cannot fail, so a flush error can
// only mean a programming bug — surface it instead of dropping it.
func flushTab(w *tabwriter.Writer) {
	if err := w.Flush(); err != nil {
		panic("experiments: tabwriter flush: " + err.Error())
	}
}

// FormatDegradation renders the failure-degradation curve.
func FormatDegradation(rows []DegradationRow) string {
	var b strings.Builder
	w := newTab(&b)
	fmt.Fprintln(w, "Design\tFailed caches\tResolver\tLatency%\tCongestion%\tOriginLoad%\tRetained%")
	for _, r := range rows {
		res := "up"
		if r.ResolverDown {
			res = "down"
		}
		fmt.Fprintf(w, "%s\t%.2f\t%s\t%.2f\t%.2f\t%.2f\t%.1f\n",
			r.Design, r.FailFraction, res, r.Imp.Latency, r.Imp.Congestion, r.Imp.OriginLoad, r.RetainedLatency)
	}
	flushTab(w)
	return b.String()
}
