package experiments

import (
	"fmt"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"

	"idicn/internal/sim"
	"idicn/internal/topo"
	"idicn/internal/trace"
)

// Tests run at tiny scale so the whole suite stays fast on one core; the
// paper-shape assertions are correspondingly loose. Paper-scale checks live
// in the benchmark harness (bench_test.go at the repo root).
const testScale = 0.02

// testParams uses shallower trees and the small Abilene topology for the
// sensitivity sweeps so that caches are warm (hundreds of requests per leaf)
// even at test scale; with the paper's ATT topology the tiny test workload
// would leave every cache cold and the trends meaningless.
func testParams() Params {
	p := DefaultParams(testScale)
	p.Depth = 3
	p.Objects = 2000
	p.SweepTopology = "Abilene"
	return p
}

func TestTable2FitsVantagePoints(t *testing.T) {
	rows, err := Table2(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	wantOrder := []string{"US", "Europe", "Asia"}
	for i, r := range rows {
		if r.Location != wantOrder[i] {
			t.Errorf("row %d location %s, want %s", i, r.Location, wantOrder[i])
		}
		if math.Abs(r.AlphaFit-r.PaperAlpha) > 0.25 {
			t.Errorf("%s: fitted alpha %.3f far from paper %.2f", r.Location, r.AlphaFit, r.PaperAlpha)
		}
		if r.R2 < 0.8 {
			t.Errorf("%s: weak fit r2=%.3f", r.Location, r.R2)
		}
	}
	// Relative ordering must match the paper: Europe < US < Asia.
	if !(rows[1].AlphaFit < rows[0].AlphaFit && rows[0].AlphaFit < rows[2].AlphaFit) {
		t.Errorf("alpha ordering wrong: US=%.3f Europe=%.3f Asia=%.3f",
			rows[0].AlphaFit, rows[1].AlphaFit, rows[2].AlphaFit)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "Asia") {
		t.Errorf("FormatTable2 output missing Asia:\n%s", out)
	}
}

func TestFigure1Series(t *testing.T) {
	series, err := Figure1Series(0.01, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("got %d series", len(series))
	}
	for name, rf := range series {
		if len(rf) == 0 || len(rf) > 50 {
			t.Errorf("%s: series length %d", name, len(rf))
		}
		for i := 1; i < len(rf); i++ {
			if rf[i] > rf[i-1] {
				t.Errorf("%s: rank-frequency not descending at %d", name, i)
			}
		}
	}
	if out := FormatFigure1(series, 5); !strings.Contains(out, "US") {
		t.Errorf("FormatFigure1 missing US:\n%s", out)
	}
}

func TestFigure2Shape(t *testing.T) {
	rows := Figure2()
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		sum := 0.0
		for _, f := range r.Fractions {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha=%v: fractions sum to %v", r.Alpha, sum)
		}
		// Intermediate levels (2..5) each serve less than the edge.
		for l := 1; l < 5; l++ {
			if r.Fractions[l] >= r.Fractions[0] {
				t.Errorf("alpha=%v: level %d (%.3f) >= leaf (%.3f)", r.Alpha, l+1, r.Fractions[l], r.Fractions[0])
			}
		}
	}
	if out := FormatFigure2(rows); !strings.Contains(out, "origin") {
		t.Errorf("FormatFigure2 header wrong:\n%s", out)
	}
}

func TestFigure6PaperShape(t *testing.T) {
	// Runs the Figure 6 computation for a single topology to keep the unit
	// test cheap; the full 8-topology sweep runs in the benchmarks.
	p := testParams()
	cfg, reqs := p.Workload(topo.Abilene())
	results, err := sim.Compare(cfg, sim.BaselineDesigns(), reqs, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range results {
		byName[r.Design.Name] = r.Improvement.Latency
		if r.Improvement.Latency <= 0 {
			t.Errorf("%s latency improvement %v <= 0", r.Design.Name, r.Improvement.Latency)
		}
	}
	// Key paper findings, loosely: the ICN-NR over ICN-SP edge is small,
	// and EDGE designs are within striking distance of ICN-NR.
	if byName["ICN-NR"]-byName["ICN-SP"] > 10 {
		t.Errorf("NR over SP gap = %v, expected marginal", byName["ICN-NR"]-byName["ICN-SP"])
	}
	if byName["ICN-NR"]-byName["EDGE-Coop"] > 15 {
		t.Errorf("NR over EDGE-Coop gap = %v, expected small", byName["ICN-NR"]-byName["EDGE-Coop"])
	}
}

func TestFigure8aGapShrinksWithAlpha(t *testing.T) {
	p := testParams()
	points, err := Figure8a(p, []float64{0.3, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	if points[1].Gap.Latency > points[0].Gap.Latency+1 {
		t.Errorf("gap grew with alpha: %.2f -> %.2f", points[0].Gap.Latency, points[1].Gap.Latency)
	}
	if out := FormatSweep("alpha", points); !strings.Contains(out, "alpha") {
		t.Error("FormatSweep missing label")
	}
}

func TestFigure8cSkewKeepsGapPositive(t *testing.T) {
	// The paper's skew-amplifies-NR effect needs its full-scale ATT setup
	// (long core paths and warm leaves); at test scale we assert the sweep
	// runs, stays positive, and moves the gap only modestly. The full trend
	// is exercised by the paper-scale bench (BenchmarkFig8cSkewSweep).
	p := testParams()
	points, err := Figure8c(p, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for _, pt := range points {
		if pt.Gap.Latency <= 0 {
			t.Errorf("skew=%v: NR-over-EDGE gap %.2f, want positive", pt.X, pt.Gap.Latency)
		}
	}
	if math.Abs(points[2].Gap.Latency-points[0].Gap.Latency) > 8 {
		t.Errorf("skew moved the gap implausibly: %.2f -> %.2f",
			points[0].Gap.Latency, points[2].Gap.Latency)
	}
}

func TestFigure8bNonMonotone(t *testing.T) {
	// In the warm regime the paper's Figure 8(b) shape appears: near-zero
	// gap for tiny budgets, a peak at a few percent, and a decline once
	// edge caches are large enough to capture most requests.
	p := testParams()
	p.Objects = 100 // high warmth: requests/leaf >> universe
	points, err := Figure8b(p, []float64{1e-3, 0.02, 0.05, 1})
	if err != nil {
		t.Fatal(err)
	}
	tiny, peak1, peak2, full := points[0].Gap.Latency, points[1].Gap.Latency, points[2].Gap.Latency, points[3].Gap.Latency
	peak := math.Max(peak1, peak2)
	if tiny > 3 {
		t.Errorf("gap at F=0.1%% is %.2f, want near zero", tiny)
	}
	if peak < tiny {
		t.Errorf("no rise toward the peak: tiny=%.2f peak=%.2f", tiny, peak)
	}
	if full > peak {
		t.Errorf("gap did not decline past the peak: peak=%.2f full=%.2f", peak, full)
	}
}

func TestFigure9Progression(t *testing.T) {
	p := testParams()
	steps, err := Figure9(p)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"Baseline", "Alpha*", "Skew*", "Budget-Dist*", "Node-Budget*"}
	if len(steps) != len(wantNames) {
		t.Fatalf("got %d steps", len(steps))
	}
	for i, s := range steps {
		if s.Name != wantNames[i] {
			t.Errorf("step %d = %s, want %s", i, s.Name, wantNames[i])
		}
	}
	// Every step keeps ICN-NR ahead of EDGE; the magnitude ordering of the
	// steps depends on workload warmth (see EXPERIMENTS.md), so the
	// paper-scale comparison lives in the bench harness.
	for _, s := range steps {
		if s.Gap.Latency <= 0 {
			t.Errorf("step %s: gap %.2f, want positive", s.Name, s.Gap.Latency)
		}
	}
	if out := FormatFigure9(steps); !strings.Contains(out, "Node-Budget*") {
		t.Error("FormatFigure9 missing step name")
	}
}

func TestFigure10BridgesGap(t *testing.T) {
	p := testParams()
	rows, err := Figure10(p)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Variant] = r.Gap.Latency
	}
	for _, want := range []string{"Baseline", "2-Levels", "Coop", "2-Levels-Coop", "Norm", "Norm-Coop", "Double-Budget-Coop", "Section-4", "Inf-Budget"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("missing variant %q", want)
		}
	}
	// Each mitigation should not widen the gap; Double-Budget-Coop should be
	// the strongest of the budget variants.
	if byName["Norm-Coop"] > byName["Baseline"]+1 {
		t.Errorf("Norm-Coop gap %.2f worse than Baseline %.2f", byName["Norm-Coop"], byName["Baseline"])
	}
	if byName["Double-Budget-Coop"] > byName["Norm-Coop"]+1 {
		t.Errorf("Double-Budget-Coop gap %.2f worse than Norm-Coop %.2f",
			byName["Double-Budget-Coop"], byName["Norm-Coop"])
	}
	if out := FormatFigure10(rows); !strings.Contains(out, "Inf-Budget") {
		t.Error("FormatFigure10 missing variant")
	}
}

func TestTable3SynthCloseToTrace(t *testing.T) {
	p := testParams()
	rows, err := Table3(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Difference) > 6 {
			t.Errorf("%s: trace/synthetic difference %.2f too large", r.Topology, r.Difference)
		}
	}
	if out := FormatTable3(rows); !strings.Contains(out, "Abilene") {
		t.Error("FormatTable3 missing topology")
	}
}

func TestTable4GapShrinksWithArity(t *testing.T) {
	p := testParams()
	rows, err := Table4(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Arity != 2 || rows[3].Arity != 64 {
		t.Fatalf("arity order wrong: %+v", rows)
	}
	// ICN-NR stays ahead at every arity; the paper's shrinking-gap trend
	// requires its full-scale warmth and is examined in EXPERIMENTS.md.
	for _, r := range rows {
		if r.LatencyGain <= 0 {
			t.Errorf("arity %d: gap %.2f, want positive", r.Arity, r.LatencyGain)
		}
	}
	if out := FormatTable4(rows); !strings.Contains(out, "64") {
		t.Error("FormatTable4 missing arity 64")
	}
}

func TestSensitivityLatencyModels(t *testing.T) {
	p := testParams()
	rows, err := SensitivityLatencyModels(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	if out := FormatNamedGaps("model", rows); !strings.Contains(out, "arithmetic") {
		t.Error("format missing variant")
	}
}

func TestSensitivityCapacity(t *testing.T) {
	p := testParams()
	rows, err := SensitivityCapacity(p, []int64{0, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "unlimited" || rows[1].Name != "cap=50" {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestSensitivityObjectSizesAndPolicy(t *testing.T) {
	p := testParams()
	sizes, err := SensitivityObjectSizes(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 2 {
		t.Fatalf("sizes rows = %+v", sizes)
	}
	pol, err := SensitivityPolicy(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pol) != 2 {
		t.Fatalf("policy rows = %+v", pol)
	}
	// LRU and LFU should tell a qualitatively similar story.
	if math.Abs(pol[0].Gap.Latency-pol[1].Gap.Latency) > 10 {
		t.Errorf("LRU vs LFU gaps diverge: %+v", pol)
	}
}

func TestAblationObjectUniverseWarmthTrend(t *testing.T) {
	p := testParams()
	rows, err := AblationObjectUniverse(p, []int{2000, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Improvements) != 5 {
			t.Fatalf("row %d has %d designs", r.Objects, len(r.Improvements))
		}
		if r.NRvsEdge.Latency <= 0 {
			t.Errorf("objects=%d: NR-EDGE gap %.2f, want positive", r.Objects, r.NRvsEdge.Latency)
		}
	}
	if out := FormatAblation(rows); !strings.Contains(out, "NR-EDGE gap") {
		t.Error("FormatAblation header missing")
	}
}

func TestFloodProtection(t *testing.T) {
	p := testParams()
	rows, err := FloodProtection(p, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0].Design != "No-Cache" {
		t.Fatalf("rows = %+v", rows)
	}
	byName := map[string]FloodRow{}
	for _, r := range rows {
		byName[r.Design] = r
	}
	// Caching absorbs the flood: every cached design slashes origin load.
	for _, d := range []string{"ICN-SP", "ICN-NR", "EDGE", "EDGE-Coop"} {
		r := byName[d]
		if r.OriginShare > 0.6 {
			t.Errorf("%s: origin share %.3f; the flood was not absorbed", d, r.OriginShare)
		}
		if r.MaxOriginLoad >= byName["No-Cache"].MaxOriginLoad {
			t.Errorf("%s: max origin load %d not reduced from %d", d, r.MaxOriginLoad, byName["No-Cache"].MaxOriginLoad)
		}
	}
	// The paper's §7 point: EDGE provides much of the same flood protection
	// as pervasive ICN (similar origin-load improvements).
	if gap := byName["ICN-NR"].Improvement.OriginLoad - byName["EDGE"].Improvement.OriginLoad; gap > 25 {
		t.Errorf("EDGE flood protection trails ICN-NR by %.1f points; expected comparable", gap)
	}
	if out := FormatFlood(rows); !strings.Contains(out, "No-Cache") {
		t.Error("FormatFlood missing baseline row")
	}
}

func TestAblationLookupCostErodesGap(t *testing.T) {
	p := testParams()
	points, err := AblationLookupCost(p, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	if points[1].Gap.Latency >= points[0].Gap.Latency {
		t.Errorf("lookup penalty did not erode the NR gap: %.2f -> %.2f",
			points[0].Gap.Latency, points[1].Gap.Latency)
	}
	// Congestion and origin load are unaffected by a pure latency penalty.
	if points[1].Gap.Congestion != points[0].Gap.Congestion {
		t.Errorf("penalty changed congestion: %.2f vs %.2f",
			points[0].Gap.Congestion, points[1].Gap.Congestion)
	}
}

func TestIncrementalDeploymentIndependence(t *testing.T) {
	p := testParams()
	rows, err := AblationIncrementalDeployment(p, []float64{0.25, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	partial, full := rows[0], rows[1]
	// Deployed users benefit substantially even at partial deployment.
	if partial.DeployedImprovement < 20 {
		t.Errorf("deployed users improved only %.1f%% at 25%% deployment", partial.DeployedImprovement)
	}
	// Undeployed users see essentially nothing under EDGE (their requests
	// pass no caches): the paper's independence claim.
	if partial.UndeployedImprovement > 5 {
		t.Errorf("undeployed users improved %.1f%%; EDGE benefits should be local", partial.UndeployedImprovement)
	}
	// The benefit for deployed users barely depends on how many others
	// deployed: compare deployed-user improvement at 25%% vs 100%%.
	if diff := full.DeployedImprovement - partial.DeployedImprovement; diff > 10 || diff < -10 {
		t.Errorf("deployed-user benefit depends on others' deployment: %.1f vs %.1f",
			partial.DeployedImprovement, full.DeployedImprovement)
	}
	if out := FormatDeployment(rows); !strings.Contains(out, "Undeployed") {
		t.Error("FormatDeployment header missing")
	}
}

func TestAblationTemporalLocalityCompressesGap(t *testing.T) {
	p := testParams()
	points, err := AblationTemporalLocality(p, []float64{0, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	// The reproduction's central hypothesis: trace-like temporal locality
	// warms edge caches and compresses the NR advantage.
	if points[1].Gap.Latency >= points[0].Gap.Latency {
		t.Errorf("locality did not compress the gap: %.2f -> %.2f",
			points[0].Gap.Latency, points[1].Gap.Latency)
	}
}

func TestAblationPolicyOptimality(t *testing.T) {
	p := testParams()
	rows, err := AblationPolicyOptimality(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Policy != "Belady-MIN (offline optimal)" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows[1:] {
		if r.FractionOfOpt > 1.0001 {
			t.Errorf("%s beat the offline optimum: %v", r.Policy, r.FractionOfOpt)
		}
		if r.FractionOfOpt < 0.4 {
			t.Errorf("%s at %.2f of optimal; implausibly poor", r.Policy, r.FractionOfOpt)
		}
	}
	if out := FormatPolicyOptimality(rows); !strings.Contains(out, "Belady") {
		t.Error("format missing Belady row")
	}
}

func TestTraceDrivenDesigns(t *testing.T) {
	// Write a small log, then drive the designs from it.
	dir := t.TempDir()
	logPath := dir + "/test.log"
	m := trace.Asia(0.003)
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteLog(f, m.Generate()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p := testParams()
	rows, err := TraceDrivenDesigns(p, logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Imp.Latency <= 0 {
			t.Errorf("%s: latency improvement %v", r.Design, r.Imp.Latency)
		}
	}
	if _, err := TraceDrivenDesigns(p, dir+"/missing.log"); err == nil {
		t.Error("missing log accepted")
	}
}

func TestSeedVariance(t *testing.T) {
	p := testParams()
	p.Scale = 0.01
	rows, err := SeedVariance(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Min > r.Mean || r.Mean > r.Max {
			t.Errorf("%s: min %.2f mean %.2f max %.2f inconsistent", r.Metric, r.Min, r.Mean, r.Max)
		}
		if r.StdDev < 0 {
			t.Errorf("%s: negative stddev", r.Metric)
		}
	}
	if out := FormatVariance(rows); !strings.Contains(out, "latency") {
		t.Error("FormatVariance missing metric")
	}
}

func TestServeDepthProfile(t *testing.T) {
	p := testParams()
	profiles, analytic, err := ServeDepthProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("got %d profiles", len(profiles))
	}
	for _, prof := range profiles {
		sum := 0.0
		for _, f := range prof.Fractions {
			if f < 0 {
				t.Fatalf("%s: negative fraction", prof.Design)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: fractions sum to %v", prof.Design, sum)
		}
	}
	// EDGE serves only at leaves (level 1) and the origin.
	edge := profiles[1]
	for l := 1; l < len(edge.Fractions)-1; l++ {
		if edge.Fractions[l] != 0 {
			t.Errorf("EDGE served %.3f at level %d; should be leaf/origin only", edge.Fractions[l], l+1)
		}
	}
	// ICN-SP's leaf share should be in the same ballpark as the analytical
	// optimum's leaf share (LRU vs optimal placement differ, but not wildly).
	icn := profiles[0]
	if icn.Fractions[0] < analytic[0]*0.4 {
		t.Errorf("simulated leaf share %.3f far below model %.3f", icn.Fractions[0], analytic[0])
	}
	if out := FormatDepthProfile(profiles, analytic); !strings.Contains(out, "origin") {
		t.Error("format missing origin column")
	}
}

func TestAblationWarmupShrinksGap(t *testing.T) {
	p := testParams()
	points, err := AblationWarmup(p, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	if points[1].Gap.Latency > points[0].Gap.Latency+1 {
		t.Errorf("steady-state gap %.2f larger than whole-stream %.2f",
			points[1].Gap.Latency, points[0].Gap.Latency)
	}
}

// Smoke-test the full eight-topology sweeps at minimal scale; the
// paper-scale versions run via cmd/icnsim and the bench harness.
func TestFigure6And7AllTopologies(t *testing.T) {
	p := DefaultParams(0.001)
	p.Depth = 2
	rows6, err := Figure6(p)
	if err != nil {
		t.Fatal(err)
	}
	rows7, err := Figure7(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows6) != 8*5 || len(rows7) != 8*5 {
		t.Fatalf("rows: fig6=%d fig7=%d, want 40 each", len(rows6), len(rows7))
	}
	seen := map[string]bool{}
	for _, r := range rows6 {
		seen[r.Topology] = true
	}
	if len(seen) != 8 {
		t.Errorf("fig6 covered %d topologies", len(seen))
	}
}

func TestAblationCoopScopeWidensCoverage(t *testing.T) {
	p := testParams()
	points, err := AblationCoopScope(p, []int{0, 2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// Wider cooperation narrows the gap monotonically (small tolerance).
	if points[1].Gap.Latency > points[0].Gap.Latency+0.5 {
		t.Errorf("scope 2 gap %.2f worse than scope 0 %.2f", points[1].Gap.Latency, points[0].Gap.Latency)
	}
	if points[2].Gap.Latency > points[1].Gap.Latency+0.5 {
		t.Errorf("scope 6 gap %.2f worse than scope 2 %.2f", points[2].Gap.Latency, points[1].Gap.Latency)
	}
}

func TestTable4Normalized(t *testing.T) {
	p := testParams()
	rows, err := Table4Normalized(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	plain, err := Table4(p)
	if err != nil {
		t.Fatal(err)
	}
	// Normalizing budgets can only help EDGE: the gap at each arity is no
	// larger than against plain EDGE (small tolerance for noise).
	for i := range rows {
		if rows[i].LatencyGain > plain[i].LatencyGain+1 {
			t.Errorf("arity %d: normalized gap %.2f exceeds plain %.2f",
				rows[i].Arity, rows[i].LatencyGain, plain[i].LatencyGain)
		}
	}
}

func TestDegradationCurve(t *testing.T) {
	p := testParams()
	rows, err := DegradationCurve(p, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // {EDGE, ICN-NR, ICN-NR/res-down} x {0, 0.3}
		t.Fatalf("got %d rows", len(rows))
	}
	byKey := map[string]DegradationRow{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%s@%g", r.Design, r.FailFraction)] = r
	}
	// Healthy rows are the reference: 100% retained by construction.
	for _, d := range []string{"EDGE", "ICN-NR"} {
		if got := byKey[d+"@0"].RetainedLatency; math.Abs(got-100) > 1e-9 {
			t.Errorf("%s healthy retained = %.2f, want 100", d, got)
		}
	}
	// Failures degrade but never below the no-cache baseline: improvements
	// stay non-negative, retained fraction strictly below healthy.
	for key, r := range byKey {
		if r.Imp.Latency < -1 {
			t.Errorf("%s: latency improvement %.2f fell below the no-cache baseline", key, r.Imp.Latency)
		}
	}
	if e0, e3 := byKey["EDGE@0"], byKey["EDGE@0.3"]; e3.Imp.Latency >= e0.Imp.Latency {
		t.Errorf("EDGE not degraded by failures: %.2f -> %.2f", e0.Imp.Latency, e3.Imp.Latency)
	}
	// Losing the resolution system costs ICN-NR part of its edge, but
	// on-path caches keep it above zero.
	nr, nrDown := byKey["ICN-NR@0"], byKey["ICN-NR/res-down@0"]
	if nrDown.Imp.Latency >= nr.Imp.Latency {
		t.Errorf("resolver outage did not hurt ICN-NR: %.2f -> %.2f", nr.Imp.Latency, nrDown.Imp.Latency)
	}
	if nrDown.Imp.Latency <= 0 {
		t.Errorf("resolver-down ICN-NR lost all benefit: %.2f", nrDown.Imp.Latency)
	}
	// Determinism: the seeded failure plan reproduces exactly.
	again, err := DegradationCurve(p, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, again) {
		t.Error("degradation curve not reproducible")
	}
	if out := FormatDegradation(rows); !strings.Contains(out, "Retained%") {
		t.Error("FormatDegradation header missing")
	}
}
