package experiments

import (
	"fmt"
	"math"
	"os"
	"strings"

	"idicn/internal/sim"
	"idicn/internal/trace"
)

// TraceDrivenDesigns runs the five representative designs on a request log
// file (as written by cmd/tracegen, or converted from a real CDN log into
// that format), assigning requests to PoPs proportional to population as
// §4.2 does with the Asia trace. The object universe is the log's own.
func TraceDrivenDesigns(p Params, logPath string) ([]FigureRow, error) {
	f, err := os.Open(logPath)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	defer f.Close()
	records, err := trace.ReadLog(f)
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("experiments: %s: empty log", logPath)
	}
	objects := 0
	for _, rec := range records {
		if int(rec.Object) >= objects {
			objects = int(rec.Object) + 1
		}
	}

	tp := p.sweepTopology()
	net, _, _ := p.buildNet(tp)
	weights := tp.PopulationWeights()
	reqs := trace.FromRecords(records, weights, net.LeavesPerTree(), p.Seed+3)
	origins := trace.OriginAssignment(objects, weights, p.OriginProportional, p.Seed+1)
	cfg := sim.Config{
		Network:        net,
		Objects:        objects,
		Origins:        origins,
		BudgetFraction: p.BudgetFraction,
		BudgetPolicy:   p.BudgetPolicy,
	}
	results, err := sim.Compare(cfg, sim.BaselineDesigns(), reqs, p.simOptions())
	if err != nil {
		return nil, err
	}
	rows := make([]FigureRow, 0, len(results))
	for _, r := range results {
		rows = append(rows, FigureRow{Topology: tp.Name, Design: r.Design.Name, Imp: r.Improvement})
	}
	return rows, nil
}

// VarianceRow summarizes the NR-over-EDGE gap across independent seeds.
type VarianceRow struct {
	Metric string
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// SeedVariance re-runs the headline gap measurement under n independent
// seeds (workload and origin assignment both re-drawn) and reports the
// spread, quantifying how much of any single number is noise.
func SeedVariance(p Params, n int) ([]VarianceRow, error) {
	if n < 2 {
		n = 5
	}
	cfgs := make([]sim.Config, n)
	reqss := make([][]sim.Request, n)
	for i := 0; i < n; i++ {
		pc := p
		pc.Seed = p.Seed + int64(i)*1000003
		cfgs[i], reqss[i] = pc.Workload(pc.sweepTopology())
	}
	gaps, err := gapBatch(nrEdgeCases(cfgs, reqss), p.simOptions())
	if err != nil {
		return nil, err
	}
	pick := func(name string, get func(sim.Improvement) float64) VarianceRow {
		row := VarianceRow{Metric: name, Min: get(gaps[0]), Max: get(gaps[0])}
		var sum, sumSq float64
		for _, g := range gaps {
			v := get(g)
			sum += v
			sumSq += v * v
			if v < row.Min {
				row.Min = v
			}
			if v > row.Max {
				row.Max = v
			}
		}
		mean := sum / float64(len(gaps))
		variance := sumSq/float64(len(gaps)) - mean*mean
		if variance < 0 {
			variance = 0
		}
		row.Mean = mean
		row.StdDev = math.Sqrt(variance)
		return row
	}
	return []VarianceRow{
		pick("latency", func(g sim.Improvement) float64 { return g.Latency }),
		pick("congestion", func(g sim.Improvement) float64 { return g.Congestion }),
		pick("origin-load", func(g sim.Improvement) float64 { return g.OriginLoad }),
	}, nil
}

// FormatVariance renders the seed-variance summary.
func FormatVariance(rows []VarianceRow) string {
	out := "Metric\tMean gap%\tStdDev\tMin\tMax\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s\t%.2f\t%.2f\t%.2f\t%.2f\n", r.Metric, r.Mean, r.StdDev, r.Min, r.Max)
	}
	return tabulate(out)
}

func tabulate(tsv string) string {
	var b strings.Builder
	w := newTab(&b)
	fmt.Fprint(w, tsv)
	flushTab(w)
	return b.String()
}
