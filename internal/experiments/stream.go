package experiments

import (
	"fmt"
	"os"

	"idicn/internal/sim"
	"idicn/internal/trace"
)

// IsBinaryTrace sniffs whether path holds a compact binary trace (as
// written by tracegen -format binary) rather than a text request log.
func IsBinaryTrace(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	magic := make([]byte, len(trace.BinaryMagic))
	if _, err := f.Read(magic); err != nil {
		return false
	}
	return string(magic) == trace.BinaryMagic
}

// StreamDesigns runs the five representative designs plus the no-caching
// baseline on a recorded binary trace, streaming it from disk once per run
// through the sharded runner — the trace is never materialized, so its
// length is bounded by disk, not RAM. The trace's header fixes the object
// universe and must match the configured topology's extents.
func StreamDesigns(p Params, path string) ([]FigureRow, error) {
	tp := p.sweepTopology()
	net, _, _ := p.buildNet(tp)

	meta, err := readBinaryMeta(path)
	if err != nil {
		return nil, err
	}
	if meta.PoPs != net.PoPs() || meta.Leaves != net.LeavesPerTree() {
		return nil, fmt.Errorf("experiments: trace %s was recorded for %d PoPs x %d leaves, topology has %d x %d",
			path, meta.PoPs, meta.Leaves, net.PoPs(), net.LeavesPerTree())
	}

	weights := tp.PopulationWeights()
	origins := trace.OriginAssignment(meta.Objects, weights, p.OriginProportional, p.Seed+1)
	cfg := sim.Config{
		Network:        net,
		Objects:        meta.Objects,
		Origins:        origins,
		BudgetFraction: p.BudgetFraction,
		BudgetPolicy:   p.BudgetPolicy,
	}
	opt := sim.StreamOptions{Workers: p.Workers, Observer: p.Observer}

	runOne := func(c sim.Config) (sim.Result, error) {
		f, err := os.Open(path)
		if err != nil {
			return sim.Result{}, fmt.Errorf("experiments: %w", err)
		}
		defer f.Close()
		br, err := trace.NewBinaryReader(f)
		if err != nil {
			return sim.Result{}, err
		}
		return sim.RunStream(c, br, opt)
	}

	base, err := runOne(sim.BaselineConfig(cfg))
	if err != nil {
		return nil, err
	}
	designs := sim.BaselineDesigns()
	rows := make([]FigureRow, 0, len(designs))
	for _, d := range designs {
		res, err := runOne(d.Apply(cfg))
		if err != nil {
			return nil, err
		}
		rows = append(rows, FigureRow{Topology: tp.Name, Design: d.Name, Imp: sim.Improvements(base, res)})
	}
	return rows, nil
}

func readBinaryMeta(path string) (trace.BinaryMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.BinaryMeta{}, fmt.Errorf("experiments: %w", err)
	}
	defer f.Close()
	br, err := trace.NewBinaryReader(f)
	if err != nil {
		return trace.BinaryMeta{}, err
	}
	return br.Meta(), nil
}
