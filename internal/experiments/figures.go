package experiments

import (
	"idicn/internal/sim"
	"idicn/internal/topo"
	"idicn/internal/treemodel"
)

// Figure2Row is one curve point of the paper's Figure 2: the fraction of
// requests served at each level of a 6-level binary tree under the optimal
// static placement.
type Figure2Row struct {
	Alpha     float64
	Fractions []float64 // index i = level i+1; last entry is the origin
}

// Figure2 reproduces the §2.2 analytical result for alpha in {0.7, 1.1,
// 1.5}: intermediate levels add little beyond the edge and the origin.
func Figure2() []Figure2Row {
	rows := make([]Figure2Row, 0, 3)
	for _, alpha := range []float64{0.7, 1.1, 1.5} {
		cfg := treemodel.Config{
			Arity: 2, Levels: 6, SlotsPerNode: 500, Objects: 10000, Alpha: alpha,
		}
		rows = append(rows, Figure2Row{Alpha: alpha, Fractions: cfg.LevelFractions()})
	}
	return rows
}

// FigureRow is one (topology, design) cell of Figures 6 and 7: the percent
// improvement over no caching on the three metrics.
type FigureRow struct {
	Topology string
	Design   string
	Imp      sim.Improvement
}

// Figure6 runs the five representative designs over all eight topologies
// with population-proportional budgets and origins (paper Figure 6).
func Figure6(p Params) ([]FigureRow, error) {
	p.BudgetPolicy = sim.BudgetProportional
	p.OriginProportional = true
	return designsOverTopologies(p)
}

// Figure7 is Figure 6 with uniform budgets and origin assignment
// (paper Figure 7).
func Figure7(p Params) ([]FigureRow, error) {
	p.BudgetPolicy = sim.BudgetUniform
	p.OriginProportional = false
	return designsOverTopologies(p)
}

func designsOverTopologies(p Params) ([]FigureRow, error) {
	// All topologies x all designs (plus one baseline per topology) go into
	// a single parallel batch: 8 x (5+1) = 48 independent runs.
	tops := topo.AllTopologies()
	sets := make([]sim.DesignSet, len(tops))
	for i, tp := range tops {
		cfg, reqs := p.Workload(tp)
		sets[i] = sim.DesignSet{Base: cfg, Designs: sim.BaselineDesigns(), Reqs: reqs}
	}
	results, err := sim.CompareSets(sets, p.simOptions())
	if err != nil {
		return nil, err
	}
	var rows []FigureRow
	for i, tp := range tops {
		for _, r := range results[i] {
			rows = append(rows, FigureRow{Topology: tp.Name, Design: r.Design.Name, Imp: r.Improvement})
		}
	}
	return rows, nil
}

// SweepPoint is one x-position of a Figure 8 sensitivity sweep: the ICN-NR
// over EDGE gap on the three metrics.
type SweepPoint struct {
	X   float64
	Gap sim.Improvement
}

// Figure8a sweeps the Zipf alpha (paper Figure 8(a)): the gap shrinks as
// popularity concentrates. Runs on the largest topology (ATT), as §5 does.
func Figure8a(p Params, alphas []float64) ([]SweepPoint, error) {
	if alphas == nil {
		alphas = []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6}
	}
	cfgs := make([]sim.Config, len(alphas))
	reqss := make([][]sim.Request, len(alphas))
	for i, a := range alphas {
		pc := p
		pc.Alpha = a
		cfgs[i], reqss[i] = pc.Workload(pc.sweepTopology())
	}
	gaps, err := gapBatch(nrEdgeCases(cfgs, reqss), p.simOptions())
	if err != nil {
		return nil, err
	}
	points := make([]SweepPoint, len(alphas))
	for i, a := range alphas {
		points[i] = SweepPoint{X: a, Gap: gaps[i]}
	}
	return points, nil
}

// Figure8b sweeps the per-router cache budget F (paper Figure 8(b), x-axis
// "individual cache sizes as percentage of total objects"). The paper finds
// a non-monotone gap peaking around F=2%.
func Figure8b(p Params, fractions []float64) ([]SweepPoint, error) {
	if fractions == nil {
		fractions = []float64{1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.02, 0.05, 0.1, 0.3, 1}
	}
	cfgs := make([]sim.Config, len(fractions))
	reqss := make([][]sim.Request, len(fractions))
	for i, f := range fractions {
		pc := p
		pc.BudgetFraction = f
		cfgs[i], reqss[i] = pc.Workload(pc.sweepTopology())
	}
	gaps, err := gapBatch(nrEdgeCases(cfgs, reqss), p.simOptions())
	if err != nil {
		return nil, err
	}
	points := make([]SweepPoint, len(fractions))
	for i, f := range fractions {
		points[i] = SweepPoint{X: f * 100, Gap: gaps[i]}
	}
	return points, nil
}

// Figure8c sweeps the spatial skew dial (paper Figure 8(c)): the gap grows
// as per-PoP popularity diverges.
func Figure8c(p Params, skews []float64) ([]SweepPoint, error) {
	if skews == nil {
		skews = []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	}
	cfgs := make([]sim.Config, len(skews))
	reqss := make([][]sim.Request, len(skews))
	for i, s := range skews {
		pc := p
		pc.SpatialSkew = s
		cfgs[i], reqss[i] = pc.Workload(pc.sweepTopology())
	}
	gaps, err := gapBatch(nrEdgeCases(cfgs, reqss), p.simOptions())
	if err != nil {
		return nil, err
	}
	points := make([]SweepPoint, len(skews))
	for i, s := range skews {
		points[i] = SweepPoint{X: s, Gap: gaps[i]}
	}
	return points, nil
}

// Figure9Step is one bar group of the paper's Figure 9: the ICN-NR over
// EDGE gap after progressively applying each NR-favoring parameter change.
type Figure9Step struct {
	Name string
	Gap  sim.Improvement
}

// bestCaseSteps applies the paper's Figure 9 progression to the baseline
// parameters: Alpha*=0.1, Skew*=1, Budget-Dist*=uniform, Node-Budget*=2%.
func bestCaseSteps(p Params) []struct {
	name  string
	apply func(*Params)
} {
	return []struct {
		name  string
		apply func(*Params)
	}{
		{"Baseline", func(*Params) {}},
		{"Alpha*", func(q *Params) { q.Alpha = 0.1 }},
		{"Skew*", func(q *Params) { q.SpatialSkew = 1 }},
		{"Budget-Dist*", func(q *Params) { q.BudgetPolicy = sim.BudgetUniform }},
		{"Node-Budget*", func(q *Params) { q.BudgetFraction = 0.02 }},
	}
}

// Figure9 progressively sets each configuration parameter to the value most
// favorable to ICN-NR and reports the resulting gap over EDGE (paper: the
// fully combined best case reaches at most ~17%).
func Figure9(p Params) ([]Figure9Step, error) {
	// The progression is cumulative in its parameters but each point's runs
	// are independent, so the whole staircase goes into one parallel batch.
	prog := bestCaseSteps(p)
	cfgs := make([]sim.Config, len(prog))
	reqss := make([][]sim.Request, len(prog))
	cur := p
	for i, st := range prog {
		st.apply(&cur)
		cfgs[i], reqss[i] = cur.Workload(cur.sweepTopology())
	}
	gaps, err := gapBatch(nrEdgeCases(cfgs, reqss), p.simOptions())
	if err != nil {
		return nil, err
	}
	steps := make([]Figure9Step, len(prog))
	for i, st := range prog {
		steps[i] = Figure9Step{Name: st.name, Gap: gaps[i]}
	}
	return steps, nil
}

// BestCaseParams returns the paper's fully combined ICN-NR best case
// (Figure 9's rightmost configuration).
func BestCaseParams(p Params) Params {
	cur := p
	for _, st := range bestCaseSteps(p) {
		st.apply(&cur)
	}
	return cur
}

// Figure10Row is one bar group of the paper's Figure 10: the gap between
// best-case ICN-NR and an EDGE variant.
type Figure10Row struct {
	Variant string
	Gap     sim.Improvement
}

// Figure10 bridges the best-case gap with simple EDGE extensions: a second
// caching level, sibling cooperation, normalized budgets, their combinations
// and a doubled budget, plus the Section-4 baseline and an infinite-budget
// reference. The paper finds Norm-Coop brings the best case down to ~6% and
// Double-Budget-Coop makes EDGE win outright.
func Figure10(p Params) ([]Figure10Row, error) {
	best := BestCaseParams(p)
	cfg, reqs := best.Workload(best.sweepTopology())

	variants := []sim.Design{
		{Name: "Baseline", Placement: sim.PlacementEdge, Routing: sim.RouteShortestPath},
		{Name: "2-Levels", Placement: sim.PlacementEdgeLevels, EdgeLevels: 2, Routing: sim.RouteShortestPath},
		{Name: "Coop", Placement: sim.PlacementEdge, Routing: sim.RouteShortestPath, SiblingCoop: true},
		{Name: "2-Levels-Coop", Placement: sim.PlacementEdgeLevels, EdgeLevels: 2, Routing: sim.RouteShortestPath, SiblingCoop: true},
		{Name: "Norm", Placement: sim.PlacementEdge, Routing: sim.RouteShortestPath, NormalizeBudget: true},
		{Name: "Norm-Coop", Placement: sim.PlacementEdge, Routing: sim.RouteShortestPath, SiblingCoop: true, NormalizeBudget: true},
		{Name: "Double-Budget-Coop", Placement: sim.PlacementEdge, Routing: sim.RouteShortestPath, SiblingCoop: true, NormalizeBudget: true, ExtraBudget: 2},
	}
	// One parallel batch covers the main variant comparison plus the two
	// reference configurations (Section-4 and Inf-Budget).
	sec4Cfg, sec4Reqs := p.Workload(p.sweepTopology())
	inf := best
	inf.BudgetFraction = 1
	infCfg, infReqs := inf.Workload(inf.sweepTopology())
	sets := []sim.DesignSet{
		{Base: cfg, Designs: append([]sim.Design{sim.ICNNR}, variants...), Reqs: reqs},
		{Base: sec4Cfg, Designs: []sim.Design{sim.ICNNR, sim.EDGE}, Reqs: sec4Reqs},
		{Base: infCfg, Designs: []sim.Design{sim.ICNNR, sim.EDGE}, Reqs: infReqs},
	}
	results, err := sim.CompareSets(sets, p.simOptions())
	if err != nil {
		return nil, err
	}
	nr := results[0][0].Improvement
	rows := make([]Figure10Row, 0, len(variants)+2)
	for _, r := range results[0][1:] {
		rows = append(rows, Figure10Row{Variant: r.Design.Name, Gap: sim.Gap(nr, r.Improvement)})
	}
	// Section-4 reference: the gap under the original §4 configuration.
	rows = append(rows, Figure10Row{Variant: "Section-4", Gap: sim.Gap(results[1][0].Improvement, results[1][1].Improvement)})
	// Inf-Budget reference: both designs with effectively infinite caches.
	rows = append(rows, Figure10Row{Variant: "Inf-Budget", Gap: sim.Gap(results[2][0].Improvement, results[2][1].Improvement)})
	return rows, nil
}
