package experiments

import (
	"idicn/internal/sim"
)

// DegradationRow reports one point of the failure-degradation curve: a
// design's improvement over the no-cache baseline while a fraction of its
// caches (and possibly the resolution system) is down.
type DegradationRow struct {
	Design       string
	FailFraction float64
	ResolverDown bool
	Imp          sim.Improvement
	// RetainedLatency is the latency improvement as a percentage of the
	// same design's healthy (no-failure, resolver-up) improvement: 100
	// means unharmed, 0 means degraded all the way to the no-cache
	// baseline.
	RetainedLatency float64
}

// DegradationCurve measures graceful degradation under infrastructure
// failures, the simulator-side counterpart of the proxy's serve-stale and
// direct-to-origin fallbacks: EDGE and ICN-NR run with a growing fraction of
// their caches blacked out (seeded, so the curve is exactly reproducible),
// and ICN-NR additionally with its resolution system down, which degrades
// nearest-replica routing to shortest-path-toward-origin. The paper's
// incremental-deployment argument (§4.3) predicts EDGE's benefit decays
// roughly linearly with failed caches and never falls below the no-cache
// baseline; the resolver-down rows quantify how much of ICN-NR's edge
// depends on the resolution infrastructure staying up.
func DegradationCurve(p Params, fractions []float64) ([]DegradationRow, error) {
	if fractions == nil {
		fractions = []float64{0, 0.1, 0.3, 0.5}
	}
	tp := p.sweepTopology()
	cfg, reqs := p.Workload(tp)

	type variant struct {
		name         string
		design       sim.Design
		resolverDown bool
	}
	variants := []variant{
		{"EDGE", sim.EDGE, false},
		{"ICN-NR", sim.ICNNR, false},
		{"ICN-NR/res-down", sim.ICNNR, true},
	}

	// One parallel batch: job 0 is the shared no-cache baseline, then one
	// run per variant x failure fraction.
	jobs := []sim.Job{{Config: sim.BaselineConfig(cfg), Reqs: reqs}}
	for _, v := range variants {
		for _, f := range fractions {
			run := v.design.Apply(cfg)
			if f > 0 || v.resolverDown {
				run.FailurePlan = &sim.FailurePlan{
					Seed:   p.Seed + 3,
					Epochs: []sim.FailureEpoch{{Start: 0, FailFraction: f, ResolverDown: v.resolverDown}},
				}
			}
			jobs = append(jobs, sim.Job{Config: run, Reqs: reqs})
		}
	}
	results, err := sim.Run(jobs, p.simOptions())
	if err != nil {
		return nil, err
	}
	baseline := results[0]

	// Healthy latency improvements per design name, for the retained
	// column. The resolver-down variant is normalized against plain ICN-NR:
	// its f=0 row then directly reads off the cost of losing resolution
	// alone.
	healthy := map[string]float64{}
	rows := make([]DegradationRow, 0, len(variants)*len(fractions))
	idx := 1
	for _, v := range variants {
		for _, f := range fractions {
			imp := sim.Improvements(baseline, results[idx])
			idx++
			if f == 0 && !v.resolverDown {
				healthy[v.design.Name] = imp.Latency
			}
			retained := 0.0
			if h := healthy[v.design.Name]; h != 0 {
				retained = imp.Latency / h * 100
			}
			rows = append(rows, DegradationRow{
				Design:          v.name,
				FailFraction:    f,
				ResolverDown:    v.resolverDown,
				Imp:             imp,
				RetainedLatency: retained,
			})
		}
	}
	return rows, nil
}
