package experiments

import (
	"math/rand"
	"strconv"

	"idicn/internal/sim"
	"idicn/internal/trace"
)

// NamedGap is one configuration of a §5.1 "other parameters" sensitivity
// check: the ICN-NR over EDGE gap under a named variation.
type NamedGap struct {
	Name string
	Gap  sim.Improvement
}

// namedGapBatch evaluates the NR-vs-EDGE gap for every named configuration
// in one parallel batch, preserving order.
func namedGapBatch(names []string, cfgs []sim.Config, reqss [][]sim.Request, opt sim.Options) ([]NamedGap, error) {
	gaps, err := gapBatch(nrEdgeCases(cfgs, reqss), opt)
	if err != nil {
		return nil, err
	}
	out := make([]NamedGap, len(names))
	for i, n := range names {
		out[i] = NamedGap{Name: n, Gap: gaps[i]}
	}
	return out, nil
}

// SensitivityLatencyModels evaluates the two alternative latency models of
// §5.1: an arithmetic progression of hop costs toward the core, and core
// hops costing d times more (d in {2, 5, 10}). The paper reports a gap
// below 2% under both.
func SensitivityLatencyModels(p Params) ([]NamedGap, error) {
	type variant struct {
		name   string
		model  sim.LatencyModel
		factor float64
	}
	variants := []variant{
		{"unit", sim.LatencyUnit, 0},
		{"arithmetic", sim.LatencyArithmetic, 0},
		{"core-x2", sim.LatencyCoreMultiplier, 2},
		{"core-x5", sim.LatencyCoreMultiplier, 5},
		{"core-x10", sim.LatencyCoreMultiplier, 10},
	}
	names := make([]string, len(variants))
	cfgs := make([]sim.Config, len(variants))
	reqss := make([][]sim.Request, len(variants))
	for i, v := range variants {
		cfg, reqs := p.Workload(p.sweepTopology())
		cfg.Latency = v.model
		cfg.CoreFactor = v.factor
		names[i], cfgs[i], reqss[i] = v.name, cfg, reqs
	}
	return namedGapBatch(names, cfgs, reqss, p.simOptions())
}

// SensitivityCapacity evaluates per-node request-serving capacity limits
// (§5.1): overloaded caches redirect requests to the next cache on the
// path. capacities are per-window serve limits; 0 means unlimited. The
// paper reports the NR-over-EDGE gap stays below 2%.
func SensitivityCapacity(p Params, capacities []int64) ([]NamedGap, error) {
	if capacities == nil {
		capacities = []int64{0, 10, 100, 1000}
	}
	requests, _ := p.workloadSize()
	window := requests / 10
	if window < 1 {
		window = 1
	}
	names := make([]string, len(capacities))
	cfgs := make([]sim.Config, len(capacities))
	reqss := make([][]sim.Request, len(capacities))
	for i, c := range capacities {
		cfg, reqs := p.Workload(p.sweepTopology())
		cfg.Capacity = c
		names[i] = "unlimited"
		if c > 0 {
			cfg.CapacityWindow = window
			names[i] = "cap=" + strconv.FormatInt(c, 10)
		}
		cfgs[i], reqss[i] = cfg, reqs
	}
	return namedGapBatch(names, cfgs, reqss, p.simOptions())
}

// SensitivityObjectSizes compares homogeneous (unit) object sizes against
// the heterogeneous CDN-like size mix (§5.1): sizes are uncorrelated with
// popularity, so the paper reports under 1% impact on the gap.
func SensitivityObjectSizes(p Params) ([]NamedGap, error) {
	cfgUnit, reqs := p.Workload(p.sweepTopology())
	cfgHet := cfgUnit
	r := rand.New(rand.NewSource(p.Seed + 9))
	cfgHet.Sizes = trace.GenerateSizes(cfgHet.Objects, trace.DefaultContentMix(), r)
	return namedGapBatch(
		[]string{"unit-sizes", "heterogeneous-sizes"},
		[]sim.Config{cfgUnit, cfgHet},
		[][]sim.Request{reqs, reqs},
		p.simOptions())
}

// SensitivityPolicy compares LRU against LFU cache management (§3: the
// paper reports qualitatively similar results for both).
func SensitivityPolicy(p Params) ([]NamedGap, error) {
	policies := []struct {
		name   string
		policy sim.CachePolicy
	}{{"LRU", sim.PolicyLRU}, {"LFU", sim.PolicyLFU}}
	names := make([]string, len(policies))
	cfgs := make([]sim.Config, len(policies))
	reqss := make([][]sim.Request, len(policies))
	for i, pol := range policies {
		cfg, reqs := p.Workload(p.sweepTopology())
		cfg.Policy = pol.policy
		names[i], cfgs[i], reqss[i] = pol.name, cfg, reqs
	}
	return namedGapBatch(names, cfgs, reqss, p.simOptions())
}
