package experiments

import (
	"math/rand"
	"strconv"

	"idicn/internal/sim"
	"idicn/internal/trace"
)

// NamedGap is one configuration of a §5.1 "other parameters" sensitivity
// check: the ICN-NR over EDGE gap under a named variation.
type NamedGap struct {
	Name string
	Gap  sim.Improvement
}

// SensitivityLatencyModels evaluates the two alternative latency models of
// §5.1: an arithmetic progression of hop costs toward the core, and core
// hops costing d times more (d in {2, 5, 10}). The paper reports a gap
// below 2% under both.
func SensitivityLatencyModels(p Params) ([]NamedGap, error) {
	type variant struct {
		name   string
		model  sim.LatencyModel
		factor float64
	}
	variants := []variant{
		{"unit", sim.LatencyUnit, 0},
		{"arithmetic", sim.LatencyArithmetic, 0},
		{"core-x2", sim.LatencyCoreMultiplier, 2},
		{"core-x5", sim.LatencyCoreMultiplier, 5},
		{"core-x10", sim.LatencyCoreMultiplier, 10},
	}
	var out []NamedGap
	for _, v := range variants {
		cfg, reqs := p.Workload(p.sweepTopology())
		cfg.Latency = v.model
		cfg.CoreFactor = v.factor
		gap, err := GapNRvsEdge(cfg, reqs)
		if err != nil {
			return nil, err
		}
		out = append(out, NamedGap{Name: v.name, Gap: gap})
	}
	return out, nil
}

// SensitivityCapacity evaluates per-node request-serving capacity limits
// (§5.1): overloaded caches redirect requests to the next cache on the
// path. capacities are per-window serve limits; 0 means unlimited. The
// paper reports the NR-over-EDGE gap stays below 2%.
func SensitivityCapacity(p Params, capacities []int64) ([]NamedGap, error) {
	if capacities == nil {
		capacities = []int64{0, 10, 100, 1000}
	}
	requests, _ := p.workloadSize()
	window := requests / 10
	if window < 1 {
		window = 1
	}
	var out []NamedGap
	for _, c := range capacities {
		cfg, reqs := p.Workload(p.sweepTopology())
		cfg.Capacity = c
		if c > 0 {
			cfg.CapacityWindow = window
		}
		gap, err := GapNRvsEdge(cfg, reqs)
		if err != nil {
			return nil, err
		}
		name := "unlimited"
		if c > 0 {
			name = "cap=" + strconv.FormatInt(c, 10)
		}
		out = append(out, NamedGap{Name: name, Gap: gap})
	}
	return out, nil
}

// SensitivityObjectSizes compares homogeneous (unit) object sizes against
// the heterogeneous CDN-like size mix (§5.1): sizes are uncorrelated with
// popularity, so the paper reports under 1% impact on the gap.
func SensitivityObjectSizes(p Params) ([]NamedGap, error) {
	var out []NamedGap

	cfgUnit, reqs := p.Workload(p.sweepTopology())
	gapUnit, err := GapNRvsEdge(cfgUnit, reqs)
	if err != nil {
		return nil, err
	}
	out = append(out, NamedGap{Name: "unit-sizes", Gap: gapUnit})

	cfgHet := cfgUnit
	r := rand.New(rand.NewSource(p.Seed + 9))
	cfgHet.Sizes = trace.GenerateSizes(cfgHet.Objects, trace.DefaultContentMix(), r)
	gapHet, err := GapNRvsEdge(cfgHet, reqs)
	if err != nil {
		return nil, err
	}
	out = append(out, NamedGap{Name: "heterogeneous-sizes", Gap: gapHet})
	return out, nil
}

// SensitivityPolicy compares LRU against LFU cache management (§3: the
// paper reports qualitatively similar results for both).
func SensitivityPolicy(p Params) ([]NamedGap, error) {
	var out []NamedGap
	for _, pol := range []struct {
		name   string
		policy sim.Policy
	}{{"LRU", sim.PolicyLRU}, {"LFU", sim.PolicyLFU}} {
		cfg, reqs := p.Workload(p.sweepTopology())
		cfg.Policy = pol.policy
		gap, err := GapNRvsEdge(cfg, reqs)
		if err != nil {
			return nil, err
		}
		out = append(out, NamedGap{Name: pol.name, Gap: gap})
	}
	return out, nil
}
