package experiments

import "idicn/internal/sim"

// AblationLookupCost relaxes the paper's conservative zero-cost
// nearest-replica lookup assumption (§3: "we conservatively assume that
// routing and lookup have zero cost"): each NR serve that needed the
// replica lookup pays a fixed latency penalty, expressed here in hops. The
// sweep shows how quickly ICN-NR's advantage over EDGE erodes once lookup
// and content-routing overheads are charged at all.
func AblationLookupCost(p Params, penalties []float64) ([]SweepPoint, error) {
	if penalties == nil {
		penalties = []float64{0, 0.5, 1, 2, 4}
	}
	cfgs := make([]sim.Config, len(penalties))
	reqss := make([][]sim.Request, len(penalties))
	for i, pen := range penalties {
		cfgs[i], reqss[i] = p.Workload(p.sweepTopology())
		cfgs[i].NRLookupPenalty = pen
	}
	gaps, err := gapBatch(nrEdgeCases(cfgs, reqss), p.simOptions())
	if err != nil {
		return nil, err
	}
	points := make([]SweepPoint, len(penalties))
	for i, pen := range penalties {
		points[i] = SweepPoint{X: pen, Gap: gaps[i]}
	}
	return points, nil
}

// AblationWarmup measures the NR-over-EDGE gap when the first fraction of
// the stream is treated as warmup (caches exercised, metrics excluded).
// Steady-state gaps are smaller than whole-stream gaps because the
// cold-start period — where nearest-replica routing shines by pooling the
// network's few warm copies — is removed; the paper's whole-trace
// methodology corresponds to warmup 0.
func AblationWarmup(p Params, fractions []float64) ([]SweepPoint, error) {
	if fractions == nil {
		fractions = []float64{0, 0.25, 0.5, 0.75}
	}
	tp := p.sweepTopology()
	cfgs := make([]sim.Config, len(fractions))
	reqss := make([][]sim.Request, len(fractions))
	for i, f := range fractions {
		cfgs[i], reqss[i] = p.Workload(tp)
		cfgs[i].WarmupRequests = int(float64(len(reqss[i])) * f)
	}
	gaps, err := gapBatch(nrEdgeCases(cfgs, reqss), p.simOptions())
	if err != nil {
		return nil, err
	}
	points := make([]SweepPoint, len(fractions))
	for i, f := range fractions {
		points[i] = SweepPoint{X: f, Gap: gaps[i]}
	}
	return points, nil
}

// AblationCoopScope sweeps the cooperative search radius of the EDGE design
// (§3's "cooperative caching within a small search scope"): scope 0 is plain
// EDGE, scope 2 is the paper's EDGE-Coop (siblings), larger scopes reach
// cousins and beyond. The gap to ICN-NR shrinks as the scope widens,
// quantifying how much cooperation substitutes for pervasive caching.
func AblationCoopScope(p Params, scopes []int) ([]SweepPoint, error) {
	if scopes == nil {
		scopes = []int{0, 2, 4, 6}
	}
	tp := p.sweepTopology()
	cases := make([]gapCase, len(scopes))
	for i, scope := range scopes {
		cfg, reqs := p.Workload(tp)
		cases[i] = gapCase{
			a: sim.ICNNR,
			b: sim.Design{
				Name:      "EDGE-Coop-scope",
				Placement: sim.PlacementEdge,
				Routing:   sim.RouteShortestPath,
				CoopScope: scope,
			},
			cfg:  cfg,
			reqs: reqs,
		}
	}
	gaps, err := gapBatch(cases, p.simOptions())
	if err != nil {
		return nil, err
	}
	points := make([]SweepPoint, len(scopes))
	for i, scope := range scopes {
		points[i] = SweepPoint{X: float64(scope), Gap: gaps[i]}
	}
	return points, nil
}
