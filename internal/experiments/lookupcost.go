package experiments

import "idicn/internal/sim"

// AblationLookupCost relaxes the paper's conservative zero-cost
// nearest-replica lookup assumption (§3: "we conservatively assume that
// routing and lookup have zero cost"): each NR serve that needed the
// replica lookup pays a fixed latency penalty, expressed here in hops. The
// sweep shows how quickly ICN-NR's advantage over EDGE erodes once lookup
// and content-routing overheads are charged at all.
func AblationLookupCost(p Params, penalties []float64) ([]SweepPoint, error) {
	if penalties == nil {
		penalties = []float64{0, 0.5, 1, 2, 4}
	}
	var points []SweepPoint
	for _, pen := range penalties {
		cfg, reqs := p.Workload(p.sweepTopology())
		cfg.NRLookupPenalty = pen
		gap, err := GapNRvsEdge(cfg, reqs)
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{X: pen, Gap: gap})
	}
	return points, nil
}

// AblationWarmup measures the NR-over-EDGE gap when the first fraction of
// the stream is treated as warmup (caches exercised, metrics excluded).
// Steady-state gaps are smaller than whole-stream gaps because the
// cold-start period — where nearest-replica routing shines by pooling the
// network's few warm copies — is removed; the paper's whole-trace
// methodology corresponds to warmup 0.
func AblationWarmup(p Params, fractions []float64) ([]SweepPoint, error) {
	if fractions == nil {
		fractions = []float64{0, 0.25, 0.5, 0.75}
	}
	tp := p.sweepTopology()
	var points []SweepPoint
	for _, f := range fractions {
		cfg, reqs := p.Workload(tp)
		cfg.WarmupRequests = int(float64(len(reqs)) * f)
		gap, err := GapNRvsEdge(cfg, reqs)
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{X: f, Gap: gap})
	}
	return points, nil
}

// AblationCoopScope sweeps the cooperative search radius of the EDGE design
// (§3's "cooperative caching within a small search scope"): scope 0 is plain
// EDGE, scope 2 is the paper's EDGE-Coop (siblings), larger scopes reach
// cousins and beyond. The gap to ICN-NR shrinks as the scope widens,
// quantifying how much cooperation substitutes for pervasive caching.
func AblationCoopScope(p Params, scopes []int) ([]SweepPoint, error) {
	if scopes == nil {
		scopes = []int{0, 2, 4, 6}
	}
	tp := p.sweepTopology()
	var points []SweepPoint
	for _, scope := range scopes {
		cfg, reqs := p.Workload(tp)
		variant := sim.Design{
			Name:      "EDGE-Coop-scope",
			Placement: sim.PlacementEdge,
			Routing:   sim.RouteShortestPath,
			CoopScope: scope,
		}
		results, err := sim.CompareDesigns(cfg, []sim.Design{sim.ICNNR, variant}, reqs)
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{
			X:   float64(scope),
			Gap: sim.Gap(results[0].Improvement, results[1].Improvement),
		})
	}
	return points, nil
}
