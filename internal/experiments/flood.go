package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"idicn/internal/sim"
)

// FloodRow reports one design's behaviour under a request flood.
type FloodRow struct {
	Design string
	// OriginShare is the fraction of all requests (flood included) served
	// by origin servers.
	OriginShare float64
	// MaxOriginLoad is the busiest origin's request count.
	MaxOriginLoad int64
	// Improvement is relative to the no-cache run of the same flooded
	// workload.
	Improvement sim.Improvement
}

// FloodProtection examines the paper's §7 discussion: "an edge cache
// deployment can provide much of the same request flood protection as
// pervasively deployed ICNs". A flash crowd — floodFraction of all requests
// targeting one previously unpopular object from everywhere in the network —
// is mixed into the baseline workload; since caches replicate the flooded
// object on first touch, both EDGE and ICN absorb the flood, and the
// interesting question is how closely EDGE tracks ICN's origin-load
// protection.
func FloodProtection(p Params, floodFraction float64) ([]FloodRow, error) {
	if floodFraction <= 0 || floodFraction >= 1 {
		floodFraction = 0.3
	}
	tp := p.sweepTopology()
	cfg, base := p.Workload(tp)

	// The flood target: the least popular object, owned by whichever PoP
	// the origin assignment gave it.
	target := int32(cfg.Objects - 1)
	floodCount := int(float64(len(base)) * floodFraction / (1 - floodFraction))
	r := rand.New(rand.NewSource(p.Seed + 77))
	weights := tp.PopulationWeights()
	net := cfg.Network

	// Interleave flood requests uniformly through the stream.
	flooded := make([]sim.Request, 0, len(base)+floodCount)
	interval := len(base) / (floodCount + 1)
	if interval < 1 {
		interval = 1
	}
	next := interval
	for i, q := range base {
		flooded = append(flooded, q)
		if i == next && floodCount > 0 {
			pop := weightedPop(r, weights)
			flooded = append(flooded, sim.Request{
				PoP:    int32(pop),
				Leaf:   int32(r.Intn(net.LeavesPerTree())),
				Object: target,
			})
			floodCount--
			next += interval
		}
	}

	// One parallel batch: the no-cache baseline plus the four designs.
	designs := []sim.Design{sim.ICNSP, sim.ICNNR, sim.EDGE, sim.EDGECoop}
	jobs := []sim.Job{{Config: sim.BaselineConfig(cfg), Reqs: flooded}}
	for _, d := range designs {
		jobs = append(jobs, sim.Job{Config: d.Apply(cfg), Reqs: flooded})
	}
	results, err := sim.Run(jobs, p.simOptions())
	if err != nil {
		return nil, err
	}
	baseline := results[0]
	rows := []FloodRow{{
		Design:        "No-Cache",
		OriginShare:   1,
		MaxOriginLoad: baseline.MaxOriginLoad,
	}}
	for i, d := range designs {
		res := results[i+1]
		rows = append(rows, FloodRow{
			Design:        d.Name,
			OriginShare:   float64(res.TotalOrigin) / float64(res.Requests),
			MaxOriginLoad: res.MaxOriginLoad,
			Improvement:   sim.Improvements(baseline, res),
		})
	}
	return rows, nil
}

func weightedPop(r *rand.Rand, weights []float64) int {
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	pick := r.Float64() * sum
	for i, w := range weights {
		pick -= w
		if pick < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// FormatFlood renders the flood-protection comparison.
func FormatFlood(rows []FloodRow) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Design\tOrigin share\tMax origin load\tOrigin-load improvement%")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%d\t%.2f\n", r.Design, r.OriginShare, r.MaxOriginLoad, r.Improvement.OriginLoad)
	}
	flushTab(w)
	return b.String()
}
