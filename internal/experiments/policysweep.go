package experiments

import (
	"fmt"
	"strings"

	"idicn/internal/sim"
)

// PolicySweepRow is one (policy, design) cell of the cache-policy sweep: the
// percent improvement over no caching on the three metrics, with every
// provisioned cache in the network running the row's policy.
type PolicySweepRow struct {
	Policy string
	Design string
	Imp    sim.Improvement
}

// PolicySweep crosses the cache-policy zoo with the five representative
// placement x routing designs on the standard sweep workload. It answers the
// deployment question behind the zoo: does a smarter replacement or
// admission policy change the paper's placement story, or does the
// EDGE-vs-ICN ranking survive the policy choice? Each policy gets its own
// design set (same workload, independent caches), and all runs — one
// baseline plus five designs per policy — fan across a single parallel
// batch.
func PolicySweep(p Params) ([]PolicySweepRow, error) {
	policies := sim.CachePolicies()
	sets := make([]sim.DesignSet, len(policies))
	for i, pol := range policies {
		pp := p
		pp.Policy = pol
		cfg, reqs := pp.Workload(p.sweepTopology())
		sets[i] = sim.DesignSet{Base: cfg, Designs: sim.BaselineDesigns(), Reqs: reqs}
	}
	results, err := sim.CompareSets(sets, p.simOptions())
	if err != nil {
		return nil, err
	}
	rows := make([]PolicySweepRow, 0, len(policies)*len(sim.BaselineDesigns()))
	for i, pol := range policies {
		for _, r := range results[i] {
			rows = append(rows, PolicySweepRow{Policy: pol.String(), Design: r.Design.Name, Imp: r.Improvement})
		}
	}
	return rows, nil
}

// FormatPolicySweep renders the policy sweep grouped by policy, one line per
// design with the three improvement percentages.
func FormatPolicySweep(rows []PolicySweepRow) string {
	var b strings.Builder
	w := newTab(&b)
	fmt.Fprintln(w, "Policy\tDesign\tLatency%\tCongestion%\tOriginLoad%")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\t%.2f\n",
			r.Policy, r.Design, r.Imp.Latency, r.Imp.Congestion, r.Imp.OriginLoad)
	}
	flushTab(w)
	return b.String()
}
