package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"idicn/internal/sim"
	"idicn/internal/treemodel"
)

// DepthProfile reports where requests were served, by tree depth, for one
// design — the simulated counterpart of the paper's analytical Figure 2.
type DepthProfile struct {
	Design string
	// Fractions[d] is the share served at tree depth d (leaves are the
	// highest depth); the final entry is the origin's share.
	Fractions []float64
	// HitRatio[i] is the cumulative hit ratio through level i+1: the share
	// of requests a hierarchy truncated at that level would have served
	// from caches. See HitRatioByDepth.
	HitRatio []float64
}

// HitRatioByDepth converts level fractions (edge level first, origin last)
// into cumulative hit ratios: entry i is the fraction of requests served at
// levels 1..i+1. The final entry is the total cache hit ratio, 1 minus the
// origin's share.
func HitRatioByDepth(fractions []float64) []float64 {
	if len(fractions) == 0 {
		return nil
	}
	out := make([]float64, len(fractions)-1)
	cum := 0.0
	for i := range out {
		cum += fractions[i]
		out[i] = cum
	}
	return out
}

// ServeDepthProfile runs ICN-SP and EDGE on the standard workload and
// returns, per design, the fraction of requests served at each tree depth.
// Alongside it returns the §2.2 analytical prediction for a tree of the
// same arity and depth with per-node caches of BudgetFraction of the
// universe, so simulation and model can be compared directly.
func ServeDepthProfile(p Params) (profiles []DepthProfile, analytic []float64, err error) {
	tp := p.sweepTopology()
	cfg, reqs := p.Workload(tp)
	for _, d := range []sim.Design{sim.ICNSP, sim.EDGE} {
		res, err := sim.RunConfig(d.Apply(cfg), reqs)
		if err != nil {
			return nil, nil, err
		}
		fr := make([]float64, len(res.ServedAtDepth))
		for i, c := range res.ServedAtDepth {
			fr[i] = float64(c) / float64(res.Requests)
		}
		// Reorder so leaves come first (matching Figure 2's level 1 = edge):
		// engine indexes by depth with origin last; flip the cache depths.
		flipped := make([]float64, len(fr))
		cacheLevels := len(fr) - 1
		for d := 0; d < cacheLevels; d++ {
			flipped[cacheLevels-1-d] = fr[d]
		}
		flipped[cacheLevels] = fr[cacheLevels]
		profiles = append(profiles, DepthProfile{
			Design:    d.Name,
			Fractions: flipped,
			HitRatio:  HitRatioByDepth(flipped),
		})
	}

	slots := int(p.BudgetFraction * float64(cfg.Objects))
	if slots < 1 {
		slots = 1
	}
	// The access tree has Depth+1 caching levels (leaves at depth Depth down
	// to the PoP root at depth 0); the model adds the origin as one level
	// above, so its level count is Depth+2 and its last fraction aligns with
	// the simulator's origin column.
	model := treemodel.Config{
		Arity:        p.Arity,
		Levels:       p.Depth + 2,
		SlotsPerNode: slots,
		Objects:      cfg.Objects,
		Alpha:        p.Alpha,
	}
	return profiles, model.LevelFractions(), nil
}

// FormatDepthProfile renders the simulated and analytical level fractions.
func FormatDepthProfile(profiles []DepthProfile, analytic []float64) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	levels := 0
	for _, p := range profiles {
		if len(p.Fractions) > levels {
			levels = len(p.Fractions)
		}
	}
	fmt.Fprint(w, "Source")
	for l := 1; l < levels; l++ {
		fmt.Fprintf(w, "\tL%d", l)
	}
	fmt.Fprintln(w, "\torigin")
	row := func(name string, fr []float64) {
		fmt.Fprint(w, name)
		for _, f := range fr {
			fmt.Fprintf(w, "\t%.3f", f)
		}
		fmt.Fprintln(w)
	}
	for _, p := range profiles {
		row(p.Design+" (sim)", p.Fractions)
	}
	row("optimal (model)", analytic)
	// Cumulative hit ratios: how much of the traffic a hierarchy truncated
	// at each level absorbs (the last column is the total cache hit ratio).
	for _, p := range profiles {
		if len(p.HitRatio) > 0 {
			row(p.Design+" (hit<=L)", p.HitRatio)
		}
	}
	flushTab(w)
	return b.String()
}
