package experiments

import (
	"fmt"
	"strings"

	"idicn/internal/sim"
)

// AblationRow is one universe size of the warmth ablation: the five designs'
// latency improvements plus the headline ICN-NR over EDGE gap.
type AblationRow struct {
	Objects         int
	RequestsPerLeaf float64
	Improvements    map[string]sim.Improvement
	NRvsEdge        sim.Improvement
}

// AblationObjectUniverse sweeps the simulated object-universe size on the
// sweep topology and reports each design's improvement. This quantifies the
// central calibration sensitivity of the reproduction: the ICN-NR over EDGE
// gap depends strongly on workload "warmth" (requests per leaf relative to
// the universe). Colder workloads — each leaf seeing only a sliver of the
// universe — inflate nearest-replica routing's advantage, because edge
// caches are never exercised on the content they would eventually hold,
// while replicas elsewhere in the network are reachable at zero lookup
// cost. The paper's reported single-digit gaps correspond to the warm end
// of this sweep.
func AblationObjectUniverse(p Params, universes []int) ([]AblationRow, error) {
	if universes == nil {
		requests, _ := p.workloadSize()
		universes = []int{requests / 15, requests / 60, requests / 360, requests / 1800}
	}
	tp := p.sweepTopology()
	sizes := make([]int, len(universes))
	sets := make([]sim.DesignSet, len(universes))
	for i, o := range universes {
		if o < 50 {
			o = 50
		}
		pc := p
		pc.Objects = o
		cfg, reqs := pc.Workload(tp)
		sizes[i] = o
		sets[i] = sim.DesignSet{Base: cfg, Designs: sim.BaselineDesigns(), Reqs: reqs}
	}
	batches, err := sim.CompareSets(sets, p.simOptions())
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, 0, len(universes))
	for i, results := range batches {
		cfg := sets[i].Base
		row := AblationRow{
			Objects:         sizes[i],
			Improvements:    make(map[string]sim.Improvement, len(results)),
			RequestsPerLeaf: float64(len(sets[i].Reqs)) / float64(cfg.Network.PoPs()*cfg.Network.LeavesPerTree()),
		}
		var nr, edge sim.Improvement
		for _, r := range results {
			row.Improvements[r.Design.Name] = r.Improvement
			switch r.Design.Name {
			case sim.ICNNR.Name:
				nr = r.Improvement
			case sim.EDGE.Name:
				edge = r.Improvement
			}
		}
		row.NRvsEdge = sim.Gap(nr, edge)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAblation renders the warmth ablation.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	w := newTab(&b)
	fmt.Fprintf(w, "Objects\tReqs/leaf\tICN-SP\tICN-NR\tEDGE\tEDGE-Coop\tEDGE-Norm\tNR-EDGE gap\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.0f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			r.Objects, r.RequestsPerLeaf,
			r.Improvements["ICN-SP"].Latency,
			r.Improvements["ICN-NR"].Latency,
			r.Improvements["EDGE"].Latency,
			r.Improvements["EDGE-Coop"].Latency,
			r.Improvements["EDGE-Norm"].Latency,
			r.NRvsEdge.Latency)
	}
	flushTab(w)
	return b.String()
}
