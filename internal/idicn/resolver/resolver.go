// Package resolver implements idICN's name resolution system (paper §6,
// steps 3 and P2): an SFR-like registry mapping self-certifying names L.P to
// content locations.
//
// Registration requires no external trust: the registry only checks
// cryptographic correctness — the supplied public key must hash to the P
// component of the name, and the registration must be signed by that key.
// Sequence numbers make updates (e.g., mobility re-registrations, §6.3)
// replayproof. Resolution first looks for an exact L.P match and falls back
// to a publisher-level P record, which can delegate to a finer-grained
// resolver, exactly as §6.1 describes.
package resolver

import (
	"context"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"idicn/internal/idicn/names"
)

// Registration is a signed binding of a name to locations. Label may be
// empty for a publisher-level (P-only) record, which acts as a delegation
// target for any of the publisher's names.
type Registration struct {
	Label     string   `json:"label,omitempty"` // L; empty for publisher records
	KeyHash   string   `json:"key"`             // P, base32
	Locations []string `json:"locations"`       // URLs, in preference order
	Seq       uint64   `json:"seq"`
	PublicKey []byte   `json:"public_key"` // must hash to P
	Signature []byte   `json:"signature"`  // by PublicKey over Payload()
}

// Name returns the registration's flat name: "L.P" or just "P" for
// publisher records.
func (r Registration) Name() string {
	if r.Label == "" {
		return r.KeyHash
	}
	return r.Label + "." + r.KeyHash
}

// Payload returns the canonical byte string covered by the signature: a
// domain-separation tag, the name, the sequence number, and the location
// list.
func (r Registration) Payload() []byte {
	var b []byte
	b = append(b, "idicn registration v1\n"...)
	b = append(b, r.Name()...)
	b = append(b, '\n')
	b = binary.BigEndian.AppendUint64(b, r.Seq)
	for _, loc := range r.Locations {
		b = append(b, '\n')
		b = append(b, loc...)
	}
	return b
}

// Registry errors.
var (
	ErrBadRegistration = errors.New("resolver: registration failed verification")
	ErrStaleSeq        = errors.New("resolver: stale sequence number")
	ErrNotFound        = errors.New("resolver: name not found")
)

// Result is a successful resolution.
type Result struct {
	// Exact is true when an L.P record matched; false when the publisher
	// fallback record answered.
	Exact     bool     `json:"exact"`
	Locations []string `json:"locations"`
	PublicKey []byte   `json:"public_key"`
	Seq       uint64   `json:"seq"`
}

// Registry is the in-memory name store. It is safe for concurrent use.
// Registrations may carry a TTL (see WithTTL): expired records are treated
// as absent everywhere — lookups miss them and a re-registration is accepted
// regardless of its sequence number, so a host whose clock drifted backwards
// across an outage (and therefore reuses an old seq) can still come back.
type Registry struct {
	mu sync.RWMutex
	//icn:guardedby mu
	records map[string]storedRecord // key: flat name ("L.P" or "P")
	ttl     time.Duration           // 0: registrations never expire; set before publish
	clock   func() time.Time
}

type storedRecord struct {
	Registration
	at time.Time // registration time, for TTL expiry
}

// Option configures a Registry.
type Option func(*Registry)

// WithTTL makes registrations expire d after they were (re-)registered.
// d <= 0 keeps the default behaviour of never expiring.
func WithTTL(d time.Duration) Option {
	return func(g *Registry) { g.ttl = d }
}

// WithClock overrides the registry's notion of now, for tests.
func WithClock(now func() time.Time) Option {
	return func(g *Registry) { g.clock = now }
}

// NewRegistry returns an empty registry.
func NewRegistry(opts ...Option) *Registry {
	g := &Registry{records: make(map[string]storedRecord), clock: time.Now}
	for _, o := range opts {
		o(g)
	}
	return g
}

// expired reports whether rec is past its TTL. Callers hold g.mu (read or
// write).
func (g *Registry) expired(rec storedRecord) bool {
	return g.ttl > 0 && g.clock().Sub(rec.at) >= g.ttl
}

// Register verifies and stores a registration. It returns ErrStaleSeq when
// an existing record for the same name has an equal or newer sequence
// number, and ErrBadRegistration (wrapped with detail) when cryptographic
// checks fail. A cancelled or expired ctx aborts before any state change.
func (g *Registry) Register(ctx context.Context, r Registration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := verify(r); err != nil {
		return err
	}
	name := r.Name()
	g.mu.Lock()
	defer g.mu.Unlock()
	if old, ok := g.records[name]; ok && !g.expired(old) && old.Seq >= r.Seq {
		return fmt.Errorf("%w: have seq %d, got %d", ErrStaleSeq, old.Seq, r.Seq)
	}
	g.records[name] = storedRecord{Registration: r, at: g.clock()}
	return nil
}

func verify(r Registration) error {
	if r.Label != "" && !names.ValidLabel(r.Label) {
		return fmt.Errorf("%w: bad label %q", ErrBadRegistration, r.Label)
	}
	key, err := names.ParseKeyHash(r.KeyHash)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRegistration, err)
	}
	if len(r.PublicKey) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: public key has %d bytes", ErrBadRegistration, len(r.PublicKey))
	}
	if !key.Matches(ed25519.PublicKey(r.PublicKey)) {
		return fmt.Errorf("%w: public key does not hash to %s", ErrBadRegistration, r.KeyHash)
	}
	if len(r.Locations) == 0 {
		return fmt.Errorf("%w: no locations", ErrBadRegistration)
	}
	for _, loc := range r.Locations {
		if strings.TrimSpace(loc) == "" {
			return fmt.Errorf("%w: empty location", ErrBadRegistration)
		}
	}
	if !ed25519.Verify(ed25519.PublicKey(r.PublicKey), r.Payload(), r.Signature) {
		return fmt.Errorf("%w: bad signature", ErrBadRegistration)
	}
	return nil
}

// Resolve looks up a flat name "L.P" (or bare "P"). Exact matches win;
// otherwise the publisher-level P record answers with Exact=false. A
// cancelled or expired ctx aborts the lookup.
func (g *Registry) Resolve(ctx context.Context, name string) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	name = strings.ToLower(strings.TrimSuffix(name, "."+names.Domain))
	g.mu.RLock()
	defer g.mu.RUnlock()
	if rec, ok := g.records[name]; ok && !g.expired(rec) {
		return result(rec.Registration, true), nil
	}
	// Publisher fallback: strip the label.
	if i := strings.IndexByte(name, '.'); i >= 0 {
		if rec, ok := g.records[name[i+1:]]; ok && !g.expired(rec) {
			return result(rec.Registration, false), nil
		}
	}
	return Result{}, fmt.Errorf("%w: %s", ErrNotFound, name)
}

func result(rec Registration, exact bool) Result {
	return Result{
		Exact:     exact,
		Locations: append([]string(nil), rec.Locations...),
		PublicKey: append([]byte(nil), rec.PublicKey...),
		Seq:       rec.Seq,
	}
}

// Len returns the number of live (unexpired) records.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, rec := range g.records {
		if !g.expired(rec) {
			n++
		}
	}
	return n
}

// Names returns all live registered flat names, sorted.
func (g *Registry) Names() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.records))
	for n, rec := range g.records {
		if !g.expired(rec) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// NewRegistration builds and signs a registration for one of the
// principal's names. An empty label produces a publisher-level record.
func NewRegistration(p *names.Principal, label string, seq uint64, locations []string) (Registration, error) {
	if label != "" && !names.ValidLabel(label) {
		return Registration{}, fmt.Errorf("%w: bad label %q", ErrBadRegistration, label)
	}
	r := Registration{
		Label:     label,
		KeyHash:   p.KeyHash().String(),
		Locations: append([]string(nil), locations...),
		Seq:       seq,
		PublicKey: append([]byte(nil), p.PublicKey()...),
	}
	r.Signature = p.Sign(r.Payload())
	return r, nil
}
