package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"idicn/internal/idicn/resilience"
)

// HedgedClient queries a consortium of resolver replicas with staggered
// hedging: replica 0 is asked first, and each further replica joins after
// HedgeDelay (or immediately when the previous one errors out). The first
// successful resolution wins and cancels the rest. Compared to MultiClient's
// sequential failover this bounds the tail latency a slow or blackholed
// replica can add — the incremental-deployment story of the paper depends on
// lookups staying cheap even when some consortium members misbehave.
type HedgedClient struct {
	clients []*Client
	// HedgeDelay is the stagger between replica launches; <= 0 means 50ms.
	HedgeDelay time.Duration
	// AttemptTimeout bounds each replica's lookup; 0 leaves the parent
	// deadline (and the underlying http.Client timeout) in charge.
	AttemptTimeout time.Duration
	// DisableHedge, when non-nil and returning true, restricts Resolve to
	// the primary replica only — the no-hedge brownout tier: under overload
	// the duplicate lookups hedging issues amplify the load they were meant
	// to route around.
	DisableHedge func() bool
}

// NewHedgedClient builds a hedged consortium client from resolver base URLs.
// hc may be nil for a default client.
func NewHedgedClient(urls []string, hc *http.Client) *HedgedClient {
	h := &HedgedClient{}
	for _, u := range urls {
		h.clients = append(h.clients, NewClient(u, hc))
	}
	return h
}

func (h *HedgedClient) hedgeDelay() time.Duration {
	if h.HedgeDelay <= 0 {
		return 50 * time.Millisecond
	}
	return h.HedgeDelay
}

// Resolve races the replicas (staggered) and returns the first successful
// resolution, following delegations like MultiClient.
func (h *HedgedClient) Resolve(ctx context.Context, name string) (Result, error) {
	if len(h.clients) == 0 {
		return Result{}, fmt.Errorf("%w: %s (no resolvers configured)", ErrNotFound, name)
	}
	n := len(h.clients)
	if h.DisableHedge != nil && h.DisableHedge() {
		n = 1
	}
	return resilience.Hedge(ctx, n, h.hedgeDelay(), func(ctx context.Context, i int) (Result, error) {
		if h.AttemptTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, h.AttemptTimeout)
			defer cancel()
		}
		return h.clients[i].ResolveFollowing(ctx, name)
	})
}

// Register submits a registration to every replica, succeeding if at least
// one accepts (stale-sequence answers count: the record is already at least
// as new). Registrations are not latency-critical, so they fan out in
// parallel rather than hedged.
func (h *HedgedClient) Register(ctx context.Context, reg Registration) error {
	if len(h.clients) == 0 {
		return errors.New("resolver: no resolvers configured")
	}
	errs := make(chan error, len(h.clients))
	for _, c := range h.clients {
		go func() { errs <- c.Register(ctx, reg) }()
	}
	var lastErr error
	accepted := false
	for range h.clients {
		err := <-errs
		if err == nil || errors.Is(err, ErrStaleSeq) {
			accepted = true
			continue
		}
		lastErr = err
	}
	if accepted {
		return nil
	}
	return lastErr
}
