package resolver

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, advanceable clock for TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestRegistrationTTL drives expiry and re-registration through a table of
// clock-skew scenarios: a re-registering host may have drifted forward,
// backward (reusing an old seq), or not at all. Expired records must be
// invisible to lookups and must not block re-registration on seq.
func TestRegistrationTTL(t *testing.T) {
	const ttl = time.Minute
	cases := []struct {
		name string
		// advance between first registration and the expiry check
		age time.Duration
		// seq used by the re-registration attempt (first used seq 5)
		reSeq uint64
		// whether the record should still resolve before re-registration
		liveBefore bool
		// whether the re-registration must be accepted
		reAccepted bool
	}{
		{name: "fresh record, higher seq", age: ttl / 2, reSeq: 6, liveBefore: true, reAccepted: true},
		{name: "fresh record, stale seq rejected", age: ttl / 2, reSeq: 5, liveBefore: true, reAccepted: false},
		{name: "expired record, same seq (no skew)", age: ttl, reSeq: 5, liveBefore: false, reAccepted: true},
		{name: "expired record, lower seq (clock ran backwards)", age: 2 * ttl, reSeq: 1, liveBefore: false, reAccepted: true},
		{name: "expired record, higher seq", age: ttl + time.Second, reSeq: 9, liveBefore: false, reAccepted: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := &fakeClock{now: time.Unix(1_000_000, 0)}
			reg := NewRegistry(WithTTL(ttl), WithClock(clock.Now))
			p := principal(t, 7)
			first, err := NewRegistration(p, "movie", 5, []string{"http://a.example/movie"})
			if err != nil {
				t.Fatal(err)
			}
			if err := reg.Register(context.Background(), first); err != nil {
				t.Fatal(err)
			}
			n, _ := p.Name("movie")

			clock.Advance(tc.age)
			_, err = reg.Resolve(context.Background(), n.String())
			if live := err == nil; live != tc.liveBefore {
				t.Fatalf("resolve after %v: live=%v (err=%v), want live=%v", tc.age, live, err, tc.liveBefore)
			}
			if wantLen := 0; tc.liveBefore {
				wantLen = 1
				if got := reg.Names(); len(got) != wantLen {
					t.Fatalf("Names() = %v, want %d live names", got, wantLen)
				}
			} else if reg.Len() != 0 {
				t.Fatalf("Len() = %d with an expired record, want 0", reg.Len())
			}

			second, err := NewRegistration(p, "movie", tc.reSeq, []string{"http://b.example/movie"})
			if err != nil {
				t.Fatal(err)
			}
			err = reg.Register(context.Background(), second)
			if tc.reAccepted {
				if err != nil {
					t.Fatalf("re-registration with seq %d rejected: %v", tc.reSeq, err)
				}
				res, err := reg.Resolve(context.Background(), n.String())
				if err != nil {
					t.Fatalf("resolve after re-registration: %v", err)
				}
				if res.Locations[0] != "http://b.example/movie" {
					t.Fatalf("resolved stale locations %v after re-registration", res.Locations)
				}
			} else if !errors.Is(err, ErrStaleSeq) {
				t.Fatalf("re-registration with seq %d: err = %v, want ErrStaleSeq", tc.reSeq, err)
			}
		})
	}
}

// TestTTLRefreshOnReRegister: each accepted registration restarts the clock.
func TestTTLRefreshOnReRegister(t *testing.T) {
	const ttl = time.Minute
	clock := &fakeClock{now: time.Unix(0, 0)}
	reg := NewRegistry(WithTTL(ttl), WithClock(clock.Now))
	p := principal(t, 8)
	n, _ := p.Name("movie")
	for seq := uint64(1); seq <= 3; seq++ {
		r, err := NewRegistration(p, "movie", seq, []string{"http://a.example/movie"})
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(context.Background(), r); err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		clock.Advance(ttl - time.Second) // just inside the window each round
		if _, err := reg.Resolve(context.Background(), n.String()); err != nil {
			t.Fatalf("seq %d aged %v: %v", seq, ttl-time.Second, err)
		}
	}
	clock.Advance(2 * time.Second) // now past the last refresh
	if _, err := reg.Resolve(context.Background(), n.String()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("resolve past TTL: err = %v, want ErrNotFound", err)
	}
}

// TestZeroTTLNeverExpires: the default configuration keeps PR-2 behaviour.
func TestZeroTTLNeverExpires(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	reg := NewRegistry(WithClock(clock.Now))
	p := principal(t, 9)
	r, err := NewRegistration(p, "movie", 1, []string{"http://a.example/movie"})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(context.Background(), r); err != nil {
		t.Fatal(err)
	}
	clock.Advance(1000 * time.Hour)
	n, _ := p.Name("movie")
	if _, err := reg.Resolve(context.Background(), n.String()); err != nil {
		t.Fatalf("no-TTL registry expired a record: %v", err)
	}
}

// TestHedgedClientFailover: replica 0 is black-holed; the hedge must still
// resolve via replica 1 well before replica 0's timeout.
func TestHedgedClientFailover(t *testing.T) {
	reg := NewRegistry()
	p := principal(t, 10)
	r, err := NewRegistration(p, "movie", 1, []string{"http://origin.example/movie"})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(context.Background(), r); err != nil {
		t.Fatal(err)
	}
	good := httptest.NewServer(NewServer(reg))
	defer good.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // blackhole: hang until the hedge cancels us
	}))
	defer dead.Close()

	h := NewHedgedClient([]string{dead.URL, good.URL}, nil)
	h.HedgeDelay = 5 * time.Millisecond
	n, _ := p.Name("movie")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := h.Resolve(ctx, n.String())
	if err != nil {
		t.Fatalf("hedged resolve with one dead replica: %v", err)
	}
	if len(res.Locations) != 1 || res.Locations[0] != "http://origin.example/movie" {
		t.Fatalf("hedged resolve = %+v", res)
	}
}

// TestHedgedClientRegister: registration fans out and succeeds when any
// replica accepts.
func TestHedgedClientRegister(t *testing.T) {
	reg := NewRegistry()
	good := httptest.NewServer(NewServer(reg))
	defer good.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()

	h := NewHedgedClient([]string{dead.URL, good.URL}, nil)
	p := principal(t, 11)
	r, err := NewRegistration(p, "movie", 1, []string{"http://origin.example/movie"})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Register(context.Background(), r); err != nil {
		t.Fatalf("hedged register with one dead replica: %v", err)
	}
	if reg.Len() != 1 {
		t.Fatalf("registry has %d records after hedged register, want 1", reg.Len())
	}
}

// TestHedgedClientAllDead: every replica failing surfaces an error.
func TestHedgedClientAllDead(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()
	h := NewHedgedClient([]string{dead.URL, dead.URL}, nil)
	h.HedgeDelay = time.Millisecond
	if _, err := h.Resolve(context.Background(), "x.abcd"); err == nil {
		t.Fatal("hedged resolve succeeded with all replicas dead")
	}
	empty := NewHedgedClient(nil, nil)
	if _, err := empty.Resolve(context.Background(), "x.abcd"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty consortium: err = %v, want ErrNotFound", err)
	}
}
