package resolver

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"idicn/internal/idicn/names"
)

func TestDelegationHelpers(t *testing.T) {
	loc := Delegation("http://fine.example")
	target, ok := IsDelegation(loc)
	if !ok || target != "http://fine.example" {
		t.Fatalf("IsDelegation(%q) = %q,%v", loc, target, ok)
	}
	if _, ok := IsDelegation("http://content.example/x"); ok {
		t.Fatal("content location treated as delegation")
	}
}

// twoTier builds the paper's two-tier arrangement: a coarse consortium
// resolver holding only a publisher-level record that delegates to a
// fine-grained resolver holding the L.P records.
func twoTier(t *testing.T) (coarse *Client, pr *names.Principal) {
	t.Helper()
	pr = principal(t, 20)

	fineReg := NewRegistry()
	fineSrv := httptest.NewServer(NewServer(fineReg))
	t.Cleanup(fineSrv.Close)

	coarseReg := NewRegistry()
	coarseSrv := httptest.NewServer(NewServer(coarseReg))
	t.Cleanup(coarseSrv.Close)

	// Publisher-level record on the coarse resolver: "ask my resolver".
	pubRec, err := NewRegistration(pr, "", 1, []string{Delegation(fineSrv.URL)})
	if err != nil {
		t.Fatal(err)
	}
	if err := coarseReg.Register(context.Background(), pubRec); err != nil {
		t.Fatal(err)
	}
	// Fine-grained record for a specific name.
	fineRec, err := NewRegistration(pr, "article", 1, []string{"http://origin.example/article"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fineReg.Register(context.Background(), fineRec); err != nil {
		t.Fatal(err)
	}
	return NewClient(coarseSrv.URL, coarseSrv.Client()), pr
}

func TestResolveFollowingChasesDelegation(t *testing.T) {
	coarse, pr := twoTier(t)
	n, _ := pr.Name("article")
	res, err := coarse.ResolveFollowing(context.Background(), n.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Locations) != 1 || res.Locations[0] != "http://origin.example/article" {
		t.Fatalf("locations = %v", res.Locations)
	}
	if !res.Exact {
		t.Error("fine-grained answer not marked exact")
	}
}

func TestResolveFollowingUnknownAtFineResolver(t *testing.T) {
	coarse, pr := twoTier(t)
	n, _ := pr.Name("missing")
	if _, err := coarse.ResolveFollowing(context.Background(), n.String()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestResolveFollowingLoopBounded(t *testing.T) {
	// A resolver whose publisher record delegates to itself.
	reg := NewRegistry()
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()
	pr := principal(t, 21)
	rec, err := NewRegistration(pr, "", 1, []string{Delegation(srv.URL)})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
	n, _ := pr.Name("loopy")
	_, err = NewClient(srv.URL, srv.Client()).ResolveFollowing(context.Background(), n.String())
	if !errors.Is(err, ErrDelegationLoop) {
		t.Fatalf("err = %v, want ErrDelegationLoop", err)
	}
}

func TestMultiClientFailover(t *testing.T) {
	pr := principal(t, 22)
	regA := NewRegistry()
	srvA := httptest.NewServer(NewServer(regA))
	defer srvA.Close()
	regB := NewRegistry()
	srvB := httptest.NewServer(NewServer(regB))
	defer srvB.Close()
	dead := httptest.NewServer(nil)
	dead.Close() // a consortium member that is down

	rec, err := NewRegistration(pr, "page", 1, []string{"http://x.example/page"})
	if err != nil {
		t.Fatal(err)
	}
	if err := regB.Register(context.Background(), rec); err != nil {
		t.Fatal(err)
	}

	mc := NewMultiClient([]string{dead.URL, srvA.URL, srvB.URL}, nil)
	n, _ := pr.Name("page")
	res, err := mc.Resolve(context.Background(), n.String())
	if err != nil {
		t.Fatalf("consortium resolve failed: %v", err)
	}
	if res.Locations[0] != "http://x.example/page" {
		t.Fatalf("locations = %v", res.Locations)
	}

	// Registration goes to every live member.
	rec2, err := NewRegistration(pr, "page2", 1, []string{"http://x.example/page2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Register(context.Background(), rec2); err != nil {
		t.Fatalf("consortium register: %v", err)
	}
	if _, err := regA.Resolve(context.Background(), rec2.Name()); err != nil {
		t.Errorf("member A missing record: %v", err)
	}
	if _, err := regB.Resolve(context.Background(), rec2.Name()); err != nil {
		t.Errorf("member B missing record: %v", err)
	}
}
