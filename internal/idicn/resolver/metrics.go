package resolver

import "idicn/internal/obs"

// RegisterMetrics exposes the resolver's registry size as a gauge in reg.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	reg.Func("resolver_registered_names", func() int64 {
		return int64(s.Registry.Len())
	})
}
