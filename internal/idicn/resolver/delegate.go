package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// Delegation support (paper §6.1): "the entries can point to other
// resolvers that can provide more fine-grained resolution (e.g., the basic
// resolver might only have an entry for P, which then points to a resolver
// that has entries for individual L.P names)."
//
// A location of the form "resolver:<base-url>" in a publisher-level record
// is a delegation: clients follow it by re-resolving the full name at the
// referenced resolver. Content locations and delegations may be mixed; a
// consortium of top-level resolvers is modelled by MultiClient.

// DelegationPrefix marks a location entry as a referral to another
// resolver rather than a content location.
const DelegationPrefix = "resolver:"

// Delegation wraps a resolver base URL as a location entry.
func Delegation(baseURL string) string { return DelegationPrefix + baseURL }

// IsDelegation reports whether a location entry is a referral, returning
// the target resolver's base URL.
func IsDelegation(loc string) (string, bool) {
	if rest, ok := strings.CutPrefix(loc, DelegationPrefix); ok {
		return rest, true
	}
	return "", false
}

// ErrDelegationLoop is returned when referral chasing exceeds the depth
// limit.
var ErrDelegationLoop = errors.New("resolver: delegation chain too deep")

// maxDelegationDepth bounds referral chasing; the paper's two-tier design
// (coarse consortium resolver -> publisher's fine-grained resolver) needs
// depth 1.
const maxDelegationDepth = 3

// ResolveFollowing resolves a name and chases resolver delegations until a
// record with concrete content locations is found. The final result's
// Locations contain no referral entries.
func (c *Client) ResolveFollowing(ctx context.Context, name string) (Result, error) {
	return resolveFollowing(ctx, c, name, 0)
}

func resolveFollowing(ctx context.Context, c *Client, name string, depth int) (Result, error) {
	if depth > maxDelegationDepth {
		return Result{}, fmt.Errorf("%w: %s", ErrDelegationLoop, name)
	}
	res, err := c.Resolve(ctx, name)
	if err != nil {
		return Result{}, err
	}
	var content []string
	var referrals []string
	for _, loc := range res.Locations {
		if target, ok := IsDelegation(loc); ok {
			referrals = append(referrals, target)
		} else {
			content = append(content, loc)
		}
	}
	if len(content) > 0 {
		res.Locations = content
		return res, nil
	}
	var lastErr error = fmt.Errorf("%w: %s (delegations only, none answered)", ErrNotFound, name)
	for _, target := range referrals {
		sub := NewClient(target, c.hc)
		out, err := resolveFollowing(ctx, sub, name, depth+1)
		if err == nil {
			return out, nil
		}
		lastErr = err
	}
	return Result{}, lastErr
}

// MultiClient queries a consortium of resolvers ("Google, Yahoo!,
// Microsoft, Akamai, and Verisign" in the paper's sketch) in order,
// returning the first successful resolution and following delegations.
type MultiClient struct {
	clients []*Client
}

// NewMultiClient builds a consortium client from resolver base URLs. hc may
// be nil for a default client.
func NewMultiClient(urls []string, hc *http.Client) *MultiClient {
	m := &MultiClient{}
	for _, u := range urls {
		m.clients = append(m.clients, NewClient(u, hc))
	}
	return m
}

// Resolve tries each consortium member until one answers.
func (m *MultiClient) Resolve(ctx context.Context, name string) (Result, error) {
	var lastErr error = fmt.Errorf("%w: %s (no resolvers configured)", ErrNotFound, name)
	for _, c := range m.clients {
		res, err := c.ResolveFollowing(ctx, name)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	return Result{}, lastErr
}

// Register submits a registration to every consortium member, succeeding if
// at least one accepts (stale-sequence answers count as success: the record
// is already at least as new).
func (m *MultiClient) Register(ctx context.Context, reg Registration) error {
	var lastErr error = errors.New("resolver: no resolvers configured")
	accepted := false
	for _, c := range m.clients {
		err := c.Register(ctx, reg)
		if err == nil || errors.Is(err, ErrStaleSeq) {
			accepted = true
			continue
		}
		lastErr = err
	}
	if accepted {
		return nil
	}
	return lastErr
}
