package resolver

import (
	"context"
	"crypto/ed25519"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"testing/quick"

	"idicn/internal/idicn/names"
)

func principal(t testing.TB, b byte) *names.Principal {
	t.Helper()
	seed := make([]byte, ed25519.SeedSize)
	for i := range seed {
		seed[i] = b
	}
	p, err := names.PrincipalFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRegisterAndResolve(t *testing.T) {
	reg := NewRegistry()
	p := principal(t, 1)
	r, err := NewRegistration(p, "movie", 1, []string{"http://origin.example/movie"})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(context.Background(), r); err != nil {
		t.Fatal(err)
	}
	n, _ := p.Name("movie")
	res, err := reg.Resolve(context.Background(), n.String())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || len(res.Locations) != 1 || res.Locations[0] != "http://origin.example/movie" {
		t.Fatalf("Resolve = %+v", res)
	}
	// DNS-form lookup works too.
	if _, err := reg.Resolve(context.Background(), n.DNS()); err != nil {
		t.Fatalf("DNS-form resolve: %v", err)
	}
	if reg.Len() != 1 {
		t.Fatalf("Len = %d", reg.Len())
	}
}

func TestPublisherFallback(t *testing.T) {
	reg := NewRegistry()
	p := principal(t, 2)
	pubRec, err := NewRegistration(p, "", 1, []string{"http://coarse.example/"})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(context.Background(), pubRec); err != nil {
		t.Fatal(err)
	}
	n, _ := p.Name("anything")
	res, err := reg.Resolve(context.Background(), n.String())
	if err != nil {
		t.Fatalf("fallback resolve: %v", err)
	}
	if res.Exact {
		t.Error("fallback marked exact")
	}
	if res.Locations[0] != "http://coarse.example/" {
		t.Errorf("fallback locations = %v", res.Locations)
	}
	// Exact records shadow the fallback.
	exact, _ := NewRegistration(p, "anything", 1, []string{"http://fine.example/x"})
	if err := reg.Register(context.Background(), exact); err != nil {
		t.Fatal(err)
	}
	res2, err := reg.Resolve(context.Background(), n.String())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Exact || res2.Locations[0] != "http://fine.example/x" {
		t.Errorf("exact record did not shadow fallback: %+v", res2)
	}
}

func TestRegisterRejectsForgeries(t *testing.T) {
	reg := NewRegistry()
	p := principal(t, 3)
	attacker := principal(t, 4)

	good, _ := NewRegistration(p, "doc", 1, []string{"http://x.example/"})

	// Attacker substitutes locations without re-signing.
	evil := good
	evil.Locations = []string{"http://evil.example/"}
	if err := reg.Register(context.Background(), evil); !errors.Is(err, ErrBadRegistration) {
		t.Errorf("location tampering: err = %v", err)
	}

	// Attacker signs for someone else's key hash.
	forged, _ := NewRegistration(attacker, "doc", 1, []string{"http://evil.example/"})
	forged.KeyHash = p.KeyHash().String()
	forged.Signature = attacker.Sign(forged.Payload())
	if err := reg.Register(context.Background(), forged); !errors.Is(err, ErrBadRegistration) {
		t.Errorf("key substitution: err = %v", err)
	}

	// Bad label.
	badLabel := good
	badLabel.Label = "Bad Label"
	if err := reg.Register(context.Background(), badLabel); !errors.Is(err, ErrBadRegistration) {
		t.Errorf("bad label: err = %v", err)
	}

	// Empty locations.
	if _, err := NewRegistration(p, "x", 1, nil); err == nil {
		// NewRegistration doesn't validate locations; Register must.
		empty, _ := NewRegistration(p, "x", 1, nil)
		if err := reg.Register(context.Background(), empty); !errors.Is(err, ErrBadRegistration) {
			t.Errorf("empty locations: err = %v", err)
		}
	}

	// Whitespace location.
	ws, _ := NewRegistration(p, "y", 1, []string{"  "})
	if err := reg.Register(context.Background(), ws); !errors.Is(err, ErrBadRegistration) {
		t.Errorf("blank location: err = %v", err)
	}

	// Nothing should have been stored.
	if reg.Len() != 0 {
		t.Fatalf("registry stored %d forged records", reg.Len())
	}
}

func TestSeqReplayProtection(t *testing.T) {
	reg := NewRegistry()
	p := principal(t, 5)
	r1, _ := NewRegistration(p, "mobile", 5, []string{"http://home.example/"})
	if err := reg.Register(context.Background(), r1); err != nil {
		t.Fatal(err)
	}
	// Replay and stale updates rejected.
	if err := reg.Register(context.Background(), r1); !errors.Is(err, ErrStaleSeq) {
		t.Errorf("replay: err = %v", err)
	}
	r0, _ := NewRegistration(p, "mobile", 4, []string{"http://old.example/"})
	if err := reg.Register(context.Background(), r0); !errors.Is(err, ErrStaleSeq) {
		t.Errorf("stale: err = %v", err)
	}
	// A newer seq (mobility move) replaces the record.
	r2, _ := NewRegistration(p, "mobile", 6, []string{"http://away.example/"})
	if err := reg.Register(context.Background(), r2); err != nil {
		t.Fatal(err)
	}
	n, _ := p.Name("mobile")
	res, _ := reg.Resolve(context.Background(), n.String())
	if res.Locations[0] != "http://away.example/" || res.Seq != 6 {
		t.Errorf("update not applied: %+v", res)
	}
}

func TestResolveNotFound(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Resolve(context.Background(), "ghost.aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestConcurrentRegistryAccess(t *testing.T) {
	reg := NewRegistry()
	p := principal(t, 6)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				label := "obj-" + string(rune('a'+w))
				r, _ := NewRegistration(p, label, uint64(i+1), []string{"http://x.example/"})
				reg.Register(context.Background(), r)
				n, _ := p.Name(label)
				reg.Resolve(context.Background(), n.String())
				reg.Names()
			}
		}(w)
	}
	wg.Wait()
	if reg.Len() != 8 {
		t.Fatalf("Len = %d, want 8", reg.Len())
	}
}

func TestHTTPServerAndClient(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	p := principal(t, 7)
	r, _ := NewRegistration(p, "page", 1, []string{"http://origin.example/page"})
	if err := client.Register(ctx, r); err != nil {
		t.Fatal(err)
	}
	n, _ := p.Name("page")
	res, err := client.Resolve(ctx, n.DNS())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Locations[0] != "http://origin.example/page" {
		t.Fatalf("Resolve over HTTP = %+v", res)
	}

	// Stale seq maps to ErrStaleSeq over the wire.
	if err := client.Register(ctx, r); !errors.Is(err, ErrStaleSeq) {
		t.Errorf("HTTP replay: err = %v", err)
	}
	// Forgery maps to ErrBadRegistration.
	bad := r
	bad.Locations = []string{"http://evil.example/"}
	if err := client.Register(ctx, bad); !errors.Is(err, ErrBadRegistration) {
		t.Errorf("HTTP forgery: err = %v", err)
	}
	// Unknown name maps to ErrNotFound.
	if _, err := client.Resolve(ctx, "nope."+p.KeyHash().String()); !errors.Is(err, ErrNotFound) {
		t.Errorf("HTTP miss: err = %v", err)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewRegistry()))
	defer srv.Close()
	hc := srv.Client()

	resp, err := hc.Post(srv.URL+"/register", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("empty register status = %d", resp.StatusCode)
	}

	resp2, err := hc.Get(srv.URL + "/resolve")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Errorf("missing name status = %d", resp2.StatusCode)
	}

	resp3, err := hc.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != 200 {
		t.Errorf("healthz status = %d", resp3.StatusCode)
	}
}

// Property: any registration produced by NewRegistration for a valid label
// verifies; any single-bit corruption of its signature fails.
func TestRegistrationSignatureQuick(t *testing.T) {
	p := principal(t, 8)
	f := func(seq uint64, flip uint8) bool {
		r, err := NewRegistration(p, "prop", seq, []string{"http://a.example/", "http://b.example/"})
		if err != nil {
			return false
		}
		if verify(r) != nil {
			return false
		}
		bad := r
		bad.Signature = append([]byte(nil), r.Signature...)
		bad.Signature[int(flip)%len(bad.Signature)] ^= 1
		return verify(bad) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRegistryContextCancellation pins the context-first contract: a
// cancelled context aborts both Register and Resolve before any state
// change or lookup.
func TestRegistryContextCancellation(t *testing.T) {
	reg := NewRegistry()
	p := principal(t, 9)
	n, err := p.Name("video")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRegistration(p, "video", 1, []string{"http://origin.example/video"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := reg.Register(ctx, r); !errors.Is(err, context.Canceled) {
		t.Errorf("Register with cancelled ctx = %v, want context.Canceled", err)
	}
	if reg.Len() != 0 {
		t.Errorf("Len = %d after cancelled Register, want 0", reg.Len())
	}
	if err := reg.Register(context.Background(), r); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Resolve(ctx, n.String()); !errors.Is(err, context.Canceled) {
		t.Errorf("Resolve with cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := reg.Resolve(context.Background(), n.String()); err != nil {
		t.Errorf("Resolve = %v, want success", err)
	}
}
