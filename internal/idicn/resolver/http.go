package resolver

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Server exposes a Registry over HTTP:
//
//	POST /register      body: JSON Registration
//	GET  /resolve?name=L.P
//	GET  /names
//	GET  /healthz
//
// The paper envisions a consortium of well-provisioned operators hosting
// these resolvers; the API is deliberately tiny and stateless beyond the
// registry itself.
type Server struct {
	Registry *Registry
	mux      *http.ServeMux
}

// NewServer wraps a registry in an HTTP handler.
func NewServer(reg *Registry) *Server {
	s := &Server{Registry: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /register", s.handleRegister)
	s.mux.HandleFunc("GET /resolve", s.handleResolve)
	s.mux.HandleFunc("GET /names", s.handleNames)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	var reg Registration
	if err := json.Unmarshal(body, &reg); err != nil {
		http.Error(w, "bad registration JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	switch err := s.Registry.Register(r.Context(), reg); {
	case err == nil:
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "registered\n")
	case errors.Is(err, ErrStaleSeq):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusForbidden)
	}
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "missing name parameter", http.StatusBadRequest)
		return
	}
	res, err := s.Registry.Resolve(r.Context(), name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(res) // Result always marshals; send errors are the client's
}

func (s *Server) handleNames(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Registry.Names()) // []string always marshals
}

// Client talks to a resolver Server.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the resolver at baseURL. hc may be nil for
// a default client with a short timeout.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// Register submits a signed registration.
func (c *Client) Register(ctx context.Context, reg Registration) error {
	body, err := json.Marshal(reg)
	if err != nil {
		return fmt.Errorf("resolver: encoding registration: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/register", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("resolver: register: %w", err)
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrStaleSeq, strings.TrimSpace(string(msg)))
	default:
		// The resolver itself only answers 200/409/4xx; a 5xx comes from
		// infrastructure between us and it (an overloaded front, a fault
		// injector) and is transient — don't dress it up as a verification
		// failure, which callers rightly treat as permanent.
		if resp.StatusCode >= 500 {
			return fmt.Errorf("resolver: register: transient %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
		return fmt.Errorf("%w: %s", ErrBadRegistration, strings.TrimSpace(string(msg)))
	}
}

// Resolve looks up a flat or DNS-form name.
func (c *Client) Resolve(ctx context.Context, name string) (Result, error) {
	u := c.base + "/resolve?name=" + url.QueryEscape(name)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return Result{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return Result{}, fmt.Errorf("resolver: resolve: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return Result{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if resp.StatusCode != http.StatusOK {
		return Result{}, fmt.Errorf("resolver: resolve: unexpected status %s", resp.Status)
	}
	var res Result
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&res); err != nil {
		return Result{}, fmt.Errorf("resolver: decoding result: %w", err)
	}
	return res, nil
}
