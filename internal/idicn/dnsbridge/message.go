// Package dnsbridge implements the DNS compatibility layer of idICN
// (paper §6.1): names are DNS-compatible (L.P.idicn.org) precisely so that
// unmodified clients can reach content through ordinary name resolution.
// The bridge is an authoritative mini-server for the idicn.org zone that
// answers every (cryptographically well-formed) name with the address of a
// nearby edge proxy, so a legacy browser's GET lands at the proxy with the
// name in the Host header — no client changes at all.
//
// The wire format implementation covers exactly what an authoritative
// A-record responder needs from RFC 1035: query parsing (single question,
// no compression in QNAME as queries never need it) and response building
// with a compression pointer to the question name.
package dnsbridge

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
)

// DNS constants (RFC 1035).
const (
	TypeA    = 1
	TypeAAAA = 28
	ClassIN  = 1

	// RCODEs.
	RcodeNoError  = 0
	RcodeFormErr  = 1
	RcodeNXDomain = 3
	RcodeRefused  = 5

	flagQR = 1 << 15
	flagAA = 1 << 10
	flagRD = 1 << 8

	headerLen = 12
	maxName   = 255
	maxLabel  = 63
)

// Question is the single question of a query.
type Question struct {
	Name  string // lowercase, no trailing dot
	Type  uint16
	Class uint16
}

// Errors from query parsing.
var (
	ErrTruncatedMessage = errors.New("dnsbridge: truncated message")
	ErrNotAQuery        = errors.New("dnsbridge: message is not a query")
	ErrBadQuestion      = errors.New("dnsbridge: malformed question")
)

// ParseQuery extracts the ID, recursion-desired bit, and question from a
// DNS query. Exactly one question is required, as every real stub resolver
// sends.
func ParseQuery(msg []byte) (id uint16, rd bool, q Question, err error) {
	if len(msg) < headerLen {
		return 0, false, q, ErrTruncatedMessage
	}
	id = binary.BigEndian.Uint16(msg[0:2])
	flags := binary.BigEndian.Uint16(msg[2:4])
	if flags&flagQR != 0 {
		return id, false, q, ErrNotAQuery
	}
	rd = flags&flagRD != 0
	if qd := binary.BigEndian.Uint16(msg[4:6]); qd != 1 {
		return id, rd, q, fmt.Errorf("%w: %d questions", ErrBadQuestion, qd)
	}
	name, off, err := parseName(msg, headerLen)
	if err != nil {
		return id, rd, q, err
	}
	if off+4 > len(msg) {
		return id, rd, q, ErrTruncatedMessage
	}
	q.Name = name
	q.Type = binary.BigEndian.Uint16(msg[off : off+2])
	q.Class = binary.BigEndian.Uint16(msg[off+2 : off+4])
	return id, rd, q, nil
}

// parseName decodes an uncompressed domain name starting at off, returning
// the lowercase dotted name and the offset past it.
func parseName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	total := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		l := int(msg[off])
		if l == 0 {
			off++
			break
		}
		if l > maxLabel {
			return "", 0, fmt.Errorf("%w: label length %d", ErrBadQuestion, l)
		}
		off++
		if off+l > len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		total += l + 1
		if total > maxName {
			return "", 0, fmt.Errorf("%w: name too long", ErrBadQuestion)
		}
		if sb.Len() > 0 {
			sb.WriteByte('.')
		}
		for _, c := range msg[off : off+l] {
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			// Restrict to hostname characters so the dotted string form is
			// unambiguous (a label containing '.' would alias another name).
			// An authoritative server for the idICN zone never needs more.
			if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '*') {
				return "", 0, fmt.Errorf("%w: unsupported character %q in label", ErrBadQuestion, c)
			}
			sb.WriteByte(c)
		}
		off += l
	}
	return sb.String(), off, nil
}

// appendName encodes a dotted name in wire format.
func appendName(dst []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > maxLabel {
				return nil, fmt.Errorf("%w: label %q", ErrBadQuestion, label)
			}
			dst = append(dst, byte(len(label)))
			dst = append(dst, label...)
		}
	}
	return append(dst, 0), nil
}

// BuildResponse assembles an authoritative response to q: the question
// echoed, then one A record per address (answers are ignored for rcode !=
// NoError). The answer name uses a compression pointer to the question.
func BuildResponse(id uint16, rd bool, q Question, rcode int, ttl uint32, addrs []net.IP) ([]byte, error) {
	flags := uint16(flagQR | flagAA)
	if rd {
		flags |= flagRD
	}
	flags |= uint16(rcode) & 0x000F

	answers := addrs
	if rcode != RcodeNoError {
		answers = nil
	}
	msg := make([]byte, headerLen, headerLen+64+len(answers)*16)
	binary.BigEndian.PutUint16(msg[0:2], id)
	binary.BigEndian.PutUint16(msg[2:4], flags)
	binary.BigEndian.PutUint16(msg[4:6], 1) // QDCOUNT
	binary.BigEndian.PutUint16(msg[6:8], uint16(len(answers)))

	var err error
	msg, err = appendName(msg, q.Name)
	if err != nil {
		return nil, err
	}
	msg = binary.BigEndian.AppendUint16(msg, q.Type)
	msg = binary.BigEndian.AppendUint16(msg, q.Class)

	for _, ip := range answers {
		v4 := ip.To4()
		if v4 == nil {
			return nil, fmt.Errorf("dnsbridge: %v is not an IPv4 address", ip)
		}
		// Compression pointer to the question name at offset 12.
		msg = append(msg, 0xC0, headerLen)
		msg = binary.BigEndian.AppendUint16(msg, TypeA)
		msg = binary.BigEndian.AppendUint16(msg, ClassIN)
		msg = binary.BigEndian.AppendUint32(msg, ttl)
		msg = binary.BigEndian.AppendUint16(msg, 4)
		msg = append(msg, v4...)
	}
	return msg, nil
}

// BuildQuery assembles a query for name/type, for the test client and the
// Lookup helper.
func BuildQuery(id uint16, name string, qtype uint16) ([]byte, error) {
	msg := make([]byte, headerLen, headerLen+len(name)+6)
	binary.BigEndian.PutUint16(msg[0:2], id)
	binary.BigEndian.PutUint16(msg[2:4], flagRD)
	binary.BigEndian.PutUint16(msg[4:6], 1)
	var err error
	msg, err = appendName(msg, strings.ToLower(name))
	if err != nil {
		return nil, err
	}
	msg = binary.BigEndian.AppendUint16(msg, qtype)
	msg = binary.BigEndian.AppendUint16(msg, ClassIN)
	return msg, nil
}

// ParseResponse extracts the rcode and A-record addresses from a response
// to a single-question query (compression pointers in answer names are
// skipped, not followed — only the RDATA matters here).
func ParseResponse(msg []byte) (id uint16, rcode int, addrs []net.IP, err error) {
	if len(msg) < headerLen {
		return 0, 0, nil, ErrTruncatedMessage
	}
	id = binary.BigEndian.Uint16(msg[0:2])
	flags := binary.BigEndian.Uint16(msg[2:4])
	if flags&flagQR == 0 {
		return id, 0, nil, errors.New("dnsbridge: not a response")
	}
	rcode = int(flags & 0x000F)
	qd := int(binary.BigEndian.Uint16(msg[4:6]))
	an := int(binary.BigEndian.Uint16(msg[6:8]))
	off := headerLen
	for i := 0; i < qd; i++ {
		_, next, err := parseName(msg, off)
		if err != nil {
			return id, rcode, nil, err
		}
		off = next + 4
	}
	for i := 0; i < an; i++ {
		off, err = skipName(msg, off)
		if err != nil {
			return id, rcode, nil, err
		}
		if off+10 > len(msg) {
			return id, rcode, nil, ErrTruncatedMessage
		}
		typ := binary.BigEndian.Uint16(msg[off : off+2])
		rdlen := int(binary.BigEndian.Uint16(msg[off+8 : off+10]))
		off += 10
		if off+rdlen > len(msg) {
			return id, rcode, nil, ErrTruncatedMessage
		}
		if typ == TypeA && rdlen == 4 {
			addrs = append(addrs, net.IP(append([]byte(nil), msg[off:off+4]...)))
		}
		off += rdlen
	}
	return id, rcode, addrs, nil
}

// skipName advances past a possibly-compressed name.
func skipName(msg []byte, off int) (int, error) {
	for {
		if off >= len(msg) {
			return 0, ErrTruncatedMessage
		}
		l := int(msg[off])
		switch {
		case l == 0:
			return off + 1, nil
		case l&0xC0 == 0xC0:
			if off+2 > len(msg) {
				return 0, ErrTruncatedMessage
			}
			return off + 2, nil
		default:
			off += 1 + l
		}
	}
}
