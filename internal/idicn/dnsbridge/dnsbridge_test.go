package dnsbridge

import (
	"crypto/ed25519"
	"net"
	"testing"
	"testing/quick"
	"time"

	"idicn/internal/idicn/names"
)

func testName(t testing.TB) names.Name {
	t.Helper()
	seed := make([]byte, ed25519.SeedSize)
	seed[0] = 0x5a
	p, err := names.PrincipalFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.Name("page")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestQueryRoundTrip(t *testing.T) {
	q, err := BuildQuery(0x1234, "WWW.Example.COM", TypeA)
	if err != nil {
		t.Fatal(err)
	}
	id, rd, parsed, err := ParseQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0x1234 || !rd {
		t.Errorf("id=%#x rd=%v", id, rd)
	}
	if parsed.Name != "www.example.com" || parsed.Type != TypeA || parsed.Class != ClassIN {
		t.Errorf("question = %+v", parsed)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := Question{Name: "a.idicn.org", Type: TypeA, Class: ClassIN}
	ips := []net.IP{net.IPv4(10, 0, 0, 1).To4(), net.IPv4(10, 0, 0, 2).To4()}
	resp, err := BuildResponse(7, true, q, RcodeNoError, 300, ips)
	if err != nil {
		t.Fatal(err)
	}
	id, rcode, addrs, err := ParseResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || rcode != RcodeNoError {
		t.Errorf("id=%d rcode=%d", id, rcode)
	}
	if len(addrs) != 2 || !addrs[0].Equal(ips[0]) || !addrs[1].Equal(ips[1]) {
		t.Errorf("addrs = %v", addrs)
	}
	// NXDOMAIN responses carry no answers even if addrs were passed.
	nx, err := BuildResponse(8, false, q, RcodeNXDomain, 300, ips)
	if err != nil {
		t.Fatal(err)
	}
	_, rcode2, addrs2, err := ParseResponse(nx)
	if err != nil {
		t.Fatal(err)
	}
	if rcode2 != RcodeNXDomain || len(addrs2) != 0 {
		t.Errorf("nx: rcode=%d addrs=%v", rcode2, addrs2)
	}
}

func TestParseQueryRejectsMalformed(t *testing.T) {
	if _, _, _, err := ParseQuery([]byte{1, 2, 3}); err == nil {
		t.Error("short message accepted")
	}
	resp, _ := BuildResponse(1, false, Question{Name: "x.y", Type: TypeA, Class: ClassIN}, 0, 1, nil)
	if _, _, _, err := ParseQuery(resp); err == nil {
		t.Error("response parsed as query")
	}
}

// Property: any (id, label-count) query round-trips.
func TestQueryRoundTripQuick(t *testing.T) {
	f := func(id uint16, raw uint8) bool {
		labels := int(raw%4) + 1
		name := ""
		for i := 0; i < labels; i++ {
			if i > 0 {
				name += "."
			}
			name += "lbl"
		}
		q, err := BuildQuery(id, name, TypeA)
		if err != nil {
			return false
		}
		gotID, _, parsed, err := ParseQuery(q)
		return err == nil && gotID == id && parsed.Name == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", names.Domain, []string{"192.0.2.10"}, 60)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServerAnswersIdicnNames(t *testing.T) {
	s := newTestServer(t)
	n := testName(t)
	rcode, addrs, err := Lookup(s.Addr(), n.DNS(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rcode != RcodeNoError || len(addrs) != 1 || !addrs[0].Equal(net.IPv4(192, 0, 2, 10).To4()) {
		t.Fatalf("rcode=%d addrs=%v", rcode, addrs)
	}
	// wpad.<zone> answers too (WPAD's well-known name).
	rcode2, addrs2, err := Lookup(s.Addr(), "wpad."+names.Domain, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rcode2 != RcodeNoError || len(addrs2) != 1 {
		t.Fatalf("wpad: rcode=%d addrs=%v", rcode2, addrs2)
	}
}

func TestServerNXDomainForJunkUnderZone(t *testing.T) {
	s := newTestServer(t)
	rcode, addrs, err := Lookup(s.Addr(), "not-a-valid-name."+names.Domain, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rcode != RcodeNXDomain || len(addrs) != 0 {
		t.Fatalf("rcode=%d addrs=%v", rcode, addrs)
	}
}

func TestServerRefusesOutOfZone(t *testing.T) {
	s := newTestServer(t)
	rcode, _, err := Lookup(s.Addr(), "www.example.com", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rcode != RcodeRefused {
		t.Fatalf("rcode = %d, want REFUSED", rcode)
	}
	answered, nx, refused := s.Stats()
	if answered != 0 || nx != 0 || refused != 1 {
		t.Errorf("stats = %d/%d/%d", answered, nx, refused)
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", "z", nil, 1); err == nil {
		t.Error("no proxies accepted")
	}
	if _, err := NewServer("127.0.0.1:0", "z", []string{"not-an-ip"}, 1); err == nil {
		t.Error("bad proxy IP accepted")
	}
	if _, err := NewServer("127.0.0.1:0", "z", []string{"2001:db8::1"}, 1); err == nil {
		t.Error("IPv6 proxy accepted for A bridge")
	}
}

func TestServerSurvivesGarbageDatagrams(t *testing.T) {
	s := newTestServer(t)
	conn, err := net.Dial("udp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte{0xde, 0xad})                                  // short garbage: dropped
	conn.Write([]byte{0, 1, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 1, 2, 3}) // bad QDCOUNT: FORMERR
	// The server must still answer real queries afterwards.
	n := testName(t)
	rcode, _, err := Lookup(s.Addr(), n.DNS(), time.Second)
	if err != nil || rcode != RcodeNoError {
		t.Fatalf("server wedged after garbage: rcode=%d err=%v", rcode, err)
	}
}

// TestLegacyPathEndToEnd strings the pieces together the way an unmodified
// browser would use them: resolve the name via the DNS bridge, connect to
// the returned proxy address, send GET with the name as Host.
func TestLegacyPathEndToEnd(t *testing.T) {
	// The "proxy" here just records that it was reached with the right Host.
	// (The HTTP side is covered by the proxy package; this test is about the
	// DNS glue.)
	s := newTestServer(t)
	n := testName(t)
	rcode, addrs, err := Lookup(s.Addr(), n.DNS(), time.Second)
	if err != nil || rcode != RcodeNoError || len(addrs) == 0 {
		t.Fatalf("resolve failed: rcode=%d addrs=%v err=%v", rcode, addrs, err)
	}
	if addrs[0].String() != "192.0.2.10" {
		t.Fatalf("resolved to %v", addrs[0])
	}
}
