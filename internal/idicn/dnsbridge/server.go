package dnsbridge

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"idicn/internal/idicn/names"
)

// Server is an authoritative UDP DNS responder for the idICN zone. For any
// syntactically valid self-certifying name under the zone — and for
// wpad.<zone>, so WPAD discovery works too — it answers with the configured
// edge-proxy addresses. Well-formed queries for junk under the zone get
// NXDOMAIN; queries outside the zone are REFUSED (this server is
// authoritative only).
type Server struct {
	conn    *net.UDPConn
	zone    string // lowercase, no trailing dot (e.g. "idicn.org")
	ttl     uint32
	proxyA  []net.IP
	answers atomic.Int64
	nx      atomic.Int64
	refused atomic.Int64

	mu sync.Mutex
	//icn:guardedby mu
	closed bool
}

// NewServer binds a UDP DNS server on addr (use "127.0.0.1:0" in tests)
// answering for zone with the given proxy IPv4 addresses.
func NewServer(addr, zone string, proxyIPs []string, ttl uint32) (*Server, error) {
	if len(proxyIPs) == 0 {
		return nil, fmt.Errorf("dnsbridge: no proxy addresses")
	}
	var ips []net.IP
	for _, s := range proxyIPs {
		ip := net.ParseIP(s)
		if ip == nil || ip.To4() == nil {
			return nil, fmt.Errorf("dnsbridge: %q is not an IPv4 address", s)
		}
		ips = append(ips, ip.To4())
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsbridge: %w", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("dnsbridge: %w", err)
	}
	s := &Server{
		conn:   conn,
		zone:   strings.ToLower(strings.TrimSuffix(zone, ".")),
		ttl:    ttl,
		proxyA: ips,
	}
	go s.serve() //icn:oneshot receive loop; Close unblocks ReadFromUDP and ends it
	return s, nil
}

// Addr returns the server's UDP address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// Stats returns cumulative (answered, nxdomain, refused) counts.
func (s *Server) Stats() (answered, nxdomain, refused int64) {
	return s.answers.Load(), s.nx.Load(), s.refused.Load()
}

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.conn.Close()
}

func (s *Server) serve() {
	buf := make([]byte, 4096)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		if resp := s.handle(buf[:n]); resp != nil {
			// DNS over UDP is best-effort: a failed send means the client retries.
			_, _ = s.conn.WriteToUDP(resp, peer)
		}
	}
}

func (s *Server) handle(msg []byte) []byte {
	id, rd, q, err := ParseQuery(msg)
	if err != nil {
		// Malformed packets that at least carried a header get FORMERR;
		// shorter garbage is dropped.
		if len(msg) >= headerLen {
			resp, _ := BuildResponse(id, false, Question{Name: "", Type: 0, Class: ClassIN}, RcodeFormErr, 0, nil)
			return resp
		}
		return nil
	}
	rcode, addrs := s.answer(q)
	resp, err := BuildResponse(id, rd, q, rcode, s.ttl, addrs)
	if err != nil {
		resp, _ = BuildResponse(id, rd, q, RcodeFormErr, 0, nil)
	}
	return resp
}

// answer decides the response for one question.
func (s *Server) answer(q Question) (rcode int, addrs []net.IP) {
	if q.Class != ClassIN {
		s.refused.Add(1)
		return RcodeRefused, nil
	}
	name := strings.TrimSuffix(q.Name, ".")
	if name != s.zone && !strings.HasSuffix(name, "."+s.zone) {
		s.refused.Add(1)
		return RcodeRefused, nil
	}
	// The zone apex and wpad.<zone> resolve to the proxies (the latter is
	// what makes WPAD's well-known-name probing work).
	inZoneHost := name == s.zone || name == "wpad."+s.zone
	if !inZoneHost {
		// Anything else must be a well-formed self-certifying name.
		if _, err := names.Parse(name); err != nil {
			s.nx.Add(1)
			return RcodeNXDomain, nil
		}
	}
	switch q.Type {
	case TypeA:
		s.answers.Add(1)
		return RcodeNoError, s.proxyA
	case TypeAAAA:
		// Name exists, no AAAA records: NOERROR with zero answers.
		s.answers.Add(1)
		return RcodeNoError, nil
	default:
		s.answers.Add(1)
		return RcodeNoError, nil
	}
}

// Lookup is a stub-resolver helper: it queries server (host:port) for
// name's A records.
func Lookup(server, name string, timeout time.Duration) (rcode int, addrs []net.IP, err error) {
	conn, err := net.Dial("udp", server)
	if err != nil {
		return 0, nil, fmt.Errorf("dnsbridge: %w", err)
	}
	defer conn.Close()
	id := uint16(rand.Int())
	query, err := BuildQuery(id, name, TypeA)
	if err != nil {
		return 0, nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, nil, err
	}
	if _, err := conn.Write(query); err != nil {
		return 0, nil, fmt.Errorf("dnsbridge: %w", err)
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return 0, nil, fmt.Errorf("dnsbridge: %w", err)
	}
	gotID, rcode, addrs, err := ParseResponse(buf[:n])
	if err != nil {
		return 0, nil, err
	}
	if gotID != id {
		return 0, nil, fmt.Errorf("dnsbridge: response ID mismatch")
	}
	return rcode, addrs, nil
}
