package dnsbridge

import "testing"

// FuzzParseQuery ensures the wire-format parser never panics and that every
// accepted query round-trips through BuildResponse/ParseResponse.
func FuzzParseQuery(f *testing.F) {
	seed, _ := BuildQuery(1, "a.b.idicn.org", TypeA)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 1, 'a', 0, 0, 1, 0, 1})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C}) // pointer in QNAME
	f.Fuzz(func(t *testing.T, data []byte) {
		id, rd, q, err := ParseQuery(data)
		if err != nil {
			return
		}
		resp, err := BuildResponse(id, rd, q, RcodeNoError, 60, nil)
		if err != nil {
			// Names that parsed but cannot re-encode (e.g. empty labels via
			// crafted input) must be impossible: parseName enforces limits.
			t.Fatalf("accepted query %q failed to re-encode: %v", q.Name, err)
		}
		gotID, rcode, _, err := ParseResponse(resp)
		if err != nil || gotID != id || rcode != RcodeNoError {
			t.Fatalf("response round trip failed: id=%d rcode=%d err=%v", gotID, rcode, err)
		}
	})
}
