package resilience

import (
	"context"
	"errors"
	"sync/atomic"
)

// Budget caps the total number of upstream attempts one request may spend
// across composed resilience layers. Retry policies and hedging multiply:
// a 3-attempt retry wrapped around a 3-replica hedge can issue nine
// upstream calls for one client request — exactly the amplification that
// turns a brownout into an outage. A Budget rides the request's context;
// Hedge consumes one unit per replica it launches, and Policy.Do stops
// retrying once the budget is spent. Only the layer that actually issues
// an upstream call (the hedge launch) consumes, so composing layers never
// double-counts.
type Budget struct {
	n atomic.Int64
}

// NewBudget returns a budget of n attempts.
func NewBudget(n int) *Budget {
	b := &Budget{}
	b.n.Store(int64(n))
	return b
}

// Take consumes one attempt, reporting false when the budget is exhausted.
func (b *Budget) Take() bool {
	for {
		cur := b.n.Load()
		if cur <= 0 {
			return false
		}
		if b.n.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// Remaining returns the attempts left.
func (b *Budget) Remaining() int { return int(b.n.Load()) }

// ErrBudgetExhausted is returned when an upstream call could not even start
// because the request's attempt budget was already spent.
var ErrBudgetExhausted = errors.New("resilience: attempt budget exhausted")

type budgetKey struct{}

// WithBudget attaches b to ctx; resilience layers below pick it up.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom returns the context's attempt budget, or nil when none is set
// (no budget means unlimited — the pre-budget behavior).
func BudgetFrom(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}
