// Package resilience provides the failure-handling building blocks shared by
// the idICN components: retry with per-attempt timeouts and capped
// exponential backoff under deterministic jitter, hedged requests across
// replicas, and a circuit breaker that stops hammering a dead dependency.
//
// Everything is stdlib-only, allocation-light, and deterministic given a
// seed, so chaos tests reproduce exactly. Clocks and sleeps are injectable
// for tests.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Policy is a retry schedule: up to MaxAttempts tries, each bounded by
// AttemptTimeout, separated by capped exponential backoff with deterministic
// "equal jitter" (half fixed, half seeded-random). The zero value is usable:
// 3 attempts, 10ms base, 1s cap, no per-attempt timeout.
type Policy struct {
	// MaxAttempts bounds the total tries (not retries); <= 0 means 3.
	MaxAttempts int
	// BaseDelay seeds the exponential ladder (doubling per attempt);
	// <= 0 means 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the ladder; <= 0 means 1s.
	MaxDelay time.Duration
	// AttemptTimeout bounds each attempt's context; 0 leaves the parent
	// deadline in charge.
	AttemptTimeout time.Duration
	// Seed drives the jitter; the same seed yields the same delay sequence.
	Seed int64
	// Sleep replaces the interruptible wait between attempts, for tests.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

func (p Policy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return 10 * time.Millisecond
	}
	return p.BaseDelay
}

func (p Policy) cap() time.Duration {
	if p.MaxDelay <= 0 {
		return time.Second
	}
	return p.MaxDelay
}

// Backoff returns the capped exponential delay before attempt (1-based
// retries: attempt 0 is the first try, so Backoff(0) is the wait before the
// first retry), jittered by rng when non-nil: delay/2 fixed plus up to
// delay/2 random.
func (p Policy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	d := p.base() << uint(attempt)
	if max := p.cap(); d > max || d <= 0 { // <= 0: shift overflow
		d = max
	}
	if rng == nil {
		return d
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops retrying and returns it immediately —
// for failures more tries cannot fix (verification failures, 404s).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err}
}

// IsPermanent reports whether err was marked with Permanent.
func IsPermanent(err error) bool {
	var p permanentError
	return errors.As(err, &p)
}

// Do runs fn under the policy: each attempt gets a context bounded by
// AttemptTimeout, failures back off exponentially with deterministic jitter,
// and the last error is returned when attempts are exhausted or the parent
// context dies. Errors wrapped with Permanent abort the retry loop.
func (p Policy) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var lastErr error
	for attempt := 0; attempt < p.attempts(); attempt++ {
		if attempt > 0 {
			// A retry is pointless when the request's attempt budget is spent:
			// the layer below (hedging, or the next fn call) could not issue
			// another upstream call anyway.
			if bud := BudgetFrom(ctx); bud != nil && bud.Remaining() <= 0 {
				return lastErr
			}
			if err := sleep(ctx, p.Backoff(attempt-1, rng)); err != nil {
				return lastErr
			}
		}
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		actx, cancel := ctx, context.CancelFunc(nil)
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err := fn(actx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if IsPermanent(err) {
			var pe permanentError
			errors.As(err, &pe)
			return pe.err
		}
	}
	return lastErr
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Hedge runs fn against n replicas, starting replica 0 immediately and each
// subsequent replica after another hedgeDelay unless a result already
// arrived — the classic tail-latency hedge, here doubling as resolver
// failover. The first success wins and cancels the rest; if every replica
// fails, the last error is returned. n must be >= 1.
//
// Every launched replica consumes one unit from the context's attempt
// Budget (when one is set); once the budget is spent no further replicas
// start, and if even the first replica cannot start, ErrBudgetExhausted is
// returned.
func Hedge[T any](ctx context.Context, n int, hedgeDelay time.Duration, fn func(ctx context.Context, replica int) (T, error)) (T, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		v   T
		err error
	}
	results := make(chan outcome, n)
	bud := BudgetFrom(ctx)
	launched := 0
	exhausted := false
	// tryLaunch starts the next replica if one remains and the budget
	// allows, reporting whether a launch happened. Budget exhaustion is
	// terminal: once Take fails, no later call can succeed.
	tryLaunch := func() bool {
		if launched >= n || exhausted {
			return false
		}
		if bud != nil && !bud.Take() {
			exhausted = true
			return false
		}
		i := launched
		launched++
		go func() {
			v, err := fn(hctx, i)
			results <- outcome{v, err}
		}()
		return true
	}

	var zero T
	if !tryLaunch() {
		return zero, ErrBudgetExhausted
	}

	var timer *time.Timer
	var tick <-chan time.Time
	if n > 1 {
		timer = time.NewTimer(hedgeDelay)
		defer timer.Stop()
		tick = timer.C
	}

	var lastErr error
	failed := 0
	for {
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return zero, lastErr
			}
			return zero, ctx.Err()
		case <-tick:
			tryLaunch()
			if launched < n && !exhausted {
				timer.Reset(hedgeDelay)
			} else {
				tick = nil
			}
		case out := <-results:
			if out.err == nil {
				return out.v, nil
			}
			lastErr = out.err
			failed++
			// A failure is a stronger signal than a slow response: hedge
			// immediately instead of waiting out the timer.
			tryLaunch()
			if failed == launched {
				// Nothing in flight and nothing more can start.
				return zero, lastErr
			}
			if launched == n || exhausted {
				tick = nil
			}
		}
	}
}

// Breaker is a circuit breaker: Threshold consecutive failures open it, and
// while open Allow reports false so callers skip the dependency entirely
// (and fall back to degraded modes) instead of stacking timeouts on a dead
// component. After Cooldown one probe is allowed through (half-open); its
// outcome closes or re-opens the circuit. The zero value is usable:
// threshold 5, cooldown 1s, wall clock.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the circuit;
	// <= 0 means 5.
	Threshold int
	// Cooldown is how long the circuit stays open before allowing a probe;
	// <= 0 means 1s.
	Cooldown time.Duration
	// Clock overrides time.Now, for tests.
	Clock func() time.Time

	mu sync.Mutex
	//icn:guardedby mu
	fails int
	//icn:guardedby mu
	openedAt time.Time
	//icn:guardedby mu
	open bool
	//icn:guardedby mu
	probing bool
}

func (b *Breaker) now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return time.Second
	}
	return b.Cooldown
}

// Allow reports whether a call may proceed. While open it returns false
// until Cooldown has elapsed, then admits exactly one probe; the probe's
// Record decides what happens next.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.probing {
		return false
	}
	if b.now().Sub(b.openedAt) >= b.cooldown() {
		b.probing = true // half-open: one probe in flight
		return true
	}
	return false
}

// Record feeds a call outcome into the breaker. Success closes the circuit
// and resets the failure count; failure counts toward Threshold and re-opens
// a half-open circuit immediately.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.fails = 0
		b.open = false
		b.probing = false
		return
	}
	b.fails++
	if b.open || b.fails >= b.threshold() {
		b.open = true
		b.probing = false
		b.openedAt = b.now()
	}
}

// Open reports whether the circuit is currently open (possibly half-open
// awaiting a probe outcome).
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// Fails returns the current consecutive-failure count.
func (b *Breaker) Fails() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}
