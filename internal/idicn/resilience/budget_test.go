package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestBudgetTake(t *testing.T) {
	b := NewBudget(2)
	if !b.Take() || !b.Take() {
		t.Fatal("fresh budget refused an attempt")
	}
	if b.Take() {
		t.Fatal("exhausted budget granted an attempt")
	}
	if got := b.Remaining(); got != 0 {
		t.Fatalf("remaining = %d, want 0", got)
	}
}

func TestBudgetFromContext(t *testing.T) {
	if BudgetFrom(context.Background()) != nil {
		t.Fatal("budget appeared on a bare context")
	}
	b := NewBudget(1)
	ctx := WithBudget(context.Background(), b)
	if got := BudgetFrom(ctx); got != b {
		t.Fatalf("BudgetFrom = %v, want the attached budget", got)
	}
}

// TestRetryHedgeShareBudget is the composition regression: a 3-attempt
// retry policy wrapped around a 3-replica hedge would issue up to nine
// upstream calls; with a shared budget of 4 it issues exactly 4.
func TestRetryHedgeShareBudget(t *testing.T) {
	var calls atomic.Int64
	fail := errors.New("replica down")
	ctx := WithBudget(context.Background(), NewBudget(4))
	pol := Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, Sleep: func(context.Context, time.Duration) error { return nil }}
	err := pol.Do(ctx, func(ctx context.Context) error {
		_, err := Hedge(ctx, 3, 0, func(ctx context.Context, replica int) (int, error) {
			calls.Add(1)
			return 0, fail
		})
		return err
	})
	if err == nil {
		t.Fatal("all replicas failing: want error")
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("upstream calls = %d, want exactly the budget of 4", got)
	}
}

// TestHedgeBudgetExhaustedUpFront: a hedge that cannot launch even one
// replica reports ErrBudgetExhausted rather than pretending the replicas
// failed.
func TestHedgeBudgetExhaustedUpFront(t *testing.T) {
	ctx := WithBudget(context.Background(), NewBudget(0))
	_, err := Hedge(ctx, 2, 0, func(ctx context.Context, replica int) (int, error) {
		t.Error("replica launched with an empty budget")
		return 0, nil
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}

// TestHedgeStopsLaunchingAtBudget: with budget 2 of 3 replicas, the third
// never starts; the first success still wins.
func TestHedgeStopsLaunchingAtBudget(t *testing.T) {
	var calls atomic.Int64
	ctx := WithBudget(context.Background(), NewBudget(2))
	fail := errors.New("replica down")
	_, err := Hedge(ctx, 3, 0, func(ctx context.Context, replica int) (int, error) {
		calls.Add(1)
		return 0, fail
	})
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v, want the replica error", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("replicas launched = %d, want 2 (budget)", got)
	}
}

// TestHedgeWithoutBudgetUnchanged: no budget on the context means the old
// behavior — all replicas may launch.
func TestHedgeWithoutBudgetUnchanged(t *testing.T) {
	var calls atomic.Int64
	fail := errors.New("replica down")
	_, err := Hedge(context.Background(), 3, 0, func(ctx context.Context, replica int) (int, error) {
		calls.Add(1)
		return 0, fail
	})
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v, want the replica error", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("replicas launched = %d, want all 3", got)
	}
}
