package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func noSleep() (func(ctx context.Context, d time.Duration) error, *[]time.Duration) {
	var slept []time.Duration
	return func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}, &slept
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	sleep, slept := noSleep()
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Seed: 1, Sleep: sleep}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	// Equal jitter keeps every delay in [d/2, d] of the capped ladder.
	for i, d := range *slept {
		ladder := p.BaseDelay << uint(i)
		if ladder > p.MaxDelay {
			ladder = p.MaxDelay
		}
		if d < ladder/2 || d > ladder {
			t.Errorf("backoff %d = %v outside [%v, %v]", i, d, ladder/2, ladder)
		}
	}
}

func TestDoDeterministicJitter(t *testing.T) {
	run := func() []time.Duration {
		sleep, slept := noSleep()
		p := Policy{MaxAttempts: 4, Seed: 99, Sleep: sleep}
		p.Do(context.Background(), func(context.Context) error { return errors.New("x") })
		return *slept
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("want 3 backoffs each, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("backoff %d = %v then %v; jitter not deterministic", i, a[i], b[i])
		}
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	sleep, _ := noSleep()
	p := Policy{MaxAttempts: 3, Seed: 1, Sleep: sleep}
	calls := 0
	wantErr := errors.New("still down")
	err := p.Do(context.Background(), func(context.Context) error { calls++; return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoPermanentStopsRetrying(t *testing.T) {
	sleep, _ := noSleep()
	p := Policy{MaxAttempts: 5, Seed: 1, Sleep: sleep}
	calls := 0
	inner := errors.New("verification failed")
	err := p.Do(context.Background(), func(context.Context) error { calls++; return Permanent(inner) })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (permanent error must not retry)", calls)
	}
	if !errors.Is(err, inner) {
		t.Fatalf("err = %v, want unwrapped %v", err, inner)
	}
	if IsPermanent(err) {
		t.Error("returned error still carries the Permanent wrapper")
	}
}

func TestDoAttemptTimeout(t *testing.T) {
	sleep, _ := noSleep()
	p := Policy{MaxAttempts: 2, AttemptTimeout: time.Millisecond, Seed: 1, Sleep: sleep}
	var deadlines int
	err := p.Do(context.Background(), func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			deadlines++
		}
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if deadlines != 2 {
		t.Fatalf("saw %d per-attempt deadlines, want 2", deadlines)
	}
}

func TestDoParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, Seed: 1}
	calls := 0
	wantErr := errors.New("down")
	err := p.Do(ctx, func(context.Context) error {
		calls++
		cancel() // parent dies after the first attempt
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want last attempt error %v", err, wantErr)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled parent must stop the loop)", calls)
	}
}

func TestHedgeFirstSuccessWins(t *testing.T) {
	got, err := Hedge(context.Background(), 3, time.Hour, func(ctx context.Context, i int) (int, error) {
		if i != 0 {
			<-ctx.Done()
			return 0, ctx.Err()
		}
		return 42, nil
	})
	if err != nil || got != 42 {
		t.Fatalf("Hedge = %d, %v; want 42, nil", got, err)
	}
}

func TestHedgeFailoverOnError(t *testing.T) {
	// Replica 0 fails instantly; the hedge must launch replica 1 without
	// waiting out the (huge) hedge delay.
	done := make(chan struct{})
	got, err := Hedge(context.Background(), 2, time.Hour, func(_ context.Context, i int) (string, error) {
		if i == 0 {
			return "", errors.New("replica 0 down")
		}
		close(done)
		return "replica 1", nil
	})
	if err != nil || got != "replica 1" {
		t.Fatalf("Hedge = %q, %v; want replica 1, nil", got, err)
	}
	<-done
}

func TestHedgeAllFail(t *testing.T) {
	var calls atomic.Int64
	_, err := Hedge(context.Background(), 3, 0, func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		return 0, errors.New("down")
	})
	if err == nil {
		t.Fatal("Hedge succeeded with all replicas failing")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("calls = %d, want 3", got)
	}
}

func TestHedgeStaggersByDelay(t *testing.T) {
	// With a long hedge delay and a fast replica 0, only replica 0 runs.
	var maxReplica int
	got, err := Hedge(context.Background(), 3, time.Hour, func(_ context.Context, i int) (int, error) {
		if i > maxReplica {
			maxReplica = i
		}
		return i, nil
	})
	if err != nil || got != 0 {
		t.Fatalf("Hedge = %d, %v; want 0, nil", got, err)
	}
	if maxReplica != 0 {
		t.Fatalf("replica %d launched despite replica 0 winning instantly", maxReplica)
	}
}

func TestHedgeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Hedge(ctx, 2, time.Hour, func(ctx context.Context, _ int) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	b := &Breaker{Threshold: 3, Cooldown: time.Second, Clock: func() time.Time { return now }}
	fail := errors.New("down")

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("breaker open after %d failures, threshold 3", i)
		}
		b.Record(fail)
	}
	if !b.Open() {
		t.Fatal("breaker closed after hitting threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before cooldown")
	}

	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.Allow() {
		t.Fatal("breaker allowed a second concurrent probe")
	}

	// Probe fails: re-open, cooldown restarts.
	b.Record(fail)
	if b.Allow() {
		t.Fatal("breaker closed after a failed probe")
	}
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused a probe after the second cooldown")
	}
	// Probe succeeds: circuit closes fully.
	b.Record(nil)
	if b.Open() {
		t.Fatal("breaker still open after successful probe")
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("closed breaker throttled calls")
	}
	if b.Fails() != 0 {
		t.Fatalf("fails = %d after success, want 0", b.Fails())
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := &Breaker{Threshold: 2}
	fail := errors.New("down")
	b.Record(fail)
	b.Record(nil)
	b.Record(fail)
	if b.Open() {
		t.Fatal("breaker opened although failures were never consecutive")
	}
}
