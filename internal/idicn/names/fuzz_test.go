package names

import (
	"strings"
	"testing"
)

// FuzzParse ensures name parsing never panics and that every accepted name
// round-trips through its two encodings.
func FuzzParse(f *testing.F) {
	f.Add("label.aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	f.Add("x.y.idicn.org")
	f.Add("")
	f.Add(strings.Repeat(".", 300))
	f.Fuzz(func(t *testing.T, s string) {
		n, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(n.String())
		if err != nil || back != n {
			t.Fatalf("flat round trip broke: %v %v", back, err)
		}
		backDNS, err := Parse(n.DNS())
		if err != nil || backDNS != n {
			t.Fatalf("DNS round trip broke: %v %v", backDNS, err)
		}
	})
}
