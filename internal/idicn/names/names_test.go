package names

import (
	"crypto/ed25519"
	"strings"
	"testing"
	"testing/quick"
)

func testPrincipal(t testing.TB, seedByte byte) *Principal {
	t.Helper()
	seed := make([]byte, ed25519.SeedSize)
	for i := range seed {
		seed[i] = seedByte
	}
	p, err := PrincipalFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNameRoundTrip(t *testing.T) {
	p := testPrincipal(t, 1)
	n, err := p.Name("video-42")
	if err != nil {
		t.Fatal(err)
	}
	flat := n.String()
	if !strings.HasPrefix(flat, "video-42.") {
		t.Fatalf("flat form %q", flat)
	}
	parsed, err := Parse(flat)
	if err != nil {
		t.Fatal(err)
	}
	if parsed != n {
		t.Fatalf("Parse(String()) = %+v, want %+v", parsed, n)
	}
	dns := n.DNS()
	if !strings.HasSuffix(dns, ".idicn.org") {
		t.Fatalf("DNS form %q", dns)
	}
	parsedDNS, err := Parse(dns)
	if err != nil {
		t.Fatal(err)
	}
	if parsedDNS != n {
		t.Fatalf("Parse(DNS()) = %+v, want %+v", parsedDNS, n)
	}
}

func TestKeyHashFitsDNSLabel(t *testing.T) {
	p := testPrincipal(t, 2)
	s := p.KeyHash().String()
	if len(s) > 63 {
		t.Fatalf("key hash label %d chars, exceeds DNS limit", len(s))
	}
	if len(s) != 52 {
		t.Errorf("key hash label %d chars, want 52 (SHA-256 in base32)", len(s))
	}
	for _, c := range s {
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9') {
			t.Fatalf("non-DNS character %q in key hash", c)
		}
	}
}

func TestParseRejectsBadNames(t *testing.T) {
	p := testPrincipal(t, 3)
	n, _ := p.Name("ok")
	for _, bad := range []string{
		"",
		"nolabel",
		".leadingdot" + "." + n.Key.String(),
		"under_score." + n.Key.String(),
		"-dash." + n.Key.String(),
		"dash-." + n.Key.String(),
		"lab.shortkey",
		"lab." + n.Key.String() + ".extra.parts",
		"lab..double",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestValidLabel(t *testing.T) {
	for label, want := range map[string]bool{
		"a":                     true,
		"abc-123":               true,
		"":                      false,
		"-abc":                  false,
		"abc-":                  false,
		"a_b":                   false,
		"ABC":                   false,
		"with space":            false,
		strings.Repeat("a", 63): true,
		strings.Repeat("a", 64): false,
	} {
		if got := ValidLabel(label); got != want {
			t.Errorf("ValidLabel(%q) = %v, want %v", label, got, want)
		}
	}
}

func TestVerifyContent(t *testing.T) {
	p := testPrincipal(t, 4)
	content := []byte("the content body")
	n, _ := p.Name("doc")
	sig := p.SignContent("doc", content)
	if err := VerifyContent(n, p.PublicKey(), content, sig); err != nil {
		t.Fatalf("valid content rejected: %v", err)
	}
	// Tampered content fails.
	if err := VerifyContent(n, p.PublicKey(), []byte("tampered"), sig); err != ErrBadSignature {
		t.Errorf("tampered content: err = %v, want ErrBadSignature", err)
	}
	// Signature over a different label fails (label binding).
	sigOther := p.SignContent("other", content)
	if err := VerifyContent(n, p.PublicKey(), content, sigOther); err != ErrBadSignature {
		t.Errorf("cross-label signature: err = %v, want ErrBadSignature", err)
	}
	// A different publisher's key fails the hash check even with a valid
	// signature by that key.
	other := testPrincipal(t, 5)
	sig2 := other.SignContent("doc", content)
	if err := VerifyContent(n, other.PublicKey(), content, sig2); err != ErrKeyMismatch {
		t.Errorf("wrong key: err = %v, want ErrKeyMismatch", err)
	}
	// Garbage key length.
	if err := VerifyContent(n, []byte{1, 2, 3}, content, sig); err == nil {
		t.Error("short key accepted")
	}
}

func TestPrincipalDeterministicFromSeed(t *testing.T) {
	a := testPrincipal(t, 7)
	b := testPrincipal(t, 7)
	if a.KeyHash() != b.KeyHash() {
		t.Fatal("same seed produced different principals")
	}
	if _, err := PrincipalFromSeed([]byte("short")); err == nil {
		t.Error("short seed accepted")
	}
}

func TestNewPrincipalRandom(t *testing.T) {
	a, err := NewPrincipal(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPrincipal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.KeyHash() == b.KeyHash() {
		t.Fatal("two random principals collided")
	}
}

func TestNewRejectsBadLabel(t *testing.T) {
	p := testPrincipal(t, 8)
	if _, err := New("Bad Label", p.PublicKey()); err == nil {
		t.Error("invalid label accepted")
	}
}

// Property: every minted name round-trips through both encodings, and
// signatures verify for the matching (label, content) only.
func TestNameSignRoundTripQuick(t *testing.T) {
	p := testPrincipal(t, 9)
	f := func(labelRaw uint16, content []byte) bool {
		label := "obj-" + strings.ToLower(strings.TrimLeft(strings.Repeat("x", int(labelRaw%10)+1), ""))
		n, err := p.Name(label)
		if err != nil {
			return false
		}
		back, err := Parse(n.DNS())
		if err != nil || back != n {
			return false
		}
		sig := p.SignContent(label, content)
		if VerifyContent(n, p.PublicKey(), content, sig) != nil {
			return false
		}
		// Appending a byte must break the signature.
		return VerifyContent(n, p.PublicKey(), append(append([]byte{}, content...), 0), sig) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSignContent(b *testing.B) {
	p := testPrincipal(b, 10)
	content := make([]byte, 64<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SignContent("bench", content)
	}
}

func BenchmarkVerifyContent(b *testing.B) {
	p := testPrincipal(b, 11)
	content := make([]byte, 64<<10)
	n, _ := p.Name("bench")
	sig := p.SignContent("bench", content)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyContent(n, p.PublicKey(), content, sig); err != nil {
			b.Fatal(err)
		}
	}
}
