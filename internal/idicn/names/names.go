// Package names implements idICN's DONA-style self-certifying flat naming
// scheme (paper §6.1): names of the form L.P, where P is a cryptographic
// hash of the publisher's public key and L is a label the publisher assigns
// to the content. The name intrinsically binds the consumer's intent to the
// publisher: anyone holding the content, its signature, and the publisher's
// public key can verify provenance without trusting the party that delivered
// it (CDN, local cache, "or a stranger on the bus").
//
// For backward compatibility with DNS, P is encoded as a base32 label (52
// characters for SHA-256, within DNS's 63-character label limit — the
// paper's footnote 6 notes this rules out longer digests), and names embed
// into the DNS namespace as L.P.idicn.org.
package names

import (
	"crypto/ed25519"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/base32"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Domain is the DNS suffix under which idICN names are published.
const Domain = "idicn.org"

// keyEncoding encodes key hashes as lowercase unpadded base32, which is
// valid inside a DNS label.
var keyEncoding = base32.StdEncoding.WithPadding(base32.NoPadding)

// KeyHash is P: the SHA-256 digest of a publisher's Ed25519 public key.
type KeyHash [sha256.Size]byte

// HashKey computes P for a public key.
func HashKey(pub ed25519.PublicKey) KeyHash {
	return sha256.Sum256(pub)
}

// String returns the DNS-label encoding of the hash (52 base32 characters).
func (k KeyHash) String() string {
	return strings.ToLower(keyEncoding.EncodeToString(k[:]))
}

// ParseKeyHash decodes a base32 key-hash label.
func ParseKeyHash(s string) (KeyHash, error) {
	var k KeyHash
	raw, err := keyEncoding.DecodeString(strings.ToUpper(s))
	if err != nil {
		return k, fmt.Errorf("names: bad key hash %q: %v", s, err)
	}
	if len(raw) != sha256.Size {
		return k, fmt.Errorf("names: key hash %q has %d bytes, want %d", s, len(raw), sha256.Size)
	}
	copy(k[:], raw)
	return k, nil
}

// Matches reports whether the hash commits to the given public key, in
// constant time.
func (k KeyHash) Matches(pub ed25519.PublicKey) bool {
	h := HashKey(pub)
	return subtle.ConstantTimeCompare(k[:], h[:]) == 1
}

// Name is a self-certifying content name L.P.
type Name struct {
	Label string
	Key   KeyHash
}

// errors returned by Parse and the verification helpers.
var (
	ErrBadLabel     = errors.New("names: invalid label")
	ErrKeyMismatch  = errors.New("names: public key does not match name")
	ErrBadSignature = errors.New("names: content signature invalid")
)

// ValidLabel reports whether s is usable as L: a non-empty DNS label of at
// most 63 characters made of lowercase letters, digits, and interior
// hyphens.
func ValidLabel(s string) bool {
	if len(s) == 0 || len(s) > 63 {
		return false
	}
	if s[0] == '-' || s[len(s)-1] == '-' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' {
			continue
		}
		return false
	}
	return true
}

// New builds a name from a label and the publisher's public key.
func New(label string, pub ed25519.PublicKey) (Name, error) {
	if !ValidLabel(label) {
		return Name{}, fmt.Errorf("%w: %q", ErrBadLabel, label)
	}
	return Name{Label: label, Key: HashKey(pub)}, nil
}

// String returns the flat form "L.P".
func (n Name) String() string { return n.Label + "." + n.Key.String() }

// DNS returns the DNS-compatible form "L.P.idicn.org".
func (n Name) DNS() string { return n.String() + "." + Domain }

// Parse accepts either the flat form L.P or the DNS form L.P.idicn.org.
func Parse(s string) (Name, error) {
	s = strings.TrimSuffix(strings.ToLower(s), ".")
	s = strings.TrimSuffix(s, "."+Domain)
	i := strings.IndexByte(s, '.')
	if i < 0 {
		return Name{}, fmt.Errorf("names: %q is not of the form L.P", s)
	}
	label, keyPart := s[:i], s[i+1:]
	if !ValidLabel(label) {
		return Name{}, fmt.Errorf("%w: %q", ErrBadLabel, label)
	}
	if strings.Contains(keyPart, ".") {
		return Name{}, fmt.Errorf("names: %q has extra components", s)
	}
	key, err := ParseKeyHash(keyPart)
	if err != nil {
		return Name{}, err
	}
	return Name{Label: label, Key: key}, nil
}

// contentPayload is the canonical byte string signed to bind content to a
// name: a domain-separation tag, the label, and the content digest.
func contentPayload(label string, content []byte) []byte {
	digest := sha256.Sum256(content)
	payload := make([]byte, 0, 64+len(label))
	payload = append(payload, "idicn content v1\n"...)
	payload = append(payload, label...)
	payload = append(payload, '\n')
	payload = append(payload, digest[:]...)
	return payload
}

// VerifyContent checks the full self-certification chain for content
// claimed to carry name n: the public key must hash to n.Key, and sig must
// be a valid signature by that key over the (label, content) binding.
func VerifyContent(n Name, pub ed25519.PublicKey, content, sig []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("names: bad public key length %d", len(pub))
	}
	if !n.Key.Matches(pub) {
		return ErrKeyMismatch
	}
	if !ed25519.Verify(pub, contentPayload(n.Label, content), sig) {
		return ErrBadSignature
	}
	return nil
}

// Principal is a publisher: an Ed25519 key pair whose public-key hash is
// the P component of every name it mints.
type Principal struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewPrincipal generates a publisher key pair from the given entropy source
// (nil uses crypto/rand).
func NewPrincipal(rand io.Reader) (*Principal, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("names: generating key: %w", err)
	}
	return &Principal{pub: pub, priv: priv}, nil
}

// PrincipalFromSeed derives a deterministic publisher from a 32-byte seed,
// for tests and reproducible examples.
func PrincipalFromSeed(seed []byte) (*Principal, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("names: seed must be %d bytes", ed25519.SeedSize)
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &Principal{pub: priv.Public().(ed25519.PublicKey), priv: priv}, nil
}

// PublicKey returns the publisher's public key.
func (p *Principal) PublicKey() ed25519.PublicKey { return p.pub }

// KeyHash returns P for this publisher.
func (p *Principal) KeyHash() KeyHash { return HashKey(p.pub) }

// Name mints the name L.P for a label.
func (p *Principal) Name(label string) (Name, error) {
	return New(label, p.pub)
}

// SignContent produces the signature binding content to the label under
// this publisher's key.
func (p *Principal) SignContent(label string, content []byte) []byte {
	return ed25519.Sign(p.priv, contentPayload(label, content))
}

// Sign signs an arbitrary payload (used by the resolver's registration
// protocol).
func (p *Principal) Sign(payload []byte) []byte {
	return ed25519.Sign(p.priv, payload)
}
