// Package mobility implements idICN's mobility support (paper §6.3):
// servers announce location changes through dynamic name updates (the
// resolver's sequence-numbered re-registrations play the role of dynamic
// DNS), and clients resume interrupted transfers with HTTP byte ranges —
// "with session management, applications can seamlessly work upon
// reconnection".
package mobility

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"idicn/internal/httpx"
	"idicn/internal/idicn/metalink"
	"idicn/internal/idicn/names"
	"idicn/internal/idicn/resilience"
	"idicn/internal/idicn/resolver"
)

// Resolver is the fetcher's view of the resolution system. *resolver.Client,
// *resolver.MultiClient, and *resolver.HedgedClient all satisfy it.
type Resolver interface {
	Resolve(ctx context.Context, name string) (resolver.Result, error)
}

// Host is a mobile content server: it can publish named content, then move
// to a new network location and re-register every name with a bumped
// sequence number so clients re-resolve to the new address.
type Host struct {
	principal *names.Principal
	resolver  *resolver.Client

	mu sync.Mutex
	//icn:guardedby mu
	content map[string]hostObject
	//icn:guardedby mu
	seq map[string]uint64
	//icn:guardedby mu
	srv *http.Server
	//icn:guardedby mu
	lis net.Listener
	//icn:guardedby mu
	moved time.Time
}

type hostObject struct {
	contentType string
	body        []byte
	meta        metalink.File
}

// NewHost creates a mobile host for a principal. It is not listening until
// Start.
func NewHost(p *names.Principal, res *resolver.Client) *Host {
	return &Host{
		principal: p,
		resolver:  res,
		content:   make(map[string]hostObject),
		seq:       make(map[string]uint64),
	}
}

// Start begins listening on a fresh loopback port.
func (h *Host) Start() error {
	return h.listen()
}

func (h *Host) listen() error {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("mobility: listen: %w", err)
	}
	srv := httpx.NewServer(http.HandlerFunc(h.serve))
	h.mu.Lock()
	h.lis = lis
	h.srv = srv
	h.moved = time.Now()
	h.mu.Unlock()
	go srv.Serve(lis) //icn:oneshot accept loop; closing this generation's listener ends it
	return nil
}

// BaseURL returns the host's current location.
func (h *Host) BaseURL() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lis == nil {
		return ""
	}
	return "http://" + h.lis.Addr().String()
}

// Close stops the host.
func (h *Host) Close() error {
	h.mu.Lock()
	srv := h.srv
	h.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// Publish signs and registers content at the current location.
func (h *Host) Publish(ctx context.Context, label, contentType string, body []byte) (names.Name, error) {
	n, err := h.principal.Name(label)
	if err != nil {
		return names.Name{}, err
	}
	sig := h.principal.SignContent(label, body)
	h.mu.Lock()
	h.content[label] = hostObject{
		contentType: contentType,
		body:        append([]byte(nil), body...),
		meta:        metalink.BuildFile(n, h.principal.PublicKey(), body, sig, nil),
	}
	h.mu.Unlock()
	return n, h.register(ctx, label)
}

// Move simulates the device changing networks: the old listener dies
// (in-flight transfers break), a new one starts, and every published name
// is re-registered at the new location — the dynamic-update step of §6.3.
func (h *Host) Move(ctx context.Context) error {
	h.mu.Lock()
	old := h.srv
	h.mu.Unlock()
	if old != nil {
		_ = old.Close() // the move severs in-flight transfers by design
	}
	if err := h.listen(); err != nil {
		return err
	}
	h.mu.Lock()
	labels := make([]string, 0, len(h.content))
	for l := range h.content {
		labels = append(labels, l)
	}
	h.mu.Unlock()
	for _, l := range labels {
		if err := h.register(ctx, l); err != nil {
			return err
		}
	}
	return nil
}

func (h *Host) register(ctx context.Context, label string) error {
	if h.resolver == nil {
		return nil
	}
	h.mu.Lock()
	h.seq[label]++
	seq := h.seq[label]
	loc := "http://" + h.lis.Addr().String() + "/content/" + label
	h.mu.Unlock()
	reg, err := resolver.NewRegistration(h.principal, label, seq, []string{loc})
	if err != nil {
		return err
	}
	if err := h.resolver.Register(ctx, reg); err != nil {
		return fmt.Errorf("mobility: registering %s: %w", label, err)
	}
	return nil
}

func (h *Host) serve(w http.ResponseWriter, r *http.Request) {
	label := strings.TrimPrefix(r.URL.Path, "/content/")
	h.mu.Lock()
	obj, ok := h.content[label]
	moved := h.moved
	h.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	metalink.SetHeaders(w.Header(), obj.meta)
	if obj.contentType != "" {
		w.Header().Set("Content-Type", obj.contentType)
	}
	http.ServeContent(w, r, label, moved, bytes.NewReader(obj.body))
}

// Fetcher downloads named content and transparently survives server moves:
// on a broken transfer it re-resolves the name and resumes with a Range
// request from the bytes it already has, then verifies the assembled
// content against the name.
type Fetcher struct {
	Resolver Resolver
	Client   *http.Client
	// MaxAttempts bounds reconnect attempts (default 5).
	MaxAttempts int
	// RetryDelay is the base of the capped exponential backoff between
	// attempts (default 10ms, doubling per attempt up to MaxDelay, with
	// deterministic jitter from Seed).
	RetryDelay time.Duration
	// MaxDelay caps the backoff (default 1s).
	MaxDelay time.Duration
	// Seed drives the backoff jitter; the same seed yields the same delays.
	Seed int64

	mu sync.Mutex
	// Resumes counts how many times transfers were resumed mid-stream.
	//icn:guardedby mu
	resumes int
}

// Resumes reports how many mid-transfer resumptions occurred.
func (f *Fetcher) Resumes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.resumes
}

// ErrIncomplete is returned when the transfer could not be completed within
// MaxAttempts.
var ErrIncomplete = errors.New("mobility: transfer incomplete")

// Fetch downloads and verifies the content for a name.
func (f *Fetcher) Fetch(ctx context.Context, n names.Name) ([]byte, error) {
	attempts := f.MaxAttempts
	if attempts <= 0 {
		attempts = 5
	}
	hc := f.Client
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	// Backoff schedule shared with the rest of the stack: capped exponential
	// with deterministic jitter, so a herd of resuming clients does not
	// re-stampede the host the instant it reappears.
	pol := resilience.Policy{BaseDelay: f.RetryDelay, MaxDelay: f.MaxDelay}
	rng := rand.New(rand.NewSource(f.Seed))

	var buf []byte
	total := int64(-1)
	var lastHeader http.Header
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(pol.Backoff(attempt-1, rng)):
			}
		}
		res, err := f.Resolver.Resolve(ctx, n.String())
		if err != nil {
			continue // the host may be mid-move; retry
		}
		progressed := false
		for _, loc := range res.Locations {
			n2, hdr, done, err := f.fetchOnce(ctx, hc, loc, &buf, &total)
			if hdr != nil {
				lastHeader = hdr
			}
			if n2 > 0 {
				progressed = true
			}
			if err != nil {
				continue
			}
			if done {
				if _, err := metalink.VerifyResponse(lastHeader, buf); err != nil {
					return nil, fmt.Errorf("mobility: assembled content failed verification: %w", err)
				}
				return buf, nil
			}
		}
		if progressed && len(buf) > 0 {
			f.mu.Lock()
			f.resumes++
			f.mu.Unlock()
		}
	}
	return nil, fmt.Errorf("%w: got %d bytes after %d attempts", ErrIncomplete, len(buf), attempts)
}

// fetchOnce issues one (possibly ranged) request, appending received bytes
// to buf. done reports whether the full object has been assembled.
func (f *Fetcher) fetchOnce(ctx context.Context, hc *http.Client, loc string, buf *[]byte, total *int64) (n int, hdr http.Header, done bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, loc, nil)
	if err != nil {
		return 0, nil, false, err
	}
	if len(*buf) > 0 {
		req.Header.Set("Range", "bytes="+strconv.Itoa(len(*buf))+"-")
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		// Server ignored the range (or fresh fetch): restart from scratch.
		*buf = (*buf)[:0]
		*total = resp.ContentLength
	case http.StatusPartialContent:
		if t, ok := parseTotal(resp.Header.Get("Content-Range")); ok {
			*total = t
		}
	case http.StatusRequestedRangeNotSatisfiable:
		// Already have everything (or the object shrank; verification will
		// catch that).
		return 0, resp.Header, *total >= 0 && int64(len(*buf)) >= *total, nil
	default:
		return 0, resp.Header, false, fmt.Errorf("mobility: %s: status %s", loc, resp.Status)
	}
	chunk, readErr := io.ReadAll(io.LimitReader(resp.Body, 1<<28))
	*buf = append(*buf, chunk...)
	if readErr != nil {
		return len(chunk), resp.Header, false, fmt.Errorf("mobility: interrupted reading %s: %w", loc, readErr)
	}
	if *total < 0 {
		*total = int64(len(*buf))
	}
	return len(chunk), resp.Header, int64(len(*buf)) >= *total, nil
}

// parseTotal extracts the complete length from a Content-Range header
// ("bytes 5-15/16").
func parseTotal(v string) (int64, bool) {
	i := strings.LastIndexByte(v, '/')
	if i < 0 || i+1 >= len(v) || v[i+1:] == "*" {
		return 0, false
	}
	t, err := strconv.ParseInt(v[i+1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return t, true
}
