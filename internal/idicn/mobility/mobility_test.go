package mobility

import (
	"context"
	"crypto/ed25519"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"idicn/internal/idicn/metalink"
	"idicn/internal/idicn/names"
	"idicn/internal/idicn/resolver"
)

func newResolver(t *testing.T) (*resolver.Registry, *resolver.Client) {
	t.Helper()
	reg := resolver.NewRegistry()
	srv := httptest.NewServer(resolver.NewServer(reg))
	t.Cleanup(srv.Close)
	return reg, resolver.NewClient(srv.URL, srv.Client())
}

func principal(t testing.TB, b byte) *names.Principal {
	t.Helper()
	seed := make([]byte, ed25519.SeedSize)
	for i := range seed {
		seed[i] = b
	}
	p, err := names.PrincipalFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestHostPublishAndFetch(t *testing.T) {
	_, rc := newResolver(t)
	h := NewHost(principal(t, 1), rc)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ctx := context.Background()
	body := []byte(strings.Repeat("mobile content ", 100))
	n, err := h.Publish(ctx, "notes", "text/plain", body)
	if err != nil {
		t.Fatal(err)
	}
	f := &Fetcher{Resolver: rc}
	got, err := f.Fetch(ctx, n)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(body) {
		t.Fatalf("fetched %d bytes, want %d", len(got), len(body))
	}
	if f.Resumes() != 0 {
		t.Errorf("unexpected resumes: %d", f.Resumes())
	}
}

func TestHostMoveReRegisters(t *testing.T) {
	reg, rc := newResolver(t)
	h := NewHost(principal(t, 2), rc)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ctx := context.Background()
	n, err := h.Publish(ctx, "doc", "text/plain", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	before := h.BaseURL()

	if err := h.Move(ctx); err != nil {
		t.Fatal(err)
	}
	after := h.BaseURL()
	if before == after {
		t.Fatal("Move did not change address")
	}
	res, err := reg.Resolve(context.Background(), n.String())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Locations[0], after) {
		t.Errorf("registered location %q does not match new address %q", res.Locations[0], after)
	}
	if res.Seq != 2 {
		t.Errorf("seq = %d, want 2 after one move", res.Seq)
	}

	// The content is fetchable at the new location.
	f := &Fetcher{Resolver: rc}
	got, err := f.Fetch(ctx, n)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestFetchSurvivesMidTransferMove(t *testing.T) {
	_, rc := newResolver(t)
	h := NewHost(principal(t, 3), rc)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ctx := context.Background()
	body := []byte(strings.Repeat("0123456789", 2000)) // 20 KB
	n, err := h.Publish(ctx, "video", "application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}

	// A chopping reverse proxy in front of the host's first location: it
	// serves only a prefix then kills the connection, then the host moves.
	direct := h.BaseURL()
	var chopped atomic.Bool
	chopper := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if chopped.Load() {
			http.Error(w, "gone", http.StatusServiceUnavailable)
			return
		}
		chopped.Store(true)
		// Claim the full length but send only a prefix, then abort.
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.Header().Set("X-Idicn-Name", n.String())
		w.WriteHeader(http.StatusOK)
		w.Write(body[:5000])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	}))
	defer chopper.Close()

	// Point the resolver at the chopper first (seq 2 overrides publish).
	regRec, err := resolver.NewRegistration(principal(t, 3), "video", 2, []string{chopper.URL + "/content/video"})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Register(ctx, regRec); err != nil {
		t.Fatal(err)
	}

	f := &Fetcher{Resolver: rc, MaxAttempts: 6, RetryDelay: time.Millisecond}
	fetchDone := make(chan struct{})
	var got []byte
	var fetchErr error
	go func() {
		got, fetchErr = f.Fetch(ctx, n)
		close(fetchDone)
	}()

	// While the fetch is failing against the chopper, the host "moves":
	// re-registers its real location with seq 3.
	time.Sleep(5 * time.Millisecond)
	regBack, err := resolver.NewRegistration(principal(t, 3), "video", 3, []string{direct + "/content/video"})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Register(ctx, regBack); err != nil {
		t.Fatal(err)
	}

	<-fetchDone
	if fetchErr != nil {
		t.Fatalf("fetch did not survive the move: %v", fetchErr)
	}
	if string(got) != string(body) {
		t.Fatalf("assembled %d bytes, want %d", len(got), len(body))
	}
	if f.Resumes() == 0 {
		t.Error("transfer completed without any resume; chopper was bypassed")
	}
}

func TestFetchVerifiesAssembledContent(t *testing.T) {
	_, rc := newResolver(t)
	p := principal(t, 4)
	n, _ := p.Name("fake")
	// A server with valid headers for DIFFERENT content.
	realBody := []byte("genuine")
	sig := p.SignContent("fake", realBody)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := metalink.BuildFile(n, p.PublicKey(), realBody, sig, nil)
		metalink.SetHeaders(w.Header(), f)
		w.Write([]byte("imposter"))
	}))
	defer srv.Close()
	reg, _ := resolver.NewRegistration(p, "fake", 1, []string{srv.URL})
	if err := rc.Register(context.Background(), reg); err != nil {
		t.Fatal(err)
	}
	f := &Fetcher{Resolver: rc, MaxAttempts: 2, RetryDelay: time.Millisecond}
	if _, err := f.Fetch(context.Background(), n); err == nil {
		t.Fatal("forged content accepted")
	}
}

func TestFetchUnknownName(t *testing.T) {
	_, rc := newResolver(t)
	p := principal(t, 5)
	n, _ := p.Name("ghost")
	f := &Fetcher{Resolver: rc, MaxAttempts: 2, RetryDelay: time.Millisecond}
	if _, err := f.Fetch(context.Background(), n); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v, want ErrIncomplete", err)
	}
}

func TestParseTotal(t *testing.T) {
	for v, want := range map[string]struct {
		total int64
		ok    bool
	}{
		"bytes 5-15/16":  {16, true},
		"bytes 0-0/1":    {1, true},
		"bytes 5-15/*":   {0, false},
		"":               {0, false},
		"bytes 5-15/abc": {0, false},
	} {
		got, ok := parseTotal(v)
		if ok != want.ok || (ok && got != want.total) {
			t.Errorf("parseTotal(%q) = %d,%v want %d,%v", v, got, ok, want.total, want.ok)
		}
	}
}

func TestHostServesRange(t *testing.T) {
	_, rc := newResolver(t)
	h := NewHost(principal(t, 6), rc)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Publish(context.Background(), "blob", "application/octet-stream", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, h.BaseURL()+"/content/blob", nil)
	req.Header.Set("Range", "bytes=4-")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "456789" {
		t.Errorf("range body = %q", sb.String())
	}
}
