package proxy

import (
	"context"
	"crypto/ed25519"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idicn/internal/idicn/names"
	"idicn/internal/idicn/origin"
	"idicn/internal/idicn/resilience"
	"idicn/internal/idicn/resolver"
)

// scriptedResolver wraps a real resolver client with a kill switch, so tests
// can black-hole resolution without tearing down servers.
type scriptedResolver struct {
	inner *resolver.Client
	down  atomic.Bool
	calls atomic.Int64
}

func (s *scriptedResolver) Resolve(ctx context.Context, name string) (resolver.Result, error) {
	s.calls.Add(1)
	if s.down.Load() {
		return resolver.Result{}, errors.New("resolver: connection refused (injected)")
	}
	return s.inner.Resolve(ctx, name)
}

// degradeStack is newStack with a scripted resolver between proxy and
// registry and a controllable clock.
type degradeStack struct {
	org      *origin.Server
	res      *scriptedResolver
	proxy    *Proxy
	proxySrv *httptest.Server
	now      time.Time
	nowMu    sync.Mutex
}

func (s *degradeStack) clock() time.Time {
	s.nowMu.Lock()
	defer s.nowMu.Unlock()
	return s.now
}

func (s *degradeStack) advance(d time.Duration) {
	s.nowMu.Lock()
	s.now = s.now.Add(d)
	s.nowMu.Unlock()
}

func newDegradeStack(t *testing.T, opts ...Option) *degradeStack {
	t.Helper()
	registry := resolver.NewRegistry()
	resSrv := httptest.NewServer(resolver.NewServer(registry))
	t.Cleanup(resSrv.Close)

	seed := make([]byte, ed25519.SeedSize)
	seed[0] = 77
	p, err := names.PrincipalFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	var org *origin.Server
	orgSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		org.ServeHTTP(w, r)
	}))
	t.Cleanup(orgSrv.Close)
	org = origin.New(p, resolver.NewClient(resSrv.URL, resSrv.Client()), orgSrv.URL)

	s := &degradeStack{org: org, now: time.Unix(1_700_000_000, 0)}
	s.res = &scriptedResolver{inner: resolver.NewClient(resSrv.URL, resSrv.Client())}
	opts = append([]Option{WithClock(s.clock)}, opts...)
	s.proxy = New(s.res, opts...)
	// Keep retries instant in tests.
	s.proxy.ResolvePolicy = resilience.Policy{
		MaxAttempts: 2,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	s.proxySrv = httptest.NewServer(s.proxy)
	t.Cleanup(s.proxySrv.Close)
	return s
}

func (s *degradeStack) getName(t *testing.T, n names.Name) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, s.proxySrv.URL+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Host = n.DNS()
	resp, err := s.proxySrv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

// TestServeStaleOnResolverOutage: an expired cache entry is served (marked
// STALE) when the resolver goes dark, instead of erroring.
func TestServeStaleOnResolverOutage(t *testing.T) {
	s := newDegradeStack(t)
	s.proxy.TTL = time.Minute
	content := []byte("stale but authentic")
	n, err := s.org.Publish(context.Background(), "story", "text/plain", content)
	if err != nil {
		t.Fatal(err)
	}
	if resp, body := s.getName(t, n); resp.StatusCode != http.StatusOK || body != string(content) {
		t.Fatalf("warm-up fetch: status %d body %q", resp.StatusCode, body)
	}

	s.advance(2 * time.Minute) // cache entry is now past TTL
	s.res.down.Store(true)
	resp, body := s.getName(t, n)
	if resp.StatusCode != http.StatusOK || body != string(content) {
		t.Fatalf("degraded fetch: status %d body %q", resp.StatusCode, body)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "STALE" {
		t.Errorf("X-Cache = %q, want STALE", xc)
	}
	if st := s.proxy.Stats(); st.StaleServes != 1 {
		t.Errorf("StaleServes = %d, want 1", st.StaleServes)
	}

	// Resolver returns: the next fetch re-resolves and serves fresh again.
	s.res.down.Store(false)
	if resp, _ := s.getName(t, n); resp.Header.Get("X-Cache") != "MISS" {
		t.Errorf("post-recovery X-Cache = %q, want MISS", resp.Header.Get("X-Cache"))
	}
}

// TestOriginFallbackRememberedLocations: with no cache entry at all, the
// proxy replays the last resolved locations for the name.
func TestOriginFallbackRememberedLocations(t *testing.T) {
	s := newDegradeStack(t, WithCacheEntries(1))
	content := []byte("first object")
	n1, err := s.org.Publish(context.Background(), "first", "text/plain", content)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := s.org.Publish(context.Background(), "second", "text/plain", []byte("second object"))
	if err != nil {
		t.Fatal(err)
	}
	s.getName(t, n1)
	s.getName(t, n2) // evicts n1 from the 1-entry cache

	s.res.down.Store(true)
	resp, body := s.getName(t, n1)
	if resp.StatusCode != http.StatusOK || body != string(content) {
		t.Fatalf("fallback fetch: status %d body %q", resp.StatusCode, body)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "FALLBACK" {
		t.Errorf("X-Cache = %q, want FALLBACK", xc)
	}
	if st := s.proxy.Stats(); st.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", st.Fallbacks)
	}
}

// TestOriginFallbackPublisherBase: a name never resolved before is fetched
// via the publisher's origin base learned from a sibling name — the
// authority implied by the shared P component.
func TestOriginFallbackPublisherBase(t *testing.T) {
	s := newDegradeStack(t)
	if _, err := s.org.Publish(context.Background(), "known", "text/plain", []byte("known object")); err != nil {
		t.Fatal(err)
	}
	nKnown, _ := names.Parse("known." + s.org.Principal().KeyHash().String())
	s.getName(t, nKnown) // teaches the proxy this publisher's origin base

	content := []byte("never resolved before")
	nNew, err := s.org.Publish(context.Background(), "fresh", "text/plain", content)
	if err != nil {
		t.Fatal(err)
	}
	s.res.down.Store(true)
	resp, body := s.getName(t, nNew)
	if resp.StatusCode != http.StatusOK || body != string(content) {
		t.Fatalf("publisher-base fallback: status %d body %q", resp.StatusCode, body)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "FALLBACK" {
		t.Errorf("X-Cache = %q, want FALLBACK", xc)
	}
}

// TestBreakerSkipsDeadResolver: consecutive failures open the circuit and
// later requests skip the resolver entirely.
func TestBreakerSkipsDeadResolver(t *testing.T) {
	s := newDegradeStack(t)
	s.proxy.ResolvePolicy.MaxAttempts = 1
	s.proxy.Breaker = resilience.Breaker{Threshold: 2, Cooldown: time.Hour, Clock: s.clock}
	s.res.down.Store(true)

	n, _ := names.Parse("ghost." + s.org.Principal().KeyHash().String())
	for i := 0; i < 2; i++ {
		if _, _, err := s.proxy.Get(context.Background(), n); err == nil {
			t.Fatalf("request %d succeeded with resolver down and nothing cached", i)
		}
	}
	before := s.res.calls.Load()
	_, _, err := s.proxy.Get(context.Background(), n)
	if !errors.Is(err, ErrResolverDown) {
		t.Fatalf("err = %v, want ErrResolverDown", err)
	}
	if got := s.res.calls.Load(); got != before {
		t.Fatalf("open breaker still called the resolver (%d -> %d calls)", before, got)
	}

	// After cooldown the probe goes through and recovery closes the circuit.
	s.advance(time.Hour)
	s.res.down.Store(false)
	content := []byte("back online")
	nReal, err := s.org.Publish(context.Background(), "ghost", "text/plain", content)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.proxy.Get(context.Background(), nReal); err != nil {
		t.Fatalf("post-recovery fetch: %v", err)
	}
	if s.proxy.Breaker.Open() {
		t.Error("breaker still open after successful probe")
	}
}

// TestNotFoundIsNotDegraded: an authoritative "name does not exist" answer
// must surface as 404, not trigger stale serving or trip the breaker.
func TestNotFoundIsNotDegraded(t *testing.T) {
	s := newDegradeStack(t)
	s.proxy.Breaker = resilience.Breaker{Threshold: 1, Cooldown: time.Hour}
	n, _ := names.Parse("nosuch." + s.org.Principal().KeyHash().String())
	_, _, err := s.proxy.Get(context.Background(), n)
	if !errors.Is(err, resolver.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if s.proxy.Breaker.Open() {
		t.Error("not-found answer tripped the breaker")
	}
	if calls := s.res.calls.Load(); calls != 1 {
		t.Errorf("not-found was retried: %d resolver calls, want 1", calls)
	}
}

// TestSingleflightCancelledFollower: a follower whose context is cancelled
// detaches immediately instead of waiting for the leader to finish.
func TestSingleflightCancelledFollower(t *testing.T) {
	var g flightGroup
	block := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		g.do(context.Background(), "k", func(context.Context) (*CachedObject, error) {
			<-block
			return &CachedObject{}, nil
		})
	}()
	// Wait until the leader holds the flight.
	for {
		g.mu.Lock()
		_, ok := g.flights["k"]
		g.mu.Unlock()
		if ok {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	obj, shared, err := g.do(ctx, "k", func(context.Context) (*CachedObject, error) {
		t.Error("follower executed fn")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	if obj != nil || !shared {
		t.Fatalf("follower returned obj=%v shared=%v", obj, shared)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("cancelled follower blocked for %v", waited)
	}
	close(block) // leader still completes normally
	<-leaderDone
}
