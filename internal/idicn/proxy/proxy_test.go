package proxy

import (
	"context"
	"crypto/ed25519"
	"encoding/base64"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"idicn/internal/idicn/names"
	"idicn/internal/idicn/origin"
	"idicn/internal/idicn/resolver"
)

// stack wires resolver + origin + proxy over httptest and returns them with
// the proxy's test server.
type stack struct {
	registry *resolver.Registry
	org      *origin.Server
	proxy    *Proxy
	proxySrv *httptest.Server
}

func newStack(t *testing.T) *stack {
	t.Helper()
	registry := resolver.NewRegistry()
	resSrv := httptest.NewServer(resolver.NewServer(registry))
	t.Cleanup(resSrv.Close)

	seed := make([]byte, ed25519.SeedSize)
	seed[0] = 42
	p, err := names.PrincipalFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	var org *origin.Server
	orgSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		org.ServeHTTP(w, r)
	}))
	t.Cleanup(orgSrv.Close)
	org = origin.New(p, resolver.NewClient(resSrv.URL, resSrv.Client()), orgSrv.URL)

	px := New(resolver.NewClient(resSrv.URL, resSrv.Client()))
	pxSrv := httptest.NewServer(px)
	t.Cleanup(pxSrv.Close)
	return &stack{registry: registry, org: org, proxy: px, proxySrv: pxSrv}
}

// getName issues a GET to the proxy with the Host header set to the name's
// DNS form, as a PAC-configured browser would.
func (s *stack) getName(t *testing.T, n names.Name) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, s.proxySrv.URL+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Host = n.DNS()
	resp, err := s.proxySrv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestEndToEndNamedFetch(t *testing.T) {
	s := newStack(t)
	body := []byte("the named content")
	n, err := s.org.Publish(context.Background(), "story", "text/plain", body)
	if err != nil {
		t.Fatal(err)
	}

	// First fetch: miss, resolved and fetched from origin, verified.
	resp := s.getName(t, n)
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) != string(body) {
		t.Fatalf("body = %q", got)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "MISS" {
		t.Errorf("first fetch X-Cache = %q", xc)
	}

	// Second fetch: cache hit, origin untouched.
	before := s.org.OriginHits()
	resp2 := s.getName(t, n)
	got2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if string(got2) != string(body) {
		t.Fatalf("cached body = %q", got2)
	}
	if xc := resp2.Header.Get("X-Cache"); xc != "HIT" {
		t.Errorf("second fetch X-Cache = %q", xc)
	}
	if s.org.OriginHits() != before {
		t.Error("cache hit still touched the origin")
	}
	st := s.proxy.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProxyRejectsTamperedContent(t *testing.T) {
	registry := resolver.NewRegistry()
	resSrv := httptest.NewServer(resolver.NewServer(registry))
	defer resSrv.Close()

	seed := make([]byte, ed25519.SeedSize)
	seed[0] = 43
	p, _ := names.PrincipalFromSeed(seed)
	n, _ := p.Name("evil")

	// A malicious "origin" serves tampered bytes with a stale signature.
	sig := p.SignContent("evil", []byte("genuine"))
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := w.Header()
		h.Set("X-Idicn-Name", n.String())
		h.Set("X-Idicn-Signature", "ed25519="+b64(sig))
		h.Set("X-Idicn-Publisher", "ed25519="+b64(p.PublicKey()))
		io.WriteString(w, "tampered")
	}))
	defer evil.Close()

	reg, _ := resolver.NewRegistration(p, "evil", 1, []string{evil.URL})
	if err := registry.Register(context.Background(), reg); err != nil {
		t.Fatal(err)
	}

	px := New(resolver.NewClient(resSrv.URL, resSrv.Client()))
	if _, _, err := px.Get(context.Background(), n); err == nil {
		t.Fatal("tampered content accepted")
	}
	if st := px.Stats(); st.Rejected != 1 {
		t.Errorf("stats = %+v, want 1 rejection", st)
	}
	if px.CacheLen() != 0 {
		t.Error("tampered content was cached")
	}
}

func TestProxyFailsOverToMirror(t *testing.T) {
	registry := resolver.NewRegistry()
	resSrv := httptest.NewServer(resolver.NewServer(registry))
	defer resSrv.Close()

	seed := make([]byte, ed25519.SeedSize)
	seed[0] = 44
	p, _ := names.PrincipalFromSeed(seed)
	body := []byte("mirrored")
	sig := p.SignContent("mir", body)
	n, _ := p.Name("mir")

	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := w.Header()
		h.Set("X-Idicn-Name", n.String())
		h.Set("X-Idicn-Signature", "ed25519="+b64(sig))
		h.Set("X-Idicn-Publisher", "ed25519="+b64(p.PublicKey()))
		w.Write(body)
	}))
	defer good.Close()

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer dead.Close()

	reg, _ := resolver.NewRegistration(p, "mir", 1, []string{dead.URL, good.URL})
	if err := registry.Register(context.Background(), reg); err != nil {
		t.Fatal(err)
	}
	px := New(resolver.NewClient(resSrv.URL, resSrv.Client()))
	obj, fromCache, err := px.Get(context.Background(), n)
	if err != nil {
		t.Fatalf("mirror failover failed: %v", err)
	}
	if fromCache || string(obj.Body) != "mirrored" {
		t.Errorf("obj = %+v fromCache=%v", obj, fromCache)
	}
}

func TestPACFile(t *testing.T) {
	s := newStack(t)
	for _, path := range []string{"/wpad.dat", "/proxy.pac"} {
		resp, err := s.proxySrv.Client().Get(s.proxySrv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		pac := string(body)
		if !strings.Contains(pac, "FindProxyForURL") {
			t.Errorf("%s: missing FindProxyForURL:\n%s", path, pac)
		}
		if !strings.Contains(pac, "idicn.org") || !strings.Contains(pac, "PROXY ") || !strings.Contains(pac, "DIRECT") {
			t.Errorf("%s: PAC incomplete:\n%s", path, pac)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ns-proxy-autoconfig" {
			t.Errorf("%s: content type %q", path, ct)
		}
	}
}

func TestUnknownNameIs404(t *testing.T) {
	s := newStack(t)
	seed := make([]byte, ed25519.SeedSize)
	seed[0] = 45
	other, _ := names.PrincipalFromSeed(seed)
	n, _ := other.Name("ghost")
	resp := s.getName(t, n)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestBadNameHostIs400(t *testing.T) {
	s := newStack(t)
	req, _ := http.NewRequest(http.MethodGet, s.proxySrv.URL+"/", nil)
	req.Host = "not-a-name.idicn.org"
	resp, err := s.proxySrv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestLegacyPassThrough(t *testing.T) {
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Legacy", "yes")
		io.WriteString(w, "old web")
	}))
	defer legacy.Close()

	s := newStack(t)
	// Denied by default.
	req, _ := http.NewRequest(http.MethodGet, s.proxySrv.URL+"/", nil)
	req.URL.Path = "/whatever"
	req.Host = "legacy.example"
	resp, err := s.proxySrv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("legacy denied status = %d, want 403", resp.StatusCode)
	}

	// Allowed with AllowLegacy: proxy-style absolute URI fetch.
	s.proxy.AllowLegacy = true
	pr, _ := http.NewRequest(http.MethodGet, s.proxySrv.URL, nil)
	pr.URL.Path = "/"
	pr.URL.RawQuery = ""
	pr.Host = strings.TrimPrefix(legacy.URL, "http://")
	resp2, err := s.proxySrv.Client().Do(pr)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if string(body) != "old web" || resp2.Header.Get("X-Legacy") != "yes" {
		t.Errorf("legacy fetch = %q hdr=%q", body, resp2.Header.Get("X-Legacy"))
	}
	if st := s.proxy.Stats(); st.LegacyFetches != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTTLExpiryRefetches(t *testing.T) {
	s := newStack(t)
	now := time.Unix(1000, 0)
	s.proxy.clock = func() time.Time { return now }
	s.proxy.TTL = time.Minute

	n, err := s.org.Publish(context.Background(), "fresh", "text/plain", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.proxy.Get(context.Background(), n); err != nil {
		t.Fatal(err)
	}
	// Republish new content, advance past the TTL: the proxy must refetch.
	if _, err := s.org.Publish(context.Background(), "fresh", "text/plain", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	obj, fromCache, err := s.proxy.Get(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	if fromCache || string(obj.Body) != "v2" {
		t.Errorf("after TTL: fromCache=%v body=%q", fromCache, obj.Body)
	}
}

func b64(b []byte) string { return base64.StdEncoding.EncodeToString(b) }
