package proxy

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"idicn/internal/idicn/names"
	"idicn/internal/idicn/resilience"
	"idicn/internal/idicn/resolver"
	"idicn/internal/overload"
)

// TestBrownoutServeStale: at TierStale the proxy serves an expired cache
// entry without touching the resolver at all — unlike outage stale-serving,
// which first burns a failed resolution.
func TestBrownoutServeStale(t *testing.T) {
	s := newDegradeStack(t)
	s.proxy.TTL = time.Minute
	content := []byte("good enough under pressure")
	n, err := s.org.Publish(context.Background(), "story", "text/plain", content)
	if err != nil {
		t.Fatal(err)
	}
	if resp, body := s.getName(t, n); resp.StatusCode != http.StatusOK || body != string(content) {
		t.Fatalf("warm-up fetch: status %d body %q", resp.StatusCode, body)
	}
	warmupCalls := s.res.calls.Load()

	s.advance(2 * time.Minute) // entry now expired
	s.proxy.Brownout = func() overload.Tier { return overload.TierStale }
	resp, body := s.getName(t, n)
	if resp.StatusCode != http.StatusOK || body != string(content) {
		t.Fatalf("brownout fetch: status %d body %q", resp.StatusCode, body)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "STALE" {
		t.Errorf("X-Cache = %q, want STALE", xc)
	}
	if got := s.res.calls.Load(); got != warmupCalls {
		t.Errorf("brownout stale serve hit the resolver: %d calls, want %d", got, warmupCalls)
	}
}

// TestBrownoutNoHedgeSingleAttempt: at TierNoHedge the resolve policy is
// clamped to one attempt — retries are amplification under overload.
func TestBrownoutNoHedgeSingleAttempt(t *testing.T) {
	s := newDegradeStack(t)
	s.proxy.ResolvePolicy = resilience.Policy{
		MaxAttempts: 3,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	s.res.down.Store(true)
	n, _ := names.Parse("missing." + s.org.Principal().KeyHash().String())

	s.proxy.Brownout = func() overload.Tier { return overload.TierNoHedge }
	if _, _, err := s.proxy.Get(context.Background(), n); err == nil {
		t.Fatal("dead resolver with cold cache: want error")
	}
	if got := s.res.calls.Load(); got != 1 {
		t.Fatalf("resolver calls under no-hedge = %d, want 1", got)
	}

	s.proxy.Brownout = nil // back to normal: the full retry schedule applies
	if _, _, err := s.proxy.Get(context.Background(), n); err == nil {
		t.Fatal("dead resolver with cold cache: want error")
	}
	if got := s.res.calls.Load(); got != 1+3 {
		t.Fatalf("resolver calls at TierNormal = %d, want 3 more", got)
	}
}

// budgetProbe records the attempt budget the proxy attached to the request
// context.
type budgetProbe struct {
	remaining int
	seen      bool
}

func (b *budgetProbe) Resolve(ctx context.Context, name string) (resolver.Result, error) {
	if bud := resilience.BudgetFrom(ctx); bud != nil {
		b.seen = true
		b.remaining = bud.Remaining()
	}
	return resolver.Result{}, resilience.Permanent(errors.New("probe: no answer"))
}

// TestProxyAttachesAttemptBudget: every resolution carries a per-request
// attempt budget (default 4; 1 under no-hedge brownout) shared by all
// retry/hedging layers below.
func TestProxyAttachesAttemptBudget(t *testing.T) {
	probe := &budgetProbe{}
	p := New(probe)
	n, _ := names.Parse("label.0000000000000000000000000000000000000000000000000000")
	if _, _, err := p.Get(context.Background(), n); err == nil {
		t.Fatal("probe resolver: want error")
	}
	if !probe.seen {
		t.Fatal("no attempt budget on the resolve context")
	}
	if probe.remaining != 4 {
		t.Fatalf("default budget = %d, want 4", probe.remaining)
	}

	p.Brownout = func() overload.Tier { return overload.TierNoHedge }
	if _, _, err := p.Get(context.Background(), n); err == nil {
		t.Fatal("probe resolver: want error")
	}
	if probe.remaining != 1 {
		t.Fatalf("no-hedge budget = %d, want 1", probe.remaining)
	}
}

// TestSingleflightSurvivesLeaderCancel: the fetch belongs to all waiters,
// not the caller who happened to start it — a canceled initiator leaves the
// flight running for the follower still waiting on it.
func TestSingleflightSurvivesLeaderCancel(t *testing.T) {
	var g flightGroup
	block := make(chan struct{})
	want := &CachedObject{}
	fn := func(fctx context.Context) (*CachedObject, error) {
		<-block
		if err := fctx.Err(); err != nil {
			return nil, err
		}
		return want, nil
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := g.do(leaderCtx, "k", fn)
		leaderErr <- err
	}()
	waitForFlight(t, &g, "k")

	followerRes := make(chan error, 1)
	go func() {
		obj, shared, err := g.do(context.Background(), "k", fn)
		if err == nil && (obj != want || !shared) {
			err = errors.New("follower got wrong object or shared flag")
		}
		followerRes <- err
	}()
	waitForWaiters(t, &g, "k", 2)

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled leader: err = %v, want context.Canceled", err)
	}
	close(block)
	if err := <-followerRes; err != nil {
		t.Fatalf("follower after leader cancel: %v", err)
	}
}

// TestSingleflightCancelsOrphanedFetch: when the last waiter gives up, the
// in-flight fetch's context is canceled — no upstream work survives with
// nobody left to read it.
func TestSingleflightCancelsOrphanedFetch(t *testing.T) {
	var g flightGroup
	fetchCanceled := make(chan struct{})
	fn := func(fctx context.Context) (*CachedObject, error) {
		<-fctx.Done()
		close(fetchCanceled)
		return nil, fctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		_, _, err := g.do(ctx, "k", fn)
		res <- err
	}()
	waitForFlight(t, &g, "k")

	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled caller: err = %v, want context.Canceled", err)
	}
	select {
	case <-fetchCanceled:
	case <-time.After(2 * time.Second):
		t.Fatal("orphaned fetch was never canceled")
	}
	// The key is free again: a new caller starts a fresh flight.
	obj, shared, err := g.do(context.Background(), "k", func(context.Context) (*CachedObject, error) {
		return &CachedObject{}, nil
	})
	if err != nil || obj == nil || shared {
		t.Fatalf("fresh flight after orphan cleanup: obj=%v shared=%v err=%v", obj, shared, err)
	}
}

func waitForFlight(t *testing.T, g *flightGroup, key string) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for {
		g.mu.Lock()
		_, ok := g.flights[key]
		g.mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("flight never appeared")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func waitForWaiters(t *testing.T, g *flightGroup, key string, n int) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for {
		g.mu.Lock()
		f := g.flights[key]
		w := 0
		if f != nil {
			w = f.waiters
		}
		g.mu.Unlock()
		if w >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight never reached %d waiters", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}
