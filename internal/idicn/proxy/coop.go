package proxy

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"idicn/internal/idicn/metalink"
	"idicn/internal/idicn/names"
)

// Scoped cooperation: the application-layer realization of the simulator's
// EDGE-Coop design (paper §4.1). An edge proxy that misses first asks its
// configured sibling proxies — one scoped lookup, no recursion — before
// resolving the name and going toward the origin. Because all content is
// self-certifying, a proxy can safely serve what a peer returns after
// verifying it, with no trust in the peer.

// coopHeader marks a peer lookup so the receiving proxy answers only from
// its cache and never recurses to its own peers or to the origin.
const coopHeader = "X-Idicn-Coop"

// WithPeers configures sibling proxies (base URLs) for scoped cooperative
// lookup.
func WithPeers(urls ...string) Option {
	return func(p *Proxy) {
		for _, u := range urls {
			p.peers = append(p.peers, strings.TrimRight(u, "/"))
		}
	}
}

// CoopStats counts cooperative-lookup outcomes.
type CoopStats struct {
	PeerHits   int64 // served via a sibling proxy
	PeerProbes int64 // lookups sent to siblings
	PeerServed int64 // lookups this proxy answered for siblings
}

// CoopStats returns a snapshot of the cooperation counters.
func (p *Proxy) CoopStats() CoopStats {
	return CoopStats{
		PeerHits:   p.peerHits.Load(),
		PeerProbes: p.peerProbes.Load(),
		PeerServed: p.peerServed.Load(),
	}
}

// lookupPeers asks each sibling in order for a cached copy, verifying any
// response before accepting it. It returns nil when no sibling can help.
func (p *Proxy) lookupPeers(ctx context.Context, n names.Name) *CachedObject {
	for _, peer := range p.peers {
		p.peerProbes.Add(1)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/", nil)
		if err != nil {
			continue
		}
		req.Host = n.DNS()
		req.Header.Set(coopHeader, "1")
		resp, err := p.client.Do(req)
		if err != nil {
			continue
		}
		body, readErr := io.ReadAll(io.LimitReader(resp.Body, 1<<28))
		_ = resp.Body.Close() // best-effort: the read result decides below
		if resp.StatusCode != http.StatusOK || readErr != nil {
			continue
		}
		v, err := metalink.VerifyResponse(resp.Header, body)
		if err != nil || v.Name != n {
			p.rejected.Add(1)
			continue
		}
		p.peerHits.Add(1)
		return &CachedObject{
			Name:        n,
			ContentType: resp.Header.Get("Content-Type"),
			Body:        body,
			Meta:        v,
			Fetched:     p.clock(),
		}
	}
	return nil
}

// serveCoopLookup answers a sibling's scoped lookup strictly from cache.
func (p *Proxy) serveCoopLookup(w http.ResponseWriter, n names.Name) {
	p.mu.Lock()
	obj, ok := p.cache.Get(n.String())
	p.mu.Unlock()
	if !ok || (p.TTL != 0 && p.clock().Sub(obj.Fetched) >= p.TTL) {
		http.Error(w, fmt.Sprintf("proxy: %s not cached", n), http.StatusNotFound)
		return
	}
	p.peerServed.Add(1)
	metalink.SetHeaders(w.Header(), metalink.BuildFile(obj.Name, obj.Meta.PublicKey, obj.Body, obj.Meta.Signature, obj.Meta.Mirrors))
	if obj.ContentType != "" {
		w.Header().Set("Content-Type", obj.ContentType)
	}
	w.Header().Set("X-Cache", "PEER")
	_, _ = w.Write(obj.Body) // a disconnected peer is its problem, not ours
}
