package proxy

import "idicn/internal/obs"

// RegisterMetrics exposes the proxy's internal counters as gauges in reg,
// under proxy_* names. The gauges read the live atomic counters, so the
// registry's /debug/metrics rendering always reflects the current state
// without any extra bookkeeping on the serve path.
func (p *Proxy) RegisterMetrics(reg *obs.Registry) {
	reg.Func("proxy_content_hits", p.hits.Load)
	reg.Func("proxy_content_misses", p.misses.Load)
	reg.Func("proxy_content_rejected", p.rejected.Load)
	reg.Func("proxy_legacy_fetches", p.legacy.Load)
	reg.Func("proxy_peer_hits", p.peerHits.Load)
	reg.Func("proxy_peer_probes", p.peerProbes.Load)
	reg.Func("proxy_peer_served", p.peerServed.Load)
	reg.Func("proxy_cached_objects", func() int64 { return int64(p.CacheLen()) })
	reg.Func("proxy_stale_serves", p.staleServes.Load)
	reg.Func("proxy_origin_fallbacks", p.fallbacks.Load)
	reg.Func("proxy_resolve_errors", p.resolveErrors.Load)
	reg.Func("proxy_breaker_skips", p.breakerSkips.Load)
	reg.Func("proxy_breaker_open", func() int64 {
		if p.Breaker.Open() {
			return 1
		}
		return 0
	})
}
