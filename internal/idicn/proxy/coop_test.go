package proxy

import (
	"context"
	"crypto/ed25519"
	"encoding/base64"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idicn/internal/idicn/names"
	"idicn/internal/idicn/resolver"
)

// coopStack builds two sibling proxies in front of one origin.
func coopStack(t *testing.T) (*stack, *Proxy, *httptest.Server) {
	t.Helper()
	s := newStack(t)
	// Rebuild the sibling pair so each knows the other. Proxy A is the
	// stack's proxy; proxy B gets A as a peer and vice versa.
	resClient := s.proxy.resolver
	pb := New(resClient)
	pbSrv := httptest.NewServer(pb)
	t.Cleanup(pbSrv.Close)
	// Stack proxy learns about B; B learns about A.
	WithPeers(pbSrv.URL)(s.proxy)
	WithPeers(s.proxySrv.URL)(pb)
	return s, pb, pbSrv
}

func TestCoopServesFromSibling(t *testing.T) {
	s, pb, _ := coopStack(t)
	ctx := context.Background()
	body := []byte("shared across siblings")
	n, err := s.org.Publish(ctx, "shared", "text/plain", body)
	if err != nil {
		t.Fatal(err)
	}

	// Warm sibling B from the origin.
	if _, _, err := pb.Get(ctx, n); err != nil {
		t.Fatal(err)
	}
	originBefore := s.org.OriginHits()

	// Proxy A misses locally but must find the copy at B, not the origin.
	obj, fromCache, err := s.proxy.Get(ctx, n)
	if err != nil {
		t.Fatal(err)
	}
	if fromCache {
		t.Error("reported cache hit on first fetch")
	}
	if string(obj.Body) != string(body) {
		t.Fatalf("body = %q", obj.Body)
	}
	if s.org.OriginHits() != originBefore {
		t.Error("cooperative fetch still touched the origin")
	}
	cs := s.proxy.CoopStats()
	if cs.PeerHits != 1 || cs.PeerProbes != 1 {
		t.Errorf("A coop stats = %+v", cs)
	}
	if bs := pb.CoopStats(); bs.PeerServed != 1 {
		t.Errorf("B coop stats = %+v", bs)
	}

	// The object is now cached at A too: a repeat is a local hit.
	if _, fromCache, err := s.proxy.Get(ctx, n); err != nil || !fromCache {
		t.Errorf("repeat after coop fetch: fromCache=%v err=%v", fromCache, err)
	}
}

func TestCoopFallsThroughToOrigin(t *testing.T) {
	s, pb, _ := coopStack(t)
	ctx := context.Background()
	n, err := s.org.Publish(ctx, "coldobj", "text/plain", []byte("cold"))
	if err != nil {
		t.Fatal(err)
	}
	// Neither proxy has it: A probes B (miss), then fetches from origin.
	obj, _, err := s.proxy.Get(ctx, n)
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Body) != "cold" {
		t.Fatalf("body = %q", obj.Body)
	}
	cs := s.proxy.CoopStats()
	if cs.PeerProbes != 1 || cs.PeerHits != 0 {
		t.Errorf("coop stats = %+v", cs)
	}
	if bs := pb.CoopStats(); bs.PeerServed != 0 {
		t.Errorf("B served %d, want 0", bs.PeerServed)
	}
	// Crucially, B's miss on the scoped lookup must NOT have made B fetch
	// the object (no recursion): B's cache stays empty.
	if pb.CacheLen() != 0 {
		t.Error("scoped lookup caused recursive fetch at sibling")
	}
}

func TestCoopLookupIsCacheOnly(t *testing.T) {
	s, _, pbSrv := coopStack(t)
	ctx := context.Background()
	n, err := s.org.Publish(ctx, "probe-me", "text/plain", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// A coop-marked request for an uncached name returns 404 from B.
	req, _ := http.NewRequest(http.MethodGet, pbSrv.URL+"/", nil)
	req.Host = n.DNS()
	req.Header.Set(coopHeader, "1")
	resp, err := pbSrv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("coop miss status = %d, want 404", resp.StatusCode)
	}
}

func TestCoopResponseIsVerified(t *testing.T) {
	// A malicious "sibling" returns garbage; the proxy must reject it and
	// fall through to the origin.
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "poisoned")
	}))
	defer evil.Close()

	s := newStack(t)
	WithPeers(evil.URL)(s.proxy)
	ctx := context.Background()
	body := []byte("authentic")
	n, err := s.org.Publish(ctx, "target", "text/plain", body)
	if err != nil {
		t.Fatal(err)
	}
	obj, _, err := s.proxy.Get(ctx, n)
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Body) != "authentic" {
		t.Fatalf("served %q; cache poisoned by evil sibling", obj.Body)
	}
	if st := s.proxy.Stats(); st.Rejected != 1 {
		t.Errorf("stats = %+v, want 1 rejection", st)
	}
}

func TestGetCoalescedSharesOneFetch(t *testing.T) {
	registry := resolver.NewRegistry()
	resSrv := httptest.NewServer(resolver.NewServer(registry))
	defer resSrv.Close()

	seed := make([]byte, ed25519.SeedSize)
	seed[0] = 77
	p, _ := names.PrincipalFromSeed(seed)
	body := []byte("coalesce me")
	sig := p.SignContent("herd", body)
	n, _ := p.Name("herd")

	var fetches atomic.Int64
	release := make(chan struct{})
	slowOrigin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		<-release // hold all concurrent fetches open
		h := w.Header()
		h.Set("X-Idicn-Name", n.String())
		h.Set("X-Idicn-Signature", "ed25519="+base64.StdEncoding.EncodeToString(sig))
		h.Set("X-Idicn-Publisher", "ed25519="+base64.StdEncoding.EncodeToString(p.PublicKey()))
		w.Write(body)
	}))
	defer slowOrigin.Close()

	reg, _ := resolver.NewRegistration(p, "herd", 1, []string{slowOrigin.URL})
	if err := registry.Register(context.Background(), reg); err != nil {
		t.Fatal(err)
	}
	px := New(resolver.NewClient(resSrv.URL, resSrv.Client()))

	const herd = 16
	var wg sync.WaitGroup
	errs := make([]error, herd)
	bodies := make([][]byte, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			obj, _, err := px.GetCoalesced(context.Background(), n)
			errs[i] = err
			if obj != nil {
				bodies[i] = obj.Body
			}
		}(i)
	}
	// Let the herd pile up, then release the origin.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	for i := 0; i < herd; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if string(bodies[i]) != string(body) {
			t.Fatalf("caller %d body = %q", i, bodies[i])
		}
	}
	if got := fetches.Load(); got != 1 {
		t.Errorf("origin saw %d fetches for a coalesced herd, want 1", got)
	}
	// Subsequent calls are plain cache hits.
	if _, fromCache, err := px.GetCoalesced(context.Background(), n); err != nil || !fromCache {
		t.Errorf("post-herd fetch: fromCache=%v err=%v", fromCache, err)
	}
}
