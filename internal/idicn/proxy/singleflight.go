package proxy

import (
	"context"
	"sync"

	"idicn/internal/idicn/names"
)

// Request coalescing: when a popular object misses, many clients may ask
// for it at once; without coalescing each would trigger its own resolve +
// origin fetch (a thundering herd the origin's flood protection exists to
// avoid). flightGroup deduplicates concurrent fetches of the same name so
// exactly one upstream fetch runs and every waiter shares its result.
//
// Flights are reference-counted: the fetch runs on its own context (values
// inherited from the initiator, cancellation not), every caller holds one
// reference while waiting, and the flight is canceled only when the last
// waiter gives up. Two failure modes die here: a canceled initiator no
// longer kills the fetch for the followers still waiting on it, and a
// fetch whose every waiter has gone away no longer runs to completion as
// an orphan nobody will read.

type flightGroup struct {
	mu sync.Mutex
	//icn:guardedby mu
	flights map[string]*flight
}

type flight struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	obj     *CachedObject
	err     error
}

// join registers the caller as a waiter on key's flight, creating (and
// starting) the flight when none is running. started reports whether this
// caller initiated the fetch.
func (g *flightGroup) join(ctx context.Context, key string, fn func(ctx context.Context) (*CachedObject, error)) (f *flight, started bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	if f, ok := g.flights[key]; ok {
		f.waiters++
		return f, false
	}
	// The flight's context carries the initiator's values (deadline budget,
	// attempt budget) but not its cancellation: waiters own the lifetime.
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f = &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	g.flights[key] = f
	go func() {
		obj, err := fn(fctx)
		g.mu.Lock()
		f.obj, f.err = obj, err
		if g.flights[key] == f {
			delete(g.flights, key)
		}
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return f, true
}

// leave drops one waiter reference. When the last waiter leaves an
// unfinished flight, the fetch is canceled and the key freed so the next
// caller starts fresh.
func (g *flightGroup) leave(key string, f *flight) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f.waiters--
	if f.waiters > 0 {
		return
	}
	select {
	case <-f.done:
		// Finished: the fetch goroutine already cleaned up.
	default:
		f.cancel()
		if g.flights[key] == f {
			delete(g.flights, key)
		}
	}
}

// do runs fn once per concurrent set of callers with the same key. The
// first caller starts the fetch; followers wait until it finishes and
// share the outcome, reporting shared=true. A caller whose ctx ends
// detaches immediately with the ctx error — and when it was the *last*
// caller, takes the in-flight fetch down with it.
func (g *flightGroup) do(ctx context.Context, key string, fn func(ctx context.Context) (*CachedObject, error)) (obj *CachedObject, shared bool, err error) {
	f, started := g.join(ctx, key, fn)
	select {
	case <-f.done:
		g.leave(key, f)
		return f.obj, !started, f.err
	case <-ctx.Done():
		g.leave(key, f)
		return nil, !started, ctx.Err()
	}
}

// GetCoalesced is Get with request coalescing: concurrent misses on the
// same name share one upstream fetch. The cache fast path is identical to
// Get.
func (p *Proxy) GetCoalesced(ctx context.Context, n names.Name) (*CachedObject, bool, error) {
	key := n.String()
	p.mu.Lock()
	obj, ok := p.cache.Get(key)
	p.mu.Unlock()
	if ok && (p.TTL == 0 || p.clock().Sub(obj.Fetched) < p.TTL) {
		p.hits.Add(1)
		return obj, true, nil
	}
	obj, shared, err := p.flights.do(ctx, key, func(fctx context.Context) (*CachedObject, error) {
		o, _, err := p.Get(fctx, n)
		return o, err
	})
	if err != nil {
		return nil, false, err
	}
	return obj, shared, nil
}
