package proxy

import (
	"context"
	"sync"

	"idicn/internal/idicn/names"
)

// Request coalescing: when a popular object misses, many clients may ask
// for it at once; without coalescing each would trigger its own resolve +
// origin fetch (a thundering herd the origin's flood protection exists to
// avoid). flightGroup deduplicates concurrent fetches of the same name so
// exactly one upstream fetch runs and every waiter shares its result.

type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done chan struct{}
	obj  *CachedObject
	err  error
}

// do runs fn once per concurrent set of callers with the same key. The
// leader executes fn; followers wait until it finishes and share the
// outcome, reporting shared=true. A follower whose ctx ends detaches
// immediately with the ctx error instead of waiting out the leader — a
// cancelled client must not stay pinned to a slow or black-holed upstream
// fetch it no longer wants.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*CachedObject, error)) (obj *CachedObject, shared bool, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	if f, ok := g.flights[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.obj, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	f.obj, f.err = fn()
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.obj, false, f.err
}

// GetCoalesced is Get with request coalescing: concurrent misses on the
// same name share one upstream fetch. The cache fast path is identical to
// Get.
func (p *Proxy) GetCoalesced(ctx context.Context, n names.Name) (*CachedObject, bool, error) {
	key := n.String()
	p.mu.Lock()
	obj, ok := p.cache.Get(key)
	p.mu.Unlock()
	if ok && (p.TTL == 0 || p.clock().Sub(obj.Fetched) < p.TTL) {
		p.hits.Add(1)
		return obj, true, nil
	}
	obj, shared, err := p.flights.do(ctx, key, func() (*CachedObject, error) {
		o, _, err := p.Get(ctx, n)
		return o, err
	})
	if err != nil {
		return nil, false, err
	}
	return obj, shared, nil
}
