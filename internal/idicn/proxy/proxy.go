// Package proxy implements the idICN edge proxy cache (paper §6, Figure 11,
// steps 1, 2, 3, 4, and 7): the cache near the client's access gateway that
// clients are pointed at via WPAD/PAC auto-configuration.
//
// The proxy serves named content from its LRU cache when fresh (step 7),
// otherwise resolves the name (step 3), fetches from the origin's reverse
// proxy or a mirror (step 4), authenticates the content against its
// self-certifying name before caching or serving it, and falls through to
// plain HTTP for legacy hosts so deployment never breaks non-idICN traffic.
package proxy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"idicn/internal/cache"
	"idicn/internal/idicn/metalink"
	"idicn/internal/idicn/names"
	"idicn/internal/idicn/resilience"
	"idicn/internal/idicn/resolver"
	"idicn/internal/overload"
)

// Resolver is the proxy's view of the resolution system. *resolver.Client,
// *resolver.MultiClient, and *resolver.HedgedClient all satisfy it.
type Resolver interface {
	Resolve(ctx context.Context, name string) (resolver.Result, error)
}

// CachedObject is a verified content object held by the proxy.
type CachedObject struct {
	Name        names.Name
	ContentType string
	Body        []byte
	Meta        metalink.Verified
	Fetched     time.Time
}

// Stats counts proxy outcomes.
type Stats struct {
	Hits          int64 // served from cache
	Misses        int64 // fetched from origin/mirror
	Rejected      int64 // fetched but failed verification
	LegacyFetches int64 // passed through to non-idICN hosts
	StaleServes   int64 // served expired cache entries during resolver outages
	Fallbacks     int64 // served via remembered origin locations, bypassing the resolver
}

// Proxy is the edge proxy. It is safe for concurrent use.
type Proxy struct {
	resolver Resolver
	client   *http.Client

	mu sync.Mutex
	//icn:guardedby mu
	cache *cache.LRU[string, *CachedObject]
	// Degradation memory: the last successfully resolved content locations
	// per name, and per-publisher origin base URLs derived from them. When
	// the resolver is unreachable these let the proxy go straight to the
	// authority implied by the self-certifying name — the content is still
	// verified against the name, so no trust is lost.
	//icn:guardedby mu
	lastLocs map[string][]string
	//icn:guardedby mu
	pubBase map[string]string // key: P (keyhash string)

	// AllowLegacy enables pass-through fetching for non-idICN hosts.
	AllowLegacy bool
	// TTL bounds cache freshness; zero means objects never expire (content
	// is immutable under self-certifying names, so this is safe; a TTL
	// merely bounds staleness after republication).
	TTL time.Duration
	// ResolvePolicy retries transient resolution failures (per-attempt
	// timeouts, capped backoff). The zero value means 3 attempts with 10ms
	// base delay; resolver "not found" answers are never retried.
	ResolvePolicy resilience.Policy
	// Breaker trips after consecutive resolver failures so a dead resolver
	// is skipped (straight to degraded serving) instead of timing out every
	// request. Zero value: threshold 5, cooldown 1s.
	Breaker resilience.Breaker
	// Brownout reports the stack's current degradation tier (nil means
	// TierNormal). At TierStale and above, expired cache entries are served
	// without revalidating; at TierNoHedge and above, resolution gets a
	// single attempt — under overload the duplicate requests that retries
	// and hedges issue are amplification, not resilience.
	Brownout func() overload.Tier
	// AttemptBudget caps the upstream resolution attempts one request may
	// spend across retry and hedging layers; <= 0 means 4.
	AttemptBudget int

	peers   []string // sibling proxies for scoped cooperative lookup
	flights flightGroup

	hits, misses, rejected, legacy   atomic.Int64
	peerHits, peerProbes, peerServed atomic.Int64
	staleServes, fallbacks           atomic.Int64
	resolveErrors, breakerSkips      atomic.Int64
	clock                            func() time.Time
}

// Option configures a Proxy.
type Option func(*Proxy)

// WithCacheEntries bounds the content cache (default 4096 objects).
func WithCacheEntries(n int) Option {
	//icnvet:ignore guardedby — options run inside New, before the Proxy is published
	return func(p *Proxy) { p.cache = cache.NewLRU[string, *CachedObject](n, nil) }
}

// WithHTTPClient overrides the upstream HTTP client.
func WithHTTPClient(hc *http.Client) Option {
	return func(p *Proxy) { p.client = hc }
}

// WithClock overrides time.Now, for tests.
func WithClock(now func() time.Time) Option {
	return func(p *Proxy) { p.clock = now }
}

// New creates an edge proxy using the given resolver.
func New(res Resolver, opts ...Option) *Proxy {
	p := &Proxy{
		resolver: res,
		client:   &http.Client{Timeout: 10 * time.Second},
		cache:    cache.NewLRU[string, *CachedObject](4096, nil),
		lastLocs: make(map[string][]string),
		pubBase:  make(map[string]string),
		clock:    time.Now,
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Hits:          p.hits.Load(),
		Misses:        p.misses.Load(),
		Rejected:      p.rejected.Load(),
		LegacyFetches: p.legacy.Load(),
		StaleServes:   p.staleServes.Load(),
		Fallbacks:     p.fallbacks.Load(),
	}
}

// ErrVerification is returned when fetched content fails self-certification.
var ErrVerification = errors.New("proxy: content failed verification")

// ServeHTTP handles:
//
//	GET /wpad.dat and /proxy.pac     the PAC file (step 1)
//	any request whose Host (or absolute-form URL) is under idicn.org:
//	    served by name (steps 2-7)
//	other hosts: transparent pass-through when AllowLegacy is set
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/wpad.dat" || r.URL.Path == "/proxy.pac" {
		p.servePAC(w, r)
		return
	}
	host := r.Host
	if r.URL.Host != "" { // absolute-form request line (proxy-style)
		host = r.URL.Host
	}
	if h, _, ok := strings.Cut(host, ":"); ok {
		host = h
	}
	if strings.HasSuffix(strings.ToLower(host), names.Domain) {
		p.serveName(w, r, host)
		return
	}
	if p.AllowLegacy {
		p.serveLegacy(w, r)
		return
	}
	http.Error(w, "proxy: refusing non-idICN host "+host, http.StatusForbidden)
}

// servePAC returns the Proxy Auto-Config file (step 1). Clients discover
// its URL via WPAD (DHCP option 252 or the wpad.<domain> convention) and
// route *.idicn.org through this proxy, everything else direct.
func (p *Proxy) servePAC(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ns-proxy-autoconfig")
	fmt.Fprintf(w, `function FindProxyForURL(url, host) {
  if (dnsDomainIs(host, ".%s") || host == "%s")
    return "PROXY %s";
  return "DIRECT";
}
`, names.Domain, names.Domain, r.Host)
}

func (p *Proxy) serveName(w http.ResponseWriter, r *http.Request, host string) {
	n, err := names.Parse(host)
	if err != nil {
		http.Error(w, "proxy: bad idICN name: "+err.Error(), http.StatusBadRequest)
		return
	}
	if r.Header.Get(coopHeader) != "" {
		// A sibling's scoped lookup: answer from cache only, never recurse.
		p.serveCoopLookup(w, n)
		return
	}
	obj, src, err := p.get(r.Context(), n)
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, resolver.ErrNotFound) {
			status = http.StatusNotFound
		}
		if errors.Is(err, ErrVerification) {
			status = http.StatusBadGateway
		}
		http.Error(w, err.Error(), status)
		return
	}
	metalink.SetHeaders(w.Header(), metalink.BuildFile(obj.Name, obj.Meta.PublicKey, obj.Body, obj.Meta.Signature, obj.Meta.Mirrors))
	if obj.ContentType != "" {
		w.Header().Set("Content-Type", obj.ContentType)
	}
	switch src {
	case srcHit:
		w.Header().Set("X-Cache", "HIT")
	case srcStale:
		w.Header().Set("X-Cache", "STALE")
	case srcFallback:
		w.Header().Set("X-Cache", "FALLBACK")
	default:
		w.Header().Set("X-Cache", "MISS")
	}
	http.ServeContent(w, r, obj.Name.Label, obj.Fetched, strings.NewReader(string(obj.Body)))
}

// source says how an object was obtained, for X-Cache headers and metrics.
type source int

const (
	srcMiss     source = iota // resolved and fetched upstream
	srcHit                    // fresh cache entry
	srcPeer                   // sibling proxy's cache
	srcStale                  // expired cache entry, served during an outage
	srcFallback               // fetched via remembered locations, resolver down
)

// ErrResolverDown is wrapped into errors returned when the resolution system
// is unreachable (or the circuit breaker is open) and no degraded path could
// serve the object.
var ErrResolverDown = errors.New("proxy: resolver unavailable")

// Get returns the verified object for a name, from cache when fresh
// (fromCache true), otherwise via resolution and fetch. All content is
// authenticated against the name before being cached or returned,
// implementing the paper's "the proxy authenticates the content using
// enclosed digital signatures" (step 7). When the resolver is unreachable
// the proxy degrades instead of failing: expired cache entries are served
// stale, then remembered origin locations are tried directly.
func (p *Proxy) Get(ctx context.Context, n names.Name) (*CachedObject, bool, error) {
	obj, src, err := p.get(ctx, n)
	return obj, src == srcHit, err
}

// tier returns the current brownout tier (TierNormal without a hook).
func (p *Proxy) tier() overload.Tier {
	if p.Brownout == nil {
		return overload.TierNormal
	}
	return p.Brownout()
}

// attemptBudget is the per-request upstream attempt cap.
func (p *Proxy) attemptBudget() int {
	if p.AttemptBudget > 0 {
		return p.AttemptBudget
	}
	return 4
}

func (p *Proxy) get(ctx context.Context, n names.Name) (*CachedObject, source, error) {
	key := n.String()
	tier := p.tier()
	p.mu.Lock()
	stale, ok := p.cache.Get(key)
	p.mu.Unlock()
	if ok && (p.TTL == 0 || p.clock().Sub(stale.Fetched) < p.TTL) {
		p.hits.Add(1)
		return stale, srcHit, nil
	}
	if !ok {
		stale = nil
	}
	// Brownout serve-stale: under pressure an expired entry beats the cost
	// of revalidating it. Content is immutable under self-certifying names,
	// so staleness only means "republished since" — never "wrong".
	if stale != nil && tier >= overload.TierStale {
		p.staleServes.Add(1)
		return stale, srcStale, nil
	}

	// One attempt budget per request, shared by every retry and hedging
	// layer below. Under no-hedge brownout the budget is 1: a single
	// resolution attempt, no amplification.
	if resilience.BudgetFrom(ctx) == nil {
		budget := p.attemptBudget()
		if tier >= overload.TierNoHedge {
			budget = 1
		}
		ctx = resilience.WithBudget(ctx, resilience.NewBudget(budget))
	}

	// Scoped cooperation before the resolution system: ask sibling proxies
	// for a cached copy (the application-layer EDGE-Coop).
	if len(p.peers) > 0 {
		if obj := p.lookupPeers(ctx, n); obj != nil {
			p.mu.Lock()
			p.cache.Put(key, obj)
			p.mu.Unlock()
			return obj, srcPeer, nil
		}
	}

	res, err := p.resolve(ctx, key)
	if err != nil {
		if errors.Is(err, resolver.ErrNotFound) {
			return nil, srcMiss, err // authoritative: the name does not exist
		}
		return p.degrade(ctx, n, key, stale, err)
	}
	p.remember(n, key, res.Locations)
	obj, err := p.fetchAny(ctx, n, key, res.Locations)
	if err != nil {
		return nil, srcMiss, err
	}
	p.misses.Add(1)
	return obj, srcMiss, nil
}

// resolve wraps the resolver call with the retry policy and circuit
// breaker. "Not found" is an authoritative healthy answer: it is never
// retried and it resets the breaker.
func (p *Proxy) resolve(ctx context.Context, key string) (resolver.Result, error) {
	if !p.Breaker.Allow() {
		p.breakerSkips.Add(1)
		return resolver.Result{}, fmt.Errorf("%w: circuit open", ErrResolverDown)
	}
	pol := p.ResolvePolicy
	if p.tier() >= overload.TierNoHedge {
		pol.MaxAttempts = 1
	}
	var res resolver.Result
	err := pol.Do(ctx, func(ctx context.Context) error {
		var err error
		res, err = p.resolver.Resolve(ctx, key)
		if errors.Is(err, resolver.ErrNotFound) {
			return resilience.Permanent(err)
		}
		return err
	})
	if err == nil || errors.Is(err, resolver.ErrNotFound) {
		p.Breaker.Record(nil)
	} else {
		p.resolveErrors.Add(1)
		p.Breaker.Record(err)
	}
	return res, err
}

// remember records the resolved locations (and the publisher origin base
// derived from them) so future requests can survive a resolver outage.
func (p *Proxy) remember(n names.Name, key string, locations []string) {
	locs := append([]string(nil), locations...)
	p.mu.Lock()
	p.lastLocs[key] = locs
	for _, loc := range locs {
		// Origin content URLs end in "/content/<label>"; the prefix is the
		// publisher's serving base, valid for all of its labels.
		if i := strings.LastIndex(loc, "/content/"); i > 0 {
			p.pubBase[n.Key.String()] = loc[:i]
			break
		}
	}
	p.mu.Unlock()
}

// degrade is the resolver-outage path: serve the expired cache entry if one
// exists, else go directly to remembered locations for this name or to the
// publisher's origin base. Content fetched this way is still verified
// against the self-certifying name, so degradation never weakens
// authenticity.
func (p *Proxy) degrade(ctx context.Context, n names.Name, key string, stale *CachedObject, cause error) (*CachedObject, source, error) {
	if stale != nil {
		p.staleServes.Add(1)
		return stale, srcStale, nil
	}
	p.mu.Lock()
	locs := append([]string(nil), p.lastLocs[key]...)
	if base, ok := p.pubBase[n.Key.String()]; ok {
		locs = append(locs, base+"/content/"+n.Label)
	}
	p.mu.Unlock()
	// A dead request gets no fallback fetch: the client shed or canceled it
	// upstream, so any upstream work now is orphaned.
	if len(locs) > 0 && ctx.Err() == nil {
		if obj, err := p.fetchAny(ctx, n, key, locs); err == nil {
			p.fallbacks.Add(1)
			return obj, srcFallback, nil
		}
	}
	return nil, srcMiss, fmt.Errorf("%w: %v", ErrResolverDown, cause)
}

// fetchAny tries each location in order, caching and returning the first
// verified object.
func (p *Proxy) fetchAny(ctx context.Context, n names.Name, key string, locations []string) (*CachedObject, error) {
	var lastErr error
	for _, loc := range locations {
		// Between locations, re-check the request: once the client is gone
		// (shed, canceled, deadline past) trying further mirrors only
		// creates upstream work nobody will read.
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		obj, err := p.fetchVerified(ctx, n, loc)
		if err != nil {
			lastErr = err
			continue
		}
		p.mu.Lock()
		p.cache.Put(key, obj)
		p.mu.Unlock()
		return obj, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("proxy: no locations for %s", key)
	}
	return nil, lastErr
}

func (p *Proxy) fetchVerified(ctx context.Context, n names.Name, loc string) (*CachedObject, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, loc, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("proxy: fetching %s: %w", loc, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("proxy: fetching %s: status %s", loc, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<28))
	if err != nil {
		return nil, fmt.Errorf("proxy: reading %s: %w", loc, err)
	}
	v, err := metalink.VerifyResponse(resp.Header, body)
	if err != nil {
		p.rejected.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrVerification, err)
	}
	if v.Name != n {
		p.rejected.Add(1)
		return nil, fmt.Errorf("%w: response is for %s, requested %s", ErrVerification, v.Name, n)
	}
	return &CachedObject{
		Name:        n,
		ContentType: resp.Header.Get("Content-Type"),
		Body:        body,
		Meta:        v,
		Fetched:     p.clock(),
	}, nil
}

// serveLegacy passes a request through to its host unchanged (no caching:
// legacy content has no self-certifying identity to cache under safely).
func (p *Proxy) serveLegacy(w http.ResponseWriter, r *http.Request) {
	p.legacy.Add(1)
	target := *r.URL
	if target.Scheme == "" {
		target.Scheme = "http"
	}
	if target.Host == "" {
		target.Host = r.Host
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target.String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	// The status line is already on the wire; a copy error only means the
	// client or upstream went away mid-body, which each side sees itself.
	_, _ = io.Copy(w, resp.Body)
}

// CacheLen returns the number of cached objects.
func (p *Proxy) CacheLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cache.Len()
}
