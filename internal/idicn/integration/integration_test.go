package integration

import (
	"context"
	"crypto/ed25519"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"idicn/internal/idicn/adhoc"
	"idicn/internal/idicn/mobility"
	"idicn/internal/idicn/names"
	"idicn/internal/idicn/origin"
	"idicn/internal/idicn/proxy"
	"idicn/internal/idicn/resolver"
	"idicn/internal/testutil/leakcheck"
)

func principal(t testing.TB, b byte) *names.Principal {
	t.Helper()
	seed := make([]byte, ed25519.SeedSize)
	for i := range seed {
		seed[i] = b
	}
	p, err := names.PrincipalFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// deployment is a complete idICN installation: a resolver, one publisher's
// origin, and two cooperating edge proxies ("AD east" and "AD west").
type deployment struct {
	registry  *resolver.Registry
	resClient *resolver.Client
	publisher *names.Principal
	org       *origin.Server
	east      *proxy.Proxy
	eastSrv   *httptest.Server
	west      *proxy.Proxy
	westSrv   *httptest.Server
}

func newDeployment(t *testing.T) *deployment {
	t.Helper()
	// Everything the deployment spawns must be gone once its Cleanups have
	// torn the servers down; registered first so it checks last.
	leakcheck.Check(t)
	d := &deployment{registry: resolver.NewRegistry()}
	resSrv := httptest.NewServer(resolver.NewServer(d.registry))
	t.Cleanup(resSrv.Close)
	d.resClient = resolver.NewClient(resSrv.URL, resSrv.Client())

	d.publisher = principal(t, 101)
	orgSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d.org.ServeHTTP(w, r)
	}))
	t.Cleanup(orgSrv.Close)
	d.org = origin.New(d.publisher, d.resClient, orgSrv.URL)

	d.east = proxy.New(d.resClient)
	d.eastSrv = httptest.NewServer(d.east)
	t.Cleanup(d.eastSrv.Close)
	d.west = proxy.New(d.resClient)
	d.westSrv = httptest.NewServer(d.west)
	t.Cleanup(d.westSrv.Close)
	proxy.WithPeers(d.westSrv.URL)(d.east)
	proxy.WithPeers(d.eastSrv.URL)(d.west)
	return d
}

// browse simulates a PAC-configured browser: GET / with the name as Host,
// via the given proxy.
func browse(t *testing.T, srv *httptest.Server, n names.Name) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Host = n.DNS()
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestFigure11Pipeline walks the paper's Figure 11 numbered steps across a
// two-proxy deployment: publish (P1, P2), client auto-configuration (1),
// request by name (2), resolution (3), fetch with metadata (4-6), verified
// serve and caching (7), then cooperation between administrative domains.
func TestFigure11Pipeline(t *testing.T) {
	d := newDeployment(t)
	ctx := context.Background()

	// P1 + P2: publish and register.
	content := []byte("incremental deployment beats forklift upgrades")
	n, err := d.org.Publish(ctx, "thesis", "text/plain", content)
	if err != nil {
		t.Fatal(err)
	}
	if d.registry.Len() != 1 {
		t.Fatalf("registry holds %d records after publish", d.registry.Len())
	}

	// Step 1: the PAC file routes idicn.org through the proxy.
	pacResp, err := d.eastSrv.Client().Get(d.eastSrv.URL + "/wpad.dat")
	if err != nil {
		t.Fatal(err)
	}
	pac, _ := io.ReadAll(pacResp.Body)
	pacResp.Body.Close()
	if !strings.Contains(string(pac), "idicn.org") {
		t.Fatalf("PAC file does not cover idicn.org:\n%s", pac)
	}

	// Steps 2-7 via the east proxy: first fetch misses and verifies.
	resp1, body1 := browse(t, d.eastSrv, n)
	if string(body1) != string(content) || resp1.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("first fetch: %q, X-Cache=%s", body1, resp1.Header.Get("X-Cache"))
	}
	if resp1.Header.Get("X-Idicn-Name") != n.String() {
		t.Errorf("metadata name header = %q", resp1.Header.Get("X-Idicn-Name"))
	}

	// Repeat via east: cache hit, origin untouched.
	originHits := d.org.OriginHits()
	resp2, _ := browse(t, d.eastSrv, n)
	if resp2.Header.Get("X-Cache") != "HIT" {
		t.Errorf("second fetch X-Cache = %s", resp2.Header.Get("X-Cache"))
	}
	if d.org.OriginHits() != originHits {
		t.Error("cache hit reached the origin")
	}

	// Cross-domain cooperation: west misses locally but pulls from east's
	// cache, still without touching the origin.
	resp3, body3 := browse(t, d.westSrv, n)
	if string(body3) != string(content) {
		t.Fatalf("west fetch body = %q", body3)
	}
	_ = resp3
	if d.org.OriginHits() != originHits {
		t.Error("cooperative fetch reached the origin")
	}
	if cs := d.west.CoopStats(); cs.PeerHits != 1 {
		t.Errorf("west coop stats = %+v", cs)
	}

	// And the proxies always verified: zero rejections, zero failures.
	if st := d.east.Stats(); st.Rejected != 0 {
		t.Errorf("east rejected %d objects", st.Rejected)
	}
}

// TestConsortiumWithDelegation runs the two-tier resolution arrangement end
// to end: the proxy uses a consortium client; the top-level resolvers hold
// only a publisher delegation pointing at the publisher's own fine-grained
// resolver.
func TestConsortiumWithDelegation(t *testing.T) {
	ctx := context.Background()
	pub := principal(t, 102)

	// Fine-grained resolver operated by the publisher.
	fineReg := resolver.NewRegistry()
	fineSrv := httptest.NewServer(resolver.NewServer(fineReg))
	defer fineSrv.Close()

	// Two consortium members, both holding only the delegation.
	var consortium []string
	for i := 0; i < 2; i++ {
		reg := resolver.NewRegistry()
		srv := httptest.NewServer(resolver.NewServer(reg))
		defer srv.Close()
		consortium = append(consortium, srv.URL)
		del, err := resolver.NewRegistration(pub, "", 1, []string{resolver.Delegation(fineSrv.URL)})
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(context.Background(), del); err != nil {
			t.Fatal(err)
		}
	}

	// The origin registers content with its own resolver only.
	var org *origin.Server
	orgSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		org.ServeHTTP(w, r)
	}))
	defer orgSrv.Close()
	org = origin.New(pub, resolver.NewClient(fineSrv.URL, fineSrv.Client()), orgSrv.URL)
	n, err := org.Publish(ctx, "deep", "text/plain", []byte("found via delegation"))
	if err != nil {
		t.Fatal(err)
	}

	// A client resolving through the consortium finds the content.
	mc := resolver.NewMultiClient(consortium, nil)
	res, err := mc.Resolve(ctx, n.String())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(res.Locations[0])
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "found via delegation" {
		t.Fatalf("body = %q", body)
	}
}

// TestMobileContentThroughProxy: content published by a mobile host is
// fetched through an edge proxy; after the host moves, a fresh client
// (bypassing the proxy cache via a second proxy) still reaches it.
func TestMobileContentThroughProxy(t *testing.T) {
	d := newDeployment(t)
	ctx := context.Background()

	host := mobility.NewHost(d.publisher, d.resClient)
	if err := host.Start(); err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	n, err := host.Publish(ctx, "onthego", "text/plain", []byte("mobile"))
	if err != nil {
		t.Fatal(err)
	}

	// East proxy serves it (resolves to the host's first location).
	_, body := browse(t, d.eastSrv, n)
	if string(body) != "mobile" {
		t.Fatalf("pre-move fetch = %q", body)
	}

	// The host moves; the west proxy (cold cache, and its peer east holds a
	// verified copy) must still serve the content — either from the peer's
	// cache or by re-resolving to the new location. Both are correct idICN
	// behavior; the content verifies either way.
	if err := host.Move(ctx); err != nil {
		t.Fatal(err)
	}
	_, body2 := browse(t, d.westSrv, n)
	if string(body2) != "mobile" {
		t.Fatalf("post-move fetch = %q", body2)
	}
}

// TestAdhocFallbackWhenResolverUnreachable: with no resolver, content still
// flows over the ad hoc link (the paper's point that idICN's modes are
// independent).
func TestAdhocFallbackWhenResolverUnreachable(t *testing.T) {
	link := adhoc.NewSegment()
	addr, err := adhoc.AllocateLinkLocal(link, rand.New(rand.NewSource(5)), 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cache := adhoc.NewBrowserCache()
	cache.Put("docs.example", "/guide", adhoc.CacheEntry{ContentType: "text/plain", Body: []byte("offline guide")})
	responder := adhoc.NewResponder(link, addr)
	defer responder.Close()

	srv := httptest.NewServer(adhoc.NewShareProxy(cache, responder, ""))
	defer srv.Close()
	share := adhoc.NewShareProxy(cache, responder, srv.URL)
	if err := share.PublishAll(); err != nil {
		t.Fatal(err)
	}

	q := adhoc.NewQuerier(link, "peer", rand.New(rand.NewSource(6)))
	loc, err := q.Query("docs.example", 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, loc+"/guide", nil)
	req.Host = "docs.example"
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "offline guide" {
		t.Fatalf("ad hoc fetch = %q", body)
	}
}
