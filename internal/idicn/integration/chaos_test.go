package integration

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"idicn/internal/faults"
	"idicn/internal/idicn/names"
	"idicn/internal/idicn/origin"
	"idicn/internal/idicn/proxy"
	"idicn/internal/idicn/resilience"
	"idicn/internal/idicn/resolver"
	"idicn/internal/obs"
	"idicn/internal/testutil/leakcheck"
)

// chaosClock is a hand-advanced clock shared by the proxy so cache-TTL
// expiry is driven by the test, not the wall.
type chaosClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *chaosClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *chaosClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// chaosOutcome is everything one chaos run produces: request completions,
// how the proxy degraded, and the injected-fault counters as rendered by the
// obs metrics registry.
type chaosOutcome struct {
	total, completed int
	stats            proxy.Stats
	faultCounts      map[string]int64
	metricsText      string
}

// runChaosScenario drives the full stack — resolver, origin, edge proxy —
// through a deterministic outage: every proxy cache entry expires before
// each fetch (forcing a resolution per request), and a seeded fault plan
// blacks the resolver out for 30% of the run. The proxy must absorb the
// outage with serve-stale degradation; every request still completes.
//
// Everything is sequential and every random draw is seeded, so two runs with
// the same seed produce byte-identical fault counters.
func runChaosScenario(t *testing.T, seed int64) chaosOutcome {
	t.Helper()
	const (
		objects = 10
		fetches = 300
		// Fetch indices [blackoutFrom, blackoutTo) hit a dead resolver:
		// exactly 30% of the run.
		blackoutFrom = 90
		blackoutTo   = 180
	)
	// Resolver-request budget before the blackout: one registration per
	// published object plus one resolution per healthy fetch. During the
	// blackout each fetch burns ResolvePolicy.MaxAttempts (2) requests.
	plan, err := faults.ParsePlan(fmt.Sprintf(
		"resolver:blackout,from=%d,to=%d;resolver:latency,d=200us,p=0.25",
		objects+blackoutFrom, objects+blackoutFrom+2*(blackoutTo-blackoutFrom)), seed)
	if err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewRegistry()
	inj := plan.Injector("resolver")
	inj.RegisterMetrics(metrics)

	registry := resolver.NewRegistry()
	resSrv := httptest.NewServer(inj.Middleware(resolver.NewServer(registry)))
	defer resSrv.Close()
	// Fresh connection per resolver request: Go's transport would silently
	// replay an aborted request on a reused keep-alive connection, hiding
	// injected drops from the retry layer (and from the determinism check).
	resClient := resolver.NewClient(resSrv.URL, &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
	})

	pub := principal(t, 103)
	var org *origin.Server
	orgSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		org.ServeHTTP(w, r)
	}))
	defer orgSrv.Close()
	org = origin.New(pub, resClient, orgSrv.URL)

	clock := &chaosClock{now: time.Unix(1376000000, 0)}
	px := proxy.New(resClient, proxy.WithClock(clock.Now))
	px.TTL = time.Minute
	px.ResolvePolicy = resilience.Policy{
		MaxAttempts: 2,
		Seed:        seed,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	// The breaker would deterministically skip resolver calls once tripped,
	// but its cooldown runs on the wall clock; disarm it so the request
	// sequence seen by the injector depends only on the fetch loop.
	px.Breaker = resilience.Breaker{Threshold: 1 << 30}
	pxSrv := httptest.NewServer(px)
	defer pxSrv.Close()

	ctx := context.Background()
	published := make([]names.Name, objects)
	for i := range published {
		n, err := org.Publish(ctx, fmt.Sprintf("obj-%d", i), "text/plain", []byte(fmt.Sprintf("chaos payload %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		published[i] = n
	}

	out := chaosOutcome{total: fetches}
	for i := 0; i < fetches; i++ {
		// Expire the whole cache: every fetch must consult the resolver,
		// so the blackout window maps exactly onto fetch indices.
		clock.Advance(2 * time.Minute)
		n := published[i%objects]
		req, err := http.NewRequest(http.MethodGet, pxSrv.URL+"/", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Host = n.DNS()
		resp, err := pxSrv.Client().Do(req)
		if err != nil {
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && err == nil && len(body) > 0 {
			out.completed++
		}
	}

	out.stats = px.Stats()
	out.faultCounts = inj.Counts()
	var buf bytes.Buffer
	metrics.WriteText(&buf)
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "faults_") {
			out.metricsText += line + "\n"
		}
	}
	return out
}

// TestChaosResolverBlackout is the stack-level chaos drill: a 30% resolver
// blackout mid-run must not fail user requests — the proxy serves stale
// (verified) copies until resolution returns — and the injected-fault
// counters exposed through obs must be identical for identical seeds.
func TestChaosResolverBlackout(t *testing.T) {
	leakcheck.Check(t)
	out := runChaosScenario(t, 20130812)

	if out.completed < out.total*99/100 {
		t.Fatalf("only %d/%d requests completed during the blackout run", out.completed, out.total)
	}
	if out.stats.StaleServes == 0 {
		t.Error("no stale serves: the blackout never forced degradation")
	}
	if out.faultCounts["blackout"] == 0 {
		t.Error("no blackout faults injected")
	}
	if out.faultCounts["latency"] == 0 {
		t.Error("no latency faults injected")
	}
	if !strings.Contains(out.metricsText, "faults_resolver_blackout_total") {
		t.Errorf("obs metrics missing fault counters:\n%s", out.metricsText)
	}

	// Reproducibility: an identical seed yields identical injected-fault
	// counts in the obs metrics, byte for byte.
	again := runChaosScenario(t, 20130812)
	if again.metricsText != out.metricsText {
		t.Errorf("fault counters diverged across identically-seeded runs:\n--- first\n%s--- second\n%s",
			out.metricsText, again.metricsText)
	}
	if again.completed < again.total*99/100 {
		t.Fatalf("second run: only %d/%d requests completed", again.completed, again.total)
	}
}
