// Package integration holds cross-package end-to-end tests for the idICN
// stack: the complete Figure 11 pipeline (publish, resolve, proxy fetch,
// authentication, caching), proxy cooperation, consortium resolvers with
// delegation, mobility, and ad hoc sharing, all over loopback HTTP.
package integration
