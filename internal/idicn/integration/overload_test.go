package integration

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idicn/internal/faults"
	"idicn/internal/httpx"
	"idicn/internal/idicn/origin"
	"idicn/internal/idicn/proxy"
	"idicn/internal/idicn/resolver"
	"idicn/internal/obs"
	"idicn/internal/overload"
	"idicn/internal/testutil/leakcheck"
)

// TestOverloadSurge is the overload-control drill `make overload-smoke`
// runs under the race detector: open-loop traffic far past a small fixed
// concurrency limit, with injected service latency, must be absorbed by
// shedding — every request answered 200 or 503, queue waits bounded by the
// queue deadline, nonzero sheds, admitted requests still completing — and
// afterwards a SIGTERM-style drain must finish cleanly with nothing left
// in the queue and no goroutines pinned.
func TestOverloadSurge(t *testing.T) {
	leakcheck.Check(t)
	const (
		limit         = 4
		queueCapacity = 8
		queueDeadline = 100 * time.Millisecond
		svcLatency    = 20 * time.Millisecond
		requests      = 200
		interval      = 2 * time.Millisecond // 500/s offered vs ~200/s capacity
	)
	baseline := runtime.NumGoroutine()

	// Resolver + origin on httptest servers: the surge targets the proxy.
	registry := resolver.NewRegistry()
	resSrv := httptest.NewServer(resolver.NewServer(registry))
	defer resSrv.Close()
	resClient := resolver.NewClient(resSrv.URL, nil)

	pub := principal(t, 104)
	var org *origin.Server
	orgSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		org.ServeHTTP(w, r)
	}))
	defer orgSrv.Close()
	org = origin.New(pub, resClient, orgSrv.URL)

	// Edge proxy behind the admission pipeline: overload controller outside,
	// injected 20ms service latency inside (so it counts as service time).
	plan, err := faults.ParsePlan(fmt.Sprintf("proxy:latency,d=%s,p=1", svcLatency), 1)
	if err != nil {
		t.Fatal(err)
	}
	inj := plan.Injector("proxy")
	px := proxy.New(resClient)
	ctl := overload.NewController(overload.Config{
		MinConcurrency: limit, MaxConcurrency: limit,
		QueueCapacity: queueCapacity,
		QueueDeadline: queueDeadline,
		Brownout:      overload.NewBrownout(overload.BrownoutConfig{Window: 8}),
	})
	px.Brownout = ctl.Tier
	metrics := obs.NewRegistry()
	ctl.RegisterMetrics(metrics, "proxy")

	var drainer overload.Drainer
	ctl.SetDraining(drainer.Draining)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pxSrv := httpx.Start(lis, ctl.Middleware(inj.Middleware(px)))
	defer pxSrv.Close()
	drainer.Manage(pxSrv)

	ctx := context.Background()
	n, err := org.Publish(ctx, "surge", "text/plain", []byte("overload drill payload"))
	if err != nil {
		t.Fatal(err)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	fetch := func() (int, error) {
		req, err := http.NewRequest(http.MethodGet, pxSrv.URL()+"/", nil)
		if err != nil {
			return 0, err
		}
		req.Host = n.DNS()
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return 0, err
		}
		if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
			return 0, fmt.Errorf("shed response missing Retry-After")
		}
		return resp.StatusCode, nil
	}
	if status, err := fetch(); err != nil || status != http.StatusOK {
		t.Fatalf("warm-up fetch: status %d err %v", status, err)
	}

	// Open-loop surge: requests launch on schedule whether or not earlier
	// ones finished — the load pattern that makes overload possible.
	var ok200, shed503, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, err := fetch()
			switch {
			case err != nil:
				other.Add(1)
				t.Errorf("surge fetch failed outright: %v", err)
			case status == http.StatusOK:
				ok200.Add(1)
			case status == http.StatusServiceUnavailable:
				shed503.Add(1)
			default:
				other.Add(1)
				t.Errorf("surge fetch: unexpected status %d", status)
			}
		}()
		time.Sleep(interval)
	}
	wg.Wait()

	if got := ok200.Load() + shed503.Load() + other.Load(); got != requests {
		t.Fatalf("accounted %d of %d requests", got, requests)
	}
	if ok200.Load() == 0 {
		t.Error("no requests admitted during the surge")
	}
	if shed503.Load() == 0 {
		t.Error("no requests shed: the surge never overloaded the daemon")
	}
	if got, want := ctl.Admitted(), ok200.Load()+1; got != want {
		t.Errorf("controller admitted = %d, want %d (200s + warm-up)", got, want)
	}
	if got := ctl.Shed(); got != shed503.Load() {
		t.Errorf("controller shed = %d, 503 responses = %d", got, shed503.Load())
	}
	// Bounded queue wait: admitted requests were granted within their
	// budget, never parked past it (0.5s allows race-detector scheduling
	// slack on top of the 100ms deadline).
	if max := ctl.QueueWait().Snapshot().Max; max > 0.5 {
		t.Errorf("max queue wait %.3fs: waits are not bounded by the queue deadline", max)
	}
	if got := ctl.Brownout().Transitions(); got == 0 {
		t.Error("sustained surge never escalated the brownout tier")
	}
	var sb strings.Builder
	metrics.WriteText(&sb)
	for _, want := range []string{"proxy_overload_shed_total", "proxy_overload_queue_wait_seconds_count", "proxy_overload_brownout_tier"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics text missing %s", want)
		}
	}

	// Graceful drain: readiness flips, in-flight work finishes, the
	// listener closes, and the admission queue is left empty.
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := drainer.Drain(dctx); err != nil {
		t.Fatalf("drain after surge: %v", err)
	}
	if !drainer.Draining() {
		t.Error("drainer does not report draining")
	}
	if d := ctl.Queue().Depth(); d != 0 {
		t.Errorf("queue depth after drain = %d, want 0", d)
	}
	if f := ctl.Queue().Inflight(); f != 0 {
		t.Errorf("inflight after drain = %d, want 0", f)
	}
	if _, err := net.DialTimeout("tcp", pxSrv.Addr().String(), time.Second); err == nil {
		t.Error("proxy listener still accepting after drain")
	}

	// No goroutines pinned: after closing every server and idle connection,
	// the count settles back to near the pre-test baseline.
	resSrv.Close()
	orgSrv.Close()
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+8 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines never settled: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
