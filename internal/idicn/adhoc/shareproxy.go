package adhoc

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// CacheEntry is one item of a shared browser cache.
type CacheEntry struct {
	ContentType string
	Body        []byte
}

// BrowserCache models a browser's HTTP cache keyed by "host/path". It is
// safe for concurrent use.
type BrowserCache struct {
	mu      sync.RWMutex
	entries map[string]CacheEntry
}

// NewBrowserCache returns an empty cache.
func NewBrowserCache() *BrowserCache {
	return &BrowserCache{entries: make(map[string]CacheEntry)}
}

// Put stores an entry for host+path.
func (b *BrowserCache) Put(host, path string, e CacheEntry) {
	b.mu.Lock()
	b.entries[key(host, path)] = e
	b.mu.Unlock()
}

// Get retrieves an entry.
func (b *BrowserCache) Get(host, path string) (CacheEntry, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	e, ok := b.entries[key(host, path)]
	return e, ok
}

// Hosts returns the distinct hosts with cached content.
func (b *BrowserCache) Hosts() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for k := range b.entries {
		host, _, _ := strings.Cut(k, "/")
		if !seen[host] {
			seen[host] = true
			out = append(out, host)
		}
	}
	return out
}

func key(host, path string) string {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return strings.ToLower(host) + path
}

// ShareProxy exposes a browser cache over HTTP and publishes each cached
// host over the ad hoc link, reproducing the paper's prototype ("a simple
// HTTP proxy ... to expose Chrome browser's cache over the network when the
// IP address is link-local"). A peer that resolves cnn.com over mDNS to
// this machine fetches straight out of the shared cache.
type ShareProxy struct {
	cache     *BrowserCache
	responder *Responder
	baseURL   string
}

// NewShareProxy wires a browser cache to a responder; baseURL is the HTTP
// location peers should fetch from (this proxy's listener).
func NewShareProxy(cache *BrowserCache, responder *Responder, baseURL string) *ShareProxy {
	return &ShareProxy{cache: cache, responder: responder, baseURL: strings.TrimRight(baseURL, "/")}
}

// PublishAll announces every cached host on the link.
func (s *ShareProxy) PublishAll() error {
	for _, host := range s.cache.Hosts() {
		if err := s.responder.Publish(host, s.baseURL); err != nil {
			return fmt.Errorf("adhoc: publishing %s: %w", host, err)
		}
	}
	return nil
}

// ServeHTTP serves cached content: the request's Host header selects the
// original site, the path selects the object — exactly what a browser does
// after mDNS resolves the site's name to this machine.
func (s *ShareProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	host := r.Host
	if h, _, ok := strings.Cut(host, ":"); ok {
		host = h
	}
	e, ok := s.cache.Get(host, r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	if e.ContentType != "" {
		w.Header().Set("Content-Type", e.ContentType)
	}
	w.Header().Set("X-Adhoc-Share", "hit")
	_, _ = w.Write(e.Body) // client disconnects surface on its side
}
