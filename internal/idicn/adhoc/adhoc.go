// Package adhoc implements idICN's infrastructure-free mode (paper §6.2,
// "Content sharing in ad hoc mode"): Zeroconf-style link-local address
// allocation and an mDNS-like name publishing/resolution protocol, over
// which a user can expose a browser-cache sharing proxy so nearby peers
// fetch content with no DHCP, DNS, or upstream connectivity — the paper's
// Alice-and-Bob-on-a-plane scenario.
//
// The link itself is abstracted by Transport: tests and examples use the
// in-process Segment (a broadcast domain), and a UDP transport provides the
// same protocol over real sockets.
package adhoc

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Kind enumerates protocol message types.
type Kind string

const (
	// KindProbe asks whether an address is already claimed (address
	// autoconfiguration, RFC 3927 style).
	KindProbe Kind = "probe"
	// KindClaim announces a claimed address.
	KindClaim Kind = "claim"
	// KindQuery asks who can serve a name (mDNS query).
	KindQuery Kind = "query"
	// KindAnswer answers a query with a location.
	KindAnswer Kind = "answer"
	// KindAnnounce proactively advertises a name (mDNS announcement).
	KindAnnounce Kind = "announce"
)

// Message is one protocol datagram.
type Message struct {
	Kind   Kind   `json:"kind"`
	From   string `json:"from"`             // sender address
	Name   string `json:"name,omitempty"`   // domain or idICN name
	Target string `json:"target,omitempty"` // answer location (URL) or probed address
	ID     uint64 `json:"id,omitempty"`     // query correlation id
}

// Transport is a broadcast link: Send delivers the message to every attached
// handler except (implementation permitting) the sender's own.
type Transport interface {
	// Send broadcasts a message to the link.
	Send(Message) error
	// Attach registers a handler for incoming messages and returns a
	// detach function. Handlers must be quick and must not block.
	Attach(func(Message)) (detach func())
}

// Segment is an in-process broadcast domain implementing Transport. It is
// safe for concurrent use. Delivery is synchronous in the sender's
// goroutine, like a small LAN without queueing.
type Segment struct {
	mu       sync.RWMutex
	handlers map[int]func(Message)
	next     int
}

// NewSegment creates an empty broadcast domain.
func NewSegment() *Segment {
	return &Segment{handlers: make(map[int]func(Message))}
}

// Attach implements Transport.
func (s *Segment) Attach(h func(Message)) func() {
	s.mu.Lock()
	id := s.next
	s.next++
	s.handlers[id] = h
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.handlers, id)
		s.mu.Unlock()
	}
}

// Send implements Transport: every attached handler receives the message,
// including the sender's (receivers filter on From as real multicast sockets
// do).
func (s *Segment) Send(m Message) error {
	s.mu.RLock()
	hs := make([]func(Message), 0, len(s.handlers))
	for _, h := range s.handlers {
		hs = append(hs, h)
	}
	s.mu.RUnlock()
	for _, h := range hs {
		h(m)
	}
	return nil
}

// AllocateLinkLocal claims a 169.254.x.y address on the link by probing:
// it proposes seeded-random candidates, listens for conflicting claims, and
// announces the first unopposed one, mirroring IPv4 link-local
// autoconfiguration. probeWait bounds how long each probe listens (keep it
// a few milliseconds in tests).
func AllocateLinkLocal(t Transport, rng *rand.Rand, probeWait time.Duration) (string, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	// Probes are sent from a unique token rather than the tentative address
	// (the RFC 3927 analogue of ARP-probing with sender IP 0.0.0.0), so
	// defenders can tell foreign probes from their own traffic and the
	// prober can tell defenses from its own looped-back probe.
	token := fmt.Sprintf("probe-%016x", rng.Uint64())
	for attempt := 0; attempt < 20; attempt++ {
		// RFC 3927: 169.254.1.0 - 169.254.254.255.
		addr := fmt.Sprintf("169.254.%d.%d", 1+rng.Intn(254), rng.Intn(256))
		conflict := make(chan struct{}, 1)
		detach := t.Attach(func(m Message) {
			claimed := m.Kind == KindClaim && m.Target == addr
			rivalProbe := m.Kind == KindProbe && m.Target == addr && m.From != token
			if claimed || rivalProbe {
				select {
				case conflict <- struct{}{}:
				default:
				}
			}
		})
		if err := t.Send(Message{Kind: KindProbe, From: token, Target: addr}); err != nil {
			detach()
			return "", err
		}
		select {
		case <-conflict:
			detach()
			continue
		case <-time.After(probeWait):
		}
		detach()
		if err := t.Send(Message{Kind: KindClaim, From: addr, Target: addr}); err != nil {
			return "", err
		}
		return addr, nil
	}
	return "", errors.New("adhoc: could not allocate a link-local address")
}

// Responder answers name queries for the content its owner shares, like an
// mDNS responder. It also defends its claimed address against probes.
type Responder struct {
	transport Transport
	addr      string

	mu     sync.RWMutex
	names  map[string]string // lowercase name -> location URL
	detach func()
}

// NewResponder attaches a responder at the given address.
func NewResponder(t Transport, addr string) *Responder {
	r := &Responder{transport: t, addr: addr, names: make(map[string]string)}
	r.detach = t.Attach(r.handle)
	return r
}

// Publish announces that name is served at location (paper: "The proxy
// publishes an alias for the machine for each domain name with content in
// the cache").
func (r *Responder) Publish(name, location string) error {
	name = strings.ToLower(name)
	r.mu.Lock()
	r.names[name] = location
	r.mu.Unlock()
	return r.transport.Send(Message{Kind: KindAnnounce, From: r.addr, Name: name, Target: location})
}

// Unpublish withdraws a name.
func (r *Responder) Unpublish(name string) {
	r.mu.Lock()
	delete(r.names, strings.ToLower(name))
	r.mu.Unlock()
}

// Names returns the published names.
func (r *Responder) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.names))
	for n := range r.names {
		out = append(out, n)
	}
	return out
}

// Close detaches the responder from the link.
func (r *Responder) Close() {
	if r.detach != nil {
		r.detach()
		r.detach = nil
	}
}

func (r *Responder) handle(m Message) {
	switch m.Kind {
	case KindQuery:
		r.mu.RLock()
		loc, ok := r.names[strings.ToLower(m.Name)]
		r.mu.RUnlock()
		if !ok {
			return
		}
		r.transport.Send(Message{Kind: KindAnswer, From: r.addr, Name: m.Name, Target: loc, ID: m.ID})
	case KindProbe:
		if m.Target == r.addr && m.From != r.addr {
			// Defend the address.
			r.transport.Send(Message{Kind: KindClaim, From: r.addr, Target: r.addr})
		}
	}
}

// ErrNoAnswer is returned by Query when nobody on the link serves the name.
var ErrNoAnswer = errors.New("adhoc: no answer for name")

// Querier resolves names over the link, the "mDNS as a fallback name
// resolution mechanism" of §6.2.
type Querier struct {
	transport Transport
	addr      string
	rng       *rand.Rand
	mu        sync.Mutex
}

// NewQuerier creates a querier sending from the given address.
func NewQuerier(t Transport, addr string, rng *rand.Rand) *Querier {
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return &Querier{transport: t, addr: addr, rng: rng}
}

// Query broadcasts a query for name and returns the first answer's location
// within the timeout.
func (q *Querier) Query(name string, timeout time.Duration) (string, error) {
	q.mu.Lock()
	id := q.rng.Uint64()
	q.mu.Unlock()
	answer := make(chan string, 1)
	detach := q.transport.Attach(func(m Message) {
		if m.Kind == KindAnswer && m.ID == id && strings.EqualFold(m.Name, name) {
			select {
			case answer <- m.Target:
			default:
			}
		}
	})
	defer detach()
	if err := q.transport.Send(Message{Kind: KindQuery, From: q.addr, Name: name, ID: id}); err != nil {
		return "", err
	}
	select {
	case loc := <-answer:
		return loc, nil
	case <-time.After(timeout):
		return "", fmt.Errorf("%w: %s", ErrNoAnswer, name)
	}
}
