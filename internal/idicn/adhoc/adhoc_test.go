package adhoc

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const probeWait = 2 * time.Millisecond

func TestAllocateLinkLocal(t *testing.T) {
	seg := NewSegment()
	rng := rand.New(rand.NewSource(1))
	addr, err := AllocateLinkLocal(seg, rng, probeWait)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(addr, "169.254.") {
		t.Fatalf("allocated %q, want 169.254.0.0/16", addr)
	}
	parts := strings.Split(addr, ".")
	if len(parts) != 4 || parts[2] == "0" || parts[2] == "255" {
		t.Fatalf("allocated %q outside RFC 3927 host range", addr)
	}
}

func TestAllocateAvoidsDefendedAddress(t *testing.T) {
	seg := NewSegment()
	// Occupy the exact address the seeded allocator would pick first.
	occupied, err := AllocateLinkLocal(seg, rand.New(rand.NewSource(7)), probeWait)
	if err != nil {
		t.Fatal(err)
	}
	defender := NewResponder(seg, occupied)
	defer defender.Close()

	// Same seed: first candidate collides, defense forces a different pick.
	addr, err := AllocateLinkLocal(seg, rand.New(rand.NewSource(7)), probeWait)
	if err != nil {
		t.Fatal(err)
	}
	if addr == occupied {
		t.Fatalf("allocator reused defended address %s", addr)
	}
}

func TestPublishQueryAnswer(t *testing.T) {
	seg := NewSegment()
	resp := NewResponder(seg, "169.254.1.1")
	defer resp.Close()
	if err := resp.Publish("cnn.com", "http://169.254.1.1:8080"); err != nil {
		t.Fatal(err)
	}
	q := NewQuerier(seg, "169.254.2.2", rand.New(rand.NewSource(2)))
	loc, err := q.Query("CNN.com", 50*time.Millisecond) // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if loc != "http://169.254.1.1:8080" {
		t.Fatalf("answer = %q", loc)
	}
	// Unknown names time out with ErrNoAnswer.
	if _, err := q.Query("nyt.com", 10*time.Millisecond); err == nil {
		t.Fatal("unknown name answered")
	}
	resp.Unpublish("cnn.com")
	if _, err := q.Query("cnn.com", 10*time.Millisecond); err == nil {
		t.Fatal("unpublished name still answered")
	}
}

func TestResponderNames(t *testing.T) {
	seg := NewSegment()
	r := NewResponder(seg, "a")
	defer r.Close()
	r.Publish("x.com", "http://a")
	r.Publish("y.com", "http://a")
	names := r.Names()
	if len(names) != 2 {
		t.Fatalf("Names = %v", names)
	}
}

func TestConcurrentQueries(t *testing.T) {
	seg := NewSegment()
	resp := NewResponder(seg, "169.254.1.1")
	defer resp.Close()
	resp.Publish("site.com", "http://here")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := NewQuerier(seg, "peer", rand.New(rand.NewSource(int64(i))))
			if loc, err := q.Query("site.com", 100*time.Millisecond); err != nil || loc != "http://here" {
				t.Errorf("query %d: %v %q", i, err, loc)
			}
		}(i)
	}
	wg.Wait()
}

func TestUDPTransport(t *testing.T) {
	a, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(a.Addr()); err != nil {
		t.Fatal(err)
	}

	// Responder on b, querier on a, across real sockets.
	resp := NewResponder(b, "node-b")
	defer resp.Close()
	if err := resp.Publish("shared.example", "http://node-b:9"); err != nil {
		t.Fatal(err)
	}
	q := NewQuerier(a, "node-a", rand.New(rand.NewSource(3)))
	loc, err := q.Query("shared.example", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if loc != "http://node-b:9" {
		t.Fatalf("answer over UDP = %q", loc)
	}
}

func TestUDPTransportBadPeer(t *testing.T) {
	tr, err := NewUDPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.AddPeer("not an address"); err == nil {
		t.Error("bad peer accepted")
	}
}

func TestBrowserCache(t *testing.T) {
	bc := NewBrowserCache()
	bc.Put("CNN.com", "index.html", CacheEntry{ContentType: "text/html", Body: []byte("hi")})
	if _, ok := bc.Get("cnn.com", "/index.html"); !ok {
		t.Fatal("case/slash normalization failed")
	}
	if _, ok := bc.Get("cnn.com", "/other"); ok {
		t.Fatal("phantom entry")
	}
	bc.Put("cnn.com", "/sports", CacheEntry{Body: []byte("x")})
	bc.Put("bbc.co.uk", "/", CacheEntry{Body: []byte("y")})
	hosts := bc.Hosts()
	if len(hosts) != 2 {
		t.Fatalf("Hosts = %v", hosts)
	}
}

// TestAliceAndBob reproduces the paper's §6.2 scenario end to end: Alice has
// CNN headlines in her browser cache and shares them; Bob, with no DNS or
// upstream network, resolves cnn.com over the ad hoc link and fetches the
// page from Alice's machine.
func TestAliceAndBob(t *testing.T) {
	link := NewSegment()

	// Alice: link-local address, shared browser cache, share proxy.
	aliceAddr, err := AllocateLinkLocal(link, rand.New(rand.NewSource(10)), probeWait)
	if err != nil {
		t.Fatal(err)
	}
	aliceCache := NewBrowserCache()
	aliceCache.Put("cnn.com", "/", CacheEntry{ContentType: "text/html", Body: []byte("<h1>Headlines</h1>")})
	aliceResponder := NewResponder(link, aliceAddr)
	defer aliceResponder.Close()

	share := NewShareProxy(aliceCache, aliceResponder, "")
	aliceSrv := httptest.NewServer(share)
	defer aliceSrv.Close()
	*share = *NewShareProxy(aliceCache, aliceResponder, aliceSrv.URL)
	if err := share.PublishAll(); err != nil {
		t.Fatal(err)
	}

	// Bob: joins the link, resolves cnn.com via the mDNS fallback.
	bobAddr, err := AllocateLinkLocal(link, rand.New(rand.NewSource(11)), probeWait)
	if err != nil {
		t.Fatal(err)
	}
	bob := NewQuerier(link, bobAddr, rand.New(rand.NewSource(12)))
	loc, err := bob.Query("cnn.com", 100*time.Millisecond)
	if err != nil {
		t.Fatalf("Bob could not resolve cnn.com: %v", err)
	}
	if loc != aliceSrv.URL {
		t.Fatalf("resolved %q, want %q", loc, aliceSrv.URL)
	}

	// Bob's browser issues GET / with Host: cnn.com to Alice's proxy.
	req, _ := http.NewRequest(http.MethodGet, loc+"/", nil)
	req.Host = "cnn.com"
	resp, err := aliceSrv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "<h1>Headlines</h1>" {
		t.Fatalf("Bob got %q", body)
	}
	if resp.Header.Get("X-Adhoc-Share") != "hit" {
		t.Error("response not marked as ad hoc share")
	}

	// Content Alice never cached is a 404, not an error.
	req2, _ := http.NewRequest(http.MethodGet, loc+"/missing", nil)
	req2.Host = "cnn.com"
	resp2, err := aliceSrv.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("missing path status = %d", resp2.StatusCode)
	}
}
