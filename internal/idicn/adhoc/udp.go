package adhoc

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// UDPTransport runs the ad hoc protocol over real UDP sockets. True
// multicast is not always available (containers, test sandboxes), so the
// broadcast domain is emulated: each node unicasts every message to its
// known peers, which is behaviorally equivalent on a small link. Peers are
// learned statically via AddPeer (examples) — on a real LAN this would be
// the 224.0.0.251 multicast group.
type UDPTransport struct {
	conn *net.UDPConn

	mu       sync.RWMutex
	peers    []*net.UDPAddr
	handlers map[int]func(Message)
	next     int
	closed   bool
}

// NewUDPTransport binds a UDP socket on addr (use "127.0.0.1:0" for tests)
// and starts its receive loop.
func NewUDPTransport(addr string) (*UDPTransport, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("adhoc: resolving %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("adhoc: listening on %s: %w", addr, err)
	}
	t := &UDPTransport{conn: conn, handlers: make(map[int]func(Message))}
	go t.receiveLoop() //icn:oneshot receive loop; Close unblocks ReadFromUDP and ends it
	return t, nil
}

// Addr returns the bound socket address.
func (t *UDPTransport) Addr() string { return t.conn.LocalAddr().String() }

// AddPeer adds a link member to unicast to.
func (t *UDPTransport) AddPeer(addr string) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("adhoc: resolving peer %s: %w", addr, err)
	}
	t.mu.Lock()
	t.peers = append(t.peers, udpAddr)
	t.mu.Unlock()
	return nil
}

// Send implements Transport: the message goes to every peer and is also
// looped back to local handlers (like a multicast socket with loopback on).
func (t *UDPTransport) Send(m Message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("adhoc: encoding message: %w", err)
	}
	t.mu.RLock()
	peers := append([]*net.UDPAddr(nil), t.peers...)
	t.mu.RUnlock()
	for _, p := range peers {
		if _, err := t.conn.WriteToUDP(data, p); err != nil {
			return fmt.Errorf("adhoc: sending to %s: %w", p, err)
		}
	}
	t.deliver(m)
	return nil
}

// Attach implements Transport.
func (t *UDPTransport) Attach(h func(Message)) func() {
	t.mu.Lock()
	id := t.next
	t.next++
	t.handlers[id] = h
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		delete(t.handlers, id)
		t.mu.Unlock()
	}
}

// Close shuts the socket down; the receive loop exits.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	return t.conn.Close()
}

func (t *UDPTransport) receiveLoop() {
	buf := make([]byte, 64<<10)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			t.mu.RLock()
			closed := t.closed
			t.mu.RUnlock()
			if closed {
				return
			}
			continue
		}
		var m Message
		if err := json.Unmarshal(buf[:n], &m); err != nil {
			continue // ignore malformed datagrams, as an mDNS stack would
		}
		t.deliver(m)
	}
}

func (t *UDPTransport) deliver(m Message) {
	t.mu.RLock()
	hs := make([]func(Message), 0, len(t.handlers))
	for _, h := range t.handlers {
		hs = append(hs, h)
	}
	t.mu.RUnlock()
	for _, h := range hs {
		h(m)
	}
}
