package origin

import "idicn/internal/obs"

// RegisterMetrics exposes the origin server's state as gauges in reg, under
// origin_* names: how many requests pierced the signing proxy's front cache
// and how many objects are published.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	reg.Func("origin_store_hits", s.OriginHits)
	reg.Func("origin_published_objects", func() int64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return int64(len(s.objects))
	})
}
