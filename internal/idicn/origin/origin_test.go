package origin

import (
	"context"
	"crypto/ed25519"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idicn/internal/idicn/metalink"
	"idicn/internal/idicn/names"
	"idicn/internal/idicn/resilience"
	"idicn/internal/idicn/resolver"
)

func principal(t testing.TB, b byte) *names.Principal {
	t.Helper()
	seed := make([]byte, ed25519.SeedSize)
	for i := range seed {
		seed[i] = b
	}
	p, err := names.PrincipalFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// newStack wires a resolver server and an origin server over httptest.
func newStack(t *testing.T) (*Server, *resolver.Registry, *httptest.Server) {
	t.Helper()
	reg := resolver.NewRegistry()
	resSrv := httptest.NewServer(resolver.NewServer(reg))
	t.Cleanup(resSrv.Close)

	p := principal(t, 9)
	var org *Server
	orgSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		org.ServeHTTP(w, r)
	}))
	t.Cleanup(orgSrv.Close)
	org = New(p, resolver.NewClient(resSrv.URL, resSrv.Client()), orgSrv.URL)
	return org, reg, orgSrv
}

func TestPublishRegistersAndServes(t *testing.T) {
	org, reg, orgSrv := newStack(t)
	ctx := context.Background()
	body := []byte("breaking news: caching works")
	n, err := org.Publish(ctx, "headlines", "text/plain", body)
	if err != nil {
		t.Fatal(err)
	}

	// P2: the name is registered with the correct location.
	res, err := reg.Resolve(context.Background(), n.String())
	if err != nil {
		t.Fatalf("name not registered: %v", err)
	}
	if res.Locations[0] != orgSrv.URL+"/content/headlines" {
		t.Errorf("registered location = %v", res.Locations)
	}

	// Step 4-6: fetching returns the body plus verifiable metadata.
	resp, err := orgSrv.Client().Get(orgSrv.URL + "/content/headlines")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if string(got) != string(body) {
		t.Fatalf("body = %q", got)
	}
	v, err := metalink.VerifyResponse(resp.Header, got)
	if err != nil {
		t.Fatalf("response metadata does not verify: %v", err)
	}
	if v.Name != n {
		t.Errorf("verified name %v, want %v", v.Name, n)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain" {
		t.Errorf("Content-Type = %q", ct)
	}
}

func TestRepublishBumpsSeq(t *testing.T) {
	org, reg, _ := newStack(t)
	ctx := context.Background()
	if _, err := org.Publish(ctx, "page", "text/html", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	n, err := org.Publish(ctx, "page", "text/html", []byte("v2"))
	if err != nil {
		t.Fatalf("republish: %v", err)
	}
	res, err := reg.Resolve(context.Background(), n.String())
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 2 {
		t.Errorf("seq = %d, want 2", res.Seq)
	}
	o, ok := org.Object("page")
	if !ok || string(o.Body) != "v2" {
		t.Errorf("object not updated: %+v", o)
	}
}

func TestRangeRequests(t *testing.T) {
	org, _, orgSrv := newStack(t)
	body := []byte("0123456789abcdef")
	if _, err := org.Publish(context.Background(), "blob", "application/octet-stream", body); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, orgSrv.URL+"/content/blob", nil)
	req.Header.Set("Range", "bytes=10-")
	resp, err := orgSrv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status = %d, want 206", resp.StatusCode)
	}
	got, _ := io.ReadAll(resp.Body)
	if string(got) != "abcdef" {
		t.Errorf("range body = %q", got)
	}
}

func TestMetalinkDocument(t *testing.T) {
	org, _, orgSrv := newStack(t)
	if _, err := org.Publish(context.Background(), "file", "text/plain", []byte("data")); err != nil {
		t.Fatal(err)
	}
	resp, err := orgSrv.Client().Get(orgSrv.URL + "/metalink/file")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	doc, _ := io.ReadAll(resp.Body)
	d, err := metalink.Unmarshal(doc)
	if err != nil {
		t.Fatalf("invalid metalink document: %v", err)
	}
	if len(d.Files) != 1 || !strings.HasPrefix(d.Files[0].Name, "file.") {
		t.Errorf("document = %+v", d)
	}
}

func TestFrontCacheShieldsOrigin(t *testing.T) {
	org, _, orgSrv := newStack(t)
	if _, err := org.Publish(context.Background(), "hot", "text/plain", []byte("popular")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		resp, err := orgSrv.Client().Get(orgSrv.URL + "/content/hot")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if hits := org.OriginHits(); hits != 1 {
		t.Errorf("origin hits = %d, want 1 (reverse proxy should absorb repeats)", hits)
	}
}

func TestServeErrors(t *testing.T) {
	_, _, orgSrv := newStack(t)
	for path, want := range map[string]int{
		"/content/nope":      404,
		"/content/Bad Label": 400,
		"/unknown":           404,
		"/metalink/nope":     404,
	} {
		resp, err := orgSrv.Client().Get(orgSrv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestPublishWithoutResolver(t *testing.T) {
	p := principal(t, 10)
	org := New(p, nil, "http://standalone.example", WithMirrors("http://mirror.example/m"), WithClock(func() time.Time {
		return time.Unix(1700000000, 0)
	}))
	n, err := org.Publish(context.Background(), "solo", "text/plain", []byte("x"))
	if err != nil {
		t.Fatalf("publish without resolver: %v", err)
	}
	o, ok := org.Object("solo")
	if !ok {
		t.Fatal("object missing")
	}
	if o.Name != n || !o.Published.Equal(time.Unix(1700000000, 0)) {
		t.Errorf("object = %+v", o)
	}
	if len(o.Meta.URLs) != 2 {
		t.Errorf("mirrors = %+v", o.Meta.URLs)
	}
	if got := org.ContentURL("solo"); got != "http://standalone.example/content/solo" {
		t.Errorf("ContentURL = %q", got)
	}
}

func TestPublishRejectsBadLabel(t *testing.T) {
	p := principal(t, 11)
	org := New(p, nil, "http://x.example")
	if _, err := org.Publish(context.Background(), "Bad Label", "text/plain", []byte("x")); err == nil {
		t.Error("bad label accepted")
	}
}

func TestLabelForFilename(t *testing.T) {
	for in, want := range map[string]string{
		"Report.PDF":        "report-pdf",
		"hello world.txt":   "hello-world-txt",
		"__##__":            "",
		"a":                 "a",
		"--x--":             "x",
		"MiXeD_case-1.html": "mixed-case-1-html",
	} {
		if got := LabelForFilename(in); got != want {
			t.Errorf("LabelForFilename(%q) = %q, want %q", in, got, want)
		}
	}
	long := strings.Repeat("a", 100) + ".txt"
	if got := LabelForFilename(long); len(got) > 63 {
		t.Errorf("long name label %d chars", len(got))
	}
}

func TestPublishDir(t *testing.T) {
	org, reg, orgSrv := newStack(t)
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/Page One.txt", []byte("first page"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/data.bin", []byte{0, 1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(dir+"/subdir", 0o755); err != nil {
		t.Fatal(err)
	}
	published, err := org.PublishDir(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(published) != 2 {
		t.Fatalf("published %d files: %v", len(published), published)
	}
	n, ok := published["page-one-txt"]
	if !ok {
		t.Fatalf("missing label page-one-txt in %v", published)
	}
	if _, err := reg.Resolve(context.Background(), n.String()); err != nil {
		t.Errorf("published file not registered: %v", err)
	}
	resp, err := orgSrv.Client().Get(orgSrv.URL + "/content/page-one-txt")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "first page" {
		t.Errorf("served %q", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("sniffed content type %q", ct)
	}
	if _, err := org.PublishDir(context.Background(), dir+"/missing"); err == nil {
		t.Error("missing dir accepted")
	}
}

// flaky503 fails the first n requests with 503, then delegates to next.
type flaky503 struct {
	mu   sync.Mutex
	left int
	next http.Handler
}

func (f *flaky503) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	fail := f.left > 0
	if fail {
		f.left--
	}
	f.mu.Unlock()
	if fail {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
		return
	}
	f.next.ServeHTTP(w, r)
}

func TestPublishRetriesTransientRegistration(t *testing.T) {
	reg := resolver.NewRegistry()
	flaky := &flaky503{left: 2, next: resolver.NewServer(reg)}
	resSrv := httptest.NewServer(flaky)
	defer resSrv.Close()

	org := New(principal(t, 11), resolver.NewClient(resSrv.URL, resSrv.Client()), "http://origin.example",
		WithRegisterPolicy(resilience.Policy{
			MaxAttempts: 3,
			Seed:        1,
			Sleep:       func(context.Context, time.Duration) error { return nil },
		}))
	n, err := org.Publish(context.Background(), "durable", "text/plain", []byte("x"))
	if err != nil {
		t.Fatalf("publish did not survive two transient 503s: %v", err)
	}
	if _, err := reg.Resolve(context.Background(), n.String()); err != nil {
		t.Errorf("name not registered after retries: %v", err)
	}
}

func TestPublishDoesNotRetryPermanentRejection(t *testing.T) {
	// A resolver that rejects every registration as forged: the retry layer
	// must recognise the rejection as permanent and give up after one try.
	var calls atomic.Int64
	resSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad signature", http.StatusForbidden)
	}))
	defer resSrv.Close()

	org := New(principal(t, 12), resolver.NewClient(resSrv.URL, resSrv.Client()), "http://origin.example",
		WithRegisterPolicy(resilience.Policy{
			MaxAttempts: 5,
			Seed:        1,
			Sleep:       func(context.Context, time.Duration) error { return nil },
		}))
	_, err := org.Publish(context.Background(), "rejected", "text/plain", []byte("x"))
	if !errors.Is(err, resolver.ErrBadRegistration) {
		t.Fatalf("err = %v, want ErrBadRegistration", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("resolver saw %d registration attempts, want 1 (no retry on permanent rejection)", got)
	}
}
