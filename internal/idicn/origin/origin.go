// Package origin implements the content-provider side of idICN (paper §6,
// Figure 11): the origin server and its reverse proxy. Publishing content
// (step P1) signs it under the provider's principal, stores it, attaches
// Metalink metadata to every response (step 6), and registers the name with
// the resolution system (step P2). The reverse proxy front also caches
// origin responses so repeated fetches skip the origin (step 5 elided).
package origin

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"idicn/internal/cache"
	"idicn/internal/idicn/metalink"
	"idicn/internal/idicn/names"
	"idicn/internal/idicn/resilience"
	"idicn/internal/idicn/resolver"
)

// Object is a published content item.
type Object struct {
	Name        names.Name
	ContentType string
	Body        []byte
	Signature   []byte
	Meta        metalink.File
	Published   time.Time
	Seq         uint64
}

// Server is an origin plus reverse proxy for one publisher principal. It is
// safe for concurrent use.
type Server struct {
	principal *names.Principal
	resolver  *resolver.Client
	baseURL   string   // location advertised for this server
	mirrors   []string // additional advertised replica locations

	mu      sync.RWMutex
	objects map[string]*Object // by label
	seq     map[string]uint64  // per-label registration sequence

	// originHits counts requests that had to touch the origin store (as
	// opposed to the reverse proxy's front cache).
	originHits int64
	front      *cache.LRU[string, *Object]
	clock      func() time.Time

	// registerRetry governs retries of resolver registrations during
	// Publish. The zero value retries transient failures a few times with
	// backoff; verification and stale-sequence rejections never retry.
	registerRetry resilience.Policy
}

// Option configures a Server.
type Option func(*Server)

// WithMirrors advertises extra replica locations in published metadata.
func WithMirrors(urls ...string) Option {
	return func(s *Server) { s.mirrors = append(s.mirrors, urls...) }
}

// WithFrontCache bounds the reverse proxy's front cache (default 1024
// objects).
func WithFrontCache(entries int) Option {
	return func(s *Server) { s.front = cache.NewLRU[string, *Object](entries, nil) }
}

// WithClock overrides time.Now, for tests.
func WithClock(now func() time.Time) Option {
	return func(s *Server) { s.clock = now }
}

// WithRegisterPolicy overrides the retry schedule used when registering
// published names with the resolver.
func WithRegisterPolicy(p resilience.Policy) Option {
	return func(s *Server) { s.registerRetry = p }
}

// New creates an origin server. resolverClient may be nil, in which case
// names are not registered (useful for ad hoc setups); baseURL is the URL
// under which this server is reachable, advertised in registrations and
// metadata.
func New(p *names.Principal, resolverClient *resolver.Client, baseURL string, opts ...Option) *Server {
	s := &Server{
		principal: p,
		resolver:  resolverClient,
		baseURL:   strings.TrimRight(baseURL, "/"),
		objects:   make(map[string]*Object),
		seq:       make(map[string]uint64),
		front:     cache.NewLRU[string, *Object](1024, nil),
		clock:     time.Now,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Principal returns the publisher identity.
func (s *Server) Principal() *names.Principal { return s.principal }

// BaseURL returns the advertised location.
func (s *Server) BaseURL() string { return s.baseURL }

// ContentURL returns the fetch URL for a label on this server.
func (s *Server) ContentURL(label string) string {
	return s.baseURL + "/content/" + label
}

// Publish signs and stores content under label and registers the name
// (steps P1 and P2). Republishing a label bumps the registration sequence
// so resolvers accept the update.
func (s *Server) Publish(ctx context.Context, label, contentType string, body []byte) (names.Name, error) {
	n, err := s.principal.Name(label)
	if err != nil {
		return names.Name{}, err
	}
	sig := s.principal.SignContent(label, body)
	mirrors := append([]string{s.ContentURL(label)}, s.mirrors...)
	obj := &Object{
		Name:        n,
		ContentType: contentType,
		Body:        append([]byte(nil), body...),
		Signature:   sig,
		Meta:        metalink.BuildFile(n, s.principal.PublicKey(), body, sig, mirrors),
		Published:   s.clock(),
	}

	s.mu.Lock()
	s.seq[label]++
	obj.Seq = s.seq[label]
	s.objects[label] = obj
	s.mu.Unlock()
	s.front.Remove(label)

	if s.resolver != nil {
		reg, err := resolver.NewRegistration(s.principal, label, obj.Seq, mirrors)
		if err != nil {
			return names.Name{}, err
		}
		err = s.registerRetry.Do(ctx, func(ctx context.Context) error {
			err := s.resolver.Register(ctx, reg)
			if errors.Is(err, resolver.ErrBadRegistration) || errors.Is(err, resolver.ErrStaleSeq) {
				return resilience.Permanent(err) // more tries cannot fix these
			}
			return err
		})
		if err != nil {
			return names.Name{}, fmt.Errorf("origin: registering %s: %w", n, err)
		}
	}
	return n, nil
}

// Object returns the published object for a label.
func (s *Server) Object(label string) (*Object, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[label]
	return o, ok
}

// Labels returns all published labels (unordered).
func (s *Server) Labels() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.objects))
	for l := range s.objects {
		out = append(out, l)
	}
	return out
}

// OriginHits reports how many requests reached the origin store rather than
// the reverse proxy's front cache.
func (s *Server) OriginHits() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.originHits
}

// ServeHTTP serves:
//
//	GET /content/<label>          the content, with idICN metadata headers
//	GET /metalink/<label>         the Metalink XML description
//	GET /labels                   newline-separated published labels
//
// Range requests are honored (http.ServeContent), which the mobility layer
// relies on for resumption.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasPrefix(r.URL.Path, "/content/"):
		s.serveContent(w, r, strings.TrimPrefix(r.URL.Path, "/content/"))
	case strings.HasPrefix(r.URL.Path, "/metalink/"):
		s.serveMetalink(w, r, strings.TrimPrefix(r.URL.Path, "/metalink/"))
	case r.URL.Path == "/labels":
		for _, l := range s.Labels() {
			fmt.Fprintln(w, l)
		}
	default:
		http.NotFound(w, r)
	}
}

// lookup goes through the reverse proxy's front cache before the origin
// store, mirroring Figure 11's step-5 short circuit.
func (s *Server) lookup(label string) (*Object, bool) {
	if o, ok := s.front.Get(label); ok {
		return o, true
	}
	s.mu.Lock()
	o, ok := s.objects[label]
	if ok {
		s.originHits++
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	s.front.Put(label, o)
	return o, true
}

func (s *Server) serveContent(w http.ResponseWriter, r *http.Request, label string) {
	if !names.ValidLabel(label) {
		http.Error(w, "invalid label", http.StatusBadRequest)
		return
	}
	o, ok := s.lookup(label)
	if !ok {
		http.NotFound(w, r)
		return
	}
	metalink.SetHeaders(w.Header(), o.Meta)
	if o.ContentType != "" {
		w.Header().Set("Content-Type", o.ContentType)
	}
	http.ServeContent(w, r, label, o.Published, bytes.NewReader(o.Body))
}

func (s *Server) serveMetalink(w http.ResponseWriter, r *http.Request, label string) {
	o, ok := s.lookup(label)
	if !ok {
		http.NotFound(w, r)
		return
	}
	doc, err := metalink.Marshal(o.Meta)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/metalink4+xml")
	_, _ = w.Write(doc) // client disconnects surface on its side
}

// PublishDir publishes every regular file under dir (non-recursively),
// deriving each label from the file name (lowercased; unsupported
// characters become hyphens) and the content type by sniffing. It returns
// the published names keyed by label.
func (s *Server) PublishDir(ctx context.Context, dir string) (map[string]names.Name, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("origin: %w", err)
	}
	out := make(map[string]names.Name)
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		label := LabelForFilename(e.Name())
		if label == "" {
			continue
		}
		body, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("origin: reading %s: %w", e.Name(), err)
		}
		n, err := s.Publish(ctx, label, http.DetectContentType(body), body)
		if err != nil {
			return nil, fmt.Errorf("origin: publishing %s: %w", e.Name(), err)
		}
		out[label] = n
	}
	return out, nil
}

// LabelForFilename converts a file name into a valid idICN label:
// lowercase, with runs of unsupported characters collapsed to single
// hyphens and length clamped to the DNS label limit. It returns "" for
// names with no usable characters.
func LabelForFilename(name string) string {
	var b strings.Builder
	lastHyphen := true // suppress leading hyphen
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastHyphen = false
		default:
			if !lastHyphen {
				b.WriteByte('-')
				lastHyphen = true
			}
		}
	}
	label := strings.TrimRight(b.String(), "-")
	if len(label) > 63 {
		label = strings.TrimRight(label[:63], "-")
	}
	if !names.ValidLabel(label) {
		return ""
	}
	return label
}
