// Package client is the end-host side of idICN (paper §6.2): WPAD-style
// discovery of the Proxy Auto-Config file, a PAC evaluator sufficient for
// the PAC files idICN proxies serve, and a fetch-by-name API that routes
// idICN names through the discovered proxy and optionally re-verifies
// content locally ("the client or the proxy should authenticate the
// content; ... the former would require software changes" — this package is
// that software change).
package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"idicn/internal/idicn/metalink"
	"idicn/internal/idicn/names"
	"idicn/internal/idicn/resilience"
)

// NetworkConfig is what a host learns from its network at attach time. WPAD
// finds the PAC URL either from DHCP option 252 or by probing the
// wpad.<domain> convention; both are modelled as candidate URLs here.
type NetworkConfig struct {
	// DHCPPACURL is DHCP option 252 (may be empty).
	DHCPPACURL string
	// WPADCandidates are well-known PAC locations to probe in order
	// (http://wpad.<domain>/wpad.dat and friends).
	WPADCandidates []string
}

// ErrNoPAC is returned when no PAC file could be discovered.
var ErrNoPAC = errors.New("client: WPAD found no PAC file")

// DiscoverPAC fetches the first reachable PAC file, DHCP-supplied location
// first, then the WPAD candidates — the paper's step 1.
func DiscoverPAC(ctx context.Context, hc *http.Client, cfg NetworkConfig) (*PAC, error) {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	candidates := make([]string, 0, 1+len(cfg.WPADCandidates))
	if cfg.DHCPPACURL != "" {
		candidates = append(candidates, cfg.DHCPPACURL)
	}
	candidates = append(candidates, cfg.WPADCandidates...)
	var lastErr error = ErrNoPAC
	for _, u := range candidates {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := hc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		body, readErr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		_ = resp.Body.Close() // best-effort: the read result decides below
		if resp.StatusCode != http.StatusOK || readErr != nil {
			lastErr = fmt.Errorf("client: %s: status %s", u, resp.Status)
			continue
		}
		pac, err := ParsePAC(string(body))
		if err != nil {
			lastErr = err
			continue
		}
		return pac, nil
	}
	return nil, lastErr
}

// PAC is a parsed Proxy Auto-Config policy. Full PAC files are JavaScript;
// idICN proxies emit a single canonical shape (dnsDomainIs checks routing a
// domain suffix to one proxy, DIRECT otherwise), and this evaluator handles
// exactly that shape, which is all a pure-Go host needs.
type PAC struct {
	// Rules map domain suffixes (with leading dot) or exact hosts to proxy
	// addresses ("host:port").
	Rules []PACRule
}

// PACRule routes hosts matching Suffix (leading dot = suffix match,
// otherwise exact) to Proxy.
type PACRule struct {
	Suffix string
	Proxy  string
}

// ErrBadPAC is returned for PAC files outside the supported shape.
var ErrBadPAC = errors.New("client: unsupported PAC file")

// ParsePAC extracts the domain->proxy rules from an idICN-shaped PAC file.
func ParsePAC(src string) (*PAC, error) {
	if !strings.Contains(src, "FindProxyForURL") {
		return nil, fmt.Errorf("%w: no FindProxyForURL", ErrBadPAC)
	}
	pac := &PAC{}
	// Find every dnsDomainIs(host, ".suffix") / host == "name" condition and
	// the PROXY directive it guards.
	rest := src
	for {
		proxyIdx := strings.Index(rest, `return "PROXY `)
		if proxyIdx < 0 {
			break
		}
		head := rest[:proxyIdx]
		proxyPart := rest[proxyIdx+len(`return "PROXY `):]
		end := strings.IndexByte(proxyPart, '"')
		if end < 0 {
			return nil, fmt.Errorf("%w: unterminated PROXY directive", ErrBadPAC)
		}
		proxy := strings.TrimSuffix(strings.TrimSpace(proxyPart[:end]), ";")
		for _, suffix := range pacConditions(head) {
			pac.Rules = append(pac.Rules, PACRule{Suffix: suffix, Proxy: proxy})
		}
		rest = proxyPart[end:]
	}
	if len(pac.Rules) == 0 {
		return nil, fmt.Errorf("%w: no proxy rules found", ErrBadPAC)
	}
	return pac, nil
}

// pacConditions extracts domain conditions from the text preceding a PROXY
// return: dnsDomainIs(host, ".x") and host == "x".
func pacConditions(src string) []string {
	var out []string
	for i := 0; ; {
		j := strings.Index(src[i:], "dnsDomainIs(")
		if j < 0 {
			break
		}
		i += j + len("dnsDomainIs(")
		open := strings.IndexByte(src[i:], '"')
		if open < 0 {
			break
		}
		close1 := strings.IndexByte(src[i+open+1:], '"')
		if close1 < 0 {
			break
		}
		out = append(out, src[i+open+1:i+open+1+close1])
		i += open + 1 + close1
	}
	for i := 0; ; {
		j := strings.Index(src[i:], `host == "`)
		if j < 0 {
			break
		}
		i += j + len(`host == "`)
		end := strings.IndexByte(src[i:], '"')
		if end < 0 {
			break
		}
		out = append(out, src[i:i+end])
		i += end
	}
	return out
}

// ProxyFor returns the proxy address for a host, or "" for DIRECT.
func (p *PAC) ProxyFor(host string) string {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	for _, r := range p.Rules {
		if strings.HasPrefix(r.Suffix, ".") {
			if strings.HasSuffix(host, r.Suffix) {
				return r.Proxy
			}
			continue
		}
		if host == strings.ToLower(r.Suffix) {
			return r.Proxy
		}
	}
	return ""
}

// Client fetches idICN content the way a PAC-configured browser would:
// names route through the discovered proxy; VerifyLocally additionally
// re-checks the self-certification on the client ("the latter would put
// trust on proxies" — setting this removes even that trust).
type Client struct {
	PAC           *PAC
	HTTP          *http.Client
	VerifyLocally bool
	// Retry governs transient-failure handling: per-attempt timeouts and
	// capped exponential backoff with deterministic jitter. The zero value
	// means 3 attempts, 10ms base delay. Authoritative failures (404, PAC
	// routing errors, verification failures) are never retried.
	Retry resilience.Policy
}

// ErrNoProxy is returned when the PAC routes a name DIRECT (idICN names
// cannot be fetched without a proxy or resolver).
var ErrNoProxy = errors.New("client: PAC routes idICN name DIRECT")

// Fetch retrieves and (optionally locally) verifies the content for a name,
// retrying transient proxy failures under the Retry policy.
func (c *Client) Fetch(ctx context.Context, n names.Name) ([]byte, error) {
	var body []byte
	err := c.Retry.Do(ctx, func(ctx context.Context) error {
		var err error
		body, err = c.fetchOnce(ctx, n)
		return err
	})
	return body, err
}

func (c *Client) fetchOnce(ctx context.Context, n names.Name) ([]byte, error) {
	hc := c.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	host := n.DNS()
	proxyAddr := c.PAC.ProxyFor(host)
	if proxyAddr == "" {
		return nil, resilience.Permanent(fmt.Errorf("%w: %s", ErrNoProxy, host))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+proxyAddr+"/", nil)
	if err != nil {
		return nil, resilience.Permanent(err)
	}
	req.Host = host
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: fetching %s via %s: %w", n, proxyAddr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<28))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("client: %s: status %s: %s", n, resp.Status, strings.TrimSpace(string(body)))
		if resp.StatusCode == http.StatusNotFound {
			return nil, resilience.Permanent(err) // authoritative: no such name
		}
		return nil, err
	}
	if c.VerifyLocally {
		v, err := metalink.VerifyResponse(resp.Header, body)
		if err != nil {
			return nil, resilience.Permanent(fmt.Errorf("client: local verification of %s failed: %w", n, err))
		}
		if v.Name != n {
			return nil, resilience.Permanent(fmt.Errorf("client: proxy returned %s, requested %s", v.Name, n))
		}
	}
	return body, nil
}
