package client

import (
	"context"
	"crypto/ed25519"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"idicn/internal/idicn/names"
	"idicn/internal/idicn/origin"
	"idicn/internal/idicn/proxy"
	"idicn/internal/idicn/resilience"
	"idicn/internal/idicn/resolver"
)

const samplePAC = `function FindProxyForURL(url, host) {
  if (dnsDomainIs(host, ".idicn.org") || host == "idicn.org")
    return "PROXY 127.0.0.1:3128";
  return "DIRECT";
}
`

func TestParsePAC(t *testing.T) {
	pac, err := ParsePAC(samplePAC)
	if err != nil {
		t.Fatal(err)
	}
	if got := pac.ProxyFor("video.abc.idicn.org"); got != "127.0.0.1:3128" {
		t.Errorf("ProxyFor(name) = %q", got)
	}
	if got := pac.ProxyFor("idicn.org"); got != "127.0.0.1:3128" {
		t.Errorf("ProxyFor(apex) = %q", got)
	}
	if got := pac.ProxyFor("example.com"); got != "" {
		t.Errorf("ProxyFor(legacy) = %q, want DIRECT", got)
	}
	// Trailing dots and case are normalized.
	if got := pac.ProxyFor("X.IDICN.ORG."); got != "127.0.0.1:3128" {
		t.Errorf("ProxyFor(normalized) = %q", got)
	}
}

func TestParsePACRejectsGarbage(t *testing.T) {
	for name, src := range map[string]string{
		"empty":    "",
		"no-func":  "return \"PROXY x:1\";",
		"no-rules": "function FindProxyForURL(url, host) { return \"DIRECT\"; }",
		"unclosed": "function FindProxyForURL(u,h){ if (dnsDomainIs(h, \".x\")) return \"PROXY ",
	} {
		if _, err := ParsePAC(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDiscoverPAC(t *testing.T) {
	pacSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/wpad.dat" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(samplePAC))
	}))
	defer pacSrv.Close()
	dead := httptest.NewServer(nil)
	dead.Close()

	ctx := context.Background()
	// DHCP wins when present.
	pac, err := DiscoverPAC(ctx, pacSrv.Client(), NetworkConfig{DHCPPACURL: pacSrv.URL + "/wpad.dat"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pac.Rules) == 0 {
		t.Fatal("no rules")
	}
	// Falls back across dead candidates.
	pac2, err := DiscoverPAC(ctx, pacSrv.Client(), NetworkConfig{
		WPADCandidates: []string{dead.URL + "/wpad.dat", pacSrv.URL + "/missing", pacSrv.URL + "/wpad.dat"},
	})
	if err != nil {
		t.Fatalf("fallback discovery failed: %v", err)
	}
	if len(pac2.Rules) == 0 {
		t.Fatal("no rules from fallback")
	}
	// Nothing reachable.
	if _, err := DiscoverPAC(ctx, pacSrv.Client(), NetworkConfig{}); err == nil {
		t.Error("empty config succeeded")
	}
}

// full stack: resolver + origin + proxy, then a PAC-discovering client.
func TestClientEndToEnd(t *testing.T) {
	registry := resolver.NewRegistry()
	resSrv := httptest.NewServer(resolver.NewServer(registry))
	defer resSrv.Close()
	resClient := resolver.NewClient(resSrv.URL, resSrv.Client())

	seed := make([]byte, ed25519.SeedSize)
	seed[0] = 90
	pub, err := names.PrincipalFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	var org *origin.Server
	orgSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		org.ServeHTTP(w, r)
	}))
	defer orgSrv.Close()
	org = origin.New(pub, resClient, orgSrv.URL)

	px := proxy.New(resClient)
	pxSrv := httptest.NewServer(px)
	defer pxSrv.Close()

	ctx := context.Background()
	body := []byte("client-side verification works")
	n, err := org.Publish(ctx, "page", "text/plain", body)
	if err != nil {
		t.Fatal(err)
	}

	// WPAD against the real proxy's PAC endpoint.
	pac, err := DiscoverPAC(ctx, pxSrv.Client(), NetworkConfig{DHCPPACURL: pxSrv.URL + "/wpad.dat"})
	if err != nil {
		t.Fatal(err)
	}
	proxyAddr := strings.TrimPrefix(pxSrv.URL, "http://")
	if got := pac.ProxyFor(n.DNS()); got != proxyAddr {
		t.Fatalf("PAC routes %s to %q, want %q", n.DNS(), got, proxyAddr)
	}

	c := &Client{PAC: pac, HTTP: pxSrv.Client(), VerifyLocally: true}
	got, err := c.Fetch(ctx, n)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(body) {
		t.Fatalf("fetched %q", got)
	}

	// A name under a domain the PAC routes DIRECT is refused.
	other := &Client{PAC: &PAC{Rules: []PACRule{{Suffix: ".elsewhere.example", Proxy: "x:1"}}}}
	if _, err := other.Fetch(ctx, n); err == nil {
		t.Error("DIRECT-routed idICN name fetched")
	}
}

func TestClientLocalVerificationCatchesBadProxy(t *testing.T) {
	// A compromised proxy returns unauthenticated bytes; a locally-verifying
	// client must reject them.
	badProxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("lies"))
	}))
	defer badProxy.Close()

	seed := make([]byte, ed25519.SeedSize)
	seed[0] = 91
	pub, _ := names.PrincipalFromSeed(seed)
	n, _ := pub.Name("truth")
	addr := strings.TrimPrefix(badProxy.URL, "http://")
	c := &Client{
		PAC:           &PAC{Rules: []PACRule{{Suffix: "." + names.Domain, Proxy: addr}}},
		HTTP:          badProxy.Client(),
		VerifyLocally: true,
	}
	if _, err := c.Fetch(context.Background(), n); err == nil {
		t.Fatal("unauthenticated proxy response accepted")
	}
	// Without local verification the client (trusting the proxy) accepts.
	c.VerifyLocally = false
	got, err := c.Fetch(context.Background(), n)
	if err != nil || string(got) != "lies" {
		t.Fatalf("trusting client: %q %v", got, err)
	}
}

// testName builds a valid self-certifying name for a throwaway principal.
func testName(t *testing.T, label string) names.Name {
	t.Helper()
	seed := make([]byte, ed25519.SeedSize)
	seed[0] = 99
	p, err := names.PrincipalFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.Name(label)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFetchRetriesTransientFailures: a proxy that 503s twice before
// answering must not surface an error to the caller.
func TestFetchRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "proxy: resolver unavailable", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "finally")
	}))
	defer srv.Close()

	pac, err := ParsePAC(strings.ReplaceAll(samplePAC, "127.0.0.1:3128", strings.TrimPrefix(srv.URL, "http://")))
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{PAC: pac, Retry: resilience.Policy{
		MaxAttempts: 3,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}}
	// The name's P component is irrelevant here: the fake proxy answers for
	// anything and the client is not verifying locally.
	n := testName(t, "video")
	body, err := c.Fetch(context.Background(), n)
	if err != nil {
		t.Fatalf("Fetch with transient 503s: %v", err)
	}
	if string(body) != "finally" {
		t.Fatalf("body = %q", body)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("proxy saw %d requests, want 3", got)
	}
}

// TestFetchDoesNotRetryNotFound: 404 is authoritative and must fail fast.
func TestFetchDoesNotRetryNotFound(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.NotFound(w, r)
	}))
	defer srv.Close()
	pac, err := ParsePAC(strings.ReplaceAll(samplePAC, "127.0.0.1:3128", strings.TrimPrefix(srv.URL, "http://")))
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{PAC: pac, Retry: resilience.Policy{
		MaxAttempts: 5,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}}
	if _, err := c.Fetch(context.Background(), testName(t, "video")); err == nil {
		t.Fatal("Fetch of missing name succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("404 was retried: proxy saw %d requests, want 1", got)
	}
}
