package metalink

import (
	"crypto/ed25519"
	"net/http"
	"strings"
	"testing"
	"testing/quick"

	"idicn/internal/idicn/names"
)

func testSetup(t testing.TB) (*names.Principal, names.Name, []byte, []byte) {
	t.Helper()
	seed := make([]byte, ed25519.SeedSize)
	seed[0] = 0xaa
	p, err := names.PrincipalFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("hello, information-centric world")
	n, err := p.Name("greeting")
	if err != nil {
		t.Fatal(err)
	}
	sig := p.SignContent("greeting", content)
	return p, n, content, sig
}

func TestXMLRoundTrip(t *testing.T) {
	p, n, content, sig := testSetup(t)
	f := BuildFile(n, p.PublicKey(), content, sig, []string{"http://a.example/x", "http://b.example/x"})
	doc, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(doc), "<metalink>") {
		t.Fatalf("document missing root element:\n%s", doc)
	}
	back, err := Unmarshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Files) != 1 {
		t.Fatalf("got %d files", len(back.Files))
	}
	got := back.Files[0]
	if got.Name != f.Name || got.Size != f.Size {
		t.Errorf("file identity mismatch: %+v", got)
	}
	if len(got.Hashes) != 1 || got.Hashes[0] != f.Hashes[0] {
		t.Errorf("hashes mismatch: %+v", got.Hashes)
	}
	if got.Signature == nil || got.Signature.Value != f.Signature.Value {
		t.Errorf("signature mismatch")
	}
	if len(got.URLs) != 2 || got.URLs[0].Location != "http://a.example/x" || got.URLs[0].Priority != 1 {
		t.Errorf("urls mismatch: %+v", got.URLs)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not xml at all <<<")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestHeaderRoundTripAndVerify(t *testing.T) {
	p, n, content, sig := testSetup(t)
	f := BuildFile(n, p.PublicKey(), content, sig, []string{"http://mirror.example/m"})
	h := make(http.Header)
	SetHeaders(h, f)
	if h.Get(HeaderDigest) == "" || h.Get(HeaderSignature) == "" || h.Get(HeaderPublisher) == "" {
		t.Fatalf("headers incomplete: %v", h)
	}
	v, err := VerifyResponse(h, content)
	if err != nil {
		t.Fatalf("VerifyResponse: %v", err)
	}
	if v.Name != n {
		t.Errorf("verified name %v, want %v", v.Name, n)
	}
	if len(v.Mirrors) != 1 || v.Mirrors[0] != "http://mirror.example/m" {
		t.Errorf("mirrors = %v", v.Mirrors)
	}
}

func TestVerifyResponseRejectsTampering(t *testing.T) {
	p, n, content, sig := testSetup(t)
	f := BuildFile(n, p.PublicKey(), content, sig, nil)
	h := make(http.Header)
	SetHeaders(h, f)

	if _, err := VerifyResponse(h, append([]byte("x"), content...)); err == nil {
		t.Error("tampered body accepted")
	}

	// Strip metadata entirely.
	empty := make(http.Header)
	if _, err := VerifyResponse(empty, content); err != ErrMissingMetadata {
		t.Errorf("missing metadata: err = %v", err)
	}

	// Wrong signature algorithm label.
	h2 := make(http.Header)
	SetHeaders(h2, f)
	h2.Set(HeaderSignature, "rsa=AAAA")
	if _, err := VerifyResponse(h2, content); err == nil {
		t.Error("wrong signature algorithm accepted")
	}

	// Substituted publisher key (hash mismatch with P).
	other, err := names.NewPrincipal(nil)
	if err != nil {
		t.Fatal(err)
	}
	f3 := BuildFile(n, other.PublicKey(), content, sig, nil)
	h3 := make(http.Header)
	SetHeaders(h3, f3)
	if _, err := VerifyResponse(h3, content); err != names.ErrKeyMismatch {
		t.Errorf("substituted key: err = %v, want ErrKeyMismatch", err)
	}

	// Corrupt digest header.
	h4 := make(http.Header)
	SetHeaders(h4, f)
	h4.Set(HeaderDigest, "SHA-256=AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA=")
	if _, err := VerifyResponse(h4, content); err != ErrDigestMismatch {
		t.Errorf("bad digest: err = %v, want ErrDigestMismatch", err)
	}

	// Malformed base64 in publisher.
	h5 := make(http.Header)
	SetHeaders(h5, f)
	h5.Set(HeaderPublisher, "ed25519=!!!notbase64")
	if _, err := VerifyResponse(h5, content); err == nil {
		t.Error("malformed publisher accepted")
	}
}

func TestParseMirrors(t *testing.T) {
	h := make(http.Header)
	h.Add(HeaderLink, `<http://a.example/1>; rel=duplicate; pri=1`)
	h.Add(HeaderLink, `<http://b.example/2>; rel=duplicate; pri=2, <http://c.example/3>; rel=describedby`)
	got := ParseMirrors(h)
	if len(got) != 2 || got[0] != "http://a.example/1" || got[1] != "http://b.example/2" {
		t.Errorf("ParseMirrors = %v", got)
	}
	// Malformed entries are skipped, not fatal.
	h2 := make(http.Header)
	h2.Add(HeaderLink, `malformed rel=duplicate no brackets`)
	if got := ParseMirrors(h2); len(got) != 0 {
		t.Errorf("malformed link produced %v", got)
	}
}

// Property: for random content, the header round trip always verifies and
// any single-byte flip in the body always fails.
func TestVerifyQuick(t *testing.T) {
	p, _, _, _ := testSetup(t)
	f := func(content []byte, flip uint16) bool {
		n, err := p.Name("quick")
		if err != nil {
			return false
		}
		sig := p.SignContent("quick", content)
		h := make(http.Header)
		SetHeaders(h, BuildFile(n, p.PublicKey(), content, sig, nil))
		if _, err := VerifyResponse(h, content); err != nil {
			return false
		}
		if len(content) == 0 {
			return true
		}
		bad := append([]byte(nil), content...)
		bad[int(flip)%len(bad)] ^= 0x01
		_, err = VerifyResponse(h, bad)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
