// Package metalink implements the content-metadata layer of idICN (paper
// §6.1): a Metalink-style XML download description (after RFC 5854/6249)
// carrying cryptographic hashes, the publisher's signature and key, and
// mirror locations, plus the HTTP header embedding that lets
// Metalink-capable clients and proxies verify authenticity and discover
// mirrors while legacy clients simply ignore the extra headers.
package metalink

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/xml"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"idicn/internal/idicn/names"
)

// HTTP headers used to embed metadata in responses. Digest follows RFC
// 3230's instance-digest form; Link rel="duplicate" follows RFC 6249.
const (
	HeaderDigest    = "Digest"
	HeaderSignature = "X-Idicn-Signature"
	HeaderPublisher = "X-Idicn-Publisher"
	HeaderName      = "X-Idicn-Name"
	HeaderLink      = "Link"
)

// Description is a Metalink document: a set of described files.
type Description struct {
	XMLName xml.Name `xml:"metalink"`
	Files   []File   `xml:"file"`
}

// File describes one named content object.
type File struct {
	Name      string      `xml:"name,attr"`
	Size      int64       `xml:"size,omitempty"`
	Hashes    []Hash      `xml:"hash"`
	Signature *Signature  `xml:"signature,omitempty"`
	Publisher *Publisher  `xml:"publisher,omitempty"`
	URLs      []MirrorURL `xml:"url"`
}

// Hash is a content digest, hex encoded.
type Hash struct {
	Type  string `xml:"type,attr"`
	Value string `xml:",chardata"`
}

// Signature is the publisher's content signature, base64 encoded.
type Signature struct {
	Type  string `xml:"type,attr"`
	Value string `xml:",chardata"`
}

// Publisher carries the publisher's public key, base64 encoded, so clients
// can check it against the P component of the name.
type Publisher struct {
	KeyType string `xml:"keytype,attr"`
	Key     string `xml:",chardata"`
}

// MirrorURL is a location the content can be fetched from.
type MirrorURL struct {
	Priority int    `xml:"priority,attr,omitempty"`
	Location string `xml:",chardata"`
}

// BuildFile assembles the metadata for signed content published under a
// name: SHA-256 digest, Ed25519 signature, the publisher key, and mirrors.
func BuildFile(n names.Name, pub ed25519.PublicKey, content, sig []byte, mirrors []string) File {
	digest := sha256.Sum256(content)
	urls := make([]MirrorURL, 0, len(mirrors))
	for i, m := range mirrors {
		urls = append(urls, MirrorURL{Priority: i + 1, Location: m})
	}
	return File{
		Name: n.String(),
		Size: int64(len(content)),
		Hashes: []Hash{
			{Type: "sha-256", Value: hex.EncodeToString(digest[:])},
		},
		Signature: &Signature{Type: "ed25519", Value: base64.StdEncoding.EncodeToString(sig)},
		Publisher: &Publisher{KeyType: "ed25519", Key: base64.StdEncoding.EncodeToString(pub)},
		URLs:      urls,
	}
}

// Marshal renders a Metalink document for the given files.
func Marshal(files ...File) ([]byte, error) {
	out, err := xml.MarshalIndent(Description{Files: files}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("metalink: marshal: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// Unmarshal parses a Metalink document.
func Unmarshal(data []byte) (Description, error) {
	var d Description
	if err := xml.Unmarshal(data, &d); err != nil {
		return Description{}, fmt.Errorf("metalink: unmarshal: %w", err)
	}
	return d, nil
}

// SetHeaders embeds a file's metadata into HTTP response headers: the
// instance digest, signature, publisher key, name, and one Link
// rel="duplicate" per mirror.
func SetHeaders(h http.Header, f File) {
	for _, hash := range f.Hashes {
		if hash.Type == "sha-256" {
			if raw, err := hex.DecodeString(hash.Value); err == nil {
				h.Set(HeaderDigest, "SHA-256="+base64.StdEncoding.EncodeToString(raw))
			}
		}
	}
	if f.Signature != nil {
		h.Set(HeaderSignature, f.Signature.Type+"="+f.Signature.Value)
	}
	if f.Publisher != nil {
		h.Set(HeaderPublisher, f.Publisher.KeyType+"="+f.Publisher.Key)
	}
	if f.Name != "" {
		h.Set(HeaderName, f.Name)
	}
	h.Del(HeaderLink)
	for _, u := range f.URLs {
		h.Add(HeaderLink, fmt.Sprintf("<%s>; rel=duplicate; pri=%d", u.Location, u.Priority))
	}
}

// Verified is the result of parsing and checking response metadata.
type Verified struct {
	Name      names.Name
	PublicKey ed25519.PublicKey
	Signature []byte
	Mirrors   []string
}

// Errors from header verification.
var (
	ErrMissingMetadata = errors.New("metalink: response carries no idICN metadata")
	ErrDigestMismatch  = errors.New("metalink: content digest mismatch")
)

// VerifyResponse parses idICN metadata from response headers and runs the
// full self-certification check against the body: digest, key-to-name
// binding, and content signature. It returns the parsed identity on
// success.
func VerifyResponse(h http.Header, body []byte) (Verified, error) {
	nameHdr := h.Get(HeaderName)
	sigHdr := h.Get(HeaderSignature)
	pubHdr := h.Get(HeaderPublisher)
	if nameHdr == "" || sigHdr == "" || pubHdr == "" {
		return Verified{}, ErrMissingMetadata
	}
	n, err := names.Parse(nameHdr)
	if err != nil {
		return Verified{}, fmt.Errorf("metalink: bad name header: %w", err)
	}
	sig, err := decodeTyped(sigHdr, "ed25519")
	if err != nil {
		return Verified{}, fmt.Errorf("metalink: bad signature header: %w", err)
	}
	pubRaw, err := decodeTyped(pubHdr, "ed25519")
	if err != nil {
		return Verified{}, fmt.Errorf("metalink: bad publisher header: %w", err)
	}
	if len(pubRaw) != ed25519.PublicKeySize {
		return Verified{}, fmt.Errorf("metalink: publisher key has %d bytes", len(pubRaw))
	}
	if d := h.Get(HeaderDigest); d != "" {
		want, err := decodeTyped(d, "SHA-256")
		if err != nil {
			return Verified{}, fmt.Errorf("metalink: bad digest header: %w", err)
		}
		got := sha256.Sum256(body)
		if len(want) != len(got) || !equalBytes(want, got[:]) {
			return Verified{}, ErrDigestMismatch
		}
	}
	pub := ed25519.PublicKey(pubRaw)
	if err := names.VerifyContent(n, pub, body, sig); err != nil {
		return Verified{}, err
	}
	return Verified{
		Name:      n,
		PublicKey: pub,
		Signature: sig,
		Mirrors:   ParseMirrors(h),
	}, nil
}

// ParseMirrors extracts rel=duplicate targets from Link headers, in header
// order.
func ParseMirrors(h http.Header) []string {
	var out []string
	for _, link := range h.Values(HeaderLink) {
		for _, part := range strings.Split(link, ",") {
			part = strings.TrimSpace(part)
			if !strings.Contains(part, "rel=duplicate") {
				continue
			}
			open := strings.IndexByte(part, '<')
			close := strings.IndexByte(part, '>')
			if open < 0 || close <= open+1 {
				continue
			}
			out = append(out, part[open+1:close])
		}
	}
	return out
}

func decodeTyped(v, wantType string) ([]byte, error) {
	i := strings.IndexByte(v, '=')
	if i < 0 {
		return nil, fmt.Errorf("no algorithm prefix in %q", v)
	}
	if !strings.EqualFold(v[:i], wantType) {
		return nil, fmt.Errorf("algorithm %q, want %q", v[:i], wantType)
	}
	raw, err := base64.StdEncoding.DecodeString(v[i+1:])
	if err != nil {
		return nil, err
	}
	return raw, nil
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}
