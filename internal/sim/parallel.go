package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job pairs one simulation configuration with its request stream. Jobs are
// independent: each gets a fresh Engine, and shared inputs (Network,
// Origins, Sizes, Deployed, the request slice) are only read.
type Job struct {
	Config Config
	Reqs   []Request
}

// defaultWorkers overrides the worker count used when RunConfigs is called
// with workers <= 0; zero or negative means "use GOMAXPROCS".
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the pool size used by RunConfigs (and everything
// built on it: CompareDesigns, the experiment sweeps) when no explicit count
// is given. n <= 0 restores the default, runtime.GOMAXPROCS(0). It is safe
// for concurrent use; cmd/icnsim wires its -workers flag here.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers returns the effective worker count for RunConfigs calls
// with workers <= 0.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// RunConfigs executes every job on a bounded worker pool and returns one
// Result per job, in job order. workers <= 0 uses DefaultWorkers(). Results
// are deterministic and independent of the worker count: each job runs in
// its own Engine, and a run's outcome depends only on (Config, Reqs), never
// on scheduling. On failure the error of the lowest-indexed failing job is
// returned (so error reporting is deterministic too).
func RunConfigs(workers int, jobs []Job) ([]Result, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	if workers <= 1 {
		// Sequential fast path: no goroutine or channel overhead for
		// single-job batches or -workers=1.
		for i := range jobs {
			results[i], errs[i] = RunConfig(jobs[i].Config, jobs[i].Reqs)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					results[i], errs[i] = RunConfig(jobs[i].Config, jobs[i].Reqs)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: job %d: %w", i, err)
		}
	}
	return results, nil
}
