package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job pairs one simulation configuration with its request stream. Jobs are
// independent: each gets a fresh Engine, and shared inputs (Network,
// Origins, Sizes, Deployed, the request slice) are only read.
type Job struct {
	Config Config
	Reqs   []Request
}

// Options configures the batched simulation entry points (Run, CompareSets,
// Compare). The zero value is ready to use: DefaultWorkers() workers and no
// observer. There is no package-level mutable state behind it — callers that
// want a non-default worker count say so here (cmd/icnsim resolves its
// -workers flag into this field).
type Options struct {
	// Workers bounds the worker pool; <= 0 means DefaultWorkers().
	Workers int
	// Observer, when non-nil, is attached to every job whose Config does
	// not already carry its own. Because jobs run concurrently, it must be
	// safe for concurrent use (MetricsObserver is).
	Observer Observer
}

// DefaultWorkers returns the worker count used when Options.Workers (or a
// deprecated positional workers argument) is <= 0: runtime.GOMAXPROCS(0).
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// runJob executes one job in a fresh Engine, attaching observer if the job's
// own Config did not set one.
func runJob(j Job, observer Observer) (Result, error) {
	cfg := j.Config
	if observer != nil && cfg.Observer == nil {
		cfg.Observer = observer
	}
	e, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run(j.Reqs), nil
}

// Run executes every job on a bounded worker pool and returns one Result per
// job, in job order. Results are deterministic and independent of the worker
// count: each job runs in its own Engine, and a run's outcome depends only
// on (Config, Reqs), never on scheduling. On failure the error of the
// lowest-indexed failing job is returned (so error reporting is
// deterministic too).
func Run(jobs []Job, opt Options) ([]Result, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	if workers <= 1 {
		// Sequential fast path: no goroutine or channel overhead for
		// single-job batches or Workers: 1.
		for i := range jobs {
			results[i], errs[i] = runJob(jobs[i], opt.Observer)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					results[i], errs[i] = runJob(jobs[i], opt.Observer)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: job %d: %w", i, err)
		}
	}
	return results, nil
}
