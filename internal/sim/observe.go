package sim

import (
	"sync"
	"sync/atomic"

	"idicn/internal/obs"
)

// ServeLevel classifies where a request was ultimately served, mirroring the
// ServeStats breakdown (paper §4.1's hit-location accounting).
type ServeLevel int

const (
	// ServeLeaf: the arrival leaf's own cache.
	ServeLeaf ServeLevel = iota
	// ServeSibling: a nearby cache found by the scoped cooperative lookup.
	ServeSibling
	// ServeTree: another cache within an access tree.
	ServeTree
	// ServeCore: a backbone (PoP root) cache of another PoP.
	ServeCore
	// ServeOrigin: the origin server (a miss at every cache level).
	ServeOrigin

	numServeLevels
)

// String returns the level's metric-friendly name.
func (l ServeLevel) String() string {
	switch l {
	case ServeLeaf:
		return "leaf"
	case ServeSibling:
		return "sibling"
	case ServeTree:
		return "tree"
	case ServeCore:
		return "core"
	case ServeOrigin:
		return "origin"
	}
	return "unknown"
}

// ServeEvent describes one completed request: where it was served, how deep
// the serving cache sat, how much looking around it took, and what it cost.
type ServeEvent struct {
	PoP    int32 // arrival PoP
	Object int32
	Level  ServeLevel
	// Depth is the tree depth of the serving cache (Network.Depth = leaves,
	// 0 = PoP roots); -1 for origin serves.
	Depth int
	// LookupHops counts the extra location work the serve needed: the
	// cooperative-lookup detour length for ServeSibling, or the replica
	// distance for nearest-replica serves that missed the arrival leaf.
	LookupHops int
	Latency    float64
}

// EvictEvent describes one cache eviction: which PoP and tree depth lost an
// object.
type EvictEvent struct {
	PoP    int32
	Depth  int
	Object int32
}

// Observer receives per-request and per-eviction events from an Engine.
// Callbacks run synchronously on the simulation goroutine and must not
// allocate if the run's zero-alloc guarantees matter to the caller; an
// observer shared across parallel runs must be safe for concurrent use.
// MetricsObserver satisfies both.
type Observer interface {
	ObserveServe(ServeEvent)
	ObserveEvict(EvictEvent)
}

// MetricsObserver aggregates engine events into obs counters and histograms:
// serves per cache level, evictions, replica-lookup hops, and latency both
// overall and per arrival PoP. All recording paths are atomic and
// allocation-free once the per-PoP table covers the topology (size it with
// NewMetricsObserver's pops argument), so it can ride the engine hot path
// and be shared across parallel runs.
type MetricsObserver struct {
	served     [numServeLevels]obs.Counter
	evictions  obs.Counter
	latency    *obs.Histogram
	lookupHops *obs.Histogram

	mu sync.Mutex // serializes growth of the per-PoP table
	//icn:guardedby mu writes
	pop atomic.Pointer[[]*obs.Histogram] // latency histograms by arrival PoP; lock-free reads
}

// latencyBounds covers the simulator's unit-cost latencies: 0..31 hops plus
// an overflow bucket for deep-multiplier configurations.
func latencyBounds() []float64 { return obs.LinearBuckets(0, 1, 32) }

// NewMetricsObserver returns an observer with per-PoP latency histograms
// preallocated for pops arrival PoPs (pass Config.Network.PoPs(); the table
// grows on demand if a run sees more).
func NewMetricsObserver(pops int) *MetricsObserver {
	m := &MetricsObserver{
		latency:    obs.NewHistogram(latencyBounds()),
		lookupHops: obs.NewHistogram(obs.LinearBuckets(0, 1, 16)),
	}
	hists := make([]*obs.Histogram, pops)
	for i := range hists {
		hists[i] = obs.NewHistogram(latencyBounds())
	}
	m.pop.Store(&hists)
	return m
}

// ObserveServe implements Observer.
func (m *MetricsObserver) ObserveServe(ev ServeEvent) {
	m.served[ev.Level].Inc()
	m.latency.Observe(ev.Latency)
	if ev.LookupHops > 0 {
		m.lookupHops.Observe(float64(ev.LookupHops))
	}
	m.popHist(ev.PoP).Observe(ev.Latency)
}

// ObserveEvict implements Observer.
func (m *MetricsObserver) ObserveEvict(EvictEvent) { m.evictions.Inc() }

// popHist returns the latency histogram for pop, growing the table if the
// constructor's size hint was too small. The steady-state path is one atomic
// load and an index.
func (m *MetricsObserver) popHist(pop int32) *obs.Histogram {
	if hists := *m.pop.Load(); int(pop) < len(hists) {
		return hists[pop]
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	hists := *m.pop.Load()
	for int(pop) >= len(hists) {
		hists = append(hists, obs.NewHistogram(latencyBounds()))
	}
	m.pop.Store(&hists)
	return hists[pop]
}

// Served returns the number of requests served at level.
func (m *MetricsObserver) Served(level ServeLevel) int64 { return m.served[level].Value() }

// Evictions returns the number of cache evictions observed.
func (m *MetricsObserver) Evictions() int64 { return m.evictions.Value() }

// Latency returns the overall request-latency histogram.
func (m *MetricsObserver) Latency() *obs.Histogram { return m.latency }

// LookupHops returns the histogram of replica-lookup / cooperative-detour
// hop counts (serves that needed no lookup are not recorded here).
func (m *MetricsObserver) LookupHops() *obs.Histogram { return m.lookupHops }

// PoPLatency returns the latency histogram for requests arriving at pop, or
// nil if the observer never saw that PoP.
func (m *MetricsObserver) PoPLatency(pop int) *obs.Histogram {
	hists := *m.pop.Load()
	if pop < 0 || pop >= len(hists) {
		return nil
	}
	return hists[pop]
}

// MetricsSnapshot is a point-in-time, JSON-marshalable copy of a
// MetricsObserver — the payload behind `icnsim -metrics-json`.
type MetricsSnapshot struct {
	Served     map[string]int64 `json:"served"`
	Evictions  int64            `json:"evictions"`
	Latency    obs.Snapshot     `json:"latency"`
	LookupHops obs.Snapshot     `json:"lookup_hops"`
	PoPLatency []obs.Snapshot   `json:"pop_latency"`
}

// Snapshot captures the observer's current state.
func (m *MetricsObserver) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Served:     make(map[string]int64, numServeLevels),
		Evictions:  m.evictions.Value(),
		Latency:    m.latency.Snapshot(),
		LookupHops: m.lookupHops.Snapshot(),
	}
	for l := ServeLevel(0); l < numServeLevels; l++ {
		s.Served[l.String()] = m.served[l].Value()
	}
	hists := *m.pop.Load()
	s.PoPLatency = make([]obs.Snapshot, len(hists))
	for i, h := range hists {
		s.PoPLatency[i] = h.Snapshot()
	}
	return s
}
