package sim

import (
	"slices"

	"idicn/internal/topo"
)

// replicaIndex tracks which routers currently cache each object, supporting
// the idealized zero-cost nearest-replica lookup of ICN-NR. Cache inserts
// and evictions keep it exact via the caches' eviction hooks.
//
// Each object's replica set is a sorted []topo.NodeID rather than a map:
// membership updates are O(log n) binary search plus a memmove, and the
// nearest scan is a cache-friendly linear pass. Slices retain their capacity
// across removals, so steady-state churn (insert on delivery, remove on
// eviction) performs no heap allocation once a set has reached its
// high-water size.
type replicaIndex struct {
	perObj [][]topo.NodeID // sorted ascending per object
}

func newReplicaIndex(objects int) *replicaIndex {
	return &replicaIndex{perObj: make([][]topo.NodeID, objects)}
}

//icn:noalloc
func (ri *replicaIndex) add(obj int32, node topo.NodeID) {
	s := ri.perObj[obj]
	i, found := slices.BinarySearch(s, node)
	if found {
		return
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = node
	ri.perObj[obj] = s
}

//icn:noalloc
func (ri *replicaIndex) remove(obj int32, node topo.NodeID) {
	s := ri.perObj[obj]
	i, found := slices.BinarySearch(s, node)
	if !found {
		return
	}
	copy(s[i:], s[i+1:])
	ri.perObj[obj] = s[:len(s)-1]
}

func (ri *replicaIndex) count(obj int32) int { return len(ri.perObj[obj]) }

// nearest returns the replica of obj closest to the given leaf, with
// deterministic tie-breaking on NodeID, among replicas accepted by ok (used
// to skip capacity-overloaded caches). found is false when no replica is
// admissible. Distance decomposes structurally: same-tree replicas use the
// LCA tree distance; cross-tree replicas cost
// leafDepth + coreDist + replicaDepth.
//
//icn:noalloc
func (ri *replicaIndex) nearest(net *topo.Network, pop int, leafLocal int32, obj int32,
	ok func(topo.NodeID) bool) (best topo.NodeID, dist int, found bool) {
	s := ri.perObj[obj]
	if len(s) == 0 {
		return 0, 0, false
	}
	leafDepth := net.DepthOf(leafLocal)
	bestDist := int(^uint(0) >> 1)
	var bestNode topo.NodeID
	// Ascending NodeID order makes strict < the same tie-break as the old
	// "d == bestDist && node < bestNode" rule.
	for _, node := range s {
		if ok != nil && !ok(node) {
			continue
		}
		q, local := net.Split(node)
		var d int
		if q == pop {
			d = net.SameTreeDist(leafLocal, local)
		} else {
			d = leafDepth + net.CoreDist(pop, q) + net.DepthOf(local)
		}
		if d < bestDist {
			bestDist, bestNode, found = d, node, true
		}
	}
	return bestNode, bestDist, found
}
