package sim

import "idicn/internal/topo"

// replicaIndex tracks which routers currently cache each object, supporting
// the idealized zero-cost nearest-replica lookup of ICN-NR. Cache inserts
// and evictions keep it exact via the caches' eviction hooks.
type replicaIndex struct {
	perObj []map[topo.NodeID]struct{}
}

func newReplicaIndex(objects int) *replicaIndex {
	return &replicaIndex{perObj: make([]map[topo.NodeID]struct{}, objects)}
}

func (ri *replicaIndex) add(obj int32, node topo.NodeID) {
	m := ri.perObj[obj]
	if m == nil {
		m = make(map[topo.NodeID]struct{}, 4)
		ri.perObj[obj] = m
	}
	m[node] = struct{}{}
}

func (ri *replicaIndex) remove(obj int32, node topo.NodeID) {
	if m := ri.perObj[obj]; m != nil {
		delete(m, node)
	}
}

func (ri *replicaIndex) count(obj int32) int { return len(ri.perObj[obj]) }

// nearest returns the replica of obj closest to the given leaf, with
// deterministic tie-breaking on NodeID, among replicas accepted by ok (used
// to skip capacity-overloaded caches). found is false when no replica is
// admissible. Distance decomposes structurally: same-tree replicas use the
// LCA tree distance; cross-tree replicas cost
// leafDepth + coreDist + replicaDepth.
func (ri *replicaIndex) nearest(net *topo.Network, pop int, leafLocal int32, obj int32,
	ok func(topo.NodeID) bool) (best topo.NodeID, dist int, found bool) {
	m := ri.perObj[obj]
	if len(m) == 0 {
		return 0, 0, false
	}
	leafDepth := net.DepthOf(leafLocal)
	bestDist := int(^uint(0) >> 1)
	var bestNode topo.NodeID
	for node := range m {
		if ok != nil && !ok(node) {
			continue
		}
		q, local := net.Split(node)
		var d int
		if q == pop {
			d = net.SameTreeDist(leafLocal, local)
		} else {
			d = leafDepth + net.CoreDist(pop, q) + net.DepthOf(local)
		}
		if d < bestDist || (d == bestDist && node < bestNode) {
			bestDist, bestNode, found = d, node, true
		}
	}
	return bestNode, bestDist, found
}
