package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"idicn/internal/topo"
	"idicn/internal/trace"
)

// sweepWorkload builds a moderately sized workload whose runs exercise all
// engine paths (coop lookups, NR replica scans, evictions).
func sweepWorkload(t testing.TB) (Config, []Request) {
	t.Helper()
	net := topo.NewNetwork(topo.Abilene(), 2, 3)
	const objects = 800
	weights := net.Topo.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, true, 11)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests: 20000, Objects: objects, Alpha: 1.04,
		PoPWeights: weights, Leaves: net.LeavesPerTree(), Seed: 13,
	})
	cfg := Config{
		Network: net, Objects: objects, Origins: origins,
		BudgetFraction: 0.05, BudgetPolicy: BudgetProportional,
	}
	return cfg, reqs
}

func TestRunMatchesSequential(t *testing.T) {
	cfg, reqs := sweepWorkload(t)
	jobs := make([]Job, 0, 10)
	for _, d := range BaselineDesigns() {
		jobs = append(jobs, Job{Config: d.Apply(cfg), Reqs: reqs})
	}
	jobs = append(jobs, Job{Config: BaselineConfig(cfg), Reqs: reqs})

	want := make([]Result, len(jobs))
	for i, j := range jobs {
		res, err := RunConfig(j.Config, j.Reqs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got, err := Run(jobs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from sequential runs", workers)
		}
	}
}

func TestRunDefaultWorkers(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers = %d, want >= 1", DefaultWorkers())
	}
	// Zero-value Options resolve to the default pool and still run jobs.
	cfg := tinyConfig()
	res, err := Run([]Job{{Config: cfg, Reqs: []Request{req(0, 0, 0)}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Requests != 1 {
		t.Fatalf("unexpected results %+v", res)
	}
}

// TestRunAttachesObserver pins the Options.Observer contract: the observer
// is attached to every job without its own, sees exactly one serve event per
// request across the whole batch, and never overrides a per-job observer.
func TestRunAttachesObserver(t *testing.T) {
	cfg := tinyConfig()
	reqs := []Request{req(0, 0, 0), req(0, 1, 0), req(1, 0, 1)}
	shared := NewMetricsObserver(cfg.Network.PoPs())
	own := NewMetricsObserver(cfg.Network.PoPs())
	withOwn := cfg
	withOwn.Observer = own
	_, err := Run([]Job{
		{Config: cfg, Reqs: reqs},
		{Config: cfg, Reqs: reqs},
		{Config: withOwn, Reqs: reqs},
	}, Options{Workers: 2, Observer: shared})
	if err != nil {
		t.Fatal(err)
	}
	total := func(m *MetricsObserver) int64 {
		var n int64
		for l := ServeLevel(0); l < numServeLevels; l++ {
			n += m.Served(l)
		}
		return n
	}
	if got := total(shared); got != int64(2*len(reqs)) {
		t.Fatalf("shared observer saw %d serves, want %d", got, 2*len(reqs))
	}
	if got := total(own); got != int64(len(reqs)) {
		t.Fatalf("per-job observer saw %d serves, want %d", got, len(reqs))
	}
}

func TestRunEmpty(t *testing.T) {
	res, err := Run(nil, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("got %d results for no jobs", len(res))
	}
}

func TestRunErrorIsDeterministic(t *testing.T) {
	good := tinyConfig()
	bad1 := good
	bad1.Objects = -1 // invalid
	bad2 := good
	bad2.Network = nil // also invalid, higher index
	jobs := []Job{
		{Config: good, Reqs: []Request{req(0, 0, 0)}},
		{Config: bad1, Reqs: nil},
		{Config: bad2, Reqs: nil},
	}
	for _, workers := range []int{1, 4} {
		_, err := Run(jobs, Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		// Always the lowest-indexed failure, regardless of scheduling.
		if !strings.Contains(err.Error(), "job 1") {
			t.Fatalf("workers=%d: error %q, want job 1's", workers, err)
		}
	}
}

func TestCompareSetsMatchesCompare(t *testing.T) {
	cfg, reqs := sweepWorkload(t)
	designs := BaselineDesigns()

	single, err := Compare(cfg, designs, reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two identical sets in one batch, compared at several worker counts.
	for _, workers := range []int{1, 4} {
		batch, err := CompareSets([]DesignSet{
			{Base: cfg, Designs: designs, Reqs: reqs},
			{Base: cfg, Designs: designs, Reqs: reqs},
		}, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range batch {
			if !reflect.DeepEqual(batch[i], single) {
				t.Fatalf("workers=%d: set %d differs from Compare", workers, i)
			}
		}
	}
}

func TestRunTwicePanics(t *testing.T) {
	e, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	e.Run([]Request{req(0, 0, 0)})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Run did not panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "Run called twice") {
			t.Fatalf("panic message %q lacks explanation", msg)
		}
	}()
	e.Run([]Request{req(0, 0, 0)})
}

// TestBaselineProvisionsNoCaches pins the interaction between Baseline and
// config defaulting: BaselineConfig zeroes EdgeBudgetMultiplier, New
// re-defaults 0 -> 1, and the zero BudgetFraction must still produce zero
// usable caches — not thousands of zero-capacity stores.
func TestBaselineProvisionsNoCaches(t *testing.T) {
	cfg, reqs := sweepWorkload(t)
	bc := BaselineConfig(ICNSP.Apply(cfg))
	if bc.EdgeBudgetMultiplier != 0 {
		t.Fatalf("BaselineConfig kept EdgeBudgetMultiplier %v", bc.EdgeBudgetMultiplier)
	}
	e, err := New(bc)
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.EdgeBudgetMultiplier != 1 {
		t.Fatalf("New defaulted EdgeBudgetMultiplier to %v, want 1", e.cfg.EdgeBudgetMultiplier)
	}
	if n := e.CacheCount(); n != 0 {
		t.Fatalf("baseline provisioned %d caches, want 0", n)
	}
	res := e.Run(reqs)
	if res.TotalOrigin != res.Requests || res.Stats.Origin != res.Requests {
		t.Fatalf("baseline served %d/%d from origin, want all %d",
			res.TotalOrigin, res.Stats.Origin, res.Requests)
	}
	// A real budget still provisions caches on the same workload.
	e2, err := New(ICNSP.Apply(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if e2.CacheCount() == 0 {
		t.Fatal("budgeted config provisioned no caches")
	}
}
