package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"idicn/internal/cache"
	"idicn/internal/topo"
	"idicn/internal/trace"
)

// linePoPs builds a line topology 0-1-...-(n-1) with equal populations, so
// proportional and uniform budgeting coincide.
func linePoPs(n int) *topo.Topology {
	g := topo.NewGraph(n)
	names := make([]string, n)
	pops := make([]float64, n)
	for i := 0; i < n; i++ {
		names[i] = "p"
		pops[i] = 1
		if i > 0 {
			if err := g.AddEdge(i-1, i); err != nil {
				panic(err)
			}
		}
	}
	return &topo.Topology{Name: "line", Graph: g, PoPNames: names, Population: pops}
}

// tinyConfig: 2 PoPs, arity 2, depth 1 (root + 2 leaves per tree), 10
// objects all owned by PoP 1, generous caches.
func tinyConfig() Config {
	net := topo.NewNetwork(linePoPs(2), 2, 1)
	origins := make([]int32, 10)
	for i := range origins {
		origins[i] = 1
	}
	return Config{
		Network:        net,
		Objects:        10,
		Origins:        origins,
		BudgetFraction: 0.5, // 5 entries per cache
		BudgetPolicy:   BudgetUniform,
	}
}

func req(pop, leaf, obj int32) Request { return Request{PoP: pop, Leaf: leaf, Object: obj} }

func checkStats(t *testing.T, res Result) {
	t.Helper()
	sum := res.Stats.Leaf + res.Stats.Sibling + res.Stats.Tree + res.Stats.Core + res.Stats.Origin
	if sum != res.Requests {
		t.Fatalf("serve stats %+v sum to %d, want %d requests", res.Stats, sum, res.Requests)
	}
}

func TestBaselineNoCache(t *testing.T) {
	cfg := tinyConfig()
	// One request from PoP 0's first leaf for object 0 (origin PoP 1):
	// leaf -> root (1 hop) -> core (1 hop) = distance 2.
	res, err := Baseline(cfg, []Request{req(0, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatency != 2 {
		t.Errorf("MeanLatency = %v, want 2", res.MeanLatency)
	}
	if res.MaxLinkLoad != 1 {
		t.Errorf("MaxLinkLoad = %d, want 1", res.MaxLinkLoad)
	}
	if res.MaxOriginLoad != 1 || res.TotalOrigin != 1 {
		t.Errorf("origin loads = %d/%d, want 1/1", res.MaxOriginLoad, res.TotalOrigin)
	}
	if res.Transfers != 2 {
		t.Errorf("Transfers = %d, want 2", res.Transfers)
	}
	checkStats(t, res)
}

func TestEdgeCachesAtLeafOnly(t *testing.T) {
	cfg := EDGE.Apply(tinyConfig())
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Repeat the same request: first misses (served at origin, distance 2),
	// second hits the leaf cache (distance 0).
	res := e.Run([]Request{req(0, 0, 0), req(0, 0, 0)})
	if res.MeanLatency != 1 { // (2 + 0) / 2
		t.Errorf("MeanLatency = %v, want 1", res.MeanLatency)
	}
	if res.Stats.Leaf != 1 || res.Stats.Origin != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
	// A request from the sibling leaf must NOT see the cached copy in EDGE.
	// (Run is once-per-Engine, so feed the extra request directly.)
	e.serveRequest(req(0, 1, 0))
	if e.stats.Origin != 2 {
		t.Errorf("sibling leaf should miss in plain EDGE; origin served %d, want 2", e.stats.Origin)
	}
}

func TestEdgePlacementHasNoInteriorCaches(t *testing.T) {
	cfg := EDGE.Apply(tinyConfig())
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := cfg.Network
	for pop := 0; pop < net.PoPs(); pop++ {
		if e.caches[net.Node(pop, 0)] != nil {
			t.Fatalf("PoP %d root has a cache under EDGE placement", pop)
		}
		for l := net.LeafStart(); l < int32(net.TreeSize()); l++ {
			if e.caches[net.Node(pop, l)] == nil {
				t.Fatalf("leaf %d of PoP %d lacks a cache under EDGE", l, pop)
			}
		}
	}
}

func TestICNSPCachesOnResponsePath(t *testing.T) {
	cfg := ICNSP.Apply(tinyConfig())
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First request seeds caches at PoP0's root and leaf 0 (response path
	// origin -> root0 -> leaf0). Second request from leaf 1 must then hit at
	// the shared root: distance 1.
	res := e.Run([]Request{req(0, 0, 0), req(0, 1, 0)})
	if res.Stats.Tree != 1 || res.Stats.Origin != 1 {
		t.Errorf("stats = %+v, want one tree hit and one origin serve", res.Stats)
	}
	wantMean := (2.0 + 1.0) / 2
	if res.MeanLatency != wantMean {
		t.Errorf("MeanLatency = %v, want %v", res.MeanLatency, wantMean)
	}
	checkStats(t, res)
}

func TestICNSPIntermediatePoPCacheHit(t *testing.T) {
	// Three PoPs in a line; origin at PoP 2; requester at PoP 0. After the
	// first request, PoP 1's root holds the object; a second request from a
	// PoP 1 leaf hits its own root (tree hit), and a third from PoP 0's
	// other leaf hits PoP 0's root.
	net := topo.NewNetwork(linePoPs(3), 2, 1)
	origins := []int32{2}
	cfg := ICNSP.Apply(Config{
		Network: net, Objects: 1, Origins: origins,
		BudgetFraction: 1, BudgetPolicy: BudgetUniform,
	})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run([]Request{req(0, 0, 0), req(1, 0, 0), req(0, 1, 0)})
	if res.Stats.Origin != 1 || res.Stats.Tree != 2 {
		t.Errorf("stats = %+v, want 1 origin + 2 tree", res.Stats)
	}
	// Latencies: 1+2 core hops = 3; then 1; then 1.
	if got, want := res.MeanLatency, (3.0+1+1)/3; got != want {
		t.Errorf("MeanLatency = %v, want %v", got, want)
	}
	checkStats(t, res)
}

func TestEdgeCoopSiblingServe(t *testing.T) {
	cfg := EDGECoop.Apply(tinyConfig())
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed leaf 0 via a normal miss, then request from leaf 1: the sibling
	// lookup should serve it at cost 2 (up to parent, down to sibling).
	res := e.Run([]Request{req(0, 0, 0), req(0, 1, 0)})
	if res.Stats.Sibling != 1 {
		t.Fatalf("stats = %+v, want one sibling serve", res.Stats)
	}
	if got, want := res.MeanLatency, (2.0+2.0)/2; got != want {
		t.Errorf("MeanLatency = %v, want %v", got, want)
	}
	// The response path caches at leaf 1, so a repeat is a local hit.
	// (Run is once-per-Engine, so feed the extra request directly.)
	e.serveRequest(req(0, 1, 0))
	if e.stats.Leaf != 1 {
		t.Errorf("repeat after coop serve: leaf hits = %d, want 1", e.stats.Leaf)
	}
	checkStats(t, res)
}

func TestNearestReplicaPrefersCloserCopy(t *testing.T) {
	cfg := ICNNR.Apply(tinyConfig())
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Request 1 from PoP0 leaf0: origin serves; response caches at root0 and
	// leaf0. Request 2 from PoP0 leaf1: nearest replica is root0 at
	// distance 1 (leaf0 would be distance 2).
	res := e.Run([]Request{req(0, 0, 0), req(0, 1, 0)})
	if res.Stats.Tree != 1 {
		t.Fatalf("stats = %+v, want one tree (root) hit", res.Stats)
	}
	if got, want := res.MeanLatency, (2.0+1.0)/2; got != want {
		t.Errorf("MeanLatency = %v, want %v", got, want)
	}
	checkStats(t, res)
}

func TestNearestReplicaCrossTree(t *testing.T) {
	// Line of 3 PoPs, origin at PoP 2, first request from PoP 0 seeds
	// replicas at roots 0 and 1 and leaf(0,0). A request from PoP 1's leaf
	// then finds its own root (distance 1) rather than the origin
	// (distance 2).
	net := topo.NewNetwork(linePoPs(3), 2, 1)
	cfg := ICNNR.Apply(Config{
		Network: net, Objects: 1, Origins: []int32{2},
		BudgetFraction: 1, BudgetPolicy: BudgetUniform,
	})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run([]Request{req(0, 0, 0), req(1, 0, 0)})
	if res.Stats.Origin != 1 || res.Stats.Tree != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if got, want := res.MeanLatency, (3.0+1.0)/2; got != want {
		t.Errorf("MeanLatency = %v, want %v", got, want)
	}
	checkStats(t, res)
}

func TestNearestReplicaFallsBackToOrigin(t *testing.T) {
	cfg := ICNNR.Apply(tinyConfig())
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run([]Request{req(0, 0, 3)})
	if res.Stats.Origin != 1 {
		t.Fatalf("stats = %+v, want pure origin serve", res.Stats)
	}
	if res.MeanLatency != 2 {
		t.Errorf("MeanLatency = %v, want 2", res.MeanLatency)
	}
}

func TestReplicaIndexStaysConsistent(t *testing.T) {
	// Small caches force evictions; afterwards the replica index must agree
	// exactly with cache contents.
	net := topo.NewNetwork(linePoPs(3), 2, 2)
	const objects = 50
	origins := trace.OriginAssignment(objects, []float64{1, 1, 1}, true, 1)
	cfg := ICNNR.Apply(Config{
		Network: net, Objects: objects, Origins: origins,
		BudgetFraction: 0.06, BudgetPolicy: BudgetUniform, // 3-entry caches
	})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	reqs := make([]Request, 3000)
	for i := range reqs {
		reqs[i] = req(int32(r.Intn(3)), int32(r.Intn(net.LeavesPerTree())), int32(r.Intn(objects)))
	}
	res := e.Run(reqs)
	checkStats(t, res)
	for obj := int32(0); obj < objects; obj++ {
		want := map[topo.NodeID]bool{}
		for n := topo.NodeID(0); int(n) < net.NodeCount(); n++ {
			if e.caches[n] != nil && e.caches[n].Contains(obj) {
				want[n] = true
			}
		}
		got := e.replicas.perObj[obj]
		if len(got) != len(want) {
			t.Fatalf("object %d: index has %d replicas, caches hold %d", obj, len(got), len(want))
		}
		for _, n := range got {
			if !want[n] {
				t.Fatalf("object %d: index lists node %d which does not cache it", obj, n)
			}
		}
	}
}

func TestCapacityLimitRedirects(t *testing.T) {
	cfg := EDGE.Apply(tinyConfig())
	cfg.Capacity = 1
	cfg.CapacityWindow = 100
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the leaf cache, then issue two more identical requests in the
	// same window: the first is a leaf hit (capacity now exhausted), the
	// second must be redirected to the origin.
	res := e.Run([]Request{req(0, 0, 0), req(0, 0, 0), req(0, 0, 0)})
	if res.Stats.Leaf != 1 || res.Stats.Origin != 2 {
		t.Errorf("stats = %+v, want 1 leaf + 2 origin", res.Stats)
	}
	checkStats(t, res)
}

func TestCapacityWindowResets(t *testing.T) {
	cfg := EDGE.Apply(tinyConfig())
	cfg.Capacity = 1
	cfg.CapacityWindow = 2
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Window 1: miss (origin) + leaf hit. Window 2 starts at request 3:
	// capacity restored, leaf hit again.
	res := e.Run([]Request{req(0, 0, 0), req(0, 0, 0), req(0, 0, 0)})
	if res.Stats.Leaf != 2 || res.Stats.Origin != 1 {
		t.Errorf("stats = %+v, want 2 leaf + 1 origin", res.Stats)
	}
}

func TestUniformBudgetSizesCaches(t *testing.T) {
	cfg := tinyConfig()
	cfg.BudgetFraction = 0.3 // 3 of 10 objects
	e, err := New(ICNSP.Apply(cfg))
	if err != nil {
		t.Fatal(err)
	}
	leaf := cfg.Network.Node(0, cfg.Network.LeafStart())
	s, ok := e.caches[leaf].(*cache.IntLRU)
	if !ok {
		t.Fatalf("cache type %T, want *cache.IntLRU", e.caches[leaf])
	}
	if s.Cap() != 3 {
		t.Errorf("leaf capacity = %d, want 3", s.Cap())
	}
}

func TestEdgeNormScalesBudgets(t *testing.T) {
	cfg := tinyConfig() // tree size 3, leaves 2 -> norm multiplier 1.5
	e, err := New(EDGENorm.Apply(cfg))
	if err != nil {
		t.Fatal(err)
	}
	leaf := cfg.Network.Node(0, cfg.Network.LeafStart())
	s := e.caches[leaf].(*cache.IntLRU)
	// Uniform per-router budget is 5; normalized: 5 * 3/2 = 7.5 -> 8.
	if s.Cap() != 8 {
		t.Errorf("normalized leaf capacity = %d, want 8", s.Cap())
	}
	// Total capacity must now approximate the pervasive total (2 PoPs * 3
	// routers * 5 = 30; EDGE-Norm: 4 leaves * 8 = 32, within rounding).
}

func TestProportionalBudget(t *testing.T) {
	g := topo.NewGraph(2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	tp := &topo.Topology{Name: "uneven", Graph: g, PoPNames: []string{"a", "b"}, Population: []float64{1, 3}}
	net := topo.NewNetwork(tp, 2, 1)
	origins := make([]int32, 100)
	cfg := ICNSP.Apply(Config{
		Network: net, Objects: 100, Origins: origins,
		BudgetFraction: 0.05, BudgetPolicy: BudgetProportional,
	})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Total budget = 0.05 * 6 routers * 100 objects = 30 slots.
	// PoP0 share 25% = 7.5 -> 2.5/router; PoP1 share 75% = 22.5 -> 7.5/router.
	c0 := e.caches[net.Node(0, 0)].(*cache.IntLRU).Cap()
	c1 := e.caches[net.Node(1, 0)].(*cache.IntLRU).Cap()
	if c0 != 2 && c0 != 3 {
		t.Errorf("PoP0 per-router capacity = %d, want ~2.5", c0)
	}
	if c1 != 7 && c1 != 8 {
		t.Errorf("PoP1 per-router capacity = %d, want ~7.5", c1)
	}
	if c1 <= c0 {
		t.Errorf("proportional budgeting did not favor the populous PoP: %d vs %d", c0, c1)
	}
}

func TestLatencyModels(t *testing.T) {
	// Depth-2 trees: leaf at depth 2. Request to remote origin crosses
	// leaf->d1 (cost 1 unit), d1->root (cost 2 arithmetic), core (depth+1=3).
	net := topo.NewNetwork(linePoPs(2), 2, 2)
	cfg := Config{
		Network: net, Objects: 1, Origins: []int32{1},
		BudgetFraction: 0, BudgetPolicy: BudgetUniform,
	}
	run := func(m LatencyModel, factor float64) float64 {
		c := cfg
		c.Latency = m
		c.CoreFactor = factor
		res, err := RunConfig(ICNSP.Apply(c), []Request{req(0, 0, 0)})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatency
	}
	if got := run(LatencyUnit, 0); got != 3 {
		t.Errorf("unit latency = %v, want 3", got)
	}
	// Arithmetic: leaf hop (depth2) costs 1, depth1 hop costs 2, core costs 3.
	if got := run(LatencyArithmetic, 0); got != 6 {
		t.Errorf("arithmetic latency = %v, want 6", got)
	}
	// Core multiplier 5: 1 + 1 + 5.
	if got := run(LatencyCoreMultiplier, 5); got != 7 {
		t.Errorf("core-multiplier latency = %v, want 7", got)
	}
}

func TestHeterogeneousSizes(t *testing.T) {
	cfg := EDGE.Apply(tinyConfig())
	cfg.Sizes = []int64{100, 100, 100, 100, 100, 100, 100, 100, 100, 1000}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Byte budget per cache = 5 slots * mean 190 = 950: object 9 (1000B)
	// can never be cached.
	res := e.Run([]Request{req(0, 0, 9), req(0, 0, 9)})
	if res.Stats.Origin != 2 {
		t.Errorf("oversize object served from cache: %+v", res.Stats)
	}
	// Congestion counts bytes now.
	if res.MaxLinkLoad != 2000 {
		t.Errorf("MaxLinkLoad = %d, want 2000 bytes", res.MaxLinkLoad)
	}
	// A small object is cached fine. (Run is once-per-Engine, so feed the
	// extra requests directly.)
	e.serveRequest(req(0, 0, 0))
	e.serveRequest(req(0, 0, 0))
	if e.stats.Leaf != 1 {
		t.Errorf("small object not cached: %+v", e.stats)
	}
}

func TestLFUPolicyRuns(t *testing.T) {
	cfg := ICNSP.Apply(tinyConfig())
	cfg.Policy = PolicyLFU
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run([]Request{req(0, 0, 0), req(0, 0, 0), req(0, 1, 0)})
	checkStats(t, res)
	if res.Stats.Leaf < 1 {
		t.Errorf("LFU stats = %+v, want at least one leaf hit", res.Stats)
	}
}

func TestInfiniteBudget(t *testing.T) {
	cfg := tinyConfig()
	cfg.BudgetFraction = 1
	e, err := New(EDGE.Apply(cfg))
	if err != nil {
		t.Fatal(err)
	}
	leaf := cfg.Network.Node(0, cfg.Network.LeafStart())
	if got := e.caches[leaf].(*cache.IntLRU).Cap(); got != cfg.Objects {
		t.Errorf("infinite-budget capacity = %d, want %d", got, cfg.Objects)
	}
}

func TestConfigValidation(t *testing.T) {
	good := tinyConfig()
	cases := map[string]func(*Config){
		"nil network":     func(c *Config) { c.Network = nil },
		"objects":         func(c *Config) { c.Objects = 0 },
		"origins len":     func(c *Config) { c.Origins = c.Origins[:3] },
		"origin range":    func(c *Config) { c.Origins[0] = 99 },
		"sizes len":       func(c *Config) { c.Sizes = []int64{1} },
		"budget":          func(c *Config) { c.BudgetFraction = -0.1 },
		"edge levels":     func(c *Config) { c.Placement = PlacementEdgeLevels; c.EdgeLevels = 0 },
		"capacity":        func(c *Config) { c.Capacity = -1 },
		"capacity window": func(c *Config) { c.Capacity = 5; c.CapacityWindow = 0 },
		"negative size": func(c *Config) {
			c.Sizes = make([]int64, c.Objects)
			c.Sizes[2] = -5
		},
		"sizes with non-LRU policy": func(c *Config) {
			c.Sizes = make([]int64, c.Objects)
			for i := range c.Sizes {
				c.Sizes[i] = 1
			}
			c.Policy = PolicyARC
		},
	}
	for name, mutate := range cases {
		cfg := good
		cfg.Origins = append([]int32(nil), good.Origins...)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	if _, err := New(good); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestRunValidatesRequests(t *testing.T) {
	cases := map[string]Request{
		"pop":    req(7, 0, 0),
		"leaf":   req(0, 9, 0),
		"object": req(0, 0, 42),
	}
	for name, bad := range cases {
		e, err := New(EDGE.Apply(tinyConfig()))
		if err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: out-of-range request accepted", name)
				}
			}()
			e.Run([]Request{req(0, 0, 1), bad})
		}()
	}
}

func TestImprovementsAndGap(t *testing.T) {
	base := Result{MeanLatency: 4, MaxLinkLoad: 100, MaxOriginLoad: 50}
	run := Result{MeanLatency: 2, MaxLinkLoad: 80, MaxOriginLoad: 25}
	imp := Improvements(base, run)
	if imp.Latency != 50 || imp.Congestion != 20 || imp.OriginLoad != 50 {
		t.Errorf("Improvements = %+v", imp)
	}
	g := Gap(imp, Improvement{Latency: 40, Congestion: 25, OriginLoad: 50})
	if g.Latency != 10 || g.Congestion != -5 || g.OriginLoad != 0 {
		t.Errorf("Gap = %+v", g)
	}
	zero := Improvements(Result{}, run)
	if zero.Latency != 0 {
		t.Errorf("zero baseline should yield 0 improvement, got %+v", zero)
	}
}

func TestCompareDesignsOrderingInvariants(t *testing.T) {
	// On a realistic workload: every design improves on no caching, and
	// pervasive+NR is at least as good as plain EDGE on latency.
	net := topo.NewNetwork(topo.Abilene(), 2, 3)
	const objects = 400
	weights := net.Topo.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, true, 3)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests: 20000, Objects: objects, Alpha: 0.9,
		PoPWeights: weights, Leaves: net.LeavesPerTree(), Seed: 11,
	})
	cfg := Config{
		Network: net, Objects: objects, Origins: origins,
		BudgetFraction: 0.05, BudgetPolicy: BudgetProportional,
	}
	results, err := Compare(cfg, BaselineDesigns(), reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DesignResult{}
	for _, r := range results {
		byName[r.Design.Name] = r
		if r.Improvement.Latency <= 0 {
			t.Errorf("%s: latency improvement %v, want > 0", r.Design.Name, r.Improvement.Latency)
		}
		if r.Improvement.OriginLoad <= 0 {
			t.Errorf("%s: origin-load improvement %v, want > 0", r.Design.Name, r.Improvement.OriginLoad)
		}
		checkStats(t, r.Raw)
	}
	if byName["ICN-NR"].Improvement.Latency < byName["EDGE"].Improvement.Latency {
		t.Errorf("ICN-NR (%v) worse than EDGE (%v) on latency",
			byName["ICN-NR"].Improvement.Latency, byName["EDGE"].Improvement.Latency)
	}
	// EDGE-Coop should be at least as good as plain EDGE.
	if byName["EDGE-Coop"].Improvement.Latency < byName["EDGE"].Improvement.Latency-0.5 {
		t.Errorf("EDGE-Coop (%v) materially worse than EDGE (%v)",
			byName["EDGE-Coop"].Improvement.Latency, byName["EDGE"].Improvement.Latency)
	}
	// The headline result: the ICN-NR vs EDGE gap is modest (paper: <=9%
	// baseline, <=17% worst case). Allow slack for the small test workload.
	gap := Gap(byName["ICN-NR"].Improvement, byName["EDGE"].Improvement)
	if gap.Latency > 25 {
		t.Errorf("ICN-NR over EDGE latency gap = %v%%, implausibly large", gap.Latency)
	}
}

// Property: for random tiny workloads, serve stats always sum to the request
// count and latency is non-negative, under every design.
func TestServeAccountingQuick(t *testing.T) {
	net := topo.NewNetwork(linePoPs(3), 2, 2)
	origins := trace.OriginAssignment(30, []float64{1, 1, 1}, true, 5)
	designs := append(BaselineDesigns(),
		Design{Name: "2L", Placement: PlacementEdgeLevels, EdgeLevels: 2, Routing: RouteShortestPath},
		Design{Name: "2L-Coop", Placement: PlacementEdgeLevels, EdgeLevels: 2, Routing: RouteShortestPath, SiblingCoop: true},
	)
	f := func(seed int64, dRaw uint8) bool {
		d := designs[int(dRaw)%len(designs)]
		cfg := d.Apply(Config{
			Network: net, Objects: 30, Origins: origins,
			BudgetFraction: 0.1, BudgetPolicy: BudgetUniform,
		})
		e, err := New(cfg)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		reqs := make([]Request, 300)
		for i := range reqs {
			reqs[i] = req(int32(r.Intn(3)), int32(r.Intn(net.LeavesPerTree())), int32(r.Intn(30)))
		}
		res := e.Run(reqs)
		sum := res.Stats.Leaf + res.Stats.Sibling + res.Stats.Tree + res.Stats.Core + res.Stats.Origin
		return sum == res.Requests && res.MeanLatency >= 0 && res.MaxLinkLoad >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRunICNNRAbilene(b *testing.B) {
	net := topo.NewNetwork(topo.Abilene(), 2, 5)
	const objects = 5000
	weights := net.Topo.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, true, 3)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests: 100000, Objects: objects, Alpha: 1.04,
		PoPWeights: weights, Leaves: net.LeavesPerTree(), Seed: 7,
	})
	cfg := ICNNR.Apply(Config{
		Network: net, Objects: objects, Origins: origins,
		BudgetFraction: 0.05, BudgetPolicy: BudgetProportional,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		e.Run(reqs)
	}
}

func BenchmarkRunEdgeAbilene(b *testing.B) {
	net := topo.NewNetwork(topo.Abilene(), 2, 5)
	const objects = 5000
	weights := net.Topo.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, true, 3)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests: 100000, Objects: objects, Alpha: 1.04,
		PoPWeights: weights, Leaves: net.LeavesPerTree(), Seed: 7,
	})
	cfg := EDGE.Apply(Config{
		Network: net, Objects: objects, Origins: origins,
		BudgetFraction: 0.05, BudgetPolicy: BudgetProportional,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		e.Run(reqs)
	}
}

func TestPartialDeployment(t *testing.T) {
	net := topo.NewNetwork(linePoPs(2), 2, 1)
	origins := []int32{1} // origin at PoP 1
	cfg := EDGE.Apply(Config{
		Network: net, Objects: 1, Origins: origins,
		BudgetFraction: 1, BudgetPolicy: BudgetUniform,
		Deployed: []bool{true, false}, // only PoP 0 has caches
	})
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// PoP 0's leaves cache; PoP 1's leaves must not.
	if e.caches[net.Leaf(0, 0)] == nil {
		t.Fatal("deployed PoP lacks caches")
	}
	if e.caches[net.Leaf(1, 0)] != nil {
		t.Fatal("undeployed PoP has caches")
	}
	// Requests from PoP 0 benefit on repeat; from PoP 1 never do.
	res := e.Run([]Request{
		req(0, 0, 0), req(0, 0, 0), // miss then hit
		req(1, 0, 0), req(1, 0, 0), // always origin
	})
	if res.Stats.Leaf != 1 || res.Stats.Origin != 3 {
		t.Errorf("stats = %+v, want 1 leaf hit, 3 origin", res.Stats)
	}
	// Per-PoP accounting: PoP 0 mean latency (2+0)/2 = 1; PoP 1 = 1 (depth).
	if got := res.PoPMeanLatency(0); got != 1 {
		t.Errorf("PoP 0 mean latency = %v, want 1", got)
	}
	if got := res.PoPMeanLatency(1); got != 1 {
		t.Errorf("PoP 1 mean latency = %v, want 1", got)
	}
	if res.PoPRequests[0] != 2 || res.PoPRequests[1] != 2 {
		t.Errorf("PoPRequests = %v", res.PoPRequests)
	}
}

func TestDeployedValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Deployed = []bool{true} // wrong length for 2 PoPs
	if _, err := New(cfg); err == nil {
		t.Fatal("mismatched Deployed length accepted")
	}
}

func TestNRLookupPenalty(t *testing.T) {
	cfg := ICNNR.Apply(tinyConfig())
	cfg.NRLookupPenalty = 10
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Request 1: origin serve (no penalty: no replica lookup served it).
	// Request 2 from the sibling leaf: replica at root, distance 1 + penalty.
	res := e.Run([]Request{req(0, 0, 0), req(0, 1, 0)})
	want := (2.0 + 1.0 + 10.0) / 2
	if res.MeanLatency != want {
		t.Errorf("MeanLatency = %v, want %v", res.MeanLatency, want)
	}
	// The leaf fast path must NOT pay the penalty.
	e2, _ := New(cfg)
	res2 := e2.Run([]Request{req(0, 0, 0), req(0, 0, 0)})
	if got, wantFast := res2.MeanLatency, (2.0+0.0)/2; got != wantFast {
		t.Errorf("leaf fast path paid the penalty: %v, want %v", got, wantFast)
	}
}

func TestPoPMeanLatencyOutOfRange(t *testing.T) {
	var r Result
	if r.PoPMeanLatency(0) != 0 || r.PoPMeanLatency(-1) != 0 {
		t.Error("empty result should yield 0 mean latency")
	}
}

// Property: with unit-size objects, the sum of per-link loads equals the
// total link crossings the engine reports (conservation), under every
// design and a random workload.
func TestLinkLoadConservationQuick(t *testing.T) {
	net := topo.NewNetwork(linePoPs(3), 2, 2)
	origins := trace.OriginAssignment(40, []float64{1, 1, 1}, true, 5)
	designs := BaselineDesigns()
	f := func(seed int64, dRaw uint8) bool {
		d := designs[int(dRaw)%len(designs)]
		cfg := d.Apply(Config{
			Network: net, Objects: 40, Origins: origins,
			BudgetFraction: 0.1, BudgetPolicy: BudgetUniform,
		})
		e, err := New(cfg)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		reqs := make([]Request, 400)
		for i := range reqs {
			reqs[i] = req(int32(r.Intn(3)), int32(r.Intn(net.LeavesPerTree())), int32(r.Intn(40)))
		}
		res := e.Run(reqs)
		var sum int64
		for _, l := range e.treeLoad {
			sum += l
		}
		for _, l := range e.coreLoad {
			sum += l
		}
		return sum == res.Transfers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: per-PoP latency totals always sum to the global mean.
func TestPerPoPLatencyConservationQuick(t *testing.T) {
	net := topo.NewNetwork(linePoPs(4), 2, 2)
	origins := trace.OriginAssignment(30, []float64{1, 1, 1, 1}, false, 6)
	f := func(seed int64) bool {
		cfg := ICNNR.Apply(Config{
			Network: net, Objects: 30, Origins: origins,
			BudgetFraction: 0.1, BudgetPolicy: BudgetUniform,
		})
		e, err := New(cfg)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		reqs := make([]Request, 300)
		for i := range reqs {
			reqs[i] = req(int32(r.Intn(4)), int32(r.Intn(net.LeavesPerTree())), int32(r.Intn(30)))
		}
		res := e.Run(reqs)
		var latSum float64
		var nSum int64
		for p := range res.PoPLatency {
			latSum += res.PoPLatency[p]
			nSum += res.PoPRequests[p]
		}
		if nSum != res.Requests {
			return false
		}
		diff := latSum/float64(res.Requests) - res.MeanLatency
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWarmupExcludedFromMetrics(t *testing.T) {
	cfg := EDGE.Apply(tinyConfig())
	cfg.WarmupRequests = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Request 1 (warmup): miss to origin, seeds the leaf. Request 2: hit.
	res := e.Run([]Request{req(0, 0, 0), req(0, 0, 0)})
	if res.Requests != 1 {
		t.Fatalf("Requests = %d, want 1 (warmup excluded)", res.Requests)
	}
	if res.MeanLatency != 0 {
		t.Errorf("MeanLatency = %v, want 0 (post-warmup request was a hit)", res.MeanLatency)
	}
	if res.Stats.Origin != 0 || res.Stats.Leaf != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.MaxLinkLoad != 0 || res.TotalOrigin != 0 {
		t.Errorf("loads = link %d origin %d, want 0", res.MaxLinkLoad, res.TotalOrigin)
	}
}

func TestWarmupLongerThanStream(t *testing.T) {
	cfg := EDGE.Apply(tinyConfig())
	cfg.WarmupRequests = 10
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run([]Request{req(0, 0, 0)})
	if res.Requests != 0 || res.MeanLatency != 0 {
		t.Errorf("res = %+v, want empty", res)
	}
}

func TestWarmupValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupRequests = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func BenchmarkNearestReplicaLookup(b *testing.B) {
	net := topo.NewNetwork(topo.ATT(), 2, 5)
	const objects = 2000
	ri := newReplicaIndex(objects)
	r := rand.New(rand.NewSource(1))
	// Populate: popular objects get many replicas, tail objects few.
	for obj := int32(0); obj < objects; obj++ {
		replicas := 1 + int(200/float64(obj+1))
		for k := 0; k < replicas; k++ {
			pop := r.Intn(net.PoPs())
			local := int32(r.Intn(net.TreeSize()))
			ri.add(obj, net.Node(pop, local))
		}
	}
	leaf := net.LeafStart()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := int32(i % objects)
		ri.nearest(net, i%net.PoPs(), leaf, obj, nil)
	}
}

// coopEngine builds a single-PoP depth-2 binary tree (leaves at ordinals
// 0..3) with EDGE placement and the given cooperation scope.
func coopEngine(t *testing.T, scope int) *Engine {
	t.Helper()
	net := topo.NewNetwork(linePoPs(1), 2, 2)
	cfg := Config{
		Network: net, Objects: 1, Origins: []int32{0},
		BudgetFraction: 1, BudgetPolicy: BudgetUniform,
		Placement: PlacementEdge, Routing: RouteShortestPath,
		CoopScope: scope,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCoopScopeReachesCousins(t *testing.T) {
	// Leaf ordinal 0's sibling is ordinal 1 (dist 2); cousins 2,3 are at
	// dist 4. Seed a cousin, then probe from leaf 0.
	stream := []Request{req(0, 2, 0), req(0, 0, 0)}

	// Scope 2 cannot see the cousin: both requests hit the origin (the
	// seeding miss and the probe).
	res2 := coopEngine(t, 2).Run(stream)
	if res2.Stats.Sibling != 0 || res2.Stats.Origin != 2 {
		t.Errorf("scope 2 stats = %+v, want two origin serves", res2.Stats)
	}
	// Scope 4 reaches the cousin at distance 4; mean = (2 + 4) / 2.
	res4 := coopEngine(t, 4).Run(stream)
	if res4.Stats.Sibling != 1 || res4.Stats.Origin != 1 {
		t.Fatalf("scope 4 stats = %+v, want one cooperative serve", res4.Stats)
	}
	if res4.MeanLatency != 3 {
		t.Errorf("scope 4 mean latency = %v, want 3", res4.MeanLatency)
	}
	checkStats(t, res4)
}

func TestCoopScopePrefersNearest(t *testing.T) {
	// Seed leaf 1 (origin serve, 2 hops); seed leaf 2, which scope-4
	// cooperation serves from leaf 1's cousin copy (4 hops); then probe
	// from leaf 0, which must use its sibling leaf 1 (2 hops), not the
	// equally-cached but farther cousin: mean = (2 + 4 + 2) / 3.
	e := coopEngine(t, 4)
	res := e.Run([]Request{req(0, 1, 0), req(0, 2, 0), req(0, 0, 0)})
	if res.Stats.Sibling != 2 || res.Stats.Origin != 1 {
		t.Errorf("stats = %+v, want two cooperative serves", res.Stats)
	}
	if want := 8.0 / 3; res.MeanLatency != want {
		t.Errorf("mean latency = %v, want %v", res.MeanLatency, want)
	}
}

func TestCoopScopeValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.CoopScope = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative CoopScope accepted")
	}
}
