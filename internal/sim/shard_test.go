package sim

import (
	"bytes"
	"math"
	"reflect"
	"runtime"
	"testing"

	"idicn/internal/topo"
	"idicn/internal/trace"
)

// shardWorkload is sweepWorkload with the knobs the sharded runner must
// synchronize across epochs: warmup, capacity windows, and a failure plan
// whose epochs do not align with the stream's epoch length.
func shardWorkload(t testing.TB) (Config, []Request) {
	t.Helper()
	cfg, reqs := sweepWorkload(t)
	cfg.WarmupRequests = 5000
	cfg.Capacity = 200
	cfg.CapacityWindow = 3000
	cfg.FailurePlan = &FailurePlan{
		Seed: 99,
		Epochs: []FailureEpoch{
			{Start: 7100, FailFraction: 0.3},
			{Start: 11500, FailFraction: 0.1, ResolverDown: true},
			{Start: 15000},
		},
	}
	return cfg, reqs
}

// TestRunStreamMatchesSequentialSinglePoP pins the exact-equivalence
// contract: with one PoP there is one shard, no cross-shard effects exist,
// and RunStream must reproduce Engine.Run bit for bit — floats included.
func TestRunStreamMatchesSequentialSinglePoP(t *testing.T) {
	net := topo.NewNetwork(linePoPs(1), 2, 3)
	const objects = 200
	origins := trace.OriginAssignment(objects, []float64{1}, true, 5)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests: 8000, Objects: objects, Alpha: 0.9,
		PoPWeights: []float64{1}, Leaves: net.LeavesPerTree(), Seed: 21,
		TemporalLocality: 0.3,
	})
	base := Config{
		Network: net, Objects: objects, Origins: origins,
		BudgetFraction: 0.08, BudgetPolicy: BudgetUniform,
		WarmupRequests: 1000, Capacity: 150, CapacityWindow: 700,
	}
	for _, d := range BaselineDesigns() {
		t.Run(d.Name, func(t *testing.T) {
			cfg := d.Apply(base)
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := e.Run(reqs)
			got, err := RunStream(cfg, trace.Requests(reqs), StreamOptions{Workers: 1, EpochLen: 512})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("RunStream diverges from Engine.Run:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestRunStreamDeterministicAcrossWorkers pins the tentpole contract: on a
// multi-PoP topology with cooperation, capacity limits, and a failure plan,
// the full Result — every field, floats included — is identical for any
// worker count.
func TestRunStreamDeterministicAcrossWorkers(t *testing.T) {
	cfg, reqs := shardWorkload(t)
	workerCounts := []int{1, 2, 7, runtime.NumCPU()}
	for _, d := range []Design{EDGE, EDGECoop, ICNSP, ICNNR} {
		t.Run(d.Name, func(t *testing.T) {
			dcfg := d.Apply(cfg)
			var want Result
			for i, w := range workerCounts {
				got, err := RunStream(dcfg, trace.Requests(reqs), StreamOptions{Workers: w, EpochLen: 1024})
				if err != nil {
					t.Fatal(err)
				}
				sum := got.Stats.Leaf + got.Stats.Sibling + got.Stats.Tree + got.Stats.Core + got.Stats.Origin
				if sum != got.Requests {
					t.Fatalf("Workers=%d: serve stats sum to %d for %d requests", w, sum, got.Requests)
				}
				if i == 0 {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Workers=%d result differs from Workers=%d:\n got %+v\nwant %+v",
						w, workerCounts[0], got, want)
				}
			}
		})
	}
}

// TestRunStreamDeterministicAcrossWorkersPolicies repeats the bit-equality
// check for every cache policy in the zoo: ARC's adaptation target, CAR's
// clock hands, and TinyLFU's sketch are all per-shard state, so the result
// must not depend on how many workers drive the shards.
func TestRunStreamDeterministicAcrossWorkersPolicies(t *testing.T) {
	cfg, reqs := shardWorkload(t)
	workerCounts := []int{1, 2, 7}
	for _, pol := range CachePolicies() {
		t.Run(pol.String(), func(t *testing.T) {
			dcfg := EDGECoop.Apply(cfg)
			dcfg.Policy = pol
			var want Result
			for i, w := range workerCounts {
				got, err := RunStream(dcfg, trace.Requests(reqs), StreamOptions{Workers: w, EpochLen: 1024})
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Workers=%d result differs from Workers=%d:\n got %+v\nwant %+v",
						w, workerCounts[0], got, want)
				}
			}
		})
	}
}

// TestRunStreamEdgeMatchesSequential: under edge-only placement with
// shortest-path routing every cache interaction stays inside the arrival
// PoP's tree, so even the multi-PoP sharded run must agree exactly with the
// sequential engine on every integer metric; MeanLatency may differ only by
// float summation order.
func TestRunStreamEdgeMatchesSequential(t *testing.T) {
	cfg, reqs := shardWorkload(t)
	dcfg := EDGE.Apply(cfg)
	e, err := New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	want := e.Run(reqs)
	got, err := RunStream(dcfg, trace.Requests(reqs), StreamOptions{Workers: 3, EpochLen: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.MeanLatency-want.MeanLatency) > 1e-9*math.Abs(want.MeanLatency) {
		t.Errorf("MeanLatency: got %v, want %v", got.MeanLatency, want.MeanLatency)
	}
	got.MeanLatency = want.MeanLatency
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("EDGE sharded run diverges from sequential:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunStreamEpochLenInvariantWithoutCrossShardState: when no state
// crosses shards, the epoch length must not matter either.
func TestRunStreamEpochLenInvariantWithoutCrossShardState(t *testing.T) {
	cfg, reqs := sweepWorkload(t)
	dcfg := EDGECoop.Apply(cfg)
	want, err := RunStream(dcfg, trace.Requests(reqs), StreamOptions{Workers: 2, EpochLen: 256})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStream(dcfg, trace.Requests(reqs), StreamOptions{Workers: 2, EpochLen: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("EDGE-Coop result depends on EpochLen:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunStreamFromBinaryTrace: simulating from a recorded binary trace is
// identical to simulating the requests it encodes.
func TestRunStreamFromBinaryTrace(t *testing.T) {
	cfg, reqs := sweepWorkload(t)
	dcfg := ICNNR.Apply(cfg)
	want, err := RunStream(dcfg, trace.Requests(reqs), StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	meta := trace.BinaryMeta{
		PoPs:    cfg.Network.PoPs(),
		Leaves:  cfg.Network.LeavesPerTree(),
		Objects: cfg.Objects, Requests: int64(len(reqs)),
	}
	if err := trace.WriteBinaryTrace(&buf, meta, trace.Requests(reqs)); err != nil {
		t.Fatal(err)
	}
	br, err := trace.NewBinaryReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStream(dcfg, br, StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("binary-trace run diverges from in-memory run")
	}
}

// TestRunStreamRejectsOutOfRangeRequests: a stream whose records exceed the
// topology or object space must fail, not corrupt the run.
func TestRunStreamRejectsOutOfRangeRequests(t *testing.T) {
	cfg, reqs := sweepWorkload(t)
	dcfg := EDGE.Apply(cfg)
	for name, bad := range map[string]Request{
		"pop":    {PoP: int32(cfg.Network.PoPs()), Leaf: 0, Object: 0},
		"leaf":   {PoP: 0, Leaf: int32(cfg.Network.LeavesPerTree()), Object: 0},
		"object": {PoP: 0, Leaf: 0, Object: int32(cfg.Objects)},
	} {
		stream := trace.Requests(append(append([]Request{}, reqs[:100]...), bad))
		if _, err := RunStream(dcfg, stream, StreamOptions{Workers: 2}); err == nil {
			t.Errorf("%s: out-of-range request accepted", name)
		}
	}
}

// TestRunStreamShorterThanWarmup: a stream that ends inside the warmup
// window reports zero measured requests without dividing by zero.
func TestRunStreamShorterThanWarmup(t *testing.T) {
	cfg, reqs := sweepWorkload(t)
	cfg.WarmupRequests = len(reqs) * 2
	res, err := RunStream(EDGE.Apply(cfg), trace.Requests(reqs), StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 0 || res.MeanLatency != 0 {
		t.Fatalf("all-warmup run reported %+v", res)
	}
}

// TestShardServeRequestAllocationFree pins the per-shard serve path's
// noalloc property: once warm — effect buffers grown, caches full — serving
// a request on a shard allocates nothing, so a multi-billion-request run's
// steady state is GC-free. Buffers are trimmed between iterations exactly
// as the epoch barrier leaves them (len 0, capacity kept).
func TestShardServeRequestAllocationFree(t *testing.T) {
	for _, d := range []Design{EDGE, EDGECoop, ICNSP, ICNNR} {
		t.Run(d.Name, func(t *testing.T) {
			cfg, reqs := sweepWorkload(t)
			engines, shared, err := newShardedEngines(d.Apply(cfg))
			if err != nil {
				t.Fatal(err)
			}
			warm := reqs[:len(reqs)/2]
			for _, q := range warm {
				engines[q.PoP].serveRequest(q)
			}
			exchange(engines, shared)
			tail := reqs[len(reqs)/2:]
			i := 0
			perReq := testing.AllocsPerRun(2000, func() {
				q := tail[i%len(tail)]
				i++
				e := engines[q.PoP]
				e.serveRequest(q)
				e.sh.ops = e.sh.ops[:0]
				e.sh.riLog = e.sh.riLog[:0]
			})
			if perReq > 0.01 {
				t.Fatalf("%s: %.4f allocs/request on the shard serve path, want ~0", d.Name, perReq)
			}
		})
	}
}

// BenchmarkRunStreamEdgeAbilene measures sharded streaming throughput on
// the same workload as BenchmarkRunEdgeAbilene, for a like-for-like
// comparison against the sequential engine.
func BenchmarkRunStreamEdgeAbilene(b *testing.B) {
	net := topo.NewNetwork(topo.Abilene(), 2, 5)
	const objects = 5000
	weights := net.Topo.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, true, 3)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests: 100000, Objects: objects, Alpha: 1.04,
		PoPWeights: weights, Leaves: net.LeavesPerTree(), Seed: 7,
	})
	cfg := EDGE.Apply(Config{
		Network: net, Objects: objects, Origins: origins,
		BudgetFraction: 0.05, BudgetPolicy: BudgetProportional,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunStream(cfg, trace.Requests(reqs), StreamOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
