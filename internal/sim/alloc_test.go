package sim

import (
	"testing"
)

// warmEngine builds an engine for the design and drives it to steady state
// (caches full, replica index populated) so that the measured window only
// sees the hot serve path.
func warmEngine(t testing.TB, d Design) (*Engine, []Request) {
	return warmEngineObserved(t, d, nil)
}

// warmEnginePolicy is warmEngine with a non-default cache policy stamped on
// the config, for pinning every zoo member's hot path.
func warmEnginePolicy(t testing.TB, d Design, pol CachePolicy) (*Engine, []Request) {
	t.Helper()
	cfg, reqs := sweepWorkload(t)
	cfg.Policy = pol
	e, err := New(d.Apply(cfg))
	if err != nil {
		t.Fatal(err)
	}
	warm := reqs[:len(reqs)/2]
	for _, q := range warm {
		e.serveRequest(q)
	}
	return e, reqs[len(reqs)/2:]
}

// allocGatedPolicies lists the cache policies whose hot paths carry the
// //icn:noalloc guarantee: every zoo member except LFU, whose frequency
// buckets allocate by design (container/list) and which is therefore kept
// out of the alloc-gated benchmarks.
func allocGatedPolicies() []CachePolicy {
	return []CachePolicy{PolicyLRU, PolicyARC, PolicyCAR, PolicyTinyLFU}
}

// warmEngineObserved is warmEngine with an Observer attached to the config,
// for pinning the instrumented serve path's allocation behavior.
func warmEngineObserved(t testing.TB, d Design, o Observer) (*Engine, []Request) {
	t.Helper()
	cfg, reqs := sweepWorkload(t)
	cfg.Observer = o
	e, err := New(d.Apply(cfg))
	if err != nil {
		t.Fatal(err)
	}
	warm := reqs[:len(reqs)/2]
	for _, q := range warm {
		e.serveRequest(q)
	}
	return e, reqs[len(reqs)/2:]
}

// TestServeRequestAllocationFree pins the tentpole perf property: once an
// engine is warm, serving a request performs no heap allocations on any
// design's path — the coop scope BFS, the NR replica scan, and the edge
// ascent all run on engine-owned scratch. A tolerance of 0.01 allocs/request
// absorbs the rare map growth inside IntLRU's key index.
func TestServeRequestAllocationFree(t *testing.T) {
	for _, d := range []Design{EDGE, EDGECoop, ICNSP, ICNNR} {
		t.Run(d.Name, func(t *testing.T) {
			e, tail := warmEngine(t, d)
			i := 0
			perReq := testing.AllocsPerRun(2000, func() {
				e.serveRequest(tail[i%len(tail)])
				i++
			})
			if perReq > 0.01 {
				t.Fatalf("%s: %.4f allocs/request in steady state, want ~0", d.Name, perReq)
			}
		})
	}
}

// TestServeRequestAllocationFreePolicies extends the steady-state
// zero-allocation pin across the cache-policy zoo: ARC's slot recycling,
// CAR's clock sweep, and TinyLFU's sketch updates must all run on
// construction-time state. (LFU is exempt — see allocGatedPolicies.) The
// TinyLFU tolerance is slightly looser because ghost recycling in the inner
// LRU can occasionally grow its key map.
func TestServeRequestAllocationFreePolicies(t *testing.T) {
	for _, pol := range allocGatedPolicies() {
		for _, d := range []Design{EDGE, ICNNR} {
			t.Run(pol.String()+"/"+d.Name, func(t *testing.T) {
				e, tail := warmEnginePolicy(t, d, pol)
				i := 0
				perReq := testing.AllocsPerRun(2000, func() {
					e.serveRequest(tail[i%len(tail)])
					i++
				})
				if perReq > 0.01 {
					t.Fatalf("%s/%s: %.4f allocs/request in steady state, want ~0", pol, d.Name, perReq)
				}
			})
		}
	}
}

// TestServeRequestBoundedAllocsObserved pins the cost of turning the
// observability layer on: with a MetricsObserver attached the warm serve
// path must stay allocation-free too — every recording primitive (atomic
// counters, fixed-bucket histograms, the per-PoP histogram table) works on
// pre-sized state, so instrumentation never perturbs what it measures.
func TestServeRequestBoundedAllocsObserved(t *testing.T) {
	for _, d := range []Design{EDGE, EDGECoop, ICNSP, ICNNR} {
		t.Run(d.Name, func(t *testing.T) {
			m := NewMetricsObserver(0)
			e, tail := warmEngineObserved(t, d, m)
			i := 0
			perReq := testing.AllocsPerRun(2000, func() {
				e.serveRequest(tail[i%len(tail)])
				i++
			})
			if perReq > 0.05 {
				t.Fatalf("%s: %.4f allocs/request with observer attached, want ~0", d.Name, perReq)
			}
			total := int64(0)
			for l := ServeLeaf; l <= ServeOrigin; l++ {
				total += m.Served(l)
			}
			if total == 0 {
				t.Fatalf("%s: observer saw no serves", d.Name)
			}
		})
	}
}

// BenchmarkServeRequest measures the per-request cost of the warm serve path
// for each design with observability disabled. Run with -benchmem: allocs/op
// must stay at 0 — `make bench-smoke` gates on it.
func BenchmarkServeRequest(b *testing.B) {
	for _, d := range []Design{EDGE, EDGECoop, ICNSP, ICNNR} {
		b.Run(d.Name, func(b *testing.B) {
			e, tail := warmEngine(b, d)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.serveRequest(tail[i%len(tail)])
			}
		})
	}
	// Policy rows: every noalloc zoo member on the EDGE design, so the alloc
	// gate covers ARC's slot surgery, CAR's clock sweep, and TinyLFU's sketch
	// alongside the default LRU. LFU allocates by design and is excluded
	// (allocGatedPolicies); BenchmarkServeRequestLFU tracks it ungated.
	for _, pol := range allocGatedPolicies() {
		b.Run("Policy-"+pol.String(), func(b *testing.B) {
			e, tail := warmEnginePolicy(b, EDGE, pol)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.serveRequest(tail[i%len(tail)])
			}
		})
	}
}

// BenchmarkServeRequestLFU tracks the one allocating policy's cost outside
// the alloc-gated BenchmarkServeRequest namespace.
func BenchmarkServeRequestLFU(b *testing.B) {
	e, tail := warmEnginePolicy(b, EDGE, PolicyLFU)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.serveRequest(tail[i%len(tail)])
	}
}

// BenchmarkServeRequestObserved is BenchmarkServeRequest with a
// MetricsObserver attached, tracking the observability layer's overhead.
// Named so the bench-smoke alloc gate (anchored on BenchmarkServeRequest$)
// does not match it.
func BenchmarkServeRequestObserved(b *testing.B) {
	for _, d := range []Design{EDGE, EDGECoop, ICNSP, ICNNR} {
		b.Run(d.Name, func(b *testing.B) {
			e, tail := warmEngineObserved(b, d, NewMetricsObserver(0))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.serveRequest(tail[i%len(tail)])
			}
		})
	}
}
