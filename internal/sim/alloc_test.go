package sim

import (
	"testing"
)

// warmEngine builds an engine for the design and drives it to steady state
// (caches full, replica index populated) so that the measured window only
// sees the hot serve path.
func warmEngine(t testing.TB, d Design) (*Engine, []Request) {
	t.Helper()
	cfg, reqs := sweepWorkload(t)
	e, err := New(d.Apply(cfg))
	if err != nil {
		t.Fatal(err)
	}
	warm := reqs[:len(reqs)/2]
	for _, q := range warm {
		e.serveRequest(q)
	}
	return e, reqs[len(reqs)/2:]
}

// TestServeRequestAllocationFree pins the tentpole perf property: once an
// engine is warm, serving a request performs no heap allocations on any
// design's path — the coop scope BFS, the NR replica scan, and the edge
// ascent all run on engine-owned scratch. A tolerance of 0.01 allocs/request
// absorbs the rare map growth inside IntLRU's key index.
func TestServeRequestAllocationFree(t *testing.T) {
	for _, d := range []Design{EDGE, EDGECoop, ICNSP, ICNNR} {
		t.Run(d.Name, func(t *testing.T) {
			e, tail := warmEngine(t, d)
			i := 0
			perReq := testing.AllocsPerRun(2000, func() {
				e.serveRequest(tail[i%len(tail)])
				i++
			})
			if perReq > 0.01 {
				t.Fatalf("%s: %.4f allocs/request in steady state, want ~0", d.Name, perReq)
			}
		})
	}
}

// BenchmarkServeRequest measures the per-request cost of the warm serve path
// for each design. Run with -benchmem: allocs/op must stay at 0.
func BenchmarkServeRequest(b *testing.B) {
	for _, d := range []Design{EDGE, EDGECoop, ICNSP, ICNNR} {
		b.Run(d.Name, func(b *testing.B) {
			e, tail := warmEngine(b, d)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.serveRequest(tail[i%len(tail)])
			}
		})
	}
}
