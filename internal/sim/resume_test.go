package sim

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"idicn/internal/trace"
)

// errKill is the sentinel a checkpoint hook returns to simulate a crash
// immediately after a checkpoint is persisted.
var errKill = errors.New("simulated crash")

// runUntilKill runs the stream with a checkpoint after every epoch, crashing
// right after the kill-th checkpoint completes, and returns that checkpoint.
func runUntilKill(t *testing.T, cfg Config, reqs []Request, workers, kill int) *StreamState {
	t.Helper()
	var saved *StreamState
	calls := 0
	_, err := RunStream(cfg, trace.Requests(reqs), StreamOptions{
		Workers: workers, EpochLen: 1024,
		CheckpointEvery: 1,
		Checkpoint: func(st *StreamState) error {
			calls++
			saved = st
			if calls == kill {
				return errKill
			}
			return nil
		},
	})
	if !errors.Is(err, errKill) {
		t.Fatalf("kill=%d: RunStream returned %v, want the injected crash", kill, err)
	}
	if saved == nil {
		t.Fatalf("kill=%d: no checkpoint captured", kill)
	}
	return saved
}

// countCheckpoints runs the stream once, recording every epoch boundary a
// checkpoint fires at. Boundaries are not uniform multiples of EpochLen: the
// scheduler cuts extra barriers at warmup, capacity-window, and failure-epoch
// starts.
func countCheckpoints(t *testing.T, cfg Config, reqs []Request, workers int) []int64 {
	t.Helper()
	var cuts []int64
	if _, err := RunStream(cfg, trace.Requests(reqs), StreamOptions{
		Workers: workers, EpochLen: 1024, CheckpointEvery: 1,
		Checkpoint: func(st *StreamState) error {
			cuts = append(cuts, st.Requests)
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	return cuts
}

// TestRunStreamResumeBitIdentical is the tentpole acceptance test: kill the
// run after each checkpoint in turn, resume from that checkpoint, and
// require the final Result to be bit-identical — floats included — to an
// uninterrupted run. The workload exercises warmup, capacity windows, a
// failure plan, and (under ICN-NR) the cross-shard replica index. Every
// epoch boundary is swept at two workers; other worker counts spot-check
// the first, a middle, and the final boundary.
func TestRunStreamResumeBitIdentical(t *testing.T) {
	cfg, reqs := shardWorkload(t)
	for _, d := range []Design{EDGECoop, ICNNR} {
		dcfg := d.Apply(cfg)
		cuts := countCheckpoints(t, dcfg, reqs, 2)
		if len(cuts) < 10 {
			t.Fatalf("%s: only %d checkpoints fired", d.Name, len(cuts))
		}
		for _, workers := range []int{1, 2, runtime.NumCPU()} {
			kills := []int{1, len(cuts) / 2, len(cuts)}
			if workers == 2 {
				kills = kills[:0]
				for k := 1; k <= len(cuts); k++ {
					kills = append(kills, k)
				}
			}
			t.Run(fmt.Sprintf("%s/workers=%d", d.Name, workers), func(t *testing.T) {
				want, err := RunStream(dcfg, trace.Requests(reqs), StreamOptions{Workers: workers, EpochLen: 1024})
				if err != nil {
					t.Fatal(err)
				}
				for _, kill := range kills {
					st := runUntilKill(t, dcfg, reqs, workers, kill)
					if st.Requests != cuts[kill-1] {
						t.Fatalf("kill=%d: checkpoint at request %d, want %d", kill, st.Requests, cuts[kill-1])
					}
					got, err := RunStream(dcfg, trace.Requests(reqs), StreamOptions{
						Workers: workers, EpochLen: 1024, Resume: st,
					})
					if err != nil {
						t.Fatalf("kill=%d: resume: %v", kill, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("kill=%d: resumed result diverges:\n got %+v\nwant %+v", kill, got, want)
					}
				}
			})
		}
	}
}

// TestRunStreamResumeAcrossWorkerCounts: a checkpoint taken at one worker
// count must resume correctly at another — shard state is per-PoP, not
// per-worker.
func TestRunStreamResumeAcrossWorkerCounts(t *testing.T) {
	cfg, reqs := shardWorkload(t)
	dcfg := ICNNR.Apply(cfg)
	want, err := RunStream(dcfg, trace.Requests(reqs), StreamOptions{Workers: 1, EpochLen: 1024})
	if err != nil {
		t.Fatal(err)
	}
	st := runUntilKill(t, dcfg, reqs, 4, 7)
	got, err := RunStream(dcfg, trace.Requests(reqs), StreamOptions{Workers: 2, EpochLen: 1024, Resume: st})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resume at a different worker count diverges:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunStreamResumeFromBinaryTrace: resume mid-way through a binary trace
// file, exercising BinaryReader.SeekPos inside RunStream.
func TestRunStreamResumeFromBinaryTrace(t *testing.T) {
	cfg, reqs := shardWorkload(t)
	dcfg := EDGECoop.Apply(cfg)
	want, err := RunStream(dcfg, trace.Requests(reqs), StreamOptions{Workers: 2, EpochLen: 1024})
	if err != nil {
		t.Fatal(err)
	}
	data := encodeBinaryTrace(t, cfg, reqs)
	var saved *StreamState
	calls := 0
	_, err = RunStream(dcfg, newBinaryReader(t, data), StreamOptions{
		Workers: 2, EpochLen: 1024, CheckpointEvery: 1,
		Checkpoint: func(st *StreamState) error {
			calls++
			saved = st
			if calls == 5 {
				return errKill
			}
			return nil
		},
	})
	if !errors.Is(err, errKill) {
		t.Fatalf("RunStream returned %v, want the injected crash", err)
	}
	got, err := RunStream(dcfg, newBinaryReader(t, data), StreamOptions{
		Workers: 2, EpochLen: 1024, Resume: saved,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("binary-trace resume diverges:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunStreamResumeRejectsMismatchedEpochLen: the epoch length shapes the
// barrier schedule and with it the exact result, so resuming under a
// different one must fail loudly.
func TestRunStreamResumeRejectsMismatchedEpochLen(t *testing.T) {
	cfg, reqs := shardWorkload(t)
	dcfg := EDGECoop.Apply(cfg)
	st := runUntilKill(t, dcfg, reqs, 2, 3)
	if _, err := RunStream(dcfg, trace.Requests(reqs), StreamOptions{
		Workers: 2, EpochLen: 2048, Resume: st,
	}); err == nil {
		t.Fatal("resume with a different EpochLen accepted")
	}
}

// TestRunStreamCheckpointRequiresResumableStream: checkpointing over a
// non-resumable source must fail up front, not at the first save.
func TestRunStreamCheckpointRequiresResumableStream(t *testing.T) {
	cfg, reqs := shardWorkload(t)
	dcfg := EDGECoop.Apply(cfg)
	src := nonResumable{s: trace.Requests(reqs)}
	_, err := RunStream(dcfg, src, StreamOptions{
		Workers: 2, EpochLen: 1024,
		Checkpoint: func(*StreamState) error { return nil },
	})
	if err == nil {
		t.Fatal("checkpointing over a non-resumable stream accepted")
	}
}

// nonResumable strips the ResumableStream methods off a Stream.
type nonResumable struct{ s trace.Stream }

func (n nonResumable) Next(q *trace.Request) bool { return n.s.Next(q) }
func (n nonResumable) Err() error                 { return n.s.Err() }

// encodeBinaryTrace writes reqs as a binary trace image for cfg's topology.
func encodeBinaryTrace(t *testing.T, cfg Config, reqs []Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	meta := trace.BinaryMeta{
		PoPs: cfg.Network.PoPs(), Leaves: cfg.Network.LeavesPerTree(),
		Objects: cfg.Objects, Requests: int64(len(reqs)),
	}
	if err := trace.WriteBinaryTrace(&buf, meta, trace.Requests(reqs)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newBinaryReader opens a seekable reader over a binary trace image.
func newBinaryReader(t *testing.T, data []byte) *trace.BinaryReader {
	t.Helper()
	br, err := trace.NewBinaryReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return br
}
