package sim

import "idicn/internal/cache"

// store is the simulator's view of a content cache — exactly cache.Policy,
// so every policy in the zoo (IntLRU, IntLFU, ARC, Compact CAR, TinyLFU
// admission) plugs into the engine directly, with no per-policy adapter
// structs. Lookup touches (a hit refreshes replacement state); Contains
// peeks without side effects; Insert admits an object, possibly evicting
// others (evictions are reported through the hook supplied at construction)
// or declining outright (admission filters, oversize objects) — the engine
// checks Contains after Insert wherever admission matters.
type store = cache.Policy

// sizedStore is the one remaining adapter: it bridges the byte-budget LRU,
// whose Insert needs a size argument, to the unit-cost Policy interface by
// carrying the per-object size table. The table is validated against the
// object universe at engine construction (see newEngine), so the indexing
// here cannot go out of range for any request the engine accepts.
type sizedStore struct {
	c     *cache.SizedIntLRU
	sizes []int64
}

//icn:noalloc
func (s sizedStore) Lookup(obj int32) bool { return s.c.Lookup(obj) }

//icn:noalloc
func (s sizedStore) Contains(obj int32) bool { return s.c.Contains(obj) }

// Insert admits obj at its table size, reporting whether residents were
// evicted to make room (the Policy contract; the byte-budget cache itself
// reports admission, so eviction is recovered from the length delta).
//
//icn:noalloc
func (s sizedStore) Insert(obj int32) bool {
	before := s.c.Len()
	wasPresent := s.c.Contains(obj)
	if !s.c.Insert(obj, s.sizes[obj]) {
		return false // oversize: rejected, nothing evicted
	}
	if wasPresent {
		return s.c.Len() < before
	}
	return s.c.Len() <= before
}

func (s sizedStore) Len() int { return s.c.Len() }

// AppendState and RestoreState delegate checkpointing to the byte-budget
// cache; the size table is config, not state.
func (s sizedStore) AppendState(buf []byte) []byte { return s.c.AppendState(buf) }

func (s sizedStore) RestoreState(data []byte) ([]byte, error) { return s.c.RestoreState(data) }
