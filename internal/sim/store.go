package sim

import "idicn/internal/cache"

// store is the simulator's view of a content cache. Lookup touches (a hit
// refreshes replacement state); Contains peeks without side effects; Insert
// admits an object, possibly evicting others (evictions are reported through
// the hook supplied at construction).
type store interface {
	Lookup(obj int32) bool
	Contains(obj int32) bool
	Insert(obj int32)
	Len() int
}

type lruStore struct{ c *cache.IntLRU }

//icn:noalloc
func (s lruStore) Lookup(obj int32) bool { return s.c.Lookup(obj) }

//icn:noalloc
func (s lruStore) Contains(obj int32) bool { return s.c.Contains(obj) }

//icn:noalloc
func (s lruStore) Insert(obj int32) { s.c.Insert(obj) }
func (s lruStore) Len() int         { return s.c.Len() }

type lfuStore struct{ c *cache.LFU[int32, struct{}] }

//icn:noalloc
func (s lfuStore) Lookup(obj int32) bool {
	_, ok := s.c.Get(obj)
	return ok
}

//icn:noalloc
func (s lfuStore) Contains(obj int32) bool { return s.c.Contains(obj) }

//icn:noalloc
func (s lfuStore) Insert(obj int32) { s.c.Put(obj, struct{}{}) }
func (s lfuStore) Len() int         { return s.c.Len() }

// sizedStore adapts the byte-budget LRU for heterogeneous object sizes.
type sizedStore struct {
	c     *cache.SizedIntLRU
	sizes []int64
}

//icn:noalloc
func (s sizedStore) Lookup(obj int32) bool { return s.c.Lookup(obj) }

//icn:noalloc
func (s sizedStore) Contains(obj int32) bool { return s.c.Contains(obj) }

//icn:noalloc
func (s sizedStore) Insert(obj int32) { s.c.Insert(obj, s.sizes[obj]) }
func (s sizedStore) Len() int         { return s.c.Len() }
