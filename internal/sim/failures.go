package sim

import (
	"fmt"
	"math/rand"
)

// FailurePlan schedules component outages during a run, mirroring
// internal/faults for the simulator: at request-indexed epochs a seeded
// fraction of the caching nodes goes dark (inadmissible, receiving no
// inserts) and the resolution system itself may fail, degrading
// nearest-replica routing to shortest-path-toward-origin — the on-path
// caches a request passes anyway keep working, exactly the graceful
// degradation the real proxy implements. Recovery is automatic: a later
// epoch with a smaller (or zero) FailFraction restores nodes, with their
// contents intact.
//
// The plan is deterministic: the same Seed always fails the same nodes, so
// degradation curves are exactly reproducible.
type FailurePlan struct {
	Seed   int64
	Epochs []FailureEpoch
}

// FailureEpoch is one phase of a FailurePlan, in effect from request index
// Start until the next epoch begins (or the run ends).
type FailureEpoch struct {
	// Start is the request index at which the epoch takes effect.
	Start int64
	// FailFraction of the provisioned caching nodes is down, chosen by
	// seeded shuffle.
	FailFraction float64
	// ResolverDown disables replica lookup: nearest-replica requests fall
	// back to the shortest path toward the origin.
	ResolverDown bool
}

func (p *FailurePlan) validate() error {
	for i, ep := range p.Epochs {
		if ep.FailFraction < 0 || ep.FailFraction > 1 {
			return fmt.Errorf("sim: epoch %d FailFraction %g outside [0,1]", i, ep.FailFraction)
		}
		if ep.Start < 0 {
			return fmt.Errorf("sim: epoch %d negative Start %d", i, ep.Start)
		}
		if i > 0 && ep.Start <= p.Epochs[i-1].Start {
			return fmt.Errorf("sim: epoch %d Start %d not after epoch %d Start %d",
				i, ep.Start, i-1, p.Epochs[i-1].Start)
		}
	}
	return nil
}

// advanceFailures applies every epoch whose Start has been reached. Called
// once per request only when a plan is configured; between epoch boundaries
// it is a single comparison.
func (e *Engine) advanceFailures(i int64) {
	for e.nextEpoch < len(e.cfg.FailurePlan.Epochs) && e.cfg.FailurePlan.Epochs[e.nextEpoch].Start <= i {
		e.applyEpoch(e.cfg.FailurePlan.Epochs[e.nextEpoch], e.nextEpoch)
		e.nextEpoch++
	}
}

// applyEpoch rebuilds the failed set for one epoch: a seeded shuffle of the
// provisioned cache nodes, with the first FailFraction marked down. This
// allocates (the permutation), but only at epoch boundaries — never on the
// per-request serve path.
func (e *Engine) applyEpoch(ep FailureEpoch, idx int) {
	clear(e.failed)
	e.resolverDown = ep.ResolverDown
	if ep.FailFraction <= 0 {
		return
	}
	nodes := e.cacheNodeList()
	count := int(float64(len(nodes))*ep.FailFraction + 0.5)
	if count > len(nodes) {
		count = len(nodes)
	}
	rng := rand.New(rand.NewSource(e.cfg.FailurePlan.Seed + int64(idx)))
	for _, pi := range rng.Perm(len(nodes))[:count] {
		e.failed[nodes[pi]] = true
	}
}

// cacheNodeList returns the provisioned cache nodes in NodeID order, built
// once per Engine.
func (e *Engine) cacheNodeList() []int32 {
	if e.cacheNodes == nil {
		for n, c := range e.caches {
			if c != nil {
				e.cacheNodes = append(e.cacheNodes, int32(n))
			}
		}
		if e.cacheNodes == nil {
			e.cacheNodes = []int32{} // no caches at all; remember we looked
		}
	}
	return e.cacheNodes
}

// FailedCacheCount reports how many caching nodes are currently down.
func (e *Engine) FailedCacheCount() int {
	n := 0
	for _, down := range e.failed {
		if down {
			n++
		}
	}
	return n
}
