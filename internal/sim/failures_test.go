package sim

import (
	"reflect"
	"testing"

	"idicn/internal/topo"
	"idicn/internal/trace"
)

func TestFailurePlanValidation(t *testing.T) {
	for name, plan := range map[string]*FailurePlan{
		"fraction>1":     {Epochs: []FailureEpoch{{FailFraction: 1.5}}},
		"fraction<0":     {Epochs: []FailureEpoch{{FailFraction: -0.1}}},
		"negative start": {Epochs: []FailureEpoch{{Start: -1}}},
		"non-increasing": {Epochs: []FailureEpoch{{Start: 5}, {Start: 5}}},
	} {
		cfg := tinyConfig()
		cfg.FailurePlan = plan
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestEmptyPlanMatchesNilPlan: a plan with no epochs must not perturb the
// simulation at all.
func TestEmptyPlanMatchesNilPlan(t *testing.T) {
	reqs := []Request{req(0, 0, 0), req(0, 0, 0), req(0, 1, 1), req(1, 0, 0)}
	run := func(plan *FailurePlan) Result {
		cfg := tinyConfig()
		cfg.FailurePlan = plan
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(reqs)
	}
	a := run(nil)
	b := run(&FailurePlan{Seed: 7})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("empty plan diverged from nil plan:\n%+v\n%+v", a, b)
	}
}

// TestTotalFailureMatchesBaseline: with every cache down the run must behave
// exactly like the no-cache baseline.
func TestTotalFailureMatchesBaseline(t *testing.T) {
	reqs := []Request{req(0, 0, 0), req(0, 0, 0), req(0, 1, 0), req(1, 0, 3)}
	cfg := tinyConfig()
	base, err := Baseline(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FailurePlan = &FailurePlan{Epochs: []FailureEpoch{{Start: 0, FailFraction: 1}}}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Run(reqs); !reflect.DeepEqual(got, base) {
		t.Fatalf("total failure diverged from baseline:\n%+v\n%+v", got, base)
	}
}

// TestFailureRecovery: content cached before a blackout survives it; after
// the recovery epoch the node serves again without refetching.
func TestFailureRecovery(t *testing.T) {
	cfg := tinyConfig()
	cfg.FailurePlan = &FailurePlan{Epochs: []FailureEpoch{
		{Start: 1, FailFraction: 1}, // blackout after the warming request
		{Start: 2, FailFraction: 0}, // full recovery
	}}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same leaf, same object, three times: warm (origin), blackout (origin
	// again — the leaf copy is dark), recovered (leaf hit from the copy
	// cached by request 0).
	res := e.Run([]Request{req(0, 0, 0), req(0, 0, 0), req(0, 0, 0)})
	if res.Stats.Origin != 2 || res.Stats.Leaf != 1 {
		t.Fatalf("stats = %+v, want 2 origin serves and 1 leaf hit", res.Stats)
	}
	if e.FailedCacheCount() != 0 {
		t.Fatalf("FailedCacheCount = %d after recovery", e.FailedCacheCount())
	}
	checkStats(t, res)
}

// TestFailedCacheCountTracksEpochs: the seeded shuffle fails the requested
// fraction of provisioned caches, and only while the epoch is in effect.
func TestFailedCacheCountTracksEpochs(t *testing.T) {
	cfg := tinyConfig()
	cfg.FailurePlan = &FailurePlan{Seed: 42, Epochs: []FailureEpoch{
		{Start: 1, FailFraction: 0.5},
	}}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := e.CacheCount()
	if total == 0 {
		t.Fatal("no caches provisioned")
	}
	e.Run([]Request{req(0, 0, 0), req(0, 0, 1)})
	want := (total + 1) / 2
	if got := e.FailedCacheCount(); got != want {
		t.Fatalf("FailedCacheCount = %d, want %d of %d", got, want, total)
	}
}

// TestResolverDownDegradesNR: with the resolution system down, a
// nearest-replica request cannot reach an off-path replica and falls back to
// the shortest path toward the origin.
func TestResolverDownDegradesNR(t *testing.T) {
	// Leaf-only placement: request 0 plants a replica at PoP 0 leaf 0.
	// Request 1, from the sibling leaf, reaches that copy only through the
	// NR replica lookup — it is not on the shortest path to the origin at
	// PoP 1, and there is no root cache to mask the difference.
	run := func(down bool) Result {
		cfg := tinyConfig()
		cfg.Placement = PlacementEdge
		cfg.Routing = RouteNearestReplica
		if down {
			cfg.FailurePlan = &FailurePlan{Epochs: []FailureEpoch{{Start: 1, ResolverDown: true}}}
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run([]Request{req(0, 0, 0), req(0, 1, 0)})
	}
	up, dn := run(false), run(true)
	// Healthy: request 1 is served from the sibling leaf's replica
	// (cross-leaf NR). Down: it walks the shortest path to the origin.
	if up.Stats.Origin != 1 {
		t.Fatalf("healthy run: stats %+v, want exactly 1 origin serve", up.Stats)
	}
	if dn.Stats.Origin != 2 {
		t.Fatalf("resolver-down run: stats %+v, want both requests at the origin", dn.Stats)
	}
	if dn.MaxOriginLoad <= up.MaxOriginLoad {
		t.Fatalf("resolver-down origin load %d not worse than healthy %d", dn.MaxOriginLoad, up.MaxOriginLoad)
	}
}

// TestFailurePlanDeterminism: identical seeds produce identical results on a
// non-trivial workload; the degradation curve is exactly reproducible.
func TestFailurePlanDeterminism(t *testing.T) {
	net := topo.NewNetwork(topo.Abilene(), 2, 3)
	const objects = 500
	weights := net.Topo.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, true, 3)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests: 4000, Objects: objects, Alpha: 0.8, Seed: 11, PoPWeights: weights, Leaves: net.LeavesPerTree(),
	})
	run := func() Result {
		e, err := New(Config{
			Network: net, Objects: objects, Origins: origins,
			BudgetFraction: 0.01, BudgetPolicy: BudgetProportional,
			Placement: PlacementPervasive, Routing: RouteNearestReplica,
			FailurePlan: &FailurePlan{Seed: 99, Epochs: []FailureEpoch{
				{Start: 1000, FailFraction: 0.3},
				{Start: 2000, FailFraction: 0.3, ResolverDown: true},
				{Start: 3000, FailFraction: 0},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(reqs)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	checkStats(t, a)
}
