package sim

import (
	"fmt"
	"math"

	"idicn/internal/cache"
	"idicn/internal/topo"
)

// Engine executes a configured simulation over a request stream. Create one
// with New for each run; an Engine carries cache state and is not reusable
// across independent experiments. Engines are not safe for concurrent use.
type Engine struct {
	cfg Config
	net *topo.Network

	caches   []store // indexed by NodeID; nil where the placement has no cache
	replicas *replicaIndex

	// Load accounting (object transfers, or bytes when Sizes are given).
	treeLoad []int64
	coreLoad []int64

	originServed []int64 // per PoP
	served       []int64 // per node, within the current capacity window
	nearestOK    func(topo.NodeID) bool

	// Failure-plan state (nil/zero when Config.FailurePlan is nil).
	failed       []bool  // per node: currently blacked out
	cacheNodes   []int32 // provisioned cache nodes, built lazily
	nextEpoch    int
	resolverDown bool

	totalLatency float64
	popLatency   []float64 // per arrival PoP
	popRequests  []int64
	transfers    int64
	evictions    int64
	stats        ServeStats
	servedDepth  []int64 // histogram by serving-node tree depth; origin last

	obs Observer // optional event sink; nil-checked once per event

	// sh is non-nil when this Engine runs as one shard of a sharded
	// streaming run (RunStream): it owns the caches of its own PoPs only and
	// routes effects on other shards' nodes through epoch-exchanged buffers.
	sh *engineShard

	steps []step // scratch: request path
	resp  []step // scratch: response path for NR
	respA []step // scratch: same-tree response, source-side ascent
	respB []step // scratch: same-tree response, leaf-side ascent

	// Cooperative-lookup scratch, sized to the tree and reused across
	// requests so lookupScope performs no per-request allocation.
	scopeQueue    []scopeVisit
	scopePrev     []int32 // local -> BFS predecessor; scopeUnseen when untouched
	scopeTouched  []int32 // locals whose scopePrev entry needs resetting
	scopeAncestor []bool  // local -> is an ancestor of the current start node
	scopeAncTouch []int32 // locals whose scopeAncestor entry needs resetting
	scopePath     []int32 // last hit's path, serving node -> start node

	ran bool // Run may be called once per Engine
}

type scopeVisit struct {
	node int32
	dist int
}

// scopeUnseen marks a scopePrev entry as not yet visited by the current BFS
// (-1 is taken: it terminates path reconstruction at the start node).
const scopeUnseen = int32(-2)

type step struct {
	pop   int32
	local int32
}

// ServeStats breaks down where requests were served.
type ServeStats struct {
	Leaf    int64 // at the arrival leaf's own cache
	Sibling int64 // via scoped sibling cooperation
	Tree    int64 // at another cache within an access tree
	Core    int64 // at a backbone (PoP root) cache of another PoP
	Origin  int64 // at the origin server
}

// Result summarizes one run.
type Result struct {
	Requests      int64
	MeanLatency   float64 // mean request cost under the latency model
	MaxLinkLoad   int64   // max transfers (or bytes) on any single link
	MaxOriginLoad int64   // requests served by the busiest origin PoP
	TotalOrigin   int64   // requests served by any origin
	Transfers     int64   // total link crossings by responses
	Evictions     int64   // cache evictions during the measured window
	Stats         ServeStats

	// PoPLatency and PoPRequests break mean latency down by the PoP a
	// request arrived at, supporting the incremental-deployment analysis.
	PoPLatency  []float64 // summed latency per arrival PoP
	PoPRequests []int64

	// ServedAtDepth[d] counts requests served by a cache at tree depth d
	// (index Depth = leaves, 0 = PoP roots); the final extra entry counts
	// origin serves. This is the simulated counterpart of the paper's
	// Figure 2 level fractions.
	ServedAtDepth []int64
}

// PoPMeanLatency returns the mean latency of requests arriving at pop, or
// 0 if it received none.
func (r Result) PoPMeanLatency(pop int) float64 {
	if pop < 0 || pop >= len(r.PoPRequests) || r.PoPRequests[pop] == 0 {
		return 0
	}
	return r.PoPLatency[pop] / float64(r.PoPRequests[pop])
}

// Improvement holds the paper's three normalized metrics: percent
// improvement over the no-caching baseline in mean latency, max link
// congestion, and max origin-server load. Higher is better.
type Improvement struct {
	Latency    float64
	Congestion float64
	OriginLoad float64
}

// Improvements computes percent improvements of run over base.
func Improvements(base, run Result) Improvement {
	pct := func(b, x float64) float64 {
		if b == 0 {
			return 0
		}
		return (b - x) / b * 100
	}
	return Improvement{
		Latency:    pct(base.MeanLatency, run.MeanLatency),
		Congestion: pct(float64(base.MaxLinkLoad), float64(run.MaxLinkLoad)),
		OriginLoad: pct(float64(base.MaxOriginLoad), float64(run.MaxOriginLoad)),
	}
}

// Gap returns a - b componentwise: the paper's RelImprov_A - RelImprov_B
// comparison measure (§5).
func Gap(a, b Improvement) Improvement {
	return Improvement{
		Latency:    a.Latency - b.Latency,
		Congestion: a.Congestion - b.Congestion,
		OriginLoad: a.OriginLoad - b.OriginLoad,
	}
}

// New validates cfg and builds an Engine with freshly provisioned caches.
func New(cfg Config) (*Engine, error) { return newEngine(cfg, nil) }

func newEngine(cfg Config, sh *engineShard) (*Engine, error) {
	if cfg.Network == nil {
		return nil, fmt.Errorf("sim: nil network")
	}
	if cfg.Objects <= 0 {
		return nil, fmt.Errorf("sim: non-positive object count %d", cfg.Objects)
	}
	if len(cfg.Origins) != cfg.Objects {
		return nil, fmt.Errorf("sim: %d origins for %d objects", len(cfg.Origins), cfg.Objects)
	}
	for o, p := range cfg.Origins {
		if p < 0 || int(p) >= cfg.Network.PoPs() {
			return nil, fmt.Errorf("sim: object %d has origin PoP %d out of range", o, p)
		}
	}
	if cfg.Sizes != nil {
		// The size table is validated entirely at construction so the sized
		// store's per-insert indexing can never fail mid-run: the table must
		// cover the whole object universe with non-negative sizes, and Run
		// rejects any request whose object id falls outside that universe.
		if len(cfg.Sizes) != cfg.Objects {
			return nil, fmt.Errorf("sim: %d sizes for %d objects", len(cfg.Sizes), cfg.Objects)
		}
		for o, s := range cfg.Sizes {
			if s < 0 {
				return nil, fmt.Errorf("sim: object %d has negative size %d", o, s)
			}
		}
		if cfg.Policy != PolicyLRU {
			return nil, fmt.Errorf("sim: byte-budget caches (Sizes) support PolicyLRU only, not %v", cfg.Policy)
		}
	}
	if cfg.BudgetFraction < 0 {
		return nil, fmt.Errorf("sim: negative budget fraction")
	}
	if cfg.Placement == PlacementEdgeLevels && (cfg.EdgeLevels < 1 || cfg.EdgeLevels > cfg.Network.Depth+1) {
		return nil, fmt.Errorf("sim: EdgeLevels %d out of range", cfg.EdgeLevels)
	}
	if cfg.Latency == LatencyCoreMultiplier && cfg.CoreFactor <= 0 {
		cfg.CoreFactor = 1
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("sim: negative capacity")
	}
	if cfg.Capacity > 0 && cfg.CapacityWindow <= 0 {
		return nil, fmt.Errorf("sim: Capacity set without a positive CapacityWindow")
	}
	if cfg.WarmupRequests < 0 {
		return nil, fmt.Errorf("sim: negative WarmupRequests")
	}
	if cfg.Deployed != nil && len(cfg.Deployed) != cfg.Network.PoPs() {
		return nil, fmt.Errorf("sim: Deployed has %d entries for %d PoPs", len(cfg.Deployed), cfg.Network.PoPs())
	}
	if cfg.EdgeBudgetMultiplier == 0 {
		cfg.EdgeBudgetMultiplier = 1
	}
	if cfg.CoopScope < 0 {
		return nil, fmt.Errorf("sim: negative CoopScope")
	}
	if cfg.SiblingCoop && cfg.CoopScope == 0 {
		cfg.CoopScope = 2 // sibling via the shared parent
	}
	if cfg.FailurePlan != nil {
		if err := cfg.FailurePlan.validate(); err != nil {
			return nil, err
		}
	}

	net := cfg.Network
	e := &Engine{
		cfg:          cfg,
		net:          net,
		caches:       make([]store, net.NodeCount()),
		treeLoad:     make([]int64, net.TreeLinks()),
		coreLoad:     make([]int64, net.CoreLinks()),
		originServed: make([]int64, net.PoPs()),
		popLatency:   make([]float64, net.PoPs()),
		popRequests:  make([]int64, net.PoPs()),
		servedDepth:  make([]int64, net.Depth+2),
		obs:          cfg.Observer,
	}
	if cfg.Routing == RouteNearestReplica {
		e.replicas = newReplicaIndex(cfg.Objects)
	}
	if cfg.Capacity > 0 {
		e.served = make([]int64, net.NodeCount())
	}
	if cfg.CoopScope > 0 {
		e.scopePrev = make([]int32, net.TreeSize())
		for i := range e.scopePrev {
			e.scopePrev[i] = scopeUnseen
		}
		e.scopeAncestor = make([]bool, net.TreeSize())
	}
	if cfg.FailurePlan != nil {
		e.failed = make([]bool, net.NodeCount())
	}
	e.sh = sh
	e.nearestOK = func(n topo.NodeID) bool { return e.admissibleAny(n) }
	e.provisionCaches()
	return e, nil
}

// hasCacheLocal reports whether the placement puts a cache at a tree-local
// index.
func (e *Engine) hasCacheLocal(local int32) bool {
	switch e.cfg.Placement {
	case PlacementPervasive:
		return true
	case PlacementEdge:
		return e.net.IsLeaf(local)
	case PlacementEdgeLevels:
		return e.net.DepthOf(local) > e.net.Depth-e.cfg.EdgeLevels
	}
	return false
}

func (e *Engine) provisionCaches() {
	e.forEachProvision(func(pop int, node topo.NodeID, capEntries int, slots, meanSize float64) {
		if e.sh != nil && !e.sh.ownPoP[pop] {
			return // another shard owns this PoP's caches
		}
		e.caches[node] = e.newStore(node, capEntries, slots, meanSize)
	})
}

// forEachProvision runs the placement: it visits every node the config puts
// a usable cache at, with its computed size. provisionCaches materializes
// the stores; sharded runs also use it to learn the global cache layout.
func (e *Engine) forEachProvision(fn func(pop int, node topo.NodeID, capEntries int, slots, meanSize float64)) {
	net := e.net
	cfg := e.cfg
	weights := net.Topo.PopulationWeights()
	var meanSize float64
	if cfg.Sizes != nil {
		var sum int64
		for _, s := range cfg.Sizes {
			sum += s
		}
		meanSize = float64(sum) / float64(cfg.Objects)
	}
	for pop := 0; pop < net.PoPs(); pop++ {
		if cfg.Deployed != nil && !cfg.Deployed[pop] {
			continue
		}
		// Per-router budget in object slots, before the edge multiplier.
		var perRouter float64
		switch cfg.BudgetPolicy {
		case BudgetUniform:
			perRouter = cfg.BudgetFraction * float64(cfg.Objects)
		case BudgetProportional:
			total := cfg.BudgetFraction * float64(net.NodeCount()) * float64(cfg.Objects)
			perRouter = total * weights[pop] / float64(net.TreeSize())
		}
		for local := int32(0); local < int32(net.TreeSize()); local++ {
			if !e.hasCacheLocal(local) {
				continue
			}
			slots := perRouter * cfg.EdgeBudgetMultiplier
			capEntries := int(math.Round(slots))
			if capEntries > cfg.Objects || cfg.BudgetFraction >= 1 {
				capEntries = cfg.Objects
			}
			// A store that can hold nothing is no cache at all: skip it so
			// zero-budget runs (notably the no-cache baseline) pay no
			// per-node lookups. Results are unchanged — an empty store can
			// never hit — only faster.
			if cfg.Sizes != nil {
				if int64(math.Round(slots*meanSize)) <= 0 {
					continue
				}
			} else if capEntries <= 0 {
				continue
			}
			node := net.Node(pop, local)
			fn(pop, node, capEntries, slots, meanSize)
		}
	}
}

func (e *Engine) newStore(node topo.NodeID, capEntries int, slots, meanSize float64) store {
	// The eviction hook keeps the replica index honest, feeds the run's
	// eviction total, and (when an Observer is attached) emits one EvictEvent
	// per displaced object. PoP and depth are resolved once, at provisioning.
	pop, local := e.net.Split(node)
	depth := e.net.DepthOf(local)
	onEvict := func(obj int32) {
		e.evictions++
		if e.replicas != nil {
			e.riRemove(obj, node)
		}
		if e.sh != nil && local == 0 {
			e.clearRootBit(pop, obj)
		}
		if e.obs != nil {
			e.obs.ObserveEvict(EvictEvent{PoP: int32(pop), Depth: depth, Object: obj})
		}
	}
	if e.cfg.Sizes != nil {
		budget := int64(math.Round(slots * meanSize))
		return sizedStore{c: cache.NewSizedIntLRU(budget, onEvict), sizes: e.cfg.Sizes}
	}
	// Every policy implements cache.Policy, so provisioning is a plain
	// constructor switch: no adapter structs, one eviction hook shape.
	switch e.cfg.Policy {
	case PolicyLFU:
		return cache.NewIntLFU(capEntries, onEvict)
	case PolicyARC:
		return cache.NewARC(capEntries, onEvict)
	case PolicyCAR:
		return cache.NewCAR(capEntries, onEvict)
	case PolicyTinyLFU:
		return cache.NewTinyLFULRU(capEntries, onEvict)
	case PolicyTinyLFUARC:
		return cache.NewTinyLFU(cache.NewARC(capEntries, onEvict), capEntries)
	case PolicyTinyLFUCAR:
		return cache.NewTinyLFU(cache.NewCAR(capEntries, onEvict), capEntries)
	default:
		return cache.NewIntLRU(capEntries, onEvict)
	}
}

// CacheCount returns the number of routers that carry a usable cache. The
// no-cache baseline provisions zero.
func (e *Engine) CacheCount() int {
	n := 0
	for _, c := range e.caches {
		if c != nil {
			n++
		}
	}
	return n
}

// admissible reports whether a cache node may serve right now (exists, is not
// blacked out by the failure plan, and is under its capacity limit).
//
//icn:noalloc
func (e *Engine) admissible(n topo.NodeID) bool {
	if e.caches[n] == nil {
		return false
	}
	if e.failed != nil && e.failed[n] {
		return false
	}
	if e.served == nil {
		return true
	}
	return e.served[n] < e.cfg.Capacity
}

// edgeCost returns the latency cost of one hop under the configured model.
// For tree hops, childDepth is the depth of the lower endpoint; core hops
// pass childDepth < 0.
//
//icn:noalloc
func (e *Engine) edgeCost(childDepth int) float64 {
	switch e.cfg.Latency {
	case LatencyArithmetic:
		if childDepth < 0 {
			return float64(e.net.Depth + 1)
		}
		return float64(e.net.Depth - childDepth + 1)
	case LatencyCoreMultiplier:
		if childDepth < 0 {
			return e.cfg.CoreFactor
		}
		return 1
	default:
		return 1
	}
}

// loadOf returns the congestion weight of transferring obj across one link.
//
//icn:noalloc
func (e *Engine) loadOf(obj int32) int64 {
	if e.cfg.Sizes != nil {
		return e.cfg.Sizes[obj]
	}
	return 1
}

// Run simulates the request stream and returns the run's metrics. When
// Config.WarmupRequests is set, the first that many requests exercise the
// caches but are excluded from every reported metric. Run may be called
// exactly once per Engine — cache state is cumulative, so a second call
// would silently report metrics over pre-warmed caches; it panics instead.
func (e *Engine) Run(reqs []Request) Result {
	if e.ran {
		panic("sim: Engine.Run called twice; cache state is cumulative, create a new Engine (sim.New) per run")
	}
	e.ran = true
	e.validateRequests(reqs)
	warmup := e.cfg.WarmupRequests
	if warmup > len(reqs) {
		warmup = len(reqs)
	}
	var snap *snapshot
	for i, q := range reqs {
		if i == warmup && warmup > 0 {
			snap = e.snapshot()
		}
		if e.served != nil && i%e.cfg.CapacityWindow == 0 {
			clear(e.served)
		}
		if e.failed != nil {
			e.advanceFailures(int64(i))
		}
		e.serveRequest(q)
	}
	if warmup > 0 && snap == nil {
		// The whole stream was warmup.
		snap = e.snapshot()
	}
	return e.result(int64(len(reqs)-warmup), snap)
}

// validateRequests checks every request's PoP, leaf, and object id against
// the configured topology and object universe before the serve loop starts.
// Trace bugs therefore fail fast with a description of the bad request
// instead of an index-out-of-range deep inside a cache store (the sized
// store indexes the size table by object id) partway through a run.
func (e *Engine) validateRequests(reqs []Request) {
	net := e.cfg.Network
	pops := int32(net.PoPs())
	leaves := int32(net.LeavesPerTree())
	objects := int32(e.cfg.Objects)
	for i, q := range reqs {
		if q.PoP < 0 || q.PoP >= pops {
			panic(fmt.Sprintf("sim: request %d has PoP %d, want [0, %d)", i, q.PoP, pops))
		}
		if q.Leaf < 0 || q.Leaf >= leaves {
			panic(fmt.Sprintf("sim: request %d has leaf %d, want [0, %d)", i, q.Leaf, leaves))
		}
		if q.Object < 0 || q.Object >= objects {
			panic(fmt.Sprintf("sim: request %d has object %d, want [0, %d)", i, q.Object, objects))
		}
	}
}

// snapshot captures every metric counter so post-warmup deltas can be
// reported. Per-link and per-origin arrays are copied because maxima must
// be taken over differences, not differenced maxima.
type snapshot struct {
	totalLatency float64
	popLatency   []float64
	popRequests  []int64
	transfers    int64
	evictions    int64
	stats        ServeStats
	servedDepth  []int64
	treeLoad     []int64
	coreLoad     []int64
	originServed []int64
}

func (e *Engine) snapshot() *snapshot {
	return &snapshot{
		totalLatency: e.totalLatency,
		popLatency:   append([]float64(nil), e.popLatency...),
		popRequests:  append([]int64(nil), e.popRequests...),
		transfers:    e.transfers,
		evictions:    e.evictions,
		stats:        e.stats,
		servedDepth:  append([]int64(nil), e.servedDepth...),
		treeLoad:     append([]int64(nil), e.treeLoad...),
		coreLoad:     append([]int64(nil), e.coreLoad...),
		originServed: append([]int64(nil), e.originServed...),
	}
}

func (e *Engine) result(n int64, snap *snapshot) Result {
	if snap == nil {
		snap = &snapshot{
			popLatency:   make([]float64, len(e.popLatency)),
			popRequests:  make([]int64, len(e.popRequests)),
			servedDepth:  make([]int64, len(e.servedDepth)),
			treeLoad:     make([]int64, len(e.treeLoad)),
			coreLoad:     make([]int64, len(e.coreLoad)),
			originServed: make([]int64, len(e.originServed)),
		}
	}
	res := Result{
		Requests:  n,
		Transfers: e.transfers - snap.transfers,
		Evictions: e.evictions - snap.evictions,
		Stats: ServeStats{
			Leaf:    e.stats.Leaf - snap.stats.Leaf,
			Sibling: e.stats.Sibling - snap.stats.Sibling,
			Tree:    e.stats.Tree - snap.stats.Tree,
			Core:    e.stats.Core - snap.stats.Core,
			Origin:  e.stats.Origin - snap.stats.Origin,
		},
		PoPLatency:    make([]float64, len(e.popLatency)),
		PoPRequests:   make([]int64, len(e.popRequests)),
		ServedAtDepth: make([]int64, len(e.servedDepth)),
	}
	for i := range e.popLatency {
		res.PoPLatency[i] = e.popLatency[i] - snap.popLatency[i]
		res.PoPRequests[i] = e.popRequests[i] - snap.popRequests[i]
	}
	for i := range e.servedDepth {
		res.ServedAtDepth[i] = e.servedDepth[i] - snap.servedDepth[i]
	}
	if n > 0 {
		res.MeanLatency = (e.totalLatency - snap.totalLatency) / float64(n)
	}
	for i, l := range e.treeLoad {
		if d := l - snap.treeLoad[i]; d > res.MaxLinkLoad {
			res.MaxLinkLoad = d
		}
	}
	for i, l := range e.coreLoad {
		if d := l - snap.coreLoad[i]; d > res.MaxLinkLoad {
			res.MaxLinkLoad = d
		}
	}
	for i, s := range e.originServed {
		d := s - snap.originServed[i]
		res.TotalOrigin += d
		if d > res.MaxOriginLoad {
			res.MaxOriginLoad = d
		}
	}
	return res
}

// addLatency charges a request's latency to the totals and its arrival PoP.
//
//icn:noalloc
func (e *Engine) addLatency(pop int32, v float64) {
	e.totalLatency += v
	e.popLatency[pop] += v
	e.popRequests[pop]++
}

// finish completes one request: it charges the latency and, when an Observer
// is attached, emits the serve event. The nil check is the observability
// layer's entire hot-path cost when disabled.
//
//icn:noalloc
func (e *Engine) finish(q Request, level ServeLevel, depth, lookupHops int, latency float64) {
	e.addLatency(q.PoP, latency)
	if e.obs != nil {
		e.obs.ObserveServe(ServeEvent{
			PoP:        q.PoP,
			Object:     q.Object,
			Level:      level,
			Depth:      depth,
			LookupHops: lookupHops,
			Latency:    latency,
		})
	}
}

//icn:noalloc
func (e *Engine) serveRequest(q Request) {
	if e.cfg.Routing == RouteNearestReplica {
		// With the resolution system down (FailureEpoch.ResolverDown) the
		// replica lookup is unavailable; the request degrades to the shortest
		// path toward the origin, still served by any on-path cache — the
		// simulator's analogue of the proxy's direct-to-origin fallback.
		if e.resolverDown {
			e.serveShortestPath(q)
			return
		}
		e.serveNearestReplica(q)
		return
	}
	e.serveShortestPath(q)
}

// serveShortestPath walks the request up its access tree and across the
// backbone toward the origin, serving from the first admissible cache hit
// (with optional sibling cooperation), else from the origin.
//
//icn:noalloc
func (e *Engine) serveShortestPath(q Request) {
	net := e.net
	pop := int(q.PoP)
	origin := int(e.cfg.Origins[q.Object])
	// Build the request path: up the tree, then across the core.
	e.steps = e.steps[:0]
	for l := net.LeafStart() + q.Leaf; l != 0; l = net.Parent(l) {
		e.steps = append(e.steps, step{pop: q.PoP, local: l})
	}
	e.steps = append(e.steps, step{pop: q.PoP, local: 0})
	if pop != origin {
		for p := pop; p != origin; {
			p = net.CoreNextHop(p, origin)
			e.steps = append(e.steps, step{pop: int32(p), local: 0})
		}
	}

	latency := 0.0
	for i, st := range e.steps {
		node := net.Node(int(st.pop), st.local)
		atOrigin := i == len(e.steps)-1
		if !atOrigin && e.pathHit(node, q.Object) {
			level := e.recordServe(node, i, q)
			e.deliver(i, q.Object)
			e.finish(q, level, net.DepthOf(st.local), 0, latency)
			return
		}
		// Scoped cooperation: a caching node that missed checks every cache
		// within CoopScope tree hops (nearest first) before forwarding
		// upward (§3's "cooperative caching within a small search scope").
		if e.cfg.CoopScope > 0 && !atOrigin && st.local > 0 && e.caches[node] != nil {
			if peer, path, ok := e.lookupScope(int(st.pop), st.local, q.Object); ok {
				peerNode := net.Node(int(st.pop), peer)
				e.stats.Sibling++
				e.markServed(peerNode)
				detour := 0.0
				for k := 1; k < len(path); k++ {
					detour += e.treeEdgeCost(path[k-1], path[k])
				}
				e.finish(q, ServeSibling, net.DepthOf(peer), len(path)-1, latency+detour)
				e.deliverVia(i, path, q)
				return
			}
		}
		if atOrigin {
			e.originServed[origin]++
			e.stats.Origin++
			e.servedDepth[len(e.servedDepth)-1]++
			e.deliver(i, q.Object)
			e.finish(q, ServeOrigin, -1, 0, latency)
			return
		}
		// Advance one hop toward the origin.
		next := e.steps[i+1]
		if st.pop == next.pop {
			latency += e.edgeCost(net.DepthOf(st.local))
		} else {
			latency += e.edgeCost(-1)
		}
	}
}

// lookupScope breadth-first searches the access tree around local, out to
// CoopScope hops, for an admissible cache holding obj. Ancestors of local
// are traversed but not used as candidates (the shortest-path walk checks
// them anyway). On a hit it returns the serving node and the tree path from
// it back to local, and touches the serving cache.
//
// All working state (BFS queue, predecessor table, ancestor marks, result
// path) lives in Engine scratch slices reused across requests; the returned
// path aliases e.scopePath and is valid until the next lookupScope call.
//
//icn:noalloc
func (e *Engine) lookupScope(pop int, local int32, obj int32) (int32, []int32, bool) {
	net := e.net
	// Ancestors of local are excluded as candidates.
	e.scopeAncTouch = e.scopeAncTouch[:0]
	for a := local; ; a = net.Parent(a) {
		e.scopeAncestor[a] = true
		e.scopeAncTouch = append(e.scopeAncTouch, a)
		if a == 0 {
			break
		}
	}
	e.scopeTouched = e.scopeTouched[:0]
	e.scopePrev[local] = -1
	e.scopeTouched = append(e.scopeTouched, local)
	e.scopeQueue = append(e.scopeQueue[:0], scopeVisit{node: local, dist: 0})
	defer e.resetScopeScratch()
	for qi := 0; qi < len(e.scopeQueue); qi++ {
		v := e.scopeQueue[qi]
		if v.node != local && !e.scopeAncestor[v.node] {
			node := net.Node(pop, v.node)
			if e.admissible(node) && e.caches[node].Contains(obj) {
				e.caches[node].Lookup(obj) // touch recency on the serving cache
				// Reconstruct the path serving -> ... -> local.
				e.scopePath = e.scopePath[:0]
				for n := v.node; n != -1; n = e.scopePrev[n] {
					e.scopePath = append(e.scopePath, n)
				}
				return v.node, e.scopePath, true
			}
		}
		if v.dist == e.cfg.CoopScope {
			continue
		}
		// Deterministic neighbor order: parent first, then children.
		if p := net.Parent(v.node); p >= 0 {
			if e.scopePrev[p] == scopeUnseen {
				e.scopePrev[p] = v.node
				e.scopeTouched = append(e.scopeTouched, p)
				e.scopeQueue = append(e.scopeQueue, scopeVisit{node: p, dist: v.dist + 1})
			}
		}
		if c := net.FirstChild(v.node); c >= 0 {
			for k := int32(0); k < int32(net.Arity); k++ {
				child := c + k
				if int(child) >= net.TreeSize() {
					break
				}
				if e.scopePrev[child] == scopeUnseen {
					e.scopePrev[child] = v.node
					e.scopeTouched = append(e.scopeTouched, child)
					e.scopeQueue = append(e.scopeQueue, scopeVisit{node: child, dist: v.dist + 1})
				}
			}
		}
	}
	return 0, nil, false
}

// resetScopeScratch restores the touched entries of the cooperative-lookup
// tables to their idle state, in O(nodes visited) rather than O(tree size).
//
//icn:noalloc
func (e *Engine) resetScopeScratch() {
	for _, n := range e.scopeTouched {
		e.scopePrev[n] = scopeUnseen
	}
	for _, a := range e.scopeAncTouch {
		e.scopeAncestor[a] = false
	}
}

// treeEdgeCost returns the latency cost of the tree edge between two
// adjacent locals.
//
//icn:noalloc
func (e *Engine) treeEdgeCost(a, b int32) float64 {
	child := a
	if e.net.DepthOf(b) > e.net.DepthOf(a) {
		child = b
	}
	return e.edgeCost(e.net.DepthOf(child))
}

// recordServe updates serve statistics for a cache hit at request-path index
// i, charges the node's capacity, and returns where the hit landed.
//
//icn:noalloc
func (e *Engine) recordServe(node topo.NodeID, i int, q Request) ServeLevel {
	e.markServed(node)
	_, local := e.net.Split(node)
	switch {
	case i == 0:
		e.stats.Leaf++
		return ServeLeaf
	case local != 0 || e.steps[i].pop == q.PoP:
		e.stats.Tree++
		return ServeTree
	default:
		e.stats.Core++
		return ServeCore
	}
}

//icn:noalloc
func (e *Engine) markServed(node topo.NodeID) {
	if e.served != nil {
		e.served[node]++
	}
	_, local := e.net.Split(node)
	e.servedDepth[e.net.DepthOf(local)]++
}

// deliver ships the object from request-path index srcIdx back to the leaf
// (index 0), charging each link crossed and inserting the object at every
// caching node on the way (the serving node itself was already touched).
//
//icn:noalloc
func (e *Engine) deliver(srcIdx int, obj int32) {
	load := e.loadOf(obj)
	for i := srcIdx - 1; i >= 0; i-- {
		a, b := e.steps[i], e.steps[i+1] // a is nearer the leaf
		e.chargeLink(a, b, load)
		node := e.net.Node(int(a.pop), a.local)
		if e.caches[node] != nil {
			e.insert(node, obj)
		} else if e.sh != nil {
			e.remoteInsert(node, obj)
		}
	}
	if srcIdx > 0 {
		e.transfers += int64(srcIdx)
	}
}

// deliverVia ships the object along a tree path from a cooperating cache
// (path[0]) to the request-path node at missIdx (path[len-1]), then down the
// original request path to the leaf. Every caching node on the way except
// the server stores the object.
//
//icn:noalloc
func (e *Engine) deliverVia(missIdx int, path []int32, q Request) {
	load := e.loadOf(q.Object)
	pop := int(e.steps[missIdx].pop)
	for k := 1; k < len(path); k++ {
		a, b := path[k-1], path[k]
		child := a
		if e.net.DepthOf(b) > e.net.DepthOf(a) {
			child = b
		}
		e.treeLoad[e.net.TreeLinkIndex(pop, child)] += load
		e.transfers++
		if n := e.net.Node(pop, b); e.caches[n] != nil {
			e.insert(n, q.Object)
		}
	}
	// Continue down the original request path to the leaf.
	e.deliver(missIdx, q.Object)
}

//icn:noalloc
func (e *Engine) chargeLink(a, b step, load int64) {
	if a.pop == b.pop {
		// Tree link identified by its lower endpoint (the deeper local).
		child := a.local
		if e.net.DepthOf(b.local) > e.net.DepthOf(a.local) {
			child = b.local
		}
		e.treeLoad[e.net.TreeLinkIndex(int(a.pop), child)] += load
	} else {
		e.coreLoad[e.net.CoreLinkIndex(int(a.pop), int(b.pop))] += load
	}
}

//icn:noalloc
func (e *Engine) insert(node topo.NodeID, obj int32) {
	if e.failed != nil && e.failed[node] {
		return // a blacked-out node neither serves nor admits new content
	}
	e.caches[node].Insert(obj)
	if e.replicas == nil && e.sh == nil {
		return
	}
	if !e.caches[node].Contains(obj) {
		return // sized caches may reject oversize objects
	}
	if e.replicas != nil {
		e.riAdd(obj, node)
	}
	e.setRootBit(node, obj)
}

// serveNearestReplica implements ICN-NR: the request goes to the closest
// cached copy (zero-cost lookup), falling back to the origin when the origin
// is at least as close or no admissible replica exists.
//
//icn:noalloc
func (e *Engine) serveNearestReplica(q Request) {
	net := e.net
	pop := int(q.PoP)
	leafLocal := net.LeafStart() + q.Leaf
	origin := int(e.cfg.Origins[q.Object])

	// Fast path: a copy at the arrival leaf is globally nearest (distance
	// 0), so the replica scan can be skipped. Popular objects — the bulk of
	// a Zipf workload — take this path.
	if leafNode := net.Node(pop, leafLocal); e.admissible(leafNode) && e.caches[leafNode].Contains(q.Object) {
		e.caches[leafNode].Lookup(q.Object)
		e.serveFromNode(q, leafNode, leafLocal, 0, 0)
		return
	}

	var originDist int
	if origin == pop {
		originDist = net.DepthOf(leafLocal)
	} else {
		originDist = net.DepthOf(leafLocal) + net.CoreDist(pop, origin)
	}

	node, dist, found := e.replicas.nearest(net, pop, leafLocal, q.Object, e.nearestOK)
	if found && node == net.Node(origin, 0) {
		// The origin PoP's root cache is indistinguishable from the origin
		// itself (same location, same distance): account it as the origin.
		found = false
	}
	if found && dist <= originDist {
		if c := e.caches[node]; c != nil {
			c.Lookup(q.Object) // touch the serving cache
		} else {
			e.remoteTouch(node, q.Object) // the owning shard touches at the barrier
		}
		e.serveFromNode(q, node, leafLocal, dist, e.cfg.NRLookupPenalty)
		return
	}
	// Origin serves; response returns along the shortest path.
	e.originServed[origin]++
	e.stats.Origin++
	e.servedDepth[len(e.servedDepth)-1]++
	e.serveFromNode(q, net.Node(origin, 0), leafLocal, 0, 0)
}

// serveFromNode accounts latency, link loads, and response-path caching for
// a response travelling from src to the request leaf. lookupHops records how
// far the replica lookup reached (0 for leaf hits and origin serves) and
// extra is a fixed latency surcharge (the NR lookup penalty), both folded
// into the request's completion accounting.
//
//icn:noalloc
func (e *Engine) serveFromNode(q Request, src topo.NodeID, leafLocal int32, lookupHops int, extra float64) {
	net := e.net
	pop := int(q.PoP)
	srcPop, srcLocal := net.Split(src)
	e.resp = e.resp[:0]

	if srcPop == pop {
		// Same tree: src up to the LCA, then down to the leaf. The two
		// ascents land in reused Engine scratch, not per-request slices.
		a, b := srcLocal, leafLocal
		upA, upB := e.respA[:0], e.respB[:0]
		for a != b {
			da, db := net.DepthOf(a), net.DepthOf(b)
			if da >= db {
				upA = append(upA, step{pop: q.PoP, local: a})
				a = net.Parent(a)
			} else {
				upB = append(upB, step{pop: q.PoP, local: b})
				b = net.Parent(b)
			}
		}
		e.respA, e.respB = upA, upB
		e.resp = append(e.resp, upA...)
		e.resp = append(e.resp, step{pop: q.PoP, local: a}) // the LCA
		for i := len(upB) - 1; i >= 0; i-- {
			e.resp = append(e.resp, upB[i])
		}
	} else {
		// Up the remote tree, across the core, down the local tree.
		for l := srcLocal; l != 0; l = net.Parent(l) {
			e.resp = append(e.resp, step{pop: int32(srcPop), local: l})
		}
		e.resp = append(e.resp, step{pop: int32(srcPop), local: 0})
		for p := srcPop; p != pop; {
			p = net.CoreNextHop(p, pop)
			e.resp = append(e.resp, step{pop: int32(p), local: 0})
		}
		// Down from the local root to the leaf: ancestors in reverse.
		base := len(e.resp)
		for l := leafLocal; l != 0; l = net.Parent(l) {
			e.resp = append(e.resp, step{pop: q.PoP, local: l})
		}
		for i, j := base, len(e.resp)-1; i < j; i, j = i+1, j-1 {
			e.resp[i], e.resp[j] = e.resp[j], e.resp[i]
		}
	}

	// Serve statistics for cache hits (origin hits were counted already).
	level, depth := ServeOrigin, -1
	if e.cacheAt(src) && !(srcPop == int(e.cfg.Origins[q.Object]) && srcLocal == 0) {
		e.markServed(src)
		depth = net.DepthOf(srcLocal)
		switch {
		case src == net.Node(pop, leafLocal):
			e.stats.Leaf++
			level = ServeLeaf
		case srcPop == pop || srcLocal != 0:
			e.stats.Tree++
			level = ServeTree
		default:
			e.stats.Core++
			level = ServeCore
		}
	}

	// Walk the response path: accumulate latency, charge links, insert at
	// caching nodes (all but the source).
	load := e.loadOf(q.Object)
	latency := 0.0
	for i := 1; i < len(e.resp); i++ {
		a, b := e.resp[i-1], e.resp[i]
		if a.pop == b.pop {
			child := a.local
			if net.DepthOf(b.local) > net.DepthOf(a.local) {
				child = b.local
			}
			latency += e.edgeCost(net.DepthOf(child))
		} else {
			latency += e.edgeCost(-1)
		}
		e.chargeLink(a, b, load)
		node := net.Node(int(b.pop), b.local)
		if e.caches[node] != nil {
			e.insert(node, q.Object)
		} else if e.sh != nil {
			e.remoteInsert(node, q.Object)
		}
	}
	e.transfers += int64(len(e.resp) - 1)
	e.finish(q, level, depth, lookupHops, latency+extra)
}
