// Package sim implements the paper's request-level caching simulator (§4.1):
// a network of caches over PoP-level topologies with per-PoP access trees,
// the design space of cache placement x request routing, and the three
// evaluation metrics — query latency, link congestion, and origin-server
// load — reported as improvements over a no-caching baseline.
//
// The simulator is deliberately request-granular: no packet, TCP, or queueing
// effects are modelled, matching the paper's methodology. Nearest-replica
// routing and cooperative lookups are charged zero overhead, the paper's
// conservative assumption in ICN's favor.
package sim

import (
	"fmt"
	"strings"

	"idicn/internal/topo"
	"idicn/internal/trace"
)

// Placement selects which routers carry content caches (paper §3, Figure 3).
type Placement int

const (
	// PlacementPervasive caches at every router, the ICN extreme.
	PlacementPervasive Placement = iota
	// PlacementEdge caches only at access-tree leaves, the EDGE design.
	PlacementEdge
	// PlacementEdgeLevels caches at the bottom EdgeLevels levels of each
	// access tree (EdgeLevels=2 is the paper's "2-Levels" EDGE extension).
	PlacementEdgeLevels
)

// Routing selects how requests locate content (paper §3, Figure 4).
type Routing int

const (
	// RouteShortestPath sends requests along the shortest path toward the
	// origin server; any cache on the path may answer.
	RouteShortestPath Routing = iota
	// RouteNearestReplica routes requests to the closest cached copy,
	// located with zero lookup cost (the ICN-NR idealization).
	RouteNearestReplica
)

// BudgetPolicy selects how the global cache budget is divided across PoPs
// (paper §4.1 "Cache provisioning").
type BudgetPolicy int

const (
	// BudgetProportional gives each PoP a share proportional to its
	// population, split equally within its access tree.
	BudgetProportional BudgetPolicy = iota
	// BudgetUniform gives every router the same capacity.
	BudgetUniform
)

// CachePolicy selects the replacement (and admission) policy every
// provisioned cache runs. All policies implement cache.Policy, so switching
// is purely a constructor choice in the engine; see ParseCachePolicy for the
// icnsim -policy spellings.
type CachePolicy int

const (
	// PolicyLRU is the paper's default ("LRU performs near-optimally").
	PolicyLRU CachePolicy = iota
	// PolicyLFU is the alternative the paper reports as qualitatively
	// similar (frequency buckets; the one zoo member that allocates on its
	// hit path, kept for comparison rather than line-rate use).
	PolicyLFU
	// PolicyARC is the Adaptive Replacement Cache: a self-tuning
	// recency/frequency balance with ghost lists, scan-resistant where LRU
	// is not.
	PolicyARC
	// PolicyCAR is Compact CAR, the CLOCK/ARC hybrid proposed for ICN
	// line-rate routers: ARC's adaptivity with a reference-bit-only hit
	// path.
	PolicyCAR
	// PolicyTinyLFU is LRU guarded by a TinyLFU admission filter (4-bit
	// count-min sketch with periodic halving): one-hit wonders are denied
	// entry instead of displacing proven content.
	PolicyTinyLFU
	// PolicyTinyLFUARC composes the TinyLFU admission filter over an ARC
	// victim cache: admission screens one-hit wonders, ARC adapts the
	// recency/frequency split of what gets in.
	PolicyTinyLFUARC
	// PolicyTinyLFUCAR composes the TinyLFU admission filter over Compact
	// CAR, pairing the sketch-guarded door with the reference-bit hit path.
	PolicyTinyLFUCAR
)

// String returns the policy's display name, used in sweep tables and flag
// diagnostics.
func (p CachePolicy) String() string {
	switch p {
	case PolicyLRU:
		return "LRU"
	case PolicyLFU:
		return "LFU"
	case PolicyARC:
		return "ARC"
	case PolicyCAR:
		return "CAR"
	case PolicyTinyLFU:
		return "TinyLFU"
	case PolicyTinyLFUARC:
		return "TinyLFU+ARC"
	case PolicyTinyLFUCAR:
		return "TinyLFU+CAR"
	}
	return "CachePolicy(?)"
}

// ParseCachePolicy resolves an icnsim -policy flag value (lru, lfu, arc,
// car, tinylfu, tinylfu+arc, tinylfu+car; case-insensitive).
func ParseCachePolicy(s string) (CachePolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "lru":
		return PolicyLRU, nil
	case "lfu":
		return PolicyLFU, nil
	case "arc":
		return PolicyARC, nil
	case "car":
		return PolicyCAR, nil
	case "tinylfu", "tlfu":
		return PolicyTinyLFU, nil
	case "tinylfu+arc", "tlfu+arc":
		return PolicyTinyLFUARC, nil
	case "tinylfu+car", "tlfu+car":
		return PolicyTinyLFUCAR, nil
	}
	return PolicyLRU, fmt.Errorf("sim: unknown cache policy %q (want lru, lfu, arc, car, tinylfu, tinylfu+arc, or tinylfu+car)", s)
}

// CachePolicies returns every policy in sweep order.
func CachePolicies() []CachePolicy {
	return []CachePolicy{PolicyLRU, PolicyLFU, PolicyARC, PolicyCAR, PolicyTinyLFU, PolicyTinyLFUARC, PolicyTinyLFUCAR}
}

// LatencyModel selects per-hop latency costs (§5.1 "Other parameters").
type LatencyModel int

const (
	// LatencyUnit charges one unit per hop (the baseline).
	LatencyUnit LatencyModel = iota
	// LatencyArithmetic charges hops an arithmetic progression toward the
	// core: the leaf uplink costs 1, each level above costs one more, and
	// backbone hops cost depth+1.
	LatencyArithmetic
	// LatencyCoreMultiplier charges tree hops 1 and backbone hops
	// CoreFactor, the paper's "latency of each hop at the core network is d
	// times higher" model.
	LatencyCoreMultiplier
)

// Config fully describes one simulation run.
type Config struct {
	Network *topo.Network
	Objects int
	// Origins maps each object to the PoP hosting it (see
	// trace.OriginAssignment).
	Origins []int32
	// Sizes optionally gives per-object sizes for the heterogeneous-size
	// analysis; nil means unit-size objects and entry-count caches.
	Sizes []int64

	// BudgetFraction is F: the network's total cache capacity is
	// F * routers * objects (§4.1). Values >= 1 give effectively infinite
	// caches.
	BudgetFraction float64
	BudgetPolicy   BudgetPolicy
	// EdgeBudgetMultiplier scales the capacity of caching nodes under edge
	// placements (EDGE-Norm uses TreeSize/Leaves to equalize totals;
	// Double-Budget doubles that). Zero means 1.
	EdgeBudgetMultiplier float64

	Placement  Placement
	EdgeLevels int // for PlacementEdgeLevels; number of bottom levels cached

	Routing     Routing
	SiblingCoop bool // scoped sibling lookup at caching nodes (EDGE-Coop)
	// CoopScope generalizes SiblingCoop to the paper's "cooperative caching
	// within a small search scope" (§3): a caching node that misses checks
	// every cache within this tree distance (nearest first) before
	// forwarding upward. 0 disables; SiblingCoop is equivalent to scope 2.
	CoopScope int

	Policy CachePolicy

	Latency    LatencyModel
	CoreFactor float64 // for LatencyCoreMultiplier; zero means 1

	// Capacity limits how many requests a cache may serve per window of
	// CapacityWindow requests; 0 disables limits. Overloaded caches are
	// skipped and the request continues along its path (§5.1).
	Capacity       int64
	CapacityWindow int

	// Deployed optionally restricts cache deployment to a subset of PoPs
	// (true = this PoP's routers get caches); nil deploys everywhere. This
	// models the paper's incremental-deployment story (§4.3): operators add
	// edge caches PoP by PoP, and the benefit to a PoP's users should not
	// depend on adoption elsewhere.
	Deployed []bool

	// WarmupRequests excludes the first N requests of a Run from the
	// reported metrics while still exercising the caches, isolating
	// steady-state behaviour from cold-start transients. Zero (the paper's
	// methodology) reports over the whole stream.
	WarmupRequests int

	// NRLookupPenalty adds a fixed latency cost to every nearest-replica
	// serve that required the (otherwise free) replica lookup — i.e., any
	// NR request not answered by the arrival leaf itself. The paper
	// "conservatively assume[s] that routing and lookup have zero cost";
	// this knob quantifies how much of ICN-NR's edge survives if they do
	// not (see experiments.AblationLookupCost).
	NRLookupPenalty float64

	// Observer, when non-nil, receives one ServeEvent per request and one
	// EvictEvent per cache eviction. The engine nil-checks it once per
	// event, so the zero-allocation serve loop is untouched when disabled.
	// An observer shared across parallel runs (see Options.Observer) must
	// be safe for concurrent use; MetricsObserver is.
	Observer Observer

	// FailurePlan, when non-nil, schedules cache-node and resolver outages
	// at request-indexed epochs (see FailurePlan). Nil keeps the serve path
	// allocation-free and failure-free.
	FailurePlan *FailurePlan
}

// Design names a point in the placement x routing design space, with the
// budget tweaks the paper's EDGE variants use. Apply stamps it onto a
// Config.
type Design struct {
	Name            string
	Placement       Placement
	EdgeLevels      int
	Routing         Routing
	SiblingCoop     bool
	CoopScope       int     // generalized cooperation radius (0 = none)
	NormalizeBudget bool    // scale edge budgets so totals match pervasive
	ExtraBudget     float64 // additional multiplier on top (Double-Budget: 2)
}

// Apply returns cfg configured for the design. The edge-budget multiplier
// for NormalizeBudget is TreeSize/CachingNodes so that the design's total
// capacity equals the pervasive total, as EDGE-Norm requires.
func (d Design) Apply(cfg Config) Config {
	cfg.Placement = d.Placement
	cfg.EdgeLevels = d.EdgeLevels
	cfg.Routing = d.Routing
	cfg.SiblingCoop = d.SiblingCoop
	cfg.CoopScope = d.CoopScope
	mult := 1.0
	if d.NormalizeBudget {
		mult = float64(cfg.Network.TreeSize()) / float64(cachingNodesPerTree(cfg.Network, d.Placement, d.EdgeLevels))
	}
	if d.ExtraBudget > 0 {
		mult *= d.ExtraBudget
	}
	cfg.EdgeBudgetMultiplier = mult
	return cfg
}

func cachingNodesPerTree(n *topo.Network, p Placement, edgeLevels int) int {
	switch p {
	case PlacementPervasive:
		return n.TreeSize()
	case PlacementEdge:
		return n.LeavesPerTree()
	case PlacementEdgeLevels:
		if edgeLevels < 1 {
			edgeLevels = 1
		}
		count := 0
		for d := n.Depth; d > n.Depth-edgeLevels && d >= 0; d-- {
			count += int(n.LevelEnd(d) - n.LevelStart(d))
		}
		return count
	}
	panic("sim: unknown placement")
}

// The paper's representative designs (§4.1).
var (
	// ICNSP: pervasive caches, shortest-path-to-origin routing.
	ICNSP = Design{Name: "ICN-SP", Placement: PlacementPervasive, Routing: RouteShortestPath}
	// ICNNR: pervasive caches with idealized nearest-replica routing.
	ICNNR = Design{Name: "ICN-NR", Placement: PlacementPervasive, Routing: RouteNearestReplica}
	// EDGE: caches only at the leaves.
	EDGE = Design{Name: "EDGE", Placement: PlacementEdge, Routing: RouteShortestPath}
	// EDGECoop: EDGE with scoped sibling cooperation.
	EDGECoop = Design{Name: "EDGE-Coop", Placement: PlacementEdge, Routing: RouteShortestPath, SiblingCoop: true}
	// EDGENorm: EDGE with leaf budgets scaled so the total capacity matches
	// the pervasive designs.
	EDGENorm = Design{Name: "EDGE-Norm", Placement: PlacementEdge, Routing: RouteShortestPath, NormalizeBudget: true}
)

// BaselineDesigns returns the five designs of Figures 6 and 7, in plot
// order.
func BaselineDesigns() []Design {
	return []Design{ICNSP, ICNNR, EDGE, EDGECoop, EDGENorm}
}

// Request re-exports the workload request type for convenience.
type Request = trace.Request
