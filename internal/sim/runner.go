package sim

// RunConfig builds an Engine for cfg and simulates the request stream.
func RunConfig(cfg Config, reqs []Request) (Result, error) {
	e, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run(reqs), nil
}

// Baseline runs cfg's workload with caching disabled: every request is
// served by its origin over shortest-path routing. All three paper metrics
// are normalized against this run.
func Baseline(cfg Config, reqs []Request) (Result, error) {
	cfg.BudgetFraction = 0
	cfg.EdgeBudgetMultiplier = 0
	cfg.Routing = RouteShortestPath
	cfg.SiblingCoop = false
	cfg.Capacity = 0
	return RunConfig(cfg, reqs)
}

// DesignResult pairs a design with its improvements over the baseline.
type DesignResult struct {
	Design      Design
	Raw         Result
	Improvement Improvement
}

// CompareDesigns runs every design on the same base configuration and
// request stream, returning per-design improvements over the shared
// no-caching baseline. This is the computation behind each topology group in
// Figures 6 and 7.
func CompareDesigns(base Config, designs []Design, reqs []Request) ([]DesignResult, error) {
	baseRes, err := Baseline(base, reqs)
	if err != nil {
		return nil, err
	}
	out := make([]DesignResult, 0, len(designs))
	for _, d := range designs {
		res, err := RunConfig(d.Apply(base), reqs)
		if err != nil {
			return nil, err
		}
		out = append(out, DesignResult{
			Design:      d,
			Raw:         res,
			Improvement: Improvements(baseRes, res),
		})
	}
	return out, nil
}
