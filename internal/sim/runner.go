package sim

// RunConfig builds an Engine for cfg and simulates the request stream: the
// single-job convenience wrapper over Run.
func RunConfig(cfg Config, reqs []Request) (Result, error) {
	results, err := Run([]Job{{Config: cfg, Reqs: reqs}}, Options{Workers: 1})
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// BaselineConfig strips cfg of all caching: every request is served by its
// origin over shortest-path routing. Batched runners use it to enqueue the
// baseline alongside the designs it normalizes.
func BaselineConfig(cfg Config) Config {
	cfg.BudgetFraction = 0
	cfg.EdgeBudgetMultiplier = 0
	cfg.Routing = RouteShortestPath
	cfg.SiblingCoop = false
	cfg.CoopScope = 0
	cfg.Capacity = 0
	return cfg
}

// Baseline runs cfg's workload with caching disabled. All three paper
// metrics are normalized against this run.
func Baseline(cfg Config, reqs []Request) (Result, error) {
	return RunConfig(BaselineConfig(cfg), reqs)
}

// DesignResult pairs a design with its improvements over the baseline.
type DesignResult struct {
	Design      Design
	Raw         Result
	Improvement Improvement
}

// DesignSet groups one workload with the designs to evaluate on it: the
// unit of work of CompareSets.
type DesignSet struct {
	Base    Config
	Designs []Design
	Reqs    []Request
}

// CompareSets evaluates every set's designs against its own no-caching
// baseline, fanning all runs (one baseline plus one run per design, per set)
// across the Run worker pool in a single batch. Output ordering and values
// are deterministic regardless of the worker count: out[i][j] is set i's
// design j. An opt.Observer sees every run of the batch, baselines included.
func CompareSets(sets []DesignSet, opt Options) ([][]DesignResult, error) {
	jobs := make([]Job, 0, len(sets)*2)
	for _, s := range sets {
		jobs = append(jobs, Job{Config: BaselineConfig(s.Base), Reqs: s.Reqs})
		for _, d := range s.Designs {
			jobs = append(jobs, Job{Config: d.Apply(s.Base), Reqs: s.Reqs})
		}
	}
	results, err := Run(jobs, opt)
	if err != nil {
		return nil, err
	}
	out := make([][]DesignResult, len(sets))
	k := 0
	for i, s := range sets {
		baseRes := results[k]
		k++
		out[i] = make([]DesignResult, 0, len(s.Designs))
		for _, d := range s.Designs {
			res := results[k]
			k++
			out[i] = append(out[i], DesignResult{
				Design:      d,
				Raw:         res,
				Improvement: Improvements(baseRes, res),
			})
		}
	}
	return out, nil
}

// Compare runs every design on the same base configuration and request
// stream, returning per-design improvements over the shared no-caching
// baseline. This is the computation behind each topology group in Figures 6
// and 7.
func Compare(base Config, designs []Design, reqs []Request, opt Options) ([]DesignResult, error) {
	out, err := CompareSets([]DesignSet{{Base: base, Designs: designs, Reqs: reqs}}, opt)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}
