package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"idicn/internal/topo"
	"idicn/internal/trace"
)

// DefaultEpochLen is the default epoch length (in requests) for sharded
// streaming runs: long enough to amortize barrier cost, short enough that
// cross-shard state (replica index, backbone root contents) stays fresh.
const DefaultEpochLen = 8192

// StreamOptions configures a sharded streaming run (RunStream).
type StreamOptions struct {
	// Workers is the number of goroutines executing shards; <= 0 means
	// DefaultWorkers(). Results are bit-identical for every worker count —
	// parallelism changes wall-clock time only.
	Workers int
	// EpochLen is the number of requests per epoch between cross-shard
	// exchanges; <= 0 means DefaultEpochLen. Like Workers it affects
	// fidelity of cross-shard state, so unlike Workers it IS part of the
	// result's identity: compare runs only at equal EpochLen.
	EpochLen int
	// Observer receives events from every shard. Since shards run
	// concurrently, a non-nil Observer must be safe for concurrent use.
	Observer Observer

	// Checkpoint, when non-nil, is invoked at epoch barriers with the run's
	// complete frozen state; a non-nil error aborts the run. Requires src to
	// implement trace.ResumableStream (the state must include an exact trace
	// position). The callback runs on the simulation goroutine — the whole
	// run is paused while it persists the state.
	Checkpoint func(*StreamState) error
	// CheckpointEvery is the minimum number of requests between Checkpoint
	// calls; <= 0 checkpoints at every barrier. The actual spacing rounds up
	// to epoch boundaries.
	CheckpointEvery int64
	// Resume, when non-nil, restores a state captured by Checkpoint and
	// continues the run from it. The Config and EpochLen must be identical
	// to the checkpointed run's, and src must implement
	// trace.ResumableStream; the final Result is then bit-identical to an
	// uninterrupted run's at any worker count.
	Resume *StreamState
}

// remoteOp is one buffered effect on a node owned by another shard: a serve
// touch (recency + capacity charge) or a response-path insert. The owner
// applies its ops at the epoch barrier.
type remoteOp struct {
	node   topo.NodeID
	obj    int32
	insert bool
}

// riOp is one replica-index delta produced by a shard during an epoch,
// replayed into every other shard's index mirror at the barrier.
type riOp struct {
	node topo.NodeID
	obj  int32
	add  bool
}

// shardShared is the cross-shard state of one sharded run. During an epoch
// it is strictly read-only to the worker goroutines; the barrier (single
// goroutine) is the only writer.
type shardShared struct {
	// hasCache marks every node the placement provisions a cache at,
	// regardless of owner: shards use it to recognize remote caching nodes.
	hasCache []bool
	// cacheNodes is the global provisioned-cache list, shared by all shards
	// so failure-plan shuffles draw identical node sets everywhere.
	cacheNodes []int32
	// rootLive[pop] is a bitset of the objects currently cached at pop's
	// root (maintained by the owner); rootFrozen is its epoch-start copy,
	// which remote shards consult for shortest-path backbone hits. Rows are
	// nil for PoPs whose root has no cache. nil entirely when the placement
	// puts no cache at any root (e.g. edge-only).
	rootLive   [][]uint64
	rootFrozen [][]uint64
}

// engineShard is the per-shard half of the sharing state: which PoPs this
// shard owns, plus its outgoing effect buffers.
type engineShard struct {
	shared *shardShared
	ownPoP []bool
	ops    []remoteOp // effects on other shards' nodes, applied at the barrier
	riLog  []riOp     // replica-index deltas to broadcast at the barrier
}

// pathHit reports whether the shortest-path walk can serve from node, and
// performs the hit's cache touch. Own-shard nodes resolve exactly like the
// sequential engine; nodes owned by other shards serve from the epoch-start
// frozen image of their PoP-root contents, with the recency touch buffered
// for the owner.
//
//icn:noalloc
func (e *Engine) pathHit(node topo.NodeID, obj int32) bool {
	if e.caches[node] != nil {
		return e.admissible(node) && e.caches[node].Lookup(obj)
	}
	return e.sh != nil && e.remoteHit(node, obj)
}

// remoteHit consults the frozen root bitset of another shard's PoP. Only
// PoP roots are reachable cross-shard on a shortest path (the core walks
// root to root), so deeper remote nodes never hit here.
//
//icn:noalloc
func (e *Engine) remoteHit(node topo.NodeID, obj int32) bool {
	sh := e.sh
	if sh.shared.rootFrozen == nil {
		return false
	}
	pop, local := e.net.Split(node)
	if local != 0 {
		return false
	}
	row := sh.shared.rootFrozen[pop]
	if row == nil || row[uint32(obj)>>6]&(1<<(uint32(obj)&63)) == 0 {
		return false
	}
	if e.failed != nil && e.failed[node] {
		return false
	}
	if e.served != nil && e.served[node] >= e.cfg.Capacity {
		return false
	}
	sh.ops = append(sh.ops, remoteOp{node: node, obj: obj})
	return true
}

// admissibleAny extends admissible to nodes owned by other shards, which
// carry no local store: existence comes from the shared placement map while
// failure and capacity state are replicated per shard.
//
//icn:noalloc
func (e *Engine) admissibleAny(n topo.NodeID) bool {
	if e.caches[n] != nil {
		return e.admissible(n)
	}
	if e.sh == nil || !e.sh.shared.hasCache[n] {
		return false
	}
	if e.failed != nil && e.failed[n] {
		return false
	}
	if e.served == nil {
		return true
	}
	return e.served[n] < e.cfg.Capacity
}

// cacheAt reports whether the placement has a cache at n, own or remote.
//
//icn:noalloc
func (e *Engine) cacheAt(n topo.NodeID) bool {
	return e.caches[n] != nil || (e.sh != nil && e.sh.shared.hasCache[n])
}

// riAdd records obj appearing at node: immediately in this engine's index,
// and (sharded) in the delta log other shards replay at the barrier.
//
//icn:noalloc
func (e *Engine) riAdd(obj int32, node topo.NodeID) {
	e.replicas.add(obj, node)
	if e.sh != nil {
		e.sh.riLog = append(e.sh.riLog, riOp{node: node, obj: obj, add: true})
	}
}

// riRemove is riAdd's eviction counterpart.
//
//icn:noalloc
func (e *Engine) riRemove(obj int32, node topo.NodeID) {
	e.replicas.remove(obj, node)
	if e.sh != nil {
		e.sh.riLog = append(e.sh.riLog, riOp{node: node, obj: obj})
	}
}

// remoteTouch buffers a serve touch on a node owned by another shard.
//
//icn:noalloc
func (e *Engine) remoteTouch(node topo.NodeID, obj int32) {
	e.sh.ops = append(e.sh.ops, remoteOp{node: node, obj: obj})
}

// remoteInsert buffers a response-path insert at a caching node owned by
// another shard.
//
//icn:noalloc
func (e *Engine) remoteInsert(node topo.NodeID, obj int32) {
	sh := e.sh
	if !sh.shared.hasCache[node] {
		return
	}
	if e.failed != nil && e.failed[node] {
		return
	}
	sh.ops = append(sh.ops, remoteOp{node: node, obj: obj, insert: true})
}

// setRootBit marks obj live at node's PoP root bitset (no-op off PoP roots
// and in unsharded runs).
//
//icn:noalloc
func (e *Engine) setRootBit(node topo.NodeID, obj int32) {
	if e.sh == nil || e.sh.shared.rootLive == nil {
		return
	}
	pop, local := e.net.Split(node)
	if local != 0 {
		return
	}
	if row := e.sh.shared.rootLive[pop]; row != nil {
		row[uint32(obj)>>6] |= 1 << (uint32(obj) & 63)
	}
}

// clearRootBit is setRootBit's eviction counterpart.
//
//icn:noalloc
func (e *Engine) clearRootBit(pop int, obj int32) {
	if e.sh.shared.rootLive == nil {
		return
	}
	if row := e.sh.shared.rootLive[pop]; row != nil {
		row[uint32(obj)>>6] &^= 1 << (uint32(obj) & 63)
	}
}

// epochBatch is one epoch's worth of requests, partitioned by arrival PoP.
// Batches are recycled through a free list so a 10⁹-request run allocates a
// constant number of them.
type epochBatch struct {
	start, end int64 // request indices [start, end)
	per        [][]Request
	pos        trace.StreamPos // stream position at end, when checkpointing
	err        error
	eof        bool
}

// RunStream executes one simulation over the request stream, sharded by
// arrival PoP and epoch-synchronized so the Result is bit-identical for
// every opt.Workers value. Compared to the sequential Engine.Run, effects
// that cross a shard boundary — replica-index updates, backbone-root hits,
// response-path inserts and capacity charges on remote nodes — land at the
// next epoch barrier instead of instantly; with a single PoP (one shard)
// the two are exactly equivalent. Requests are pulled from src epoch by
// epoch, so memory use is bounded by topology size plus one epoch, never by
// stream length.
func RunStream(cfg Config, src trace.Stream, opt StreamOptions) (Result, error) {
	if cfg.Network == nil {
		return Result{}, fmt.Errorf("sim: nil network")
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	epochLen := int64(opt.EpochLen)
	if epochLen <= 0 {
		epochLen = DefaultEpochLen
	}
	cfg.Observer = opt.Observer

	net := cfg.Network
	pops := net.PoPs()
	engines, shared, err := newShardedEngines(cfg)
	if err != nil {
		return Result{}, err
	}

	warmup := int64(engines[0].cfg.WarmupRequests)
	plan := engines[0].cfg.FailurePlan
	capWindow := int64(engines[0].cfg.CapacityWindow)

	// Checkpointing needs the reader to capture exact trace positions, and
	// resuming needs to seek to one; both require a resumable stream.
	var rsrc trace.ResumableStream
	if opt.Checkpoint != nil || opt.Resume != nil {
		rs, ok := src.(trace.ResumableStream)
		if !ok {
			return Result{}, fmt.Errorf("sim: checkpoint/resume requires a resumable trace stream, got %T", src)
		}
		rsrc = rs
	}

	var snaps []*snapshot
	var total int64
	var resumeAt int64
	if opt.Resume != nil {
		st := opt.Resume
		if st.EpochLen != epochLen {
			return Result{}, fmt.Errorf("sim: checkpoint epoch length %d, run uses %d (EpochLen is part of a streaming result's identity)", st.EpochLen, epochLen)
		}
		snaps, err = thawStream(engines, shared, st)
		if err != nil {
			return Result{}, err
		}
		if err := rsrc.SeekPos(st.TracePos); err != nil {
			return Result{}, fmt.Errorf("sim: resuming trace stream: %w", err)
		}
		total, resumeAt = st.Requests, st.Requests
	}
	ckptEvery := opt.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = 1
	}
	lastCkpt := resumeAt

	// The reader goroutine fills epoch batches ahead of the simulation;
	// the free list bounds it to a handful of epochs in flight.
	free := make(chan *epochBatch, 3)
	for i := 0; i < cap(free); i++ {
		per := make([][]Request, pops)
		free <- &epochBatch{per: per}
	}
	ready := make(chan *epochBatch, cap(free))
	// stop aborts the reader mid-stream when the simulation side fails (a
	// checkpoint write error): batches stop coming back to the free list, so
	// without it the reader would block there forever.
	stop := make(chan struct{})
	go func() {
		defer close(ready)
		pos := resumeAt
		epIdx := 0
		var q Request
		for {
			var b *epochBatch
			select {
			case b = <-free:
			case <-stop:
				return
			}
			b.start, b.err, b.eof = pos, nil, false
			for p := range b.per {
				b.per[p] = b.per[p][:0]
			}
			end := nextEpochCut(pos, epochLen, warmup, capWindow, plan, &epIdx)
			for pos < end {
				if !src.Next(&q) {
					if err := src.Err(); err != nil {
						b.err = err
					}
					b.eof = true
					break
				}
				if q.PoP < 0 || int(q.PoP) >= pops {
					b.err = fmt.Errorf("sim: request %d PoP %d out of range [0, %d)", pos, q.PoP, pops)
					b.eof = true
					break
				}
				if q.Leaf < 0 || int(q.Leaf) >= net.LeavesPerTree() {
					b.err = fmt.Errorf("sim: request %d leaf %d out of range [0, %d)", pos, q.Leaf, net.LeavesPerTree())
					b.eof = true
					break
				}
				if q.Object < 0 || int(q.Object) >= cfg.Objects {
					b.err = fmt.Errorf("sim: request %d object %d out of range [0, %d)", pos, q.Object, cfg.Objects)
					b.eof = true
					break
				}
				b.per[q.PoP] = append(b.per[q.PoP], q)
				pos++
			}
			b.end = pos
			if opt.Checkpoint != nil {
				// Captured here, not at the barrier: the reader prefetches
				// batches ahead of the simulation, so the live stream position
				// at barrier time belongs to a later epoch. The channel send
				// below orders this write before the consumer's read.
				b.pos = rsrc.Pos()
			}
			ready <- b
			if b.eof {
				return
			}
		}
	}()

	var runErr error
	for b := range ready {
		if b.err != nil {
			runErr = b.err
			break
		}
		if b.end > b.start {
			// Epoch-start bookkeeping, identical in every shard. Cuts are
			// aligned so each boundary falls exactly on an epoch start.
			if capWindow > 0 && b.start%capWindow == 0 {
				for _, e := range engines {
					clear(e.served)
				}
			}
			if plan != nil {
				for _, e := range engines {
					e.advanceFailures(b.start)
				}
			}
			if warmup > 0 && b.start == warmup {
				snaps = snapshotAll(engines)
			}
			runEpoch(engines, b.per, workers)
			exchange(engines, shared)
			total = b.end
			if opt.Checkpoint != nil && b.end-lastCkpt >= ckptEvery {
				st, err := freezeStream(engines, shared, b.pos, b.end, epochLen, snaps)
				if err == nil {
					err = opt.Checkpoint(st)
				}
				if err != nil {
					runErr = fmt.Errorf("sim: checkpoint at request %d: %w", b.end, err)
					break
				}
				lastCkpt = b.end
			}
		}
		eof := b.eof
		select {
		case free <- b:
		default:
		}
		if eof {
			break
		}
	}
	close(stop)
	for range ready {
		// Drain so the reader goroutine exits.
	}
	if runErr != nil {
		return Result{}, runErr
	}
	effWarmup := warmup
	if effWarmup > total {
		effWarmup = total
	}
	if warmup > 0 && snaps == nil {
		// The whole stream was warmup (or shorter than it).
		snaps = snapshotAll(engines)
	}
	return mergeStreamResult(engines, snaps, total-effWarmup), nil
}

// newShardedEngines builds one Engine per PoP, each owning its own PoP's
// caches, wired to a common shardShared. The global placement map and
// cache-node list come from a dry provisioning pass; sharing cacheNodes
// across engines keeps the failure plan's seeded shuffles identical in
// every shard.
func newShardedEngines(cfg Config) ([]*Engine, *shardShared, error) {
	net := cfg.Network
	pops := net.PoPs()
	shared := &shardShared{hasCache: make([]bool, net.NodeCount())}
	engines := make([]*Engine, pops)
	for p := 0; p < pops; p++ {
		own := make([]bool, pops)
		own[p] = true
		e, err := newEngine(cfg, &engineShard{shared: shared, ownPoP: own})
		if err != nil {
			return nil, nil, err
		}
		engines[p] = e
	}
	engines[0].forEachProvision(func(pop int, node topo.NodeID, _ int, _, _ float64) {
		shared.hasCache[node] = true
		shared.cacheNodes = append(shared.cacheNodes, int32(node))
	})
	if shared.cacheNodes == nil {
		shared.cacheNodes = []int32{}
	}
	for _, e := range engines {
		e.cacheNodes = shared.cacheNodes
	}
	rootBits := false
	for p := 0; p < pops; p++ {
		if shared.hasCache[net.Node(p, 0)] {
			rootBits = true
			break
		}
	}
	if rootBits {
		words := (cfg.Objects + 63) / 64
		shared.rootLive = make([][]uint64, pops)
		shared.rootFrozen = make([][]uint64, pops)
		for p := 0; p < pops; p++ {
			if shared.hasCache[net.Node(p, 0)] {
				shared.rootLive[p] = make([]uint64, words)
				shared.rootFrozen[p] = make([]uint64, words)
			}
		}
	}
	return engines, shared, nil
}

// nextEpochCut returns the end of the epoch starting at pos: the next
// multiple of epochLen, pulled in so no warmup boundary, capacity-window
// edge, or failure-epoch start falls inside it. Every global state change
// then lands exactly on a barrier, which is what makes per-epoch
// bookkeeping equivalent to the sequential engine's per-request checks.
func nextEpochCut(pos, epochLen, warmup, capWindow int64, plan *FailurePlan, epIdx *int) int64 {
	end := (pos/epochLen + 1) * epochLen
	if warmup > pos && warmup < end {
		end = warmup
	}
	if capWindow > 0 {
		if w := (pos/capWindow + 1) * capWindow; w < end {
			end = w
		}
	}
	if plan != nil {
		for *epIdx < len(plan.Epochs) && plan.Epochs[*epIdx].Start <= pos {
			*epIdx++
		}
		if *epIdx < len(plan.Epochs) {
			if s := plan.Epochs[*epIdx].Start; s < end {
				end = s
			}
		}
	}
	return end
}

// runEpoch executes one epoch: each shard serves its own PoP's requests.
// Shards touch disjoint mutable state (their own caches, counters, and
// effect buffers) and read only frozen shared state, so any assignment of
// shards to workers yields the same per-shard outcome.
func runEpoch(engines []*Engine, per [][]Request, workers int) {
	if workers > len(engines) {
		workers = len(engines)
	}
	if workers <= 1 {
		for p, e := range engines {
			for _, q := range per[p] {
				e.serveRequest(q)
			}
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= len(engines) {
					return
				}
				e := engines[p]
				for _, q := range per[p] {
					e.serveRequest(q)
				}
			}
		}()
	}
	wg.Wait()
}

// exchange is the epoch barrier: a single goroutine applies every shard's
// buffered cross-shard effects in fixed shard order, so the merged state —
// and therefore the whole run — is independent of worker scheduling.
func exchange(engines []*Engine, shared *shardShared) {
	// Phase 1: remote touches and inserts, applied by the owning engine.
	// Inserts route through Engine.insert, so they feed the owner's replica
	// index, riLog, and root bitset exactly like local inserts.
	for _, src := range engines {
		sh := src.sh
		for _, op := range sh.ops {
			owner := engines[op.node/topo.NodeID(engines[0].net.TreeSize())]
			if op.insert {
				if owner.caches[op.node] != nil {
					owner.insert(op.node, op.obj)
				}
				continue
			}
			if c := owner.caches[op.node]; c != nil {
				c.Lookup(op.obj)
			}
			if owner.served != nil {
				owner.served[op.node]++
			}
		}
		sh.ops = sh.ops[:0]
	}
	// Phase 2: broadcast replica-index deltas so every shard's mirror
	// converges to the same index.
	if engines[0].replicas != nil {
		for si, src := range engines {
			for di, dst := range engines {
				if di == si {
					continue
				}
				for _, op := range src.sh.riLog {
					if op.add {
						dst.replicas.add(op.obj, op.node)
					} else {
						dst.replicas.remove(op.obj, op.node)
					}
				}
			}
		}
		for _, src := range engines {
			src.sh.riLog = src.sh.riLog[:0]
		}
	}
	// Phase 3: freeze the root bitsets for the next epoch's remote hits.
	for p, row := range shared.rootLive {
		if row != nil {
			copy(shared.rootFrozen[p], row)
		}
	}
	// Phase 4: reconcile capacity counters — the owner's count (its own
	// serves plus every remote touch) is canonical.
	if engines[0].served != nil {
		for _, n := range shared.cacheNodes {
			owner := engines[n/int32(engines[0].net.TreeSize())]
			v := owner.served[n]
			for _, e := range engines {
				e.served[n] = v
			}
		}
	}
}

func snapshotAll(engines []*Engine) []*snapshot {
	snaps := make([]*snapshot, len(engines))
	for i, e := range engines {
		snaps[i] = e.snapshot()
	}
	return snaps
}

// mergeStreamResult folds per-shard metrics into one Result, always in
// shard index order so floating-point sums are reproducible. Integer
// metrics merge by plain summation; per-link and per-origin maxima are
// taken over the summed deltas, matching the sequential result()
// definition.
func mergeStreamResult(engines []*Engine, snaps []*snapshot, n int64) Result {
	zero := &snapshot{}
	snapOf := func(i int) *snapshot {
		if snaps == nil {
			return zero
		}
		return snaps[i]
	}
	statDelta := func(cur, old int64) int64 { return cur - old }

	first := engines[0]
	res := Result{
		Requests:      n,
		PoPLatency:    make([]float64, len(first.popLatency)),
		PoPRequests:   make([]int64, len(first.popRequests)),
		ServedAtDepth: make([]int64, len(first.servedDepth)),
	}
	var totalLatency float64
	treeDelta := make([]int64, len(first.treeLoad))
	coreDelta := make([]int64, len(first.coreLoad))
	originDelta := make([]int64, len(first.originServed))
	for i, e := range engines {
		s := snapOf(i)
		totalLatency += e.totalLatency - s.totalLatency
		res.Transfers += statDelta(e.transfers, s.transfers)
		res.Evictions += statDelta(e.evictions, s.evictions)
		res.Stats.Leaf += statDelta(e.stats.Leaf, s.stats.Leaf)
		res.Stats.Sibling += statDelta(e.stats.Sibling, s.stats.Sibling)
		res.Stats.Tree += statDelta(e.stats.Tree, s.stats.Tree)
		res.Stats.Core += statDelta(e.stats.Core, s.stats.Core)
		res.Stats.Origin += statDelta(e.stats.Origin, s.stats.Origin)
		for j := range e.popLatency {
			var oldL float64
			var oldR int64
			if s.popLatency != nil {
				oldL, oldR = s.popLatency[j], s.popRequests[j]
			}
			res.PoPLatency[j] += e.popLatency[j] - oldL
			res.PoPRequests[j] += e.popRequests[j] - oldR
		}
		for j := range e.servedDepth {
			var old int64
			if s.servedDepth != nil {
				old = s.servedDepth[j]
			}
			res.ServedAtDepth[j] += e.servedDepth[j] - old
		}
		for j := range e.treeLoad {
			var old int64
			if s.treeLoad != nil {
				old = s.treeLoad[j]
			}
			treeDelta[j] += e.treeLoad[j] - old
		}
		for j := range e.coreLoad {
			var old int64
			if s.coreLoad != nil {
				old = s.coreLoad[j]
			}
			coreDelta[j] += e.coreLoad[j] - old
		}
		for j := range e.originServed {
			var old int64
			if s.originServed != nil {
				old = s.originServed[j]
			}
			originDelta[j] += e.originServed[j] - old
		}
	}
	if n > 0 {
		res.MeanLatency = totalLatency / float64(n)
	}
	for _, d := range treeDelta {
		if d > res.MaxLinkLoad {
			res.MaxLinkLoad = d
		}
	}
	for _, d := range coreDelta {
		if d > res.MaxLinkLoad {
			res.MaxLinkLoad = d
		}
	}
	for _, d := range originDelta {
		res.TotalOrigin += d
		if d > res.MaxOriginLoad {
			res.MaxOriginLoad = d
		}
	}
	return res
}
