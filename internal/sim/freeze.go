package sim

import (
	"fmt"

	"idicn/internal/cache"
	"idicn/internal/topo"
	"idicn/internal/trace"
)

// StreamState is the complete state of a sharded streaming run at an epoch
// barrier, sufficient to resume the run with a Result bit-identical to one
// that never stopped. It is captured by RunStream's Checkpoint hook right
// after the epoch exchange, when every shard's replica-index mirror and the
// frozen root bitsets are all synchronized — so the cross-shard state is
// serialized once, not per shard.
//
// Failure-plan state (failed sets, resolver status) is deliberately absent:
// it is a deterministic function of the request index and is rebuilt by the
// first post-resume epoch's advanceFailures, exactly as an uninterrupted run
// rebuilds it at that barrier.
type StreamState struct {
	// Requests is the number of requests simulated so far (the barrier's
	// request index).
	Requests int64
	// EpochLen is the run's epoch length. It is part of a streaming result's
	// identity, so resuming under a different EpochLen is refused.
	EpochLen int64
	// TracePos is the trace stream's position at the barrier.
	TracePos trace.StreamPos
	// WarmupDone records whether the post-warmup metric snapshots have been
	// taken; Snaps holds them (per shard) when it is true.
	WarmupDone bool
	Snaps      []MetricState
	// Shards holds each shard's private state, in shard (PoP) order.
	Shards []ShardState
	// Replicas is the replica index (per object, sorted ascending node ids),
	// nil when the run's routing keeps none. All shards' mirrors are
	// identical at a barrier, so one copy serves them all.
	Replicas [][]int32
	// RootLive is the live PoP-root bitset state; rows are nil for PoPs
	// whose root has no cache, and the slice is nil when no root has one.
	// rootFrozen equals rootLive at a barrier and is rebuilt from it.
	RootLive [][]uint64
}

// ShardState is one shard's private half of a StreamState.
type ShardState struct {
	Metrics MetricState
	// Served is the per-node capacity-window serve counter, nil when the
	// config has no Capacity limit.
	Served []int64
	// Caches is the concatenated cache.Snapshotter state of every cache the
	// shard owns, in NodeID order — the provisioning order, so a freshly
	// provisioned engine restores them by walking its own cache array.
	Caches []byte
}

// MetricState is a serializable copy of one engine's cumulative metric
// counters. Floats are carried bit-exactly by the checkpoint codec, so
// restored latency sums continue from the same binary value.
type MetricState struct {
	TotalLatency float64
	PoPLatency   []float64
	PoPRequests  []int64
	Transfers    int64
	Evictions    int64
	Stats        ServeStats
	ServedDepth  []int64
	TreeLoad     []int64
	CoreLoad     []int64
	OriginServed []int64
}

func metricStateOf(totalLatency float64, popLatency []float64, popRequests []int64,
	transfers, evictions int64, stats ServeStats, servedDepth, treeLoad, coreLoad, originServed []int64) MetricState {
	return MetricState{
		TotalLatency: totalLatency,
		PoPLatency:   append([]float64(nil), popLatency...),
		PoPRequests:  append([]int64(nil), popRequests...),
		Transfers:    transfers,
		Evictions:    evictions,
		Stats:        stats,
		ServedDepth:  append([]int64(nil), servedDepth...),
		TreeLoad:     append([]int64(nil), treeLoad...),
		CoreLoad:     append([]int64(nil), coreLoad...),
		OriginServed: append([]int64(nil), originServed...),
	}
}

// shapeCheck validates that a restored slice has the length the engine's
// arrays were built with.
func shapeCheck(what string, got, want int) error {
	if got != want {
		return fmt.Errorf("sim: checkpoint %s has %d entries, engine expects %d", what, got, want)
	}
	return nil
}

func (m *MetricState) validate(e *Engine) error {
	if err := shapeCheck("PoPLatency", len(m.PoPLatency), len(e.popLatency)); err != nil {
		return err
	}
	if err := shapeCheck("PoPRequests", len(m.PoPRequests), len(e.popRequests)); err != nil {
		return err
	}
	if err := shapeCheck("ServedDepth", len(m.ServedDepth), len(e.servedDepth)); err != nil {
		return err
	}
	if err := shapeCheck("TreeLoad", len(m.TreeLoad), len(e.treeLoad)); err != nil {
		return err
	}
	if err := shapeCheck("CoreLoad", len(m.CoreLoad), len(e.coreLoad)); err != nil {
		return err
	}
	return shapeCheck("OriginServed", len(m.OriginServed), len(e.originServed))
}

func (m *MetricState) applyTo(e *Engine) error {
	if err := m.validate(e); err != nil {
		return err
	}
	e.totalLatency = m.TotalLatency
	copy(e.popLatency, m.PoPLatency)
	copy(e.popRequests, m.PoPRequests)
	e.transfers = m.Transfers
	e.evictions = m.Evictions
	e.stats = m.Stats
	copy(e.servedDepth, m.ServedDepth)
	copy(e.treeLoad, m.TreeLoad)
	copy(e.coreLoad, m.CoreLoad)
	copy(e.originServed, m.OriginServed)
	return nil
}

func (m *MetricState) toSnapshot() *snapshot {
	return &snapshot{
		totalLatency: m.TotalLatency,
		popLatency:   append([]float64(nil), m.PoPLatency...),
		popRequests:  append([]int64(nil), m.PoPRequests...),
		transfers:    m.Transfers,
		evictions:    m.Evictions,
		stats:        m.Stats,
		servedDepth:  append([]int64(nil), m.ServedDepth...),
		treeLoad:     append([]int64(nil), m.TreeLoad...),
		coreLoad:     append([]int64(nil), m.CoreLoad...),
		originServed: append([]int64(nil), m.OriginServed...),
	}
}

func snapMetricState(s *snapshot) MetricState {
	return metricStateOf(s.totalLatency, s.popLatency, s.popRequests,
		s.transfers, s.evictions, s.stats, s.servedDepth, s.treeLoad, s.coreLoad, s.originServed)
}

// freezeStream captures the run's full state at an epoch barrier. It must be
// called right after exchange, when every shard's replica mirror is
// identical, rootFrozen equals rootLive, and served counters are reconciled.
func freezeStream(engines []*Engine, shared *shardShared, pos trace.StreamPos,
	requests, epochLen int64, snaps []*snapshot) (*StreamState, error) {
	st := &StreamState{
		Requests:   requests,
		EpochLen:   epochLen,
		TracePos:   pos,
		WarmupDone: snaps != nil,
		Shards:     make([]ShardState, len(engines)),
	}
	if snaps != nil {
		st.Snaps = make([]MetricState, len(snaps))
		for i, s := range snaps {
			st.Snaps[i] = snapMetricState(s)
		}
	}
	for i, e := range engines {
		sh := &st.Shards[i]
		sh.Metrics = metricStateOf(e.totalLatency, e.popLatency, e.popRequests,
			e.transfers, e.evictions, e.stats, e.servedDepth, e.treeLoad, e.coreLoad, e.originServed)
		if e.served != nil {
			sh.Served = append([]int64(nil), e.served...)
		}
		for node, c := range e.caches {
			if c == nil {
				continue
			}
			snap, ok := c.(cache.Snapshotter)
			if !ok {
				return nil, fmt.Errorf("sim: cache at node %d (%T) does not support checkpointing", node, c)
			}
			sh.Caches = snap.AppendState(sh.Caches)
		}
	}
	// Cross-shard state, serialized once: at a barrier every shard's mirror
	// is identical, so shard 0's is canonical.
	if ri := engines[0].replicas; ri != nil {
		st.Replicas = make([][]int32, len(ri.perObj))
		for obj, row := range ri.perObj {
			if len(row) == 0 {
				continue
			}
			out := make([]int32, len(row))
			for j, n := range row {
				out[j] = int32(n)
			}
			st.Replicas[obj] = out
		}
	}
	if shared.rootLive != nil {
		st.RootLive = make([][]uint64, len(shared.rootLive))
		for p, row := range shared.rootLive {
			if row != nil {
				st.RootLive[p] = append([]uint64(nil), row...)
			}
		}
	}
	return st, nil
}

// thawStream restores a StreamState into freshly constructed shard engines
// (newShardedEngines with the identical Config — the checkpoint store's
// fingerprint guards that identity). It returns the per-shard warmup
// snapshots when the checkpointed run had already passed warmup.
func thawStream(engines []*Engine, shared *shardShared, st *StreamState) ([]*snapshot, error) {
	if st.Requests < 0 {
		return nil, fmt.Errorf("sim: checkpoint has negative request count %d", st.Requests)
	}
	if err := shapeCheck("shards", len(st.Shards), len(engines)); err != nil {
		return nil, err
	}
	nodeCount := engines[0].net.NodeCount()
	for i, e := range engines {
		sh := &st.Shards[i]
		if err := sh.Metrics.applyTo(e); err != nil {
			return nil, fmt.Errorf("sim: shard %d: %w", i, err)
		}
		if (sh.Served != nil) != (e.served != nil) {
			return nil, fmt.Errorf("sim: shard %d capacity counters mismatch the config", i)
		}
		if sh.Served != nil {
			if err := shapeCheck("Served", len(sh.Served), len(e.served)); err != nil {
				return nil, fmt.Errorf("sim: shard %d: %w", i, err)
			}
			copy(e.served, sh.Served)
		}
		data := sh.Caches
		for node, c := range e.caches {
			if c == nil {
				continue
			}
			snap, ok := c.(cache.Snapshotter)
			if !ok {
				return nil, fmt.Errorf("sim: cache at node %d (%T) does not support checkpointing", node, c)
			}
			rest, err := snap.RestoreState(data)
			if err != nil {
				return nil, fmt.Errorf("sim: shard %d cache at node %d: %w", i, node, err)
			}
			data = rest
		}
		if len(data) != 0 {
			return nil, fmt.Errorf("sim: shard %d has %d trailing cache-state bytes", i, len(data))
		}
	}
	// Replica index: every shard gets its own deep copy of the shared rows
	// (post-barrier they are identical mirrors).
	if (st.Replicas != nil) != (engines[0].replicas != nil) {
		return nil, fmt.Errorf("sim: checkpoint replica index mismatches the config's routing")
	}
	if st.Replicas != nil {
		if err := shapeCheck("Replicas", len(st.Replicas), len(engines[0].replicas.perObj)); err != nil {
			return nil, err
		}
		for obj, row := range st.Replicas {
			for j, n := range row {
				if n < 0 || int(n) >= nodeCount {
					return nil, fmt.Errorf("sim: checkpoint replica of object %d at node %d out of range", obj, n)
				}
				if j > 0 && row[j-1] >= n {
					return nil, fmt.Errorf("sim: checkpoint replicas of object %d not sorted", obj)
				}
			}
		}
		for _, e := range engines {
			for obj, row := range st.Replicas {
				if len(row) == 0 {
					continue
				}
				nodes := make([]topo.NodeID, len(row))
				for j, n := range row {
					nodes[j] = topo.NodeID(n)
				}
				e.replicas.perObj[obj] = nodes
			}
		}
	}
	if (st.RootLive != nil) != (shared.rootLive != nil) {
		return nil, fmt.Errorf("sim: checkpoint root bitsets mismatch the placement")
	}
	if st.RootLive != nil {
		if err := shapeCheck("RootLive", len(st.RootLive), len(shared.rootLive)); err != nil {
			return nil, err
		}
		for p, row := range st.RootLive {
			if (row != nil) != (shared.rootLive[p] != nil) {
				return nil, fmt.Errorf("sim: checkpoint root bitset row %d mismatches the placement", p)
			}
			if row == nil {
				continue
			}
			if err := shapeCheck("RootLive row", len(row), len(shared.rootLive[p])); err != nil {
				return nil, err
			}
			copy(shared.rootLive[p], row)
			copy(shared.rootFrozen[p], row)
		}
	}
	var snaps []*snapshot
	if st.WarmupDone {
		if err := shapeCheck("Snaps", len(st.Snaps), len(engines)); err != nil {
			return nil, err
		}
		snaps = make([]*snapshot, len(engines))
		for i := range st.Snaps {
			snaps[i] = st.Snaps[i].toSnapshot()
		}
	}
	return snaps, nil
}
