package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("Value = %d, want 42", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

// TestHistogramBucketing drives the edge cases of fixed-bucket assignment:
// zero, values exactly on a bound, the last bound, and overflow.
func TestHistogramBucketing(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	tests := []struct {
		name   string
		value  float64
		bucket int // index into the cumulative Buckets slice where count first becomes 1
	}{
		{"zero", 0, 0},
		{"below first bound", 0.5, 0},
		{"exactly first bound", 1, 0},
		{"just above first bound", 1.0001, 1},
		{"interior", 3, 2},
		{"exactly last bound", 8, 3},
		{"just above last bound (overflow)", 8.0001, 4},
		{"far overflow", 1e12, 4},
		{"negative", -1, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(bounds)
			h.Observe(tc.value)
			s := h.Snapshot()
			if s.Count != 1 {
				t.Fatalf("Count = %d, want 1", s.Count)
			}
			if len(s.Buckets) != len(bounds)+1 {
				t.Fatalf("len(Buckets) = %d, want %d", len(s.Buckets), len(bounds)+1)
			}
			for i, b := range s.Buckets {
				want := int64(0)
				if i >= tc.bucket {
					want = 1 // cumulative counts: every bucket at or above the target sees it
				}
				if b.Count != want {
					t.Errorf("bucket %d (le=%g): count %d, want %d", i, b.LE, b.Count, want)
				}
			}
			if !math.IsInf(s.Buckets[len(s.Buckets)-1].LE, 1) {
				t.Errorf("last bucket LE = %g, want +Inf", s.Buckets[len(s.Buckets)-1].LE)
			}
			if s.Min != tc.value || s.Max != tc.value {
				t.Errorf("Min/Max = %g/%g, want %g", s.Min, s.Max, tc.value)
			}
		})
	}
}

// TestSnapshotJSON guards the -metrics-json path: encoding/json rejects
// non-finite floats, so the overflow bucket's +Inf bound must marshal as
// the string "+Inf" while finite bounds stay numeric.
func TestSnapshotJSON(t *testing.T) {
	h := NewHistogram([]float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(100)
	out, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	js := string(out)
	for _, want := range []string{`{"le":0.5,"count":1}`, `{"le":2,"count":2}`, `{"le":"+Inf","count":3}`} {
		if !strings.Contains(js, want) {
			t.Errorf("JSON %s missing %s", js, want)
		}
	}
	var decoded struct {
		Count   int64 `json:"count"`
		Buckets []struct {
			LE    any   `json:"le"`
			Count int64 `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if decoded.Count != 3 || len(decoded.Buckets) != 3 {
		t.Fatalf("decoded = %+v, want count 3 with 3 buckets", decoded)
	}
	if le, ok := decoded.Buckets[2].LE.(string); !ok || le != "+Inf" {
		t.Fatalf("overflow bucket LE = %v, want \"+Inf\"", decoded.Buckets[2].LE)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	h := NewHistogram([]float64{1})
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot = %+v, want zeros", s)
	}
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty Mean/Quantile = %g/%g, want 0/0", h.Mean(), h.Quantile(0.5))
	}
}

func TestHistogramSumMinMaxQuantile(t *testing.T) {
	h := NewHistogram(LinearBuckets(1, 1, 10)) // bounds 1..10
	for v := 1.0; v <= 10; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 10 || s.Sum != 55 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("snapshot = %+v", s)
	}
	if got := h.Mean(); got != 5.5 {
		t.Fatalf("Mean = %g, want 5.5", got)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("Quantile(0.5) = %g, want 5", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("Quantile(1) = %g, want 10", got)
	}
	// Overflow mass resolves to Max, not +Inf.
	h.Observe(1000)
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("Quantile(1) with overflow = %g, want 1000", got)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestBucketLayouts(t *testing.T) {
	lin := LinearBuckets(0, 2, 4)
	if want := []float64{0, 2, 4, 6}; !equal(lin, want) {
		t.Fatalf("LinearBuckets = %v, want %v", lin, want)
	}
	exp := ExpBuckets(1, 10, 3)
	if want := []float64{1, 10, 100}; !equal(exp, want) {
		t.Fatalf("ExpBuckets = %v, want %v", exp, want)
	}
	// The stock layouts must satisfy NewHistogram's ordering invariant.
	NewHistogram(LatencyBuckets())
	NewHistogram(SizeBuckets())
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRegistryText(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total")
	c.Add(3)
	h := reg.Histogram("latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	reg.Func("cache_objects", func() int64 { return 7 })

	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"requests_total 3\n",
		"latency_seconds_count 2\n",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="+Inf"} 2`,
		"cache_objects 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Counter("x")
}

func TestHistogramObserveAllocationFree(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); allocs > 0 {
		t.Fatalf("Observe allocates %.2f per call, want 0", allocs)
	}
}
