package obs

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// RequestEvent describes one completed HTTP request through an instrumented
// component — the per-request unit of the daemon's observability layer.
type RequestEvent struct {
	Component string // "proxy", "resolver", "origin", ...
	Method    string
	Path      string
	Status    int
	Bytes     int64 // response body bytes written
	Duration  time.Duration
	Cache     string // the response's X-Cache header (HIT/MISS/PEER), if any
}

// RequestHook receives request events. Implementations must be safe for
// concurrent use; ObserveRequest runs on the serving goroutine and should
// return quickly.
type RequestHook interface {
	ObserveRequest(RequestEvent)
}

// HookFunc adapts a function to the RequestHook interface.
type HookFunc func(RequestEvent)

// ObserveRequest implements RequestHook.
func (f HookFunc) ObserveRequest(ev RequestEvent) { f(ev) }

// MultiHook fans one event out to several hooks, skipping nils.
func MultiHook(hooks ...RequestHook) RequestHook {
	var active []RequestHook
	for _, h := range hooks {
		if h != nil {
			active = append(active, h)
		}
	}
	return HookFunc(func(ev RequestEvent) {
		for _, h := range active {
			h.ObserveRequest(ev)
		}
	})
}

// RequestLogger writes one structured (logfmt-style) line per request.
// Lines are serialized under an internal mutex so concurrent handlers never
// interleave.
type RequestLogger struct {
	mu    sync.Mutex
	w     io.Writer
	clock func() time.Time
}

// NewRequestLogger logs request events to w. clock may be nil for
// time.Now.
func NewRequestLogger(w io.Writer, clock func() time.Time) *RequestLogger {
	if clock == nil {
		clock = time.Now
	}
	return &RequestLogger{w: w, clock: clock}
}

// ObserveRequest implements RequestHook.
func (l *RequestLogger) ObserveRequest(ev RequestEvent) {
	line := fmt.Sprintf("ts=%s component=%s method=%s path=%q status=%d bytes=%d dur=%s",
		l.clock().UTC().Format(time.RFC3339Nano), ev.Component, ev.Method, ev.Path,
		ev.Status, ev.Bytes, ev.Duration.Round(time.Microsecond))
	if ev.Cache != "" {
		line += " cache=" + ev.Cache
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintln(l.w, line)
}

// HTTPMetrics aggregates request events for one component into a registry:
// request/error totals, response bytes, a latency histogram, and cache
// hit/miss counters fed by the X-Cache response header.
type HTTPMetrics struct {
	Requests *Counter
	Errors   *Counter // status >= 500
	Bytes    *Counter
	Latency  *Histogram
	Hits     *Counter // X-Cache: HIT or PEER
	Misses   *Counter // X-Cache: MISS
}

// NewHTTPMetrics registers the component's request metrics under
// <component>_* names and returns the hook that feeds them.
func NewHTTPMetrics(reg *Registry, component string) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: reg.Counter(component + "_requests_total"),
		Errors:   reg.Counter(component + "_errors_total"),
		Bytes:    reg.Counter(component + "_response_bytes_total"),
		Latency:  reg.Histogram(component+"_request_seconds", LatencyBuckets()),
		Hits:     reg.Counter(component + "_cache_hits_total"),
		Misses:   reg.Counter(component + "_cache_misses_total"),
	}
}

// ObserveRequest implements RequestHook.
func (m *HTTPMetrics) ObserveRequest(ev RequestEvent) {
	m.Requests.Inc()
	if ev.Status >= http.StatusInternalServerError {
		m.Errors.Inc()
	}
	m.Bytes.Add(ev.Bytes)
	m.Latency.Observe(ev.Duration.Seconds())
	switch ev.Cache {
	case "HIT", "PEER":
		m.Hits.Inc()
	case "MISS":
		m.Misses.Inc()
	}
}

// statusWriter captures the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Instrument wraps an HTTP handler so every request it serves emits one
// RequestEvent to hook. A nil hook returns next unchanged, so instrumenting
// is free to wire unconditionally.
func Instrument(component string, hook RequestHook, next http.Handler) http.Handler {
	if hook == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		hook.ObserveRequest(RequestEvent{
			Component: component,
			Method:    r.Method,
			Path:      r.URL.Path,
			Status:    status,
			Bytes:     sw.bytes,
			Duration:  time.Since(start),
			Cache:     sw.Header().Get("X-Cache"),
		})
	})
}
